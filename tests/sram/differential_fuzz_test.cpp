// Differential fuzzing of the subarray: random micro-op sequences execute
// on the hardware model and on an independent software mirror (plain
// uint64 word arithmetic per tile); every state must match after every op.
// This catches cross-tile leaks, predicate/mask bugs and aliasing hazards
// that directed tests might miss.
#include <gtest/gtest.h>

#include <vector>

#include "common/xoshiro.h"
#include "sram/subarray.h"

namespace bpntt::sram {
namespace {

constexpr unsigned kRows = 12;
constexpr unsigned kTiles = 4;
constexpr unsigned kBits = 11;  // deliberately odd width, not a power of two

struct mirror {
  // state[row][tile]
  std::vector<std::vector<std::uint64_t>> state{kRows,
                                                std::vector<std::uint64_t>(kTiles, 0)};
  std::vector<bool> pred{std::vector<bool>(kTiles, false)};

  static std::uint64_t mask() { return (1ULL << kBits) - 1; }

  void binary(unsigned dst, unsigned s0, unsigned s1, logic_fn fn) {
    for (unsigned t = 0; t < kTiles; ++t) {
      std::uint64_t v = 0;
      switch (fn) {
        case logic_fn::op_and: v = state[s0][t] & state[s1][t]; break;
        case logic_fn::op_or: v = state[s0][t] | state[s1][t]; break;
        case logic_fn::op_xor: v = state[s0][t] ^ state[s1][t]; break;
        case logic_fn::op_nor: v = ~(state[s0][t] | state[s1][t]) & mask(); break;
      }
      state[dst][t] = v;
    }
  }
  void pair(unsigned c, unsigned s, unsigned s0, unsigned s1) {
    for (unsigned t = 0; t < kTiles; ++t) {
      const auto a = state[s0][t], b = state[s1][t];
      state[c][t] = a & b;
      state[s][t] = a ^ b;
    }
  }
  void copy(unsigned dst, unsigned src, bool invert, write_mask wm) {
    for (unsigned t = 0; t < kTiles; ++t) {
      const bool write = wm == write_mask::none || (wm == write_mask::pred && pred[t]) ||
                         (wm == write_mask::pred_inv && !pred[t]);
      if (write) state[dst][t] = (invert ? ~state[src][t] : state[src][t]) & mask();
    }
  }
  void shift(unsigned dst, unsigned src, shift_dir dir) {
    for (unsigned t = 0; t < kTiles; ++t) {
      state[dst][t] = dir == shift_dir::left ? (state[src][t] << 1) & mask()
                                             : state[src][t] >> 1;
    }
  }
  void check_pred(unsigned src, unsigned bit) {
    for (unsigned t = 0; t < kTiles; ++t) pred[t] = (state[src][t] >> bit) & 1ULL;
  }
};

TEST(DifferentialFuzz, RandomOpSequencesMatchSoftwareMirror) {
  common::xoshiro256ss rng(0xF00D);
  for (int trial = 0; trial < 30; ++trial) {
    subarray hw(kRows, tile_geometry{kTiles * kBits, kBits}, tech_45nm());
    mirror sw;
    for (unsigned r = 0; r < kRows; ++r) {
      for (unsigned t = 0; t < kTiles; ++t) {
        const auto v = rng() & mirror::mask();
        hw.host_write_word(t, r, v);
        sw.state[r][t] = v;
      }
    }
    for (int step = 0; step < 300; ++step) {
      const auto dst = static_cast<unsigned>(rng.below(kRows));
      const auto s0 = static_cast<unsigned>(rng.below(kRows));
      const auto s1 = static_cast<unsigned>(rng.below(kRows));
      switch (rng.below(5)) {
        case 0: {
          const auto fn = static_cast<logic_fn>(rng.below(4));
          hw.op_binary(dst, s0, s1, fn);
          sw.binary(dst, s0, s1, fn);
          break;
        }
        case 1: {
          // pair destinations must differ; derive a second one.
          const unsigned s_dst = (dst + 1) % kRows;
          hw.op_pair(dst, s_dst, s0, s1);
          sw.pair(dst, s_dst, s0, s1);
          break;
        }
        case 2: {
          const bool invert = rng.coin();
          const auto wm = static_cast<write_mask>(rng.below(3));
          hw.op_copy(dst, s0, invert, wm);
          sw.copy(dst, s0, invert, wm);
          break;
        }
        case 3: {
          const auto dir = rng.coin() ? shift_dir::left : shift_dir::right;
          hw.op_shift(dst, s0, dir, /*segmented=*/true);
          sw.shift(dst, s0, dir);
          break;
        }
        case 4: {
          const auto bit = static_cast<unsigned>(rng.below(kBits));
          hw.op_check_pred(s0, bit);
          sw.check_pred(s0, bit);
          break;
        }
      }
      for (unsigned r = 0; r < kRows; ++r) {
        for (unsigned t = 0; t < kTiles; ++t) {
          ASSERT_EQ(hw.peek_word(t, r), sw.state[r][t])
              << "trial " << trial << " step " << step << " row " << r << " tile " << t;
        }
      }
    }
  }
}

TEST(DifferentialFuzz, SegmentedShiftNeverLeaksAcrossTiles) {
  // Adversarial pattern: alternate all-ones / all-zeros tiles, shift both
  // directions repeatedly; the zero tiles must stay zero forever.
  subarray hw(4, tile_geometry{kTiles * kBits, kBits}, tech_45nm());
  for (unsigned t = 0; t < kTiles; ++t) {
    hw.host_write_word(t, 0, (t % 2 == 0) ? mirror::mask() : 0);
  }
  for (int i = 0; i < 2 * static_cast<int>(kBits); ++i) {
    hw.op_shift(0, 0, i % 2 ? shift_dir::left : shift_dir::right, true);
    for (unsigned t = 1; t < kTiles; t += 2) {
      ASSERT_EQ(hw.peek_word(t, 0), 0u) << "iteration " << i;
    }
  }
}

}  // namespace
}  // namespace bpntt::sram
