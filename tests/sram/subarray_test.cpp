#include "sram/subarray.h"

#include <gtest/gtest.h>

#include "common/xoshiro.h"

namespace bpntt::sram {
namespace {

subarray make_array(unsigned rows = 16, unsigned cols = 64, unsigned tile_bits = 16) {
  return subarray(rows, tile_geometry{cols, tile_bits}, tech_45nm());
}

TEST(Subarray, HostWordRoundTrip) {
  auto a = make_array();
  a.host_write_word(0, 3, 0xABCD);
  a.host_write_word(2, 3, 0x1234);
  EXPECT_EQ(a.host_read_word(0, 3), 0xABCDu);
  EXPECT_EQ(a.host_read_word(2, 3), 0x1234u);
  EXPECT_EQ(a.host_read_word(1, 3), 0u);
  EXPECT_EQ(a.stats().host_writes, 2u);
  EXPECT_EQ(a.stats().host_reads, 3u);
}

TEST(Subarray, BinaryOpsAllTilesSimultaneously) {
  auto a = make_array();
  common::xoshiro256ss rng(1);
  std::uint64_t va[4], vb[4];
  for (unsigned t = 0; t < 4; ++t) {
    va[t] = rng() & 0xFFFF;
    vb[t] = rng() & 0xFFFF;
    a.host_write_word(t, 0, va[t]);
    a.host_write_word(t, 1, vb[t]);
  }
  a.op_binary(2, 0, 1, logic_fn::op_and);
  a.op_binary(3, 0, 1, logic_fn::op_xor);
  a.op_binary(4, 0, 1, logic_fn::op_or);
  a.op_binary(5, 0, 1, logic_fn::op_nor);
  for (unsigned t = 0; t < 4; ++t) {
    EXPECT_EQ(a.peek_word(t, 2), va[t] & vb[t]);
    EXPECT_EQ(a.peek_word(t, 3), va[t] ^ vb[t]);
    EXPECT_EQ(a.peek_word(t, 4), va[t] | vb[t]);
    EXPECT_EQ(a.peek_word(t, 5), ~(va[t] | vb[t]) & 0xFFFF);
  }
  EXPECT_EQ(a.stats().binary_ops, 4u);
}

TEST(Subarray, PairOpWritesBothHalfAdderOutputs) {
  auto a = make_array();
  a.host_write_word(1, 0, 0b1100);
  a.host_write_word(1, 1, 0b1010);
  a.op_pair(2, 3, 0, 1);
  EXPECT_EQ(a.peek_word(1, 2), 0b1000u);  // AND
  EXPECT_EQ(a.peek_word(1, 3), 0b0110u);  // XOR
  EXPECT_EQ(a.stats().pair_ops, 1u);
}

TEST(Subarray, PairOpAliasedDestinationUsesLatchedSources) {
  auto a = make_array();
  a.host_write_word(0, 0, 0xF0F0);
  a.host_write_word(0, 1, 0xFF00);
  // s destination overwrites a source row; hardware latches operands first.
  a.op_pair(2, 0, 0, 1);
  EXPECT_EQ(a.peek_word(0, 2), 0xF000u);
  EXPECT_EQ(a.peek_word(0, 0), 0x0FF0u);
}

TEST(Subarray, PairRejectsCollidingDestinations) {
  auto a = make_array();
  EXPECT_THROW(a.op_pair(2, 2, 0, 1), std::invalid_argument);
}

TEST(Subarray, CopyWithInvert) {
  auto a = make_array();
  a.host_write_word(3, 0, 0x00FF);
  a.op_copy(1, 0, /*invert=*/true);
  EXPECT_EQ(a.peek_word(3, 1), 0xFF00u);
}

TEST(Subarray, SegmentedShiftLeftStaysInTile) {
  auto a = make_array(16, 64, 16);
  for (unsigned t = 0; t < 4; ++t) a.host_write_word(t, 0, 0x8001);  // MSB+LSB set
  a.op_shift(1, 0, shift_dir::left, /*segmented=*/true);
  for (unsigned t = 0; t < 4; ++t) {
    // MSB dropped at the boundary, LSB moved up, nothing entered from below.
    EXPECT_EQ(a.peek_word(t, 1), 0x0002u);
  }
}

TEST(Subarray, SegmentedShiftRightStaysInTile) {
  auto a = make_array(16, 64, 16);
  for (unsigned t = 0; t < 4; ++t) a.host_write_word(t, 0, 0x8001);
  a.op_shift(1, 0, shift_dir::right, /*segmented=*/true);
  for (unsigned t = 0; t < 4; ++t) {
    EXPECT_EQ(a.peek_word(t, 1), 0x4000u);
  }
}

TEST(Subarray, UnsegmentedShiftCrossesTiles) {
  auto a = make_array(16, 64, 16);
  a.host_write_word(0, 0, 0x8000);  // tile 0 MSB
  a.op_shift(1, 0, shift_dir::left, /*segmented=*/false);
  EXPECT_EQ(a.peek_word(0, 1), 0u);
  EXPECT_EQ(a.peek_word(1, 1), 1u);  // crossed into tile 1's LSB
}

TEST(Subarray, LosslessViolationCounting) {
  auto a = make_array(16, 64, 16);
  a.host_write_word(2, 0, 0x8000);
  a.op_shift(1, 0, shift_dir::left, true, /*expect_lossless=*/true);
  EXPECT_EQ(a.stats().lossless_shift_violations, 1u);
  a.host_write_word(2, 0, 0x4000);
  a.op_shift(1, 0, shift_dir::left, true, /*expect_lossless=*/true);
  EXPECT_EQ(a.stats().lossless_shift_violations, 1u);  // unchanged: no loss
  a.host_write_word(3, 0, 0x0001);
  a.op_shift(1, 0, shift_dir::right, true, /*expect_lossless=*/true);
  EXPECT_EQ(a.stats().lossless_shift_violations, 2u);
}

TEST(Subarray, CheckPredBroadcastsPerTileBit) {
  auto a = make_array(16, 64, 16);
  a.host_write_word(0, 0, 0x0001);  // LSB set
  a.host_write_word(1, 0, 0x0000);
  a.host_write_word(2, 0, 0xFFFE);  // LSB clear
  a.host_write_word(3, 0, 0x0101);
  a.op_check_pred(0, 0);
  const bitrow& mask = a.predicate_mask();
  for (unsigned b = 0; b < 16; ++b) {
    EXPECT_TRUE(mask.get(0 * 16 + b));
    EXPECT_FALSE(mask.get(1 * 16 + b));
    EXPECT_FALSE(mask.get(2 * 16 + b));
    EXPECT_TRUE(mask.get(3 * 16 + b));
  }
}

TEST(Subarray, MaskedWritesUsePredicate) {
  auto a = make_array(16, 64, 16);
  a.host_write_word(0, 0, 1);  // pred=1 for tile 0 only
  a.host_write_word(1, 0, 0);
  a.op_check_pred(0, 0);
  a.host_write_word(0, 1, 0xAAAA);
  a.host_write_word(1, 1, 0xBBBB);
  a.host_write_word(0, 2, 0x1111);
  a.host_write_word(1, 2, 0x2222);
  a.op_copy(2, 1, false, write_mask::pred);  // only tile 0 updated
  EXPECT_EQ(a.peek_word(0, 2), 0xAAAAu);
  EXPECT_EQ(a.peek_word(1, 2), 0x2222u);
  a.op_copy(2, 1, false, write_mask::pred_inv);  // only tile 1 updated
  EXPECT_EQ(a.peek_word(0, 2), 0xAAAAu);
  EXPECT_EQ(a.peek_word(1, 2), 0xBBBBu);
}

TEST(Subarray, CheckZeroSetsFlag) {
  auto a = make_array();
  EXPECT_TRUE(a.op_check_zero(5));
  EXPECT_TRUE(a.zero_flag());
  a.host_write_word(3, 5, 4);
  EXPECT_FALSE(a.op_check_zero(5));
  EXPECT_FALSE(a.zero_flag());
}

TEST(Subarray, StatsAccumulateCyclesAndEnergy) {
  auto a = make_array();
  a.op_binary(1, 0, 0, logic_fn::op_xor);
  a.op_shift(1, 1, shift_dir::left);
  a.op_check_zero(1);
  EXPECT_EQ(a.stats().cycles, 3u);
  EXPECT_EQ(a.stats().total_array_ops(), 3u);
  EXPECT_GT(a.stats().energy_pj, 0.0);
  a.reset_stats();
  EXPECT_EQ(a.stats().cycles, 0u);
}

TEST(Subarray, ReconfigurableTileWidth) {
  auto a = make_array(16, 64, 16);
  EXPECT_EQ(a.geometry().num_tiles(), 4u);
  a.set_tile_bits(8);
  EXPECT_EQ(a.geometry().num_tiles(), 8u);
  EXPECT_THROW(a.set_tile_bits(0), std::invalid_argument);
  EXPECT_THROW(a.set_tile_bits(65), std::invalid_argument);  // > cols? 65 <= 64? no: 65 > 64
}

TEST(Subarray, RowBoundsChecked) {
  auto a = make_array(8);
  EXPECT_THROW(a.host_read_word(0, 8), std::out_of_range);
  EXPECT_THROW(a.op_binary(8, 0, 1, logic_fn::op_and), std::out_of_range);
  EXPECT_THROW(a.op_check_pred(0, 16), std::out_of_range);
}

TEST(Subarray, OddColumnsOutsideTilesAreCleared) {
  // 60 columns with 16-bit tiles -> 3 tiles, 12 leftover columns.
  subarray a(8, tile_geometry{60, 16}, tech_45nm());
  EXPECT_EQ(a.geometry().num_tiles(), 3u);
  bitrow r(60);
  for (unsigned c = 48; c < 60; ++c) r.set(c, true);
  a.host_write_row(0, r);
  a.op_shift(1, 0, shift_dir::left, true);
  for (unsigned c = 48; c < 60; ++c) EXPECT_FALSE(a.peek(1).get(c));
}

}  // namespace
}  // namespace bpntt::sram
