#include "sram/bitrow.h"

#include <gtest/gtest.h>

#include "common/xoshiro.h"

namespace bpntt::sram {
namespace {

TEST(Bitrow, GetSetClear) {
  bitrow r(256);
  EXPECT_FALSE(r.any());
  r.set(0, true);
  r.set(255, true);
  r.set(128, true);
  EXPECT_TRUE(r.get(0));
  EXPECT_TRUE(r.get(255));
  EXPECT_TRUE(r.get(128));
  EXPECT_FALSE(r.get(127));
  EXPECT_EQ(r.popcount(), 3u);
  r.clear();
  EXPECT_FALSE(r.any());
}

TEST(Bitrow, LogicMatchesWordOracle) {
  common::xoshiro256ss rng(1);
  for (int trial = 0; trial < 50; ++trial) {
    const std::uint64_t a = rng(), b = rng();
    bitrow ra(64), rb(64);
    ra.deposit(0, 64, a);
    rb.deposit(0, 64, b);
    EXPECT_EQ(bitrow::bit_and(ra, rb).extract(0, 64), a & b);
    EXPECT_EQ(bitrow::bit_or(ra, rb).extract(0, 64), a | b);
    EXPECT_EQ(bitrow::bit_xor(ra, rb).extract(0, 64), a ^ b);
    EXPECT_EQ(bitrow::bit_nor(ra, rb).extract(0, 64), ~(a | b));
    EXPECT_EQ(ra.inverted().extract(0, 64), ~a);
  }
}

TEST(Bitrow, InvertedRespectsWidth) {
  bitrow r(10);
  const bitrow inv = r.inverted();
  EXPECT_EQ(inv.popcount(), 10u);  // only 10 bits, not a full limb
}

TEST(Bitrow, ShiftLeftMovesTowardHigherColumns) {
  bitrow r(130);
  r.set(0, true);
  r.set(63, true);   // limb boundary crossing
  r.set(129, true);  // falls off the top
  const bitrow s = r.shifted_left();
  EXPECT_TRUE(s.get(1));
  EXPECT_TRUE(s.get(64));
  EXPECT_FALSE(s.get(0));
  EXPECT_EQ(s.popcount(), 2u);
}

TEST(Bitrow, ShiftRightMovesTowardLowerColumns) {
  bitrow r(130);
  r.set(0, true);  // falls off the bottom
  r.set(64, true);
  r.set(129, true);
  const bitrow s = r.shifted_right();
  EXPECT_TRUE(s.get(63));
  EXPECT_TRUE(s.get(128));
  EXPECT_EQ(s.popcount(), 2u);
}

TEST(Bitrow, ShiftRoundTripRandom) {
  common::xoshiro256ss rng(2);
  bitrow r(256);
  for (unsigned i = 1; i + 1 < 256; ++i) r.set(i, rng.coin());
  EXPECT_EQ(r.shifted_left().shifted_right(), r);
  EXPECT_EQ(r.shifted_right().shifted_left(), r);
}

TEST(Bitrow, ExtractDeposit) {
  bitrow r(256);
  r.deposit(100, 16, 0xBEEF);
  EXPECT_EQ(r.extract(100, 16), 0xBEEFu);
  EXPECT_EQ(r.extract(96, 4), 0u);
  r.deposit(100, 16, 0x1);
  EXPECT_EQ(r.extract(100, 16), 0x1u);
}

TEST(Bitrow, ToStringMsbFirst) {
  bitrow r(4);
  r.set(0, true);
  r.set(3, true);
  EXPECT_EQ(r.to_string(), "1001");
}

TEST(Bitrow, RejectsZeroWidth) { EXPECT_THROW(bitrow(0), std::invalid_argument); }

TEST(Bitrow, WidthMismatchThrows) {
  EXPECT_THROW(bitrow::bit_and(bitrow(8), bitrow(16)), std::invalid_argument);
}

}  // namespace
}  // namespace bpntt::sram
