#include "sram/tech_model.h"

#include <gtest/gtest.h>

namespace bpntt::sram {
namespace {

TEST(TechModel, AreaReproducesPaperAnchor) {
  // Table I: a 256x256 subarray (+ intermediate rows) at 45 nm is 0.063 mm^2.
  const tech_params t = tech_45nm();
  const double area = subarray_area_mm2(t, 265, 256);
  EXPECT_NEAR(area, 0.063, 0.004);
}

TEST(TechModel, FrequencyAnchor) {
  EXPECT_DOUBLE_EQ(tech_45nm().freq_ghz, 3.8);  // Table I "Max f"
}

TEST(TechModel, AreaScalesWithCellCount) {
  const tech_params t = tech_45nm();
  const double one = subarray_area_mm2(t, 256, 256);
  EXPECT_NEAR(subarray_area_mm2(t, 512, 256), 2 * one, 1e-12);
  EXPECT_NEAR(subarray_area_mm2(t, 256, 512), 2 * one, 1e-12);
}

TEST(TechModel, ComputeOverheadIsSmall) {
  // The paper claims < 2% array overhead for the compute-enabled SAs.
  EXPECT_LT(tech_45nm().compute_overhead, 0.02);
}

TEST(TechModel, EnergyMonotonicInColumns) {
  const tech_params t = tech_45nm();
  EXPECT_LT(energy_compute_op_pj(t, 64, 2, true), energy_compute_op_pj(t, 256, 2, true));
  EXPECT_LT(energy_compute_op_pj(t, 256, 1, true), energy_compute_op_pj(t, 256, 2, true));
  EXPECT_LT(energy_compute_op_pj(t, 256, 2, false), energy_compute_op_pj(t, 256, 2, true));
}

TEST(TechModel, ProjectionScalesDelayAndEnergy) {
  const tech_params base = tech_45nm();
  const tech_params t65 = project_to_node(base, 65.0);
  EXPECT_NEAR(t65.cell_area_um2 / base.cell_area_um2, (65.0 / 45.0) * (65.0 / 45.0), 1e-9);
  EXPECT_LT(t65.freq_ghz, base.freq_ghz);
  EXPECT_GT(t65.e_bitline_fj_per_col, base.e_bitline_fj_per_col);
  // Round trip back to 45 nm restores the anchor frequency.
  const tech_params back = project_to_node(t65, 45.0);
  EXPECT_NEAR(back.freq_ghz, base.freq_ghz, 1e-9);
}

TEST(TechModel, ProjectionRejectsBadNode) {
  EXPECT_THROW(project_to_node(tech_45nm(), 0.0), std::invalid_argument);
}

TEST(TechModel, PerOpEnergyInCalibratedRange) {
  // The Table I anchor (~69 nJ over ~2.4e5 ops) implies ~0.25-0.35 pJ/op on
  // 256 columns; guard the calibration from silent drift.
  const tech_params t = tech_45nm();
  const double e = energy_compute_op_pj(t, 256, 2, true);
  EXPECT_GT(e, 0.15);
  EXPECT_LT(e, 0.45);
}

}  // namespace
}  // namespace bpntt::sram
