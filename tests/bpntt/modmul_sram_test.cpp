// In-SRAM execution of Algorithm 2: compile the modular-multiply microcode,
// run it on the subarray simulator, and check every SIMD lane against the
// golden Montgomery product — including the lossless-shift invariants
// (Observations 1 and 2) enforced by the hardware model.
#include <gtest/gtest.h>

#include "bpntt/compiler.h"
#include "bpntt/engine.h"
#include "common/xoshiro.h"
#include "nttmath/modarith.h"
#include "nttmath/montgomery.h"

namespace bpntt::core {
namespace {

struct ModmulCase {
  u64 q;
  unsigned k;
};

class SramModmul : public testing::TestWithParam<ModmulCase> {};

TEST_P(SramModmul, ConstMultiplierMatchesGoldenAcrossLanes) {
  const auto [q, k] = GetParam();
  engine_config cfg;
  cfg.data_rows = 16;
  cfg.cols = 64;
  ntt_params p;
  p.n = 4;
  p.q = 0;  // ring parameters are irrelevant: this drives row-level modmul
  p.k = k;
  twiddle_plan plan;
  plan.m = q;
  plan.mneg = ((1ULL << k) - q) & ((k == 64) ? ~0ULL : ((1ULL << k) - 1));
  microcode_compiler comp(p, row_layout{cfg.data_rows});

  // Need M/MNEG/ONE rows to hold the real modulus: use a raw subarray.
  sram::subarray array(row_layout{cfg.data_rows}.total_rows(),
                       sram::tile_geometry{cfg.cols, k}, sram::tech_45nm());
  const row_layout L{cfg.data_rows};
  const unsigned lanes = array.geometry().num_tiles();
  for (unsigned t = 0; t < lanes; ++t) {
    array.host_write_word(t, L.m_row(), q);
    array.host_write_word(t, L.mneg_row(), (1ULL << k) - q);
    array.host_write_word(t, L.one_row(), 1);
  }

  common::xoshiro256ss rng(q * 31 + k);
  isa::executor exec;
  for (int trial = 0; trial < 20; ++trial) {
    const u64 a = rng.below(q);  // shared "twiddle" multiplier
    std::vector<u64> b(lanes);
    for (unsigned t = 0; t < lanes; ++t) {
      b[t] = rng.below(q);
      array.host_write_word(t, 0, b[t]);  // operand row 0
    }
    const auto prog = comp.compile_modmul_const(plan, /*b_row=*/0, a, /*dst_row=*/1);
    exec.run(prog, array);
    for (unsigned t = 0; t < lanes; ++t) {
      EXPECT_EQ(array.peek_word(t, 1), math::interleaved_montgomery(a, b[t], q, k))
          << "lane " << t << " a=" << a << " b=" << b[t] << " q=" << q << " k=" << k;
    }
    EXPECT_EQ(array.stats().lossless_shift_violations, 0u)
        << "Observation 1/2 violated in-array";
  }
}

TEST_P(SramModmul, DataDrivenMatchesGoldenWithPerLaneMultipliers) {
  const auto [q, k] = GetParam();
  engine_config cfg;
  cfg.data_rows = 16;
  cfg.cols = 64;
  ntt_params p;
  p.n = 4;
  p.q = 0;
  p.k = k;
  microcode_compiler comp(p, row_layout{cfg.data_rows});
  const row_layout L{cfg.data_rows};
  sram::subarray array(L.total_rows(), sram::tile_geometry{cfg.cols, k}, sram::tech_45nm());
  const unsigned lanes = array.geometry().num_tiles();
  for (unsigned t = 0; t < lanes; ++t) {
    array.host_write_word(t, L.m_row(), q);
    array.host_write_word(t, L.mneg_row(), (1ULL << k) - q);
    array.host_write_word(t, L.one_row(), 1);
  }

  common::xoshiro256ss rng(q * 77 + k);
  isa::executor exec;
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<u64> a(lanes), b(lanes);
    for (unsigned t = 0; t < lanes; ++t) {
      a[t] = rng.below(q);
      b[t] = rng.below(q);
      array.host_write_word(t, 0, a[t]);
      array.host_write_word(t, 1, b[t]);
    }
    exec.run(comp.compile_modmul_data(0, 1, 2), array);
    for (unsigned t = 0; t < lanes; ++t) {
      EXPECT_EQ(array.peek_word(t, 2), math::interleaved_montgomery(a[t], b[t], q, k))
          << "lane " << t;
    }
    EXPECT_EQ(array.stats().lossless_shift_violations, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Widths, SramModmul,
    testing::Values(ModmulCase{5, 4}, ModmulCase{23, 6}, ModmulCase{127, 8},
                    ModmulCase{3329, 13}, ModmulCase{3329, 16}, ModmulCase{7681, 14},
                    ModmulCase{12289, 16}, ModmulCase{40961, 17}, ModmulCase{8380417, 24},
                    ModmulCase{2013265921, 32}),
    [](const auto& info) {
      return "q" + std::to_string(info.param.q) + "_k" + std::to_string(info.param.k);
    });

TEST(SramModmul, ExhaustiveTinyModulus) {
  // Every (a, b) pair for q=5, k=4 across all lanes simultaneously.
  const u64 q = 5;
  const unsigned k = 4;
  ntt_params p;
  p.n = 4;
  p.q = 0;
  p.k = k;
  const row_layout L{16};
  microcode_compiler comp(p, L);
  sram::subarray array(L.total_rows(), sram::tile_geometry{64, k}, sram::tech_45nm());
  const unsigned lanes = array.geometry().num_tiles();
  for (unsigned t = 0; t < lanes; ++t) {
    array.host_write_word(t, L.m_row(), q);
    array.host_write_word(t, L.mneg_row(), (1ULL << k) - q);
    array.host_write_word(t, L.one_row(), 1);
  }
  isa::executor exec;
  for (u64 a = 0; a < q; ++a) {
    for (u64 b0 = 0; b0 < q; ++b0) {
      for (unsigned t = 0; t < lanes; ++t) {
        array.host_write_word(t, 0, (b0 + t) % q);  // staggered per lane
      }
      twiddle_plan plan;
      plan.m = q;
      plan.mneg = (1ULL << k) - q;
      exec.run(comp.compile_modmul_const(plan, 0, a, 1), array);
      for (unsigned t = 0; t < lanes; ++t) {
        ASSERT_EQ(array.peek_word(t, 1),
                  math::interleaved_montgomery(a, (b0 + t) % q, q, k));
      }
    }
  }
  EXPECT_EQ(array.stats().lossless_shift_violations, 0u);
}

}  // namespace
}  // namespace bpntt::core
