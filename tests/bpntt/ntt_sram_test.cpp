// End-to-end in-SRAM NTT: the full compiled kernel (every butterfly running
// Algorithm 2 + ripple add/sub on the subarray) against the golden
// transform, across parameter sets and all SIMD lanes — the reproduction of
// the paper's §V-A correctness validation.
#include <gtest/gtest.h>

#include "bpntt/engine.h"
#include "common/xoshiro.h"
#include "nttmath/ntt.h"
#include "nttmath/poly.h"

namespace bpntt::core {
namespace {

std::vector<u64> random_poly(u64 n, u64 q, common::xoshiro256ss& rng) {
  std::vector<u64> v(n);
  for (auto& x : v) x = rng.below(q);
  return v;
}

struct SramNttCase {
  u64 n;
  u64 q;
  unsigned k;
  unsigned data_rows;
  unsigned cols;
};

class SramNtt : public testing::TestWithParam<SramNttCase> {};

TEST_P(SramNtt, ForwardMatchesGoldenOnAllLanes) {
  const auto c = GetParam();
  engine_config cfg;
  cfg.data_rows = c.data_rows;
  cfg.cols = c.cols;
  ntt_params p;
  p.n = c.n;
  p.q = c.q;
  p.k = c.k;
  bp_ntt_engine eng(cfg, p);
  common::xoshiro256ss rng(c.n * 131 + c.q);

  std::vector<std::vector<u64>> inputs(eng.lanes());
  for (unsigned lane = 0; lane < eng.lanes(); ++lane) {
    inputs[lane] = random_poly(c.n, c.q, rng);
    eng.load_polynomial(lane, inputs[lane]);
  }
  const auto stats = eng.run_forward();
  EXPECT_EQ(stats.lossless_shift_violations, 0u);
  EXPECT_GT(stats.cycles, 0u);

  for (unsigned lane = 0; lane < eng.lanes(); ++lane) {
    auto expected = inputs[lane];
    math::ntt_forward(expected, *eng.tables());
    EXPECT_EQ(eng.peek_polynomial(lane, c.n), expected) << "lane " << lane;
  }
}

TEST_P(SramNtt, InverseRestoresInput) {
  const auto c = GetParam();
  engine_config cfg;
  cfg.data_rows = c.data_rows;
  cfg.cols = c.cols;
  ntt_params p;
  p.n = c.n;
  p.q = c.q;
  p.k = c.k;
  bp_ntt_engine eng(cfg, p);
  common::xoshiro256ss rng(c.n * 17 + c.q);

  std::vector<std::vector<u64>> inputs(eng.lanes());
  for (unsigned lane = 0; lane < eng.lanes(); ++lane) {
    inputs[lane] = random_poly(c.n, c.q, rng);
    eng.load_polynomial(lane, inputs[lane]);
  }
  eng.run_forward();
  const auto stats = eng.run_inverse();
  EXPECT_EQ(stats.lossless_shift_violations, 0u);
  for (unsigned lane = 0; lane < eng.lanes(); ++lane) {
    EXPECT_EQ(eng.peek_polynomial(lane, c.n), inputs[lane]) << "lane " << lane;
  }
}

INSTANTIATE_TEST_SUITE_P(
    ParameterSets, SramNtt,
    testing::Values(
        // Small rings on a small array (fast exhaustive-ish coverage).
        SramNttCase{8, 97, 9, 16, 64},
        SramNttCase{16, 97, 8, 32, 64},
        SramNttCase{32, 193, 9, 64, 72},
        SramNttCase{64, 257, 10, 64, 80},
        // Kyber-modulus ring at its maximum negacyclic size.
        SramNttCase{128, 3329, 13, 128, 128},
        // The paper's headline configuration: 256-point, 16 lanes of 16 bits.
        SramNttCase{256, 12289, 16, 256, 256},
        // Round-1 Kyber prime on 14-bit tiles (paper's PQC pairing).
        SramNttCase{256, 7681, 14, 256, 112}),
    [](const auto& info) {
      return "n" + std::to_string(info.param.n) + "_q" + std::to_string(info.param.q) + "_k" +
             std::to_string(info.param.k);
    });

TEST(SramNtt, PointwiseProductMatchesGolden) {
  // Full in-array polymul layout: A at rows [0,n), B at rows [n,2n).
  const u64 n = 32, q = 193;
  engine_config cfg;
  cfg.data_rows = 64;
  cfg.cols = 72;
  ntt_params p;
  p.n = n;
  p.q = q;
  p.k = 9;
  bp_ntt_engine eng(cfg, p);
  common::xoshiro256ss rng(5);

  std::vector<std::vector<u64>> a(eng.lanes()), b(eng.lanes());
  for (unsigned lane = 0; lane < eng.lanes(); ++lane) {
    a[lane] = random_poly(n, q, rng);
    b[lane] = random_poly(n, q, rng);
    eng.load_polynomial(lane, a[lane], eng.poly_region(0));
    eng.load_polynomial(lane, b[lane], eng.poly_region(static_cast<unsigned>(n)));
  }
  const auto stats = eng.run_pointwise(eng.poly_region(0),
                                       eng.poly_region(static_cast<unsigned>(n)),
                                       eng.poly_region(0), /*scale_b=*/true);
  EXPECT_EQ(stats.lossless_shift_violations, 0u);
  for (unsigned lane = 0; lane < eng.lanes(); ++lane) {
    std::vector<u64> expected(n);
    for (u64 i = 0; i < n; ++i) expected[i] = math::mul_mod(a[lane][i], b[lane][i], q);
    EXPECT_EQ(eng.peek_polynomial(lane, eng.poly_region(0)), expected) << "lane " << lane;
  }
}

TEST(SramNtt, FullNegacyclicPolymulInArray) {
  // NTT(a), NTT(b), pointwise, INTT — the complete convolution pipeline on
  // one subarray, verified against the schoolbook product.
  const u64 n = 32, q = 12289;
  engine_config cfg;
  cfg.data_rows = 64;
  cfg.cols = 64;
  ntt_params p;
  p.n = n;
  p.q = q;
  p.k = 16;
  bp_ntt_engine eng(cfg, p);
  common::xoshiro256ss rng(6);

  std::vector<std::vector<u64>> a(eng.lanes()), b(eng.lanes());
  for (unsigned lane = 0; lane < eng.lanes(); ++lane) {
    a[lane] = random_poly(n, q, rng);
    b[lane] = random_poly(n, q, rng);
    eng.load_polynomial(lane, a[lane], eng.poly_region(0));
    eng.load_polynomial(lane, b[lane], eng.poly_region(static_cast<unsigned>(n)));
  }
  const auto ra = eng.poly_region(0);
  const auto rb = eng.poly_region(static_cast<unsigned>(n));
  eng.run_forward(ra);
  eng.run_forward(rb);
  eng.run_pointwise(ra, rb, ra, /*scale_b=*/true);
  eng.run_inverse(ra);
  for (unsigned lane = 0; lane < eng.lanes(); ++lane) {
    EXPECT_EQ(eng.peek_polynomial(lane, ra),
              math::schoolbook_negacyclic(a[lane], b[lane], q))
        << "lane " << lane;
  }
}

TEST(SramNtt, CumulativeStatsGrowAcrossRuns) {
  const u64 n = 16, q = 97;
  engine_config cfg;
  cfg.data_rows = 16;
  cfg.cols = 32;
  ntt_params p;
  p.n = n;
  p.q = q;
  p.k = 8;
  bp_ntt_engine eng(cfg, p);
  common::xoshiro256ss rng(7);
  eng.load_polynomial(0, random_poly(n, q, rng));
  const auto s1 = eng.run_forward();
  const auto s2 = eng.run_forward();
  EXPECT_GT(s1.cycles, 0u);
  // Same program, different data: cycle counts differ only through the
  // data-dependent ripple loops, staying within a tight band.
  EXPECT_NEAR(static_cast<double>(s2.cycles), static_cast<double>(s1.cycles),
              0.2 * static_cast<double>(s1.cycles));
  EXPECT_GE(eng.cumulative_stats().cycles, s1.cycles + s2.cycles);
}

}  // namespace
}  // namespace bpntt::core
