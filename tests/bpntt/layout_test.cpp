#include "bpntt/layout.h"

#include <gtest/gtest.h>

#include "bpntt/config.h"

namespace bpntt::core {
namespace {

TEST(Layout, RowMapIsContiguousAndDisjoint) {
  const row_layout L{256};
  EXPECT_EQ(L.sum(), 256);
  EXPECT_EQ(L.carry(), 257);
  EXPECT_EQ(L.c1(), 258);
  EXPECT_EQ(L.s1(), 259);
  EXPECT_EQ(L.c2(), 260);
  EXPECT_EQ(L.t(), 261);
  EXPECT_EQ(L.m_row(), 262);
  EXPECT_EQ(L.mneg_row(), 263);
  EXPECT_EQ(L.one_row(), 264);
  EXPECT_EQ(L.u(), 265);
  EXPECT_EQ(L.total_rows(), 266u);
}

TEST(Layout, PairDeltasStayEncodable) {
  // Every scratch-pair combination the compiler emits must fit the
  // 3-bit signed s_dst - c_dst field.
  const row_layout L{256};
  const int combos[][2] = {
      {L.c1(), L.s1()},   {L.c2(), L.sum()}, {L.c2(), L.s1()}, {L.c1(), L.sum()},
      {L.c1(), L.c2()},   {L.carry(), L.sum()}, {L.c1(), L.t()}, {L.s1(), L.c2()},
  };
  for (const auto& c : combos) {
    const int delta = c[1] - c[0];
    EXPECT_GE(delta, -4) << c[0] << "->" << c[1];
    EXPECT_LE(delta, 3) << c[0] << "->" << c[1];
    EXPECT_NE(delta, 0);
  }
}

TEST(Layout, CoeffRowBoundsChecked) {
  const row_layout L{128};
  EXPECT_EQ(L.coeff_row(0, 127), 127);
  EXPECT_EQ(L.coeff_row(64, 63), 127);
  EXPECT_THROW((void)L.coeff_row(0, 128), std::out_of_range);
  EXPECT_THROW((void)L.coeff_row(120, 8), std::out_of_range);
}

TEST(Layout, Fig7FootprintAccounting) {
  // Paper: 32-bit 128-point BP-NTT = 134 rows x 32 cols = 4288 cells.
  EXPECT_EQ(row_layout::footprint_cells_paper(128, 32), 4288u);
  EXPECT_EQ(row_layout::footprint_cells_actual(128, 32), (128 + 9) * 32u);
}

TEST(Config, NttParamsValidation) {
  ntt_params p;
  p.n = 256;
  p.q = 7681;
  p.k = 14;
  EXPECT_NO_THROW(p.validate());
  p.k = 13;  // 2q = 15362 >= 2^13: headroom violated
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p.k = 14;
  p.n = 100;  // not a power of two
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p.n = 256;
  p.q = 7682;  // even
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p.q = 3329;  // 512 does not divide 3328
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p.q = 0;  // synthetic mode is always acceptable
  EXPECT_NO_THROW(p.validate());
}

TEST(Config, EngineConfigValidation) {
  engine_config c;
  EXPECT_NO_THROW(c.validate());
  c.data_rows = 0;
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c.data_rows = 504;  // exceeds 9-bit addressing after scratch rows
  EXPECT_THROW(c.validate(), std::invalid_argument);
}

}  // namespace
}  // namespace bpntt::core
