// Program-level properties of the compiled kernels: determinism, command
// stream image round-trips that execute identically, op-count scaling, and
// the per-butterfly cycle budget implied by Table I.
#include <gtest/gtest.h>

#include "bpntt/engine.h"
#include "common/xoshiro.h"

namespace bpntt::core {
namespace {

microcode_compiler make_compiler(u64 n, u64 q, unsigned k, unsigned data_rows) {
  ntt_params p;
  p.n = n;
  p.q = q;
  p.k = k;
  return microcode_compiler(p, row_layout{data_rows});
}

TEST(ProgramStructure, CompilationIsDeterministic) {
  auto comp = make_compiler(64, 257, 10, 64);
  const math::ntt_tables t(64, 257, true);
  ntt_params p;
  p.n = 64;
  p.q = 257;
  p.k = 10;
  const auto plan = make_twiddle_plan(p, t);
  const auto a = comp.compile_forward(plan);
  const auto b = comp.compile_forward(plan);
  ASSERT_EQ(a.ops.size(), b.ops.size());
  EXPECT_EQ(a.ops, b.ops);
}

TEST(ProgramStructure, EncodedImageExecutesIdentically) {
  // Encode the full forward kernel to CTRL words, decode, and run both on
  // identical arrays: the images must be behaviourally equal.
  ntt_params p;
  p.n = 32;
  p.q = 193;
  p.k = 9;
  engine_config cfg;
  cfg.data_rows = 32;
  cfg.cols = 36;
  const row_layout L{cfg.data_rows};
  microcode_compiler comp(p, L);
  const math::ntt_tables t(p.n, p.q, true);
  const auto plan = make_twiddle_plan(p, t);
  const auto prog = comp.compile_forward(plan);
  const auto round_tripped = isa::program::decode_image(prog.encode_image());

  auto make_loaded_array = [&] {
    sram::subarray arr(L.total_rows(), sram::tile_geometry{cfg.cols, p.k},
                       sram::tech_45nm());
    common::xoshiro256ss rng(11);
    for (unsigned tile = 0; tile < arr.geometry().num_tiles(); ++tile) {
      arr.host_write_word(tile, L.m_row(), p.q);
      arr.host_write_word(tile, L.mneg_row(), (1ULL << p.k) - p.q);
      arr.host_write_word(tile, L.one_row(), 1);
      for (unsigned r = 0; r < p.n; ++r) arr.host_write_word(tile, r, rng.below(p.q));
    }
    return arr;
  };
  auto a1 = make_loaded_array();
  auto a2 = make_loaded_array();
  isa::executor exec;
  exec.run(prog, a1);
  exec.run(round_tripped, a2);
  for (unsigned r = 0; r < L.total_rows(); ++r) {
    ASSERT_EQ(a1.peek(r), a2.peek(r)) << "row " << r;
  }
}

TEST(ProgramStructure, OpCountScalesWithButterflies) {
  // Static command count ~ butterflies x per-butterfly ops (ripple loops
  // are compiled as loops, so this is program size, not cycles).
  const math::ntt_tables t64(64, 12289, true);
  const math::ntt_tables t128(128, 12289, true);
  ntt_params p;
  p.q = 12289;
  p.k = 16;
  p.n = 64;
  const auto prog64 = microcode_compiler(p, row_layout{128}).compile_forward(
      make_twiddle_plan(p, t64));
  p.n = 128;
  const auto prog128 = microcode_compiler(p, row_layout{128}).compile_forward(
      make_twiddle_plan(p, t128));
  // butterflies: 64*6/2=192 vs 128*7/2=448 -> ratio 2.33; twiddle densities
  // differ slightly, allow a band.
  const double ratio = static_cast<double>(prog128.ops.size()) / prog64.ops.size();
  EXPECT_GT(ratio, 2.0);
  EXPECT_LT(ratio, 2.7);
}

TEST(ProgramStructure, PerButterflyCycleBudget) {
  // Table I implies ~230 cycles per butterfly (61.9us x 3.8GHz / 1024).
  // Our reconstruction must stay in that regime — this is the regression
  // guard for the anchor gap documented in EXPERIMENTS.md.
  engine_config cfg;
  ntt_params p;
  p.n = 256;
  p.q = 12289;
  p.k = 16;
  bp_ntt_engine eng(cfg, p);
  common::xoshiro256ss rng(12);
  std::vector<u64> poly(p.n);
  for (auto& x : poly) x = rng.below(p.q);
  for (unsigned lane = 0; lane < eng.lanes(); ++lane) eng.load_polynomial(lane, poly);
  const auto stats = eng.run_forward();
  const double per_bf = static_cast<double>(stats.cycles) / (128 * 8);
  EXPECT_GT(per_bf, 150.0);
  EXPECT_LT(per_bf, 350.0);
}

TEST(ProgramStructure, EveryKernelEndsWithHalt) {
  ntt_params p;
  p.n = 16;
  p.q = 97;
  p.k = 8;
  p.incomplete = true;
  const row_layout L{32};
  microcode_compiler comp(p, L);
  const math::incomplete_ntt_tables t(16, 97);
  const auto plan = make_incomplete_twiddle_plan(p, t);
  for (const auto& prog :
       {comp.compile_forward(plan), comp.compile_inverse(plan),
        comp.compile_basemul(plan, 0, 16, true), comp.compile_modmul_data(0, 1, 2)}) {
    ASSERT_FALSE(prog.ops.empty());
    const auto& last = prog.ops.back();
    EXPECT_EQ(last.type, isa::op_type::check);
    EXPECT_EQ(last.mode, isa::check_mode::ctrl);
    EXPECT_EQ(last.ctrl, isa::ctrl_kind::halt);
  }
}

TEST(ProgramStructure, DisassemblesWithoutUnknowns) {
  ntt_params p;
  p.n = 8;
  p.q = 17;
  p.k = 6;
  const row_layout L{16};
  microcode_compiler comp(p, L);
  const math::ntt_tables t(8, 17, true);
  const auto text = comp.compile_forward(make_twiddle_plan(p, t)).disassemble();
  EXPECT_EQ(text.find('?'), std::string::npos);
  EXPECT_NE(text.find("check.pred"), std::string::npos);
  EXPECT_NE(text.find("pair"), std::string::npos);
  EXPECT_NE(text.find("bnz"), std::string::npos);
}

}  // namespace
}  // namespace bpntt::core
