#include "bpntt/engine.h"

#include <gtest/gtest.h>

#include "common/xoshiro.h"
#include "nttmath/montgomery.h"

namespace bpntt::core {
namespace {

ntt_params small_params() {
  ntt_params p;
  p.n = 16;
  p.q = 97;
  p.k = 8;
  return p;
}

engine_config small_config() {
  engine_config cfg;
  cfg.data_rows = 32;
  cfg.cols = 64;
  return cfg;
}

TEST(Engine, LaneCountFollowsTileWidth) {
  bp_ntt_engine eng(small_config(), small_params());
  EXPECT_EQ(eng.lanes(), 8u);  // 64 cols / 8-bit tiles
  EXPECT_EQ(eng.layout().total_rows(), 32u + 10u);
}

TEST(Engine, ConstantsWrittenToEveryLane) {
  bp_ntt_engine eng(small_config(), small_params());
  for (unsigned t = 0; t < eng.lanes(); ++t) {
    EXPECT_EQ(eng.array().peek_word(t, eng.layout().m_row()), 97u);
    EXPECT_EQ(eng.array().peek_word(t, eng.layout().mneg_row()), 256u - 97u);
    EXPECT_EQ(eng.array().peek_word(t, eng.layout().one_row()), 1u);
  }
}

TEST(Engine, LoadRejectsNonCanonicalCoefficients) {
  bp_ntt_engine eng(small_config(), small_params());
  std::vector<u64> bad(16, 97);  // == q
  EXPECT_THROW(eng.load_polynomial(0, bad), std::invalid_argument);
}

TEST(Engine, LoadRejectsBadLaneAndOverflow) {
  bp_ntt_engine eng(small_config(), small_params());
  std::vector<u64> ok(16, 1);
  EXPECT_THROW(eng.load_polynomial(99, ok), std::out_of_range);
  std::vector<u64> too_long(33, 1);
  EXPECT_THROW(eng.load_polynomial(0, too_long), std::out_of_range);
}

TEST(Engine, ReadPolynomialCountsHostTraffic) {
  bp_ntt_engine eng(small_config(), small_params());
  std::vector<u64> v(16, 5);
  eng.load_polynomial(0, v);
  const auto before = eng.cumulative_stats().host_reads;
  const auto out = eng.read_polynomial(0, 16);
  EXPECT_EQ(out, v);
  EXPECT_EQ(eng.cumulative_stats().host_reads, before + 16);
}

TEST(Engine, RejectsPolynomialLargerThanArray) {
  ntt_params p;
  p.n = 64;  // > 32 data rows
  p.q = 257;
  p.k = 10;
  EXPECT_THROW(bp_ntt_engine(small_config(), p), std::invalid_argument);
}

TEST(Engine, SyntheticModeRunsWithoutTables) {
  ntt_params p;
  p.n = 16;
  p.q = 0;
  p.k = 8;
  bp_ntt_engine eng(small_config(), p, /*seed=*/3);
  EXPECT_EQ(eng.tables(), nullptr);
  common::xoshiro256ss rng(1);
  std::vector<u64> v(16);
  for (auto& x : v) x = rng.below(eng.plan().m);
  eng.load_polynomial(0, v);
  const auto stats = eng.run_forward();
  EXPECT_GT(stats.cycles, 0u);
}

TEST(Engine, ProgramCacheReusesCompiledKernels) {
  bp_ntt_engine eng(small_config(), small_params());
  std::vector<u64> v(16, 3);
  eng.load_polynomial(0, v);
  const auto s1 = eng.run_forward();
  const auto s2 = eng.run_forward();  // cached program, same array-op count modulo ripples
  EXPECT_GT(s1.cycles, 0u);
  EXPECT_GT(s2.cycles, 0u);
  EXPECT_EQ(eng.cached_programs(), 1u);
}

TEST(Engine, ProgramCacheCoversEveryKernelAcrossRepeatedPolymulBatches) {
  // The full in-array product pipeline — forward x2, pointwise, inverse,
  // plus the basemul and modmul kernels — must compile each program once;
  // repeating the batch must not grow the cache.
  bp_ntt_engine eng(small_config(), small_params());
  const auto ra = eng.poly_region(0);
  const auto rb = eng.poly_region(16);
  const auto& layout = eng.layout();
  common::xoshiro256ss rng(5);
  const auto run_once = [&] {
    std::vector<u64> a(16), b(16);
    for (auto& x : a) x = rng.below(97);
    for (auto& x : b) x = rng.below(97);
    eng.load_polynomial(0, a, ra);
    eng.load_polynomial(0, b, rb);
    (void)eng.run_forward(ra);
    (void)eng.run_forward(rb);
    (void)eng.run_pointwise(ra, rb, ra, /*scale_b=*/true);
    (void)eng.run_inverse(ra);
    (void)eng.run_modmul_rows(layout.make_region(0, 1), layout.make_region(1, 1),
                              layout.make_region(2, 1));
  };
  run_once();
  const std::size_t compiled = eng.cached_programs();
  // forward@0, forward@16, pointwise, inverse@0, modmul = 5.
  EXPECT_EQ(compiled, 5u);
  run_once();
  run_once();
  EXPECT_EQ(eng.cached_programs(), compiled) << "repeated batches must not recompile";
  // A different operand placement is a genuinely different program.
  (void)eng.run_inverse(rb);
  EXPECT_EQ(eng.cached_programs(), compiled + 1);
}

TEST(Engine, RegionHandlesAreValidatedAtAllocation) {
  bp_ntt_engine eng(small_config(), small_params());
  const auto& layout = eng.layout();
  EXPECT_THROW((void)layout.make_region(20, 16), std::out_of_range);  // 20+16 > 32 data rows
  EXPECT_THROW((void)layout.make_region(0, 0), std::invalid_argument);
  EXPECT_THROW((void)eng.poly_region(17), std::out_of_range);
  // Kernel-side shape checks: transforms need n rows, pointwise needs
  // equal-sized windows, modmul needs single rows.
  EXPECT_THROW((void)eng.run_forward(layout.make_region(0, 8)), std::invalid_argument);
  EXPECT_THROW((void)eng.run_pointwise(layout.make_region(0, 8), layout.make_region(8, 8),
                                       layout.make_region(16, 4), true),
               std::invalid_argument);
  EXPECT_THROW(
      (void)eng.run_modmul_rows(layout.make_region(0, 2), layout.make_region(2, 1),
                                layout.make_region(3, 1)),
      std::invalid_argument);
}

TEST(Engine, ModmulRowsApi) {
  bp_ntt_engine eng(small_config(), small_params());
  eng.load_polynomial(0, std::vector<u64>{50, 60});
  // a at row 0, b at row 1: dst = a*b*R^-1... run_modmul_rows gives plain
  // Montgomery-domain product semantics via the data path.
  const auto& layout = eng.layout();
  const auto stats = eng.run_modmul_rows(layout.make_region(0, 1), layout.make_region(1, 1),
                                         layout.make_region(2, 1));
  EXPECT_GT(stats.cycles, 0u);
  const u64 got = eng.array().peek_word(0, 2);
  EXPECT_EQ(got, math::interleaved_montgomery(50, 60, 97, 8));
}

}  // namespace
}  // namespace bpntt::core
