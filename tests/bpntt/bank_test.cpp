#include "bpntt/bank.h"

#include <gtest/gtest.h>

#include "common/xoshiro.h"
#include "nttmath/ntt.h"
#include "nttmath/poly.h"

namespace bpntt::core {
namespace {

ntt_params small_params() {
  ntt_params p;
  p.n = 32;
  p.q = 193;
  p.k = 9;
  return p;
}

bank_config small_bank() {
  bank_config cfg;
  cfg.subarrays = 4;
  cfg.array.data_rows = 32;
  cfg.array.cols = 36;  // 4 lanes of 9 bits per subarray
  return cfg;
}

TEST(Bank, GeometryAndCtrlFootprint) {
  bp_ntt_bank bank(small_bank(), small_params());
  EXPECT_EQ(bank.compute_subarrays(), 3u);
  EXPECT_EQ(bank.lanes_per_wave(), 12u);
  // 2*(32-1)+5 = 67 words x 9 bits = 603 bits over 36-bit rows -> 17 rows.
  EXPECT_EQ(bank.ctrl_rows_used(), 17u);
  EXPECT_GT(bank.area_mm2(), 0.0);
}

TEST(Bank, BatchMatchesGoldenForEveryJob) {
  bp_ntt_bank bank(small_bank(), small_params());
  const auto p = small_params();
  const math::ntt_tables tables(p.n, p.q, true);
  common::xoshiro256ss rng(5);

  std::vector<std::vector<u64>> jobs(29);  // 2 full waves + ragged tail
  for (auto& j : jobs) {
    j.resize(p.n);
    for (auto& x : j) x = rng.below(p.q);
  }
  const auto r = bank.run_forward_batch(jobs);
  EXPECT_EQ(r.waves, 3u);  // ceil(29 / 12)
  EXPECT_EQ(r.outputs.size(), jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    auto expect = jobs[i];
    math::ntt_forward(expect, tables);
    ASSERT_EQ(r.outputs[i], expect) << "job " << i;
  }
  EXPECT_GT(r.cycles, 0u);
  EXPECT_GT(r.energy_nj, 0.0);
}

TEST(Bank, WaveLatencyIsMaxNotSum) {
  bp_ntt_bank bank(small_bank(), small_params());
  const auto p = small_params();
  common::xoshiro256ss rng(6);
  std::vector<std::vector<u64>> jobs(12);  // exactly one wave, 3 subarrays
  for (auto& j : jobs) {
    j.resize(p.n);
    for (auto& x : j) x = rng.below(p.q);
  }
  const auto r = bank.run_forward_batch(jobs);
  EXPECT_EQ(r.waves, 1u);
  // One wave across 3 concurrent subarrays: total cycles ~ one engine's
  // run, far below 3x of it.
  bp_ntt_bank single(small_bank(), small_params());
  std::vector<std::vector<u64>> one(jobs.begin(), jobs.begin() + 1);
  const auto r1 = single.run_forward_batch(one);
  EXPECT_LT(r.cycles, 2 * r1.cycles);
  // Energy is additive across subarrays though.
  EXPECT_GT(r.energy_nj, 2.5 * r1.energy_nj);
}

TEST(Bank, EmptyBatch) {
  bp_ntt_bank bank(small_bank(), small_params());
  const auto r = bank.run_forward_batch({});
  EXPECT_EQ(r.waves, 0u);
  EXPECT_EQ(r.cycles, 0u);
}

TEST(Bank, RejectsBadConfigAndJobs) {
  bank_config cfg = small_bank();
  cfg.subarrays = 1;
  EXPECT_THROW(bp_ntt_bank(cfg, small_params()), std::invalid_argument);
  // The rejection must say why a lone subarray is unusable.
  try {
    cfg.validate();
    FAIL() << "validate() accepted subarrays = 1";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("CTRL/CMD"), std::string::npos);
  }

  bp_ntt_bank bank(small_bank(), small_params());
  std::vector<std::vector<u64>> bad(1, std::vector<u64>(7, 0));
  EXPECT_THROW((void)bank.run_forward_batch(bad), std::invalid_argument);
}

TEST(Bank, InverseBatchUndoesForwardBatch) {
  bp_ntt_bank bank(small_bank(), small_params());
  const auto p = small_params();
  common::xoshiro256ss rng(7);
  std::vector<std::vector<u64>> jobs(15);
  for (auto& j : jobs) {
    j.resize(p.n);
    for (auto& x : j) x = rng.below(p.q);
  }
  const auto fwd = bank.run_ntt_batch(jobs, transform_dir::forward);
  const auto back = bank.run_ntt_batch(fwd.outputs, transform_dir::inverse);
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    ASSERT_EQ(back.outputs[i], jobs[i]) << "job " << i;
  }
}

TEST(Bank, PolymulBatchMatchesSchoolbook) {
  // 32 data rows hold only one 32-point operand; double the rows so the
  // a/b region pair fits, then multiply across a full wave + ragged tail.
  bank_config cfg = small_bank();
  cfg.array.data_rows = 64;
  const auto p = small_params();
  bp_ntt_bank bank(cfg, p);
  ASSERT_TRUE(bank.supports_polymul());
  common::xoshiro256ss rng(8);
  std::vector<polymul_pair> jobs(bank.lanes_per_wave() + 2);
  for (auto& j : jobs) {
    j.a.resize(p.n);
    j.b.resize(p.n);
    for (auto& x : j.a) x = rng.below(p.q);
    for (auto& x : j.b) x = rng.below(p.q);
  }
  const auto r = bank.run_polymul_batch(jobs);
  EXPECT_EQ(r.waves, 2u);
  EXPECT_EQ(r.stats.lossless_shift_violations, 0u);
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    ASSERT_EQ(r.outputs[i], math::schoolbook_negacyclic(jobs[i].a, jobs[i].b, p.q))
        << "job " << i;
  }
}

TEST(Bank, PolymulRejectedWhenOperandRegionsDoNotFit) {
  bp_ntt_bank bank(small_bank(), small_params());  // 32 rows, n = 32
  EXPECT_FALSE(bank.supports_polymul());
  std::vector<polymul_pair> one(1);
  one[0].a.assign(32, 0);
  one[0].b.assign(32, 0);
  EXPECT_THROW((void)bank.run_polymul_batch(one), std::invalid_argument);
}

}  // namespace
}  // namespace bpntt::core
