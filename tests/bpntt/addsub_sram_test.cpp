// In-SRAM modular add/sub: the butterfly's non-multiplicative half, built
// from ripple-carry addition with two's-complement conditional correction.
#include <gtest/gtest.h>

#include "bpntt/compiler.h"
#include "common/xoshiro.h"
#include "isa/executor.h"
#include "nttmath/modarith.h"

namespace bpntt::core {
namespace {

struct Fixture {
  u64 q;
  unsigned k;
  row_layout L{16};
  microcode_compiler comp;
  sram::subarray array;
  isa::executor exec;

  Fixture(u64 q_, unsigned k_)
      : q(q_),
        k(k_),
        comp(make_params(k_), L),
        array(L.total_rows(), sram::tile_geometry{64, k_}, sram::tech_45nm()) {
    for (unsigned t = 0; t < array.geometry().num_tiles(); ++t) {
      array.host_write_word(t, L.m_row(), q);
      array.host_write_word(t, L.mneg_row(), (1ULL << k) - q);
      array.host_write_word(t, L.one_row(), 1);
    }
  }

  static ntt_params make_params(unsigned k) {
    ntt_params p;
    p.n = 4;
    p.q = 0;
    p.k = k;
    return p;
  }

  unsigned lanes() const { return array.geometry().num_tiles(); }
};

struct AddSubCase {
  u64 q;
  unsigned k;
};

class SramAddSub : public testing::TestWithParam<AddSubCase> {};

TEST_P(SramAddSub, AdditionMatchesGolden) {
  const auto [q, k] = GetParam();
  Fixture f(q, k);
  common::xoshiro256ss rng(q + k);
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<u64> a(f.lanes()), b(f.lanes());
    for (unsigned t = 0; t < f.lanes(); ++t) {
      a[t] = rng.below(q);
      b[t] = rng.below(q);
      f.array.host_write_word(t, 0, a[t]);
      f.array.host_write_word(t, 1, b[t]);
    }
    f.exec.run(f.comp.compile_mod_add(2, 0, 1), f.array);
    for (unsigned t = 0; t < f.lanes(); ++t) {
      EXPECT_EQ(f.array.peek_word(t, 2), math::add_mod(a[t], b[t], q)) << "lane " << t;
    }
  }
}

TEST_P(SramAddSub, SubtractionMatchesGolden) {
  const auto [q, k] = GetParam();
  Fixture f(q, k);
  common::xoshiro256ss rng(q * 3 + k);
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<u64> a(f.lanes()), b(f.lanes());
    for (unsigned t = 0; t < f.lanes(); ++t) {
      a[t] = rng.below(q);
      b[t] = rng.below(q);
      f.array.host_write_word(t, 0, a[t]);
      f.array.host_write_word(t, 1, b[t]);
    }
    f.exec.run(f.comp.compile_mod_sub(2, 0, 1), f.array);
    for (unsigned t = 0; t < f.lanes(); ++t) {
      EXPECT_EQ(f.array.peek_word(t, 2), math::sub_mod(a[t], b[t], q))
          << "lane " << t << " a=" << a[t] << " b=" << b[t];
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, SramAddSub,
                         testing::Values(AddSubCase{5, 4}, AddSubCase{23, 6},
                                         AddSubCase{3329, 13}, AddSubCase{7681, 14},
                                         AddSubCase{12289, 16}, AddSubCase{8380417, 24}),
                         [](const auto& info) {
                           return "q" + std::to_string(info.param.q) + "_k" +
                                  std::to_string(info.param.k);
                         });

TEST(SramAddSub, ExhaustiveTinyModulusAllPairs) {
  const u64 q = 7;
  const unsigned k = 5;  // 2q = 14 < 32
  Fixture f(q, k);
  for (u64 a = 0; a < q; ++a) {
    for (u64 b = 0; b < q; ++b) {
      for (unsigned t = 0; t < f.lanes(); ++t) f.array.host_write_word(t, 0, a);
      for (unsigned t = 0; t < f.lanes(); ++t) f.array.host_write_word(t, 1, b);
      f.exec.run(f.comp.compile_mod_add(2, 0, 1), f.array);
      f.exec.run(f.comp.compile_mod_sub(3, 0, 1), f.array);
      ASSERT_EQ(f.array.peek_word(0, 2), math::add_mod(a, b, q)) << a << "+" << b;
      ASSERT_EQ(f.array.peek_word(0, 3), math::sub_mod(a, b, q)) << a << "-" << b;
    }
  }
}

TEST(SramAddSub, BoundaryOperands) {
  const u64 q = 12289;
  const unsigned k = 16;
  Fixture f(q, k);
  const u64 cases[][2] = {{0, 0}, {0, q - 1}, {q - 1, 0}, {q - 1, q - 1}, {1, q - 1},
                          {q / 2, q / 2}, {q / 2 + 1, q / 2}};
  for (const auto& c : cases) {
    for (unsigned t = 0; t < f.lanes(); ++t) {
      f.array.host_write_word(t, 0, c[0]);
      f.array.host_write_word(t, 1, c[1]);
    }
    f.exec.run(f.comp.compile_mod_add(2, 0, 1), f.array);
    f.exec.run(f.comp.compile_mod_sub(3, 0, 1), f.array);
    EXPECT_EQ(f.array.peek_word(0, 2), math::add_mod(c[0], c[1], q));
    EXPECT_EQ(f.array.peek_word(0, 3), math::sub_mod(c[0], c[1], q));
  }
}

TEST(SramAddSub, SourceOperandsSurviveWhenDistinct) {
  const u64 q = 3329;
  Fixture f(q, 13);
  f.array.host_write_word(0, 0, 1000);
  f.array.host_write_word(0, 1, 2000);
  f.exec.run(f.comp.compile_mod_add(2, 0, 1), f.array);
  EXPECT_EQ(f.array.peek_word(0, 0), 1000u);
  EXPECT_EQ(f.array.peek_word(0, 1), 2000u);
}

TEST(SramAddSub, InPlaceDestinationAliasA) {
  // The butterfly writes a[j] = a[j] + t with dst == a; verify aliasing.
  const u64 q = 3329;
  Fixture f(q, 13);
  f.array.host_write_word(0, 0, 3000);
  f.array.host_write_word(0, 1, 2000);
  f.exec.run(f.comp.compile_mod_add(0, 0, 1), f.array);
  EXPECT_EQ(f.array.peek_word(0, 0), math::add_mod(3000, 2000, q));
  f.array.host_write_word(0, 0, 100);
  f.exec.run(f.comp.compile_mod_sub(1, 0, 1), f.array);  // dst aliases b
  EXPECT_EQ(f.array.peek_word(0, 1), math::sub_mod(100, 2000, q));
}

}  // namespace
}  // namespace bpntt::core
