#include "bpntt/perf_model.h"

#include <gtest/gtest.h>

namespace bpntt::core {
namespace {

TEST(PerfModel, MetricsArithmetic) {
  engine_config cfg;  // 256x256 @ 45nm, 3.8 GHz
  const auto m = metrics_from_run(cfg, 256, 16, 16, 235220, 69.4);
  EXPECT_NEAR(m.latency_us, 61.9, 0.1);           // Table I anchor
  EXPECT_NEAR(m.throughput_kntt_s, 258.5, 1.0);
  EXPECT_NEAR(m.area_mm2, 0.063, 0.004);
  EXPECT_NEAR(m.tput_per_mj, 230.5, 1.0);         // 16/69.4 nJ
  EXPECT_NEAR(m.tput_per_area, m.throughput_kntt_s / m.area_mm2, 1e-9);
  EXPECT_NEAR(m.power_mw, 69.4 / 61.9, 0.01);
}

TEST(PerfModel, MeasuredHeadlineConfigurationInPaperBallpark) {
  // Run the real simulator at the paper's headline point and require the
  // measured latency/throughput to land within 40% of Table I (the paper's
  // exact microcode is not published; DESIGN.md §3 documents our
  // reconstruction).
  engine_config cfg;
  ntt_params p;
  p.n = 256;
  p.q = 12289;
  p.k = 16;
  const auto m = measure_forward(cfg, p);
  EXPECT_EQ(m.lanes, 16u);
  EXPECT_GT(m.latency_us, 61.9 * 0.6);
  EXPECT_LT(m.latency_us, 61.9 * 1.4);
  EXPECT_GT(m.tput_per_mj, 230.7 * 0.5);
  EXPECT_LT(m.tput_per_mj, 230.7 * 2.0);
}

TEST(PerfModel, CyclesScaleWithBitwidth) {
  engine_config cfg;
  cfg.data_rows = 64;
  cfg.cols = 64;
  ntt_params p;
  p.n = 64;
  p.q = 0;
  p.k = 8;
  const auto m8 = measure_forward(cfg, p);
  p.k = 16;
  const auto m16 = measure_forward(cfg, p);
  p.k = 32;
  const auto m32 = measure_forward(cfg, p);
  // Fig. 8a: clock count grows with bitwidth (roughly linearly).
  EXPECT_GT(m16.cycles, m8.cycles);
  EXPECT_GT(m32.cycles, m16.cycles);
  const double r1 = static_cast<double>(m16.cycles) / m8.cycles;
  EXPECT_GT(r1, 1.4);
  EXPECT_LT(r1, 2.6);
  // Energy per NTT grows steeper than cycles (parallelism shrinks too).
  const double e8 = m8.energy_nj / m8.lanes;
  const double e16 = m16.energy_nj / m16.lanes;
  EXPECT_GT(e16 / e8, r1);
}

TEST(PerfModel, RemoteButterflyCount) {
  // n = 2 * segment: stage len >= segment pairs rows across the boundary.
  EXPECT_EQ(count_remote_butterflies(8, 8), 0u);
  // n=16, segment=8: len=8 stage pairs j in [0,8) with j+8 -> 8 remote.
  EXPECT_EQ(count_remote_butterflies(16, 8), 8u);
  // All butterflies local when segment covers the whole transform.
  EXPECT_EQ(count_remote_butterflies(1024, 1024), 0u);
  EXPECT_GT(count_remote_butterflies(1024, 256), 0u);
}

TEST(PerfModel, ExtrapolationLosesParallelismAndAddsShifts) {
  engine_config cfg;  // 256 data rows, 256 cols
  const auto m512 = extrapolate_forward(cfg, 512, 16);
  EXPECT_TRUE(m512.extrapolated);
  EXPECT_EQ(m512.lanes, 8u);  // 16 tiles / span 2
  const auto m1024 = extrapolate_forward(cfg, 1024, 16);
  EXPECT_EQ(m1024.lanes, 4u);
  EXPECT_GT(m1024.cycles, m512.cycles);
  // Per-NTT energy rises super-linearly in n (Fig. 8b's steep curve).
  const double e512 = m512.energy_nj / m512.lanes;
  const double e1024 = m1024.energy_nj / m1024.lanes;
  EXPECT_GT(e1024, 2.0 * e512);
}

TEST(PerfModel, ExtrapolationRejectsFittingConfigs) {
  engine_config cfg;
  EXPECT_THROW((void)extrapolate_forward(cfg, 256, 16), std::invalid_argument);
  EXPECT_THROW((void)extrapolate_forward(cfg, 8192, 16), std::invalid_argument);  // 32 tiles > 16
}

TEST(PerfModel, SyntheticAndRealCycleCountsAgree) {
  // Synthetic twiddles must be performance-representative: compare against
  // a real modulus at the same (n, k).
  engine_config cfg;
  cfg.data_rows = 64;
  cfg.cols = 64;
  ntt_params real;
  real.n = 64;
  real.q = 257;
  real.k = 10;
  ntt_params synth = real;
  synth.q = 0;
  const auto mr = measure_forward(cfg, real);
  const auto ms = measure_forward(cfg, synth);
  EXPECT_NEAR(static_cast<double>(ms.cycles), static_cast<double>(mr.cycles),
              0.15 * static_cast<double>(mr.cycles));
}

}  // namespace
}  // namespace bpntt::core
