#include "bpntt/twiddle.h"

#include <gtest/gtest.h>

#include "nttmath/modarith.h"
#include "nttmath/montgomery.h"

namespace bpntt::core {
namespace {

TEST(Twiddle, MontgomeryDomainPreScaling) {
  ntt_params p;
  p.n = 256;
  p.q = 7681;
  p.k = 14;
  const math::ntt_tables t(p.n, p.q, true);
  const auto plan = make_twiddle_plan(p, t);
  const u64 r = math::mont_r(p.q, p.k);
  ASSERT_EQ(plan.zetas_mont.size(), t.zetas().size());
  for (std::size_t i = 1; i < t.zetas().size(); ++i) {
    EXPECT_EQ(plan.zetas_mont[i], math::mul_mod(t.zetas()[i], r, p.q));
    // The whole point: modmul_const(B, zeta*R) must equal zeta*B.
    EXPECT_EQ(math::interleaved_montgomery(plan.zetas_mont[i], 1234 % p.q, p.q, p.k),
              math::mul_mod(t.zetas()[i], 1234 % p.q, p.q));
  }
}

TEST(Twiddle, ConstantsMatchModulus) {
  ntt_params p;
  p.n = 128;
  p.q = 3329;
  p.k = 13;
  const math::ntt_tables t(p.n, p.q, true);
  const auto plan = make_twiddle_plan(p, t);
  EXPECT_EQ(plan.m, 3329u);
  EXPECT_EQ(plan.mneg, (1ULL << 13) - 3329);
  EXPECT_EQ(plan.r2, math::mont_r2(p.q, p.k));
  // n_inv_mont drives the inverse-NTT scale pass: modmul_const(x, n_inv*R)
  // = x * n^-1.
  EXPECT_EQ(math::interleaved_montgomery(plan.n_inv_mont, 100, p.q, p.k),
            math::mul_mod(t.n_inv(), 100, p.q));
}

TEST(Twiddle, SyntheticPlanIsDeterministicAndInEnvelope) {
  ntt_params p;
  p.n = 64;
  p.q = 0;
  p.k = 8;
  const auto a = make_synthetic_plan(p, 7);
  const auto b = make_synthetic_plan(p, 7);
  const auto c = make_synthetic_plan(p, 8);
  EXPECT_EQ(a.zetas_mont, b.zetas_mont);
  EXPECT_NE(a.zetas_mont, c.zetas_mont);
  EXPECT_EQ(a.m & 1ULL, 1u);                  // odd
  EXPECT_LT(2 * a.m, 1ULL << p.k);            // headroom
  EXPECT_EQ(a.mneg, (1ULL << p.k) - a.m);
  // Twiddle bit density near 1/2 so synthetic cycle counts are realistic.
  unsigned ones = 0;
  for (std::size_t i = 1; i < p.n; ++i) {
    ones += static_cast<unsigned>(__builtin_popcountll(a.zetas_mont[i]));
  }
  const double density = static_cast<double>(ones) / ((p.n - 1) * p.k);
  EXPECT_GT(density, 0.35);
  EXPECT_LT(density, 0.65);
}

TEST(Twiddle, RejectsMismatchedTables) {
  ntt_params p;
  p.n = 256;
  p.q = 7681;
  p.k = 14;
  const math::ntt_tables wrong(128, 3329, true);
  EXPECT_THROW((void)make_twiddle_plan(p, wrong), std::invalid_argument);
}

}  // namespace
}  // namespace bpntt::core
