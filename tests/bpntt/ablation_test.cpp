// Correctness under every microcode variant: the ablation knobs must never
// change results, only cycle counts.  Each combination runs the full
// in-SRAM NTT against the golden transform on all lanes.
#include <gtest/gtest.h>

#include "bpntt/engine.h"
#include "bpntt/perf_model.h"
#include "common/xoshiro.h"
#include "nttmath/ntt.h"

namespace bpntt::core {
namespace {

struct AblationCase {
  bool fuse_pairs;
  unsigned check_period;
  bool reduced;
};

class MicrocodeAblation : public testing::TestWithParam<AblationCase> {};

TEST_P(MicrocodeAblation, FullNttStillBitExact) {
  const auto c = GetParam();
  engine_config cfg;
  cfg.data_rows = 64;
  cfg.cols = 64;
  cfg.microcode.fuse_pairs = c.fuse_pairs;
  cfg.microcode.ripple_check_period = c.check_period;
  cfg.microcode.reduced_iterations = c.reduced;
  ntt_params p;
  p.n = 64;
  p.q = 257;   // 9-bit class modulus on a 16-bit tile: reduction saves 6 iters
  p.k = 16;
  bp_ntt_engine eng(cfg, p);
  common::xoshiro256ss rng(17);

  std::vector<std::vector<u64>> in(eng.lanes());
  for (unsigned lane = 0; lane < eng.lanes(); ++lane) {
    in[lane].resize(p.n);
    for (auto& x : in[lane]) x = rng.below(p.q);
    eng.load_polynomial(lane, in[lane]);
  }
  const auto stats = eng.run_forward();
  EXPECT_EQ(stats.lossless_shift_violations, 0u);
  for (unsigned lane = 0; lane < eng.lanes(); ++lane) {
    auto expect = in[lane];
    math::ntt_forward(expect, *eng.tables());
    ASSERT_EQ(eng.peek_polynomial(lane, p.n), expect) << "lane " << lane;
  }
  // And back.
  eng.run_inverse();
  for (unsigned lane = 0; lane < eng.lanes(); ++lane) {
    ASSERT_EQ(eng.peek_polynomial(lane, p.n), in[lane]);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllKnobCombos, MicrocodeAblation,
    testing::Values(AblationCase{true, 1, false}, AblationCase{true, 2, false},
                    AblationCase{true, 4, false}, AblationCase{false, 1, false},
                    AblationCase{false, 2, false}, AblationCase{true, 1, true},
                    AblationCase{true, 2, true}, AblationCase{false, 1, true},
                    AblationCase{false, 2, true}),
    [](const auto& info) {
      return std::string(info.param.fuse_pairs ? "fused" : "unfused") + "_p" +
             std::to_string(info.param.check_period) + (info.param.reduced ? "_red" : "_full");
    });

TEST(MicrocodeAblation, UnfusedCostsMoreCycles) {
  engine_config fused, unfused;
  fused.data_rows = unfused.data_rows = 64;
  fused.cols = unfused.cols = 64;
  unfused.microcode.fuse_pairs = false;
  ntt_params p;
  p.n = 64;
  p.q = 257;
  p.k = 10;
  const auto mf = measure_forward(fused, p);
  const auto mu = measure_forward(unfused, p);
  // Every half-add doubles (pair -> AND+XOR) and ripple gains a copy.
  EXPECT_GT(mu.cycles, mf.cycles * 1.3);
  EXPECT_LT(mu.cycles, mf.cycles * 2.2);
}

TEST(MicrocodeAblation, ReducedIterationsSaveCyclesOnWideTiles) {
  engine_config base, reduced;
  base.data_rows = reduced.data_rows = 64;
  base.cols = reduced.cols = 64;
  reduced.microcode.reduced_iterations = true;
  ntt_params p;
  p.n = 64;
  p.q = 257;  // 10 needed bits on a 16-bit tile
  p.k = 16;
  const auto mb = measure_forward(base, p);
  const auto mr = measure_forward(reduced, p);
  EXPECT_LT(mr.cycles, mb.cycles);
  // Roughly proportional to the iteration ratio 10/16 on the modmul part.
  EXPECT_GT(static_cast<double>(mr.cycles) / mb.cycles, 0.5);
  EXPECT_LT(static_cast<double>(mr.cycles) / mb.cycles, 0.95);
}

TEST(MicrocodeAblation, CheckPeriodTradesChecksForIterations) {
  engine_config p1, p4;
  p1.data_rows = p4.data_rows = 64;
  p1.cols = p4.cols = 64;
  p4.microcode.ripple_check_period = 4;
  ntt_params p;
  p.n = 64;
  p.q = 257;
  p.k = 10;
  const auto m1 = measure_forward(p1, p);
  const auto m4 = measure_forward(p4, p);
  // Fewer zero-tests per ripple but extra no-op iterations: the totals stay
  // within a band rather than diverging.
  const double ratio = static_cast<double>(m4.cycles) / m1.cycles;
  EXPECT_GT(ratio, 0.7);
  EXPECT_LT(ratio, 1.4);
  EXPECT_LT(m4.cycles - /*checks*/ 0, m1.cycles + m1.cycles / 2);
}

TEST(MicrocodeAblation, PlanCompatibilityEnforced) {
  ntt_params p;
  p.n = 64;
  p.q = 257;
  p.k = 16;
  compile_options reduced;
  reduced.reduced_iterations = true;
  const microcode_compiler comp(p, row_layout{64}, reduced);
  EXPECT_EQ(comp.iterations(), 10u);  // ceil(log2(514))
  const math::ntt_tables t(p.n, p.q, true);
  const auto wrong_plan = make_twiddle_plan(p, t, 16);
  EXPECT_THROW((void)comp.compile_forward(wrong_plan), std::invalid_argument);
  const auto right_plan = make_twiddle_plan(p, t, 10);
  EXPECT_NO_THROW((void)comp.compile_forward(right_plan));
}

TEST(MicrocodeAblation, OptionsValidation) {
  compile_options o;
  o.ripple_check_period = 0;
  EXPECT_THROW(o.validate(), std::invalid_argument);
  o.ripple_check_period = 9;
  EXPECT_THROW(o.validate(), std::invalid_argument);
  o.ripple_check_period = 8;
  EXPECT_NO_THROW(o.validate());
}

}  // namespace
}  // namespace bpntt::core
