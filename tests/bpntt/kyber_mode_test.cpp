// In-array incomplete-NTT (standardized Kyber) mode: the engine runs
// n=256 / q=3329 natively — forward/inverse transforms and the degree-1
// base multiplications — verified against the golden incomplete transform
// and the schoolbook negacyclic product.
#include <gtest/gtest.h>

#include "bpntt/engine.h"
#include "common/xoshiro.h"
#include "nttmath/incomplete_ntt.h"
#include "nttmath/poly.h"

namespace bpntt::core {
namespace {

std::vector<u64> random_poly(u64 n, u64 q, common::xoshiro256ss& rng) {
  std::vector<u64> v(n);
  for (auto& x : v) x = rng.below(q);
  return v;
}

ntt_params kyber256() {
  ntt_params p;
  p.n = 256;
  p.q = 3329;
  p.k = 13;
  p.incomplete = true;
  return p;
}

TEST(KyberMode, Forward256MatchesGoldenOnAllLanes) {
  engine_config cfg;  // 256x256: 19 lanes of 13-bit tiles
  bp_ntt_engine eng(cfg, kyber256());
  ASSERT_NE(eng.incomplete_tables(), nullptr);
  common::xoshiro256ss rng(1);
  std::vector<std::vector<u64>> in(eng.lanes());
  for (unsigned lane = 0; lane < eng.lanes(); ++lane) {
    in[lane] = random_poly(256, 3329, rng);
    eng.load_polynomial(lane, in[lane]);
  }
  const auto stats = eng.run_forward();
  EXPECT_EQ(stats.lossless_shift_violations, 0u);
  for (unsigned lane = 0; lane < eng.lanes(); ++lane) {
    auto expect = in[lane];
    math::incomplete_ntt_forward(expect, *eng.incomplete_tables());
    ASSERT_EQ(eng.peek_polynomial(lane, 256), expect) << "lane " << lane;
  }
}

TEST(KyberMode, RoundTrip256) {
  engine_config cfg;
  bp_ntt_engine eng(cfg, kyber256());
  common::xoshiro256ss rng(2);
  const auto in = random_poly(256, 3329, rng);
  eng.load_polynomial(0, in);
  eng.run_forward();
  eng.run_inverse();
  EXPECT_EQ(eng.peek_polynomial(0, 256), in);
}

TEST(KyberMode, FullPolymulInArray) {
  // NTT(a), NTT(b), basemul, INTT entirely in-array at n=128 (two row
  // regions of the Kyber modulus; the 256-point pair needs 512 data rows,
  // beyond one subarray's 9-bit addressing — see DESIGN.md §6).
  ntt_params p;
  p.n = 128;
  p.q = 3329;
  p.k = 13;
  p.incomplete = true;
  engine_config cfg;  // 256 data rows: a at [0,128), b at [128,256)
  bp_ntt_engine eng(cfg, p);
  common::xoshiro256ss rng(3);

  std::vector<std::vector<u64>> a(eng.lanes()), b(eng.lanes());
  for (unsigned lane = 0; lane < eng.lanes(); ++lane) {
    a[lane] = random_poly(128, 3329, rng);
    b[lane] = random_poly(128, 3329, rng);
    eng.load_polynomial(lane, a[lane], eng.poly_region(0));
    eng.load_polynomial(lane, b[lane], eng.poly_region(128));
  }
  eng.run_forward(eng.poly_region(0));
  eng.run_forward(eng.poly_region(128));
  const auto stats = eng.run_basemul(eng.poly_region(0), eng.poly_region(128), /*scale_b=*/true);
  EXPECT_EQ(stats.lossless_shift_violations, 0u);
  eng.run_inverse(eng.poly_region(0));
  for (unsigned lane = 0; lane < eng.lanes(); ++lane) {
    ASSERT_EQ(eng.peek_polynomial(lane, 128),
              math::schoolbook_negacyclic(a[lane], b[lane], 3329))
        << "lane " << lane;
  }
}

TEST(KyberMode, BasemulAloneMatchesGolden) {
  ntt_params p;
  p.n = 16;
  p.q = 97;
  p.k = 8;
  p.incomplete = true;
  engine_config cfg;
  cfg.data_rows = 32;
  cfg.cols = 64;
  bp_ntt_engine eng(cfg, p);
  common::xoshiro256ss rng(4);
  std::vector<std::vector<u64>> a(eng.lanes()), b(eng.lanes());
  for (unsigned lane = 0; lane < eng.lanes(); ++lane) {
    a[lane] = random_poly(16, 97, rng);
    b[lane] = random_poly(16, 97, rng);
    eng.load_polynomial(lane, a[lane], eng.poly_region(0));
    eng.load_polynomial(lane, b[lane], eng.poly_region(16));
  }
  eng.run_basemul(eng.poly_region(0), eng.poly_region(16), true);
  for (unsigned lane = 0; lane < eng.lanes(); ++lane) {
    std::vector<u64> expect(16);
    math::incomplete_basemul(a[lane], b[lane], expect, *eng.incomplete_tables());
    ASSERT_EQ(eng.peek_polynomial(lane, 16), expect) << "lane " << lane;
  }
  // The compiled basemul program is cached like the transforms: a repeat
  // run with the same operand regions must not recompile.
  const std::size_t compiled = eng.cached_programs();
  eng.run_basemul(eng.poly_region(0), eng.poly_region(16), true);
  EXPECT_EQ(eng.cached_programs(), compiled);
}

TEST(KyberMode, CompleteModeRejectsBasemul) {
  ntt_params p;
  p.n = 16;
  p.q = 97;
  p.k = 8;  // complete transform
  engine_config cfg;
  cfg.data_rows = 32;
  cfg.cols = 64;
  bp_ntt_engine eng(cfg, p);
  EXPECT_THROW((void)eng.run_basemul(eng.poly_region(0), eng.poly_region(16), true),
               std::logic_error);
}

TEST(KyberMode, ParamValidation) {
  ntt_params p;
  p.n = 256;
  p.q = 3329;
  p.k = 13;
  p.incomplete = false;  // complete transform needs 512 | q-1: invalid
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p.incomplete = true;
  EXPECT_NO_THROW(p.validate());
  p.negacyclic = false;
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

}  // namespace
}  // namespace bpntt::core
