// Wide-coefficient in-SRAM modular multiplication: the paper claims one
// 256x256 subarray supports up to 256-bit coefficients (a 250-point
// polynomial in a single tile).  These tests run Algorithm 2's microcode on
// 128- and 256-bit tiles and check the array bit-for-bit against the
// wide-integer software model (itself validated against a double-and-add
// oracle in the math tests).
#include <gtest/gtest.h>

#include "bpntt/compiler.h"
#include "common/xoshiro.h"
#include "isa/executor.h"
#include "nttmath/bp_modmul_ref.h"

namespace bpntt::core {
namespace {

using math::wide_uint;

void write_wide(sram::subarray& arr, unsigned tile, unsigned row, const wide_uint& v) {
  sram::bitrow r = arr.peek(row);
  const unsigned base = arr.geometry().tile_base(tile);
  for (unsigned i = 0; i < arr.geometry().tile_bits; ++i) r.set(base + i, v.bit(i));
  arr.host_write_row(row, r);
}

wide_uint read_wide(const sram::subarray& arr, unsigned tile, unsigned row, unsigned bits) {
  wide_uint v(bits);
  const unsigned base = arr.geometry().tile_base(tile);
  for (unsigned i = 0; i < bits; ++i) v.set_bit(i, arr.peek(row).get(base + i));
  return v;
}

wide_uint random_below(unsigned bits, const wide_uint& bound, common::xoshiro256ss& rng) {
  wide_uint v(bits);
  do {
    for (unsigned i = 0; i + 2 < bits; ++i) v.set_bit(i, rng.coin());
  } while (v >= bound);
  return v;
}

class WideSramModmul : public testing::TestWithParam<unsigned> {};

TEST_P(WideSramModmul, DataDrivenMatchesWideModel) {
  const unsigned k = GetParam();
  common::xoshiro256ss rng(k * 31);

  // Random odd modulus with the headroom bit clear (2M < 2^k).
  wide_uint m(k);
  for (unsigned i = 0; i + 2 < k; ++i) m.set_bit(i, rng.coin());
  m.set_bit(0, true);
  m.set_bit(k - 2, true);
  const wide_uint mneg = wide_uint(k).sub(m);  // 2^k - M (wraps)

  ntt_params p;
  p.n = 4;
  p.q = 0;  // synthetic ring: row-level test
  p.k = k;
  const row_layout L{8};
  const microcode_compiler comp(p, L);
  sram::subarray arr(L.total_rows(), sram::tile_geometry{256, k}, sram::tech_45nm());
  const unsigned lanes = arr.geometry().num_tiles();
  ASSERT_EQ(lanes, 256 / k);
  for (unsigned t = 0; t < lanes; ++t) {
    write_wide(arr, t, L.m_row(), m);
    write_wide(arr, t, L.mneg_row(), mneg);
    write_wide(arr, t, L.one_row(), wide_uint(k, 1));
  }

  isa::executor exec;
  for (int trial = 0; trial < 6; ++trial) {
    std::vector<wide_uint> a, b;
    for (unsigned t = 0; t < lanes; ++t) {
      a.push_back(random_below(k, m, rng));
      b.push_back(random_below(k, m, rng));
      write_wide(arr, t, 0, a.back());
      write_wide(arr, t, 1, b.back());
    }
    exec.run(comp.compile_modmul_data(0, 1, 2), arr);
    for (unsigned t = 0; t < lanes; ++t) {
      const auto expect = math::bp_modmul_wide(a[t], b[t], m);
      ASSERT_TRUE(expect.observation1_held && expect.observation2_held);
      ASSERT_EQ(read_wide(arr, t, 2, k).to_hex(), expect.value.to_hex())
          << "lane " << t << " k=" << k;
    }
    ASSERT_EQ(arr.stats().lossless_shift_violations, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, WideSramModmul, testing::Values(128u, 256u),
                         [](const auto& info) { return "k" + std::to_string(info.param); });

TEST(WideSramModmul, ModAddSubAtWideWidths) {
  const unsigned k = 128;
  common::xoshiro256ss rng(9);
  wide_uint m(k);
  for (unsigned i = 0; i + 2 < k; ++i) m.set_bit(i, rng.coin());
  m.set_bit(0, true);
  m.set_bit(k - 2, true);

  ntt_params p;
  p.n = 4;
  p.q = 0;
  p.k = k;
  const row_layout L{8};
  const microcode_compiler comp(p, L);
  sram::subarray arr(L.total_rows(), sram::tile_geometry{256, k}, sram::tech_45nm());
  for (unsigned t = 0; t < arr.geometry().num_tiles(); ++t) {
    write_wide(arr, t, L.m_row(), m);
    write_wide(arr, t, L.mneg_row(), wide_uint(k).sub(m));
    write_wide(arr, t, L.one_row(), wide_uint(k, 1));
  }
  isa::executor exec;
  for (int trial = 0; trial < 10; ++trial) {
    const auto a = random_below(k, m, rng);
    const auto b = random_below(k, m, rng);
    for (unsigned t = 0; t < arr.geometry().num_tiles(); ++t) {
      write_wide(arr, t, 0, a);
      write_wide(arr, t, 1, b);
    }
    exec.run(comp.compile_mod_add(2, 0, 1), arr);
    exec.run(comp.compile_mod_sub(3, 0, 1), arr);
    const auto sum = wide_uint::add_mod(a, b, m);
    wide_uint diff = a >= b ? a.sub(b) : m.sub(b.sub(a));
    EXPECT_EQ(read_wide(arr, 0, 2, k).to_hex(), sum.to_hex());
    EXPECT_EQ(read_wide(arr, 0, 3, k).to_hex(), diff.to_hex());
  }
}

TEST(WideSramModmul, SingleTile256BitLayoutMatchesCapacityClaim) {
  // One 256-bit tile occupies the whole 256-column array: exactly the
  // "250-point polynomial with 256-bit coefficients" single-lane shape.
  sram::tile_geometry g{256, 256};
  EXPECT_EQ(g.num_tiles(), 1u);
  const row_layout L{250};
  EXPECT_LE(L.total_rows(), 262u);  // fits the paper's 256+6 wordline budget
}

}  // namespace
}  // namespace bpntt::core
