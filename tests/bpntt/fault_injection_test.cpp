// Failure injection: a stuck-at sense amplifier must surface as a
// golden-model mismatch in the affected lane — and only there.  This is
// the negative control for the whole verification methodology: if faulty
// hardware still "passed", the bit-exact checks elsewhere would be
// meaningless.
#include <gtest/gtest.h>

#include "bpntt/engine.h"
#include "common/xoshiro.h"
#include "nttmath/ntt.h"

namespace bpntt::core {
namespace {

struct run_outcome {
  std::vector<bool> lane_ok;
};

run_outcome run_with_optional_fault(bool inject, unsigned fault_col, bool stuck_value) {
  engine_config cfg;
  cfg.data_rows = 32;
  cfg.cols = 64;
  ntt_params p;
  p.n = 32;
  p.q = 193;
  p.k = 9;
  bp_ntt_engine eng(cfg, p);
  if (inject) eng.mutable_array().inject_stuck_column(fault_col, stuck_value);

  common::xoshiro256ss rng(21);
  std::vector<std::vector<u64>> in(eng.lanes());
  for (unsigned lane = 0; lane < eng.lanes(); ++lane) {
    in[lane].resize(p.n);
    for (auto& x : in[lane]) x = rng.below(p.q);
    eng.load_polynomial(lane, in[lane]);
  }
  eng.run_forward();
  run_outcome out;
  for (unsigned lane = 0; lane < eng.lanes(); ++lane) {
    auto expect = in[lane];
    math::ntt_forward(expect, *eng.tables());
    out.lane_ok.push_back(eng.peek_polynomial(lane, p.n) == expect);
  }
  return out;
}

TEST(FaultInjection, CleanHardwarePassesEverywhere) {
  const auto out = run_with_optional_fault(false, 0, false);
  for (std::size_t lane = 0; lane < out.lane_ok.size(); ++lane) {
    EXPECT_TRUE(out.lane_ok[lane]) << "lane " << lane;
  }
}

TEST(FaultInjection, StuckHighSaHangsTheRippleAndTripsTheWatchdog) {
  // A stuck-at-1 sense amplifier keeps the carry row non-zero forever, so
  // the wired-OR zero test never fires and the data-dependent ripple loops
  // spin: the failure mode is a *hang*, caught by the controller's op
  // budget — a realistic behaviour for this fault class (stuck-at-0 faults
  // instead corrupt data silently; see the tests around this one).
  const row_layout L{8};
  ntt_params p;
  p.n = 4;
  p.q = 0;
  p.k = 9;
  const microcode_compiler comp(p, L);
  sram::subarray arr(L.total_rows(), sram::tile_geometry{36, 9}, sram::tech_45nm());
  for (unsigned t = 0; t < arr.geometry().num_tiles(); ++t) {
    arr.host_write_word(t, L.m_row(), 193);
    arr.host_write_word(t, L.mneg_row(), (1u << 9) - 193);
    arr.host_write_word(t, L.one_row(), 1);
    arr.host_write_word(t, 0, 100);
    arr.host_write_word(t, 1, 150);
  }
  arr.inject_stuck_column(13, true);  // tile 1, bit 4
  const isa::executor guarded(/*max_ops=*/50'000);
  EXPECT_THROW(guarded.run(comp.compile_mod_add(2, 0, 1), arr), std::runtime_error);
}

TEST(FaultInjection, StuckLowSaAlsoDetected) {
  // Column 0 = tile 0 LSB; stuck-0 kills the Montgomery LSB logic there.
  const auto out = run_with_optional_fault(true, 0, false);
  EXPECT_FALSE(out.lane_ok[0]);
  EXPECT_TRUE(out.lane_ok[2]);
}

TEST(FaultInjection, ClearFaultsRestoresCorrectness) {
  engine_config cfg;
  cfg.data_rows = 16;
  cfg.cols = 32;
  ntt_params p;
  p.n = 16;
  p.q = 97;
  p.k = 8;
  bp_ntt_engine eng(cfg, p);
  eng.mutable_array().inject_stuck_column(3, true);
  eng.mutable_array().clear_faults();
  common::xoshiro256ss rng(22);
  std::vector<u64> in(p.n);
  for (auto& x : in) x = rng.below(p.q);
  eng.load_polynomial(0, in);
  eng.run_forward();
  auto expect = in;
  math::ntt_forward(expect, *eng.tables());
  EXPECT_EQ(eng.peek_polynomial(0, p.n), expect);
}

TEST(FaultInjection, OutOfRangeColumnRejected) {
  sram::subarray arr(8, sram::tile_geometry{32, 8}, sram::tech_45nm());
  EXPECT_THROW(arr.inject_stuck_column(32, true), std::out_of_range);
}

}  // namespace
}  // namespace bpntt::core
