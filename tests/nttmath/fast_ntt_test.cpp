#include "nttmath/fast_ntt.h"

#include <gtest/gtest.h>

#include "common/xoshiro.h"
#include "nttmath/poly.h"

namespace bpntt::math {
namespace {

std::vector<u64> random_poly(u64 n, u64 q, common::xoshiro256ss& rng) {
  std::vector<u64> v(n);
  for (auto& x : v) x = rng.below(q);
  return v;
}

TEST(FastNtt, ForwardMatchesGoldenTransform) {
  for (const auto& [n, q] : {std::pair<u64, u64>{256, 12289}, {256, 8380417},
                             {1024, 12289}, {64, 257}}) {
    const ntt_tables t(n, q, true);
    const fast_ntt fast(t);
    common::xoshiro256ss rng(n + q);
    for (int iter = 0; iter < 5; ++iter) {
      auto a = random_poly(n, q, rng);
      auto b = a;
      ntt_forward(a, t);
      fast.forward(b);
      ASSERT_EQ(a, b) << "n=" << n << " q=" << q;
    }
  }
}

TEST(FastNtt, InverseRoundTrip) {
  const ntt_tables t(256, 12289, true);
  const fast_ntt fast(t);
  common::xoshiro256ss rng(3);
  const auto orig = random_poly(256, 12289, rng);
  auto a = orig;
  fast.forward(a);
  fast.inverse(a);
  EXPECT_EQ(a, orig);
}

TEST(FastNtt, MixedPathsInteroperate) {
  // fast forward + golden inverse (and vice versa) agree: identical
  // transform semantics, only the reduction differs.
  const ntt_tables t(128, 3329, true);
  const fast_ntt fast(t);
  common::xoshiro256ss rng(4);
  const auto orig = random_poly(128, 3329, rng);
  auto a = orig;
  fast.forward(a);
  ntt_inverse(a, t);
  EXPECT_EQ(a, orig);
  auto b = orig;
  ntt_forward(b, t);
  fast.inverse(b);
  EXPECT_EQ(b, orig);
}

TEST(FastNtt, RejectsCyclicTablesAndBadSizes) {
  const u64 q = 12289;  // 12288 = 2^12*3: supports cyclic n=4096, n | q-1
  const ntt_tables cyc(256, q, false);
  EXPECT_THROW(fast_ntt{cyc}, std::invalid_argument);
  const ntt_tables t(256, q, true);
  const fast_ntt fast(t);
  std::vector<u64> wrong(128, 0);
  EXPECT_THROW(fast.forward(wrong), std::invalid_argument);
}

}  // namespace
}  // namespace bpntt::math
