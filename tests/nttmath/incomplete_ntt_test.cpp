#include "nttmath/incomplete_ntt.h"

#include <gtest/gtest.h>

#include "common/xoshiro.h"
#include "nttmath/poly.h"

namespace bpntt::math {
namespace {

std::vector<u64> random_poly(u64 n, u64 q, common::xoshiro256ss& rng) {
  std::vector<u64> v(n);
  for (auto& x : v) x = rng.below(q);
  return v;
}

TEST(IncompleteNtt, KyberTablesWellFormed) {
  const incomplete_ntt_tables t(256, 3329);
  EXPECT_EQ(pow_mod(t.zeta(), 256, 3329), 1u);
  EXPECT_EQ(pow_mod(t.zeta(), 128, 3329), 3328u);  // zeta^(n/2) = -1
  // Every gamma is an odd power of zeta, and the set {±gamma_i} covers all
  // primitive square roots used by the quadratic factors.
  for (u64 i = 0; i < 128; ++i) {
    EXPECT_EQ(pow_mod(t.gammas()[i], 256, 3329), 1u);
    EXPECT_NE(pow_mod(t.gammas()[i], 128, 3329), 1u);
  }
}

struct IncompleteCase {
  u64 n;
  u64 q;
};

class IncompleteNttParam : public testing::TestWithParam<IncompleteCase> {};

TEST_P(IncompleteNttParam, RoundTrip) {
  const auto [n, q] = GetParam();
  const incomplete_ntt_tables t(n, q);
  common::xoshiro256ss rng(n ^ q);
  for (int iter = 0; iter < 10; ++iter) {
    auto a = random_poly(n, q, rng);
    const auto orig = a;
    incomplete_ntt_forward(a, t);
    incomplete_ntt_inverse(a, t);
    EXPECT_EQ(a, orig);
  }
}

TEST_P(IncompleteNttParam, ProductMatchesSchoolbook) {
  const auto [n, q] = GetParam();
  const incomplete_ntt_tables t(n, q);
  common::xoshiro256ss rng(n * 3 + q);
  for (int iter = 0; iter < 5; ++iter) {
    const auto a = random_poly(n, q, rng);
    const auto b = random_poly(n, q, rng);
    EXPECT_EQ(polymul_incomplete(a, b, t), schoolbook_negacyclic(a, b, q));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Rings, IncompleteNttParam,
    testing::Values(IncompleteCase{256, 3329},   // standardized Kyber
                    IncompleteCase{8, 17}, IncompleteCase{16, 97},
                    IncompleteCase{64, 257}, IncompleteCase{512, 12289}),
    [](const auto& info) {
      return "n" + std::to_string(info.param.n) + "_q" + std::to_string(info.param.q);
    });

TEST(IncompleteNtt, MatchesCompleteTransformProductWhereBothExist) {
  // For rings where the full negacyclic NTT also exists, both paths give
  // the same ring product.
  const u64 n = 64, q = 257;
  const incomplete_ntt_tables ti(n, q);
  const ntt_tables tc(n, q, true);
  common::xoshiro256ss rng(9);
  const auto a = random_poly(n, q, rng);
  const auto b = random_poly(n, q, rng);
  EXPECT_EQ(polymul_incomplete(a, b, ti), polymul_ntt(a, b, tc));
}

TEST(IncompleteNtt, BasemulIsQuadraticFactorProduct) {
  // Direct check of one base multiplication against polynomial arithmetic
  // mod (x^2 - gamma).
  const incomplete_ntt_tables t(8, 17);
  common::xoshiro256ss rng(10);
  std::vector<u64> a = random_poly(8, 17, rng);
  std::vector<u64> b = random_poly(8, 17, rng);
  std::vector<u64> c(8);
  incomplete_basemul(a, b, c, t);
  for (u64 i = 0; i < 4; ++i) {
    const u64 g = t.gammas()[i];
    const u64 c0 = add_mod(mul_mod(a[2 * i], b[2 * i], 17),
                           mul_mod(mul_mod(a[2 * i + 1], b[2 * i + 1], 17), g, 17), 17);
    EXPECT_EQ(c[2 * i], c0);
  }
}

TEST(IncompleteNtt, RejectsUnsupportedRings) {
  EXPECT_THROW(incomplete_ntt_tables(256, 3331), std::invalid_argument);  // 256 not | 3330
  EXPECT_THROW(incomplete_ntt_tables(100, 3329), std::invalid_argument);  // not pow2
  EXPECT_THROW(incomplete_ntt_tables(2, 17), std::invalid_argument);      // n >= 4
}

}  // namespace
}  // namespace bpntt::math
