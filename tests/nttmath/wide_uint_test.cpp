#include "nttmath/wide_uint.h"

#include <gtest/gtest.h>

#include "common/xoshiro.h"
#include "nttmath/modarith.h"

namespace bpntt::math {
namespace {

wide_uint from_u64(unsigned bits, u64 v) { return wide_uint(bits, v); }

TEST(WideUint, ConstructionAndLow64) {
  const wide_uint w(128, 0xDEADBEEF);
  EXPECT_EQ(w.bits(), 128u);
  EXPECT_EQ(w.low64(), 0xDEADBEEFu);
  EXPECT_FALSE(w.is_zero());
  EXPECT_TRUE(wide_uint(256).is_zero());
}

TEST(WideUint, WidthTrimming) {
  // Value wider than the declared width is truncated mod 2^bits.
  const wide_uint w(8, 0x1FF);
  EXPECT_EQ(w.low64(), 0xFFu);
}

TEST(WideUint, BitAccess) {
  wide_uint w(100);
  w.set_bit(0, true);
  w.set_bit(63, true);
  w.set_bit(64, true);
  w.set_bit(99, true);
  EXPECT_TRUE(w.bit(0));
  EXPECT_TRUE(w.bit(63));
  EXPECT_TRUE(w.bit(64));
  EXPECT_TRUE(w.bit(99));
  EXPECT_FALSE(w.bit(50));
  w.set_bit(63, false);
  EXPECT_FALSE(w.bit(63));
}

TEST(WideUint, ShiftsCrossLimbBoundaries) {
  wide_uint w(128);
  w.set_bit(63, true);
  const auto l = w.shl1();
  EXPECT_TRUE(l.bit(64));
  EXPECT_FALSE(l.bit(63));
  const auto r = l.shr1();
  EXPECT_TRUE(r.bit(63));
}

TEST(WideUint, ShiftDropsAtWidth) {
  wide_uint w(100);
  w.set_bit(99, true);
  EXPECT_TRUE(w.shl1().is_zero());
  wide_uint v(100, 1);
  EXPECT_TRUE(v.shr1().is_zero());
}

TEST(WideUint, AddSubMatchU64At64Bits) {
  common::xoshiro256ss rng(30);
  for (int i = 0; i < 200; ++i) {
    const u64 a = rng(), b = rng();
    EXPECT_EQ(from_u64(64, a).add(from_u64(64, b)).low64(), a + b);
    EXPECT_EQ(from_u64(64, a).sub(from_u64(64, b)).low64(), a - b);
  }
}

TEST(WideUint, AddCarriesAcrossLimbs) {
  wide_uint a(128, ~0ULL);
  const auto s = a.add(wide_uint(128, 1));
  EXPECT_EQ(s.low64(), 0u);
  EXPECT_TRUE(s.bit(64));
}

TEST(WideUint, CompareOrdering) {
  EXPECT_LT(wide_uint(128, 5).compare(wide_uint(128, 9)), 0);
  EXPECT_GT(wide_uint(128, 9).compare(wide_uint(128, 5)), 0);
  EXPECT_EQ(wide_uint(128, 5).compare(wide_uint(128, 5)), 0);
  wide_uint big(128);
  big.set_bit(100, true);
  EXPECT_GT(big.compare(wide_uint(128, ~0ULL)), 0);
}

TEST(WideUint, MulModMatchesU64Oracle) {
  common::xoshiro256ss rng(31);
  const u64 q = 0xFFFFFFFFFFFFFFC5ULL >> 2;  // 62-bit odd modulus
  for (int i = 0; i < 100; ++i) {
    const u64 a = rng.below(q), b = rng.below(q);
    const auto prod =
        wide_uint::mul_mod(wide_uint(80, a), wide_uint(80, b), wide_uint(80, q));
    EXPECT_EQ(prod.low64(), mul_mod(a, b, q));
  }
}

TEST(WideUint, Pow2Mod) {
  // 2^10 mod 1000 = 24
  EXPECT_EQ(wide_uint::pow2_mod(10, wide_uint(64, 1000)).low64(), 24u);
  // 2^k mod small odd modulus matches scalar oracle at 256 bits wide.
  const wide_uint m(256, 12289);
  EXPECT_EQ(wide_uint::pow2_mod(255, m).low64(), pow_mod(2, 255, 12289));
}

TEST(WideUint, HexFormatting) {
  EXPECT_EQ(wide_uint(64, 0).to_hex(), "0");
  EXPECT_EQ(wide_uint(64, 0xAB12).to_hex(), "ab12");
}

TEST(WideUint, BitwiseOps) {
  const wide_uint a(72, 0b1100);
  const wide_uint b(72, 0b1010);
  EXPECT_EQ((a & b).low64(), 0b1000u);
  EXPECT_EQ((a | b).low64(), 0b1110u);
  EXPECT_EQ((a ^ b).low64(), 0b0110u);
  EXPECT_THROW((void)(a & wide_uint(64, 1)), std::invalid_argument);
}

TEST(WideUint, RejectsBadWidths) {
  EXPECT_THROW(wide_uint(0), std::invalid_argument);
  EXPECT_THROW(wide_uint(5000), std::invalid_argument);
}

}  // namespace
}  // namespace bpntt::math
