#include "nttmath/wide_uint.h"

#include <gtest/gtest.h>

#include "common/xoshiro.h"
#include "nttmath/modarith.h"

namespace bpntt::math {
namespace {

wide_uint from_u64(unsigned bits, u64 v) { return wide_uint(bits, v); }

TEST(WideUint, ConstructionAndLow64) {
  const wide_uint w(128, 0xDEADBEEF);
  EXPECT_EQ(w.bits(), 128u);
  EXPECT_EQ(w.low64(), 0xDEADBEEFu);
  EXPECT_FALSE(w.is_zero());
  EXPECT_TRUE(wide_uint(256).is_zero());
}

TEST(WideUint, WidthTrimming) {
  // Value wider than the declared width is truncated mod 2^bits.
  const wide_uint w(8, 0x1FF);
  EXPECT_EQ(w.low64(), 0xFFu);
}

TEST(WideUint, BitAccess) {
  wide_uint w(100);
  w.set_bit(0, true);
  w.set_bit(63, true);
  w.set_bit(64, true);
  w.set_bit(99, true);
  EXPECT_TRUE(w.bit(0));
  EXPECT_TRUE(w.bit(63));
  EXPECT_TRUE(w.bit(64));
  EXPECT_TRUE(w.bit(99));
  EXPECT_FALSE(w.bit(50));
  w.set_bit(63, false);
  EXPECT_FALSE(w.bit(63));
}

TEST(WideUint, ShiftsCrossLimbBoundaries) {
  wide_uint w(128);
  w.set_bit(63, true);
  const auto l = w.shl1();
  EXPECT_TRUE(l.bit(64));
  EXPECT_FALSE(l.bit(63));
  const auto r = l.shr1();
  EXPECT_TRUE(r.bit(63));
}

TEST(WideUint, ShiftDropsAtWidth) {
  wide_uint w(100);
  w.set_bit(99, true);
  EXPECT_TRUE(w.shl1().is_zero());
  wide_uint v(100, 1);
  EXPECT_TRUE(v.shr1().is_zero());
}

TEST(WideUint, AddSubMatchU64At64Bits) {
  common::xoshiro256ss rng(30);
  for (int i = 0; i < 200; ++i) {
    const u64 a = rng(), b = rng();
    EXPECT_EQ(from_u64(64, a).add(from_u64(64, b)).low64(), a + b);
    EXPECT_EQ(from_u64(64, a).sub(from_u64(64, b)).low64(), a - b);
  }
}

TEST(WideUint, AddCarriesAcrossLimbs) {
  wide_uint a(128, ~0ULL);
  const auto s = a.add(wide_uint(128, 1));
  EXPECT_EQ(s.low64(), 0u);
  EXPECT_TRUE(s.bit(64));
}

TEST(WideUint, CompareOrdering) {
  EXPECT_LT(wide_uint(128, 5).compare(wide_uint(128, 9)), 0);
  EXPECT_GT(wide_uint(128, 9).compare(wide_uint(128, 5)), 0);
  EXPECT_EQ(wide_uint(128, 5).compare(wide_uint(128, 5)), 0);
  wide_uint big(128);
  big.set_bit(100, true);
  EXPECT_GT(big.compare(wide_uint(128, ~0ULL)), 0);
}

TEST(WideUint, MulModMatchesU64Oracle) {
  common::xoshiro256ss rng(31);
  const u64 q = 0xFFFFFFFFFFFFFFC5ULL >> 2;  // 62-bit odd modulus
  for (int i = 0; i < 100; ++i) {
    const u64 a = rng.below(q), b = rng.below(q);
    const auto prod =
        wide_uint::mul_mod(wide_uint(80, a), wide_uint(80, b), wide_uint(80, q));
    EXPECT_EQ(prod.low64(), mul_mod(a, b, q));
  }
}

TEST(WideUint, Pow2Mod) {
  // 2^10 mod 1000 = 24
  EXPECT_EQ(wide_uint::pow2_mod(10, wide_uint(64, 1000)).low64(), 24u);
  // 2^k mod small odd modulus matches scalar oracle at 256 bits wide.
  const wide_uint m(256, 12289);
  EXPECT_EQ(wide_uint::pow2_mod(255, m).low64(), pow_mod(2, 255, 12289));
}

TEST(WideUint, HexFormatting) {
  EXPECT_EQ(wide_uint(64, 0).to_hex(), "0");
  EXPECT_EQ(wide_uint(64, 0xAB12).to_hex(), "ab12");
}

TEST(WideUint, BitwiseOps) {
  const wide_uint a(72, 0b1100);
  const wide_uint b(72, 0b1010);
  EXPECT_EQ((a & b).low64(), 0b1000u);
  EXPECT_EQ((a | b).low64(), 0b1110u);
  EXPECT_EQ((a ^ b).low64(), 0b0110u);
  EXPECT_THROW((void)(a & wide_uint(64, 1)), std::invalid_argument);
}

TEST(WideUint, RejectsBadWidths) {
  EXPECT_THROW(wide_uint(0), std::invalid_argument);
  EXPECT_THROW(wide_uint(5000), std::invalid_argument);
}

// ---- mul / divmod (the CRT reconstruction arithmetic) ----------------------

TEST(WideUint, ResizedExtendsAndTruncates) {
  const wide_uint w(64, 0xFFFF0000FFFF0000ULL);
  EXPECT_EQ(w.resized(128).low64(), 0xFFFF0000FFFF0000ULL);
  EXPECT_EQ(w.resized(128).bits(), 128u);
  EXPECT_EQ(w.resized(16).low64(), 0x0000u);  // truncation keeps the low bits
  EXPECT_EQ(w.resized(20).low64(), 0xF0000u);
  // Extending never invents bits above the old width.
  EXPECT_FALSE(w.resized(128).bit(64));
}

TEST(WideUint, MulMatchesU128OracleIncludingMixedWidths) {
  common::xoshiro256ss rng(77);
  for (int i = 0; i < 200; ++i) {
    const u64 a = rng(), b = rng();
    const u128 full = static_cast<u128>(a) * b;
    // 192-bit result holds the full 128-bit product; operand widths differ.
    const wide_uint prod = wide_uint(192, a).mul(wide_uint(64, b));
    EXPECT_EQ(prod.low64(), static_cast<u64>(full));
    wide_uint hi = prod;
    for (int s = 0; s < 64; ++s) hi = hi.shr1();
    EXPECT_EQ(hi.low64(), static_cast<u64>(full >> 64));
  }
}

TEST(WideUint, MulTruncatesModPow2AndHandlesCarryEdges) {
  // (2^64 - 1)^2 = 2^128 - 2^65 + 1: full carry propagation across limbs.
  const wide_uint max64(128, ~0ULL);
  const wide_uint sq = max64.mul(max64);
  EXPECT_EQ(sq.low64(), 1u);
  wide_uint hi = sq;
  for (int s = 0; s < 64; ++s) hi = hi.shr1();
  EXPECT_EQ(hi.low64(), ~0ULL - 1);  // 2^64 - 2
  // Truncating width: the same product at 64 bits keeps only the low limb.
  const wide_uint sq64 = wide_uint(64, ~0ULL).mul(wide_uint(64, ~0ULL));
  EXPECT_EQ(sq64.low64(), 1u);
}

TEST(WideUint, MulWithZeroLimbsInTheMiddle) {
  // a = 2^128 + 3 (limb 1 is zero), b = 2^64 + 1: zero inner limbs must
  // not derail the carry chain.
  wide_uint a(256, 3);
  a.set_bit(128, true);
  wide_uint b(256, 1);
  b.set_bit(64, true);
  const wide_uint p = a.mul(b);  // 2^192 + 2^128 + 3*2^64 + 3
  EXPECT_TRUE(p.bit(192));
  EXPECT_TRUE(p.bit(128));
  EXPECT_EQ(p.low64(), 3u);
  wide_uint mid = p;
  for (int s = 0; s < 64; ++s) mid = mid.shr1();
  EXPECT_EQ(mid.low64(), 3u);
}

TEST(WideUint, DivmodReconstructsDividend) {
  common::xoshiro256ss rng(88);
  for (int i = 0; i < 50; ++i) {
    wide_uint a(192);
    for (unsigned b = 0; b < 192; ++b) a.set_bit(b, rng() & 1ULL);
    // Mixed widths: a 64-bit divisor against a 192-bit dividend.
    const wide_uint d(64, rng() | 1ULL);
    const wide_divmod dm = a.divmod(d);
    EXPECT_TRUE(dm.rem < d.resized(192));
    // quot * d + rem == a (all at 192 bits; the product cannot overflow).
    const wide_uint back = dm.quot.mul(d).add(dm.rem);
    EXPECT_TRUE(back == a) << "iteration " << i;
  }
}

TEST(WideUint, DivmodEdgeCases) {
  const wide_uint a(128, 12345);
  // Division by 1: quotient = dividend, remainder = 0.
  const auto by_one = a.divmod(wide_uint(8, 1));
  EXPECT_TRUE(by_one.quot == a);
  EXPECT_TRUE(by_one.rem.is_zero());
  // Division by self: quotient 1, remainder 0.
  const auto by_self = a.divmod(a);
  EXPECT_EQ(by_self.quot.low64(), 1u);
  EXPECT_TRUE(by_self.rem.is_zero());
  // Divisor wider than the dividend's width and larger in value: quot 0.
  wide_uint huge(256);
  huge.set_bit(200, true);
  const auto by_huge = a.divmod(huge);
  EXPECT_TRUE(by_huge.quot.is_zero());
  EXPECT_TRUE(by_huge.rem == a);
  // Zero dividend.
  const auto zero = wide_uint(128).divmod(a);
  EXPECT_TRUE(zero.quot.is_zero());
  EXPECT_TRUE(zero.rem.is_zero());
  // Division by zero throws.
  EXPECT_THROW((void)a.divmod(wide_uint(64)), std::domain_error);
  EXPECT_THROW((void)a.mod_u64(0), std::domain_error);
}

TEST(WideUint, DivmodWithTopBitSetDivisor) {
  // The carry-edge case: a divisor with its top bit set at the dividend's
  // width (2*divisor would overflow the nominal width mid-division).
  wide_uint a(64, ~0ULL);       // 2^64 - 1
  wide_uint d(64, 1ULL << 63);  // 2^63
  const auto dm = a.divmod(d);
  EXPECT_EQ(dm.quot.low64(), 1u);
  EXPECT_EQ(dm.rem.low64(), (1ULL << 63) - 1);
}

// ---- divround (the rescale round-division helper) --------------------------

TEST(WideUint, DivroundMatchesU128OracleIncludingTies) {
  common::xoshiro256ss rng(111);
  for (int i = 0; i < 200; ++i) {
    const u64 x = rng();
    const u64 d = (rng() % 1000) + 1;  // small divisors make ties common
    const wide_uint got = wide_uint(128, x).divround(wide_uint(64, d));
    // round-half-up at 128-bit working width: floor((2x + d) / 2d).
    const u128 expect = (static_cast<u128>(x) * 2 + d) / (static_cast<u128>(d) * 2);
    EXPECT_EQ(got.low64(), static_cast<u64>(expect)) << x << " / " << d;
  }
}

TEST(WideUint, DivroundRoundsExactHalvesUp) {
  // 2r == d is only reachable with an even divisor; the tie must round up.
  EXPECT_EQ(wide_uint(64, 5).divround(wide_uint(64, 2)).low64(), 3u);    // 2.5 -> 3
  EXPECT_EQ(wide_uint(64, 7).divround(wide_uint(64, 2)).low64(), 4u);    // 3.5 -> 4
  EXPECT_EQ(wide_uint(64, 50).divround(wide_uint(64, 100)).low64(), 1u); // 0.5 -> 1
  EXPECT_EQ(wide_uint(64, 49).divround(wide_uint(64, 100)).low64(), 0u); // below half
  EXPECT_EQ(wide_uint(64, 51).divround(wide_uint(64, 100)).low64(), 1u); // above half
  // Odd divisor (the rescale case): no ties exist, nearest wins.
  EXPECT_EQ(wide_uint(64, 8).divround(wide_uint(64, 5)).low64(), 2u);    // 1.6 -> 2
  EXPECT_EQ(wide_uint(64, 7).divround(wide_uint(64, 5)).low64(), 1u);    // 1.4 -> 1
}

TEST(WideUint, DivroundWithDividendNarrowerThanDivisor) {
  // A 32-bit value against divisors at (and beyond) much wider widths:
  // quotient rounds on the remainder alone.
  const wide_uint x(32, 3);
  EXPECT_EQ(x.divround(wide_uint(128, 5)).low64(), 1u);  // 0.6 rounds up
  EXPECT_EQ(x.divround(wide_uint(128, 7)).low64(), 0u);  // 3/7 rounds down
  // Divisor value itself wider than the dividend's width: quotient 0, and
  // the half comparison still sees the full divisor.
  wide_uint huge(256);
  huge.set_bit(200, true);
  EXPECT_TRUE(wide_uint(64, ~0ULL).divround(huge).is_zero());
}

TEST(WideUint, DivroundAliasingAndZeroInputs) {
  // x.divround(x) aliases dividend and divisor: exactly 1 for non-zero x.
  wide_uint a(192);
  a.set_bit(150, true);
  a.set_bit(3, true);
  EXPECT_EQ(a.divround(a).low64(), 1u);
  // Zero dividend (including one whose limbs are all zero at wide widths).
  EXPECT_TRUE(wide_uint(256).divround(a).is_zero());
  const wide_uint zero_low(128);  // both limbs zero
  EXPECT_TRUE(zero_low.divround(wide_uint(64, 3)).is_zero());
  // Division by zero throws, as divmod does.
  EXPECT_THROW((void)a.divround(wide_uint(64)), std::domain_error);
}

TEST(WideUint, ModU64MatchesScalarOracle) {
  common::xoshiro256ss rng(99);
  for (int i = 0; i < 100; ++i) {
    const u64 lo = rng(), hi = rng();
    const u64 m = (rng() | 1ULL) >> 1;
    wide_uint a(192, lo);
    for (unsigned b = 0; b < 64; ++b) a.set_bit(64 + b, (hi >> b) & 1ULL);
    const u128 value = (static_cast<u128>(hi) << 64) | lo;
    EXPECT_EQ(a.mod_u64(m), static_cast<u64>(value % m));
  }
  // Zero-limb edge: a value whose low limb is zero.
  wide_uint a(128);
  a.set_bit(64, true);  // 2^64
  EXPECT_EQ(a.mod_u64(10), 6u);  // 18446744073709551616 mod 10
}

}  // namespace
}  // namespace bpntt::math
