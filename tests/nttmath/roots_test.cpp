#include "nttmath/roots.h"

#include <gtest/gtest.h>

#include "nttmath/primes.h"

namespace bpntt::math {
namespace {

TEST(Roots, GeneratorHasFullOrder) {
  for (u64 q : {17ULL, 97ULL, 3329ULL, 12289ULL, 8380417ULL}) {
    const u64 g = find_generator(q);
    EXPECT_TRUE(has_order(g, q - 1, q)) << "q=" << q << " g=" << g;
  }
}

TEST(Roots, PrimitiveRootOfUnityProperties) {
  struct Case {
    u64 n, q;
  };
  for (const auto& c : {Case{256, 3329}, Case{512, 12289}, Case{1024, 12289},
                        Case{512, 8380417}, Case{8, 17}}) {
    const u64 w = primitive_root_of_unity(c.n, c.q);
    SCOPED_TRACE(testing::Message() << "n=" << c.n << " q=" << c.q);
    EXPECT_EQ(pow_mod(w, c.n, c.q), 1u);
    EXPECT_NE(pow_mod(w, c.n / 2, c.q), 1u);
    // omega^(n/2) = -1 for even-order roots in a field.
    EXPECT_EQ(pow_mod(w, c.n / 2, c.q), c.q - 1);
  }
}

TEST(Roots, NegacyclicPsiSquaresToOmega) {
  const u64 q = 3329, n = 128;  // 3328 = 2^8 * 13, so 2n = 256 is the max
  const u64 psi = primitive_root_of_unity(2 * n, q);
  const u64 omega = primitive_root_of_unity(n, q);
  // psi^2 is *a* primitive n-th root (may differ from `omega` itself).
  EXPECT_TRUE(has_order(mul_mod(psi, psi, q), n, q));
  EXPECT_TRUE(has_order(omega, n, q));
}

TEST(Roots, RejectsNonDividingOrder) {
  EXPECT_THROW(primitive_root_of_unity(512, 3329), std::invalid_argument);  // 512 ∤ 3328
  EXPECT_THROW(primitive_root_of_unity(0, 17), std::invalid_argument);
}

TEST(Roots, HasOrderNegativeCases) {
  // 2^4 = 16 ≡ -1 mod 17, so ord(2) = 8, not 4 or 16's divisors checked wrongly.
  EXPECT_TRUE(has_order(2, 8, 17));
  EXPECT_FALSE(has_order(2, 16, 17));
  EXPECT_FALSE(has_order(2, 4, 17));
  EXPECT_FALSE(has_order(1, 2, 17));
}

}  // namespace
}  // namespace bpntt::math
