#include "nttmath/primes.h"

#include <gtest/gtest.h>

namespace bpntt::math {
namespace {

TEST(Primes, SmallValues) {
  EXPECT_FALSE(is_prime(0));
  EXPECT_FALSE(is_prime(1));
  EXPECT_TRUE(is_prime(2));
  EXPECT_TRUE(is_prime(3));
  EXPECT_FALSE(is_prime(4));
  EXPECT_TRUE(is_prime(97));
  EXPECT_FALSE(is_prime(91));  // 7*13
}

TEST(Primes, KnownCryptoPrimes) {
  EXPECT_TRUE(is_prime(3329));      // Kyber
  EXPECT_TRUE(is_prime(12289));     // Falcon/NewHope
  EXPECT_TRUE(is_prime(8380417));   // Dilithium
  EXPECT_TRUE(is_prime((1ULL << 61) - 1));  // Mersenne
  EXPECT_FALSE(is_prime(3329ULL * 12289));
}

TEST(Primes, StrongPseudoprimesRejected) {
  // Carmichael numbers and classic base-2 pseudoprimes.
  for (u64 n : {561ULL, 1105ULL, 1729ULL, 2047ULL, 3215031751ULL}) {
    EXPECT_FALSE(is_prime(n)) << n;
  }
}

TEST(Primes, DistinctFactors) {
  EXPECT_EQ(distinct_prime_factors(1), std::vector<u64>{});
  EXPECT_EQ(distinct_prime_factors(12), (std::vector<u64>{2, 3}));
  EXPECT_EQ(distinct_prime_factors(3328), (std::vector<u64>{2, 13}));  // q-1 of Kyber
  EXPECT_EQ(distinct_prime_factors(8380416), (std::vector<u64>{2, 3, 11, 31}));
  const u64 semi = 1000003ULL * 999983ULL;
  EXPECT_EQ(distinct_prime_factors(semi), (std::vector<u64>{999983, 1000003}));
}

TEST(Primes, FindPrimeCongruent) {
  // Smallest prime ≡ 1 mod 512 above 2^13 is 12289? 12288 = 24*512 ✓ —
  // verify the search honors both bounds and the congruence.
  const u64 q = find_prime_congruent(8192, 16384, 512);
  ASSERT_NE(q, 0u);
  EXPECT_TRUE(is_prime(q));
  EXPECT_EQ((q - 1) % 512, 0u);
  EXPECT_GE(q, 8192u);
}

TEST(Primes, NttFriendlyPrimeProperties) {
  for (unsigned bits : {14u, 16u, 21u, 23u, 29u}) {
    for (u64 n : {256ULL, 1024ULL}) {
      SCOPED_TRACE(testing::Message() << "bits=" << bits << " n=" << n);
      u64 q = 0;
      try {
        q = ntt_friendly_prime(bits, n, true);
      } catch (const std::runtime_error&) {
        continue;  // no such prime in that window — acceptable for tight widths
      }
      EXPECT_TRUE(is_prime(q));
      EXPECT_EQ((q - 1) % (2 * n), 0u);
      EXPECT_GE(q, 1ULL << (bits - 1));
      EXPECT_LT(q, 1ULL << bits);
    }
  }
}

TEST(Primes, NttFriendlyPrimeRejectsBadWidth) {
  EXPECT_THROW(ntt_friendly_prime(1, 256), std::runtime_error);
  EXPECT_THROW(ntt_friendly_prime(63, 256), std::runtime_error);
}

TEST(Primes, FirstKNttPrimesBuildsAscendingDistinctChains) {
  for (const unsigned k : {1u, 2u, 4u, 8u}) {
    SCOPED_TRACE(testing::Message() << "k=" << k);
    const auto chain = first_k_ntt_primes(20, 256, k);
    ASSERT_EQ(chain.size(), k);
    for (std::size_t i = 0; i < chain.size(); ++i) {
      EXPECT_TRUE(is_prime(chain[i])) << "limb " << i;
      EXPECT_EQ((chain[i] - 1) % 512, 0u) << "limb " << i;
      EXPECT_GE(chain[i], 1ULL << 19);
      EXPECT_LT(chain[i], 1ULL << 20);
      if (i > 0) EXPECT_GT(chain[i], chain[i - 1]) << "not ascending at limb " << i;
    }
  }
  // The first limb is exactly the single-prime search's answer.
  EXPECT_EQ(first_k_ntt_primes(20, 256, 1).front(), ntt_friendly_prime(20, 256));
}

TEST(Primes, FirstKNttPrimesReportsShortfallPrecisely) {
  // 12-bit primes with q == 1 (mod 2048): the window [2048, 4096) holds
  // none, and the error says so with the search parameters.
  try {
    (void)first_k_ntt_primes(12, 1024, 2);
    FAIL() << "impossible chain accepted";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("only 0 of 2"), std::string::npos) << what;
    EXPECT_NE(what.find("12 bits"), std::string::npos) << what;
    EXPECT_NE(what.find("mod 2048"), std::string::npos) << what;
  }
  // A window with some but not enough primes names the count it found.
  try {
    (void)first_k_ntt_primes(14, 2048, 16);
    FAIL() << "oversized chain accepted";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find(" of 16"), std::string::npos) << e.what();
  }
  EXPECT_THROW((void)first_k_ntt_primes(1, 256, 1), std::runtime_error);
  EXPECT_THROW((void)first_k_ntt_primes(63, 256, 1), std::runtime_error);
  EXPECT_THROW((void)first_k_ntt_primes(20, 256, 0), std::runtime_error);
}

}  // namespace
}  // namespace bpntt::math
