#include "nttmath/ntt.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/xoshiro.h"
#include "nttmath/poly.h"
#include "nttmath/primes.h"

namespace bpntt::math {
namespace {

std::vector<u64> random_poly(u64 n, u64 q, common::xoshiro256ss& rng) {
  std::vector<u64> v(n);
  for (auto& x : v) x = rng.below(q);
  return v;
}

struct NttCase {
  u64 n;
  u64 q;
};

class NttRoundTrip : public testing::TestWithParam<NttCase> {};

TEST_P(NttRoundTrip, NegacyclicInverseRestores) {
  const auto [n, q] = GetParam();
  const ntt_tables t(n, q, true);
  common::xoshiro256ss rng(n ^ q);
  for (int iter = 0; iter < 10; ++iter) {
    auto a = random_poly(n, q, rng);
    auto original = a;
    ntt_forward(a, t);
    ntt_inverse(a, t);
    EXPECT_EQ(a, original);
  }
}

TEST_P(NttRoundTrip, ConvolutionTheoremMatchesSchoolbook) {
  const auto [n, q] = GetParam();
  const ntt_tables t(n, q, true);
  common::xoshiro256ss rng(n * 31 + q);
  for (int iter = 0; iter < 5; ++iter) {
    const auto a = random_poly(n, q, rng);
    const auto b = random_poly(n, q, rng);
    EXPECT_EQ(polymul_ntt(a, b, t), schoolbook_negacyclic(a, b, q));
  }
}

INSTANTIATE_TEST_SUITE_P(
    PqcAndHeSizes, NttRoundTrip,
    // Note: Kyber's 3329 only supports n <= 128 negacyclic (3328 = 2^8 * 13);
    // 256-point cases use Falcon/round-1-Kyber/Dilithium moduli.
    testing::Values(NttCase{4, 97}, NttCase{8, 97}, NttCase{16, 97}, NttCase{32, 193},
                    NttCase{64, 257}, NttCase{128, 3329}, NttCase{256, 12289},
                    NttCase{256, 7681}, NttCase{256, 8380417}, NttCase{512, 12289},
                    NttCase{1024, 12289}),
    [](const auto& info) {
      return "n" + std::to_string(info.param.n) + "_q" + std::to_string(info.param.q);
    });

TEST(Ntt, ForwardIsLinear) {
  const u64 n = 64, q = 257;
  const ntt_tables t(n, q, true);
  common::xoshiro256ss rng(9);
  const auto a = random_poly(n, q, rng);
  const auto b = random_poly(n, q, rng);
  auto sum = poly_add(a, b, q);
  auto fa = a, fb = b;
  ntt_forward(fa, t);
  ntt_forward(fb, t);
  ntt_forward(sum, t);
  EXPECT_EQ(sum, poly_add(fa, fb, q));
}

TEST(Ntt, DeltaTransformsToConstant) {
  // NTT of delta at x^0 is the all-ones vector in every evaluation basis.
  const u64 n = 128, q = 3329;
  const ntt_tables t(n, q, true);
  std::vector<u64> delta(n, 0);
  delta[0] = 1;
  ntt_forward(delta, t);
  for (u64 i = 0; i < n; ++i) EXPECT_EQ(delta[i], 1u);
}

TEST(Ntt, MultiplicationByXRotatesNegacyclically) {
  const u64 n = 32, q = 193;
  const ntt_tables t(n, q, true);
  common::xoshiro256ss rng(10);
  const auto a = random_poly(n, q, rng);
  std::vector<u64> x(n, 0);
  x[1] = 1;
  const auto prod = polymul_ntt(a, x, t);
  // (a * x) mod (x^n + 1): coefficients rotate with sign flip wrap.
  for (u64 i = 1; i < n; ++i) EXPECT_EQ(prod[i], a[i - 1]);
  EXPECT_EQ(prod[0], neg_mod(a[n - 1], q));
}

TEST(CyclicNtt, RoundTripAndConvolution) {
  for (u64 n : {8ULL, 64ULL, 256ULL}) {
    const u64 q = ntt_friendly_prime(14, n, /*negacyclic=*/false);
    const ntt_tables t(n, q, false);
    common::xoshiro256ss rng(n);
    auto a = random_poly(n, q, rng);
    const auto b = random_poly(n, q, rng);
    const auto orig = a;
    cyclic_ntt_forward(a, t);
    cyclic_ntt_inverse(a, t);
    EXPECT_EQ(a, orig);
    EXPECT_EQ(polymul_ntt(orig, b, t), schoolbook_cyclic(orig, b, q));
  }
}

TEST(Ntt, BitrevPermuteIsInvolution) {
  common::xoshiro256ss rng(11);
  std::vector<u64> v(256);
  for (auto& x : v) x = rng();
  auto w = v;
  bitrev_permute(w);
  EXPECT_NE(w, v);
  bitrev_permute(w);
  EXPECT_EQ(w, v);
}

TEST(Ntt, TablesRejectBadParameters) {
  EXPECT_THROW(ntt_tables(100, 3329, true), std::invalid_argument);   // not power of two
  EXPECT_THROW(ntt_tables(256, 3331, true), std::invalid_argument);   // 512 ∤ q-1
  EXPECT_THROW(ntt_tables(1024, 3329, true), std::invalid_argument);  // too large for q
}

TEST(Ntt, ForwardOutputIsBitReversedEvaluation) {
  // Spot-check the evaluation semantics: output[brv(i)] = a(psi^(2i+1)).
  const u64 n = 16, q = 97;
  const ntt_tables t(n, q, true);
  common::xoshiro256ss rng(12);
  auto a = random_poly(n, q, rng);
  const auto coeffs = a;
  ntt_forward(a, t);
  // Evaluate the polynomial directly at odd psi powers.
  std::vector<u64> evals;
  for (u64 i = 0; i < n; ++i) {
    const u64 point = pow_mod(t.psi(), 2 * i + 1, q);
    u64 acc = 0;
    for (u64 j = n; j-- > 0;) acc = add_mod(mul_mod(acc, point, q), coeffs[j], q);
    evals.push_back(acc);
  }
  // The transform output is some fixed permutation of those evaluations.
  std::vector<u64> sorted_out = a, sorted_ev = evals;
  std::sort(sorted_out.begin(), sorted_out.end());
  std::sort(sorted_ev.begin(), sorted_ev.end());
  EXPECT_EQ(sorted_out, sorted_ev);
}

}  // namespace
}  // namespace bpntt::math
