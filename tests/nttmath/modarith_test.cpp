#include "nttmath/modarith.h"

#include <gtest/gtest.h>

#include "common/xoshiro.h"

namespace bpntt::math {
namespace {

TEST(ModArith, AddModBasics) {
  EXPECT_EQ(add_mod(3, 4, 7), 0u);
  EXPECT_EQ(add_mod(3, 3, 7), 6u);
  EXPECT_EQ(add_mod(6, 6, 7), 5u);
  EXPECT_EQ(add_mod(0, 0, 7), 0u);
}

TEST(ModArith, AddModNearWordBoundary) {
  const u64 q = (1ULL << 62) - 57;  // large odd modulus
  EXPECT_EQ(add_mod(q - 1, q - 1, q), q - 2);
  EXPECT_EQ(add_mod(q - 1, 1, q), 0u);
}

TEST(ModArith, SubModBasics) {
  EXPECT_EQ(sub_mod(3, 4, 7), 6u);
  EXPECT_EQ(sub_mod(4, 3, 7), 1u);
  EXPECT_EQ(sub_mod(0, 1, 7), 6u);
  EXPECT_EQ(sub_mod(5, 5, 7), 0u);
}

TEST(ModArith, NegMod) {
  EXPECT_EQ(neg_mod(0, 7), 0u);
  EXPECT_EQ(neg_mod(1, 7), 6u);
  EXPECT_EQ(neg_mod(6, 7), 1u);
}

TEST(ModArith, MulModMatchesSmallCases) {
  EXPECT_EQ(mul_mod(3, 4, 7), 5u);
  EXPECT_EQ(mul_mod(0, 12345, 97), 0u);
  EXPECT_EQ(mul_mod(96, 96, 97), 1u);  // (-1)^2
}

TEST(ModArith, MulModLargeOperands) {
  const u64 q = (1ULL << 61) - 1;  // Mersenne prime
  // Fermat: a^(q-1) = 1 via pow_mod exercising mul_mod deeply.
  EXPECT_EQ(pow_mod(1234567891011ULL, q - 1, q), 1u);
}

TEST(ModArith, PowModEdges) {
  EXPECT_EQ(pow_mod(5, 0, 7), 1u);
  EXPECT_EQ(pow_mod(0, 5, 7), 0u);
  EXPECT_EQ(pow_mod(5, 1, 7), 5u);
  EXPECT_EQ(pow_mod(2, 10, 1025), 1024u);
}

TEST(ModArith, InvModAgainstFermat) {
  common::xoshiro256ss rng(1);
  const u64 q = 8380417;  // Dilithium prime
  for (int i = 0; i < 200; ++i) {
    const u64 a = 1 + rng.below(q - 1);
    const u64 inv = inv_mod(a, q);
    EXPECT_EQ(mul_mod(a, inv, q), 1u) << "a=" << a;
    EXPECT_EQ(inv, pow_mod(a, q - 2, q));
  }
}

TEST(ModArith, InvModNonInvertible) {
  EXPECT_EQ(inv_mod(6, 12), 0u);
  EXPECT_EQ(inv_mod(0, 7), 0u);
}

TEST(ModArith, AddSubRoundTripRandom) {
  common::xoshiro256ss rng(2);
  for (u64 q : {17ULL, 3329ULL, 12289ULL, 8380417ULL}) {
    for (int i = 0; i < 100; ++i) {
      const u64 a = rng.below(q);
      const u64 b = rng.below(q);
      EXPECT_EQ(sub_mod(add_mod(a, b, q), b, q), a);
      EXPECT_EQ(add_mod(sub_mod(a, b, q), b, q), a);
    }
  }
}

TEST(ModArith, MulModAgainstNaiveDoubleAndAdd) {
  common::xoshiro256ss rng(3);
  const u64 q = 0xFFFFFFFFFFFFFFC5ULL;  // largest 64-bit prime... not needed; use < 2^62
  const u64 m = (1ULL << 62) - 57;
  (void)q;
  for (int i = 0; i < 50; ++i) {
    const u64 a = rng.below(m);
    const u64 b = rng.below(m);
    // double-and-add reference
    u64 acc = 0;
    u64 base = a;
    u64 e = b;
    while (e != 0) {
      if (e & 1ULL) acc = add_mod(acc, base, m);
      base = add_mod(base, base, m);
      e >>= 1;
    }
    EXPECT_EQ(mul_mod(a, b, m), acc);
  }
}

}  // namespace
}  // namespace bpntt::math
