#include "nttmath/barrett.h"

#include <gtest/gtest.h>

#include "common/xoshiro.h"

namespace bpntt::math {
namespace {

TEST(Barrett, ReduceMatchesModSmall) {
  const barrett b(3329);
  for (u64 x = 0; x < 20000; x += 37) {
    EXPECT_EQ(b.reduce(x), x % 3329);
  }
}

TEST(Barrett, MulMatchesMulModRandom) {
  common::xoshiro256ss rng(5);
  for (u64 q : {17ULL, 3329ULL, 12289ULL, 8380417ULL, (1ULL << 31) - 1, (1ULL << 61) - 1}) {
    const barrett b(q);
    for (int i = 0; i < 200; ++i) {
      const u64 x = rng.below(q);
      const u64 y = rng.below(q);
      EXPECT_EQ(b.mul(x, y), mul_mod(x, y, q)) << "q=" << q;
    }
  }
}

TEST(Barrett, FullProductRange) {
  // reduce() is specified for a < q^2; probe the boundary.
  const u64 q = 12289;
  const barrett b(q);
  const u128 max_in = static_cast<u128>(q - 1) * (q - 1);
  EXPECT_EQ(b.reduce(max_in), static_cast<u64>(max_in % q));
  EXPECT_EQ(b.reduce(0), 0u);
}

TEST(Barrett, RejectsBadModulus) {
  EXPECT_THROW(barrett(0), std::invalid_argument);
  EXPECT_THROW(barrett(1), std::invalid_argument);
}

}  // namespace
}  // namespace bpntt::math
