#include "nttmath/poly.h"

#include <gtest/gtest.h>

#include "common/xoshiro.h"

namespace bpntt::math {
namespace {

std::vector<u64> random_poly(u64 n, u64 q, common::xoshiro256ss& rng) {
  std::vector<u64> v(n);
  for (auto& x : v) x = rng.below(q);
  return v;
}

TEST(Poly, SchoolbookNegacyclicWrapSign) {
  // (x^(n-1)) * (x) = x^n = -1 in Z_q[x]/(x^n+1).
  const u64 n = 8, q = 97;
  std::vector<u64> a(n, 0), b(n, 0);
  a[n - 1] = 1;
  b[1] = 1;
  const auto c = schoolbook_negacyclic(a, b, q);
  EXPECT_EQ(c[0], q - 1);
  for (u64 i = 1; i < n; ++i) EXPECT_EQ(c[i], 0u);
}

TEST(Poly, SchoolbookCyclicWrapNoSign) {
  const u64 n = 8, q = 97;
  std::vector<u64> a(n, 0), b(n, 0);
  a[n - 1] = 1;
  b[1] = 1;
  const auto c = schoolbook_cyclic(a, b, q);
  EXPECT_EQ(c[0], 1u);
}

TEST(Poly, MultiplicationIsCommutative) {
  common::xoshiro256ss rng(20);
  const u64 n = 32, q = 3329;
  const auto a = random_poly(n, q, rng);
  const auto b = random_poly(n, q, rng);
  EXPECT_EQ(schoolbook_negacyclic(a, b, q), schoolbook_negacyclic(b, a, q));
  EXPECT_EQ(schoolbook_cyclic(a, b, q), schoolbook_cyclic(b, a, q));
}

TEST(Poly, MultiplicationDistributesOverAddition) {
  common::xoshiro256ss rng(21);
  const u64 n = 16, q = 257;
  const auto a = random_poly(n, q, rng);
  const auto b = random_poly(n, q, rng);
  const auto c = random_poly(n, q, rng);
  const auto lhs = schoolbook_negacyclic(a, poly_add(b, c, q), q);
  const auto rhs = poly_add(schoolbook_negacyclic(a, b, q), schoolbook_negacyclic(a, c, q), q);
  EXPECT_EQ(lhs, rhs);
}

TEST(Poly, IdentityElement) {
  common::xoshiro256ss rng(22);
  const u64 n = 16, q = 257;
  const auto a = random_poly(n, q, rng);
  std::vector<u64> one(n, 0);
  one[0] = 1;
  EXPECT_EQ(schoolbook_negacyclic(a, one, q), a);
  EXPECT_EQ(schoolbook_cyclic(a, one, q), a);
}

TEST(Poly, AddSubInverse) {
  common::xoshiro256ss rng(23);
  const u64 n = 64, q = 12289;
  const auto a = random_poly(n, q, rng);
  const auto b = random_poly(n, q, rng);
  EXPECT_EQ(poly_add(poly_sub(a, b, q), b, q), a);
}

TEST(Poly, SizeMismatchThrows) {
  std::vector<u64> a(8, 1), b(4, 1);
  EXPECT_THROW(schoolbook_negacyclic(a, b, 97), std::invalid_argument);
  EXPECT_THROW(poly_add(a, b, 97), std::invalid_argument);
  EXPECT_THROW(poly_sub(a, b, 97), std::invalid_argument);
}

}  // namespace
}  // namespace bpntt::math
