// Validation of the Algorithm 2 software model — the paper's §V-A claim
// ("the correctness of the proposed bit-parallel modular multiplication has
// been validated for various bitwidths") plus an exhaustive map of where
// Observations 1 and 2 hold.
#include "nttmath/bp_modmul_ref.h"

#include <gtest/gtest.h>

#include "common/xoshiro.h"
#include "nttmath/montgomery.h"

namespace bpntt::math {
namespace {

TEST(BpModmul, PaperFig6Example) {
  // A=4, B=3, M=7, R=8 -> P = 001 + 010<<1 = 5.
  std::vector<bp_modmul_step> trace;
  const auto r = bp_modmul(4, 3, 7, 3, &trace);
  EXPECT_EQ(r.value, 5u);
  EXPECT_EQ(r.sum, 0b001u);
  EXPECT_EQ(r.carry, 0b010u);
  ASSERT_EQ(trace.size(), 3u);
  // First two iterations: a0 = a1 = 0, P stays 0.
  EXPECT_FALSE(trace[0].a_bit);
  EXPECT_FALSE(trace[1].a_bit);
  EXPECT_EQ(trace[1].sum_end, 0u);
  EXPECT_EQ(trace[1].carry_end, 0u);
  // Third iteration: a2 = 1, Fig. 6 steps 1-7.
  EXPECT_TRUE(trace[2].a_bit);
  EXPECT_EQ(trace[2].sum_after_add, 0b011u);   // S after P += B
  EXPECT_EQ(trace[2].carry_after_add, 0b000u);
  EXPECT_TRUE(trace[2].m_selected);            // LSB(S) = 1 -> m = M
  EXPECT_EQ(trace[2].sum_end, 0b001u);
  EXPECT_EQ(trace[2].carry_end, 0b010u);
  EXPECT_TRUE(r.observation1_held);
  EXPECT_TRUE(r.observation2_held);
}

struct WidthCase {
  u64 q;
  unsigned k;
};

class BpModmulWidths : public testing::TestWithParam<WidthCase> {};

TEST_P(BpModmulWidths, MatchesInterleavedMontgomery) {
  const auto [q, k] = GetParam();
  common::xoshiro256ss rng(q ^ (k * 0x9E3779B9ULL));
  for (int i = 0; i < 500; ++i) {
    const u64 a = rng.below(q);
    const u64 b = rng.below(q);
    const auto r = bp_modmul(a, b, q, k);
    EXPECT_EQ(r.value, interleaved_montgomery(a, b, q, k))
        << "a=" << a << " b=" << b << " q=" << q << " k=" << k;
    EXPECT_TRUE(r.observation1_held);
    EXPECT_TRUE(r.observation2_held);
    EXPECT_TRUE(r.fits_in_k_bits);
  }
}

// The moduli the paper targets: PQC (Kyber/Dilithium/Falcon) and HE primes,
// each on the smallest tile with one headroom bit and on wider tiles.
INSTANTIATE_TEST_SUITE_P(
    VariousBitwidths, BpModmulWidths,
    testing::Values(WidthCase{5, 4}, WidthCase{23, 6}, WidthCase{251, 9},
                    WidthCase{3329, 13}, WidthCase{3329, 16}, WidthCase{7681, 14},
                    WidthCase{12289, 15}, WidthCase{12289, 16}, WidthCase{40961, 17},
                    WidthCase{1038337, 21}, WidthCase{8380417, 24}, WidthCase{536903681, 30},
                    WidthCase{2013265921, 32}, WidthCase{2305843009213693951ULL, 62}),
    [](const auto& info) {
      return "q" + std::to_string(info.param.q) + "_k" + std::to_string(info.param.k);
    });

TEST(BpModmul, ExhaustiveSmallEnvelopeWithHeadroom) {
  // For every odd M < 2^(k-1) (one spare bit) and all A,B < M, the result is
  // exact and both observations hold — this is the envelope the engine
  // enforces (2q < 2^k).
  for (unsigned k = 3; k <= 7; ++k) {
    for (u64 m = 3; 2 * m < (1ULL << k); m += 2) {
      for (u64 a = 0; a < m; ++a) {
        for (u64 b = 0; b < m; ++b) {
          const auto r = bp_modmul(a, b, m, k);
          ASSERT_EQ(r.value, interleaved_montgomery(a, b, m, k))
              << "k=" << k << " m=" << m << " a=" << a << " b=" << b;
          ASSERT_TRUE(r.observation1_held);
          ASSERT_TRUE(r.observation2_held);
          ASSERT_TRUE(r.fits_in_k_bits);
        }
      }
    }
  }
}

TEST(BpModmul, FullWidthModuliEnvelopeMap) {
  // Without the headroom bit (2^(k-1) < M < 2^k, like the paper's M=7, k=3
  // example) the k-column representation can overflow and Observation 1 can
  // fail, corrupting the product.  This maps the behaviour exhaustively:
  // whenever both observations *did* hold and the resolved value stayed in
  // k bits, the result is exact — exactly the soundness contract the
  // engine's 2q < 2^k restriction guarantees unconditionally.  The paper's
  // own Fig. 6 inputs (4, 3, 7, k=3) sit in the benign subset.
  u64 benign = 0, violating = 0;
  for (unsigned k = 3; k <= 6; ++k) {
    for (u64 m = (1ULL << (k - 1)) + 1; m < (1ULL << k); m += 2) {
      for (u64 a = 0; a < m; ++a) {
        for (u64 b = 0; b < m; ++b) {
          const auto r = bp_modmul(a, b, m, k);
          if (r.observation1_held && r.observation2_held && r.fits_in_k_bits) {
            ++benign;
            ASSERT_EQ(r.value, interleaved_montgomery(a, b, m, k))
                << "k=" << k << " m=" << m << " a=" << a << " b=" << b;
          } else {
            ++violating;
          }
        }
      }
    }
  }
  EXPECT_GT(benign, 0u);
  EXPECT_GT(violating, 0u);  // full-width moduli do overflow — headroom matters
}

TEST(BpModmul, EdgeOperands) {
  const u64 q = 3329;
  const unsigned k = 13;
  EXPECT_EQ(bp_modmul(0, 17, q, k).value, 0u);
  EXPECT_EQ(bp_modmul(17, 0, q, k).value, 0u);
  EXPECT_EQ(bp_modmul(q - 1, q - 1, q, k).value,
            interleaved_montgomery(q - 1, q - 1, q, k));
  EXPECT_EQ(bp_modmul(1, 1, q, k).value, interleaved_montgomery(1, 1, q, k));
}

TEST(BpModmul, RejectsInvalidInputs) {
  EXPECT_THROW((void)bp_modmul(1, 1, 8, 4), std::invalid_argument);     // even M
  EXPECT_THROW((void)bp_modmul(1, 1, 17, 4), std::invalid_argument);    // M >= 2^k
  EXPECT_THROW((void)bp_modmul(7, 1, 7, 4), std::invalid_argument);     // a >= M
  EXPECT_THROW((void)bp_modmul(1, 1, 7, 1), std::invalid_argument);     // k too small
}

TEST(BpModmulWide, MatchesScalarAtU64Widths) {
  common::xoshiro256ss rng(40);
  for (const auto& c : {WidthCase{3329, 13}, WidthCase{12289, 16}, WidthCase{8380417, 24}}) {
    for (int i = 0; i < 100; ++i) {
      const u64 a = rng.below(c.q);
      const u64 b = rng.below(c.q);
      const auto wide =
          bp_modmul_wide(wide_uint(c.k, a), wide_uint(c.k, b), wide_uint(c.k, c.q));
      EXPECT_EQ(wide.value.low64(), bp_modmul(a, b, c.q, c.k).value);
      EXPECT_TRUE(wide.observation1_held);
      EXPECT_TRUE(wide.observation2_held);
    }
  }
}

TEST(BpModmulWide, WideCoefficients128And256Bits) {
  // The paper's 256-bit coefficient claim: validate Algorithm 2 at widths
  // far beyond native words against the double-and-add oracle.
  common::xoshiro256ss rng(41);
  for (unsigned k : {128u, 256u}) {
    // Random odd modulus with the headroom bit clear.
    wide_uint m(k);
    for (unsigned bit = 0; bit + 2 < k; ++bit) m.set_bit(bit, rng.coin());
    m.set_bit(0, true);
    m.set_bit(k - 2, true);  // make it large but < 2^(k-1)

    for (int i = 0; i < 20; ++i) {
      wide_uint a(k), b(k);
      do {
        for (unsigned bit = 0; bit + 2 < k; ++bit) a.set_bit(bit, rng.coin());
      } while (a >= m);
      do {
        for (unsigned bit = 0; bit + 2 < k; ++bit) b.set_bit(bit, rng.coin());
      } while (b >= m);

      const auto r = bp_modmul_wide(a, b, m);
      EXPECT_TRUE(r.observation1_held);
      EXPECT_TRUE(r.observation2_held);
      // Check a*b ≡ value * 2^k (mod m) via the independent oracle.
      const wide_uint lhs = wide_uint::mul_mod(a, b, m);
      const wide_uint rhs = wide_uint::mul_mod(r.value, wide_uint::pow2_mod(k, m), m);
      EXPECT_EQ(lhs.to_hex(), rhs.to_hex());
    }
  }
}

}  // namespace
}  // namespace bpntt::math
