#include "nttmath/montgomery.h"

#include <gtest/gtest.h>

#include "common/bitutil.h"
#include "common/xoshiro.h"

namespace bpntt::math {
namespace {

TEST(Montgomery64, RoundTrip) {
  const montgomery64 mont(3329);
  common::xoshiro256ss rng(1);
  for (int i = 0; i < 200; ++i) {
    const u64 a = rng.below(3329);
    EXPECT_EQ(mont.from_mont(mont.to_mont(a)), a);
  }
}

TEST(Montgomery64, MulMatchesMulMod) {
  common::xoshiro256ss rng(2);
  for (u64 q : {3329ULL, 12289ULL, 8380417ULL, (1ULL << 61) - 1}) {
    const montgomery64 mont(q);
    for (int i = 0; i < 100; ++i) {
      const u64 a = rng.below(q);
      const u64 b = rng.below(q);
      EXPECT_EQ(mont.mul_plain(a, b), mul_mod(a, b, q)) << "q=" << q;
    }
  }
}

TEST(Montgomery64, RejectsEvenModulus) {
  EXPECT_THROW(montgomery64(4096), std::invalid_argument);
  EXPECT_THROW(montgomery64(0), std::invalid_argument);
}

TEST(InterleavedMontgomery, MatchesDefinition) {
  common::xoshiro256ss rng(3);
  struct Case {
    u64 q;
    unsigned k;
  };
  for (const auto& c : {Case{3329, 13}, Case{3329, 16}, Case{12289, 15}, Case{12289, 16},
                        Case{8380417, 24}, Case{7, 3}, Case{5, 4}}) {
    const u64 r_inv = inv_mod(mont_r(c.q, c.k), c.q);
    for (int i = 0; i < 200; ++i) {
      const u64 a = rng.below(c.q);
      const u64 b = rng.below(c.q);
      const u64 expect = mul_mod(mul_mod(a, b, c.q), r_inv, c.q);
      EXPECT_EQ(interleaved_montgomery(a, b, c.q, c.k), expect)
          << "q=" << c.q << " k=" << c.k << " a=" << a << " b=" << b;
    }
  }
}

TEST(InterleavedMontgomery, PaperExampleFig6) {
  // A=4, B=3, M=7, R=8: since 8 ≡ 1 (mod 7), ABR^-1 = 12 mod 7 = 5.
  EXPECT_EQ(interleaved_montgomery(4, 3, 7, 3), 5u);
}

TEST(InterleavedMontgomery, TwiddlePreScalingCancelsR) {
  // The engine's trick: modmul_const(B, A*R) = A*B (§IV-D).
  const u64 q = 3329;
  const unsigned k = 16;
  const u64 r = mont_r(q, k);
  common::xoshiro256ss rng(4);
  for (int i = 0; i < 200; ++i) {
    const u64 a = rng.below(q);
    const u64 b = rng.below(q);
    const u64 a_mont = mul_mod(a, r, q);
    EXPECT_EQ(interleaved_montgomery(a_mont, b, q, k), mul_mod(a, b, q));
  }
}

TEST(MontR, Values) {
  EXPECT_EQ(mont_r(7, 3), 1u);           // 8 mod 7
  EXPECT_EQ(mont_r(3329, 16), 65536 % 3329);
  EXPECT_EQ(mont_r2(7, 3), 1u);
}

}  // namespace
}  // namespace bpntt::math
