#include "baselines/reram_area.h"

#include <gtest/gtest.h>

namespace bpntt::baselines {
namespace {

TEST(ReramArea, ScalesLinearlyInCells) {
  const reram_params p;
  const double one = reram_array_area_mm2(p, 1'000'000);
  EXPECT_NEAR(reram_array_area_mm2(p, 2'000'000), 2 * one, 1e-12);
  EXPECT_GT(one, 0.0);
}

TEST(ReramArea, ScalesQuadraticallyInFeature) {
  reram_params p45;
  reram_params p90;
  p90.feature_nm = 90.0;
  const double a45 = reram_array_area_mm2(p45, 1'000'000);
  const double a90 = reram_array_area_mm2(p90, 1'000'000);
  EXPECT_NEAR(a90 / a45, 4.0, 1e-9);
}

TEST(ReramArea, ReramDenserThanSramPerBit) {
  // A 12F^2 1T1R cell beats a ~160F^2-effective 6T SRAM cell comfortably.
  const reram_params p;
  const double reram_bit = reram_array_area_mm2(p, 1);
  const double sram_bit = 0.33e-6 / 0.36;  // tech_45nm cell / efficiency
  EXPECT_LT(reram_bit, sram_bit);
}

TEST(ReramArea, CryptoPimEstimateNearPublished) {
  // Paper (via Destiny, optimistic subarray-only): 0.152 mm^2.
  const double a = cryptopim_area_estimate_mm2();
  EXPECT_GT(a, 0.152 * 0.6);
  EXPECT_LT(a, 0.152 * 1.6);
}

TEST(ReramArea, RmNttEstimateNearPublished) {
  // Paper: 0.289 mm^2.  The cells-only model lands the right magnitude —
  // the point of the paper's "optimistic estimate" footnote.
  const double a = rmntt_area_estimate_mm2();
  EXPECT_GT(a, 0.289 * 0.5);
  EXPECT_LT(a, 0.289 * 1.6);
}

TEST(ReramArea, BothDesignsDwarfBpNttFootprint) {
  // Table I: BP-NTT at 0.063 mm^2 undercuts both ReRAM designs by >= 2.4x.
  EXPECT_GT(cryptopim_area_estimate_mm2() / 0.063, 1.5);
  EXPECT_GT(rmntt_area_estimate_mm2() / 0.063, 2.4);
}

}  // namespace
}  // namespace bpntt::baselines
