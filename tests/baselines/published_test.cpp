// Consistency checks of the transcribed Table I rows: the derived TA/TP
// columns we compute must match the numbers printed in the paper, which
// validates both the transcription and the metric definitions.
#include "baselines/published.h"

#include <gtest/gtest.h>

namespace bpntt::baselines {
namespace {

TEST(Published, BpNttRowDerivedColumnsMatchTable) {
  const auto d = published_bpntt();
  EXPECT_NEAR(d.tput_per_area(), 4104.0, 10.0);  // table: 4.1K
  EXPECT_NEAR(d.tput_per_mj(), 230.5, 1.0);      // table: 230.7
  // Latency x throughput = batch size (16 parallel NTTs).
  EXPECT_NEAR(d.latency_us * d.throughput_kntt_s / 1e3, 16.0, 0.1);
}

TEST(Published, MenttRowConsistent) {
  const auto d = published_mentt();
  EXPECT_NEAR(d.tput_per_area(), 363.0, 2.0);  // table: 364
  EXPECT_NEAR(d.tput_per_mj(), 20.9, 0.1);     // table: 20.9
  // 1 NTT per 15.9us = 62.9 KNTT/s ≈ published 62.8.
  EXPECT_NEAR(1e3 / d.latency_us, d.throughput_kntt_s, 0.2);
}

TEST(Published, LeiaAndSapphireTpMatch) {
  EXPECT_NEAR(published_leia().tput_per_mj(), 22.7, 0.1);
  EXPECT_NEAR(published_sapphire().tput_per_mj(), 4.23, 0.01);
}

TEST(Published, CryptoPimBatchFactorReproducesTableTp) {
  EXPECT_NEAR(published_cryptopim().tput_per_mj(), 14.7, 0.35);
}

TEST(Published, RmNttDerived) {
  const auto d = published_rmntt();
  EXPECT_NEAR(d.tput_per_area(), 7612.0, 20.0);  // table: 7.7K
  EXPECT_NEAR(d.tput_per_mj(), 1.66, 0.02);      // table: 1.67
}

TEST(Published, AllBaselinesPresent) {
  const auto all = all_published_baselines();
  ASSERT_EQ(all.size(), 7u);
  for (const auto& d : all) {
    EXPECT_FALSE(d.name.empty());
    EXPECT_GT(d.latency_us, 0.0);
    EXPECT_GT(d.throughput_kntt_s, 0.0);
    EXPECT_GT(d.energy_nj, 0.0);
  }
}

}  // namespace
}  // namespace bpntt::baselines
