#include "baselines/cpu_baseline.h"

#include <gtest/gtest.h>

namespace bpntt::baselines {
namespace {

TEST(CpuBaseline, ProducesPositiveSaneNumbers) {
  const math::ntt_tables tables(256, 12289, true);
  const auto m = measure_cpu_ntt(tables, /*iterations=*/200);
  EXPECT_GT(m.latency_us, 0.0);
  EXPECT_LT(m.latency_us, 1000.0);  // a 256-point NTT is far below 1 ms
  EXPECT_NEAR(m.throughput_kntt_s * m.latency_us, 1e3, 1.0);
  EXPECT_NEAR(m.energy_nj, m.latency_us * m.assumed_power_w * 1e3, 1e-6);
}

TEST(CpuBaseline, DesignPointConversion) {
  cpu_measurement m;
  m.latency_us = 5.0;
  m.throughput_kntt_s = 200.0;
  m.energy_nj = 75000.0;
  const auto d = cpu_design_point(m, 16);
  EXPECT_EQ(d.technology, "x86");
  EXPECT_EQ(d.coef_bits, 16u);
  EXPECT_DOUBLE_EQ(d.latency_us, 5.0);
  EXPECT_DOUBLE_EQ(d.tput_per_mj(), 1e3 / 75000.0);
  EXPECT_DOUBLE_EQ(d.tput_per_area(), 0.0);  // area not reported for CPUs
}

}  // namespace
}  // namespace bpntt::baselines
