#include "baselines/mentt_model.h"

#include <gtest/gtest.h>

namespace bpntt::baselines {
namespace {

TEST(MenttModel, CalibratedAgainstPublishedLatency) {
  // MeNTT (Table I): 256-point, 14-bit, 218 MHz, 15.9 us -> ~3466 cycles.
  const auto e = mentt_ntt_estimate(256, 14);
  EXPECT_NEAR(static_cast<double>(e.cycles), 3466.0, 3466.0 * 0.05);
  EXPECT_NEAR(e.latency_us, 15.9, 0.8);
}

TEST(MenttModel, QuadraticInBitwidth) {
  const auto k14 = mentt_ntt_estimate(256, 14);
  const auto k28 = mentt_ntt_estimate(256, 28);
  const double ratio = static_cast<double>(k28.cycles) / k14.cycles;
  EXPECT_GT(ratio, 3.0);  // dominated by the k^2 term
  EXPECT_LT(ratio, 4.5);
}

TEST(MenttModel, LogarithmicInOrder) {
  const auto n256 = mentt_ntt_estimate(256, 14);
  const auto n1024 = mentt_ntt_estimate(1024, 14);
  // Bit-serial stages run all butterflies concurrently: cycles scale with
  // log2(n), i.e. 10/8.
  EXPECT_NEAR(static_cast<double>(n1024.cycles) / n256.cycles, 10.0 / 8.0, 0.01);
}

TEST(MenttModel, BitParallelHalvesShiftCount) {
  // The paper's contribution 2: "#shifts in our bit-parallel design is half
  // of the prior bit-serial solutions."
  for (unsigned k : {14u, 16u, 32u}) {
    for (std::uint64_t n : {256ULL, 1024ULL}) {
      const auto serial = mentt_ntt_estimate(n, k);
      const auto parallel = bit_parallel_shift_count(n, k);
      const double ratio = static_cast<double>(parallel) / serial.shift_ops;
      EXPECT_GT(ratio, 0.3) << "n=" << n << " k=" << k;
      EXPECT_LT(ratio, 0.6) << "n=" << n << " k=" << k;
    }
  }
}

}  // namespace
}  // namespace bpntt::baselines
