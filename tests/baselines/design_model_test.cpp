#include "baselines/design_model.h"

#include <gtest/gtest.h>

#include "baselines/published.h"

namespace bpntt::baselines {
namespace {

TEST(DesignModel, DerivedMetrics) {
  design_point d;
  d.throughput_kntt_s = 100.0;
  d.area_mm2 = 0.5;
  d.energy_nj = 50.0;
  d.ntts_per_batch = 10;
  EXPECT_DOUBLE_EQ(d.tput_per_area(), 200.0);
  EXPECT_DOUBLE_EQ(d.tput_per_mj(), 200.0);  // 1e3 * 10 / 50
}

TEST(DesignModel, MissingAreaYieldsZero) {
  design_point d;
  d.throughput_kntt_s = 100.0;
  d.area_mm2 = 0.0;
  EXPECT_DOUBLE_EQ(d.tput_per_area(), 0.0);
}

TEST(DesignModel, AdvantageGuardsZeroes) {
  EXPECT_DOUBLE_EQ(advantage(10.0, 2.0), 5.0);
  EXPECT_DOUBLE_EQ(advantage(0.0, 2.0), 0.0);
  EXPECT_DOUBLE_EQ(advantage(10.0, 0.0), 0.0);
}

TEST(DesignModel, HeadlinesReproducePaperClaims) {
  // Using the paper's own BP-NTT row and its published baselines, the
  // headline ratios must come out as claimed: "up to 29x" TA and
  // "10-138x" TP.
  const auto h = compute_headlines(published_bpntt(), all_published_baselines());
  EXPECT_NEAR(h.max_ta, 29.3, 0.5);    // vs Sapphire (4100 / 140.1)
  EXPECT_NEAR(h.max_tp, 138.0, 2.0);   // vs RM-NTT  (230.7 / 1.67)
  EXPECT_NEAR(h.min_tp, 10.2, 0.3);    // vs LEIA    (230.7 / 22.7)
}

TEST(DesignModel, HeadlinesEmptyBaselines) {
  const auto h = compute_headlines(published_bpntt(), {});
  EXPECT_DOUBLE_EQ(h.max_ta, 0.0);
  EXPECT_DOUBLE_EQ(h.max_tp, 0.0);
}

}  // namespace
}  // namespace bpntt::baselines
