#include "crypto/sampler.h"

#include <gtest/gtest.h>

#include <cmath>

namespace bpntt::crypto {
namespace {

TEST(Sampler, UniformInRangeAndCoversIt) {
  common::xoshiro256ss rng(1);
  const auto v = sample_uniform(4096, 97, rng);
  std::vector<unsigned> hist(97, 0);
  for (auto x : v) {
    ASSERT_LT(x, 97u);
    ++hist[x];
  }
  for (unsigned i = 0; i < 97; ++i) EXPECT_GT(hist[i], 0u) << i;
}

TEST(Sampler, CbdSupportAndSymmetry) {
  common::xoshiro256ss rng(2);
  const std::uint64_t q = 3329;
  const unsigned eta = 2;
  const auto v = sample_cbd(100000, q, eta, rng);
  std::int64_t sum = 0;
  for (auto x : v) {
    // Values are in {-eta..eta} mod q.
    const bool small = x <= eta;
    const bool small_neg = x >= q - eta;
    ASSERT_TRUE(small || small_neg) << x;
    sum += small ? static_cast<std::int64_t>(x)
                 : static_cast<std::int64_t>(x) - static_cast<std::int64_t>(q);
  }
  // Mean ~ 0 with sd ~ sqrt(n * Var) = sqrt(1e5 * 1) ≈ 316.
  EXPECT_LT(std::llabs(sum), 1600);
}

TEST(Sampler, CbdVarianceMatchesEtaOverTwo) {
  common::xoshiro256ss rng(3);
  const std::uint64_t q = 8380417;
  for (unsigned eta : {2u, 3u}) {
    const auto v = sample_cbd(50000, q, eta, rng);
    double sq = 0;
    for (auto x : v) {
      const double c = x <= eta ? static_cast<double>(x)
                                : static_cast<double>(x) - static_cast<double>(q);
      sq += c * c;
    }
    const double var = sq / v.size();
    EXPECT_NEAR(var, eta / 2.0, 0.05 * eta);  // CBD(eta) variance = eta/2
  }
}

TEST(Sampler, MessageIsBinary) {
  common::xoshiro256ss rng(4);
  const auto m = sample_message(10000, rng);
  unsigned ones = 0;
  for (auto b : m) {
    ASSERT_LE(b, 1u);
    ones += static_cast<unsigned>(b);
  }
  EXPECT_NEAR(ones, 5000.0, 300.0);
}

TEST(Sampler, Deterministic) {
  common::xoshiro256ss a(7), b(7);
  EXPECT_EQ(sample_uniform(64, 97, a), sample_uniform(64, 97, b));
}

}  // namespace
}  // namespace bpntt::crypto
