#include "crypto/params.h"

#include <gtest/gtest.h>

#include "nttmath/primes.h"

namespace bpntt::crypto {
namespace {

TEST(Params, StandardSets) {
  EXPECT_EQ(kyber().q, 3329u);
  EXPECT_EQ(kyber().n, 256u);
  EXPECT_EQ(dilithium().q, 8380417u);
  EXPECT_EQ(falcon512().q, 12289u);
  EXPECT_EQ(falcon1024().n, 1024u);
}

TEST(Params, FullNttSupport) {
  EXPECT_FALSE(kyber().supports_full_ntt());  // 3328 = 2^8 * 13: incomplete NTT
  EXPECT_TRUE(kyber_compat().supports_full_ntt());
  EXPECT_TRUE(dilithium().supports_full_ntt());
  EXPECT_TRUE(falcon512().supports_full_ntt());
  EXPECT_TRUE(falcon1024().supports_full_ntt());
}

TEST(Params, TileWidthGivesHeadroomBit) {
  for (const auto& p : all_param_sets()) {
    SCOPED_TRACE(p.name);
    EXPECT_LT(2 * p.q, 1ULL << p.min_tile_bits);
    // Minimal: one bit narrower must violate the envelope.
    EXPECT_GE(2 * p.q, 1ULL << (p.min_tile_bits - 1));
  }
}

TEST(Params, RequiredTileBitsExamples) {
  EXPECT_EQ(required_tile_bits(3329), 13u);
  EXPECT_EQ(required_tile_bits(7681), 14u);
  EXPECT_EQ(required_tile_bits(12289), 15u);
  EXPECT_EQ(required_tile_bits(8380417), 24u);
}

TEST(Params, HeLevelsAreNttFriendlyPrimes) {
  for (unsigned bits : {16u, 21u, 29u}) {
    const auto p = he_level(bits);
    SCOPED_TRACE(p.name);
    EXPECT_TRUE(math::is_prime(p.q));
    EXPECT_EQ(p.n, 1024u);
    EXPECT_TRUE(p.supports_full_ntt());
    EXPECT_GE(p.q, 1ULL << (bits - 1));
    EXPECT_LT(p.q, 1ULL << bits);
  }
}

TEST(Params, RnsPresetsCarryValidCoprimeChains) {
  for (const auto& set : all_rns_param_sets()) {
    SCOPED_TRACE(set.name);
    EXPECT_GE(set.primes.size(), 2u);
    for (std::size_t i = 0; i < set.primes.size(); ++i) {
      EXPECT_TRUE(math::is_prime(set.primes[i])) << "limb " << i;
      EXPECT_EQ((set.primes[i] - 1) % (2 * set.n), 0u) << "limb " << i;
      if (i > 0) EXPECT_GT(set.primes[i], set.primes[i - 1]);
      EXPECT_GE(set.min_tile_bits, required_tile_bits(set.primes[i]));
    }
    // The chain reaches a modulus no single word-sized limb can: the
    // leveled-RLWE point (>= 60 bits from 2x30-bit limbs upward).
    EXPECT_GE(set.modulus_bits(), 60u);
  }
  // he_rns_level is the parameterized entry behind the presets.
  const auto p = he_rns_level(20, 3, 256);
  EXPECT_EQ(p.n, 256u);
  EXPECT_EQ(p.primes.size(), 3u);
  EXPECT_EQ(p.min_tile_bits, required_tile_bits(p.primes.back()));
  EXPECT_GE(p.modulus_bits(), 58u);
}

TEST(Params, RnsLevelChainConsumesOneLimbPerLevel) {
  const auto top = he_rns_level(20, 4, 256);
  const auto chain = rns_level_chain(top);
  ASSERT_EQ(chain.size(), 4u);  // levels 0..3, ending at the one-limb floor
  EXPECT_EQ(chain[0].primes, top.primes);
  for (std::size_t level = 0; level < chain.size(); ++level) {
    SCOPED_TRACE(level);
    EXPECT_EQ(chain[level].n, top.n);
    EXPECT_EQ(chain[level].primes.size(), top.primes.size() - level);
    // Each level is the previous one minus its last limb.
    for (std::size_t i = 0; i < chain[level].primes.size(); ++i) {
      EXPECT_EQ(chain[level].primes[i], top.primes[i]);
    }
    // The tile width stays the top level's (same tiles all the way down).
    EXPECT_EQ(chain[level].min_tile_bits, top.min_tile_bits);
    EXPECT_EQ(chain[level].name, top.name + "-L" + std::to_string(level));
  }
  EXPECT_THROW((void)rns_level_chain(rns_param_set{}), std::invalid_argument);
}

TEST(Params, PaperCapacityClaimCoverage) {
  // §I: BP-NTT covers PQC (256/1024-point, 14-32 bit) and HE (1024-point,
  // 16/21/29-bit) — every set must fit a 256x256 array's 16 tile columns
  // at its required width and 250-row tiles via multi-tile spanning.
  for (const auto& p : all_param_sets()) {
    SCOPED_TRACE(p.name);
    const unsigned tiles = 256 / p.min_tile_bits;
    EXPECT_GE(tiles * 250ULL, p.n) << "does not fit one subarray";
  }
}

}  // namespace
}  // namespace bpntt::crypto
