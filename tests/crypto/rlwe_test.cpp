#include "crypto/rlwe.h"

#include <gtest/gtest.h>

#include "bpntt/engine.h"

namespace bpntt::crypto {
namespace {

param_set demo_ring() {
  param_set p;
  p.name = "demo";
  p.n = 128;
  p.q = 3329;
  p.min_tile_bits = 13;
  return p;
}

TEST(Rlwe, EncryptDecryptRoundTrip) {
  rlwe_scheme scheme(demo_ring());
  common::xoshiro256ss rng(1);
  const auto keys = scheme.keygen(rng);
  for (int trial = 0; trial < 10; ++trial) {
    const auto msg = sample_message(128, rng);
    const auto ct = scheme.encrypt(keys.pk, msg, rng);
    EXPECT_EQ(scheme.decrypt(keys.sk, ct), msg) << "trial " << trial;
  }
}

TEST(Rlwe, RoundTripAcrossParameterSets) {
  for (const auto& p : {kyber_compat(), falcon512(), he_level(16, 256)}) {
    SCOPED_TRACE(p.name);
    rlwe_scheme scheme(p);
    common::xoshiro256ss rng(p.q);
    const auto keys = scheme.keygen(rng);
    const auto msg = sample_message(p.n, rng);
    const auto ct = scheme.encrypt(keys.pk, msg, rng);
    EXPECT_EQ(scheme.decrypt(keys.sk, ct), msg);
  }
}

TEST(Rlwe, WrongKeyFailsToDecrypt) {
  rlwe_scheme scheme(demo_ring());
  common::xoshiro256ss rng(3);
  const auto keys = scheme.keygen(rng);
  const auto other = scheme.keygen(rng);
  const auto msg = sample_message(128, rng);
  const auto ct = scheme.encrypt(keys.pk, msg, rng);
  // Decrypting with an unrelated secret yields noise, not the message.
  EXPECT_NE(other.sk.s, keys.sk.s);
  EXPECT_NE(scheme.decrypt(other.sk, ct), msg);
}

TEST(Rlwe, CiphertextsAreRandomized) {
  rlwe_scheme scheme(demo_ring());
  common::xoshiro256ss rng(4);
  const auto keys = scheme.keygen(rng);
  const auto msg = sample_message(128, rng);
  const auto c1 = scheme.encrypt(keys.pk, msg, rng);
  const auto c2 = scheme.encrypt(keys.pk, msg, rng);
  EXPECT_NE(c1.u, c2.u);  // fresh encryption randomness
  EXPECT_EQ(scheme.decrypt(keys.sk, c1), scheme.decrypt(keys.sk, c2));
}

TEST(Rlwe, RejectsIncompleteNttRing) {
  EXPECT_THROW(rlwe_scheme{kyber()}, std::invalid_argument);  // 3329 @ n=256
}

TEST(Rlwe, RejectsWrongMessageSize) {
  rlwe_scheme scheme(demo_ring());
  common::xoshiro256ss rng(5);
  const auto keys = scheme.keygen(rng);
  std::vector<std::uint64_t> short_msg(64, 0);
  EXPECT_THROW((void)scheme.encrypt(keys.pk, short_msg, rng), std::invalid_argument);
}

TEST(Rlwe, PluggableMultiplierOnBpNttEngine) {
  // The whole point of the layer: route ring products through the in-SRAM
  // engine and still decrypt correctly.
  const auto ring = demo_ring();
  core::engine_config cfg;
  core::ntt_params params;
  params.n = ring.n;
  params.q = ring.q;
  params.k = 13;
  auto engine = std::make_shared<core::bp_ntt_engine>(cfg, params);
  polymul_fn mul = [&, engine](std::span<const std::uint64_t> a,
                               std::span<const std::uint64_t> b) {
    const auto ra = engine->poly_region(0);
    const auto rb = engine->poly_region(static_cast<unsigned>(ring.n));
    engine->load_polynomial(0, a, ra);
    engine->load_polynomial(0, b, rb);
    engine->run_forward(ra);
    engine->run_forward(rb);
    engine->run_pointwise(ra, rb, ra, true);
    engine->run_inverse(ra);
    return engine->peek_polynomial(0, ra);
  };
  rlwe_scheme scheme(ring, 2, mul);
  common::xoshiro256ss rng(6);
  const auto keys = scheme.keygen(rng);
  const auto msg = sample_message(ring.n, rng);
  const auto ct = scheme.encrypt(keys.pk, msg, rng);
  EXPECT_EQ(scheme.decrypt(keys.sk, ct), msg);
  EXPECT_GT(engine->cumulative_stats().cycles, 0u);
  EXPECT_EQ(engine->cumulative_stats().lossless_shift_violations, 0u);
}

}  // namespace
}  // namespace bpntt::crypto
