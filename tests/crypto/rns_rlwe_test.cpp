// Leveled RNS-RLWE scheme tests: encrypt -> multiply -> relinearize ->
// rescale -> decrypt round trips down the level chain against a plain
// negacyclic plaintext oracle, bit-identical across backends and limb
// counts; key-switching headroom validation; and the evaluation key's
// operand-cache behaviour under reuse, rotation, and eviction pressure.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "crypto/rns_rlwe/rns_rlwe.h"
#include "runtime/context.h"

namespace bpntt::crypto::rns_rlwe {
namespace {

using runtime::backend_kind;
using runtime::runtime_options;

// 20-bit limbs at n = 32 leave the noise plenty of per-level headroom
// (fresh ~2^9 bits, tensor ~2^23 < q^2) while 2n = 64 rows and three
// 21-bit tiles fit the small test array.
constexpr u64 kOrder = 32;
constexpr unsigned kLimbBits = 20;
constexpr unsigned kTileBits = 21;

runtime_options scheme_options(backend_kind kind, const rns_rlwe_param_set& p) {
  return runtime_options()
      .with_ring(kOrder, p.primes[0], kTileBits)
      .with_backend(kind)
      .with_array(64, 63)
      .with_topology(4, 1, 4)
      .with_threads(4);
}

std::vector<u64> random_message(u64 seed) {
  common::xoshiro256ss rng(seed);
  std::vector<u64> m(kOrder);
  for (auto& b : m) b = rng() & 1ULL;
  return m;
}

// Plaintext-space oracle: the negacyclic product over GF(2)[x]/(x^n + 1)
// (mod 2 the wrap-around sign vanishes).
std::vector<u64> negacyclic_mod2(const std::vector<u64>& a, const std::vector<u64>& b) {
  const std::size_t n = a.size();
  std::vector<u64> out(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      out[(i + j) % n] ^= a[i] & b[j];
    }
  }
  return out;
}

// ---- the end-to-end acceptance differential --------------------------------

class RnsRlweLevelWalk
    : public ::testing::TestWithParam<std::tuple<backend_kind, unsigned>> {};

TEST_P(RnsRlweLevelWalk, SquaresWalkTheChainToTheFloor) {
  const auto [kind, limbs] = GetParam();
  const auto params = he_rns_rlwe_level(kLimbBits, limbs, kOrder);
  runtime::context ctx(scheme_options(kind, params));
  scheme sch(ctx, params, /*seed=*/41);
  ASSERT_EQ(sch.levels(), limbs);

  std::vector<u64> expect = random_message(99 + limbs);
  ciphertext ct = sch.encrypt(expect);
  EXPECT_EQ(sch.decrypt(ct), expect) << "fresh round trip";
  EXPECT_GT(sch.noise_budget_bits(ct), 0);

  // Square all the way down: every multiply relinearizes through Q ∪ P and
  // sheds one level; the plaintext follows the GF(2) negacyclic square.
  while (ct.level + 1 < sch.levels()) {
    ct = sch.square(ct);
    expect = negacyclic_mod2(expect, expect);
    EXPECT_EQ(ct.c0.limbs(), sch.basis_at(ct.level).limbs());
    EXPECT_EQ(sch.decrypt(ct), expect) << "backend " << to_string(kind) << ", level "
                                       << ct.level << " of " << limbs;
    EXPECT_GT(sch.noise_budget_bits(ct), 0) << "level " << ct.level;
  }
  EXPECT_EQ(ct.level, sch.levels() - 1);
  // The floor is the end of the line.
  if (sch.levels() > 1) {
    EXPECT_THROW((void)sch.square(ct), std::invalid_argument);
  }
}

TEST_P(RnsRlweLevelWalk, MultiplyOfDistinctMessagesMatchesTheOracle) {
  const auto [kind, limbs] = GetParam();
  if (limbs < 2) GTEST_SKIP();
  const auto params = he_rns_rlwe_level(kLimbBits, limbs, kOrder);
  runtime::context ctx(scheme_options(kind, params));
  scheme sch(ctx, params, /*seed=*/43);

  const auto ma = random_message(7);
  const auto mb = random_message(8);
  const ciphertext ca = sch.encrypt(ma);
  const ciphertext cb = sch.encrypt(mb);
  const ciphertext prod = sch.multiply(ca, cb);
  EXPECT_EQ(prod.level, 1u);
  EXPECT_EQ(sch.decrypt(prod), negacyclic_mod2(ma, mb));
}

INSTANTIATE_TEST_SUITE_P(
    BackendsAndLimbCounts, RnsRlweLevelWalk,
    ::testing::Combine(::testing::Values(backend_kind::sram, backend_kind::cpu,
                                         backend_kind::reference),
                       ::testing::Values(2u, 3u, 4u)),
    [](const auto& info) {
      return std::string(to_string(std::get<0>(info.param))) + "_limbs" +
             std::to_string(std::get<1>(info.param));
    });

// ---- cross-backend bit-identity --------------------------------------------

TEST(RnsRlweBackends, WalksAgreeBitForBitAcrossBackends) {
  for (const unsigned limbs : {2u, 3u, 4u}) {
    const auto params = he_rns_rlwe_level(kLimbBits, limbs, kOrder);
    const auto msg = random_message(123);
    // One walk per backend, same seed everywhere; collect every level's
    // ciphertext residues.
    std::vector<std::vector<ciphertext>> walks;
    for (const auto kind :
         {backend_kind::sram, backend_kind::cpu, backend_kind::reference}) {
      runtime::context ctx(scheme_options(kind, params));
      scheme sch(ctx, params, /*seed=*/77);
      std::vector<ciphertext> walk;
      walk.push_back(sch.encrypt(msg));
      while (walk.back().level + 1 < sch.levels()) walk.push_back(sch.square(walk.back()));
      walks.push_back(std::move(walk));
    }
    for (std::size_t w = 1; w < walks.size(); ++w) {
      ASSERT_EQ(walks[w].size(), walks[0].size());
      for (std::size_t l = 0; l < walks[0].size(); ++l) {
        EXPECT_EQ(walks[w][l].c0.residues, walks[0][l].c0.residues)
            << limbs << " limbs, level " << l << ", backend index " << w << " c0 diverged";
        EXPECT_EQ(walks[w][l].c1.residues, walks[0][l].c1.residues)
            << limbs << " limbs, level " << l << ", backend index " << w << " c1 diverged";
      }
    }
  }
}

// ---- the evaluation key in the operand cache -------------------------------

TEST(RnsRlweOperandCache, FixedEvaluationKeyServesRepeatMultipliesWarm) {
  const auto params = he_rns_rlwe_level(kLimbBits, 3, kOrder);
  runtime::context ctx(scheme_options(backend_kind::sram, params));
  scheme sch(ctx, params, /*seed=*/5);

  const auto msg = random_message(11);
  const ciphertext ct = sch.encrypt(msg);
  const auto before = ctx.stats();
  const ciphertext first = sch.multiply(ct, ct);
  const auto cold = ctx.stats();
  EXPECT_GT(cold.operand_cache_misses, before.operand_cache_misses)
      << "the first multiply must populate the cache";

  // Same level, same evaluation key: the relin products' evk side is
  // served from the cache.
  const ciphertext second = sch.multiply(ct, ct);
  const auto warm = ctx.stats();
  EXPECT_GT(warm.operand_cache_hits, cold.operand_cache_hits)
      << "a repeat multiply with a fixed evaluation key must hit the NTT-domain cache";
  // And caching never changes the math.
  EXPECT_EQ(second.c0.residues, first.c0.residues);
  EXPECT_EQ(second.c1.residues, first.c1.residues);
}

TEST(RnsRlweOperandCache, RotationInvalidatesTheOldKeyImages) {
  const auto params = he_rns_rlwe_level(kLimbBits, 2, kOrder);
  runtime::context ctx(scheme_options(backend_kind::sram, params));
  scheme sch(ctx, params, /*seed=*/6);

  const auto msg = random_message(21);
  ciphertext ct = sch.encrypt(msg);
  (void)sch.multiply(ct, ct);
  const auto size_before = ctx.operand_cache_size();
  EXPECT_GT(size_before, 0u);

  sch.rotate_evaluation_key();
  EXPECT_LT(ctx.operand_cache_size(), size_before)
      << "rotating the key must drop its cached NTT images";

  // The next multiply pays cold transforms for the new key, and the scheme
  // still decrypts correctly under it.
  const auto misses_before = ctx.stats().operand_cache_misses;
  const ciphertext prod = sch.multiply(ct, ct);
  EXPECT_GT(ctx.stats().operand_cache_misses, misses_before)
      << "the rotated key's first multiply must re-miss";
  EXPECT_EQ(sch.decrypt(prod), negacyclic_mod2(msg, msg));
}

TEST(RnsRlweOperandCache, EvictionPressureKeepsTheMathIntact) {
  const auto params = he_rns_rlwe_level(kLimbBits, 2, kOrder);
  // Two entries total: the walk's operands churn through constantly, so
  // most lookups evict something — correctness must not care.
  auto opts = scheme_options(backend_kind::sram, params).with_operand_cache(2);
  runtime::context ctx(opts);
  scheme sch(ctx, params, /*seed=*/7);

  const auto msg = random_message(31);
  for (int round = 0; round < 3; ++round) {
    const ciphertext ct = sch.encrypt(msg);
    const ciphertext prod = sch.multiply(ct, ct);
    EXPECT_EQ(sch.decrypt(prod), negacyclic_mod2(msg, msg)) << "round " << round;
    EXPECT_LE(ctx.operand_cache_size(), 2u) << "the cache must respect its entry budget";
  }
  EXPECT_GT(ctx.stats().operand_cache_misses, 0u);
}

// ---- parameter validation and scheme surface -------------------------------

TEST(RnsRlweParams, PresetCarriesCoprimeHeadroom) {
  const auto params = he_rns_rlwe_level(kLimbBits, 3, kOrder);
  EXPECT_EQ(params.primes.size(), 3u);
  EXPECT_EQ(params.ks_primes.size(), 3u);
  // One ascending search split in two: every extension prime exceeds every
  // chain prime, which is what guarantees ΠP >= ΠQ.
  EXPECT_GT(params.ks_primes.front(), params.primes.back());
  EXPECT_GE(params.ks_modulus_bits(), params.modulus_bits());
  EXPECT_NO_THROW(validate_keyswitch_headroom(params));
}

TEST(RnsRlweParams, HeadroomValidationNamesTheShortfall) {
  auto params = he_rns_rlwe_level(kLimbBits, 3, kOrder);

  auto no_p = params;
  no_p.ks_primes.clear();
  EXPECT_THROW(validate_keyswitch_headroom(no_p), std::invalid_argument);

  auto overlap = params;
  overlap.ks_primes[0] = params.primes[0];
  try {
    validate_keyswitch_headroom(overlap);
    FAIL() << "P overlapping Q must be rejected";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find(std::to_string(params.primes[0])),
              std::string::npos)
        << e.what();
  }

  auto hostile_n = params;
  hostile_n.ks_primes[0] = 23;  // odd prime, but 22 % 2n != 0: no negacyclic NTT at n = 32
  EXPECT_THROW(validate_keyswitch_headroom(hostile_n), std::invalid_argument);

  auto short_p = params;
  short_p.ks_primes.resize(1);
  try {
    validate_keyswitch_headroom(short_p);
    FAIL() << "ΠP < ΠQ must be rejected";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("falls short"), std::string::npos) << e.what();
  }

  auto bad_t = params;
  bad_t.plain_modulus = 1;
  EXPECT_THROW(validate_keyswitch_headroom(bad_t), std::invalid_argument);
  auto t_in_chain = params;
  t_in_chain.plain_modulus = params.primes[0];
  EXPECT_THROW(validate_keyswitch_headroom(t_in_chain), std::invalid_argument);
}

TEST(RnsRlweSurface, RejectsMalformedInputs) {
  const auto params = he_rns_rlwe_level(kLimbBits, 2, kOrder);
  runtime::context ctx(scheme_options(backend_kind::reference, params));
  scheme sch(ctx, params, /*seed=*/9);

  // Message shape and alphabet.
  EXPECT_THROW((void)sch.encrypt(std::vector<u64>(kOrder - 1, 0)), std::invalid_argument);
  EXPECT_THROW((void)sch.encrypt(std::vector<u64>(kOrder, 2)), std::invalid_argument);

  const auto msg = random_message(1);
  ciphertext ct = sch.encrypt(msg);
  // Mismatched levels and truncated residues.
  ciphertext other = sch.multiply(ct, ct);
  EXPECT_THROW((void)sch.multiply(ct, other), std::invalid_argument);
  ciphertext torn = ct;
  torn.c1.residues.pop_back();
  EXPECT_THROW((void)sch.decrypt(torn), std::invalid_argument);
  // The floor cannot multiply (2 limbs -> `other` already sits there).
  EXPECT_THROW((void)sch.multiply(other, other), std::invalid_argument);
  // Levels past the floor are rejected outright.
  ciphertext rogue = ct;
  rogue.level = 9;
  EXPECT_THROW((void)sch.decrypt(rogue), std::invalid_argument);
  EXPECT_THROW((void)sch.basis_at(9), std::invalid_argument);

  // A scheme must live in its context's ring.
  auto params_n16 = he_rns_rlwe_level(kLimbBits, 2, 16);
  EXPECT_THROW((void)scheme(ctx, params_n16, 1), std::invalid_argument);
}

}  // namespace
}  // namespace bpntt::crypto::rns_rlwe
