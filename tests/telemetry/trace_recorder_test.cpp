// trace_recorder semantics: bounded per-producer rings that drop their
// *oldest* event when full (with an exact events_dropped count), a
// monotonic virtual-time watermark, and a record() hot path safe from any
// thread.  The concurrent suite runs under TSan in CI — a data race
// between producers and the counter probes fails the build.
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <thread>
#include <vector>

#include "telemetry/trace.h"

namespace bpntt::telemetry {
namespace {

trace_event at(u64 ts) {
  return {.ts = ts, .dur = 0, .a = 0, .track = 0, .arg = 0, .op = trace_op::ntt_forward};
}

TEST(TraceRecorder, CapacityRoundsUpToPowerOfTwoWithFloorTwo) {
  EXPECT_EQ(trace_recorder(0).capacity_per_producer(), 2u);
  EXPECT_EQ(trace_recorder(1).capacity_per_producer(), 2u);
  EXPECT_EQ(trace_recorder(5).capacity_per_producer(), 8u);
  EXPECT_EQ(trace_recorder(8).capacity_per_producer(), 8u);
}

TEST(TraceRecorder, OverflowDropsOldestAndCountsExactly) {
  trace_recorder rec(8);
  for (u64 ts = 0; ts < 12; ++ts) rec.record(at(ts));
  EXPECT_EQ(rec.events_recorded(), 12u);
  EXPECT_EQ(rec.events_dropped(), 4u);
  const auto events = rec.snapshot_events();
  ASSERT_EQ(events.size(), 8u);
  // ts 0..3 were overwritten; the retained window is the newest 8, ts-sorted.
  for (std::size_t i = 0; i < events.size(); ++i) EXPECT_EQ(events[i].ts, 4 + i);
}

TEST(TraceRecorder, SnapshotIsNonDestructiveAndClearKeepsCounters) {
  trace_recorder rec(16);
  for (u64 ts = 0; ts < 5; ++ts) rec.record(at(ts));
  EXPECT_EQ(rec.snapshot_events().size(), 5u);
  EXPECT_EQ(rec.snapshot_events().size(), 5u);  // exporting does not consume
  rec.clear();
  EXPECT_TRUE(rec.snapshot_events().empty());
  EXPECT_EQ(rec.events_recorded(), 5u);  // cumulative counters survive clear()
  EXPECT_EQ(rec.events_dropped(), 0u);
}

TEST(TraceRecorder, WatermarkIsMonotonic) {
  trace_recorder rec(4);
  EXPECT_EQ(rec.watermark(), 0u);
  rec.set_watermark(10);
  rec.set_watermark(3);  // regressions are ignored, not applied
  EXPECT_EQ(rec.watermark(), 10u);
  rec.set_watermark(11);
  EXPECT_EQ(rec.watermark(), 11u);
}

TEST(TraceRecorder, SnapshotMergesProducersSortedByTimestamp) {
  trace_recorder rec(64);
  // Two producers with interleaved virtual timestamps; join before
  // snapshotting (the quiescent contract).
  std::thread even([&] {
    for (u64 ts = 0; ts < 32; ts += 2) rec.record(at(ts));
  });
  std::thread odd([&] {
    for (u64 ts = 1; ts < 32; ts += 2) rec.record(at(ts));
  });
  even.join();
  odd.join();
  const auto events = rec.snapshot_events();
  ASSERT_EQ(events.size(), 32u);
  for (u64 ts = 0; ts < 32; ++ts) EXPECT_EQ(events[ts].ts, ts);
}

TEST(TraceRecorder, ConcurrentRecordingIsRaceFreeAndLossless) {
  // 8 producers x 1000 events with ample ring capacity: every event lands,
  // none drop, while a monitor thread hammers the any-thread probes.
  constexpr unsigned kThreads = 8;
  constexpr u64 kPerThread = 1000;
  trace_recorder rec(2048);
  std::atomic<bool> stop{false};
  std::thread monitor([&] {
    while (!stop.load(std::memory_order_acquire)) {
      (void)rec.events_recorded();
      (void)rec.events_dropped();
      (void)rec.watermark();
    }
  });
  std::vector<std::thread> producers;
  producers.reserve(kThreads);
  for (unsigned t = 0; t < kThreads; ++t) {
    producers.emplace_back([&] {
      for (u64 i = 0; i < kPerThread; ++i) {
        rec.record(at(i));
        rec.set_watermark(i);
      }
    });
  }
  for (auto& th : producers) th.join();
  stop.store(true, std::memory_order_release);
  monitor.join();
  EXPECT_EQ(rec.events_recorded(), kThreads * kPerThread);
  EXPECT_EQ(rec.events_dropped(), 0u);
  EXPECT_EQ(rec.snapshot_events().size(), kThreads * kPerThread);
  EXPECT_EQ(rec.watermark(), kPerThread - 1);
}

}  // namespace
}  // namespace bpntt::telemetry
