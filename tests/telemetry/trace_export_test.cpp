// End-to-end virtual-timeline tracing: a deterministic contended workload
// on the sram backend, traced, exported as Chrome trace-event JSON, and
// cross-checked against the scheduler's own accounting — the reconstructed
// makespan (max span end across bank rows) must equal stats().wall_cycles
// *exactly*, because spans are stamped from the same frontier arithmetic.
// Also pins the disabled path: a context without with_tracing() holds no
// recorder and records zero events across a full workload.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/xoshiro.h"
#include "runtime/context.h"
#include "telemetry/trace.h"

namespace bpntt::runtime {
namespace {

runtime_options small_sram() {
  return runtime_options()
      .with_ring(32, 3137, 13)
      .with_backend(backend_kind::sram)
      .with_array(64, 39)
      .with_subarrays(4);
}

std::vector<u64> random_poly(u64 n, u64 q, common::xoshiro256ss& rng) {
  std::vector<u64> p(n);
  for (auto& c : p) c = rng.below(q);
  return p;
}

bool is_span(telemetry::trace_op op) {
  switch (op) {
    case telemetry::trace_op::ntt_forward:
    case telemetry::trace_op::ntt_inverse:
    case telemetry::trace_op::polymul:
    case telemetry::trace_op::rlwe_stage:
    case telemetry::trace_op::rescale:
    case telemetry::trace_op::base_extend:
      return true;
    default:
      return false;
  }
}

// Two priority-distinct streams contending for both banks, flushed
// back-to-back so their dispatch groups queue against each other.
void run_contended(context& ctx, unsigned rounds) {
  common::xoshiro256ss rng(7);
  for (unsigned round = 0; round < rounds; ++round) {
    auto hi = ctx.stream({.priority = 2});
    auto lo = ctx.stream({.priority = 0});
    for (unsigned i = 0; i < 6; ++i) {
      hi.submit(ntt_job{.coeffs = random_poly(32, 3137, rng)});
      lo.submit(ntt_job{.coeffs = random_poly(32, 3137, rng)});
    }
    hi.flush();
    lo.flush();
    ctx.sync();
    hi.close();
    lo.close();
  }
}

// Structural JSON check: balanced braces/brackets outside strings, with
// escape handling — catches a truncated or unbalanced document without
// pulling in a JSON library.
bool json_is_balanced(const std::string& doc) {
  std::vector<char> stack;
  bool in_string = false;
  bool escaped = false;
  for (const char c : doc) {
    if (in_string) {
      if (escaped) {
        escaped = false;
      } else if (c == '\\') {
        escaped = true;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    switch (c) {
      case '"': in_string = true; break;
      case '{':
      case '[': stack.push_back(c); break;
      case '}':
        if (stack.empty() || stack.back() != '{') return false;
        stack.pop_back();
        break;
      case ']':
        if (stack.empty() || stack.back() != '[') return false;
        stack.pop_back();
        break;
      default: break;
    }
  }
  return !in_string && stack.empty();
}

std::size_t count_of(const std::string& doc, const std::string& needle) {
  std::size_t n = 0;
  for (std::size_t pos = doc.find(needle); pos != std::string::npos;
       pos = doc.find(needle, pos + needle.size())) {
    ++n;
  }
  return n;
}

TEST(TraceExport, DisabledTracingRecordsZeroEventsAcrossAFullWorkload) {
  context ctx(small_sram().with_topology(2, 1, 2));
  run_contended(ctx, 2);
  const auto probe = ctx.trace_stats();
  EXPECT_FALSE(probe.enabled);
  EXPECT_EQ(probe.events_recorded, 0u);
  EXPECT_EQ(probe.events_dropped, 0u);
  EXPECT_EQ(ctx.tracer(), nullptr);  // zero-cost by absence: no recorder at all
  std::ostringstream os;
  EXPECT_THROW(ctx.export_trace(os), std::logic_error);
}

TEST(TraceExport, ReconstructedMakespanEqualsWallCyclesExactly) {
  context ctx(small_sram().with_topology(2, 1, 2).with_tracing());
  run_contended(ctx, 3);
  ASSERT_NE(ctx.tracer(), nullptr);
  const auto events = ctx.tracer()->snapshot_events();
  u64 makespan = 0;
  std::size_t spans = 0;
  for (const auto& e : events) {
    if (!is_span(e.op)) continue;
    ++spans;
    EXPECT_LT(e.track, telemetry::kTrackScheduler);  // spans ride bank rows
    makespan = std::max(makespan, e.ts + e.dur);
  }
  EXPECT_GT(spans, 0u);
  // Spans are stamped from the scheduler's bank frontiers, so the trace
  // reconstructs the virtual-timeline makespan exactly — not approximately.
  EXPECT_EQ(makespan, ctx.stats().wall_cycles);
  const auto probe = ctx.trace_stats();
  EXPECT_TRUE(probe.enabled);
  EXPECT_GT(probe.events_recorded, 0u);
  EXPECT_EQ(probe.events_dropped, 0u);
}

TEST(TraceExport, StatsSnapshotIsAViewOverTheRegistry) {
  context ctx(small_sram().with_topology(2, 1, 2));
  run_contended(ctx, 2);
  const scheduler_stats s = ctx.stats();
  const auto& reg = ctx.metrics();
  // stats() assembles its snapshot from the registry instruments, so the
  // two surfaces can never disagree once the context is quiescent.
  EXPECT_EQ(reg.counter_value("runtime.jobs_submitted"), s.jobs_submitted);
  EXPECT_EQ(reg.counter_value("runtime.jobs_completed"), s.jobs_completed);
  EXPECT_EQ(reg.counter_value("runtime.groups"), s.groups);
  EXPECT_EQ(reg.counter_value("runtime.batches"), s.batches);
  EXPECT_EQ(reg.gauge_value("runtime.wall_cycles"), s.wall_cycles);
  EXPECT_EQ(reg.counter_value("cache.hits"), s.operand_cache_hits);
  EXPECT_EQ(reg.counter_value("cache.misses"), s.operand_cache_misses);
  EXPECT_GT(s.jobs_completed, 0u);
  const std::string json = reg.to_json();
  EXPECT_NE(json.find("\"runtime.jobs_completed\":" + std::to_string(s.jobs_completed)),
            std::string::npos);
}

TEST(TraceExport, ExportedJsonIsSchemaValidChromeTrace) {
  context ctx(small_sram().with_topology(2, 1, 2).with_tracing());
  run_contended(ctx, 2);
  std::ostringstream os;
  ctx.export_trace(os);
  const std::string doc = os.str();

  // Envelope + structure.
  EXPECT_EQ(doc.rfind("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[", 0), 0u);
  EXPECT_EQ(doc.substr(doc.size() - 3), "]}\n");
  EXPECT_TRUE(json_is_balanced(doc));

  // Every emitted event carries a phase, and every phase is one of the
  // four this exporter speaks (X span, i instant, C counter, M metadata).
  const std::size_t n_events = count_of(doc, "\"ph\":");
  EXPECT_GT(n_events, 0u);
  EXPECT_EQ(count_of(doc, "\"ph\":\"X\"") + count_of(doc, "\"ph\":\"i\"") +
                count_of(doc, "\"ph\":\"C\"") + count_of(doc, "\"ph\":\"M\""),
            n_events);

  // Span rows ("X") match the recorder's span events one-to-one per bank,
  // and each carries a ts + dur extent.
  std::size_t recorded_spans = 0;
  for (const auto& e : ctx.tracer()->snapshot_events()) {
    if (is_span(e.op)) ++recorded_spans;
  }
  EXPECT_EQ(count_of(doc, "\"ph\":\"X\""), recorded_spans);
  EXPECT_EQ(count_of(doc, "\"dur\":"), recorded_spans);
  EXPECT_GT(count_of(doc, "\"ph\":\"i\""), 0u);  // lifecycle instants
  EXPECT_GT(count_of(doc, "\"ph\":\"C\""), 0u);  // counter tracks
  EXPECT_GT(count_of(doc, "\"ph\":\"M\""), 0u);  // pid/tid naming metadata

  // The pid/tid naming rows: channels as processes, banks as threads, and
  // the synthetic tracks behind them.
  EXPECT_NE(doc.find("channel 0"), std::string::npos);
  EXPECT_NE(doc.find("channel 1"), std::string::npos);
  EXPECT_NE(doc.find("bank 0"), std::string::npos);
  EXPECT_NE(doc.find("bank 1"), std::string::npos);
  EXPECT_NE(doc.find("\"scheduler\""), std::string::npos);
  EXPECT_NE(doc.find("\"operand cache\""), std::string::npos);
  EXPECT_NE(doc.find("\"backend\""), std::string::npos);
  EXPECT_NE(doc.find("\"service\""), std::string::npos);
  EXPECT_NE(doc.find("queue_depth"), std::string::npos);
}

TEST(TraceExport, ExportToPathMatchesStreamExport) {
  context ctx(small_sram().with_topology(2, 1, 2).with_tracing());
  run_contended(ctx, 1);
  std::ostringstream os;
  ctx.export_trace(os);
  const std::string path = testing::TempDir() + "bpntt_trace_export_test.json";
  ctx.export_trace(path);
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good());
  std::ostringstream file_contents;
  file_contents << in.rdbuf();
  EXPECT_EQ(file_contents.str(), os.str());
  EXPECT_THROW(ctx.export_trace("/nonexistent-dir/trace.json"), std::runtime_error);
}

}  // namespace
}  // namespace bpntt::runtime
