// metrics_registry semantics: get-or-create with stable references, one
// name one kind, zero-valued reads for absent names, and the single JSON
// document bench artifacts embed.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "telemetry/metrics.h"

namespace bpntt::telemetry {
namespace {

TEST(MetricsRegistry, GetOrCreateReturnsTheSameInstrument) {
  metrics_registry reg;
  counter& a = reg.make_counter("svc.submitted");
  counter& b = reg.make_counter("svc.submitted");
  EXPECT_EQ(&a, &b);
  a.add(3);
  b.add();
  EXPECT_EQ(reg.counter_value("svc.submitted"), 4u);
}

TEST(MetricsRegistry, OneNameOneKind) {
  metrics_registry reg;
  reg.make_counter("x");
  EXPECT_THROW(reg.make_gauge("x"), std::logic_error);
  EXPECT_THROW(reg.make_real("x"), std::logic_error);
  EXPECT_THROW(reg.make_histogram("x"), std::logic_error);
  // The failed registrations must not have minted instruments.
  EXPECT_EQ(reg.find_gauge("x"), nullptr);
  EXPECT_EQ(reg.find_real("x"), nullptr);
  EXPECT_EQ(reg.find_histogram("x"), nullptr);
  EXPECT_NE(reg.find_counter("x"), nullptr);
}

TEST(MetricsRegistry, FindAndValueReadsDoNotCreate) {
  metrics_registry reg;
  EXPECT_EQ(reg.find_counter("absent"), nullptr);
  EXPECT_EQ(reg.counter_value("absent"), 0u);
  EXPECT_EQ(reg.gauge_value("absent"), 0u);
  EXPECT_EQ(reg.real_value("absent"), 0.0);
  // The reads above must not have registered anything.
  EXPECT_EQ(reg.find_counter("absent"), nullptr);
}

TEST(MetricsRegistry, GaugeSetMaxIsAHighWaterMark) {
  metrics_registry reg;
  gauge& g = reg.make_gauge("makespan");
  g.set(5);
  g.set_max(3);  // below the water line: ignored
  EXPECT_EQ(g.value(), 5u);
  g.set_max(9);
  EXPECT_EQ(g.value(), 9u);
  g.set(2);  // plain set still overwrites
  EXPECT_EQ(g.value(), 2u);
}

TEST(MetricsRegistry, RealAccumAccumulates) {
  metrics_registry reg;
  real_accum& r = reg.make_real("energy_nj");
  r.add(1.5);
  r.add(2.25);
  EXPECT_DOUBLE_EQ(r.value(), 3.75);
  EXPECT_DOUBLE_EQ(reg.real_value("energy_nj"), 3.75);
}

TEST(MetricsRegistry, HistogramCellSnapshotsTheDistribution) {
  metrics_registry reg;
  histogram_cell& h = reg.make_histogram("latency_ns");
  for (u64 ns = 1; ns <= 100; ++ns) h.record(ns);
  const latency_histogram snap = h.snapshot();
  EXPECT_EQ(snap.count(), 100u);
  EXPECT_GE(snap.quantile_ns(0.50), 50u);  // bucket upper bounds
  EXPECT_GE(snap.max_ns(), 100u);
}

TEST(MetricsRegistry, ToJsonSerializesEverySection) {
  metrics_registry reg;
  reg.make_counter("svc.completed").add(3);
  reg.make_gauge("runtime.wall_cycles").set(7);
  reg.make_real("runtime.energy_nj").add(2.5);
  reg.make_histogram("svc.latency_ns").record(42);
  const std::string json = reg.to_json();
  EXPECT_NE(json.find("\"counters\":{"), std::string::npos);
  EXPECT_NE(json.find("\"svc.completed\":3"), std::string::npos);
  EXPECT_NE(json.find("\"gauges\":{"), std::string::npos);
  EXPECT_NE(json.find("\"runtime.wall_cycles\":7"), std::string::npos);
  EXPECT_NE(json.find("\"reals\":{"), std::string::npos);
  EXPECT_NE(json.find("\"runtime.energy_nj\":2.5"), std::string::npos);
  EXPECT_NE(json.find("\"histograms\":{"), std::string::npos);
  EXPECT_NE(json.find("\"svc.latency_ns\":{\"count\":1"), std::string::npos);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
}

TEST(MetricsRegistry, ConcurrentRegistrationAndUpdatesAreRaceFree) {
  // Many threads race make_counter on the same names and bump them; the
  // registry must hand everyone the same cells and lose no increments.
  // TSan certifies the locking in CI.
  metrics_registry reg;
  constexpr unsigned kThreads = 8;
  constexpr u64 kPerThread = 500;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (unsigned t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (u64 i = 0; i < kPerThread; ++i) {
        reg.make_counter("shared.counter").add();
        reg.make_histogram("shared.hist").record(i + 1);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(reg.counter_value("shared.counter"), kThreads * kPerThread);
  EXPECT_EQ(reg.find_histogram("shared.hist")->snapshot().count(), kThreads * kPerThread);
}

}  // namespace
}  // namespace bpntt::telemetry
