#include "common/bitutil.h"

#include <gtest/gtest.h>

namespace bpntt::common {
namespace {

TEST(BitUtil, BitLength) {
  EXPECT_EQ(bit_length(0), 0u);
  EXPECT_EQ(bit_length(1), 1u);
  EXPECT_EQ(bit_length(2), 2u);
  EXPECT_EQ(bit_length(255), 8u);
  EXPECT_EQ(bit_length(256), 9u);
  EXPECT_EQ(bit_length(~0ULL), 64u);
}

TEST(BitUtil, IsPowerOfTwo) {
  EXPECT_FALSE(is_power_of_two(0));
  EXPECT_TRUE(is_power_of_two(1));
  EXPECT_TRUE(is_power_of_two(2));
  EXPECT_FALSE(is_power_of_two(3));
  EXPECT_TRUE(is_power_of_two(1ULL << 63));
  EXPECT_FALSE(is_power_of_two((1ULL << 63) + 1));
}

TEST(BitUtil, Log2Exact) {
  EXPECT_EQ(log2_exact(1), 0u);
  EXPECT_EQ(log2_exact(2), 1u);
  EXPECT_EQ(log2_exact(1024), 10u);
  EXPECT_EQ(log2_exact(1ULL << 40), 40u);
}

TEST(BitUtil, ReverseBits) {
  EXPECT_EQ(reverse_bits(0b001, 3), 0b100u);
  EXPECT_EQ(reverse_bits(0b110, 3), 0b011u);
  EXPECT_EQ(reverse_bits(0, 8), 0u);
  EXPECT_EQ(reverse_bits(0xFF, 8), 0xFFu);
  // Involution over a full sweep.
  for (std::uint64_t v = 0; v < 64; ++v) {
    EXPECT_EQ(reverse_bits(reverse_bits(v, 6), 6), v);
  }
}

TEST(BitUtil, LowMask) {
  EXPECT_EQ(low_mask(0), 0u);
  EXPECT_EQ(low_mask(1), 1u);
  EXPECT_EQ(low_mask(16), 0xFFFFu);
  EXPECT_EQ(low_mask(64), ~0ULL);
}

TEST(BitUtil, ConstexprUsable) {
  static_assert(bit_length(3329) == 12);
  static_assert(is_power_of_two(256));
  static_assert(reverse_bits(1, 8) == 128);
  static_assert(low_mask(13) == 8191);
  SUCCEED();
}

}  // namespace
}  // namespace bpntt::common
