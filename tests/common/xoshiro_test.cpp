#include "common/xoshiro.h"

#include <gtest/gtest.h>

#include <set>

namespace bpntt::common {
namespace {

TEST(Xoshiro, DeterministicPerSeed) {
  xoshiro256ss a(123), b(123), c(124);
  for (int i = 0; i < 100; ++i) {
    const auto va = a();
    EXPECT_EQ(va, b());
    // Different seeds diverge essentially immediately.
    if (i == 0) EXPECT_NE(va, c());
  }
}

TEST(Xoshiro, BelowStaysInRangeAndCoversValues) {
  xoshiro256ss rng(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.below(17);
    ASSERT_LT(v, 17u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 17u);
}

TEST(Xoshiro, BelowEdgeCases) {
  xoshiro256ss rng(8);
  EXPECT_EQ(rng.below(0), 0u);
  EXPECT_EQ(rng.below(1), 0u);
}

TEST(Xoshiro, CoinIsRoughlyFair) {
  xoshiro256ss rng(9);
  int heads = 0;
  for (int i = 0; i < 10000; ++i) heads += rng.coin() ? 1 : 0;
  EXPECT_GT(heads, 4700);
  EXPECT_LT(heads, 5300);
}

TEST(Xoshiro, SatisfiesUniformRandomBitGenerator) {
  static_assert(std::uniform_random_bit_generator<xoshiro256ss>);
  EXPECT_EQ(xoshiro256ss::min(), 0u);
  EXPECT_EQ(xoshiro256ss::max(), ~0ULL);
}

TEST(Xoshiro, BitsLookUniform) {
  // Cheap sanity: each of the 64 bit positions toggles in ~half of draws.
  xoshiro256ss rng(10);
  int counts[64] = {};
  const int draws = 4096;
  for (int i = 0; i < draws; ++i) {
    const auto v = rng();
    for (int b = 0; b < 64; ++b) counts[b] += static_cast<int>((v >> b) & 1);
  }
  for (int b = 0; b < 64; ++b) {
    EXPECT_GT(counts[b], draws / 2 - 300) << "bit " << b;
    EXPECT_LT(counts[b], draws / 2 + 300) << "bit " << b;
  }
}

}  // namespace
}  // namespace bpntt::common
