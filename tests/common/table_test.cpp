#include "common/table.h"

#include <gtest/gtest.h>

namespace bpntt::common {
namespace {

TEST(TextTable, AlignsColumns) {
  text_table t({"A", "Blong"});
  t.add_row({"xxx", "y"});
  const auto s = t.to_string();
  EXPECT_NE(s.find("A    Blong\n"), std::string::npos);
  EXPECT_NE(s.find("xxx  y\n"), std::string::npos);
}

TEST(TextTable, SeparatorAndIndent) {
  text_table t({"H"});
  t.add_row({"v"});
  t.add_separator();
  t.add_row({"w"});
  const auto s = t.to_string(2);
  // Every line indented by two spaces; dashed lines = header rule + the
  // explicit separator.
  std::size_t dashes = 0;
  for (std::size_t pos = 0; (pos = s.find("\n  -", pos)) != std::string::npos; ++pos) ++dashes;
  EXPECT_EQ(dashes, 2u);
  EXPECT_EQ(s.rfind("  ", 0), 0u);  // starts with the indent
}

TEST(TextTable, ShortRowsPad) {
  text_table t({"A", "B", "C"});
  t.add_row({"1"});
  EXPECT_NO_THROW((void)t.to_string());
}

TEST(Format, FormatDouble) {
  EXPECT_EQ(format_double(3.14159, 2), "3.14");
  EXPECT_EQ(format_double(-1.5, 1), "-1.5");
  EXPECT_EQ(format_double(2.0, 0), "2");
}

TEST(Format, FormatSi) {
  EXPECT_EQ(format_si(950.0, 0), "950");
  EXPECT_EQ(format_si(2500.0, 1), "2.5K");
  EXPECT_EQ(format_si(3.8e9, 1), "3.8G");
  EXPECT_EQ(format_si(1.2e6, 2), "1.20M");
}

}  // namespace
}  // namespace bpntt::common
