#include "isa/program.h"

#include <gtest/gtest.h>

namespace bpntt::isa {
namespace {

TEST(Program, EncodeImageRoundTrip) {
  program_builder b;
  b.clear(5);
  b.copy(1, 2);
  b.pair(10, 11, 3, 4);
  b.check_zero(10);
  b.branch_nonzero_to(0);
  b.halt();
  const program p = b.take();
  const auto image = p.encode_image();
  EXPECT_EQ(image.size(), p.size());
  const program q = program::decode_image(image);
  ASSERT_EQ(q.ops.size(), p.ops.size());
  for (std::size_t i = 0; i < p.ops.size(); ++i) EXPECT_EQ(q.ops[i], p.ops[i]) << i;
}

TEST(Program, BuilderBackwardBranchOffsets) {
  program_builder b;
  const auto start = b.here();
  b.shift(1, 1, sram::shift_dir::left);
  b.pair(1, 2, 2, 1);
  b.check_zero(1);
  b.branch_nonzero_to(start);
  const program p = b.take();
  // pc' = pc + 1 + offset: from index 3 back to 0 needs offset -4.
  EXPECT_EQ(p.ops[3].offset, -4);
}

TEST(Program, BuilderForwardPatch) {
  program_builder b;
  b.check_zero(0);
  const auto l = b.reserve_branch_zero();
  b.copy(1, 2);
  b.copy(3, 4);
  b.patch_to_here(l);
  b.halt();
  const program p = b.take();
  // Branch at index 1 skipping two copies lands at index 4: offset 2.
  EXPECT_EQ(p.ops[1].offset, 2);
}

TEST(Program, PatchRejectsNonBranch) {
  program_builder b;
  b.copy(1, 2);
  EXPECT_THROW(b.patch_to_here(0), std::logic_error);
  EXPECT_THROW(b.patch_to_here(7), std::out_of_range);
}

TEST(Program, BranchTooFarThrows) {
  program_builder b;
  const auto start = b.here();
  for (int i = 0; i < 600; ++i) b.copy(1, 2);
  EXPECT_THROW(b.jump_to(start), std::out_of_range);
}

TEST(Program, ClearUsesSelfXor) {
  program_builder b;
  b.clear(9);
  const program p = b.take();
  ASSERT_EQ(p.ops.size(), 1u);
  EXPECT_EQ(p.ops[0].type, op_type::binary);
  EXPECT_EQ(p.ops[0].fn, sram::logic_fn::op_xor);
  EXPECT_EQ(p.ops[0].dst, 9);
  EXPECT_EQ(p.ops[0].src0, 9);
  EXPECT_EQ(p.ops[0].src1, 9);
}

TEST(Program, DisassembleListsEveryOp) {
  program_builder b;
  b.copy(1, 2);
  b.halt();
  const auto text = b.take().disassemble();
  EXPECT_NE(text.find("0: copy r1 <- r2"), std::string::npos);
  EXPECT_NE(text.find("1: halt"), std::string::npos);
}

TEST(Program, TakeResetsBuilder) {
  program_builder b;
  b.copy(1, 2);
  (void)b.take();
  EXPECT_EQ(b.here(), 0u);
}

}  // namespace
}  // namespace bpntt::isa
