#include "isa/microop.h"

#include <gtest/gtest.h>

#include <vector>

namespace bpntt::isa {
namespace {

void expect_round_trip(const micro_op& op) {
  const micro_op back = decode(encode(op));
  EXPECT_EQ(back, op) << disassemble(op) << " vs " << disassemble(back);
}

TEST(MicroOp, RoundTripCheckVariants) {
  expect_round_trip(make_check_pred(0, 0));
  expect_round_trip(make_check_pred(261, 15));
  expect_round_trip(make_check_pred(511, 255));
  expect_round_trip(make_check_zero(0));
  expect_round_trip(make_check_zero(300));
}

TEST(MicroOp, RoundTripCtrlVariants) {
  expect_round_trip(make_halt());
  expect_round_trip(make_jump(-1));
  expect_round_trip(make_jump(511));
  expect_round_trip(make_jump(-512));
  expect_round_trip(make_branch_nonzero(-4));
  expect_round_trip(make_branch_zero(3));
}

TEST(MicroOp, RoundTripUnaryVariants) {
  for (bool invert : {false, true}) {
    for (auto mask : {sram::write_mask::none, sram::write_mask::pred, sram::write_mask::pred_inv}) {
      expect_round_trip(make_copy(17, 300, invert, mask));
    }
  }
}

TEST(MicroOp, RoundTripShiftVariants) {
  for (auto dir : {sram::shift_dir::left, sram::shift_dir::right}) {
    for (bool lossless : {false, true}) {
      expect_round_trip(make_shift(5, 261, dir, lossless));
    }
  }
}

TEST(MicroOp, RoundTripBinaryVariants) {
  for (auto fn : {sram::logic_fn::op_and, sram::logic_fn::op_or, sram::logic_fn::op_xor,
                  sram::logic_fn::op_nor}) {
    expect_round_trip(make_binary(100, 200, 300, fn));
  }
  for (int delta : {-4, -2, -1, 1, 2, 3}) {
    expect_round_trip(make_pair(260, static_cast<std::uint16_t>(260 + delta), 1, 2));
  }
}

TEST(MicroOp, RowAddressLimit) {
  EXPECT_THROW((void)make_copy(512, 0), std::invalid_argument);
  EXPECT_THROW((void)make_binary(0, 512, 0, sram::logic_fn::op_and), std::invalid_argument);
  EXPECT_NO_THROW((void)make_copy(511, 511));
}

TEST(MicroOp, PairDeltaRange) {
  EXPECT_THROW((void)make_pair(10, 10, 0, 1), std::invalid_argument);  // zero delta
  EXPECT_THROW((void)make_pair(10, 15, 0, 1), std::invalid_argument);  // +5
  EXPECT_THROW((void)make_pair(10, 5, 0, 1), std::invalid_argument);   // -5
  EXPECT_NO_THROW((void)make_pair(10, 13, 0, 1));                      // +3
  EXPECT_NO_THROW((void)make_pair(10, 6, 0, 1));                       // -4
}

TEST(MicroOp, CtrlOffsetLimit) {
  EXPECT_THROW((void)make_jump(512), std::invalid_argument);
  EXPECT_THROW((void)make_jump(-513), std::invalid_argument);
}

TEST(MicroOp, EncodedTypeFieldMatchesFig4d) {
  EXPECT_EQ(encode(make_check_zero(1)) & 0x3U, 0u);   // Check
  EXPECT_EQ(encode(make_copy(1, 2)) & 0x3U, 1u);      // Unary
  EXPECT_EQ(encode(make_shift(1, 2, sram::shift_dir::left)) & 0x3U, 2u);  // Shift
  EXPECT_EQ(encode(make_binary(1, 2, 3, sram::logic_fn::op_xor)) & 0x3U, 3u);  // Binary
}

TEST(MicroOp, DisassembleSmokeStrings) {
  EXPECT_EQ(disassemble(make_halt()), "halt");
  EXPECT_EQ(disassemble(make_copy(3, 4)), "copy r3 <- r4");
  EXPECT_EQ(disassemble(make_copy(3, 4, true)), "copy r3 <- ~r4");
  EXPECT_EQ(disassemble(make_binary(1, 2, 3, sram::logic_fn::op_xor)), "xor r1 <- r2, r3");
  EXPECT_EQ(disassemble(make_pair(8, 9, 2, 3)), "pair {r8,r9} <- r2, r3");
  EXPECT_EQ(disassemble(make_check_pred(7, 0)), "check.pred r7, bit 0");
  EXPECT_EQ(disassemble(make_branch_nonzero(-3)), "bnz -3");
}

TEST(MicroOp, ExhaustiveFuzzRoundTrip) {
  // Sweep a structured grid across all field combinations.
  std::vector<micro_op> ops;
  for (std::uint16_t r : {0, 1, 255, 256, 511}) {
    ops.push_back(make_check_pred(r, static_cast<std::uint8_t>(r & 0xFF)));
    ops.push_back(make_copy(r, static_cast<std::uint16_t>(511 - r)));
    ops.push_back(make_shift(r, r, sram::shift_dir::right, true));
    ops.push_back(make_binary(r, r, r, sram::logic_fn::op_nor));
  }
  for (const auto& op : ops) expect_round_trip(op);
}

}  // namespace
}  // namespace bpntt::isa
