#include "isa/executor.h"

#include <gtest/gtest.h>

namespace bpntt::isa {
namespace {

sram::subarray make_array() {
  return sram::subarray(16, sram::tile_geometry{64, 16}, sram::tech_45nm());
}

TEST(Executor, StraightLineProgram) {
  auto a = make_array();
  a.host_write_word(0, 0, 0xF0F0);
  a.host_write_word(0, 1, 0x0FF0);
  program_builder b;
  b.binary(2, 0, 1, sram::logic_fn::op_and);
  b.pair(3, 4, 0, 1);
  b.copy(5, 2, true);
  b.shift(6, 1, sram::shift_dir::left);
  b.halt();
  const auto r = executor().run(b.take(), a);
  EXPECT_TRUE(r.halted);
  EXPECT_EQ(r.executed_ops, 4u);
  EXPECT_EQ(r.executed_ctrl, 1u);
  EXPECT_EQ(a.peek_word(0, 2), 0x00F0u);
  EXPECT_EQ(a.peek_word(0, 3), 0x00F0u);
  EXPECT_EQ(a.peek_word(0, 4), 0xFF00u);
  EXPECT_EQ(a.peek_word(0, 5), 0xFF0Fu);
  EXPECT_EQ(a.peek_word(0, 6), 0x1FE0u);
}

TEST(Executor, RippleLoopTerminatesViaZeroFlag) {
  // Resolve 0x00FF + 0x0001 with the carry-ripple do-while used by the
  // compiler; the carry chain is 8 long, exercising several iterations.
  auto a = make_array();
  a.host_write_word(0, 0, 0x00FF);  // sum
  a.host_write_word(0, 1, 0x0001);  // addend
  program_builder b;
  b.pair(1, 0, 0, 1);  // {carry, sum} = half-add
  const auto loop = b.here();
  b.shift(1, 1, sram::shift_dir::left);
  b.pair(1, 0, 0, 1);
  b.check_zero(1);
  b.branch_nonzero_to(loop);
  b.halt();
  const auto r = executor().run(b.take(), a);
  EXPECT_TRUE(r.halted);
  EXPECT_EQ(a.peek_word(0, 0), 0x0100u);
  EXPECT_EQ(a.peek_word(0, 1), 0u);
}

TEST(Executor, BranchZeroTaken) {
  auto a = make_array();
  program_builder b;
  b.check_zero(5);  // empty row -> zero flag set
  const auto l = b.reserve_branch_zero();
  b.copy(1, 0);  // skipped
  b.patch_to_here(l);
  b.halt();
  const auto r = executor().run(b.take(), a);
  EXPECT_TRUE(r.halted);
  EXPECT_EQ(r.executed_ops, 1u);  // only the check touched the array
}

TEST(Executor, FallsOffEndWithoutHalt) {
  auto a = make_array();
  program_builder b;
  b.copy(1, 0);
  const auto r = executor().run(b.take(), a);
  EXPECT_FALSE(r.halted);
  EXPECT_EQ(r.executed_ops, 1u);
}

TEST(Executor, RunawayLoopGuard) {
  auto a = make_array();
  a.host_write_word(0, 1, 1);  // nonzero forever
  program_builder b;
  const auto loop = b.here();
  b.check_zero(1);
  b.branch_nonzero_to(loop);
  b.halt();
  EXPECT_THROW(executor(1000).run(b.take(), a), std::runtime_error);
}

TEST(Executor, EmptyProgram) {
  auto a = make_array();
  const auto r = executor().run(program{}, a);
  EXPECT_FALSE(r.halted);
  EXPECT_EQ(r.executed_ops, 0u);
}

}  // namespace
}  // namespace bpntt::isa
