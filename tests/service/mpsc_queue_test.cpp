// mpsc_queue tests: FIFO semantics, bounded-backpressure behavior, payload
// lifetime, and a multi-producer stress that checks every pushed item is
// popped exactly once and in per-producer order.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "service/mpsc_queue.h"

namespace bpntt::service {
namespace {

TEST(MpscQueue, FifoWithinCapacity) {
  mpsc_queue<int> q(8);
  for (int i = 0; i < 8; ++i) EXPECT_TRUE(q.try_push(int(i)));
  int out = -1;
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(q.try_pop(out));
    EXPECT_EQ(out, i);
  }
  EXPECT_FALSE(q.try_pop(out));  // empty again
}

TEST(MpscQueue, CapacityRoundsUpToPowerOfTwoWithAFloorOfTwo) {
  EXPECT_EQ(mpsc_queue<int>(1).capacity(), 2u);  // a 1-cell ring is degenerate
  EXPECT_EQ(mpsc_queue<int>(3).capacity(), 4u);
  EXPECT_EQ(mpsc_queue<int>(8).capacity(), 8u);
  EXPECT_EQ(mpsc_queue<int>(1000).capacity(), 1024u);
  EXPECT_THROW(mpsc_queue<int>(0), std::invalid_argument);
}

TEST(MpscQueue, FullRingRejectsUntilAPopFreesASlot) {
  mpsc_queue<int> q(4);
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(q.try_push(int(i)));
  EXPECT_FALSE(q.try_push(99));
  EXPECT_EQ(q.size_approx(), 4u);

  int out = -1;
  ASSERT_TRUE(q.try_pop(out));
  EXPECT_EQ(out, 0);
  EXPECT_TRUE(q.try_push(99));  // the freed slot is reusable (lap arithmetic)
  for (const int want : {1, 2, 3, 99}) {
    ASSERT_TRUE(q.try_pop(out));
    EXPECT_EQ(out, want);
  }
}

TEST(MpscQueue, WrapsAroundManyLaps) {
  mpsc_queue<int> q(4);
  int out = -1;
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(q.try_push(int(i)));
    ASSERT_TRUE(q.try_pop(out));
    EXPECT_EQ(out, i);
  }
}

TEST(MpscQueue, PopReleasesThePayloadImmediately) {
  // A popped cell must not keep the payload alive until the slot's next
  // lap — the service's submissions hold tickets and session refs.
  mpsc_queue<std::shared_ptr<int>> q(4);
  auto p = std::make_shared<int>(42);
  ASSERT_TRUE(q.try_push(std::shared_ptr<int>(p)));
  EXPECT_EQ(p.use_count(), 2);
  std::shared_ptr<int> out;
  ASSERT_TRUE(q.try_pop(out));
  out.reset();
  EXPECT_EQ(p.use_count(), 1) << "the ring must not retain a popped payload";
}

TEST(MpscQueue, MoveOnlyPayloadsWork) {
  mpsc_queue<std::unique_ptr<int>> q(2);
  ASSERT_TRUE(q.try_push(std::make_unique<int>(7)));
  std::unique_ptr<int> out;
  ASSERT_TRUE(q.try_pop(out));
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(*out, 7);
}

TEST(MpscQueue, ManyProducersOneConsumerLosesNothing) {
  // Encode (producer, sequence) into each item; the consumer must see every
  // item exactly once and each producer's items in its push order, through
  // a ring far smaller than the item count (constant wrap pressure).
  constexpr unsigned kProducers = 4;
  constexpr std::uint64_t kPerProducer = 20000;
  mpsc_queue<std::uint64_t> q(64);

  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (unsigned p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q, p] {
      for (std::uint64_t i = 0; i < kPerProducer; ++i) {
        std::uint64_t item = (std::uint64_t(p) << 32) | i;
        while (!q.try_push(std::move(item))) std::this_thread::yield();
      }
    });
  }

  std::vector<std::uint64_t> next_seq(kProducers, 0);
  std::uint64_t popped = 0;
  while (popped < kProducers * kPerProducer) {
    std::uint64_t item = 0;
    if (!q.try_pop(item)) {
      std::this_thread::yield();
      continue;
    }
    ++popped;
    const auto p = static_cast<unsigned>(item >> 32);
    const std::uint64_t seq = item & 0xffffffffULL;
    ASSERT_LT(p, kProducers);
    ASSERT_EQ(seq, next_seq[p]) << "producer " << p << " item out of order or lost";
    ++next_seq[p];
  }
  for (auto& t : producers) t.join();

  std::uint64_t leftover = 0;
  EXPECT_FALSE(q.try_pop(leftover)) << "more items popped out than were pushed";
  for (unsigned p = 0; p < kProducers; ++p) EXPECT_EQ(next_seq[p], kPerProducer);
}

}  // namespace
}  // namespace bpntt::service
