// latency_histogram tests: the bucketing contract (a value lands strictly
// below its bucket's upper bound, buckets are monotone, resolution is at
// most ~25%), quantile semantics against exactly-known distributions, and
// bucket-wise merging.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/xoshiro.h"
#include "telemetry/histogram.h"

namespace bpntt::service {
namespace {

using telemetry::latency_histogram;

TEST(LatencyHistogram, ValuesLandStrictlyBelowTheirBucketUpperBound) {
  common::xoshiro256ss rng(41);
  std::vector<std::uint64_t> probes = {0, 1, 1023, 1024, 2047, 2048, 3071, 3072,
                                       4095, 4096, 1'000'000, 1'000'000'000};
  for (unsigned i = 0; i < 2000; ++i) probes.push_back(rng() >> (rng() & 31));
  for (const auto v : probes) {
    const auto b = latency_histogram::bucket_of(v);
    ASSERT_LT(b, latency_histogram::kBuckets);
    if (b + 1 < latency_histogram::kBuckets) {
      EXPECT_LT(v, latency_histogram::bucket_upper_ns(b)) << "value " << v;
    }
    if (b > 0) {
      // ...and at or above the previous bucket's upper bound.
      EXPECT_GE(v, latency_histogram::bucket_upper_ns(b - 1)) << "value " << v;
    }
  }
}

TEST(LatencyHistogram, BucketBoundariesAreExact) {
  // The first value of a bucket is exactly the previous bucket's upper
  // bound: upper - 1 stays put, upper moves on.
  for (std::size_t b = 0; b + 1 < latency_histogram::kBuckets; ++b) {
    const auto upper = latency_histogram::bucket_upper_ns(b);
    EXPECT_EQ(latency_histogram::bucket_of(upper - 1), b);
    EXPECT_EQ(latency_histogram::bucket_of(upper), b + 1);
  }
}

TEST(LatencyHistogram, BucketUpperBoundsAreStrictlyIncreasing) {
  for (std::size_t b = 1; b < latency_histogram::kBuckets; ++b) {
    EXPECT_GT(latency_histogram::bucket_upper_ns(b),
              latency_histogram::bucket_upper_ns(b - 1))
        << "bucket " << b;
  }
}

TEST(LatencyHistogram, ResolutionIsAQuarterOctaveOrBetter) {
  // Past the unit-wide low buckets, bucket width is at most 25% of the
  // bucket's lower bound — the histogram's advertised quantile error.
  for (std::size_t b = 4; b < latency_histogram::kBuckets; ++b) {
    const auto lo = latency_histogram::bucket_upper_ns(b - 1);
    const auto hi = latency_histogram::bucket_upper_ns(b);
    EXPECT_LE((hi - lo) * 4, lo) << "bucket " << b;
  }
}

TEST(LatencyHistogram, EmptyHistogramReportsZero) {
  const latency_histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.max_ns(), 0u);
  EXPECT_EQ(h.quantile_ns(0.5), 0u);
  EXPECT_EQ(h.quantile_ns(0.99), 0u);
}

TEST(LatencyHistogram, QuantilesOfAKnownSplit) {
  // 99 fast samples and one slow outlier: every quantile through p99 reads
  // the fast bucket; only the very top sees the outlier, capped at the
  // recorded maximum (not the open bucket's bound).
  latency_histogram h;
  for (int i = 0; i < 99; ++i) h.record_ns(500);  // all in bucket 0 (< ~1 us)
  h.record_ns(1'000'000'000);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_EQ(h.max_ns(), 1'000'000'000u);

  const auto fast_upper = latency_histogram::bucket_upper_ns(0);
  EXPECT_EQ(h.quantile_ns(0.50), fast_upper);
  EXPECT_EQ(h.quantile_ns(0.99), fast_upper);
  EXPECT_EQ(h.quantile_ns(1.00), 1'000'000'000u);
}

TEST(LatencyHistogram, QuantileIsWithinBucketResolutionOfTheExactValue) {
  // Against an exactly-computed quantile over random samples: the reported
  // value must bound the true one from above, within one bucket width
  // (25%) plus the unit granularity.
  common::xoshiro256ss rng(43);
  latency_histogram h;
  std::vector<std::uint64_t> samples;
  for (unsigned i = 0; i < 5000; ++i) {
    const std::uint64_t v = 100'000 + rng.below(10'000'000);
    samples.push_back(v);
    h.record_ns(v);
  }
  std::sort(samples.begin(), samples.end());
  for (const double p : {0.50, 0.95, 0.99}) {
    const auto rank = static_cast<std::size_t>(p * samples.size());
    const std::uint64_t exact = samples[rank == 0 ? 0 : rank - 1];
    const std::uint64_t reported = h.quantile_ns(p);
    EXPECT_GE(reported, exact) << "p = " << p;
    EXPECT_LE(reported, exact + exact / 4 + 2048) << "p = " << p;
  }
}

TEST(LatencyHistogram, QuantileNeverExceedsTheRecordedMaximum) {
  latency_histogram h;
  h.record_ns(5000);
  h.record_ns(7000);
  EXPECT_EQ(h.quantile_ns(1.0), std::min<std::uint64_t>(
                                    latency_histogram::bucket_upper_ns(
                                        latency_histogram::bucket_of(7000)),
                                    h.max_ns()));
  EXPECT_LE(h.quantile_ns(0.99), h.max_ns());
}

TEST(LatencyHistogram, MergeAddsBucketwise) {
  latency_histogram a, b;
  for (int i = 0; i < 10; ++i) a.record_ns(1000);
  for (int i = 0; i < 30; ++i) b.record_ns(50'000'000);
  a += b;
  EXPECT_EQ(a.count(), 40u);
  EXPECT_EQ(a.max_ns(), 50'000'000u);
  // 10 of 40 samples are fast: p25 still reads the fast bucket, p50 the
  // slow one.
  EXPECT_EQ(a.quantile_ns(0.25), latency_histogram::bucket_upper_ns(0));
  EXPECT_GT(a.quantile_ns(0.50), 10'000'000u);
}

}  // namespace
}  // namespace bpntt::service
