// Service-layer tests: ticket round trips, bit-identical results under
// concurrent multi-producer submission (the MPSC stress), typed admission
// control at each cap, stream pooling across session lifetimes, deadline
// accounting in the service stats, and the any-thread stats contract (this
// suite also runs under TSan in CI).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/xoshiro.h"
#include "nttmath/primes.h"
#include "service/service.h"

namespace bpntt::service {
namespace {

using runtime::backend_caps;
using runtime::batch_result;
using runtime::dispatch_hints;
using runtime::job_status;
using runtime::ntt_job;
using runtime::polymul_job;
using runtime::rlwe_encrypt_job;
using runtime::transform_dir;

runtime::runtime_options small_sram() {
  return runtime::runtime_options()
      .with_ring(32, 193, 9)
      .with_backend(runtime::backend_kind::sram)
      .with_array(64, 36)
      .with_subarrays(4);
}

std::vector<u64> random_poly(u64 n, u64 q, common::xoshiro256ss& rng) {
  std::vector<u64> p(n);
  for (auto& c : p) c = rng.below(q);
  return p;
}

// A backend that parks every dispatch on its pool thread until release():
// the deterministic way to hold a session's jobs in flight while the test
// probes admission control.
class gated_backend final : public runtime::backend {
 public:
  [[nodiscard]] std::string_view name() const noexcept override { return "gated"; }
  [[nodiscard]] backend_caps capabilities() const override {
    backend_caps caps;
    caps.polymul = true;
    return caps;
  }

  batch_result run_ntt(const std::vector<std::vector<u64>>& polys, transform_dir,
                       const dispatch_hints&) override {
    gate();
    batch_result r;
    r.outputs = polys;
    r.waves = polys.empty() ? 0 : 1;
    r.wall_cycles = polys.empty() ? 0 : 1000;
    return r;
  }
  batch_result run_polymul(const std::vector<core::polymul_pair>& pairs,
                           const dispatch_hints&) override {
    gate();
    batch_result r;
    for (const auto& pr : pairs) r.outputs.push_back(pr.a);
    r.waves = pairs.empty() ? 0 : 1;
    r.wall_cycles = pairs.empty() ? 0 : 1000;
    return r;
  }

  void release() {
    std::lock_guard<std::mutex> lk(mu_);
    released_ = true;
    cv_.notify_all();
  }

 private:
  void gate() {
    std::unique_lock<std::mutex> lk(mu_);
    cv_.wait(lk, [&] { return released_; });
  }
  std::mutex mu_;
  std::condition_variable cv_;
  bool released_ = false;
};

// Poll an observable service condition with a generous deadline (the
// drainer runs asynchronously; its idle poll is hundreds of microseconds).
template <typename Pred>
bool eventually(Pred&& ok, std::chrono::milliseconds budget = std::chrono::seconds(10)) {
  const auto give_up = std::chrono::steady_clock::now() + budget;
  while (!ok()) {
    if (std::chrono::steady_clock::now() > give_up) return false;
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  return true;
}

// ---- round trips -----------------------------------------------------------

TEST(Service, SingleJobRoundTripMatchesDirectSubmission) {
  common::xoshiro256ss rng(51);
  const auto input = random_poly(32, 193, rng);

  runtime::context direct(small_sram());
  const auto expected = direct.wait(direct.submit(ntt_job{.coeffs = input}));

  service svc(small_sram());
  auto sess = svc.open_session();
  auto t = sess.submit(ntt_job{.coeffs = input});
  ASSERT_TRUE(t.valid());
  const auto got = t.get();
  EXPECT_EQ(got.status, job_status::ok);
  EXPECT_EQ(got.outputs, expected.outputs);

  const auto s = svc.stats();
  EXPECT_EQ(s.submitted, 1u);
  EXPECT_EQ(s.admitted, 1u);
  EXPECT_EQ(s.rejected, 0u);
  EXPECT_EQ(s.completed, 1u);
  EXPECT_EQ(s.latency_samples, 1u);
  EXPECT_GT(s.p50_ns, 0u);
  EXPECT_LE(s.p50_ns, s.p99_ns);
}

TEST(Service, TicketIsConsumeOnceAndDiagnosesEmptiness) {
  ticket empty;
  EXPECT_FALSE(empty.valid());
  EXPECT_FALSE(empty.ready());
  EXPECT_THROW((void)empty.get(), std::logic_error);

  service svc(small_sram());
  auto sess = svc.open_session();
  common::xoshiro256ss rng(52);
  auto t = sess.submit(ntt_job{.coeffs = random_poly(32, 193, rng)});
  EXPECT_EQ(t.get().status, job_status::ok);
  EXPECT_TRUE(t.ready());
  EXPECT_THROW((void)t.get(), std::logic_error);  // already claimed
}

TEST(Service, ConcurrentProducersGetBitIdenticalResultsToSerial) {
  // The MPSC stress: several client threads push a deterministic mix of
  // job kinds through one service; every ticket must resolve exactly once
  // with outputs bit-identical to the same jobs run serially through a
  // plain context.  Lost or duplicated submissions fail loudly here.
  constexpr unsigned kProducers = 4;
  constexpr unsigned kJobsEach = 30;

  struct planned_job {
    unsigned kind;  // 0 = fwd ntt, 1 = inv ntt, 2 = polymul, 3 = rlwe
    ntt_job ntt;
    polymul_job mul;
    rlwe_encrypt_job rlwe;
  };
  std::vector<std::vector<planned_job>> plan(kProducers);
  for (unsigned p = 0; p < kProducers; ++p) {
    common::xoshiro256ss rng(100 + p);
    for (unsigned i = 0; i < kJobsEach; ++i) {
      planned_job j;
      j.kind = static_cast<unsigned>(rng.below(4));
      switch (j.kind) {
        case 0:
          j.ntt = ntt_job{.coeffs = random_poly(32, 193, rng)};
          break;
        case 1:
          j.ntt = ntt_job{.dir = transform_dir::inverse,
                          .coeffs = random_poly(32, 193, rng)};
          break;
        case 2:
          j.mul = polymul_job{.a = random_poly(32, 193, rng),
                              .b = random_poly(32, 193, rng)};
          break;
        default: {
          std::vector<u64> msg(32);
          for (auto& b : msg) b = rng() & 1ULL;
          j.rlwe = rlwe_encrypt_job{.message = msg, .seed = rng()};
          break;
        }
      }
      plan[p].push_back(std::move(j));
    }
  }

  // The serial ground truth.
  runtime::context direct(small_sram());
  std::vector<std::vector<std::vector<std::vector<u64>>>> expected(kProducers);
  for (unsigned p = 0; p < kProducers; ++p) {
    for (const auto& j : plan[p]) {
      runtime::job_id id = 0;
      if (j.kind <= 1) {
        id = direct.submit(j.ntt);
      } else if (j.kind == 2) {
        id = direct.submit(j.mul);
      } else {
        id = direct.submit(j.rlwe);
      }
      expected[p].push_back(direct.wait(id).outputs);
    }
  }

  service svc(small_sram());
  std::vector<std::vector<ticket>> tickets(kProducers);
  std::vector<std::thread> threads;
  for (unsigned p = 0; p < kProducers; ++p) {
    tickets[p].resize(kJobsEach);
    threads.emplace_back([&, p] {
      auto sess = svc.open_session();
      for (unsigned i = 0; i < kJobsEach; ++i) {
        const auto& j = plan[p][i];
        if (j.kind <= 1) {
          tickets[p][i] = sess.submit(j.ntt);
        } else if (j.kind == 2) {
          tickets[p][i] = sess.submit(j.mul);
        } else {
          tickets[p][i] = sess.submit(j.rlwe);
        }
      }
    });
  }
  for (auto& t : threads) t.join();

  for (unsigned p = 0; p < kProducers; ++p) {
    for (unsigned i = 0; i < kJobsEach; ++i) {
      const auto r = tickets[p][i].get();
      ASSERT_EQ(r.status, job_status::ok) << "producer " << p << " job " << i
                                          << ": " << r.error;
      EXPECT_EQ(r.outputs, expected[p][i]) << "producer " << p << " job " << i;
    }
  }
  const auto s = svc.stats();
  EXPECT_EQ(s.submitted, u64{kProducers} * kJobsEach);
  EXPECT_EQ(s.admitted, u64{kProducers} * kJobsEach);
  EXPECT_EQ(s.completed, u64{kProducers} * kJobsEach);
  EXPECT_EQ(s.latency_samples, u64{kProducers} * kJobsEach);
  EXPECT_EQ(s.rejected, 0u);
  EXPECT_EQ(s.failed, 0u);
  EXPECT_EQ(s.queued, 0u);
  EXPECT_EQ(s.in_flight, 0u);
}

// ---- admission control -----------------------------------------------------

TEST(Service, InFlightCapRejectsWithTypedError) {
  auto owned = std::make_unique<gated_backend>();
  auto* gate = owned.get();
  service svc(small_sram().with_threads(2), std::move(owned));
  auto sess = svc.open_session({.max_in_flight = 1});
  common::xoshiro256ss rng(53);

  auto t1 = sess.submit(ntt_job{.coeffs = random_poly(32, 193, rng)});
  // The drainer dispatches it onto the gated backend; once it counts as in
  // flight the cap is observably taken.
  ASSERT_TRUE(eventually([&] { return sess.stats().in_flight == 1; }));

  try {
    (void)sess.submit(ntt_job{.coeffs = random_poly(32, 193, rng)});
    FAIL() << "submission past the in-flight cap must be rejected";
  } catch (const admission_error& e) {
    EXPECT_EQ(e.reason(), admission_reason::session_in_flight);
    EXPECT_NE(std::string(e.what()).find("in-flight cap"), std::string::npos);
  }
  const auto s = sess.stats();
  EXPECT_EQ(s.rejected, 1u);
  EXPECT_EQ(s.rejected_in_flight, 1u);

  gate->release();
  EXPECT_EQ(t1.get().status, job_status::ok);
  // With the slot free the tenant is admitted again.
  ASSERT_TRUE(eventually([&] { return sess.stats().in_flight == 0; }));
  auto t3 = sess.submit(ntt_job{.coeffs = random_poly(32, 193, rng)});
  EXPECT_EQ(t3.get().status, job_status::ok);
}

TEST(Service, BacklogCapRejectsWithTypedError) {
  // The backlog cap bounds admitted-but-undrained submissions.  Two
  // back-to-back submits race the drainer's wakeup (hundreds of ns vs
  // microseconds), so with max_queued = 1 the second submit lands in a full
  // backlog in practice on every attempt; the loop makes it airtight.
  service svc(small_sram());
  auto sess = svc.open_session({.max_queued = 1});
  common::xoshiro256ss rng(54);
  const auto poly = random_poly(32, 193, rng);

  bool saw_backlog_rejection = false;
  for (unsigned attempt = 0; attempt < 2000 && !saw_backlog_rejection; ++attempt) {
    svc.drain();
    std::this_thread::sleep_for(std::chrono::microseconds(300));  // let the drainer park
    std::vector<ticket> burst;
    try {
      burst.push_back(sess.submit(ntt_job{.coeffs = poly}));
      burst.push_back(sess.submit(ntt_job{.coeffs = poly}));
    } catch (const admission_error& e) {
      EXPECT_EQ(e.reason(), admission_reason::session_backlog);
      saw_backlog_rejection = true;
    }
    for (auto& t : burst) EXPECT_EQ(t.get().status, job_status::ok);
  }
  EXPECT_TRUE(saw_backlog_rejection);
  EXPECT_GE(sess.stats().rejected_backlog, 1u);
}

TEST(Service, FullSubmissionRingRejectsWithTypedError) {
  // Same wakeup race, aimed at the global ring: with a two-slot ring (the
  // minimum) the third of three back-to-back submissions finds it still
  // occupied.
  service svc(small_sram(), service_options{.queue_capacity = 2});
  auto sess = svc.open_session();
  common::xoshiro256ss rng(55);
  const auto poly = random_poly(32, 193, rng);

  bool saw_queue_full = false;
  for (unsigned attempt = 0; attempt < 2000 && !saw_queue_full; ++attempt) {
    svc.drain();
    std::this_thread::sleep_for(std::chrono::microseconds(300));
    std::vector<ticket> burst;
    try {
      burst.push_back(sess.submit(ntt_job{.coeffs = poly}));
      burst.push_back(sess.submit(ntt_job{.coeffs = poly}));
      burst.push_back(sess.submit(ntt_job{.coeffs = poly}));
    } catch (const admission_error& e) {
      EXPECT_EQ(e.reason(), admission_reason::queue_full);
      saw_queue_full = true;
    }
    for (auto& t : burst) EXPECT_EQ(t.get().status, job_status::ok);
  }
  EXPECT_TRUE(saw_queue_full);
  EXPECT_GE(svc.stats().rejected_queue_full, 1u);
}

TEST(Service, ClosedSessionRejectsButOutstandingWorkCompletes) {
  service svc(small_sram());
  auto sess = svc.open_session();
  common::xoshiro256ss rng(56);

  auto t = sess.submit(ntt_job{.coeffs = random_poly(32, 193, rng)});
  sess.close();
  try {
    (void)sess.submit(ntt_job{.coeffs = random_poly(32, 193, rng)});
    FAIL() << "closed session must reject";
  } catch (const admission_error& e) {
    EXPECT_EQ(e.reason(), admission_reason::closed);
  }
  EXPECT_EQ(t.get().status, job_status::ok) << "close must not drop admitted work";
  EXPECT_EQ(sess.stats().rejected_closed, 1u);
}

TEST(Service, SessionCapsMustBePositive) {
  service svc(small_sram());
  EXPECT_THROW((void)svc.open_session({.max_queued = 0}), std::invalid_argument);
  EXPECT_THROW((void)svc.open_session({.max_in_flight = 0}), std::invalid_argument);
  EXPECT_THROW(service(small_sram(), service_options{.queue_capacity = 0}),
               std::invalid_argument);
}

// ---- failure delivery ------------------------------------------------------

TEST(Service, InvalidJobComesBackAsFailedResultNotAThrow) {
  // Admission is validate-light; the runtime's deep validation runs on the
  // drainer and its rejection must arrive as a failed result on the ticket
  // (the submitting thread already returned).
  service svc(small_sram());
  auto sess = svc.open_session();
  common::xoshiro256ss rng(57);

  auto bad = sess.submit(ntt_job{.coeffs = std::vector<u64>(5, 1)});  // wrong length
  const auto r = bad.get();
  EXPECT_EQ(r.status, job_status::failed);
  EXPECT_FALSE(r.error.empty());

  // The tenant and the service keep serving afterwards.
  auto good = sess.submit(ntt_job{.coeffs = random_poly(32, 193, rng)});
  EXPECT_EQ(good.get().status, job_status::ok);
  const auto s = svc.stats();
  EXPECT_EQ(s.failed, 1u);
  EXPECT_EQ(s.completed, 1u);
  EXPECT_EQ(s.latency_samples, 2u);  // failures are latency samples too
}

// ---- lifecycle -------------------------------------------------------------

TEST(Service, DestructionDrainsEverythingAdmitted) {
  common::xoshiro256ss rng(58);
  std::vector<ticket> tickets;
  {
    service svc(small_sram());
    auto sess = svc.open_session();
    for (unsigned i = 0; i < 16; ++i) {
      tickets.push_back(sess.submit(ntt_job{.coeffs = random_poly(32, 193, rng)}));
    }
  }
  // Tickets outlive the service; every admitted job was delivered.
  for (auto& t : tickets) {
    ASSERT_TRUE(t.ready());
    EXPECT_EQ(t.get().status, job_status::ok);
  }
}

TEST(Service, ClosedStreamsParkInThePoolAndAreReused) {
  service svc(small_sram());
  const auto base = svc.open_streams();
  common::xoshiro256ss rng(59);

  auto a = svc.open_session({.priority = 5});
  EXPECT_EQ(a.submit(ntt_job{.coeffs = random_poly(32, 193, rng)}).get().status,
            job_status::ok);
  EXPECT_EQ(svc.open_streams(), base + 1);  // the tenant's stream is open
  a.close();
  // Retirement parks the stream rather than closing it...
  ASSERT_TRUE(eventually([&] { return svc.pooled_streams() == 1; }));
  EXPECT_EQ(svc.open_streams(), base + 1);

  // ...and a policy-compatible successor adopts it instead of opening a
  // fresh one.
  auto b = svc.open_session({.priority = 5});
  EXPECT_EQ(b.submit(ntt_job{.coeffs = random_poly(32, 193, rng)}).get().status,
            job_status::ok);
  EXPECT_EQ(svc.open_streams(), base + 1);
  EXPECT_EQ(svc.pooled_streams(), 0u);  // adopted, not duplicated

  // A policy-incompatible tenant gets its own stream.
  auto c = svc.open_session({.priority = 9});
  EXPECT_EQ(c.submit(ntt_job{.coeffs = random_poly(32, 193, rng)}).get().status,
            job_status::ok);
  EXPECT_EQ(svc.open_streams(), base + 2);
}

TEST(Service, RnsLimbSessionMatchesADirectLimbStream) {
  // A 13-bit envelope ring so a 12-bit RNS limb prime validates.
  const auto wide = runtime::runtime_options()
                        .with_ring(32, 3137, 13)
                        .with_backend(runtime::backend_kind::sram)
                        .with_array(64, 39)
                        .with_subarrays(4);
  const u64 limb_q = math::first_k_ntt_primes(12, 32, 1, true).front();
  common::xoshiro256ss rng(60);
  const auto input = random_poly(32, limb_q, rng);

  runtime::context direct(wide);
  auto limb = direct.rns_stream(limb_q);
  const auto id = limb.submit(ntt_job{.coeffs = input});
  limb.flush();
  const auto expected = direct.wait(id);

  service svc(wide);
  auto sess = svc.open_session({.ring_q = limb_q});
  const auto got = sess.submit(ntt_job{.coeffs = input}).get();
  EXPECT_EQ(got.status, job_status::ok);
  EXPECT_EQ(got.outputs, expected.outputs);
}

TEST(Service, RnsRlweJobsRoundTripThroughALimbSession) {
  // The leveled RNS-RLWE tenant's traffic shapes — a congruence-preserving
  // rescale correction and a base-extension lift — must flow through a
  // ring_q session's ticket path bit-identically to a direct limb stream.
  const auto wide = runtime::runtime_options()
                        .with_ring(32, 3137, 13)
                        .with_backend(runtime::backend_kind::sram)
                        .with_array(64, 39)
                        .with_subarrays(4);
  const auto limbs = math::first_k_ntt_primes(12, 32, 2, true);
  const u64 limb_q = limbs[0];
  const u64 partner_q = limbs[1];
  common::xoshiro256ss rng(62);
  const auto x = random_poly(32, limb_q, rng);
  const auto dropped = random_poly(32, partner_q, rng);
  const auto source = random_poly(32, partner_q, rng);

  runtime::context direct(wide);
  auto limb = direct.rns_stream(limb_q);
  const auto rescale_id = limb.submit(runtime::rns_rescale_job{
      .prime = limb_q, .drop_prime = partner_q, .x = x, .dropped = dropped,
      .congruence = 2});
  const auto bext_id = limb.submit(runtime::rns_base_extend_job{
      .prime = limb_q, .source_primes = {partner_q}, .residues = {source}});
  limb.flush();
  const auto rescale_expected = direct.wait(rescale_id);
  const auto bext_expected = direct.wait(bext_id);

  service svc(wide);
  auto sess = svc.open_session({.ring_q = limb_q});
  const auto rescale_got = sess.submit(runtime::rns_rescale_job{
      .prime = limb_q, .drop_prime = partner_q, .x = x, .dropped = dropped,
      .congruence = 2}).get();
  const auto bext_got = sess.submit(runtime::rns_base_extend_job{
      .prime = limb_q, .source_primes = {partner_q}, .residues = {source}}).get();
  EXPECT_EQ(rescale_got.status, job_status::ok);
  EXPECT_EQ(rescale_got.outputs, rescale_expected.outputs);
  EXPECT_EQ(bext_got.status, job_status::ok);
  EXPECT_EQ(bext_got.outputs, bext_expected.outputs);
}

// ---- deadlines and stats ---------------------------------------------------

TEST(Service, DeadlineMissesLandInServiceStats) {
  service svc(small_sram());
  auto strict = svc.open_session({.deadline_cycles = 1});  // unmeetable
  auto relaxed = svc.open_session();
  common::xoshiro256ss rng(61);

  const auto r1 = strict.submit(ntt_job{.coeffs = random_poly(32, 193, rng)}).get();
  const auto r2 = relaxed.submit(ntt_job{.coeffs = random_poly(32, 193, rng)}).get();
  EXPECT_EQ(r1.status, job_status::ok);  // misses are accounted, not preempted
  EXPECT_TRUE(r1.deadline_missed);
  EXPECT_FALSE(r2.deadline_missed);

  EXPECT_EQ(strict.stats().deadline_misses, 1u);
  EXPECT_DOUBLE_EQ(strict.stats().deadline_miss_rate(), 1.0);
  EXPECT_EQ(relaxed.stats().deadline_misses, 0u);
  const auto s = svc.stats();
  EXPECT_EQ(s.deadline_misses, 1u);
  EXPECT_DOUBLE_EQ(s.deadline_miss_rate(), 0.5);
}

TEST(Service, GlobalStatsAggregateAcrossSessions) {
  service svc(small_sram());
  auto a = svc.open_session();
  auto b = svc.open_session();
  common::xoshiro256ss rng(62);

  std::vector<ticket> ts;
  for (unsigned i = 0; i < 5; ++i) {
    ts.push_back(a.submit(ntt_job{.coeffs = random_poly(32, 193, rng)}));
    ts.push_back(b.submit(polymul_job{.a = random_poly(32, 193, rng),
                                      .b = random_poly(32, 193, rng)}));
  }
  for (auto& t : ts) EXPECT_EQ(t.get().status, job_status::ok);

  EXPECT_EQ(a.stats().completed, 5u);
  EXPECT_EQ(b.stats().completed, 5u);
  const auto s = svc.stats();
  EXPECT_EQ(s.submitted, 10u);
  EXPECT_EQ(s.completed, 10u);
  EXPECT_EQ(s.latency_samples, 10u);
  EXPECT_EQ(s.queued, 0u);
  EXPECT_EQ(s.in_flight, 0u);
  // The wrapped context's counters are visible through the same surface.
  EXPECT_EQ(svc.runtime_stats().jobs_completed, 10u);
}

TEST(Service, StatsAreSafeFromAnyThread) {
  // The monitoring contract (and this suite's TSan teeth): an observer
  // thread hammers every stats surface while producers submit and the
  // drainer dispatches, completes and retires streams.
  service svc(small_sram());
  std::atomic<bool> stop{false};
  std::thread observer([&] {
    while (!stop.load(std::memory_order_acquire)) {
      const auto s = svc.stats();
      EXPECT_LE(s.admitted, s.submitted);
      (void)svc.runtime_stats();
      (void)svc.open_streams();
    }
  });

  constexpr unsigned kProducers = 3;
  std::vector<std::thread> producers;
  for (unsigned p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      common::xoshiro256ss rng(70 + p);
      auto sess = svc.open_session({.priority = static_cast<int>(p)});
      std::vector<ticket> ts;
      for (unsigned i = 0; i < 50; ++i) {
        ts.push_back(sess.submit(ntt_job{.coeffs = random_poly(32, 193, rng)}));
        (void)sess.stats();
      }
      for (auto& t : ts) EXPECT_EQ(t.get().status, job_status::ok);
      sess.close();
    });
  }
  for (auto& t : producers) t.join();
  stop.store(true, std::memory_order_release);
  observer.join();

  const auto s = svc.stats();
  EXPECT_EQ(s.completed, u64{kProducers} * 50);
  EXPECT_EQ(s.latency_samples, u64{kProducers} * 50);
}

}  // namespace
}  // namespace bpntt::service
