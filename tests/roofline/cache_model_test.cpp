#include "roofline/cache_model.h"

#include <gtest/gtest.h>

namespace bpntt::roofline {
namespace {

cache_config tiny_cache() {
  // 4 sets x 2 ways x 64B lines = 512 B.
  return cache_config{"T", 512, 2, 64, 100.0};
}

TEST(CacheLevel, ColdMissThenHit) {
  cache_level c(tiny_cache());
  EXPECT_FALSE(c.access(0x1000, false));
  EXPECT_TRUE(c.access(0x1000, false));
  EXPECT_TRUE(c.access(0x103F, false));   // same line
  EXPECT_FALSE(c.access(0x1040, false));  // next line
  EXPECT_EQ(c.counters().accesses, 4u);
  EXPECT_EQ(c.counters().misses, 2u);
  EXPECT_EQ(c.counters().hits, 2u);
}

TEST(CacheLevel, LruEvictionOrder) {
  cache_level c(tiny_cache());
  // Three lines mapping to the same set (stride = sets * line = 256B).
  EXPECT_FALSE(c.access(0x0000, false));
  EXPECT_FALSE(c.access(0x0100, false));
  EXPECT_TRUE(c.access(0x0000, false));   // touch A -> B is LRU
  EXPECT_FALSE(c.access(0x0200, false));  // evicts B
  EXPECT_TRUE(c.access(0x0000, false));   // A still resident
  EXPECT_FALSE(c.access(0x0100, false));  // B was evicted
}

TEST(CacheLevel, DirtyEvictionWritesBack) {
  cache_level c(tiny_cache());
  bool dirty = false;
  c.access(0x0000, true, &dirty);   // write-allocate
  c.access(0x0100, false, &dirty);  // fill second way
  c.access(0x0200, false, &dirty);  // evicts dirty 0x0000
  EXPECT_TRUE(dirty);
  EXPECT_EQ(c.counters().writebacks, 1u);
  // Clean eviction reports no writeback.
  c.access(0x0300, false, &dirty);
  EXPECT_FALSE(dirty);
}

TEST(CacheLevel, RejectsBadGeometry) {
  EXPECT_THROW(cache_level(cache_config{"X", 512, 3, 64, 0.0}), std::invalid_argument);
  EXPECT_THROW(cache_level(cache_config{"X", 512, 2, 48, 0.0}), std::invalid_argument);
  EXPECT_THROW(cache_level(cache_config{"X", 0, 2, 64, 0.0}), std::invalid_argument);
}

TEST(Hierarchy, MissesCascadeThroughLevels) {
  auto h = make_default_hierarchy();
  h.access(0x100000, 8, false);
  EXPECT_EQ(h.l1().counters().misses, 1u);
  EXPECT_EQ(h.l2().counters().misses, 1u);
  EXPECT_EQ(h.llc().counters().misses, 1u);
  h.access(0x100000, 8, false);  // L1 hit, nothing propagates
  EXPECT_EQ(h.l1().counters().hits, 1u);
  EXPECT_EQ(h.l2().counters().accesses, 1u);
}

TEST(Hierarchy, WorkingSetLargerThanL1HitsL2) {
  auto h = make_default_hierarchy();
  // 64 KiB working set: 2x the 32 KiB L1, well within the 256 KiB L2.
  for (int pass = 0; pass < 4; ++pass) {
    for (std::uint64_t a = 0; a < 64 * 1024; a += 64) h.access(0x200000 + a, 8, false);
  }
  // After the cold pass, L1 keeps missing but L2 serves nearly everything:
  // its misses stay at the 1024 compulsory fills out of ~4096 accesses.
  EXPECT_GT(h.l1().counters().miss_rate(), 0.5);
  EXPECT_LE(h.l2().counters().miss_rate(), 0.30);
  EXPECT_EQ(h.bytes_llc_dram(), 64 * 1024u);  // one compulsory sweep
}

TEST(Hierarchy, StraddlingAccessTouchesBothLines) {
  auto h = make_default_hierarchy();
  h.access(0x1000 + 60, 8, false);  // crosses a 64B boundary
  EXPECT_EQ(h.l1().counters().accesses, 2u);
  EXPECT_EQ(h.bytes_core_l1(), 8u);
}

TEST(Hierarchy, ByteAccountingUsesLineGranularity) {
  auto h = make_default_hierarchy();
  h.access(0x5000, 2, false);
  EXPECT_EQ(h.bytes_core_l1(), 2u);
  EXPECT_EQ(h.bytes_l1_l2(), 64u);  // one line fill
}

}  // namespace
}  // namespace bpntt::roofline
