#include "roofline/roofline.h"

#include <gtest/gtest.h>

namespace bpntt::roofline {
namespace {

TEST(Roofline, ReportLevelsAndIntensities) {
  auto h = make_default_hierarchy();
  const auto trace = trace_ntt_forward(h, 256, 20);
  const auto rep = make_report(trace, h, 48.0);
  ASSERT_EQ(rep.levels.size(), 4u);
  EXPECT_EQ(rep.levels[0].level, "L1");
  EXPECT_EQ(rep.levels[3].level, "DRAM");
  // Traffic is non-increasing down the hierarchy for a cache-resident
  // kernel (inner levels may tie at the compulsory-fill floor), so
  // intensity is non-decreasing; the L1-vs-DRAM contrast is strict.
  EXPECT_GT(rep.levels[0].bytes, rep.levels[1].bytes);
  EXPECT_GE(rep.levels[1].bytes, rep.levels[3].bytes);
  EXPECT_LT(rep.levels[0].intensity, rep.levels[3].intensity);
}

TEST(Roofline, NttKernelIsL1BoundNotDramBound) {
  // The paper's Fig. 1 observation, reproduced from first principles.
  auto h = make_default_hierarchy();
  const auto trace = trace_ntt_forward(h, 256, 50);
  const auto rep = make_report(trace, h, 48.0);
  EXPECT_EQ(rep.binding_level(), "L1");
  // DRAM roof does NOT bind: attainable at the DRAM level is the full peak.
  EXPECT_FALSE(rep.levels[3].bandwidth_bound);
}

TEST(Roofline, InttKernelSameClassification) {
  auto h = make_default_hierarchy();
  const auto trace = trace_ntt_inverse(h, 256, 50);
  const auto rep = make_report(trace, h, 48.0);
  EXPECT_EQ(rep.binding_level(), "L1");
}

TEST(Roofline, AttainableNeverExceedsPeak) {
  auto h = make_default_hierarchy();
  const auto trace = trace_schoolbook(h, 128);
  const auto rep = make_report(trace, h, 7.5);
  for (const auto& lv : rep.levels) {
    EXPECT_LE(lv.attainable_gops, 7.5 + 1e-12);
    EXPECT_GE(lv.attainable_gops, 0.0);
  }
}

TEST(Roofline, ComputeBoundWhenBandwidthAmple) {
  auto h = make_default_hierarchy();
  const auto trace = trace_ntt_forward(h, 256, 10);
  // With a tiny peak, every level's bandwidth exceeds demand.
  const auto rep = make_report(trace, h, 0.001);
  EXPECT_TRUE(rep.binding_level().empty());
}

}  // namespace
}  // namespace bpntt::roofline
