#include "roofline/trace.h"

#include <gtest/gtest.h>

namespace bpntt::roofline {
namespace {

TEST(Trace, NttOpAndAccessCountsMatchAlgorithmOne) {
  auto h = make_default_hierarchy();
  const std::uint64_t n = 256;
  const auto r = trace_ntt_forward(h, n);
  const std::uint64_t butterflies = (n / 2) * 8;  // (n/2) log2 n
  EXPECT_EQ(r.ops, butterflies * 6);
  // Per butterfly: 2 coefficient loads; per block: 1 zeta load (n-1 blocks).
  EXPECT_EQ(r.loads, butterflies * 2 + (n - 1));
  EXPECT_EQ(r.stores, butterflies * 2);
}

TEST(Trace, InverseAddsScalingPass) {
  auto h = make_default_hierarchy();
  const std::uint64_t n = 64;
  const auto r = trace_ntt_inverse(h, n);
  const std::uint64_t butterflies = (n / 2) * 6;
  EXPECT_EQ(r.ops, butterflies * 6 + n * 2);
  EXPECT_EQ(r.stores, butterflies * 2 + n);
}

TEST(Trace, SchoolbookIsQuadratic) {
  auto h = make_default_hierarchy();
  const auto r = trace_schoolbook(h, 64);
  EXPECT_EQ(r.ops, 64u * 64u * 3u);
}

TEST(Trace, RepeatsScaleCounts) {
  auto h1 = make_default_hierarchy();
  auto h3 = make_default_hierarchy();
  const auto r1 = trace_ntt_forward(h1, 128, 1);
  const auto r3 = trace_ntt_forward(h3, 128, 3);
  EXPECT_EQ(r3.ops, 3 * r1.ops);
  EXPECT_EQ(r3.loads, 3 * r1.loads);
}

TEST(Trace, NttWorkingSetStaysInCache) {
  // A 256-point, 16-bit polynomial (512 B) fits L1: after the cold pass,
  // repeated transforms generate no DRAM traffic.
  auto h = make_default_hierarchy();
  (void)trace_ntt_forward(h, 256, 1);
  const auto dram_after_cold = h.bytes_llc_dram();
  (void)trace_ntt_forward(h, 256, 10);
  EXPECT_EQ(h.bytes_llc_dram(), dram_after_cold);
}

}  // namespace
}  // namespace bpntt::roofline
