// RNS engine tests: the big-modulus differential against the wide_uint
// schoolbook oracle across backends and limb counts, per-limb stream
// fan-out and overlap on a multi-channel topology, transform round-trips,
// and the submit_rns validation surface.
#include "rns/rns_engine.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "common/xoshiro.h"
#include "runtime/context.h"

namespace bpntt::rns {
namespace {

using runtime::backend_kind;
using runtime::runtime_options;

constexpr u64 kOrder = 32;       // 2n = 64 rows fits the small test array
constexpr unsigned kLimbBits = 12;
constexpr unsigned kTileBits = 13;  // 2q < 2^13 for every 12-bit limb

// Small array, 4 channels of one bank each: one channel per limb for up to
// four limbs.
runtime_options small_options(backend_kind kind, u64 q0) {
  return runtime_options()
      .with_ring(kOrder, q0, kTileBits)
      .with_backend(kind)
      .with_array(64, 39)
      .with_topology(4, 1, 4)
      .with_threads(4);
}

std::vector<math::wide_uint> random_big_poly(const rns_basis& basis,
                                             common::xoshiro256ss& rng) {
  std::vector<math::wide_uint> p;
  p.reserve(kOrder);
  for (u64 i = 0; i < kOrder; ++i) {
    math::wide_uint c(basis.wide_bits());
    for (unsigned b = 0; b < basis.modulus_bits(); ++b) c.set_bit(b, rng() & 1ULL);
    p.push_back(c.divmod(basis.modulus()).rem);
  }
  return p;
}

// The acceptance differential: big-modulus negacyclic polymul through the
// engine is bit-identical to the wide_uint schoolbook reference, at 2, 3
// and 4 limbs, on the sram and cpu backends (and the golden oracle).
class RnsEngineDifferential
    : public ::testing::TestWithParam<std::tuple<backend_kind, unsigned>> {};

TEST_P(RnsEngineDifferential, PolymulMatchesWideSchoolbook) {
  const auto [kind, limbs] = GetParam();
  const auto basis = rns_basis::with_limb_bits(kOrder, kLimbBits, limbs);
  runtime::context ctx(small_options(kind, basis.prime(0)));
  rns_engine eng(ctx, basis);

  common::xoshiro256ss rng(100 + limbs);
  const auto a = random_big_poly(basis, rng);
  const auto b = random_big_poly(basis, rng);

  const auto c = eng.polymul(a, b);
  const auto expect = schoolbook_negacyclic_wide(a, b, basis.modulus());
  ASSERT_EQ(c.size(), expect.size());
  for (std::size_t i = 0; i < c.size(); ++i) {
    EXPECT_TRUE(c[i] == expect[i]) << "backend " << to_string(kind) << ", " << limbs
                                   << " limbs, coefficient " << i;
  }
  EXPECT_EQ(eng.last_fanout().limb_jobs, limbs);
}

INSTANTIATE_TEST_SUITE_P(
    BackendsAndLimbCounts, RnsEngineDifferential,
    ::testing::Combine(::testing::Values(backend_kind::sram, backend_kind::cpu,
                                         backend_kind::reference),
                       ::testing::Values(2u, 3u, 4u)),
    [](const auto& info) {
      return std::string(to_string(std::get<0>(info.param))) + "_limbs" +
             std::to_string(std::get<1>(info.param));
    });

TEST(RnsEngine, MultiChannelTopologyOverlapsLimbGroups) {
  // Four limbs on a 4-channel device: each limb stream owns one channel,
  // the four limb dispatch groups run concurrently, and the combined
  // makespan lands strictly below the serial per-limb sum (the acceptance
  // criterion for the fan-out actually exercising the scheduler).
  const auto basis = rns_basis::with_limb_bits(kOrder, kLimbBits, 4);
  runtime::context ctx(small_options(backend_kind::sram, basis.prime(0)));
  rns_engine eng(ctx, basis);

  // Each limb stream must sit on its own bank (= its own channel here).
  std::vector<unsigned> seen;
  for (const u64 q : basis.primes()) {
    const auto set = ctx.rns_stream(q).bank_set();
    ASSERT_EQ(set.size(), 1u);
    for (const unsigned b : seen) EXPECT_NE(b, set[0]);
    seen.push_back(set[0]);
  }

  common::xoshiro256ss rng(7);
  const auto a = random_big_poly(basis, rng);
  const auto b = random_big_poly(basis, rng);
  const auto before = ctx.stats().wall_cycles;
  (void)eng.polymul(a, b);
  const auto makespan = ctx.stats().wall_cycles - before;
  const auto serial = eng.last_fanout().serial_cycles;
  EXPECT_GT(serial, 0u);
  EXPECT_LT(makespan, serial) << "limb groups did not overlap";
  // Four equal-cost limbs on four channels: the makespan should be near
  // one limb's cost, certainly below half the serial sum.
  EXPECT_LT(makespan, serial / 2);
}

TEST(RnsEngine, FlatDeviceFallsBackToSerialLimbGroupsBitIdentically) {
  // One bank: limb streams share it, groups serialize — same outputs.
  const auto basis = rns_basis::with_limb_bits(kOrder, kLimbBits, 3);
  common::xoshiro256ss rng(15);
  const auto a = random_big_poly(basis, rng);
  const auto b = random_big_poly(basis, rng);

  runtime::context flat(runtime_options()
                            .with_ring(kOrder, basis.prime(0), kTileBits)
                            .with_backend(backend_kind::sram)
                            .with_array(64, 39)
                            .with_banks(1)
                            .with_threads(2));
  rns_engine flat_eng(flat, basis);
  const auto flat_out = flat_eng.polymul(a, b);
  const auto flat_makespan = flat.stats().wall_cycles;
  EXPECT_EQ(flat_makespan, flat_eng.last_fanout().serial_cycles);  // no overlap to claim

  runtime::context wide_ctx(small_options(backend_kind::sram, basis.prime(0)));
  rns_engine wide_eng(wide_ctx, basis);
  const auto wide_out = wide_eng.polymul(a, b);
  ASSERT_EQ(flat_out.size(), wide_out.size());
  for (std::size_t i = 0; i < flat_out.size(); ++i) {
    EXPECT_TRUE(flat_out[i] == wide_out[i]) << "schedule changed the math at " << i;
  }
}

TEST(RnsEngine, ResidueDomainTransformsRoundTrip) {
  const auto basis = rns_basis::with_limb_bits(kOrder, kLimbBits, 3);
  runtime::context ctx(small_options(backend_kind::sram, basis.prime(0)));
  rns_engine eng(ctx, basis);

  common::xoshiro256ss rng(31);
  const auto a = random_big_poly(basis, rng);
  const rns_poly p = eng.lower(a);
  const rns_poly back = eng.inverse(eng.forward(p));
  ASSERT_EQ(back.limbs(), p.limbs());
  for (std::size_t i = 0; i < p.limbs(); ++i) {
    EXPECT_EQ(back.residues[i], p.residues[i]) << "limb " << i;
  }
  // And the lift of the round trip is the original polynomial.
  const auto lifted = eng.lift(back);
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_TRUE(lifted[i] == a[i]);
}

TEST(RnsEngine, BasisOrderMustMatchContextRing) {
  const auto basis = rns_basis::with_limb_bits(16, kLimbBits, 2);  // n = 16 basis
  runtime::context ctx(small_options(backend_kind::cpu, 3137));   // ring n = 32
  EXPECT_THROW(rns_engine(ctx, basis), std::invalid_argument);
}

// ---- submit_rns / rns_stream surface ---------------------------------------

TEST(RnsSubmission, LimbStreamsAreDedicatedAndReused) {
  const auto basis = rns_basis::with_limb_bits(kOrder, kLimbBits, 2);
  runtime::context ctx(small_options(backend_kind::sram, basis.prime(0)));
  auto s0 = ctx.rns_stream(basis.prime(0));
  auto s1 = ctx.rns_stream(basis.prime(1));
  EXPECT_NE(s0.id(), s1.id());
  EXPECT_EQ(ctx.rns_stream(basis.prime(0)).id(), s0.id());  // cached, not re-opened
  // Closing a limb stream releases it; the next request opens a fresh one.
  s0.close();
  const auto reopened = ctx.rns_stream(basis.prime(0));
  EXPECT_NE(reopened.id(), s0.id());
  EXPECT_EQ(ctx.rns_stream(basis.prime(0)).id(), reopened.id());
}

TEST(RnsSubmission, ValidatesChainAndResidueShapes) {
  const auto basis = rns_basis::with_limb_bits(kOrder, kLimbBits, 2);
  runtime::context ctx(small_options(backend_kind::sram, basis.prime(0)));
  const std::vector<u64> zeros(kOrder, 0);

  runtime::rns_polymul_job empty;
  EXPECT_THROW((void)ctx.submit_rns(std::move(empty)), std::invalid_argument);

  runtime::rns_polymul_job mismatched;
  mismatched.primes = basis.primes();
  mismatched.a = {zeros};  // one residue poly for two primes
  mismatched.b = {zeros, zeros};
  EXPECT_THROW((void)ctx.submit_rns(std::move(mismatched)), std::invalid_argument);

  runtime::rns_polymul_job duplicated;
  duplicated.primes = {basis.prime(0), basis.prime(0)};
  duplicated.a = {zeros, zeros};
  duplicated.b = {zeros, zeros};
  EXPECT_THROW((void)ctx.submit_rns(std::move(duplicated)), std::invalid_argument);

  runtime::rns_polymul_job non_canonical;
  non_canonical.primes = basis.primes();
  non_canonical.a = {std::vector<u64>(kOrder, basis.prime(0)), zeros};  // == q_0
  non_canonical.b = {zeros, zeros};
  EXPECT_THROW((void)ctx.submit_rns(std::move(non_canonical)), std::invalid_argument);
  EXPECT_EQ(ctx.pending(), 0u) << "a rejected rns job must not half-enqueue";
}

TEST(RnsSubmission, RingOverrideValidationIsPrecise) {
  runtime::context ctx(small_options(backend_kind::sram, 3137));
  // Not a prime.
  try {
    (void)ctx.stream({.ring_q = 3135});
    FAIL() << "composite override accepted";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("odd prime"), std::string::npos);
  }
  // Prime, but no negacyclic transform of size 32 (needs q == 1 mod 64).
  try {
    (void)ctx.stream({.ring_q = 3037});
    FAIL() << "NTT-unfriendly override accepted";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("q == 1 mod 2n"), std::string::npos);
  }
  // Outside the tile envelope (13-bit tiles hold 12-bit moduli).
  try {
    (void)ctx.stream({.ring_q = 12289});
    FAIL() << "oversized override accepted";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("envelope"), std::string::npos);
  }
}

TEST(RnsSubmission, SamePrimeOverrideOnIncompleteRingStillRetargets) {
  // Regression: a ring override naming the primary modulus must still run
  // the full negacyclic transform when the primary ring is configured
  // incomplete — taking the primary-bank shortcut here made sram diverge
  // from the cpu/reference retarget paths.
  common::xoshiro256ss rng(41);
  std::vector<u64> poly(kOrder);
  for (auto& c : poly) c = rng.below(3137);

  const auto run = [&](backend_kind kind) {
    auto opts = small_options(kind, 3137);
    opts.params.incomplete = true;  // 3137 == 1 (mod 32 and mod 64): both modes valid
    runtime::context ctx(opts);
    auto limb = ctx.stream({.ring_q = 3137});
    const auto id = limb.submit(runtime::ntt_job{.coeffs = poly});
    return ctx.wait(id).outputs.front();
  };
  const auto sram_out = run(backend_kind::sram);
  const auto ref_out = run(backend_kind::reference);
  EXPECT_EQ(sram_out, ref_out)
      << "same-prime override must retarget to the full negacyclic transform";
}

TEST(RnsSubmission, RlweJobsRejectedOnLimbStreams) {
  runtime::context ctx(small_options(backend_kind::sram, 3137));
  auto limb = ctx.rns_stream(2113);
  runtime::rlwe_encrypt_job j;
  j.message.assign(kOrder, 0);
  EXPECT_THROW((void)limb.submit(std::move(j)), std::invalid_argument);
}

TEST(RnsSubmission, LimbCoefficientsValidateAgainstTheLimbModulus) {
  runtime::context ctx(small_options(backend_kind::sram, 3137));
  auto limb = ctx.rns_stream(2113);
  // 3000 is canonical for the context ring (q=3137) but not for the limb.
  std::vector<u64> too_big(kOrder, 3000);
  EXPECT_THROW((void)limb.submit(runtime::ntt_job{.coeffs = too_big}),
               std::invalid_argument);
  // And a genuine limb-canonical polynomial is accepted and transforms.
  std::vector<u64> fine(kOrder, 2112);
  const auto id = limb.submit(runtime::ntt_job{.coeffs = fine});
  const auto r = ctx.wait(id);
  EXPECT_EQ(r.outputs.front().size(), kOrder);
}

}  // namespace
}  // namespace bpntt::rns
