// RNS base extension tests: the exact-lift differential against the
// wide_uint CRT oracle across backends and limb counts, the
// congruence-preserving (BGV-style) rescale against a brute-force
// minimal-lift oracle, the submit_base_extend validation surface, and the
// switch_to divergence diagnostics.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "common/xoshiro.h"
#include "nttmath/primes.h"
#include "rns/rns_engine.h"
#include "runtime/context.h"

namespace bpntt::rns {
namespace {

using runtime::backend_kind;
using runtime::runtime_options;

constexpr u64 kOrder = 32;
constexpr unsigned kLimbBits = 12;
constexpr unsigned kTileBits = 13;

runtime_options small_options(backend_kind kind, u64 q0) {
  return runtime_options()
      .with_ring(kOrder, q0, kTileBits)
      .with_backend(kind)
      .with_array(64, 39)
      .with_topology(4, 1, 4)
      .with_threads(4);
}

std::vector<math::wide_uint> random_big_poly(const rns_basis& basis,
                                             common::xoshiro256ss& rng) {
  std::vector<math::wide_uint> p;
  p.reserve(kOrder);
  for (u64 i = 0; i < kOrder; ++i) {
    math::wide_uint c(basis.wide_bits());
    for (unsigned b = 0; b < basis.modulus_bits(); ++b) c.set_bit(b, rng() & 1ULL);
    p.push_back(c.divmod(basis.modulus()).rem);
  }
  return p;
}

// ---- base extension vs the exact lift --------------------------------------

class RnsBaseExtendDifferential
    : public ::testing::TestWithParam<std::tuple<backend_kind, unsigned>> {};

TEST_P(RnsBaseExtendDifferential, ExtensionMatchesExactLiftOracle) {
  const auto [kind, limbs] = GetParam();
  // Two extra primes past the chain play the extension limbs.
  const auto all = math::first_k_ntt_primes(kLimbBits, kOrder, limbs + 2, /*negacyclic=*/true);
  const rns_basis source(kOrder, {all.begin(), all.begin() + limbs});
  const rns_basis target(kOrder, all);
  runtime::context ctx(small_options(kind, source.prime(0)));
  rns_engine eng(ctx, source);

  common::xoshiro256ss rng(1200 + limbs);
  const auto x = random_big_poly(source, rng);
  const rns_poly p = eng.lower(x);
  const rns_poly got = eng.base_extend(p, target);

  ASSERT_EQ(got.limbs(), limbs + 2u);
  // The source limbs travel unchanged; every new limb is the residue of the
  // EXACT lift (x is canonical < M, so x mod p_new, nothing approximate).
  for (std::size_t i = 0; i < source.limbs(); ++i) {
    EXPECT_EQ(got.residues[i], p.residues[i])
        << "backend " << to_string(kind) << ", source limb " << i << " changed";
  }
  for (std::size_t i = source.limbs(); i < target.limbs(); ++i) {
    const u64 q = target.prime(i);
    for (u64 c = 0; c < kOrder; ++c) {
      ASSERT_EQ(got.residues[i][c], x[c].mod_u64(q))
          << "backend " << to_string(kind) << ", " << limbs << " limbs, new limb " << i
          << ", coefficient " << c;
    }
  }
}

TEST_P(RnsBaseExtendDifferential, ExtendedRecombinationIsTheSameValue) {
  const auto [kind, limbs] = GetParam();
  const auto all = math::first_k_ntt_primes(kLimbBits, kOrder, limbs + 1, /*negacyclic=*/true);
  const rns_basis source(kOrder, {all.begin(), all.begin() + limbs});
  const rns_basis target(kOrder, all);
  runtime::context ctx(small_options(kind, source.prime(0)));
  rns_engine eng(ctx, source);

  common::xoshiro256ss rng(1300 + limbs);
  const auto x = random_big_poly(source, rng);
  const rns_poly got = eng.base_extend(eng.lower(x), target);
  // Lifting over the larger basis gives back x itself (x < M_source), the
  // round trip that makes the extension "exact".
  const auto lifted = rns_recombine(got, target);
  for (u64 c = 0; c < kOrder; ++c) {
    EXPECT_TRUE(lifted[c] == x[c].resized(target.wide_bits())) << "coefficient " << c;
  }
}

INSTANTIATE_TEST_SUITE_P(
    BackendsAndLimbCounts, RnsBaseExtendDifferential,
    ::testing::Combine(::testing::Values(backend_kind::sram, backend_kind::cpu,
                                         backend_kind::reference),
                       ::testing::Values(2u, 3u, 4u)),
    [](const auto& info) {
      return std::string(to_string(std::get<0>(info.param))) + "_limbs" +
             std::to_string(std::get<1>(info.param));
    });

// ---- congruence-preserving rescale -----------------------------------------

// Brute-force oracle: the unique minimal-|δ| correction with
// δ ≡ x (mod q_drop) and δ ≡ 0 (mod t), found by scanning outward from
// zero (non-negative candidate preferred on a tie), then the exact
// division (x - δ) / q_drop reduced into the smaller basis.  Deliberately
// closed-form-free so it cannot share a bug with the backend.
rns_poly oracle_congruence_rescale(const std::vector<math::wide_uint>& x,
                                   const rns_basis& from, u64 t) {
  const rns_basis to = from.drop_last();
  const u64 qd = from.prime(from.limbs() - 1);
  const unsigned wb = from.wide_bits() + 64;
  const math::wide_uint m_to = to.modulus().resized(wb);
  std::vector<math::wide_uint> scaled;
  scaled.reserve(x.size());
  for (const auto& c : x) {
    const long long r = static_cast<long long>(c.mod_u64(qd));
    long long delta = 0;
    bool found = false;
    for (long long a = 0; !found && a <= static_cast<long long>(t * qd); ++a) {
      for (const long long s : {a, -a}) {
        const long long rem = ((s % static_cast<long long>(qd)) + static_cast<long long>(qd)) %
                              static_cast<long long>(qd);
        if (rem == r && ((s % static_cast<long long>(t)) + static_cast<long long>(t)) %
                                static_cast<long long>(t) ==
                            0) {
          delta = s;
          found = true;
          break;
        }
      }
    }
    EXPECT_TRUE(found);
    // (x - δ) / q_drop without signed wide arithmetic: add the t*q_drop
    // offset (≥ |δ|), divide, subtract t back out mod M_to.
    const u64 offset = static_cast<u64>(static_cast<long long>(t * qd) - delta);
    const math::wide_uint num = c.resized(wb).add(math::wide_uint(wb, offset));
    const math::wide_divmod dm = num.divmod(math::wide_uint(64, qd));
    EXPECT_TRUE(dm.rem.is_zero()) << "the correction must make the division exact";
    const math::wide_uint v =
        dm.quot.add(m_to).sub(math::wide_uint(wb, t)).divmod(m_to).rem;
    scaled.push_back(v.resized(to.wide_bits()));
  }
  return rns_decompose(scaled, to);
}

class RnsCongruenceRescale
    : public ::testing::TestWithParam<std::tuple<backend_kind, u64>> {};

TEST_P(RnsCongruenceRescale, RescaleMatchesMinimalLiftOracle) {
  const auto [kind, t] = GetParam();
  const auto basis = rns_basis::with_limb_bits(kOrder, kLimbBits, 3);
  runtime::context ctx(small_options(kind, basis.prime(0)));
  rns_engine eng(ctx, basis);

  common::xoshiro256ss rng(1400 + t);
  const auto x = random_big_poly(basis, rng);
  const rns_poly got = eng.rescale(eng.lower(x), t);
  const rns_poly expect = oracle_congruence_rescale(x, basis, t);

  ASSERT_EQ(got.limbs(), basis.limbs() - 1);
  for (std::size_t i = 0; i < got.limbs(); ++i) {
    EXPECT_EQ(got.residues[i], expect.residues[i])
        << "backend " << to_string(kind) << ", t = " << t << ", limb " << i;
  }
  // The whole point: the result is the input scaled by q_drop^-1 mod t.
  const auto lifted = rns_recombine(got, basis.drop_last());
  const u64 qd = basis.prime(basis.limbs() - 1);
  const u64 inv_qd = math::inv_mod(qd % t, t);
  for (u64 c = 0; c < kOrder; ++c) {
    // Compare centered values mod t: w stands for w - M when 2w > M.
    const auto centered_mod_t = [t](const math::wide_uint& w, const math::wide_uint& m) {
      if (m < w.shl1()) return (t - m.sub(w).mod_u64(t)) % t;
      return w.mod_u64(t);
    };
    const u64 in_t = centered_mod_t(x[c], basis.modulus());
    const u64 out_t = centered_mod_t(lifted[c], basis.drop_last().modulus());
    EXPECT_EQ(out_t, math::mul_mod(in_t, inv_qd, t)) << "coefficient " << c;
  }
}

INSTANTIATE_TEST_SUITE_P(BackendsAndPlainModuli, RnsCongruenceRescale,
                         ::testing::Combine(::testing::Values(backend_kind::sram,
                                                              backend_kind::cpu,
                                                              backend_kind::reference),
                                            ::testing::Values(u64{2}, u64{3}, u64{7})),
                         [](const auto& info) {
                           return std::string(to_string(std::get<0>(info.param))) + "_t" +
                                  std::to_string(std::get<1>(info.param));
                         });

TEST(RescaleSubmission, CongruenceMustBeCoprimeToTheDroppedLimb) {
  const auto basis = rns_basis::with_limb_bits(kOrder, kLimbBits, 2);
  runtime::context ctx(small_options(backend_kind::reference, basis.prime(0)));
  auto limb = ctx.rns_stream(basis.prime(0));
  const std::vector<u64> zeros(kOrder, 0);

  runtime::rns_rescale_job shares_drop{.prime = basis.prime(0), .drop_prime = basis.prime(1),
                                       .x = zeros, .dropped = zeros,
                                       .congruence = basis.prime(1)};
  EXPECT_THROW((void)limb.submit(std::move(shares_drop)), std::invalid_argument);
  runtime::rns_rescale_job multiple{.prime = basis.prime(0), .drop_prime = basis.prime(1),
                                    .x = zeros, .dropped = zeros,
                                    .congruence = 2 * basis.prime(1)};
  EXPECT_THROW((void)limb.submit(std::move(multiple)), std::invalid_argument);

  runtime::rns_rescale_job ok{.prime = basis.prime(0), .drop_prime = basis.prime(1),
                              .x = zeros, .dropped = zeros, .congruence = 2};
  const auto id = limb.submit(std::move(ok));
  EXPECT_EQ(ctx.wait(id).outputs.front(), zeros);
}

// ---- submit_base_extend validation -----------------------------------------

TEST(BaseExtendSubmission, ValidatesPrimesAndResidues) {
  const auto all = math::first_k_ntt_primes(kLimbBits, kOrder, 3, /*negacyclic=*/true);
  const u64 q0 = all[0];
  const u64 q1 = all[1];
  const u64 q2 = all[2];
  runtime::context ctx(small_options(backend_kind::sram, q0));
  auto target = ctx.rns_stream(q2);
  const std::vector<u64> zeros(kOrder, 0);

  // The job must name its stream's ring modulus.
  runtime::rns_base_extend_job wrong_stream{.prime = q1, .source_primes = {q0},
                                            .residues = {zeros}};
  EXPECT_THROW((void)target.submit(std::move(wrong_stream)), std::invalid_argument);

  // A source chain is required, sized to its residues.
  runtime::rns_base_extend_job no_sources{.prime = q2};
  EXPECT_THROW((void)target.submit(std::move(no_sources)), std::invalid_argument);
  runtime::rns_base_extend_job short_residues{.prime = q2, .source_primes = {q0, q1},
                                              .residues = {zeros}};
  EXPECT_THROW((void)target.submit(std::move(short_residues)), std::invalid_argument);

  // Source limbs are odd primes, distinct, and distinct from the target.
  runtime::rns_base_extend_job composite{.prime = q2, .source_primes = {q0 - 1},
                                         .residues = {zeros}};
  EXPECT_THROW((void)target.submit(std::move(composite)), std::invalid_argument);
  runtime::rns_base_extend_job duplicate{.prime = q2, .source_primes = {q0, q0},
                                         .residues = {zeros, zeros}};
  EXPECT_THROW((void)target.submit(std::move(duplicate)), std::invalid_argument);
  runtime::rns_base_extend_job self_source{.prime = q2, .source_primes = {q2},
                                           .residues = {zeros}};
  EXPECT_THROW((void)target.submit(std::move(self_source)), std::invalid_argument);

  // Residues validate against their own source modulus.
  runtime::rns_base_extend_job bad_residue{.prime = q2, .source_primes = {q0},
                                           .residues = {std::vector<u64>(kOrder, q0)}};
  EXPECT_THROW((void)target.submit(std::move(bad_residue)), std::invalid_argument);

  // And a valid job executes: zero lifts to zero.
  runtime::rns_base_extend_job ok{.prime = q2, .source_primes = {q0, q1},
                                  .residues = {zeros, zeros}};
  const auto id = target.submit(std::move(ok));
  EXPECT_EQ(ctx.wait(id).outputs.front(), zeros);
}

TEST(RnsEngineBaseExtend, RejectsNonPrefixAndNonGrowingTargets) {
  const auto all = math::first_k_ntt_primes(kLimbBits, kOrder, 4, /*negacyclic=*/true);
  const rns_basis source(kOrder, {all[0], all[1]});
  runtime::context ctx(small_options(backend_kind::reference, all[0]));
  rns_engine eng(ctx, source);
  common::xoshiro256ss rng(9);
  const rns_poly p = eng.lower(random_big_poly(source, rng));

  // Divergent chain: the error names the first limb that differs.
  try {
    (void)eng.base_extend(p, rns_basis(kOrder, {all[0], all[2], all[3]}));
    FAIL() << "a divergent target must be rejected";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("limb 1"), std::string::npos) << msg;
    EXPECT_NE(msg.find(std::to_string(all[2])), std::string::npos) << msg;
    EXPECT_NE(msg.find(std::to_string(all[1])), std::string::npos) << msg;
  }
  // Same or smaller chain: extension only grows.
  EXPECT_THROW((void)eng.base_extend(p, source), std::invalid_argument);
  EXPECT_THROW((void)eng.base_extend(p, rns_basis(kOrder, {all[0]})), std::invalid_argument);
  // Wrong ring order.
  EXPECT_THROW((void)eng.base_extend(p, rns_basis(16, {all[0], all[1], all[2]})),
               std::invalid_argument);
}

// ---- switch_to divergence diagnostics --------------------------------------

TEST(RnsBasisSwitchTo, DivergenceNamesTheFirstMismatchingPrime) {
  const auto all = math::first_k_ntt_primes(kLimbBits, kOrder, 4, /*negacyclic=*/true);
  const rns_basis chain(kOrder, {all[0], all[1], all[2]});
  // The target is SHORTER, so the old length-first check would have waved
  // it into a generic error; the mismatch at limb 1 must win.
  try {
    (void)chain.switch_to(rns_basis(kOrder, {all[0], all[3]}));
    FAIL() << "a divergent target must be rejected";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("limb 1"), std::string::npos) << msg;
    EXPECT_NE(msg.find(std::to_string(all[3])), std::string::npos) << msg;
    EXPECT_NE(msg.find(std::to_string(all[1])), std::string::npos) << msg;
  }
}

}  // namespace
}  // namespace bpntt::rns
