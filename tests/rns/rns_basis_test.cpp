// RNS basis and residue-polynomial unit tests: chain validation, CRT
// constant identities, decompose/recombine round-trips, and the lazy
// reduction's canonical output.
#include "rns/rns_basis.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "common/xoshiro.h"
#include "nttmath/primes.h"
#include "rns/rns_poly.h"

namespace bpntt::rns {
namespace {

math::wide_uint random_below(const math::wide_uint& m, common::xoshiro256ss& rng) {
  math::wide_uint c(m.bits());
  for (unsigned b = 0; b < m.bits(); ++b) c.set_bit(b, rng() & 1ULL);
  return c.divmod(m).rem;
}

TEST(RnsBasis, WithLimbBitsBuildsAscendingCoprimeChain) {
  const auto basis = rns_basis::with_limb_bits(64, 14, 4);
  ASSERT_EQ(basis.limbs(), 4u);
  for (std::size_t i = 0; i < basis.limbs(); ++i) {
    EXPECT_TRUE(math::is_prime(basis.prime(i)));
    EXPECT_EQ((basis.prime(i) - 1) % 128, 0u) << "limb " << i;
    if (i > 0) EXPECT_GT(basis.prime(i), basis.prime(i - 1));
  }
  // Modulus magnitude: the product of four 14-bit primes is 53..56 bits.
  EXPECT_GE(basis.modulus_bits(), 53u);
  EXPECT_LE(basis.modulus_bits(), 56u);
  EXPECT_GT(basis.wide_bits(), basis.modulus_bits());
}

TEST(RnsBasis, CrtConstantsSatisfyTheReconstructionIdentity) {
  const auto basis = rns_basis::with_limb_bits(32, 12, 3);
  // sum_i y_i * M_i == 1 (mod M): recombining the all-ones residue vector
  // must produce 1.
  rns_poly ones;
  ones.residues.assign(basis.limbs(), {1});
  const auto lifted = rns_recombine(ones, basis);
  ASSERT_EQ(lifted.size(), 1u);
  EXPECT_EQ(lifted[0].low64(), 1u);
  EXPECT_EQ(lifted[0].to_hex(), "1");
  // And each M_i must be divisible by every other prime but not its own.
  for (std::size_t i = 0; i < basis.limbs(); ++i) {
    for (std::size_t j = 0; j < basis.limbs(); ++j) {
      const u64 rem = basis.crt_term(i).mod_u64(basis.prime(j));
      if (i == j) {
        EXPECT_NE(rem, 0u);
      } else {
        EXPECT_EQ(rem, 0u);
      }
    }
  }
}

TEST(RnsBasis, DecomposeRecombineRoundTripsRandomValues) {
  const auto basis = rns_basis::with_limb_bits(64, 13, 4);
  common::xoshiro256ss rng(11);
  std::vector<math::wide_uint> coeffs;
  coeffs.reserve(64);
  for (unsigned i = 0; i < 64; ++i) coeffs.push_back(random_below(basis.modulus(), rng));
  // Edge values ride along: 0, 1, M-1.
  coeffs[0] = math::wide_uint(basis.wide_bits());
  coeffs[1] = math::wide_uint(basis.wide_bits(), 1);
  coeffs[2] = basis.modulus().sub(math::wide_uint(basis.wide_bits(), 1));

  const rns_poly p = rns_decompose(coeffs, basis);
  ASSERT_EQ(p.limbs(), basis.limbs());
  const auto back = rns_recombine(p, basis);
  ASSERT_EQ(back.size(), coeffs.size());
  for (std::size_t i = 0; i < coeffs.size(); ++i) {
    EXPECT_TRUE(back[i] == coeffs[i]) << "coefficient " << i;
    EXPECT_TRUE(back[i] < basis.modulus()) << "not canonical at " << i;
  }
}

TEST(RnsBasis, ExplicitChainValidationNamesTheOffendingLimb) {
  // Non-prime limb.
  try {
    rns_basis(64, {12289, 12288});
    FAIL() << "composite limb accepted";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("limb 1"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("12288"), std::string::npos);
  }
  // Duplicate limb (coprimality violation).
  try {
    rns_basis(64, {12289, 13313, 12289});
    FAIL() << "duplicate limb accepted";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("duplicate prime 12289"), std::string::npos);
  }
  // NTT-unfriendly limb: 7 is prime but 6 % 128 != 0.
  try {
    rns_basis(64, {12289, 7});
    FAIL() << "NTT-unfriendly limb accepted";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("q == 1 mod 2n"), std::string::npos);
  }
  EXPECT_THROW(rns_basis(64, {}), std::invalid_argument);
  EXPECT_THROW(rns_basis(63, {12289}), std::invalid_argument);  // n not a power of two
}

TEST(RnsPoly, RecombineRejectsShapeMismatches) {
  const auto basis = rns_basis::with_limb_bits(32, 12, 2);
  rns_poly p;
  p.residues = {{1, 2}, {3}};  // ragged
  EXPECT_THROW((void)rns_recombine(p, basis), std::invalid_argument);
  p.residues = {{1, 2}};  // wrong limb count
  EXPECT_THROW((void)rns_recombine(p, basis), std::invalid_argument);
}

TEST(RnsPoly, DecomposeRejectsNonCanonicalCoefficients) {
  const auto basis = rns_basis::with_limb_bits(32, 12, 2);
  std::vector<math::wide_uint> bad{basis.modulus()};  // == M
  EXPECT_THROW((void)rns_decompose(bad, basis), std::invalid_argument);
  std::vector<math::wide_uint> wrong_width{math::wide_uint(8, 1)};
  EXPECT_THROW((void)rns_decompose(wrong_width, basis), std::invalid_argument);
}

TEST(RnsPoly, SchoolbookOracleMatchesPerLimbSchoolbook) {
  // The wide oracle agrees with doing schoolbook per limb and lifting:
  // two independent routes to the same ring product.
  const auto basis = rns_basis::with_limb_bits(8, 12, 3);
  common::xoshiro256ss rng(23);
  std::vector<math::wide_uint> a, b;
  for (unsigned i = 0; i < 8; ++i) {
    a.push_back(random_below(basis.modulus(), rng));
    b.push_back(random_below(basis.modulus(), rng));
  }
  const auto wide = schoolbook_negacyclic_wide(a, b, basis.modulus());

  const rns_poly pa = rns_decompose(a, basis);
  const rns_poly pb = rns_decompose(b, basis);
  rns_poly per_limb;
  per_limb.residues.resize(basis.limbs());
  for (std::size_t i = 0; i < basis.limbs(); ++i) {
    const u64 q = basis.prime(i);
    std::vector<u64> c(8, 0);
    for (unsigned x = 0; x < 8; ++x) {
      for (unsigned y = 0; y < 8; ++y) {
        const u64 prod = math::mul_mod(pa.residues[i][x], pb.residues[i][y], q);
        const unsigned k = (x + y) % 8;
        c[k] = x + y < 8 ? math::add_mod(c[k], prod, q) : math::sub_mod(c[k], prod, q);
      }
    }
    per_limb.residues[i] = std::move(c);
  }
  const auto lifted = rns_recombine(per_limb, basis);
  for (unsigned i = 0; i < 8; ++i) EXPECT_TRUE(lifted[i] == wide[i]) << "coefficient " << i;
}

}  // namespace
}  // namespace bpntt::rns
