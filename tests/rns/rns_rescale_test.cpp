// RNS modulus switching (rescale) tests: the divide-and-round differential
// against the wide_uint oracle across backends and limb counts, the
// derived-basis surface (drop_last / switch_to), the fused
// modswitch_polymul, the NTT-domain operand cache (hits, invalidation,
// disabled mode), and the submit_rescale validation surface.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "common/xoshiro.h"
#include "rns/rns_engine.h"
#include "runtime/context.h"

namespace bpntt::rns {
namespace {

using runtime::backend_kind;
using runtime::runtime_options;

constexpr u64 kOrder = 32;          // 2n = 64 rows fits the small test array
constexpr unsigned kLimbBits = 12;
constexpr unsigned kTileBits = 13;  // 2q < 2^13 for every 12-bit limb

runtime_options small_options(backend_kind kind, u64 q0) {
  return runtime_options()
      .with_ring(kOrder, q0, kTileBits)
      .with_backend(kind)
      .with_array(64, 39)
      .with_topology(4, 1, 4)
      .with_threads(4);
}

std::vector<math::wide_uint> random_big_poly(const rns_basis& basis,
                                             common::xoshiro256ss& rng) {
  std::vector<math::wide_uint> p;
  p.reserve(kOrder);
  for (u64 i = 0; i < kOrder; ++i) {
    math::wide_uint c(basis.wide_bits());
    for (unsigned b = 0; b < basis.modulus_bits(); ++b) c.set_bit(b, rng() & 1ULL);
    p.push_back(c.divmod(basis.modulus()).rem);
  }
  return p;
}

// The oracle rescale of canonical big coefficients: divround by the
// dropped prime, reduce mod the smaller modulus, decompose.
rns_poly oracle_rescale(const std::vector<math::wide_uint>& x, const rns_basis& from) {
  const rns_basis to = from.drop_last();
  const math::wide_uint q_drop(64, from.prime(from.limbs() - 1));
  std::vector<math::wide_uint> scaled;
  scaled.reserve(x.size());
  for (const auto& c : x) {
    scaled.push_back(c.divround(q_drop).divmod(to.modulus()).rem.resized(to.wide_bits()));
  }
  return rns_decompose(scaled, to);
}

// ---- the acceptance differential -------------------------------------------

class RnsRescaleDifferential
    : public ::testing::TestWithParam<std::tuple<backend_kind, unsigned>> {};

TEST_P(RnsRescaleDifferential, RescaleMatchesWideDivroundOracle) {
  const auto [kind, limbs] = GetParam();
  const auto basis = rns_basis::with_limb_bits(kOrder, kLimbBits, limbs);
  runtime::context ctx(small_options(kind, basis.prime(0)));
  rns_engine eng(ctx, basis);

  common::xoshiro256ss rng(500 + limbs);
  const auto x = random_big_poly(basis, rng);
  const rns_poly got = eng.rescale(eng.lower(x));
  const rns_poly expect = oracle_rescale(x, basis);

  ASSERT_EQ(got.limbs(), limbs - 1u);
  for (std::size_t i = 0; i < got.limbs(); ++i) {
    EXPECT_EQ(got.residues[i], expect.residues[i])
        << "backend " << to_string(kind) << ", " << limbs << " limbs, limb " << i;
  }
}

TEST_P(RnsRescaleDifferential, ModswitchPolymulMatchesSchoolbookPlusDivround) {
  const auto [kind, limbs] = GetParam();
  const auto basis = rns_basis::with_limb_bits(kOrder, kLimbBits, limbs);
  runtime::context ctx(small_options(kind, basis.prime(0)));
  rns_engine eng(ctx, basis);

  common::xoshiro256ss rng(700 + limbs);
  const auto a = random_big_poly(basis, rng);
  const auto b = random_big_poly(basis, rng);

  const auto got = eng.modswitch_polymul(a, b);
  const auto product = schoolbook_negacyclic_wide(a, b, basis.modulus());
  const rns_poly expect = oracle_rescale(product, basis);
  const auto lifted = rns_recombine(expect, eng.dropped_basis());
  ASSERT_EQ(got.size(), lifted.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_TRUE(got[i] == lifted[i]) << "backend " << to_string(kind) << ", " << limbs
                                     << " limbs, coefficient " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    BackendsAndLimbCounts, RnsRescaleDifferential,
    ::testing::Combine(::testing::Values(backend_kind::sram, backend_kind::cpu,
                                         backend_kind::reference),
                       ::testing::Values(2u, 3u, 4u)),
    [](const auto& info) {
      return std::string(to_string(std::get<0>(info.param))) + "_limbs" +
             std::to_string(std::get<1>(info.param));
    });

// Chained rescales walk a 4-limb basis down to one limb exactly.
TEST(RnsRescale, ChainedRescalesConsumeEveryLevel) {
  auto basis = rns_basis::with_limb_bits(kOrder, kLimbBits, 4);
  runtime::context ctx(small_options(backend_kind::sram, basis.prime(0)));
  common::xoshiro256ss rng(77);
  auto x = random_big_poly(basis, rng);

  while (basis.limbs() > 1) {
    rns_engine eng(ctx, basis);
    const rns_poly got = eng.rescale(eng.lower(x));
    const rns_poly expect = oracle_rescale(x, basis);
    const rns_basis next = basis.drop_last();
    for (std::size_t i = 0; i < got.limbs(); ++i) {
      ASSERT_EQ(got.residues[i], expect.residues[i])
          << basis.limbs() << " limbs, limb " << i;
    }
    x = rns_recombine(got, next);
    basis = next;
  }
  EXPECT_EQ(basis.limbs(), 1u);
}

// ---- derived bases ---------------------------------------------------------

TEST(RnsBasisDerivation, DropLastRebuildsConstantsForThePrefix) {
  const auto basis = rns_basis::with_limb_bits(kOrder, kLimbBits, 3);
  const auto dropped = basis.drop_last();
  ASSERT_EQ(dropped.limbs(), 2u);
  EXPECT_EQ(dropped.prime(0), basis.prime(0));
  EXPECT_EQ(dropped.prime(1), basis.prime(1));
  // M' = q_0 * q_1, rebuilt exactly (spot-check through a round trip).
  const math::wide_uint m64 = dropped.modulus().resized(128);
  EXPECT_EQ(m64.low64(), basis.prime(0) * basis.prime(1));

  const auto one_limb = dropped.drop_last();
  EXPECT_EQ(one_limb.limbs(), 1u);
  EXPECT_THROW((void)one_limb.drop_last(), std::invalid_argument);
}

TEST(RnsBasisDerivation, SwitchToAcceptsExactlyPrefixes) {
  const auto basis = rns_basis::with_limb_bits(kOrder, kLimbBits, 4);
  const auto two = rns_basis(kOrder, {basis.prime(0), basis.prime(1)});
  const auto derived = basis.switch_to(two);
  EXPECT_EQ(derived.limbs(), 2u);
  EXPECT_TRUE(derived.modulus() == two.modulus());

  // switch_to(drop_last()) == drop_last(): the one-step switch.
  const auto three = basis.switch_to(basis.drop_last());
  EXPECT_EQ(three.limbs(), 3u);
  EXPECT_TRUE(three.modulus() == basis.drop_last().modulus());

  // Not a prefix: same primes, wrong order / wrong member.
  EXPECT_THROW((void)basis.switch_to(rns_basis(kOrder, {basis.prime(1), basis.prime(0)})),
               std::invalid_argument);
  // Not smaller.
  EXPECT_THROW((void)basis.switch_to(basis), std::invalid_argument);
  // Wrong ring order.
  EXPECT_THROW((void)basis.switch_to(rns_basis(16, {basis.prime(0)})),
               std::invalid_argument);
}

TEST(RnsRescale, OneLimbBasisCannotRescale) {
  const auto basis = rns_basis::with_limb_bits(kOrder, kLimbBits, 1);
  runtime::context ctx(small_options(backend_kind::reference, basis.prime(0)));
  rns_engine eng(ctx, basis);
  common::xoshiro256ss rng(5);
  const auto x = random_big_poly(basis, rng);
  EXPECT_THROW((void)eng.rescale(eng.lower(x)), std::invalid_argument);
}

// ---- the NTT-domain operand cache ------------------------------------------

class RnsOperandCache : public ::testing::TestWithParam<backend_kind> {};

TEST_P(RnsOperandCache, RepeatedOperandPolymulHitsWithUnchangedResults) {
  const auto kind = GetParam();
  const auto basis = rns_basis::with_limb_bits(kOrder, kLimbBits, 3);
  runtime::context ctx(small_options(kind, basis.prime(0)));
  rns_engine eng(ctx, basis);

  common::xoshiro256ss rng(900);
  const auto a = random_big_poly(basis, rng);
  const auto b = random_big_poly(basis, rng);

  const auto first = eng.polymul(a, b);
  const auto cold = ctx.stats();
  EXPECT_GT(cold.operand_cache_misses, 0u) << "a cold product must populate the cache";

  // The same operands again: every limb transform is served from the cache
  // and the product is bit-identical.
  const auto second = eng.polymul(a, b);
  const auto warm = ctx.stats();
  EXPECT_GT(warm.operand_cache_hits, cold.operand_cache_hits)
      << "a repeated-operand product must hit the NTT-domain cache";
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_TRUE(first[i] == second[i]) << "caching changed the math at " << i;
  }
  // And the expected answer is still the schoolbook one.
  const auto expect = schoolbook_negacyclic_wide(a, b, basis.modulus());
  for (std::size_t i = 0; i < second.size(); ++i) {
    EXPECT_TRUE(second[i] == expect[i]) << "coefficient " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Backends, RnsOperandCache,
                         ::testing::Values(backend_kind::sram, backend_kind::cpu,
                                           backend_kind::reference),
                         [](const auto& info) { return std::string(to_string(info.param)); });

TEST(RnsOperandCacheSurface, SramWarmTransformCostsZeroArrayCycles) {
  // The modelled win: a fully-warm limb dispatch skips the array entirely.
  const auto basis = rns_basis::with_limb_bits(kOrder, kLimbBits, 2);
  runtime::context ctx(small_options(backend_kind::sram, basis.prime(0)));
  rns_engine eng(ctx, basis);
  common::xoshiro256ss rng(901);
  const auto x = random_big_poly(basis, rng);
  const rns_poly p = eng.lower(x);

  const auto cold = eng.forward(p);
  const u64 cold_cycles = ctx.stats().wall_cycles;
  EXPECT_GT(cold_cycles, 0u);
  const auto warm = eng.forward(p);
  EXPECT_EQ(ctx.stats().wall_cycles, cold_cycles)
      << "a fully-cached forward fan-out must not advance the virtual timeline";
  for (std::size_t i = 0; i < p.limbs(); ++i) {
    EXPECT_EQ(warm.residues[i], cold.residues[i]);
  }
}

TEST(RnsOperandCacheSurface, InvalidationDropsOneOperandEverywhere) {
  const auto basis = rns_basis::with_limb_bits(kOrder, kLimbBits, 2);
  runtime::context ctx(small_options(backend_kind::reference, basis.prime(0)));
  rns_engine eng(ctx, basis);
  common::xoshiro256ss rng(902);
  const auto x = random_big_poly(basis, rng);
  const rns_poly p = eng.lower(x);

  (void)eng.forward(p);
  const auto size_before = ctx.operand_cache_size();
  EXPECT_GT(size_before, 0u);

  // Invalidate limb 0's residues: its entry goes, the other limb's stays.
  ctx.invalidate_operand(p.residues[0]);
  EXPECT_EQ(ctx.operand_cache_size(), size_before - 1);

  // Re-transforming re-misses exactly the invalidated operand.
  const auto misses_before = ctx.stats().operand_cache_misses;
  (void)eng.forward(p);
  EXPECT_EQ(ctx.stats().operand_cache_misses, misses_before + 1);

  ctx.invalidate_operand_cache();
  EXPECT_EQ(ctx.operand_cache_size(), 0u);
}

TEST(RnsOperandCacheSurface, DisabledCacheStaysCorrectWithZeroCounters) {
  const auto basis = rns_basis::with_limb_bits(kOrder, kLimbBits, 2);
  auto opts = small_options(backend_kind::sram, basis.prime(0)).with_operand_cache(0);
  runtime::context ctx(opts);
  rns_engine eng(ctx, basis);
  common::xoshiro256ss rng(903);
  const auto a = random_big_poly(basis, rng);
  const auto b = random_big_poly(basis, rng);

  const auto c1 = eng.polymul(a, b);
  const auto c2 = eng.polymul(a, b);
  const auto s = ctx.stats();
  EXPECT_EQ(s.operand_cache_hits, 0u);
  EXPECT_EQ(s.operand_cache_misses, 0u);
  EXPECT_EQ(ctx.operand_cache_size(), 0u);
  const auto expect = schoolbook_negacyclic_wide(a, b, basis.modulus());
  for (std::size_t i = 0; i < c1.size(); ++i) {
    EXPECT_TRUE(c1[i] == expect[i]);
    EXPECT_TRUE(c2[i] == expect[i]);
  }
}

// ---- submit_rescale validation ---------------------------------------------

TEST(RescaleSubmission, ValidatesPrimesAndResidues) {
  const auto basis = rns_basis::with_limb_bits(kOrder, kLimbBits, 2);
  runtime::context ctx(small_options(backend_kind::sram, basis.prime(0)));
  const u64 q0 = basis.prime(0);
  const u64 q1 = basis.prime(1);
  auto limb = ctx.rns_stream(q0);
  const std::vector<u64> zeros(kOrder, 0);

  // The job must name its stream's ring modulus.
  runtime::rns_rescale_job wrong_stream{.prime = q1, .drop_prime = q0, .x = zeros,
                                        .dropped = zeros};
  EXPECT_THROW((void)limb.submit(std::move(wrong_stream)), std::invalid_argument);

  // The dropped modulus must be an odd prime distinct from the limb's.
  runtime::rns_rescale_job composite{.prime = q0, .drop_prime = q1 - 1, .x = zeros,
                                     .dropped = zeros};
  EXPECT_THROW((void)limb.submit(std::move(composite)), std::invalid_argument);
  runtime::rns_rescale_job self_drop{.prime = q0, .drop_prime = q0, .x = zeros,
                                     .dropped = zeros};
  EXPECT_THROW((void)limb.submit(std::move(self_drop)), std::invalid_argument);

  // Residues validate against their own moduli (x mod prime, dropped mod
  // drop_prime).
  runtime::rns_rescale_job bad_x{.prime = q0, .drop_prime = q1,
                                 .x = std::vector<u64>(kOrder, q0), .dropped = zeros};
  EXPECT_THROW((void)limb.submit(std::move(bad_x)), std::invalid_argument);
  runtime::rns_rescale_job bad_dropped{.prime = q0, .drop_prime = q1, .x = zeros,
                                       .dropped = std::vector<u64>(kOrder, q1)};
  EXPECT_THROW((void)limb.submit(std::move(bad_dropped)), std::invalid_argument);

  // And a valid job executes: x = dropped = 0 rescales to 0.
  runtime::rns_rescale_job ok{.prime = q0, .drop_prime = q1, .x = zeros, .dropped = zeros};
  const auto id = limb.submit(std::move(ok));
  const auto r = ctx.wait(id);
  EXPECT_EQ(r.outputs.front(), zeros);
}

}  // namespace
}  // namespace bpntt::rns
