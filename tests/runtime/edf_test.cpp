// EDF ready-queue policy tests: deadline ordering of contended dispatch
// groups, the zero-means-no-deadline boundary (including saturation of an
// astronomic budget), the equal-deadline tiebreaks (priority, then flush
// order), priority aging as the starvation escape hatch, and the
// acceptance bar — EDF strictly beats FIFO/priority order on deadline
// misses over the same contended trace.
#include <gtest/gtest.h>

#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/xoshiro.h"
#include "runtime/context.h"

namespace bpntt::runtime {
namespace {

runtime_options small_sram() {
  return runtime_options()
      .with_ring(32, 193, 9)
      .with_backend(backend_kind::sram)
      .with_array(64, 36)
      .with_subarrays(4);
}

std::vector<u64> random_poly(u64 n, u64 q, common::xoshiro256ss& rng) {
  std::vector<u64> p(n);
  for (auto& c : p) c = rng.below(q);
  return p;
}

// Scriptable backend (the stream-test idiom): no bank map, so every group
// serializes on the scheduler's pseudo-resource and dispatch order is
// exactly the pick order; the first dispatch can block until released so
// contending groups pile up in the ready queue first.
class ordering_backend final : public backend {
 public:
  struct config {
    u64 ntt_cost = 1000;
    bool block_first = false;
  };
  explicit ordering_backend(config c) : cfg_(c) {}

  [[nodiscard]] std::string_view name() const noexcept override { return "ordering"; }
  [[nodiscard]] backend_caps capabilities() const override {
    backend_caps caps;
    caps.polymul = true;
    return caps;
  }

  batch_result run_ntt(const std::vector<std::vector<u64>>& polys, transform_dir,
                       const dispatch_hints& hints) override {
    maybe_block();
    record(hints);
    batch_result r;
    r.outputs = polys;
    r.waves = polys.empty() ? 0 : 1;
    r.wall_cycles = polys.empty() ? 0 : cfg_.ntt_cost;
    return r;
  }
  batch_result run_polymul(const std::vector<core::polymul_pair>& pairs,
                           const dispatch_hints& hints) override {
    maybe_block();
    record(hints);
    batch_result r;
    for (const auto& pr : pairs) r.outputs.push_back(pr.a);
    r.waves = pairs.empty() ? 0 : 1;
    r.wall_cycles = pairs.empty() ? 0 : cfg_.ntt_cost;
    return r;
  }

  void release() {
    std::lock_guard<std::mutex> lk(mu_);
    released_ = true;
    cv_.notify_all();
  }
  [[nodiscard]] std::vector<unsigned> dispatch_order() const {
    std::lock_guard<std::mutex> lk(mu_);
    return order_;
  }

 private:
  void maybe_block() {
    std::unique_lock<std::mutex> lk(mu_);
    if (!cfg_.block_first || blocked_once_) return;
    blocked_once_ = true;
    cv_.wait(lk, [&] { return released_; });
  }
  void record(const dispatch_hints& hints) {
    std::lock_guard<std::mutex> lk(mu_);
    order_.push_back(hints.stream);
  }

  config cfg_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool blocked_once_ = false;
  bool released_ = false;
  std::vector<unsigned> order_;
};

// A blocked group on the pseudo-resource, then one stream per entry piled
// into the ready queue; returns the dispatch order after the release
// (first entry is the blocker, stream 0).
std::vector<unsigned> contended_dispatch_order(
    runtime_options opts, const std::vector<stream_options>& entries) {
  ordering_backend::config cfg;
  cfg.block_first = true;
  auto owned = std::make_unique<ordering_backend>(cfg);
  auto* rec = owned.get();
  context ctx(std::move(opts).with_threads(2), std::move(owned));
  common::xoshiro256ss rng(81);

  (void)ctx.submit(ntt_job{.coeffs = random_poly(32, 193, rng)});
  ctx.flush();  // stream 0: holds the resource, blocked in the backend

  std::vector<stream> streams;
  streams.reserve(entries.size());
  for (const auto& e : entries) {
    streams.push_back(ctx.stream(e));
    (void)streams.back().submit(ntt_job{.coeffs = random_poly(32, 193, rng)});
    streams.back().flush();
  }
  rec->release();
  ctx.sync();
  return rec->dispatch_order();
}

TEST(RuntimeEdf, OrdersContendedGroupsByAbsoluteDeadline) {
  // Flushed in anti-deadline order; EDF must dispatch tightest first.
  const auto order = contended_dispatch_order(
      small_sram().with_schedule(schedule_policy::edf),
      {{.deadline_cycles = 9000},    // stream 1
       {.deadline_cycles = 3000},    // stream 2
       {.deadline_cycles = 6000}});  // stream 3
  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(order[0], 0u);  // the blocker
  EXPECT_EQ(order[1], 2u);
  EXPECT_EQ(order[2], 3u);
  EXPECT_EQ(order[3], 1u);
}

TEST(RuntimeEdf, ZeroDeadlineMeansNoneAndSortsAfterEveryFiniteDeadline) {
  // deadline_cycles = 0 is "no deadline": it must lose to any finite
  // budget — including an astronomic one whose absolute deadline saturates
  // (ref + ~0ULL overflows; saturation must keep it *finite*).
  const auto order = contended_dispatch_order(
      small_sram().with_schedule(schedule_policy::edf),
      {{.deadline_cycles = 0},      // stream 1: none
       {.deadline_cycles = ~0ULL},  // stream 2: astronomic but finite
       {.deadline_cycles = 500}});  // stream 3: tight
  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(order[1], 3u);
  EXPECT_EQ(order[2], 2u) << "a saturated finite deadline still beats no deadline";
  EXPECT_EQ(order[3], 1u) << "no-deadline groups go last under edf";
}

TEST(RuntimeEdf, EqualDeadlineTiebreaksOnPriorityThenFlushOrder) {
  // Same budget everywhere: the deadline key ties, so the priority-desc /
  // seq-asc order of the default policy must decide.
  const auto order = contended_dispatch_order(
      small_sram().with_schedule(schedule_policy::edf),
      {{.priority = 1, .deadline_cycles = 4000},    // stream 1
       {.priority = 7, .deadline_cycles = 4000},    // stream 2: wins on priority
       {.priority = 1, .deadline_cycles = 4000}});  // stream 3: loses seq to 1
  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(order[1], 2u);
  EXPECT_EQ(order[2], 1u);
  EXPECT_EQ(order[3], 3u);
}

TEST(RuntimeEdf, DefaultPolicyIgnoresDeadlinesForOrdering) {
  // Control: under the default priority policy the same trace dispatches
  // in flush order (equal priorities), deadlines notwithstanding.
  const auto order = contended_dispatch_order(
      small_sram(),  // schedule_policy::priority
      {{.deadline_cycles = 9000},
       {.deadline_cycles = 3000},
       {.deadline_cycles = 6000}});
  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(order[1], 1u);
  EXPECT_EQ(order[2], 2u);
  EXPECT_EQ(order[3], 3u);
}

TEST(RuntimeEdf, AgingPromotesAStarvedGroupPastFresherRivals) {
  // A low-priority group passed over `aging_limit` scheduling rounds must
  // jump every non-aged group.  Rounds happen at each enqueue: flushing
  // three high-priority streams after the starved one ages it (limit 2)
  // before the blocker releases.
  const auto starved = [](unsigned aging_limit) {
    auto opts =
        small_sram().with_schedule(schedule_policy::priority, aging_limit);
    const auto order = contended_dispatch_order(
        std::move(opts), {{.priority = 0},    // stream 1: the starved tenant
                          {.priority = 9},    // streams 2..4: a stampede
                          {.priority = 9},
                          {.priority = 9}});
    return order;
  };

  const auto aged = starved(/*aging_limit=*/2);
  ASSERT_EQ(aged.size(), 5u);
  EXPECT_EQ(aged[1], 1u) << "the aged group must dispatch before the stampede";

  const auto no_aging = starved(/*aging_limit=*/0);
  ASSERT_EQ(no_aging.size(), 5u);
  EXPECT_EQ(no_aging[1], 2u) << "without aging, priority order holds";
  EXPECT_EQ(no_aging[4], 1u) << "and the low-priority tenant goes last";
}

TEST(RuntimeEdf, EdfStrictlyBeatsFifoOnDeadlineMissesOverTheSameTrace) {
  // The acceptance bar: three tenants with feasible-by-EDF budgets flushed
  // in worst-case order behind a blocker.  Deadlines are measured from each
  // stream's flush (the blocker is still running, so every reference vtime
  // is 0) and every group costs 1000 cycles after the blocker's 1000:
  //   EDF order  s1 s2 s3 -> ends 2000/3000/4000 vs budgets 2000/3000/4000:
  //     all met (finishing exactly on budget is a meet);
  //   flush order s3 s2 s1 -> ends 2000/3000/4000 vs budgets 4000/3000/2000:
  //     s1 overruns by 2000, one miss.
  const auto misses_under = [](schedule_policy policy) {
    ordering_backend::config cfg;
    cfg.block_first = true;
    cfg.ntt_cost = 1000;
    auto owned = std::make_unique<ordering_backend>(cfg);
    auto* rec = owned.get();
    context ctx(small_sram().with_schedule(policy).with_threads(2), std::move(owned));
    common::xoshiro256ss rng(82);

    (void)ctx.submit(ntt_job{.coeffs = random_poly(32, 193, rng)});
    ctx.flush();

    auto s3 = ctx.stream({.deadline_cycles = 4000});
    auto s2 = ctx.stream({.deadline_cycles = 3000});
    auto s1 = ctx.stream({.deadline_cycles = 2000});
    for (auto* s : {&s3, &s2, &s1}) {  // flushed loosest-first: FIFO's trap
      (void)s->submit(ntt_job{.coeffs = random_poly(32, 193, rng)});
      s->flush();
    }
    rec->release();
    ctx.sync();
    return ctx.stats().deadline_misses;
  };

  const auto fifo = misses_under(schedule_policy::priority);
  const auto edf = misses_under(schedule_policy::edf);
  EXPECT_EQ(fifo, 1u);
  EXPECT_EQ(edf, 0u);
  EXPECT_LT(edf, fifo) << "EDF must strictly reduce misses on this trace";
}

TEST(RuntimeEdf, PolicyNamesRoundTrip) {
  EXPECT_STREQ(to_string(schedule_policy::priority), "priority");
  EXPECT_STREQ(to_string(schedule_policy::edf), "edf");
}

}  // namespace
}  // namespace bpntt::runtime
