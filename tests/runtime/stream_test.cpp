// Stream API tests: topology-aware bank placement, overlap of independent
// dispatch groups, priority ordering, deadline accounting, capability
// validation, and stream isolation under backend failure.
#include <gtest/gtest.h>

#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/xoshiro.h"
#include "runtime/context.h"

namespace bpntt::runtime {
namespace {

// Small ring on a small array: 4 lanes per subarray, 3 compute subarrays
// per bank -> 12-lane waves per bank.
runtime_options small_sram() {
  return runtime_options()
      .with_ring(32, 193, 9)
      .with_backend(backend_kind::sram)
      .with_array(64, 36)
      .with_subarrays(4);
}

std::vector<u64> random_poly(u64 n, u64 q, common::xoshiro256ss& rng) {
  std::vector<u64> p(n);
  for (auto& c : p) c = rng.below(q);
  return p;
}

// A scriptable backend for scheduler tests: echoes inputs at a fixed
// modelled cost, records the stream id of every dispatch in order, can
// throw on one stream's dispatches, and can block its first dispatch until
// released (to make priority ordering observable).
class recording_backend final : public backend {
 public:
  struct config {
    backend_caps caps;
    u64 ntt_cost = 1000;  // wall_cycles reported per ntt dispatch
    unsigned throw_on_stream = ~0u;
    bool block_first = false;
  };
  explicit recording_backend(config c) : cfg_(std::move(c)) {
    cfg_.caps.polymul = true;  // every test ring supports products
  }

  [[nodiscard]] std::string_view name() const noexcept override { return "recording"; }
  [[nodiscard]] backend_caps capabilities() const override { return cfg_.caps; }

  batch_result run_ntt(const std::vector<std::vector<u64>>& polys, transform_dir,
                       const dispatch_hints& hints) override {
    maybe_block();
    record(hints);
    if (hints.stream == cfg_.throw_on_stream) {
      throw std::runtime_error("recording backend: stream " +
                               std::to_string(hints.stream) + " detonated");
    }
    batch_result r;
    r.outputs = polys;
    r.waves = polys.empty() ? 0 : 1;
    r.wall_cycles = polys.empty() ? 0 : cfg_.ntt_cost;
    return r;
  }
  batch_result run_polymul(const std::vector<core::polymul_pair>& pairs,
                           const dispatch_hints& hints) override {
    maybe_block();
    record(hints);
    if (hints.stream == cfg_.throw_on_stream) {
      throw std::runtime_error("recording backend: stream " +
                               std::to_string(hints.stream) + " detonated");
    }
    batch_result r;
    for (const auto& pr : pairs) r.outputs.push_back(pr.a);
    r.waves = pairs.empty() ? 0 : 1;
    r.wall_cycles = pairs.empty() ? 0 : cfg_.ntt_cost;
    return r;
  }

  void release() {
    std::lock_guard<std::mutex> lk(mu_);
    released_ = true;
    cv_.notify_all();
  }
  [[nodiscard]] std::vector<unsigned> dispatch_order() const {
    std::lock_guard<std::mutex> lk(mu_);
    return order_;
  }
  [[nodiscard]] std::vector<dispatch_hints> seen_hints() const {
    std::lock_guard<std::mutex> lk(mu_);
    return hints_;
  }

 private:
  void maybe_block() {
    std::unique_lock<std::mutex> lk(mu_);
    if (!cfg_.block_first || blocked_once_) return;
    blocked_once_ = true;
    cv_.wait(lk, [&] { return released_; });
  }
  void record(const dispatch_hints& hints) {
    std::lock_guard<std::mutex> lk(mu_);
    order_.push_back(hints.stream);
    hints_.push_back(hints);
  }

  config cfg_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool blocked_once_ = false;
  bool released_ = false;
  std::vector<unsigned> order_;
  std::vector<dispatch_hints> hints_;
};

// ---- capabilities ----------------------------------------------------------

TEST(RuntimeStreams, SramCapabilitiesDescribeTheTopology) {
  context ctx(small_sram().with_topology(2, 2, 4));
  const auto& caps = ctx.capabilities();
  EXPECT_EQ(caps.banks(), 4u);
  EXPECT_EQ(caps.channels, 2u);
  ASSERT_EQ(caps.bank_lanes.size(), 4u);
  for (const auto lanes : caps.bank_lanes) EXPECT_EQ(lanes, 12u);
  EXPECT_EQ(caps.wave_width, 48u);
  EXPECT_EQ(ctx.wave_width(), 48u);
  EXPECT_TRUE(caps.polymul);
  EXPECT_TRUE(caps.overlapping_streams());
  EXPECT_EQ(caps.max_poly_order, 32u);
  EXPECT_EQ(caps.max_modulus_bits, 8u);  // k = 9, carry-save headroom 2q < 2^k

  context ref(small_sram().with_backend(backend_kind::reference));
  EXPECT_FALSE(ref.capabilities().overlapping_streams());
  EXPECT_EQ(ref.capabilities().banks(), 0u);
}

TEST(RuntimeStreams, ContextRejectsRingsOutsideTheBackendEnvelope) {
  // Ring order beyond the advertised envelope.
  recording_backend::config narrow;
  narrow.caps.max_poly_order = 16;  // ring has n = 32
  try {
    context ctx(small_sram(), std::make_unique<recording_backend>(narrow));
    FAIL() << "oversized ring must be rejected";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("max polynomial order"), std::string::npos);
  }
  // Modulus wider than the backend can reduce (193 needs 8 bits).
  recording_backend::config thin;
  thin.caps.max_modulus_bits = 7;
  try {
    context ctx(small_sram(), std::make_unique<recording_backend>(thin));
    FAIL() << "oversized modulus must be rejected";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("bits"), std::string::npos);
  }
}

TEST(RuntimeStreams, SubmitValidatesAgainstCapabilityBits) {
  // A backend whose capabilities exclude ring products: polymul and rlwe
  // submissions are rejected up front.
  class no_polymul final : public backend {
    [[nodiscard]] std::string_view name() const noexcept override { return "no-polymul"; }
    [[nodiscard]] backend_caps capabilities() const override { return {}; }
    batch_result run_ntt(const std::vector<std::vector<u64>>& polys, transform_dir,
                         const dispatch_hints&) override {
      batch_result r;
      r.outputs = polys;
      return r;
    }
    batch_result run_polymul(const std::vector<core::polymul_pair>&,
                             const dispatch_hints&) override {
      throw std::logic_error("unreachable");
    }
  };
  context ctx(small_sram(), std::make_unique<no_polymul>());
  common::xoshiro256ss rng(1);
  EXPECT_NO_THROW((void)ctx.submit(ntt_job{.coeffs = random_poly(32, 193, rng)}));
  EXPECT_THROW((void)ctx.submit(polymul_job{.a = random_poly(32, 193, rng),
                                            .b = random_poly(32, 193, rng)}),
               std::invalid_argument);
  EXPECT_THROW((void)ctx.submit(rlwe_encrypt_job{.message = std::vector<u64>(32, 0)}),
               std::invalid_argument);
}

// ---- placement -------------------------------------------------------------

TEST(RuntimeStreams, FlatTopologyPlacesStreamsOnBanksRoundRobin) {
  context ctx(small_sram().with_banks(3));
  auto s1 = ctx.stream();
  auto s2 = ctx.stream();
  auto s3 = ctx.stream();
  auto s4 = ctx.stream();
  EXPECT_EQ(s1.bank_set(), std::vector<unsigned>{0u});
  EXPECT_EQ(s2.bank_set(), std::vector<unsigned>{1u});
  EXPECT_EQ(s3.bank_set(), std::vector<unsigned>{2u});
  EXPECT_EQ(s4.bank_set(), std::vector<unsigned>{0u});  // wraps; shares with s1
}

TEST(RuntimeStreams, MultiChannelTopologyHandsEachStreamOneChannel) {
  context ctx(small_sram().with_topology(2, 2, 4));
  auto s1 = ctx.stream();
  auto s2 = ctx.stream();
  auto s3 = ctx.stream();
  EXPECT_EQ(s1.bank_set(), (std::vector<unsigned>{0u, 1u}));
  EXPECT_EQ(s2.bank_set(), (std::vector<unsigned>{2u, 3u}));
  EXPECT_EQ(s3.bank_set(), (std::vector<unsigned>{0u, 1u}));  // wraps to channel 0
}

TEST(RuntimeStreams, ExplicitBankSetsAreValidatedAndNormalized) {
  context ctx(small_sram().with_banks(4));
  auto pinned = ctx.stream({.bank_set = {3, 1, 3}});
  EXPECT_EQ(pinned.bank_set(), (std::vector<unsigned>{1u, 3u}));  // sorted, deduped
  EXPECT_THROW((void)ctx.stream({.bank_set = {4}}), std::invalid_argument);
}

// ---- overlap and ordering --------------------------------------------------

TEST(RuntimeStreams, StreamsExecuteInOrderAndStampResults) {
  context ctx(small_sram().with_banks(2));
  const auto& p = ctx.options().params;
  common::xoshiro256ss rng(2);
  auto s = ctx.stream({.priority = 3});
  std::vector<job_id> ids;
  std::vector<std::vector<u64>> inputs;
  for (unsigned i = 0; i < 5; ++i) {
    inputs.push_back(random_poly(p.n, p.q, rng));
    ids.push_back(s.submit(ntt_job{.coeffs = inputs.back()}));
  }
  EXPECT_EQ(s.pending(), 5u);
  EXPECT_EQ(ctx.pending(), 5u);
  s.flush();
  EXPECT_EQ(s.pending(), 0u);
  for (const auto id : ids) {
    const auto r = ctx.wait(id);
    EXPECT_EQ(r.status, job_status::ok);
    EXPECT_EQ(r.stream, s.id());
    EXPECT_FALSE(r.deadline_missed);
    EXPECT_GT(r.finish_cycles, 0u);
  }
  // Legacy submissions ride the default stream.
  const auto legacy = ctx.wait(ctx.submit(ntt_job{.coeffs = inputs.front()}));
  EXPECT_EQ(legacy.stream, 0u);
}

TEST(RuntimeStreams, PriorityOrdersContendedDispatchGroups) {
  // One pseudo-resource (no bank map): every group serializes, so dispatch
  // order is exactly the scheduler's pick order.  The first group blocks
  // inside the backend while low- and high-priority groups pile up; on
  // release the high-priority group must dispatch before the low one even
  // though it flushed later.
  recording_backend::config cfg;
  cfg.block_first = true;
  auto owned = std::make_unique<recording_backend>(cfg);
  auto* rec = owned.get();
  context ctx(small_sram().with_threads(2), std::move(owned));
  common::xoshiro256ss rng(3);

  (void)ctx.submit(ntt_job{.coeffs = random_poly(32, 193, rng)});
  ctx.flush();  // group 0: occupies the resource, blocked in the backend

  auto low = ctx.stream({.priority = 1});
  auto high = ctx.stream({.priority = 9});
  (void)low.submit(ntt_job{.coeffs = random_poly(32, 193, rng)});
  low.flush();
  (void)high.submit(ntt_job{.coeffs = random_poly(32, 193, rng)});
  high.flush();

  rec->release();
  ctx.sync();
  const auto order = rec->dispatch_order();
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], 0u);          // the blocker
  EXPECT_EQ(order[1], high.id());   // priority 9 beats priority 1...
  EXPECT_EQ(order[2], low.id());    // ...despite flushing later
  EXPECT_EQ(ctx.stats().groups, 3u);
}

TEST(RuntimeStreams, PriorityHoldsAcrossStreamsFlushedTogether) {
  // One ctx.sync() flushes every stream: all groups must enter the ready
  // queue before any scheduling decision, so the high-priority stream
  // dispatches first even though the bulk stream has the lower id and is
  // visited first by the flush loop.
  recording_backend::config cfg;
  auto owned = std::make_unique<recording_backend>(cfg);
  auto* rec = owned.get();
  context ctx(small_sram().with_threads(1), std::move(owned));
  common::xoshiro256ss rng(8);

  auto bulk = ctx.stream({.priority = 0});   // id 1: flushed first
  auto fast = ctx.stream({.priority = 10});  // id 2
  (void)bulk.submit(ntt_job{.coeffs = random_poly(32, 193, rng)});
  (void)fast.submit(ntt_job{.coeffs = random_poly(32, 193, rng)});
  ctx.sync();

  const auto order = rec->dispatch_order();
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], fast.id());
  EXPECT_EQ(order[1], bulk.id());
}

TEST(RuntimeStreams, BackendFailureInOneStreamLeavesSiblingsIntact) {
  common::xoshiro256ss rng(4);
  // Stream ids are issued in creation order starting at 1, so the failure
  // trigger can be armed before the stream exists.
  recording_backend::config armed;
  armed.throw_on_stream = 1;  // first user stream created below
  context ctx2(small_sram().with_threads(2), std::make_unique<recording_backend>(armed));

  auto bad = ctx2.stream();   // id 1: detonates
  auto good = ctx2.stream();  // id 2: must be untouched
  ASSERT_EQ(bad.id(), 1u);

  std::vector<job_id> bad_ids, good_ids;
  std::vector<std::vector<u64>> good_inputs;
  for (unsigned i = 0; i < 3; ++i) {
    bad_ids.push_back(bad.submit(ntt_job{.coeffs = random_poly(32, 193, rng)}));
    good_inputs.push_back(random_poly(32, 193, rng));
    good_ids.push_back(good.submit(ntt_job{.coeffs = good_inputs.back()}));
  }
  bad.flush();
  good.flush();
  ctx2.sync();

  // The sibling stream's jobs completed, in order, with echoed outputs.
  for (std::size_t i = 0; i < good_ids.size(); ++i) {
    const auto r = ctx2.wait(good_ids[i]);
    EXPECT_EQ(r.status, job_status::ok);
    EXPECT_EQ(r.stream, good.id());
    EXPECT_EQ(r.outputs[0], good_inputs[i]) << "job " << i;
  }
  // The doomed stream's jobs carry the backend's message.
  for (const auto id : bad_ids) {
    const auto r = ctx2.try_wait(id);
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ(r->status, job_status::failed);
    EXPECT_NE(r->error.find("detonated"), std::string::npos);
  }
  const auto s = ctx2.stats();
  EXPECT_EQ(s.jobs_failed, 3u);
  EXPECT_EQ(s.jobs_completed, 3u);
  EXPECT_EQ(s.jobs_in_flight, 0u);
}

TEST(RuntimeStreams, CloseReleasesTheSlotAndUnboundHandlesThrow) {
  context ctx(small_sram().with_banks(2));
  common::xoshiro256ss rng(7);

  // close() flushes pending work; already-submitted ids stay waitable.
  auto s = ctx.stream();
  const auto id = s.submit(ntt_job{.coeffs = random_poly(32, 193, rng)});
  s.close();
  EXPECT_EQ(ctx.wait(id).status, job_status::ok);
  EXPECT_THROW((void)s.submit(ntt_job{.coeffs = random_poly(32, 193, rng)}),
               std::logic_error);
  EXPECT_THROW(s.close(), std::logic_error);       // already closed
  EXPECT_THROW((void)s.pending(), std::logic_error);   // probes throw too,
  EXPECT_THROW((void)s.bank_set(), std::logic_error);  // not silent 0 / {}

  // The default stream is permanent, and an unbound handle diagnoses
  // itself instead of dereferencing null.
  stream dangling;
  EXPECT_THROW(dangling.flush(), std::logic_error);
  EXPECT_THROW((void)dangling.pending(), std::logic_error);
}

TEST(RuntimeStreams, CloseThenReopenReusesTheSlot) {
  // A service opening one stream per request closes them; a later stream
  // must be fully usable and land on the same bank the closed one held
  // (round-robin placement keeps cycling, so slot reuse is observable as
  // placement reuse).
  context ctx(small_sram().with_banks(2));
  common::xoshiro256ss rng(21);

  auto first = ctx.stream();
  const auto first_banks = first.bank_set();
  const auto first_id = first.id();
  first.close();

  // Ids are not recycled (results stay unambiguous), but the bank slot is.
  auto a = ctx.stream();
  auto b = ctx.stream();
  EXPECT_NE(a.id(), first_id);
  // Round-robin over 2 banks: one of the two new streams re-lands on the
  // closed stream's bank.
  EXPECT_TRUE(a.bank_set() == first_banks || b.bank_set() == first_banks);

  // And the reopened slot executes work end to end.
  const auto id = a.submit(ntt_job{.coeffs = random_poly(32, 193, rng)});
  a.flush();
  EXPECT_EQ(ctx.wait(id).status, job_status::ok);
}

TEST(RuntimeStreams, DoubleFlushOfAnEmptyStreamIsANoop) {
  // flush() on an empty stream must not create a dispatch group (an empty
  // group would burn a scheduler round and skew the groups counter).
  context ctx(small_sram().with_banks(2));
  common::xoshiro256ss rng(22);

  auto s = ctx.stream();
  const auto before = ctx.stats().groups;
  s.flush();
  s.flush();
  ctx.flush();  // flushing every stream skips empty queues too
  EXPECT_EQ(ctx.stats().groups, before);

  // A real group still forms afterwards, exactly one per non-empty flush.
  const auto id = s.submit(ntt_job{.coeffs = random_poly(32, 193, rng)});
  s.flush();
  s.flush();  // second flush: queue already drained, again a no-op
  ctx.sync();
  EXPECT_EQ(ctx.stats().groups, before + 1);
  EXPECT_EQ(ctx.wait(id).status, job_status::ok);
}

// ---- deadlines -------------------------------------------------------------

TEST(RuntimeStreams, DeadlineMissesAreAccountedNotPreempted) {
  recording_backend::config cfg;
  cfg.ntt_cost = 1000;
  auto owned = std::make_unique<recording_backend>(cfg);
  context ctx(small_sram().with_threads(1), std::move(owned));
  common::xoshiro256ss rng(5);

  auto tight = ctx.stream({.deadline_cycles = 500});    // 1000-cycle batch: missed
  auto loose = ctx.stream({.deadline_cycles = 5000});   // met
  auto none = ctx.stream();                             // no deadline
  const auto t = tight.submit(ntt_job{.coeffs = random_poly(32, 193, rng)});
  const auto l = loose.submit(ntt_job{.coeffs = random_poly(32, 193, rng)});
  const auto n = none.submit(ntt_job{.coeffs = random_poly(32, 193, rng)});
  tight.flush();
  loose.flush();
  none.flush();
  ctx.sync();

  const auto rt = ctx.wait(t);
  EXPECT_EQ(rt.status, job_status::ok);  // the job still completed
  EXPECT_TRUE(rt.deadline_missed);
  const auto rl = ctx.wait(l);
  EXPECT_FALSE(rl.deadline_missed);
  const auto rn = ctx.wait(n);
  EXPECT_FALSE(rn.deadline_missed);
  EXPECT_EQ(ctx.stats().deadline_misses, 1u);
}

TEST(RuntimeStreams, FinishingExactlyAtTheDeadlineIsAMeetNotAMiss) {
  // Regression for the boundary the two dispatch paths must agree on: a
  // group whose completion lands *exactly* on deadline_cycles has met its
  // budget.  The stub reports a fixed 1000-cycle batch, so the boundary is
  // exact by construction — and the second stream flushes after the first
  // completed, pinning the "measured from the stream's flush" reference.
  recording_backend::config cfg;
  cfg.ntt_cost = 1000;
  auto owned = std::make_unique<recording_backend>(cfg);
  context ctx(small_sram().with_threads(1), std::move(owned));
  common::xoshiro256ss rng(31);

  auto exact = ctx.stream({.deadline_cycles = 1000});
  const auto met = exact.submit(ntt_job{.coeffs = random_poly(32, 193, rng)});
  exact.flush();
  ctx.sync();
  const auto r_met = ctx.wait(met);
  EXPECT_FALSE(r_met.deadline_missed) << "end - ref == deadline must be a meet";
  EXPECT_EQ(ctx.stats().deadline_misses, 0u);

  // One cycle less of budget on a later flush (non-zero reference vtime):
  // the identical batch now misses — on the same dispatch path.
  auto tight = ctx.stream({.deadline_cycles = 999});
  const auto missed = tight.submit(ntt_job{.coeffs = random_poly(32, 193, rng)});
  tight.flush();
  ctx.sync();
  const auto r_missed = ctx.wait(missed);
  EXPECT_TRUE(r_missed.deadline_missed);
  EXPECT_EQ(ctx.stats().deadline_misses, 1u);
}

TEST(RuntimeStreams, RlwePathSharesTheExactDeadlineBoundary) {
  // The staged R-LWE flow accounts its deadline at its last product stage
  // through the same helper as plain dispatches: three 1000-cycle product
  // stages finish at exactly 3000 — a meet at 3000, a miss at 2999.
  common::xoshiro256ss rng(32);
  std::vector<u64> message(32, 0);
  for (auto& b : message) b = rng() & 1ULL;

  const auto run_with_deadline = [&](u64 deadline) {
    recording_backend::config cfg;
    cfg.ntt_cost = 1000;
    auto owned = std::make_unique<recording_backend>(cfg);
    context ctx(small_sram().with_threads(1), std::move(owned));
    auto s = ctx.stream({.deadline_cycles = deadline});
    const auto id = s.submit(rlwe_encrypt_job{.message = message});
    s.flush();
    ctx.sync();
    return ctx.wait(id).deadline_missed;
  };
  EXPECT_FALSE(run_with_deadline(3000)) << "exactly at the deadline is a meet";
  EXPECT_TRUE(run_with_deadline(2999));
}

// ---- limb-stream lifecycle -------------------------------------------------

TEST(RuntimeStreams, RnsStreamReopensFreshSlotWhileFlushIsStillInFlight) {
  // Close the dedicated limb stream while its flushed group is still
  // blocked inside the backend, then ask for the limb stream again: the
  // context must hand out a fresh, fully-usable slot — never the stale
  // closed handle — and both the in-flight job and work on the reopened
  // slot must complete.
  recording_backend::config cfg;
  cfg.block_first = true;
  auto owned = std::make_unique<recording_backend>(cfg);
  auto* be = owned.get();
  context ctx(small_sram().with_threads(2), std::move(owned));
  common::xoshiro256ss rng(33);

  constexpr u64 kLimb = 257;  // 257 == 1 (mod 64): negacyclic at n = 32
  auto s = ctx.rns_stream(kLimb);
  const auto stale_id = s.id();
  const auto inflight =
      s.submit(ntt_job{.coeffs = random_poly(32, kLimb, rng)});
  s.flush();
  // The group is dispatched (and the backend is now blocked inside it).
  EXPECT_EQ(ctx.stats().jobs_in_flight, 1u);

  s.close();  // close during the in-flight flush; must not deadlock

  auto reopened = ctx.rns_stream(kLimb);
  EXPECT_NE(reopened.id(), stale_id) << "a closed limb stream must not be resurrected";
  EXPECT_EQ(ctx.rns_stream(kLimb).id(), reopened.id()) << "the fresh slot is the new home";
  const auto later = reopened.submit(ntt_job{.coeffs = random_poly(32, kLimb, rng)});
  reopened.flush();

  be->release();
  const auto r1 = ctx.wait(inflight);
  EXPECT_EQ(r1.status, job_status::ok);
  EXPECT_EQ(r1.stream, stale_id) << "the in-flight job still reports its original stream";
  const auto r2 = ctx.wait(later);
  EXPECT_EQ(r2.status, job_status::ok);
  EXPECT_EQ(r2.stream, reopened.id());
}

// ---- virtual-timeline accounting -------------------------------------------

TEST(RuntimeStreams, MakespanAccountingOverlapsDisjointBanksOnly) {
  // Two streams on a stub advertising a 2-bank map: their fixed-cost
  // groups land on banks {0} and {1}, so the makespan is one group's cost.
  // A third group on the default stream (all banks) then stacks on top.
  recording_backend::config cfg;
  cfg.ntt_cost = 1000;
  cfg.caps.bank_lanes = {4, 4};
  auto owned = std::make_unique<recording_backend>(cfg);
  context ctx(small_sram().with_threads(2), std::move(owned));
  common::xoshiro256ss rng(6);

  auto a = ctx.stream();
  auto b = ctx.stream();
  (void)a.submit(ntt_job{.coeffs = random_poly(32, 193, rng)});
  (void)b.submit(ntt_job{.coeffs = random_poly(32, 193, rng)});
  a.flush();
  b.flush();
  ctx.sync();
  EXPECT_EQ(ctx.stats().wall_cycles, 1000u);  // overlapped, not 2000

  (void)ctx.submit(ntt_job{.coeffs = random_poly(32, 193, rng)});
  ctx.sync();
  EXPECT_EQ(ctx.stats().wall_cycles, 2000u);  // default stream needs both banks
}

}  // namespace
}  // namespace bpntt::runtime
