// Observability-probe thread-safety tests: the context's threading
// contract says stats(), pending(), open_streams() and the cache probes
// are callable from any thread while the single client thread runs the
// full stream lifecycle.  This suite runs under TSan in CI — a data race
// between an observer and the client/pool threads fails the build, which
// is the whole point.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "common/xoshiro.h"
#include "nttmath/primes.h"
#include "runtime/context.h"

namespace bpntt::runtime {
namespace {

// A 13-bit envelope so limb streams over 12-bit RNS primes validate.
runtime_options small_sram() {
  return runtime_options()
      .with_ring(32, 3137, 13)
      .with_backend(backend_kind::sram)
      .with_array(64, 39)
      .with_subarrays(4);
}

std::vector<u64> random_poly(u64 n, u64 q, common::xoshiro256ss& rng) {
  std::vector<u64> p(n);
  for (auto& c : p) c = rng.below(q);
  return p;
}

TEST(RuntimeContextProbes, ObserverThreadsAreSafeAcrossTheStreamLifecycle) {
  context ctx(small_sram().with_topology(2, 1, 2).with_threads(2));
  std::atomic<bool> stop{false};

  // Two observers: one hammers the scheduler-side probes, one the
  // stream/cache-side probes, both against every phase of the client's
  // lifecycle below (open, submit, flush, wait, close).
  std::thread scheduler_observer([&] {
    while (!stop.load(std::memory_order_acquire)) {
      const auto s = ctx.stats();
      EXPECT_LE(s.jobs_completed + s.jobs_failed, s.jobs_submitted);
      (void)ctx.pending();
    }
  });
  std::thread stream_observer([&] {
    while (!stop.load(std::memory_order_acquire)) {
      (void)ctx.open_streams();
      (void)ctx.operand_cache_size();
      (void)ctx.retarget_cache_size();
    }
  });

  // The client lifecycle runs guarded so a failure can never unwind past
  // the joinable observer threads (that would turn a test failure into a
  // process abort).
  std::string client_error;
  try {
    const u64 limb = math::first_k_ntt_primes(12, 32, 1, true).front();
    common::xoshiro256ss rng(91);
    for (unsigned round = 0; round < 40; ++round) {
      auto a = ctx.stream({.priority = static_cast<int>(round % 3)});
      auto b = ctx.rns_stream(limb);  // exercises the ring-override path too
      std::vector<job_id> ids;
      for (unsigned i = 0; i < 4; ++i) {
        ids.push_back(a.submit(ntt_job{.coeffs = random_poly(32, 3137, rng)}));
        ids.push_back(b.submit(ntt_job{.coeffs = random_poly(32, limb, rng)}));
      }
      a.flush();
      b.flush();
      for (const auto id : ids) EXPECT_EQ(ctx.wait(id).status, job_status::ok);
      a.close();
      b.close();
    }
    ctx.sync();
  } catch (const std::exception& e) {
    client_error = e.what();
  }
  stop.store(true, std::memory_order_release);
  scheduler_observer.join();
  stream_observer.join();
  EXPECT_EQ(client_error, "");

  const auto s = ctx.stats();
  EXPECT_EQ(s.jobs_submitted, 40u * 8u);
  EXPECT_EQ(s.jobs_completed, 40u * 8u);
  EXPECT_EQ(ctx.pending(), 0u);
}

TEST(RuntimeContextProbes, StatsSnapshotIsConsistentUnderLoad) {
  // A stats() snapshot taken mid-flight must be internally coherent: the
  // terminal counters never exceed submissions, and in-flight never
  // exceeds what is unaccounted for.
  context ctx(small_sram().with_threads(2));
  std::atomic<bool> stop{false};
  std::thread observer([&] {
    while (!stop.load(std::memory_order_acquire)) {
      const auto s = ctx.stats();
      EXPECT_LE(s.jobs_completed + s.jobs_failed + s.jobs_in_flight, s.jobs_submitted);
    }
  });

  common::xoshiro256ss rng(92);
  for (unsigned i = 0; i < 200; ++i) {
    (void)ctx.submit(ntt_job{.coeffs = random_poly(32, 3137, rng)});
    if (i % 8 == 7) ctx.sync();
  }
  ctx.sync();
  stop.store(true, std::memory_order_release);
  observer.join();
  EXPECT_EQ(ctx.stats().jobs_completed, 200u);
}

}  // namespace
}  // namespace bpntt::runtime
