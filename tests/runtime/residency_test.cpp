// On-array residency acceptance tests: bit-identity across backends with
// residency on vs off, the sram cost ladder (warm same-bank = 0 cycles,
// warm cross-bank strictly between 0 and cold), eviction under a small row
// budget, the pin/unpin lifecycle at the context surface, and concurrent
// probe safety (TSan-checked in CI).
#include <gtest/gtest.h>

#include <atomic>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/xoshiro.h"
#include "nttmath/primes.h"
#include "runtime/context.h"

namespace bpntt::runtime {
namespace {

constexpr u64 kOrder = 32;

std::vector<u64> poly_below(u64 q, u64 seed) {
  common::xoshiro256ss rng(seed);
  std::vector<u64> p(kOrder);
  for (auto& c : p) c = rng.below(q);
  return p;
}

runtime_options base_options(backend_kind kind) {
  return runtime_options()
      .with_ring(kOrder, 3137, 13)
      .with_backend(kind)
      .with_array(64, 39)
      .with_banks(2)
      .with_threads(2);
}

u64 limb_prime() { return math::first_k_ntt_primes(12, kOrder, 1, true).front(); }

// ---- bit-identity: residency may change cycles, never outputs --------------

class ResidencyDifferential : public ::testing::TestWithParam<backend_kind> {};

TEST_P(ResidencyDifferential, OutputsAreBitIdenticalWithResidencyOnAndOff) {
  const u64 q = limb_prime();
  const auto a = poly_below(q, 1);
  const auto b = poly_below(q, 2);

  // Cold + warm repeats of the same transforms, residency on and off; every
  // output must agree pairwise.
  auto run = [&](runtime_options opts) {
    context ctx(opts);
    auto limb = ctx.rns_stream(q);
    std::vector<std::vector<u64>> outs;
    for (int rep = 0; rep < 2; ++rep) {
      for (const auto* p : {&a, &b}) {
        const auto id = limb.submit(ntt_job{.coeffs = *p});
        outs.push_back(ctx.wait(id).outputs.front());
      }
    }
    return outs;
  };

  const auto on = run(base_options(GetParam()));
  const auto off = run(base_options(GetParam()).with_operand_cache(0));
  ASSERT_EQ(on.size(), off.size());
  for (std::size_t i = 0; i < on.size(); ++i) {
    EXPECT_EQ(on[i], off[i]) << "residency changed transform output " << i;
  }
  // Warm repeats equal their cold originals.
  EXPECT_EQ(on[0], on[2]);
  EXPECT_EQ(on[1], on[3]);
}

INSTANTIATE_TEST_SUITE_P(Backends, ResidencyDifferential,
                         ::testing::Values(backend_kind::sram, backend_kind::cpu,
                                           backend_kind::reference),
                         [](const auto& info) { return std::string(to_string(info.param)); });

// ---- the sram cost ladder: resident < move < cold --------------------------

TEST(ResidencySram, WarmSameBankIsFreeAndCrossBankCostsARowMove) {
  const u64 q = limb_prime();
  auto opts = base_options(backend_kind::sram).with_tracing();
  context ctx(opts);
  auto on_bank0 = ctx.stream({.bank_set = {0}, .ring_q = q});
  auto on_bank1 = ctx.stream({.bank_set = {1}, .ring_q = q});
  const auto p = poly_below(q, 3);

  // Cold: the transform runs on bank 0 and takes residence there.
  const auto cold_id = on_bank0.submit(ntt_job{.coeffs = p});
  const auto cold = ctx.wait(cold_id);
  EXPECT_GT(cold.wall_cycles, 0u);

  // Warm on the home bank: the rows are already where the dispatch runs —
  // zero array cycles.
  const auto warm_id = on_bank0.submit(ntt_job{.coeffs = p});
  const auto warm = ctx.wait(warm_id);
  EXPECT_EQ(warm.wall_cycles, 0u);
  EXPECT_EQ(warm.outputs.front(), cold.outputs.front());

  // Warm on the other bank: an on-chip row move — strictly cheaper than
  // recomputing, strictly dearer than staying home.
  const auto remote_id = on_bank1.submit(ntt_job{.coeffs = p});
  const auto remote = ctx.wait(remote_id);
  EXPECT_GT(remote.wall_cycles, 0u);
  EXPECT_LT(remote.wall_cycles, cold.wall_cycles);
  EXPECT_EQ(remote.outputs.front(), cold.outputs.front());

  const auto s = ctx.stats();
  EXPECT_GE(s.operand_cache_hits, 2u);
  EXPECT_GE(s.residency_moves, 1u);
  EXPECT_GT(s.residency_affinity_hits, 0u)
      << "the warm same-bank claim landed on the hinted bank";
  EXPECT_LE(s.resident_rows, ctx.resident_row_capacity());
  EXPECT_LE(s.resident_rows_peak, ctx.resident_row_capacity());

  // The residency story is on the trace: affinity instants and the
  // resident-row counter track.
  ctx.sync();
  std::ostringstream trace;
  ctx.export_trace(trace);
  EXPECT_NE(trace.str().find("affinity_hit"), std::string::npos);
  EXPECT_NE(trace.str().find("resident_rows"), std::string::npos);
}

TEST(ResidencySram, EvictionUnderPressureKeepsBitIdentity) {
  const u64 q = limb_prime();
  // Three data subarrays of one bank, one operand each: the fourth distinct
  // operand forces an eviction.
  auto opts = runtime_options()
                  .with_ring(kOrder, 3137, 13)
                  .with_backend(backend_kind::sram)
                  .with_array(64, 39)
                  .with_topology(1, 1, 4)
                  .with_threads(2)
                  .with_residency_rows(static_cast<unsigned>(kOrder));
  context ctx(opts);
  context unlimited(base_options(backend_kind::sram));
  auto limb = ctx.rns_stream(q);
  auto limb_u = unlimited.rns_stream(q);
  EXPECT_EQ(ctx.resident_row_capacity(), 3 * kOrder);

  std::vector<std::vector<u64>> polys;
  for (u64 s = 10; s < 15; ++s) polys.push_back(poly_below(q, s));
  for (int rep = 0; rep < 2; ++rep) {
    for (const auto& p : polys) {
      const auto id = limb.submit(ntt_job{.coeffs = p});
      const auto id_u = limb_u.submit(ntt_job{.coeffs = p});
      EXPECT_EQ(ctx.wait(id).outputs.front(), unlimited.wait(id_u).outputs.front())
          << "capacity pressure changed a transform";
      EXPECT_LE(ctx.resident_rows(), ctx.resident_row_capacity())
          << "the resident-row gauge overran the budget";
    }
  }
  const auto s = ctx.stats();
  EXPECT_GT(s.residency_evictions, 0u) << "5 operands through 3 slots must evict";
  EXPECT_GT(s.operand_cache_misses, 0u);
  EXPECT_LE(s.resident_rows_peak, ctx.resident_row_capacity());
}

// ---- pin/unpin lifecycle ----------------------------------------------------

TEST(ResidencyPinning, PinnedOperandSurvivesPressureUntilUnpinnedOrInvalidated) {
  const u64 q = limb_prime();
  // Two slots: one pinned resident + one churn slot.
  auto opts = runtime_options()
                  .with_ring(kOrder, 3137, 13)
                  .with_backend(backend_kind::sram)
                  .with_array(64, 39)
                  .with_topology(1, 1, 3)
                  .with_threads(2)
                  .with_residency_rows(static_cast<unsigned>(kOrder));
  context ctx(opts);
  auto limb = ctx.rns_stream(q);
  const auto keyish = poly_below(q, 20);

  ctx.pin_operand(keyish);
  auto transform = [&](const std::vector<u64>& p) {
    const auto id = limb.submit(ntt_job{.coeffs = p});
    return ctx.wait(id).outputs.front();
  };
  const auto image = transform(keyish);

  // Churn far past capacity: the pinned resident must not move.
  for (u64 s = 30; s < 36; ++s) (void)transform(poly_below(q, s));
  const auto misses_before = ctx.stats().operand_cache_misses;
  EXPECT_EQ(transform(keyish), image);
  EXPECT_EQ(ctx.stats().operand_cache_misses, misses_before)
      << "the pinned operand was evicted under pressure";

  // Unpinned, the same churn evicts it.
  ctx.unpin_operand(keyish);
  for (u64 s = 40; s < 46; ++s) (void)transform(poly_below(q, s));
  EXPECT_EQ(transform(keyish), image);
  EXPECT_GT(ctx.stats().operand_cache_misses, misses_before + 6)
      << "an unpinned operand must rejoin the eviction pressure class";

  // Explicit invalidation overrides a pin.
  ctx.pin_operand(keyish);
  (void)transform(keyish);
  EXPECT_GE(ctx.invalidate_operand(keyish), 1u);
}

// ---- concurrent probes (TSan) ----------------------------------------------

TEST(ResidencyConcurrency, ProbesStayConsistentUnderMultiStreamDispatch) {
  const auto primes = math::first_k_ntt_primes(12, kOrder, 3, true);
  auto opts = runtime_options()
                  .with_ring(kOrder, primes[0], 13)
                  .with_backend(backend_kind::cpu)
                  .with_threads(4);
  context ctx(opts);

  std::atomic<bool> stop{false};
  std::thread observer([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      const auto rows = ctx.resident_rows();
      EXPECT_LE(rows, ctx.resident_row_capacity());
      (void)ctx.operand_cache_size();
      const auto s = ctx.stats();
      EXPECT_LE(s.resident_rows, ctx.resident_row_capacity());
    }
  });

  common::xoshiro256ss rng(77);
  for (int round = 0; round < 30; ++round) {
    rns_polymul_job j;
    j.primes = primes;
    for (const u64 p : primes) {
      j.a.push_back(poly_below(p, 100 + static_cast<u64>(round % 3)));
      j.b.push_back(poly_below(p, 200 + rng.below(4)));
    }
    const auto sub = ctx.submit_rns(std::move(j));
    ctx.flush();
    for (const auto id : sub.limb_ids) (void)ctx.wait(id);
  }
  stop.store(true, std::memory_order_relaxed);
  observer.join();
  EXPECT_GT(ctx.stats().operand_cache_hits, 0u);
}

}  // namespace
}  // namespace bpntt::runtime
