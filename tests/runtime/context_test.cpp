#include "runtime/context.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "common/xoshiro.h"
#include "nttmath/ntt.h"
#include "nttmath/poly.h"

namespace bpntt::runtime {
namespace {

// Small ring on a small array so every scheduling path stays fast: 4 lanes
// per subarray, 3 compute subarrays per bank.
runtime_options small_sram() {
  return runtime_options()
      .with_ring(32, 193, 9)
      .with_backend(backend_kind::sram)
      .with_array(64, 36)
      .with_subarrays(4);
}

std::vector<u64> random_poly(u64 n, u64 q, common::xoshiro256ss& rng) {
  std::vector<u64> p(n);
  for (auto& c : p) c = rng.below(q);
  return p;
}

TEST(RuntimeContext, SubmitWaitRoundTripsEveryJob) {
  context ctx(small_sram());
  const auto& p = ctx.options().params;
  const math::ntt_tables tables(p.n, p.q, true);
  common::xoshiro256ss rng(1);

  std::vector<job_id> ids;
  std::vector<std::vector<u64>> inputs;
  for (unsigned i = 0; i < 2 * ctx.wave_width() + 5; ++i) {  // 2 full waves + ragged tail
    inputs.push_back(random_poly(p.n, p.q, rng));
    ids.push_back(ctx.submit(ntt_job{.coeffs = inputs.back()}));
  }
  EXPECT_EQ(ctx.pending(), ids.size());

  for (std::size_t i = 0; i < ids.size(); ++i) {
    const auto r = ctx.wait(ids[i]);
    auto expect = inputs[i];
    math::ntt_forward(expect, tables);
    ASSERT_EQ(r.outputs.size(), 1u);
    ASSERT_EQ(r.outputs[0], expect) << "job " << i;
    EXPECT_EQ(r.jobs_in_batch, ids.size());
    EXPECT_GT(r.wall_cycles, 0u);
  }
  EXPECT_EQ(ctx.pending(), 0u);
  EXPECT_EQ(ctx.stats().jobs_completed, ids.size());
  EXPECT_EQ(ctx.stats().batches, 1u);  // one flush, one kind: one dispatch
}

TEST(RuntimeContext, WaitConsumesAndRejectsUnknownIds) {
  context ctx(small_sram());
  common::xoshiro256ss rng(2);
  const auto id = ctx.submit(ntt_job{.coeffs = random_poly(32, 193, rng)});
  // The three wait() failure modes carry distinct messages: unknown id,
  // already-claimed result, and (tested with the stub backend below) a
  // failed dispatch.
  EXPECT_THROW((void)ctx.wait(0), std::out_of_range);  // 0 is never issued
  try {
    (void)ctx.wait(id + 1);  // never submitted
    FAIL() << "unknown id must throw";
  } catch (const std::out_of_range& e) {
    EXPECT_STREQ(e.what(), "runtime: unknown job id");
  }
  (void)ctx.wait(id);
  try {
    (void)ctx.wait(id);  // already claimed
    FAIL() << "claimed id must throw";
  } catch (const std::out_of_range& e) {
    EXPECT_STREQ(e.what(), "runtime: job result already claimed");
  }
}

TEST(RuntimeContext, FlushPartitionsByKindAndDirection) {
  context ctx(small_sram());
  const auto& p = ctx.options().params;
  common::xoshiro256ss rng(3);
  // Interleave forward transforms, inverse transforms and ring products:
  // one flush must produce exactly three dispatches.
  for (int i = 0; i < 3; ++i) {
    (void)ctx.submit(ntt_job{.coeffs = random_poly(p.n, p.q, rng)});
    (void)ctx.submit(
        ntt_job{.dir = transform_dir::inverse, .coeffs = random_poly(p.n, p.q, rng)});
    (void)ctx.submit(polymul_job{.a = random_poly(p.n, p.q, rng),
                                 .b = random_poly(p.n, p.q, rng)});
  }
  ctx.flush();  // async: schedules and returns
  EXPECT_EQ(ctx.pending(), 0u);
  ctx.sync();  // block until the executor drained the dispatches
  EXPECT_EQ(ctx.stats().batches, 3u);
  EXPECT_EQ(ctx.stats().jobs_completed, 9u);
  EXPECT_EQ(ctx.stats().jobs_in_flight, 0u);
}

TEST(RuntimeContext, ForwardThenInverseRestoresInput) {
  context ctx(small_sram());
  const auto& p = ctx.options().params;
  common::xoshiro256ss rng(4);
  const auto input = random_poly(p.n, p.q, rng);
  const auto fwd = ctx.wait(ctx.submit(ntt_job{.coeffs = input}));
  const auto back = ctx.wait(
      ctx.submit(ntt_job{.dir = transform_dir::inverse, .coeffs = fwd.outputs[0]}));
  EXPECT_EQ(back.outputs[0], input);
}

TEST(RuntimeContext, PolymulMatchesSchoolbook) {
  context ctx(small_sram());
  const auto& p = ctx.options().params;
  common::xoshiro256ss rng(5);
  const auto a = random_poly(p.n, p.q, rng);
  const auto b = random_poly(p.n, p.q, rng);
  const auto r = ctx.wait(ctx.submit(polymul_job{.a = a, .b = b}));
  EXPECT_EQ(r.outputs[0], math::schoolbook_negacyclic(a, b, p.q));
}

TEST(RuntimeContext, RlweJobDecryptsAndIsSeedDeterministic) {
  context ctx(small_sram());
  const auto& p = ctx.options().params;
  common::xoshiro256ss rng(6);
  std::vector<u64> message(p.n);
  for (auto& m : message) m = rng.below(2);

  const auto r1 = ctx.wait(ctx.submit(rlwe_encrypt_job{.message = message, .seed = 77}));
  ASSERT_EQ(r1.outputs.size(), 3u);
  EXPECT_EQ(r1.outputs[2], message);  // decrypt round-trip
  EXPECT_GT(r1.wall_cycles, 0u);

  // Same seed, same backend: bit-identical ciphertext.  Different seed:
  // fresh randomness.
  const auto r2 = ctx.wait(ctx.submit(rlwe_encrypt_job{.message = message, .seed = 77}));
  EXPECT_EQ(r1.outputs[0], r2.outputs[0]);
  EXPECT_EQ(r1.outputs[1], r2.outputs[1]);
  const auto r3 = ctx.wait(ctx.submit(rlwe_encrypt_job{.message = message, .seed = 78}));
  EXPECT_NE(r1.outputs[0], r3.outputs[0]);
}

TEST(RuntimeContext, SubmitValidatesJobsAgainstRingAndBackend) {
  context ctx(small_sram());
  common::xoshiro256ss rng(7);
  // Wrong length and non-canonical coefficients.
  EXPECT_THROW((void)ctx.submit(ntt_job{.coeffs = std::vector<u64>(16, 0)}),
               std::invalid_argument);
  EXPECT_THROW((void)ctx.submit(ntt_job{.coeffs = std::vector<u64>(32, 193)}),
               std::invalid_argument);
  // Polymul needs 2n <= data_rows: shrink the array so it no longer fits.
  context tight(runtime_options(small_sram()).with_array(32, 36));
  EXPECT_THROW((void)tight.submit(polymul_job{.a = random_poly(32, 193, rng),
                                              .b = random_poly(32, 193, rng)}),
               std::invalid_argument);
  // R-LWE needs a full negacyclic NTT ring.
  context kyber(runtime_options()
                    .with_ring(256, 3329, 13, /*incomplete=*/true)
                    .with_backend(backend_kind::reference));
  EXPECT_THROW((void)kyber.submit(rlwe_encrypt_job{.message = std::vector<u64>(256, 0)}),
               std::invalid_argument);
}

TEST(RuntimeContext, MultiBankShardingKeepsJobOrder) {
  auto opts = small_sram().with_banks(3);
  context ctx(opts);
  const auto& p = ctx.options().params;
  const math::ntt_tables tables(p.n, p.q, true);
  common::xoshiro256ss rng(8);
  // 3 banks x 12 lanes = 36-wide waves; 40 jobs exercises the round-robin
  // block assignment plus a ragged tail on bank 0.
  EXPECT_EQ(ctx.wave_width(), 36u);
  std::vector<std::vector<u64>> inputs;
  for (unsigned i = 0; i < 40; ++i) {
    inputs.push_back(random_poly(p.n, p.q, rng));
    (void)ctx.submit(ntt_job{.coeffs = inputs.back()});
  }
  const auto results = ctx.wait_all();
  ASSERT_EQ(results.size(), inputs.size());
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    auto expect = inputs[i];
    math::ntt_forward(expect, tables);
    ASSERT_EQ(results[i].outputs[0], expect) << "job " << i;
  }
  EXPECT_EQ(ctx.stats().batches, 1u);
  EXPECT_EQ(ctx.stats().waves, 4u);  // blocks of 12: banks get 2+1+1 waves
}

TEST(RuntimeContext, BackendsReportTheirIdentity) {
  context sram(small_sram());
  EXPECT_EQ(sram.active_backend().name(), "sram");
  EXPECT_GT(sram.wave_width(), 0u);

  context cpu(runtime_options(small_sram()).with_backend(backend_kind::cpu));
  EXPECT_EQ(cpu.active_backend().name(), "cpu");
  EXPECT_EQ(cpu.wave_width(), 0u);  // unbounded batches

  context ref(runtime_options(small_sram()).with_backend(backend_kind::reference));
  EXPECT_EQ(ref.active_backend().name(), "reference");
}

TEST(RuntimeContext, ReferenceBackendIsFree) {
  context ctx(runtime_options(small_sram()).with_backend(backend_kind::reference));
  common::xoshiro256ss rng(9);
  const auto r = ctx.wait(ctx.submit(ntt_job{.coeffs = random_poly(32, 193, rng)}));
  EXPECT_EQ(r.wall_cycles, 0u);
  EXPECT_EQ(r.op_stats.energy_pj, 0.0);
}

TEST(RuntimeContext, CpuBackendNeverReportsZeroCyclesForNonEmptyBatches) {
  // A tiny batch can finish inside one clock tick; the backend clamps to
  // one core cycle so throughput/energy division stays well-defined.
  context ctx(runtime_options(small_sram()).with_backend(backend_kind::cpu));
  common::xoshiro256ss rng(10);
  const auto r = ctx.wait(ctx.submit(ntt_job{.coeffs = random_poly(32, 193, rng)}));
  EXPECT_GE(r.wall_cycles, 1u);
  EXPECT_GT(r.op_stats.energy_pj, 0.0);
}

TEST(RuntimeContext, AsyncFlushReturnsBeforeResultsAndWaitBlocks) {
  auto opts = small_sram().with_banks(2).with_threads(4);
  context ctx(opts);
  EXPECT_EQ(ctx.executor_threads(), 4u);
  const auto& p = ctx.options().params;
  common::xoshiro256ss rng(11);
  std::vector<job_id> ids;
  for (unsigned i = 0; i < 30; ++i) {
    ids.push_back(ctx.submit(ntt_job{.coeffs = random_poly(p.n, p.q, rng)}));
  }
  ctx.flush();
  EXPECT_EQ(ctx.pending(), 0u);  // handed to the executor
  for (const auto id : ids) {
    const auto r = ctx.wait(id);  // blocks on the per-job completion state
    EXPECT_EQ(r.status, job_status::ok);
  }
  const auto s = ctx.stats();
  EXPECT_EQ(s.jobs_completed, ids.size());
  EXPECT_EQ(s.jobs_in_flight, 0u);
  EXPECT_EQ(s.jobs_failed, 0u);
}

// ---- Stub backends: failure injection and contract checks ------------------

// A scriptable backend: echoes inputs, optionally throwing on transforms or
// returning a short output vector.
class scripted_backend final : public backend {
 public:
  enum class mode { echo, throw_on_ntt, short_outputs };
  explicit scripted_backend(mode m) : mode_(m) {}

  [[nodiscard]] std::string_view name() const noexcept override { return "stub"; }
  [[nodiscard]] backend_caps capabilities() const override {
    backend_caps caps;
    caps.polymul = true;
    return caps;
  }

  batch_result run_ntt(const std::vector<std::vector<u64>>& polys, transform_dir,
                       const dispatch_hints&) override {
    if (mode_ == mode::throw_on_ntt) {
      throw std::runtime_error("stub backend: transform unit on fire");
    }
    batch_result r;
    r.outputs = polys;
    if (mode_ == mode::short_outputs && !r.outputs.empty()) r.outputs.pop_back();
    r.waves = polys.empty() ? 0 : 1;
    return r;
  }
  batch_result run_polymul(const std::vector<core::polymul_pair>& pairs,
                           const dispatch_hints&) override {
    batch_result r;
    for (const auto& pr : pairs) r.outputs.push_back(pr.a);
    r.waves = pairs.empty() ? 0 : 1;
    return r;
  }

 private:
  mode mode_;
};

context stub_context(scripted_backend::mode m) {
  return context(small_sram(), std::make_unique<scripted_backend>(m));
}

TEST(RuntimeContext, BackendThrowFailsOnlyItsOwnDispatch) {
  auto ctx = stub_context(scripted_backend::mode::throw_on_ntt);
  common::xoshiro256ss rng(12);
  const auto ntt1 = ctx.submit(ntt_job{.coeffs = random_poly(32, 193, rng)});
  const auto ntt2 = ctx.submit(ntt_job{.coeffs = random_poly(32, 193, rng)});
  const auto mul1 = ctx.submit(
      polymul_job{.a = random_poly(32, 193, rng), .b = random_poly(32, 193, rng)});
  ctx.sync();

  // Sibling dispatch (the polymul group) survives the ntt group's failure.
  const auto ok = ctx.wait(mul1);
  EXPECT_EQ(ok.status, job_status::ok);
  ASSERT_EQ(ok.outputs.size(), 1u);

  // The failed jobs surface the backend's real error — not the old
  // "job result already claimed" misreport.
  try {
    (void)ctx.wait(ntt1);
    FAIL() << "failed job must throw job_failed_error";
  } catch (const job_failed_error& e) {
    EXPECT_EQ(e.id(), ntt1);
    EXPECT_NE(std::string(e.what()).find("transform unit on fire"), std::string::npos);
  }
  // try_wait reports the same failure through job_result instead of throwing.
  const auto failed = ctx.try_wait(ntt2);
  ASSERT_TRUE(failed.has_value());
  EXPECT_EQ(failed->status, job_status::failed);
  EXPECT_NE(failed->error.find("transform unit on fire"), std::string::npos);
  EXPECT_TRUE(failed->outputs.empty());

  const auto s = ctx.stats();
  EXPECT_EQ(s.jobs_failed, 2u);
  EXPECT_EQ(s.jobs_completed, 1u);
  EXPECT_EQ(s.jobs_in_flight, 0u);
}

TEST(RuntimeContext, WaitAllReportsFailedJobsThroughJobResult) {
  auto ctx = stub_context(scripted_backend::mode::throw_on_ntt);
  common::xoshiro256ss rng(13);
  (void)ctx.submit(ntt_job{.coeffs = random_poly(32, 193, rng)});
  (void)ctx.submit(
      polymul_job{.a = random_poly(32, 193, rng), .b = random_poly(32, 193, rng)});
  const auto all = ctx.wait_all();
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0].status, job_status::failed);  // submission order: the ntt job
  EXPECT_NE(all[0].error.find("transform unit on fire"), std::string::npos);
  EXPECT_EQ(all[1].status, job_status::ok);
}

TEST(RuntimeContext, ShortBackendResultFailsLoudlyInsteadOfMisrouting) {
  auto ctx = stub_context(scripted_backend::mode::short_outputs);
  common::xoshiro256ss rng(14);
  std::vector<job_id> ids;
  for (int i = 0; i < 3; ++i) {
    ids.push_back(ctx.submit(ntt_job{.coeffs = random_poly(32, 193, rng)}));
  }
  ctx.sync();
  for (const auto id : ids) {
    const auto r = ctx.try_wait(id);
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ(r->status, job_status::failed);
    EXPECT_NE(r->error.find("backend returned 2 outputs for a dispatch of 3 jobs"),
              std::string::npos)
        << r->error;
  }
}

TEST(RuntimeContext, TryWaitProbesWithoutBlockingOrFlushing) {
  context ctx(small_sram());
  common::xoshiro256ss rng(15);
  const auto id = ctx.submit(ntt_job{.coeffs = random_poly(32, 193, rng)});
  EXPECT_THROW((void)ctx.try_wait(id + 1), std::out_of_range);
  // Still queued: try_wait neither blocks nor triggers the flush.
  EXPECT_FALSE(ctx.try_wait(id).has_value());
  EXPECT_EQ(ctx.pending(), 1u);
  ctx.sync();
  const auto r = ctx.try_wait(id);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->status, job_status::ok);
  EXPECT_THROW((void)ctx.try_wait(id), std::out_of_range);  // claimed
}

TEST(RuntimeContext, OversizedPoolIsRejectedBeforeAnyThreadSpawns) {
  // Both constructors vet the pool size up front — an absurd with_threads()
  // must throw invalid_argument, not attempt the spawn first.
  EXPECT_THROW(context(small_sram().with_threads(300)), std::invalid_argument);
  EXPECT_THROW(context(small_sram().with_threads(300),
                       std::make_unique<scripted_backend>(scripted_backend::mode::echo)),
               std::invalid_argument);
}

TEST(RuntimeContext, RlweJobsShareStagedProductBatches) {
  // Three concurrent R-LWE flows: the keygen products run as one dispatch,
  // the encrypt products as one, the decrypt products as one — 3 batches,
  // not 4 per job — and outputs stay bit-identical to isolated runs.
  context batched(small_sram());
  const auto& p = batched.options().params;
  common::xoshiro256ss rng(16);
  std::vector<std::vector<u64>> messages;
  std::vector<job_id> ids;
  for (int t = 0; t < 3; ++t) {
    std::vector<u64> msg(p.n);
    for (auto& m : msg) m = rng.below(2);
    messages.push_back(msg);
    ids.push_back(batched.submit(
        rlwe_encrypt_job{.message = msg, .seed = 400 + static_cast<u64>(t)}));
  }
  batched.sync();
  EXPECT_EQ(batched.stats().batches, 3u);
  EXPECT_EQ(batched.stats().jobs_completed, 3u);

  for (std::size_t t = 0; t < ids.size(); ++t) {
    const auto got = batched.wait(ids[t]);
    ASSERT_EQ(got.outputs.size(), 3u);
    EXPECT_EQ(got.outputs[2], messages[t]) << "round-trip, job " << t;
    EXPECT_EQ(got.jobs_in_batch, 3u);
    // One job per context: the serial path the staged flow must match.
    context solo(small_sram());
    const auto want = solo.wait(solo.submit(
        rlwe_encrypt_job{.message = messages[t], .seed = 400 + static_cast<u64>(t)}));
    EXPECT_EQ(got.outputs[0], want.outputs[0]) << "ciphertext u, job " << t;
    EXPECT_EQ(got.outputs[1], want.outputs[1]) << "ciphertext v, job " << t;
  }
}

}  // namespace
}  // namespace bpntt::runtime
