#include "runtime/context.h"

#include <gtest/gtest.h>

#include "common/xoshiro.h"
#include "nttmath/ntt.h"
#include "nttmath/poly.h"

namespace bpntt::runtime {
namespace {

// Small ring on a small array so every scheduling path stays fast: 4 lanes
// per subarray, 3 compute subarrays per bank.
runtime_options small_sram() {
  return runtime_options()
      .with_ring(32, 193, 9)
      .with_backend(backend_kind::sram)
      .with_array(64, 36)
      .with_subarrays(4);
}

std::vector<u64> random_poly(u64 n, u64 q, common::xoshiro256ss& rng) {
  std::vector<u64> p(n);
  for (auto& c : p) c = rng.below(q);
  return p;
}

TEST(RuntimeContext, SubmitWaitRoundTripsEveryJob) {
  context ctx(small_sram());
  const auto& p = ctx.options().params;
  const math::ntt_tables tables(p.n, p.q, true);
  common::xoshiro256ss rng(1);

  std::vector<job_id> ids;
  std::vector<std::vector<u64>> inputs;
  for (unsigned i = 0; i < 2 * ctx.wave_width() + 5; ++i) {  // 2 full waves + ragged tail
    inputs.push_back(random_poly(p.n, p.q, rng));
    ids.push_back(ctx.submit(ntt_job{.coeffs = inputs.back()}));
  }
  EXPECT_EQ(ctx.pending(), ids.size());

  for (std::size_t i = 0; i < ids.size(); ++i) {
    const auto r = ctx.wait(ids[i]);
    auto expect = inputs[i];
    math::ntt_forward(expect, tables);
    ASSERT_EQ(r.outputs.size(), 1u);
    ASSERT_EQ(r.outputs[0], expect) << "job " << i;
    EXPECT_EQ(r.jobs_in_batch, ids.size());
    EXPECT_GT(r.wall_cycles, 0u);
  }
  EXPECT_EQ(ctx.pending(), 0u);
  EXPECT_EQ(ctx.stats().jobs_completed, ids.size());
  EXPECT_EQ(ctx.stats().batches, 1u);  // one flush, one kind: one dispatch
}

TEST(RuntimeContext, WaitConsumesAndRejectsUnknownIds) {
  context ctx(small_sram());
  common::xoshiro256ss rng(2);
  const auto id = ctx.submit(ntt_job{.coeffs = random_poly(32, 193, rng)});
  EXPECT_THROW((void)ctx.wait(id + 1), std::out_of_range);  // never submitted
  (void)ctx.wait(id);
  EXPECT_THROW((void)ctx.wait(id), std::out_of_range);  // already claimed
}

TEST(RuntimeContext, FlushPartitionsByKindAndDirection) {
  context ctx(small_sram());
  const auto& p = ctx.options().params;
  common::xoshiro256ss rng(3);
  // Interleave forward transforms, inverse transforms and ring products:
  // one flush must produce exactly three dispatches.
  for (int i = 0; i < 3; ++i) {
    (void)ctx.submit(ntt_job{.coeffs = random_poly(p.n, p.q, rng)});
    (void)ctx.submit(
        ntt_job{.dir = transform_dir::inverse, .coeffs = random_poly(p.n, p.q, rng)});
    (void)ctx.submit(polymul_job{.a = random_poly(p.n, p.q, rng),
                                 .b = random_poly(p.n, p.q, rng)});
  }
  ctx.flush();
  EXPECT_EQ(ctx.pending(), 0u);
  EXPECT_EQ(ctx.stats().batches, 3u);
  EXPECT_EQ(ctx.stats().jobs_completed, 9u);
}

TEST(RuntimeContext, ForwardThenInverseRestoresInput) {
  context ctx(small_sram());
  const auto& p = ctx.options().params;
  common::xoshiro256ss rng(4);
  const auto input = random_poly(p.n, p.q, rng);
  const auto fwd = ctx.wait(ctx.submit(ntt_job{.coeffs = input}));
  const auto back = ctx.wait(
      ctx.submit(ntt_job{.dir = transform_dir::inverse, .coeffs = fwd.outputs[0]}));
  EXPECT_EQ(back.outputs[0], input);
}

TEST(RuntimeContext, PolymulMatchesSchoolbook) {
  context ctx(small_sram());
  const auto& p = ctx.options().params;
  common::xoshiro256ss rng(5);
  const auto a = random_poly(p.n, p.q, rng);
  const auto b = random_poly(p.n, p.q, rng);
  const auto r = ctx.wait(ctx.submit(polymul_job{.a = a, .b = b}));
  EXPECT_EQ(r.outputs[0], math::schoolbook_negacyclic(a, b, p.q));
}

TEST(RuntimeContext, RlweJobDecryptsAndIsSeedDeterministic) {
  context ctx(small_sram());
  const auto& p = ctx.options().params;
  common::xoshiro256ss rng(6);
  std::vector<u64> message(p.n);
  for (auto& m : message) m = rng.below(2);

  const auto r1 = ctx.wait(ctx.submit(rlwe_encrypt_job{.message = message, .seed = 77}));
  ASSERT_EQ(r1.outputs.size(), 3u);
  EXPECT_EQ(r1.outputs[2], message);  // decrypt round-trip
  EXPECT_GT(r1.wall_cycles, 0u);

  // Same seed, same backend: bit-identical ciphertext.  Different seed:
  // fresh randomness.
  const auto r2 = ctx.wait(ctx.submit(rlwe_encrypt_job{.message = message, .seed = 77}));
  EXPECT_EQ(r1.outputs[0], r2.outputs[0]);
  EXPECT_EQ(r1.outputs[1], r2.outputs[1]);
  const auto r3 = ctx.wait(ctx.submit(rlwe_encrypt_job{.message = message, .seed = 78}));
  EXPECT_NE(r1.outputs[0], r3.outputs[0]);
}

TEST(RuntimeContext, SubmitValidatesJobsAgainstRingAndBackend) {
  context ctx(small_sram());
  common::xoshiro256ss rng(7);
  // Wrong length and non-canonical coefficients.
  EXPECT_THROW((void)ctx.submit(ntt_job{.coeffs = std::vector<u64>(16, 0)}),
               std::invalid_argument);
  EXPECT_THROW((void)ctx.submit(ntt_job{.coeffs = std::vector<u64>(32, 193)}),
               std::invalid_argument);
  // Polymul needs 2n <= data_rows: shrink the array so it no longer fits.
  context tight(runtime_options(small_sram()).with_array(32, 36));
  EXPECT_THROW((void)tight.submit(polymul_job{.a = random_poly(32, 193, rng),
                                              .b = random_poly(32, 193, rng)}),
               std::invalid_argument);
  // R-LWE needs a full negacyclic NTT ring.
  context kyber(runtime_options()
                    .with_ring(256, 3329, 13, /*incomplete=*/true)
                    .with_backend(backend_kind::reference));
  EXPECT_THROW((void)kyber.submit(rlwe_encrypt_job{.message = std::vector<u64>(256, 0)}),
               std::invalid_argument);
}

TEST(RuntimeContext, MultiBankShardingKeepsJobOrder) {
  auto opts = small_sram().with_banks(3);
  context ctx(opts);
  const auto& p = ctx.options().params;
  const math::ntt_tables tables(p.n, p.q, true);
  common::xoshiro256ss rng(8);
  // 3 banks x 12 lanes = 36-wide waves; 40 jobs exercises the round-robin
  // block assignment plus a ragged tail on bank 0.
  EXPECT_EQ(ctx.wave_width(), 36u);
  std::vector<std::vector<u64>> inputs;
  for (unsigned i = 0; i < 40; ++i) {
    inputs.push_back(random_poly(p.n, p.q, rng));
    (void)ctx.submit(ntt_job{.coeffs = inputs.back()});
  }
  const auto results = ctx.wait_all();
  ASSERT_EQ(results.size(), inputs.size());
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    auto expect = inputs[i];
    math::ntt_forward(expect, tables);
    ASSERT_EQ(results[i].outputs[0], expect) << "job " << i;
  }
  EXPECT_EQ(ctx.stats().batches, 1u);
  EXPECT_EQ(ctx.stats().waves, 4u);  // blocks of 12: banks get 2+1+1 waves
}

TEST(RuntimeContext, BackendsReportTheirIdentity) {
  context sram(small_sram());
  EXPECT_EQ(sram.active_backend().name(), "sram");
  EXPECT_GT(sram.wave_width(), 0u);

  context cpu(runtime_options(small_sram()).with_backend(backend_kind::cpu));
  EXPECT_EQ(cpu.active_backend().name(), "cpu");
  EXPECT_EQ(cpu.wave_width(), 0u);  // unbounded batches

  context ref(runtime_options(small_sram()).with_backend(backend_kind::reference));
  EXPECT_EQ(ref.active_backend().name(), "reference");
}

TEST(RuntimeContext, ReferenceBackendIsFree) {
  context ctx(runtime_options(small_sram()).with_backend(backend_kind::reference));
  common::xoshiro256ss rng(9);
  const auto r = ctx.wait(ctx.submit(ntt_job{.coeffs = random_poly(32, 193, rng)}));
  EXPECT_EQ(r.wall_cycles, 0u);
  EXPECT_EQ(r.op_stats.energy_pj, 0.0);
}

}  // namespace
}  // namespace bpntt::runtime
