// Scheduler-module tests: the extracted absolute-deadline clamp's
// boundaries, cross-stream batching (merged dispatch with strictly lower
// makespan and bit-identical outputs, per-tenant result distribution,
// merge-eligibility rules), and budget-based preemptive yielding (a
// chunked bulk group gives its banks to an arriving finite-deadline tenant
// between chunks, pinned by a deterministic trace where preemptive EDF
// strictly beats non-preemptive EDF on deadline misses).
#include <gtest/gtest.h>

#include <condition_variable>
#include <cstddef>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/xoshiro.h"
#include "runtime/context.h"
#include "runtime/scheduler.h"

namespace bpntt::runtime {
namespace {

runtime_options small_sram() {
  return runtime_options()
      .with_ring(32, 193, 9)
      .with_backend(backend_kind::sram)
      .with_array(64, 36)
      .with_subarrays(4);
}

std::vector<u64> random_poly(u64 n, u64 q, common::xoshiro256ss& rng) {
  std::vector<u64> p(n);
  for (auto& c : p) c = rng.below(q);
  return p;
}

// ---- the extracted absolute-deadline clamp ----------------------------------

TEST(AbsoluteDeadline, ZeroBudgetMeansNoDeadline) {
  EXPECT_EQ(absolute_deadline(0, 0), dispatch_group::no_deadline);
  EXPECT_EQ(absolute_deadline(123456, 0), dispatch_group::no_deadline);
  EXPECT_EQ(absolute_deadline(~0ULL, 0), dispatch_group::no_deadline);
}

TEST(AbsoluteDeadline, FiniteBudgetIsFrontierPlusBudget) {
  EXPECT_EQ(absolute_deadline(0, 1), 1u);
  EXPECT_EQ(absolute_deadline(100, 50), 150u);
  EXPECT_EQ(absolute_deadline(1ULL << 40, 1ULL << 20), (1ULL << 40) + (1ULL << 20));
}

TEST(AbsoluteDeadline, OverflowSaturatesToLargestFiniteDeadline) {
  // ref + budget wraps: the deadline must stay *finite* (no_deadline - 1),
  // never the no-deadline sentinel — an astronomic budget still beats "no
  // deadline at all" under EDF.
  EXPECT_EQ(absolute_deadline(1, ~0ULL), dispatch_group::no_deadline - 1);
  EXPECT_EQ(absolute_deadline(~0ULL - 5, 10), dispatch_group::no_deadline - 1);
  EXPECT_EQ(absolute_deadline(~0ULL, ~0ULL), dispatch_group::no_deadline - 1);
}

TEST(AbsoluteDeadline, ExactSentinelBoundaryStaysFinite) {
  // ref + budget lands exactly on the sentinel (no overflow): clamp to the
  // largest finite value.
  EXPECT_EQ(absolute_deadline(0, ~0ULL), dispatch_group::no_deadline - 1);
  EXPECT_EQ(absolute_deadline(1, ~0ULL - 1), dispatch_group::no_deadline - 1);
  // One below the sentinel is representable as-is.
  EXPECT_EQ(absolute_deadline(0, dispatch_group::no_deadline - 1),
            dispatch_group::no_deadline - 1);
}

// ---- scriptable backend for deterministic traces ----------------------------

// Cost-model backend (the edf-test idiom): no bank map, so every group
// contends on the scheduler's single pseudo-resource and dispatch order is
// the pick order.  Cost is either fixed per dispatch (merging amortizes
// dispatches -> lower makespan) or per job (chunking splits a bulk group's
// wall-clock -> preemption window).  The first dispatch can block until
// release() so contending groups pile up in the ready queue first.
class trace_backend final : public backend {
 public:
  struct config {
    u64 cost_per_dispatch = 0;  // added once per non-empty dispatch
    u64 cost_per_job = 0;       // added per job in the dispatch
    bool block_first = false;
  };
  explicit trace_backend(config c) : cfg_(c) {}

  [[nodiscard]] std::string_view name() const noexcept override { return "trace"; }
  [[nodiscard]] backend_caps capabilities() const override {
    backend_caps caps;
    caps.polymul = true;
    return caps;
  }

  batch_result run_ntt(const std::vector<std::vector<u64>>& polys, transform_dir,
                       const dispatch_hints& hints) override {
    maybe_block();
    record(hints, polys.size());
    batch_result r;
    r.outputs = polys;  // echo: output identity pins result routing
    r.waves = polys.empty() ? 0 : 1;
    r.wall_cycles = cost(polys.size());
    return r;
  }
  batch_result run_polymul(const std::vector<core::polymul_pair>& pairs,
                           const dispatch_hints& hints) override {
    maybe_block();
    record(hints, pairs.size());
    batch_result r;
    for (const auto& pr : pairs) r.outputs.push_back(pr.a);
    r.waves = pairs.empty() ? 0 : 1;
    r.wall_cycles = cost(pairs.size());
    return r;
  }

  void release() {
    std::lock_guard<std::mutex> lk(mu_);
    released_ = true;
    cv_.notify_all();
  }
  // (stream id, batch size) per dispatch, in dispatch order.
  [[nodiscard]] std::vector<std::pair<unsigned, std::size_t>> dispatches() const {
    std::lock_guard<std::mutex> lk(mu_);
    return dispatches_;
  }

 private:
  [[nodiscard]] u64 cost(std::size_t jobs) const noexcept {
    return jobs == 0 ? 0 : cfg_.cost_per_dispatch + cfg_.cost_per_job * jobs;
  }
  void maybe_block() {
    std::unique_lock<std::mutex> lk(mu_);
    if (!cfg_.block_first || blocked_once_) return;
    blocked_once_ = true;
    cv_.wait(lk, [&] { return released_; });
  }
  void record(const dispatch_hints& hints, std::size_t jobs) {
    std::lock_guard<std::mutex> lk(mu_);
    dispatches_.emplace_back(hints.stream, jobs);
  }

  config cfg_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool blocked_once_ = false;
  bool released_ = false;
  std::vector<std::pair<unsigned, std::size_t>> dispatches_;
};

// ---- cross-stream batching ---------------------------------------------------

// Three contended tenants behind a blocker, fixed cost per dispatch.
// Returns (stats, per-job outputs keyed by submission order, dispatches).
struct merge_trace_result {
  scheduler_stats stats;
  std::vector<std::vector<u64>> outputs;  // one polynomial per job, trace order
  std::vector<std::pair<unsigned, std::size_t>> dispatches;
};

merge_trace_result run_merge_trace(bool merge_on) {
  trace_backend::config cfg;
  cfg.cost_per_dispatch = 1000;
  cfg.block_first = true;
  auto owned = std::make_unique<trace_backend>(cfg);
  auto* rec = owned.get();
  auto opts = small_sram().with_threads(2);
  opts.merge_streams = merge_on;
  context ctx(std::move(opts), std::move(owned));
  common::xoshiro256ss rng(91);  // same seed both runs: identical inputs

  std::vector<job_id> ids;
  (void)ctx.submit(ntt_job{.coeffs = random_poly(32, 193, rng)});
  ctx.flush();  // the blocker: holds the pseudo-resource in the backend

  std::vector<stream> streams;
  for (int t = 0; t < 3; ++t) {
    streams.push_back(ctx.stream({}));
    for (int j = 0; j < 2; ++j) {
      ids.push_back(streams.back().submit(ntt_job{.coeffs = random_poly(32, 193, rng)}));
    }
    streams.back().flush();  // three compatible groups pile up in ready order
  }
  rec->release();
  ctx.sync();

  merge_trace_result out;
  out.stats = ctx.stats();
  for (const job_id id : ids) {
    auto r = ctx.try_wait(id);
    EXPECT_TRUE(r.has_value());
    EXPECT_EQ(r->status, job_status::ok);
    out.outputs.push_back(r->outputs.at(0));
  }
  out.dispatches = rec->dispatches();
  return out;
}

TEST(CrossStreamBatching, MergesContendedGroupsCuttingMakespanWithIdenticalOutputs) {
  const auto unmerged = run_merge_trace(false);
  const auto merged = run_merge_trace(true);

  // Off: the blocker plus one dispatch per tenant group, back to back on
  // the shared resource.  Counters stay zero — the legacy scheduler.
  EXPECT_EQ(unmerged.stats.groups_merged, 0u);
  EXPECT_EQ(unmerged.dispatches.size(), 4u);
  EXPECT_EQ(unmerged.stats.wall_cycles, 4000u);

  // On: the first tenant group absorbs the other two ready groups — one
  // merged dispatch carrying all six jobs after the blocker.
  EXPECT_EQ(merged.stats.groups_merged, 2u);
  ASSERT_EQ(merged.dispatches.size(), 2u);
  EXPECT_EQ(merged.dispatches[1].second, 6u) << "all three tenants share one dispatch";
  EXPECT_EQ(merged.stats.wall_cycles, 2000u);
  EXPECT_LT(merged.stats.wall_cycles, unmerged.stats.wall_cycles)
      << "merged dispatch must strictly lower the contended makespan";

  // Batching moves work, never results: every tenant's jobs come back
  // bit-identical, routed to the same ids.
  EXPECT_EQ(merged.outputs, unmerged.outputs);
  EXPECT_EQ(merged.stats.jobs_completed, unmerged.stats.jobs_completed);
  EXPECT_EQ(merged.stats.deadline_misses, 0u);
}

TEST(CrossStreamBatching, MergedOutputsBitIdenticalOnTheSramBackend) {
  // Same workload through the real in-SRAM model with merging off and on:
  // wait() must hand back byte-identical polynomials either way.
  const auto run = [](bool merge_on) {
    auto opts = small_sram().with_threads(2);
    opts.merge_streams = merge_on;
    context ctx(std::move(opts));
    common::xoshiro256ss rng(92);
    auto s1 = ctx.stream({});
    auto s2 = ctx.stream({});
    std::vector<job_id> ids;
    for (int j = 0; j < 3; ++j) {
      ids.push_back(s1.submit(ntt_job{.coeffs = random_poly(32, 193, rng)}));
      ids.push_back(s2.submit(
          polymul_job{random_poly(32, 193, rng), random_poly(32, 193, rng)}));
    }
    ctx.flush();  // both groups admitted before any scheduling decision
    std::vector<std::vector<std::vector<u64>>> outs;
    for (const job_id id : ids) outs.push_back(ctx.wait(id).outputs);
    return std::make_pair(std::move(outs), ctx.stats());
  };

  const auto [plain, plain_stats] = run(false);
  const auto [merged, merged_stats] = run(true);
  EXPECT_EQ(plain, merged);
  EXPECT_EQ(plain_stats.groups_merged, 0u);
  EXPECT_GT(merged_stats.groups_merged, 0u) << "the contended flush must actually merge";
}

TEST(CrossStreamBatching, OptedOutStreamsNeverShareADispatch) {
  trace_backend::config cfg;
  cfg.cost_per_dispatch = 1000;
  cfg.block_first = true;
  auto owned = std::make_unique<trace_backend>(cfg);
  auto* rec = owned.get();
  auto opts = small_sram().with_threads(2);
  opts.merge_streams = true;
  context ctx(std::move(opts), std::move(owned));
  common::xoshiro256ss rng(93);

  (void)ctx.submit(ntt_job{.coeffs = random_poly(32, 193, rng)});
  ctx.flush();  // blocker

  auto host = ctx.stream({});
  auto loner = ctx.stream({.no_merge = true});
  (void)host.submit(ntt_job{.coeffs = random_poly(32, 193, rng)});
  (void)loner.submit(ntt_job{.coeffs = random_poly(32, 193, rng)});
  host.flush();
  loner.flush();
  rec->release();
  ctx.sync();

  EXPECT_EQ(ctx.stats().groups_merged, 0u);
  EXPECT_EQ(rec->dispatches().size(), 3u) << "the opted-out group keeps its own dispatch";
}

TEST(CrossStreamBatching, RlweGroupsAreNeverMergeEligible) {
  // R-LWE plans run a staged multi-dispatch flow over shared intermediates;
  // even with merging on they must neither absorb nor be absorbed.
  auto opts = small_sram().with_threads(2);
  opts.merge_streams = true;
  context ctx(std::move(opts));
  common::xoshiro256ss rng(94);

  auto s1 = ctx.stream({});
  auto s2 = ctx.stream({});
  const job_id rlwe_id = s1.submit(rlwe_encrypt_job{
      .message = std::vector<u64>(32, 1), .eta = 2, .seed = 7});
  const job_id ntt_id = s2.submit(ntt_job{.coeffs = random_poly(32, 193, rng)});
  ctx.flush();
  EXPECT_EQ(ctx.wait(rlwe_id).status, job_status::ok);
  EXPECT_EQ(ctx.wait(ntt_id).status, job_status::ok);
  EXPECT_EQ(ctx.stats().groups_merged, 0u);
}

// ---- budget-based preemptive yielding ---------------------------------------

// The acceptance trace: a no-deadline bulk tenant (8 jobs, 1000 cycles
// each) starts first and holds the shared resource; a deadline tenant
// (budget 4000, measured from its flush at vtime 0) arrives while the bulk
// group's first dispatch is still in the backend.
//   Non-preemptive (chunk_budget 0): the bulk dispatch is indivisible —
//     the tenant starts at 8000 and finishes at 9000, a miss.
//   Preemptive (chunk_budget 2): the bulk group yields after its first
//     two-job chunk (end 2000); the tenant finishes at 3000, a meet, and
//     the bulk remainder resumes.
struct preempt_trace_result {
  scheduler_stats stats;
  std::vector<std::pair<unsigned, std::size_t>> dispatches;
  bool tenant_missed = false;
};

preempt_trace_result run_preempt_trace(u64 bulk_chunk_budget) {
  trace_backend::config cfg;
  cfg.cost_per_job = 1000;
  cfg.block_first = true;
  auto owned = std::make_unique<trace_backend>(cfg);
  auto* rec = owned.get();
  context ctx(small_sram().with_schedule(schedule_policy::edf).with_threads(2),
              std::move(owned));
  common::xoshiro256ss rng(95);

  auto bulk = ctx.stream({.chunk_budget = bulk_chunk_budget});
  std::vector<job_id> bulk_ids;
  for (int j = 0; j < 8; ++j) {
    bulk_ids.push_back(bulk.submit(ntt_job{.coeffs = random_poly(32, 193, rng)}));
  }
  bulk.flush();  // first chunk enters the backend and blocks

  auto urgent = ctx.stream({.deadline_cycles = 4000});
  const job_id urgent_id = urgent.submit(ntt_job{.coeffs = random_poly(32, 193, rng)});
  urgent.flush();  // arrives mid-execution; EDF orders it before the bulk
  rec->release();
  ctx.sync();

  preempt_trace_result out;
  out.stats = ctx.stats();
  out.dispatches = rec->dispatches();
  const auto r = ctx.try_wait(urgent_id);
  EXPECT_TRUE(r.has_value());
  out.tenant_missed = r->deadline_missed;
  for (const job_id id : bulk_ids) {
    const auto br = ctx.try_wait(id);
    EXPECT_TRUE(br.has_value());
    EXPECT_EQ(br->status, job_status::ok);
  }
  return out;
}

TEST(PreemptiveYield, PreemptiveEdfStrictlyBeatsNonPreemptiveEdfOnMisses) {
  const auto nonpreempt = run_preempt_trace(/*bulk_chunk_budget=*/0);
  const auto preempt = run_preempt_trace(/*bulk_chunk_budget=*/2);

  // Indivisible bulk dispatch: the tenant overruns its budget.
  EXPECT_EQ(nonpreempt.stats.preemption_yields, 0u);
  EXPECT_EQ(nonpreempt.stats.deadline_misses, 1u);
  EXPECT_TRUE(nonpreempt.tenant_missed);

  // Chunked bulk dispatch: exactly one yield hands the resource over.
  EXPECT_EQ(preempt.stats.preemption_yields, 1u);
  EXPECT_EQ(preempt.stats.deadline_misses, 0u);
  EXPECT_FALSE(preempt.tenant_missed);
  EXPECT_LT(preempt.stats.deadline_misses, nonpreempt.stats.deadline_misses)
      << "preemptive EDF must strictly reduce misses on this trace";

  // Dispatch shape: bulk chunk, the preempting tenant, then the remainder
  // in chunks — the tenant's dispatch is second, not fifth.
  ASSERT_EQ(preempt.dispatches.size(), 5u);
  EXPECT_EQ(preempt.dispatches[0].second, 2u);
  EXPECT_EQ(preempt.dispatches[1].second, 1u) << "the deadline tenant preempts after chunk 1";
  ASSERT_EQ(nonpreempt.dispatches.size(), 2u);
  EXPECT_EQ(nonpreempt.dispatches[0].second, 8u) << "without a budget the bulk runs whole";
}

TEST(PreemptiveYield, ChunkBudgetAloneDoesNotChangeResultsOrMissAccounting) {
  // No contender arrives: a chunked group runs its chunks back to back with
  // no yields, and outputs match the unchunked run bit-for-bit.
  const auto run = [](u64 budget) {
    auto opts = small_sram().with_threads(2);
    context ctx(std::move(opts));
    common::xoshiro256ss rng(96);
    auto s = ctx.stream({.chunk_budget = budget});
    std::vector<job_id> ids;
    for (int j = 0; j < 5; ++j) {
      ids.push_back(s.submit(ntt_job{.coeffs = random_poly(32, 193, rng)}));
    }
    s.flush();
    std::vector<std::vector<std::vector<u64>>> outs;
    for (const job_id id : ids) outs.push_back(ctx.wait(id).outputs);
    return std::make_pair(std::move(outs), ctx.stats());
  };

  const auto [whole, whole_stats] = run(0);
  const auto [chunked, chunked_stats] = run(2);
  EXPECT_EQ(whole, chunked);
  EXPECT_EQ(chunked_stats.preemption_yields, 0u);
  EXPECT_EQ(chunked_stats.deadline_misses, 0u);
  EXPECT_GT(chunked_stats.batches, whole_stats.batches)
      << "the budget must actually split the dispatch";
}

TEST(PreemptiveYield, BackendsHonorChunkBudgetDefensively) {
  // The backend-side guard: an oversized batch handed down with a budget
  // splits into sub-dispatches even without the scheduler's chunk loop.
  for (const backend_kind kind :
       {backend_kind::sram, backend_kind::cpu, backend_kind::reference}) {
    auto opts = small_sram().with_backend(kind);
    opts.validate();
    auto be = make_backend(opts);
    common::xoshiro256ss rng(97);
    std::vector<std::vector<u64>> polys;
    for (int j = 0; j < 5; ++j) polys.push_back(random_poly(32, 193, rng));

    dispatch_hints plain;
    batch_result whole = be->run_ntt(polys, transform_dir::forward, plain);
    dispatch_hints budgeted;
    budgeted.chunk_budget = 2;
    batch_result split = be->run_ntt(polys, transform_dir::forward, budgeted);

    EXPECT_EQ(whole.outputs, split.outputs) << to_string(kind);
    EXPECT_GE(split.waves, whole.waves) << to_string(kind);
  }
}

}  // namespace
}  // namespace bpntt::runtime
