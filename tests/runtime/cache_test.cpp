// Runtime cache tests: the operand_cache unit surface (LRU bound, exact
// keying, invalidation) and the LRU-bounded per-modulus retarget caches of
// all three backends (eviction, rebuild-on-reuse, the probe).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/xoshiro.h"
#include "nttmath/primes.h"
#include "runtime/context.h"
#include "runtime/operand_cache.h"

namespace bpntt::runtime {
namespace {

constexpr u64 kOrder = 32;

runtime_options small_options(backend_kind kind) {
  return runtime_options()
      .with_ring(kOrder, 3137, 13)
      .with_backend(kind)
      .with_array(64, 39)
      .with_banks(2)
      .with_threads(2);
}

std::vector<u64> poly_of(u64 seed) {
  common::xoshiro256ss rng(seed);
  std::vector<u64> p(kOrder);
  for (auto& c : p) c = rng.below(3137);
  return p;
}

// ---- operand_cache unit ----------------------------------------------------

TEST(OperandCacheUnit, LookupInsertAndCounters) {
  operand_cache cache(4);
  const auto a = poly_of(1);
  const auto fa = poly_of(2);

  EXPECT_FALSE(cache.lookup(97, core::transform_dir::forward, a).has_value());
  EXPECT_EQ(cache.misses(), 1u);
  cache.insert(97, core::transform_dir::forward, a, fa);
  const auto hit = cache.lookup(97, core::transform_dir::forward, a);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, fa);
  EXPECT_EQ(cache.hits(), 1u);

  // The key is (operand, ring, direction): same operand under another ring
  // or direction is a distinct entry.
  EXPECT_FALSE(cache.lookup(193, core::transform_dir::forward, a).has_value());
  EXPECT_FALSE(cache.lookup(97, core::transform_dir::inverse, a).has_value());
  EXPECT_EQ(cache.size(), 1u);
}

TEST(OperandCacheUnit, LruEvictsTheColdestEntry) {
  operand_cache cache(2);
  const auto a = poly_of(1), b = poly_of(2), c = poly_of(3);
  cache.insert(97, core::transform_dir::forward, a, poly_of(11));
  cache.insert(97, core::transform_dir::forward, b, poly_of(12));
  // Touch a so b becomes the LRU victim.
  (void)cache.lookup(97, core::transform_dir::forward, a);
  cache.insert(97, core::transform_dir::forward, c, poly_of(13));
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_TRUE(cache.lookup(97, core::transform_dir::forward, a).has_value());
  EXPECT_TRUE(cache.lookup(97, core::transform_dir::forward, c).has_value());
  EXPECT_FALSE(cache.lookup(97, core::transform_dir::forward, b).has_value());
}

TEST(OperandCacheUnit, InvalidateAndClear) {
  operand_cache cache(8);
  const auto a = poly_of(1), b = poly_of(2);
  cache.insert(97, core::transform_dir::forward, a, poly_of(11));
  cache.insert(193, core::transform_dir::forward, a, poly_of(12));
  cache.insert(97, core::transform_dir::inverse, a, poly_of(13));
  cache.insert(97, core::transform_dir::forward, b, poly_of(14));
  ASSERT_EQ(cache.size(), 4u);

  // One operand, every ring and direction.
  cache.invalidate(a);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_TRUE(cache.lookup(97, core::transform_dir::forward, b).has_value());

  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_GT(cache.hits() + cache.misses(), 0u) << "counters are cumulative across clear()";
}

TEST(OperandCacheUnit, ZeroCapacityNeverStores) {
  operand_cache cache(0);
  const auto a = poly_of(1);
  cache.insert(97, core::transform_dir::forward, a, poly_of(11));
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.lookup(97, core::transform_dir::forward, a).has_value());
}

// ---- retarget cache bound --------------------------------------------------

class RetargetCacheBound : public ::testing::TestWithParam<backend_kind> {};

TEST_P(RetargetCacheBound, EvictsLeastRecentlyDispatchedModulus) {
  // A bound of 2 with three limb primes cycling through: the cache never
  // exceeds its limit, every dispatch still answers correctly (evicted
  // moduli rebuild), and the probe observes the occupancy.
  auto opts = small_options(GetParam()).with_retarget_cache(2);
  context ctx(opts);
  // Three 12-bit NTT-friendly primes for n = 32 (q == 1 mod 64).
  const std::vector<u64> primes = math::first_k_ntt_primes(12, kOrder, 3, true);
  const auto poly = poly_of(42);

  std::vector<std::vector<u64>> cold(primes.size());
  for (std::size_t i = 0; i < primes.size(); ++i) {
    std::vector<u64> in = poly;
    for (auto& c : in) c %= primes[i];
    const auto id = ctx.rns_stream(primes[i]).submit(ntt_job{.coeffs = in});
    cold[i] = ctx.wait(id).outputs.front();
    EXPECT_LE(ctx.retarget_cache_size(), 2u) << "after cold dispatch " << i;
  }
  EXPECT_EQ(ctx.retarget_cache_size(), 2u);

  // Re-dispatching the evicted first prime rebuilds it bit-identically and
  // stays inside the bound.
  std::vector<u64> in = poly;
  for (auto& c : in) c %= primes[0];
  const auto id = ctx.rns_stream(primes[0]).submit(ntt_job{.coeffs = in});
  EXPECT_EQ(ctx.wait(id).outputs.front(), cold[0]);
  EXPECT_EQ(ctx.retarget_cache_size(), 2u);
}

INSTANTIATE_TEST_SUITE_P(Backends, RetargetCacheBound,
                         ::testing::Values(backend_kind::sram, backend_kind::cpu,
                                           backend_kind::reference),
                         [](const auto& info) { return std::string(to_string(info.param)); });

TEST(RetargetCacheBound, ZeroLimitIsRejectedUpFront) {
  auto opts = small_options(backend_kind::sram).with_retarget_cache(0);
  EXPECT_THROW(context ctx(opts), std::invalid_argument);
}

TEST(RetargetCacheBound, PrimaryRingDispatchesDoNotOccupyTheCache) {
  context ctx(small_options(backend_kind::sram));
  const auto id = ctx.submit(ntt_job{.coeffs = poly_of(7)});
  (void)ctx.wait(id);
  EXPECT_EQ(ctx.retarget_cache_size(), 0u);
}

}  // namespace
}  // namespace bpntt::runtime
