// Runtime cache tests: the residency_manager unit surface (row-budget
// bound, exact keying, LRU eviction under capacity pressure, pinning,
// invalidation) and the LRU-bounded per-modulus retarget caches of all
// three backends (eviction, rebuild-on-reuse, the probe).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/xoshiro.h"
#include "nttmath/primes.h"
#include "runtime/context.h"
#include "runtime/residency_manager.h"

namespace bpntt::runtime {
namespace {

constexpr u64 kOrder = 32;

// A host-shaped manager (one single-subarray pseudo-bank) with room for
// exactly `entries` operands of order kOrder — the residency equivalent of
// the old operand_cache(entries).
residency_manager::config slots(unsigned entries) {
  residency_manager::config cfg;
  cfg.banks = 1;
  cfg.channels = 1;
  cfg.data_subarrays = 1;
  cfg.rows_per_subarray = entries * static_cast<unsigned>(kOrder);
  cfg.rows_per_operand = static_cast<unsigned>(kOrder);
  return cfg;
}

runtime_options small_options(backend_kind kind) {
  return runtime_options()
      .with_ring(kOrder, 3137, 13)
      .with_backend(kind)
      .with_array(64, 39)
      .with_banks(2)
      .with_threads(2);
}

std::vector<u64> poly_of(u64 seed) {
  common::xoshiro256ss rng(seed);
  std::vector<u64> p(kOrder);
  for (auto& c : p) c = rng.below(3137);
  return p;
}

// ---- residency_manager unit ------------------------------------------------

TEST(ResidencyManagerUnit, LookupInsertAndCounters) {
  residency_manager cache(slots(4));
  const auto a = poly_of(1);
  const auto fa = poly_of(2);

  EXPECT_FALSE(cache.lookup(97, core::transform_dir::forward, a).has_value());
  EXPECT_EQ(cache.misses(), 1u);
  cache.insert(97, core::transform_dir::forward, a, fa);
  const auto hit = cache.lookup(97, core::transform_dir::forward, a);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->transformed, fa);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.resident_rows(), kOrder);

  // The key is (operand, ring, direction): same operand under another ring
  // or direction is a distinct entry.
  EXPECT_FALSE(cache.lookup(193, core::transform_dir::forward, a).has_value());
  EXPECT_FALSE(cache.lookup(97, core::transform_dir::inverse, a).has_value());
  EXPECT_EQ(cache.size(), 1u);
}

TEST(ResidencyManagerUnit, CapacityPressureEvictsTheColdestEntry) {
  residency_manager cache(slots(2));
  const auto a = poly_of(1), b = poly_of(2), c = poly_of(3);
  cache.insert(97, core::transform_dir::forward, a, poly_of(11));
  cache.insert(97, core::transform_dir::forward, b, poly_of(12));
  EXPECT_EQ(cache.resident_rows(), cache.capacity_rows());
  // Touch a so b becomes the LRU victim when c needs rows.
  (void)cache.lookup(97, core::transform_dir::forward, a);
  cache.insert(97, core::transform_dir::forward, c, poly_of(13));
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_LE(cache.resident_rows(), cache.capacity_rows());
  EXPECT_TRUE(cache.lookup(97, core::transform_dir::forward, a).has_value());
  EXPECT_TRUE(cache.lookup(97, core::transform_dir::forward, c).has_value());
  EXPECT_FALSE(cache.lookup(97, core::transform_dir::forward, b).has_value());
}

TEST(ResidencyManagerUnit, InvalidateAndClearReportDropCounts) {
  residency_manager cache(slots(8));
  const auto a = poly_of(1), b = poly_of(2);
  cache.insert(97, core::transform_dir::forward, a, poly_of(11));
  cache.insert(193, core::transform_dir::forward, a, poly_of(12));
  cache.insert(97, core::transform_dir::inverse, a, poly_of(13));
  cache.insert(97, core::transform_dir::forward, b, poly_of(14));
  ASSERT_EQ(cache.size(), 4u);
  ASSERT_EQ(cache.resident_rows(), 4 * kOrder);

  // One operand, every ring and direction — and the rows come back.
  EXPECT_EQ(cache.invalidate(a), 3u);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.resident_rows(), kOrder);
  EXPECT_TRUE(cache.lookup(97, core::transform_dir::forward, b).has_value());

  EXPECT_EQ(cache.clear(), 1u);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.resident_rows(), 0u);
  EXPECT_GT(cache.hits() + cache.misses(), 0u) << "counters are cumulative across clear()";
}

TEST(ResidencyManagerUnit, ZeroBudgetNeverStores) {
  residency_manager cache(slots(0));
  const auto a = poly_of(1);
  cache.insert(97, core::transform_dir::forward, a, poly_of(11));
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.resident_rows(), 0u);
  EXPECT_FALSE(cache.lookup(97, core::transform_dir::forward, a).has_value());
}

TEST(ResidencyManagerUnit, PinnedEntriesSurviveCapacityPressure) {
  residency_manager cache(slots(2));
  const auto a = poly_of(1), b = poly_of(2), c = poly_of(3), d = poly_of(4);
  cache.pin(a);
  cache.insert(97, core::transform_dir::forward, a, poly_of(11));
  cache.insert(97, core::transform_dir::forward, b, poly_of(12));
  // a is the LRU but pinned: pressure from c must take b instead.
  cache.insert(97, core::transform_dir::forward, c, poly_of(13));
  EXPECT_TRUE(cache.lookup(97, core::transform_dir::forward, a).has_value());
  EXPECT_FALSE(cache.lookup(97, core::transform_dir::forward, b).has_value());
  EXPECT_TRUE(cache.lookup(97, core::transform_dir::forward, c).has_value());

  // Unpinning rejoins the pressure class.
  cache.unpin(a);
  (void)cache.lookup(97, core::transform_dir::forward, c);  // a becomes LRU
  cache.insert(97, core::transform_dir::forward, d, poly_of(14));
  EXPECT_FALSE(cache.lookup(97, core::transform_dir::forward, a).has_value());
}

TEST(ResidencyManagerUnit, ExplicitInvalidationOverridesThePin) {
  residency_manager cache(slots(4));
  const auto a = poly_of(1);
  cache.pin(a);
  cache.insert(97, core::transform_dir::forward, a, poly_of(11));
  EXPECT_EQ(cache.invalidate(a), 1u) << "invalidate() drops pinned entries";
  EXPECT_EQ(cache.size(), 0u);
  // The pin registration was retired with the operand: a re-insert is
  // unpinned and evictable again.
  cache.insert(97, core::transform_dir::forward, a, poly_of(11));
  const auto b = poly_of(2), c = poly_of(3), d = poly_of(4), e = poly_of(5);
  cache.insert(97, core::transform_dir::forward, b, poly_of(12));
  cache.insert(97, core::transform_dir::forward, c, poly_of(13));
  cache.insert(97, core::transform_dir::forward, d, poly_of(14));
  cache.insert(97, core::transform_dir::forward, e, poly_of(15));
  EXPECT_FALSE(cache.lookup(97, core::transform_dir::forward, a).has_value());
}

TEST(ResidencyManagerUnit, LimbHomesRoundRobinAcrossChannels) {
  // Four banks on two channels: limb primes land on channel-leading banks
  // 0, 2, 0, 2, ... in first-seen order, and banks_holding reports where a
  // limb's operands actually live.
  residency_manager::config cfg;
  cfg.banks = 4;
  cfg.channels = 2;
  cfg.data_subarrays = 1;
  cfg.rows_per_subarray = 4 * static_cast<unsigned>(kOrder);
  cfg.rows_per_operand = static_cast<unsigned>(kOrder);
  residency_manager cache(cfg);
  const auto a = poly_of(1), b = poly_of(2);
  cache.insert(97, core::transform_dir::forward, a, poly_of(11));
  cache.insert(193, core::transform_dir::forward, b, poly_of(12));
  EXPECT_EQ(cache.banks_holding(97), std::vector<unsigned>{0u});
  EXPECT_EQ(cache.banks_holding(193), std::vector<unsigned>{2u});
  // An explicit bank hint (the executing dispatch's bank) overrides the
  // limb home.
  const auto c = poly_of(3);
  cache.insert(97, core::transform_dir::forward, c, poly_of(13), 3u);
  EXPECT_EQ(cache.banks_holding(97), (std::vector<unsigned>{0u, 3u}));
  const auto h = cache.lookup(97, core::transform_dir::forward, c);
  ASSERT_TRUE(h.has_value());
  EXPECT_EQ(h->home_bank, 3u);
}

// ---- retarget cache bound --------------------------------------------------

class RetargetCacheBound : public ::testing::TestWithParam<backend_kind> {};

TEST_P(RetargetCacheBound, EvictsLeastRecentlyDispatchedModulus) {
  // A bound of 2 with three limb primes cycling through: the cache never
  // exceeds its limit, every dispatch still answers correctly (evicted
  // moduli rebuild), and the probe observes the occupancy.
  auto opts = small_options(GetParam()).with_retarget_cache(2);
  context ctx(opts);
  // Three 12-bit NTT-friendly primes for n = 32 (q == 1 mod 64).
  const std::vector<u64> primes = math::first_k_ntt_primes(12, kOrder, 3, true);
  const auto poly = poly_of(42);

  std::vector<std::vector<u64>> cold(primes.size());
  for (std::size_t i = 0; i < primes.size(); ++i) {
    std::vector<u64> in = poly;
    for (auto& c : in) c %= primes[i];
    const auto id = ctx.rns_stream(primes[i]).submit(ntt_job{.coeffs = in});
    cold[i] = ctx.wait(id).outputs.front();
    EXPECT_LE(ctx.retarget_cache_size(), 2u) << "after cold dispatch " << i;
  }
  EXPECT_EQ(ctx.retarget_cache_size(), 2u);

  // Re-dispatching the evicted first prime rebuilds it bit-identically and
  // stays inside the bound.
  std::vector<u64> in = poly;
  for (auto& c : in) c %= primes[0];
  const auto id = ctx.rns_stream(primes[0]).submit(ntt_job{.coeffs = in});
  EXPECT_EQ(ctx.wait(id).outputs.front(), cold[0]);
  EXPECT_EQ(ctx.retarget_cache_size(), 2u);
}

INSTANTIATE_TEST_SUITE_P(Backends, RetargetCacheBound,
                         ::testing::Values(backend_kind::sram, backend_kind::cpu,
                                           backend_kind::reference),
                         [](const auto& info) { return std::string(to_string(info.param)); });

TEST(RetargetCacheBound, ZeroLimitIsRejectedUpFront) {
  auto opts = small_options(backend_kind::sram).with_retarget_cache(0);
  EXPECT_THROW(context ctx(opts), std::invalid_argument);
}

TEST(RetargetCacheBound, PrimaryRingDispatchesDoNotOccupyTheCache) {
  context ctx(small_options(backend_kind::sram));
  const auto id = ctx.submit(ntt_job{.coeffs = poly_of(7)});
  (void)ctx.wait(id);
  EXPECT_EQ(ctx.retarget_cache_size(), 0u);
}

}  // namespace
}  // namespace bpntt::runtime
