#include "runtime/executor.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace bpntt::runtime {
namespace {

TEST(Executor, ResolvesThreadCount) {
  executor three(3);
  EXPECT_EQ(three.thread_count(), 3u);
  executor solo(1);
  EXPECT_EQ(solo.thread_count(), 1u);
  executor autosized(0);
  EXPECT_GE(autosized.thread_count(), 1u);
}

TEST(Executor, ParallelForCoversEveryIndexExactlyOnce) {
  executor pool(4);
  constexpr std::size_t n = 1000;
  std::vector<std::atomic<int>> hits(n);
  pool.parallel_for(n, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(Executor, ParallelForWritesDisjointSlotsDeterministically) {
  executor pool(4);
  std::vector<int> out(257, 0);
  pool.parallel_for(out.size(), [&](std::size_t i) { out[i] = static_cast<int>(i) * 3; });
  for (std::size_t i = 0; i < out.size(); ++i) ASSERT_EQ(out[i], static_cast<int>(i) * 3);
}

TEST(Executor, ParallelForRethrowsButStillRunsEveryIndex) {
  executor pool(4);
  std::atomic<int> ran{0};
  EXPECT_THROW(pool.parallel_for(64,
                                 [&](std::size_t i) {
                                   ran.fetch_add(1);
                                   if (i % 7 == 3) throw std::runtime_error("item failed");
                                 }),
               std::runtime_error);
  // Items are independent: the failure of one must not skip the others.
  EXPECT_EQ(ran.load(), 64);
}

TEST(Executor, ParallelForFromInsidePoolTaskCannotDeadlock) {
  // A pool of one thread: the drain-style task occupies the only worker and
  // fans out again.  The caller participates in its own parallel_for, so
  // this completes without any free worker.
  executor pool(1);
  std::atomic<int> sum{0};
  std::atomic<bool> finished{false};
  pool.enqueue([&] {
    pool.parallel_for(16, [&](std::size_t i) { sum.fetch_add(static_cast<int>(i)); });
    finished.store(true);
  });
  // Drain by destroying a second scope? Simpler: spin-wait bounded by the
  // test timeout; the task must complete on its own.
  while (!finished.load()) std::this_thread::yield();
  EXPECT_EQ(sum.load(), 120);  // 0 + 1 + ... + 15
}

TEST(Executor, DestructorDrainsQueuedTasks) {
  std::atomic<int> ran{0};
  {
    executor pool(2);
    for (int i = 0; i < 32; ++i) {
      pool.enqueue([&] { ran.fetch_add(1); });
    }
  }  // join: every enqueued task still runs
  EXPECT_EQ(ran.load(), 32);
}

TEST(Executor, FreeParallelForFallsBackToSerialWithoutPool) {
  std::vector<int> out(10, 0);
  parallel_for(nullptr, out.size(), [&](std::size_t i) { out[i] = 1; });
  EXPECT_EQ(std::accumulate(out.begin(), out.end(), 0), 10);
}

TEST(Executor, ParallelForHandlesEmptyAndSingleton) {
  executor pool(2);
  int calls = 0;
  pool.parallel_for(0, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  pool.parallel_for(1, [&](std::size_t i) {
    EXPECT_EQ(i, 0u);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

}  // namespace
}  // namespace bpntt::runtime
