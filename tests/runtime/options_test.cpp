#include "runtime/options.h"

#include <gtest/gtest.h>

namespace bpntt::runtime {
namespace {

TEST(RuntimeOptions, BuilderCollapsesAllKnobs) {
  core::compile_options mc;
  mc.fuse_pairs = false;
  mc.ripple_check_period = 4;
  const auto opts = runtime_options()
                        .with_ring(128, 3329, 13)
                        .with_backend(backend_kind::cpu)
                        .with_banks(3)
                        .with_subarrays(8)
                        .with_array(128, 512)
                        .with_microcode(mc)
                        .with_cpu_model(2.5, 10.0)
                        .with_threads(6);
  EXPECT_EQ(opts.params.n, 128u);
  EXPECT_EQ(opts.params.q, 3329u);
  EXPECT_EQ(opts.params.k, 13u);
  EXPECT_EQ(opts.backend, backend_kind::cpu);
  EXPECT_EQ(opts.topo.channels, 1u);  // with_banks is the one-channel shorthand
  EXPECT_EQ(opts.topo.total_banks(), 3u);
  EXPECT_EQ(opts.topo.subarrays, 8u);
  EXPECT_EQ(opts.array.data_rows, 128u);
  EXPECT_EQ(opts.array.cols, 512u);
  EXPECT_FALSE(opts.array.microcode.fuse_pairs);
  EXPECT_DOUBLE_EQ(opts.cpu_freq_ghz, 2.5);
  EXPECT_EQ(opts.threads, 6u);
  // The derived per-bank config carries the same array knobs.
  const auto bank = opts.bank();
  EXPECT_EQ(bank.subarrays, 8u);
  EXPECT_EQ(bank.array.cols, 512u);
  EXPECT_EQ(bank.array.microcode.ripple_check_period, 4u);
}

TEST(RuntimeOptions, ValidateAcceptsEveryBackendAtDefaults) {
  for (const auto kind : {backend_kind::sram, backend_kind::cpu, backend_kind::reference}) {
    auto opts = runtime_options().with_ring(256, 7681, 14).with_backend(kind);
    EXPECT_NO_THROW(opts.validate()) << to_string(kind);
  }
}

TEST(RuntimeOptions, ValidateRejectsSyntheticParams) {
  auto opts = runtime_options();  // default q = 0 (synthetic)
  EXPECT_THROW(opts.validate(), std::invalid_argument);
}

TEST(RuntimeOptions, ValidateRejectsBadSramShapes) {
  // Polynomial larger than the subarray.
  auto big = runtime_options().with_ring(512, 12289, 16);
  EXPECT_THROW(big.validate(), std::invalid_argument);
  // No banks.
  auto none = runtime_options().with_ring(256, 7681, 14).with_banks(0);
  EXPECT_THROW(none.validate(), std::invalid_argument);
  // A lone subarray cannot host both CTRL/CMD and compute.
  auto lone = runtime_options().with_ring(256, 7681, 14).with_subarrays(1);
  EXPECT_THROW(lone.validate(), std::invalid_argument);
}

TEST(RuntimeOptions, ValidateRejectsAbsurdPoolSizes) {
  auto opts = runtime_options().with_ring(256, 7681, 14).with_threads(257);
  EXPECT_THROW(opts.validate(), std::invalid_argument);
  EXPECT_NO_THROW(opts.with_threads(0).validate());    // auto-sized
  EXPECT_NO_THROW(opts.with_threads(256).validate());  // ceiling
}

TEST(RuntimeOptions, ValidateRejectsBadCpuModelWithPreciseMessages) {
  // Non-positive model constants would yield nonsense cycle/energy
  // accounting; they are rejected for *every* backend with a message naming
  // the exact knob.
  for (const auto kind : {backend_kind::cpu, backend_kind::sram, backend_kind::reference}) {
    auto freq = runtime_options().with_ring(256, 7681, 14).with_backend(kind);
    freq.cpu_freq_ghz = 0.0;
    try {
      freq.validate();
      FAIL() << "zero cpu_freq_ghz must throw (" << to_string(kind) << ")";
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find("cpu_freq_ghz must be > 0"), std::string::npos)
          << e.what();
    }
    auto power = runtime_options().with_ring(256, 7681, 14).with_backend(kind);
    power.cpu_power_w = -2.5;
    try {
      power.validate();
      FAIL() << "negative cpu_power_w must throw (" << to_string(kind) << ")";
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find("cpu_power_w must be > 0"), std::string::npos)
          << e.what();
    }
  }
}

TEST(RuntimeOptions, TopologyBuilderAndValidation) {
  const auto opts = runtime_options().with_ring(256, 7681, 14).with_topology(2, 3, 4);
  EXPECT_EQ(opts.topo.channels, 2u);
  EXPECT_EQ(opts.topo.banks_per_channel, 3u);
  EXPECT_EQ(opts.topo.total_banks(), 6u);
  EXPECT_EQ(opts.topo.first_bank(1), 3u);
  EXPECT_NO_THROW(opts.validate());

  // with_banks after with_topology collapses back to one channel.
  auto flat = runtime_options(opts).with_banks(5);
  EXPECT_EQ(flat.topo.channels, 1u);
  EXPECT_EQ(flat.topo.total_banks(), 5u);

  EXPECT_THROW(runtime_options().with_ring(256, 7681, 14).with_topology(0, 2, 4).validate(),
               std::invalid_argument);
  EXPECT_THROW(runtime_options().with_ring(256, 7681, 14).with_topology(2, 0, 4).validate(),
               std::invalid_argument);
  // 16 channels x 8 banks = 128 > the 64-bank ceiling.
  EXPECT_THROW(runtime_options().with_ring(256, 7681, 14).with_topology(16, 8, 4).validate(),
               std::invalid_argument);
}

TEST(RuntimeOptions, ForParamSetPicksTransformFlavour) {
  // Standardized Kyber has no full 256-point negacyclic NTT: incomplete.
  const auto kyber = runtime_options::for_param_set(crypto::kyber());
  EXPECT_TRUE(kyber.params.incomplete);
  EXPECT_EQ(kyber.params.n, 256u);
  EXPECT_GE(kyber.params.k, 13u);
  EXPECT_NO_THROW(kyber.validate());
  // The round-1 prime supports the complete transform.
  const auto compat = runtime_options::for_param_set(crypto::kyber_compat());
  EXPECT_FALSE(compat.params.incomplete);
  EXPECT_NO_THROW(compat.validate());
}

TEST(RuntimeOptions, BackendKindNames) {
  EXPECT_STREQ(to_string(backend_kind::sram), "sram");
  EXPECT_STREQ(to_string(backend_kind::cpu), "cpu");
  EXPECT_STREQ(to_string(backend_kind::reference), "reference");
}

}  // namespace
}  // namespace bpntt::runtime
