#include "runtime/options.h"

#include <gtest/gtest.h>

namespace bpntt::runtime {
namespace {

TEST(RuntimeOptions, BuilderCollapsesAllKnobs) {
  core::compile_options mc;
  mc.fuse_pairs = false;
  mc.ripple_check_period = 4;
  const auto opts = runtime_options()
                        .with_ring(128, 3329, 13)
                        .with_backend(backend_kind::cpu)
                        .with_banks(3)
                        .with_subarrays(8)
                        .with_array(128, 512)
                        .with_microcode(mc)
                        .with_cpu_model(2.5, 10.0)
                        .with_threads(6);
  EXPECT_EQ(opts.params.n, 128u);
  EXPECT_EQ(opts.params.q, 3329u);
  EXPECT_EQ(opts.params.k, 13u);
  EXPECT_EQ(opts.backend, backend_kind::cpu);
  EXPECT_EQ(opts.banks, 3u);
  EXPECT_EQ(opts.subarrays, 8u);
  EXPECT_EQ(opts.array.data_rows, 128u);
  EXPECT_EQ(opts.array.cols, 512u);
  EXPECT_FALSE(opts.array.microcode.fuse_pairs);
  EXPECT_DOUBLE_EQ(opts.cpu_freq_ghz, 2.5);
  EXPECT_EQ(opts.threads, 6u);
  // The derived per-bank config carries the same array knobs.
  const auto bank = opts.bank();
  EXPECT_EQ(bank.subarrays, 8u);
  EXPECT_EQ(bank.array.cols, 512u);
  EXPECT_EQ(bank.array.microcode.ripple_check_period, 4u);
}

TEST(RuntimeOptions, ValidateAcceptsEveryBackendAtDefaults) {
  for (const auto kind : {backend_kind::sram, backend_kind::cpu, backend_kind::reference}) {
    auto opts = runtime_options().with_ring(256, 7681, 14).with_backend(kind);
    EXPECT_NO_THROW(opts.validate()) << to_string(kind);
  }
}

TEST(RuntimeOptions, ValidateRejectsSyntheticParams) {
  auto opts = runtime_options();  // default q = 0 (synthetic)
  EXPECT_THROW(opts.validate(), std::invalid_argument);
}

TEST(RuntimeOptions, ValidateRejectsBadSramShapes) {
  // Polynomial larger than the subarray.
  auto big = runtime_options().with_ring(512, 12289, 16);
  EXPECT_THROW(big.validate(), std::invalid_argument);
  // No banks.
  auto none = runtime_options().with_ring(256, 7681, 14).with_banks(0);
  EXPECT_THROW(none.validate(), std::invalid_argument);
  // A lone subarray cannot host both CTRL/CMD and compute.
  auto lone = runtime_options().with_ring(256, 7681, 14).with_subarrays(1);
  EXPECT_THROW(lone.validate(), std::invalid_argument);
}

TEST(RuntimeOptions, ValidateRejectsAbsurdPoolSizes) {
  auto opts = runtime_options().with_ring(256, 7681, 14).with_threads(257);
  EXPECT_THROW(opts.validate(), std::invalid_argument);
  EXPECT_NO_THROW(opts.with_threads(0).validate());    // auto-sized
  EXPECT_NO_THROW(opts.with_threads(256).validate());  // ceiling
}

TEST(RuntimeOptions, ValidateRejectsBadCpuModel) {
  auto opts = runtime_options()
                  .with_ring(256, 7681, 14)
                  .with_backend(backend_kind::cpu)
                  .with_cpu_model(0.0, 15.0);
  EXPECT_THROW(opts.validate(), std::invalid_argument);
}

TEST(RuntimeOptions, ForParamSetPicksTransformFlavour) {
  // Standardized Kyber has no full 256-point negacyclic NTT: incomplete.
  const auto kyber = runtime_options::for_param_set(crypto::kyber());
  EXPECT_TRUE(kyber.params.incomplete);
  EXPECT_EQ(kyber.params.n, 256u);
  EXPECT_GE(kyber.params.k, 13u);
  EXPECT_NO_THROW(kyber.validate());
  // The round-1 prime supports the complete transform.
  const auto compat = runtime_options::for_param_set(crypto::kyber_compat());
  EXPECT_FALSE(compat.params.incomplete);
  EXPECT_NO_THROW(compat.validate());
}

TEST(RuntimeOptions, BackendKindNames) {
  EXPECT_STREQ(to_string(backend_kind::sram), "sram");
  EXPECT_STREQ(to_string(backend_kind::cpu), "cpu");
  EXPECT_STREQ(to_string(backend_kind::reference), "reference");
}

}  // namespace
}  // namespace bpntt::runtime
