// Cross-backend differential tests: identical job batches submitted to the
// sram, cpu and reference backends must produce bit-identical outputs.
// This is the runtime's core guarantee — the in-SRAM model is exact, the
// Montgomery software path is exact, and the golden transform arbitrates —
// exercised at the PQC parameter points the paper targets: the
// round-1-Kyber-class complete transform, standardized Kyber's incomplete
// transform, and Dilithium's 23-bit modulus.
#include <gtest/gtest.h>

#include "common/xoshiro.h"
#include "runtime/context.h"

namespace bpntt::runtime {
namespace {

std::vector<u64> random_poly(u64 n, u64 q, common::xoshiro256ss& rng) {
  std::vector<u64> p(n);
  for (auto& c : p) c = rng.below(q);
  return p;
}

// Submit the same mixed forward/inverse batch to one context per backend
// and compare all outputs pairwise.
void expect_backends_agree(const runtime_options& base, unsigned forward_jobs,
                           unsigned inverse_jobs, u64 seed) {
  const auto& p = base.params;
  common::xoshiro256ss rng(seed);
  std::vector<ntt_job> jobs;
  for (unsigned i = 0; i < forward_jobs; ++i) {
    jobs.push_back(ntt_job{.coeffs = random_poly(p.n, p.q, rng)});
  }
  for (unsigned i = 0; i < inverse_jobs; ++i) {
    jobs.push_back(ntt_job{.dir = transform_dir::inverse,
                           .coeffs = random_poly(p.n, p.q, rng)});
  }

  std::vector<std::vector<job_result>> per_backend;
  std::vector<std::string> names;
  for (const auto kind : {backend_kind::sram, backend_kind::cpu, backend_kind::reference}) {
    context ctx(runtime_options(base).with_backend(kind));
    for (const auto& j : jobs) (void)ctx.submit(j);
    per_backend.push_back(ctx.wait_all());
    names.emplace_back(to_string(kind));
  }

  for (std::size_t b = 1; b < per_backend.size(); ++b) {
    ASSERT_EQ(per_backend[b].size(), per_backend[0].size());
    for (std::size_t i = 0; i < per_backend[0].size(); ++i) {
      ASSERT_EQ(per_backend[b][i].outputs[0], per_backend[0][i].outputs[0])
          << names[b] << " vs " << names[0] << ", job " << i;
    }
  }
}

TEST(CrossBackendDifferential, CompleteTransformKyberCompatShaped) {
  // n=256 over the round-1 Kyber prime: the full negacyclic transform.
  const auto opts = runtime_options().with_ring(256, 7681, 14).with_subarrays(2);
  expect_backends_agree(opts, /*forward_jobs=*/opts.bank().array.cols / 14 + 3,
                        /*inverse_jobs=*/4, /*seed=*/101);
}

TEST(CrossBackendDifferential, IncompleteTransformKyberShaped) {
  // Standardized Kyber: n=256, q=3329 only supports the one-layer-short
  // transform (256 | q-1 but 512 does not divide q-1).
  const auto opts =
      runtime_options().with_ring(256, 3329, 13, /*incomplete=*/true).with_subarrays(2);
  expect_backends_agree(opts, /*forward_jobs=*/opts.bank().array.cols / 13 + 3,
                        /*inverse_jobs=*/4, /*seed=*/102);
}

TEST(CrossBackendDifferential, DilithiumShaped) {
  // Dilithium's 23-bit prime on 24-bit tiles.
  const auto opts = runtime_options().with_ring(256, 8380417, 24).with_subarrays(2);
  expect_backends_agree(opts, /*forward_jobs=*/opts.bank().array.cols / 24 + 3,
                        /*inverse_jobs=*/2, /*seed=*/103);
}

TEST(CrossBackendDifferential, PolymulAgreesAcrossBackends) {
  // Ring products need two n-row regions: n=64 on a 128-row array.  The
  // incomplete flavour rides the same pipeline through the basemul path.
  for (const bool incomplete : {false, true}) {
    const auto opts = incomplete
                          ? runtime_options().with_ring(64, 3329, 13, true).with_array(128, 256)
                          : runtime_options().with_ring(64, 7681, 14).with_array(128, 256);
    common::xoshiro256ss rng(incomplete ? 201 : 202);
    std::vector<polymul_job> jobs;
    for (unsigned i = 0; i < 6; ++i) {
      jobs.push_back(polymul_job{.a = random_poly(64, opts.params.q, rng),
                                 .b = random_poly(64, opts.params.q, rng)});
    }
    std::vector<std::vector<job_result>> per_backend;
    for (const auto kind : {backend_kind::sram, backend_kind::cpu, backend_kind::reference}) {
      context ctx(runtime_options(opts).with_backend(kind));
      for (const auto& j : jobs) (void)ctx.submit(j);
      per_backend.push_back(ctx.wait_all());
    }
    for (std::size_t b = 1; b < per_backend.size(); ++b) {
      for (std::size_t i = 0; i < jobs.size(); ++i) {
        ASSERT_EQ(per_backend[b][i].outputs[0], per_backend[0][i].outputs[0])
            << "incomplete=" << incomplete << ", job " << i;
      }
    }
  }
}

TEST(CrossBackendDifferential, PoolSizeNeverChangesOutputs) {
  // The async executor only decides which thread runs which bank slice /
  // job chunk; a 4-thread multi-bank run must be bit-identical to the
  // single-worker serial path, per backend.
  const auto base = runtime_options().with_ring(256, 7681, 14).with_subarrays(2).with_banks(3);
  for (const auto kind : {backend_kind::sram, backend_kind::cpu, backend_kind::reference}) {
    std::vector<std::vector<job_result>> per_pool;
    for (const unsigned threads : {1u, 4u}) {
      context ctx(runtime_options(base).with_backend(kind).with_threads(threads));
      common::xoshiro256ss rng(404);  // same jobs for both pool sizes
      for (unsigned i = 0; i < 40; ++i) {
        (void)ctx.submit(ntt_job{.coeffs = random_poly(256, 7681, rng)});
      }
      per_pool.push_back(ctx.wait_all());
    }
    ASSERT_EQ(per_pool[0].size(), per_pool[1].size());
    for (std::size_t i = 0; i < per_pool[0].size(); ++i) {
      ASSERT_EQ(per_pool[1][i].outputs[0], per_pool[0][i].outputs[0])
          << to_string(kind) << ", job " << i;
    }
  }
}

TEST(CrossBackendDifferential, IndependentStreamsOverlapWithBitIdenticalOutputs) {
  // Two independent streams on a 2-bank sram topology must genuinely
  // overlap: the combined virtual-timeline makespan is strictly below the
  // sum of the two streams run serially (one per context), while every
  // output stays bit-identical to the legacy single-queue path.
  const auto base = runtime_options()
                        .with_ring(32, 193, 9)
                        .with_array(64, 36)
                        .with_subarrays(4)
                        .with_banks(2)
                        .with_threads(4);
  // 24 jobs per stream = 2 full 12-lane waves on a stream's single bank.
  const auto make_jobs = [&](u64 seed) {
    common::xoshiro256ss rng(seed);
    std::vector<std::vector<u64>> jobs;
    for (unsigned i = 0; i < 24; ++i) jobs.push_back(random_poly(32, 193, rng));
    return jobs;
  };
  const auto jobs_a = make_jobs(501);
  const auto jobs_b = make_jobs(502);

  // Serial baseline: each stream alone in its own context, costs summed.
  u64 serial_sum = 0;
  for (const auto* jobs : {&jobs_a, &jobs_b}) {
    context ctx(base);
    auto s = ctx.stream();  // stream 1 -> bank {0}
    for (const auto& j : *jobs) (void)s.submit(ntt_job{.coeffs = j});
    s.flush();
    ctx.sync();
    serial_sum += ctx.stats().wall_cycles;
  }
  ASSERT_GT(serial_sum, 0u);

  // Concurrent: both streams in one context, disjoint banks {0} and {1}.
  context both(base);
  auto sa = both.stream();
  auto sb = both.stream();
  ASSERT_NE(sa.bank_set(), sb.bank_set());
  std::vector<job_id> ids;
  for (const auto& j : jobs_a) ids.push_back(sa.submit(ntt_job{.coeffs = j}));
  for (const auto& j : jobs_b) ids.push_back(sb.submit(ntt_job{.coeffs = j}));
  sa.flush();
  sb.flush();
  both.sync();
  const u64 combined = both.stats().wall_cycles;
  EXPECT_LT(combined, serial_sum) << "streams did not overlap";

  // Single-queue path: the same jobs through the legacy default stream.
  context single(base);
  std::vector<job_id> legacy_ids;
  for (const auto* jobs : {&jobs_a, &jobs_b}) {
    for (const auto& j : *jobs) legacy_ids.push_back(single.submit(ntt_job{.coeffs = j}));
  }
  for (std::size_t i = 0; i < ids.size(); ++i) {
    const auto streamed = both.wait(ids[i]);
    const auto queued = single.wait(legacy_ids[i]);
    ASSERT_EQ(streamed.outputs[0], queued.outputs[0]) << "job " << i;
  }
}

TEST(CrossBackendDifferential, RlweCiphertextsAgreeAcrossBackends) {
  // Seed-deterministic R-LWE: all three backends must produce the same
  // ciphertext and decrypt it back to the same message.
  const auto opts = runtime_options().with_ring(64, 7681, 14).with_array(128, 256);
  common::xoshiro256ss rng(301);
  std::vector<u64> message(64);
  for (auto& m : message) m = rng.below(2);

  std::vector<job_result> results;
  for (const auto kind : {backend_kind::sram, backend_kind::cpu, backend_kind::reference}) {
    context ctx(runtime_options(opts).with_backend(kind));
    results.push_back(ctx.wait(ctx.submit(rlwe_encrypt_job{.message = message, .seed = 55})));
  }
  for (std::size_t b = 1; b < results.size(); ++b) {
    EXPECT_EQ(results[b].outputs[0], results[0].outputs[0]) << "ciphertext u, backend " << b;
    EXPECT_EQ(results[b].outputs[1], results[0].outputs[1]) << "ciphertext v, backend " << b;
  }
  for (const auto& r : results) EXPECT_EQ(r.outputs[2], message);
}

}  // namespace
}  // namespace bpntt::runtime
