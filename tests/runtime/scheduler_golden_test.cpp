// Refactor-equivalence golden test: the legacy submit/flush/wait path must
// be byte-identical across every backend and every scheduling policy, with
// the scheduler living in its own module.  The reference backend under the
// default policy is the oracle; sram and cpu under FIFO (equal-priority
// flush order), priority (with aging) and EDF must all reproduce its
// outputs bit-for-bit — scheduling reorders work, it never changes results.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/xoshiro.h"
#include "runtime/context.h"

namespace bpntt::runtime {
namespace {

runtime_options golden_ring(backend_kind kind) {
  return runtime_options()
      .with_ring(32, 193, 9)
      .with_backend(kind)
      .with_array(64, 36)
      .with_subarrays(4)
      .with_threads(2);
}

std::vector<u64> random_poly(u64 n, u64 q, common::xoshiro256ss& rng) {
  std::vector<u64> p(n);
  for (auto& c : p) c = rng.below(q);
  return p;
}

// The legacy single-queue workload: mixed forward/inverse transforms, ring
// products and an R-LWE flow through ctx.submit()/flush()/wait(), outputs
// concatenated in submission order.  The same seed builds the same jobs in
// every run.
std::vector<std::vector<u64>> run_legacy_workload(runtime_options opts) {
  context ctx(std::move(opts));
  common::xoshiro256ss rng(1234);
  std::vector<job_id> ids;
  for (int round = 0; round < 3; ++round) {
    ids.push_back(ctx.submit(ntt_job{.coeffs = random_poly(32, 193, rng)}));
    ids.push_back(ctx.submit(
        ntt_job{.dir = transform_dir::inverse, .coeffs = random_poly(32, 193, rng)}));
    ids.push_back(
        ctx.submit(polymul_job{random_poly(32, 193, rng), random_poly(32, 193, rng)}));
    ids.push_back(ctx.submit(rlwe_encrypt_job{
        .message = std::vector<u64>(32, static_cast<u64>(round & 1)),
        .eta = 2,
        .seed = static_cast<u64>(round + 1)}));
    ctx.flush();
  }
  std::vector<std::vector<u64>> outputs;
  for (const job_id id : ids) {
    job_result r = ctx.wait(id);
    for (auto& o : r.outputs) outputs.push_back(std::move(o));
  }
  return outputs;
}

TEST(SchedulerGolden, LegacyPathByteIdenticalAcrossBackendsAndPolicies) {
  const auto oracle = run_legacy_workload(golden_ring(backend_kind::reference));
  ASSERT_FALSE(oracle.empty());

  struct policy_case {
    const char* name;
    schedule_policy sched;
    unsigned aging;
  };
  const policy_case policies[] = {
      {"fifo", schedule_policy::priority, 0},      // equal priorities = flush order
      {"priority", schedule_policy::priority, 4},  // priority with aging
      {"edf", schedule_policy::edf, 0},
  };

  for (const backend_kind kind :
       {backend_kind::sram, backend_kind::cpu, backend_kind::reference}) {
    for (const policy_case& pc : policies) {
      const auto got =
          run_legacy_workload(golden_ring(kind).with_schedule(pc.sched, pc.aging));
      EXPECT_EQ(got, oracle) << to_string(kind) << " / " << pc.name;
    }
  }
}

TEST(SchedulerGolden, LegacyPathUnchangedByBatchingAndChunkingKnobs) {
  // The new capabilities must be invisible to the legacy path: the default
  // stream never merges with itself, and with no chunk budget set nothing
  // yields.  Turning the master switch on must not perturb a single byte.
  const auto oracle = run_legacy_workload(golden_ring(backend_kind::sram));
  auto opts = golden_ring(backend_kind::sram).with_cross_stream_batching();
  const auto got = run_legacy_workload(std::move(opts));
  EXPECT_EQ(got, oracle);
}

}  // namespace
}  // namespace bpntt::runtime
