// Fig. 1 reproduction: roofline analysis of the lattice-crypto kernels.
//
// The paper profiles CRYSTALS-Dilithium/Kyber with Intel Advisor and
// observes that the NTT/INTT kernels are bounded by L1/L2 bandwidth rather
// than DRAM bandwidth.  We regenerate the study from first principles: the
// kernels' exact address traces run through a cache-hierarchy simulator,
// giving per-level traffic, arithmetic intensity and the binding roof.
#include <cstdio>

#include "common/table.h"
#include "roofline/roofline.h"

namespace {

using bpntt::common::format_double;

void report(const char* title, const bpntt::roofline::roofline_report& rep) {
  std::printf("--- %s (n=%llu, %llu modular ops) ---\n", title,
              static_cast<unsigned long long>(rep.n),
              static_cast<unsigned long long>(rep.ops));
  bpntt::common::text_table t(
      {"Level", "Bytes", "AI (ops/B)", "BW roof (GB/s)", "Attainable (Gops)", "Binds?"});
  for (const auto& lv : rep.levels) {
    t.add_row({lv.level, std::to_string(lv.bytes), format_double(lv.intensity, 3),
               format_double(lv.bandwidth_gbs, 0), format_double(lv.attainable_gops, 1),
               lv.bandwidth_bound ? "yes" : "no"});
  }
  std::printf("%s", t.to_string(2).c_str());
  const auto bind = rep.binding_level();
  std::printf("  -> %s\n\n",
              bind.empty() ? "compute bound at every level"
                           : ("bandwidth bound first at " + bind).c_str());
}

}  // namespace

int main() {
  std::printf("=== Fig. 1: roofline model of lattice-based cryptography kernels ===\n");
  std::printf("(peak = 16-lane modular ALU at 3 GHz = 48 Gops; cache: 32K L1 / 256K L2 / "
              "2M LLC, 64B lines)\n\n");
  constexpr double kPeakGops = 48.0;
  constexpr unsigned kRepeats = 50;  // steady-state occupancy, like a profiled run

  for (std::uint64_t n : {256ULL, 1024ULL}) {
    {
      auto hier = bpntt::roofline::make_default_hierarchy();
      const auto trace = bpntt::roofline::trace_ntt_forward(hier, n, kRepeats);
      report("NTT kernel", bpntt::roofline::make_report(trace, hier, kPeakGops));
    }
    {
      auto hier = bpntt::roofline::make_default_hierarchy();
      const auto trace = bpntt::roofline::trace_ntt_inverse(hier, n, kRepeats);
      report("INTT kernel", bpntt::roofline::make_report(trace, hier, kPeakGops));
    }
  }
  {
    auto hier = bpntt::roofline::make_default_hierarchy();
    const auto trace = bpntt::roofline::trace_schoolbook(hier, 256, 2);
    report("Schoolbook polymul (contrast)", bpntt::roofline::make_report(trace, hier, kPeakGops));
  }

  std::printf("Paper's observation reproduced: the NTT/INTT kernels' working sets fit\n"
              "in-cache, so DRAM traffic is negligible (high DRAM-level AI -> not DRAM\n"
              "bound) while the L1/L2 levels see every butterfly access (low AI -> the\n"
              "L1/L2 bandwidth roofs bind).  Computing inside the SRAM arrays removes\n"
              "exactly that bottleneck.\n");
  return 0;
}
