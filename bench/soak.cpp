// Multi-tenant service-layer soak: N client threads hammer one service
// through session handles for a fixed wall budget, with mixed traffic —
// forward/inverse transforms, negacyclic products, R-LWE encryptions and
// an RNS-RLWE limb tenant emitting relinearization-shaped traffic (evk
// products, base-extension lifts, congruence-preserving rescale
// corrections) — under the EDF ready-queue policy.
//
// The harness is a correctness gate as much as a benchmark: every client
// counts what it was admitted and what its tickets returned, and the run
// fails (exit 1) if a single result was lost or double-delivered, or if
// the service's own counters disagree with the clients' books.
//
// A second, deterministic section replays contended traces on a
// fixed-cost backend:
//   * EDF vs FIFO — T deadline tenants piled up behind a blocked group,
//     flushed loosest-first (FIFO's trap).  EDF must strictly reduce
//     deadline misses.
//   * merged vs unmerged — a mixed 8-tenant trace replayed with
//     cross-stream batching off and on.  The merged replay must absorb
//     groups (groups_merged > 0) and finish at a strictly lower virtual
//     makespan with bit-identical outputs.
//   * preemptive vs non-preemptive EDF — a bulk group with a chunk budget
//     must yield its banks to a deadline tenant mid-plan, turning that
//     tenant's miss into a hit.
// Any of these inequalities failing exits non-zero.
//
// Usage: bench_soak [--json <path>] [--threads <N>] [--millis <M>] [--trace <path>]
//   --json     also emit the run as JSON (CI perf artifact, conventionally
//              BENCH_soak.json).  Wall-clock metrics (throughput, latency
//              quantiles) are advisory in trend checks — they measure the
//              host, not the model.  The document embeds the service's full
//              metrics registry under "metrics" (one to_json() — counters,
//              gauges, and the latency/queue-wait/exec histograms).
//   --threads  client threads (default 4, min 4 — the soak is only a soak
//              with real submission concurrency)
//   --millis   wall budget per run (default 1000)
//   --trace    run the soak service with virtual-timeline tracing on and
//              export the Chrome trace-event JSON here after the drain
//              (open it in Perfetto / chrome://tracing).  Tracing is off —
//              and costs nothing — unless this flag is given.
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "common/table.h"
#include "common/xoshiro.h"
#include "nttmath/primes.h"
#include "runtime/context.h"
#include "service/service.h"

namespace {

using namespace bpntt;
using runtime::u64;

// The soak ring: 13-bit envelope so the RNS-RLWE tenant's 12-bit limb
// primes validate alongside the native 3137 ring.
constexpr unsigned kOrder = 32;
constexpr u64 kRingQ = 3137;
constexpr unsigned kRingBits = 13;

std::vector<u64> random_poly(u64 q, common::xoshiro256ss& rng) {
  std::vector<u64> p(kOrder);
  for (auto& c : p) c = rng.below(q);
  return p;
}

// One tenant archetype; threads map onto these round-robin.
struct tenant_class {
  const char* name;
  service::session_options opts;
};

// Per-client books: the ground truth the service's counters must match.
struct client_book {
  u64 admitted = 0;  // submit() returned a ticket
  u64 rejected = 0;  // submit() threw admission_error
  u64 received = 0;  // ticket.get() returned
  u64 ok = 0;
  u64 failed = 0;
};

struct soak_result {
  unsigned threads = 0;
  double wall_s = 0.0;
  client_book totals;
  service::service_stats stats;
  runtime::scheduler_stats rt;
  std::vector<std::pair<std::string, service::service_stats>> per_session;
  u64 lost = 0;
  u64 duplicated = 0;
  double throughput = 0.0;
  std::string metrics_json;  // the service registry, one to_json()
};

soak_result run_soak(unsigned threads, unsigned millis, const std::string& trace_path) {
  // Two 12-bit NTT primes for the RNS-RLWE tenant: its session rides the
  // first limb's ring, the second plays the dropped / source limb of the
  // rescale and base-extension jobs.
  const auto limbs = math::first_k_ntt_primes(12, kOrder, 2, true);
  const u64 limb = limbs[0];
  const u64 partner = limbs[1];
  const tenant_class classes[] = {
      {"latency", {.priority = 8, .deadline_cycles = 20'000, .max_queued = 64,
                   .max_in_flight = 64}},
      {"bulk", {.priority = 0, .chunk_budget = 32, .max_queued = 512,
                .max_in_flight = 512}},
      {"rns-rlwe", {.priority = 4, .ring_q = limb}},
      {"crypto", {.priority = 2}},
  };
  constexpr unsigned kClasses = sizeof(classes) / sizeof(classes[0]);

  auto ropts = runtime::runtime_options()
                   .with_ring(kOrder, kRingQ, kRingBits)
                   .with_backend(runtime::backend_kind::sram)
                   .with_array(64, 39)
                   .with_subarrays(4)
                   .with_topology(2, 1, 4)
                   .with_threads(2)
                   .with_schedule(runtime::schedule_policy::edf, /*aging=*/8)
                   .with_cross_stream_batching();
  if (!trace_path.empty()) ropts.with_tracing();
  service::service svc(std::move(ropts));

  std::vector<service::session> sessions;
  sessions.reserve(threads);
  for (unsigned t = 0; t < threads; ++t) {
    sessions.push_back(svc.open_session(classes[t % kClasses].opts));
  }

  std::vector<client_book> books(threads);
  const auto t0 = std::chrono::steady_clock::now();
  const auto stop_at = t0 + std::chrono::milliseconds(millis);

  std::vector<std::thread> clients;
  clients.reserve(threads);
  for (unsigned t = 0; t < threads; ++t) {
    clients.emplace_back([&, t] {
      auto sess = sessions[t];
      auto& book = books[t];
      const unsigned cls = t % kClasses;
      const u64 q = cls == 2 ? limb : kRingQ;
      common::xoshiro256ss rng(1000 + t);
      while (std::chrono::steady_clock::now() < stop_at) {
        // A batch of submissions, then reap: keeps a backlog in front of
        // the drainer without letting tickets pile up unboundedly.
        std::vector<service::ticket> batch;
        for (unsigned i = 0; i < 8; ++i) {
          try {
            switch (cls) {
              case 1:  // bulk: ring products
                batch.push_back(sess.submit(runtime::polymul_job{
                    .a = random_poly(q, rng), .b = random_poly(q, rng)}));
                break;
              case 2:  // rns-rlwe: what a leveled client's relinearization
                       // emits on its limb stream — the evk product, the
                       // base-extension lift, the modulus-switch correction
                switch (i % 3) {
                  case 0:
                    batch.push_back(sess.submit(runtime::polymul_job{
                        .a = random_poly(q, rng), .b = random_poly(q, rng)}));
                    break;
                  case 1:
                    batch.push_back(sess.submit(runtime::rns_base_extend_job{
                        .prime = limb,
                        .source_primes = {partner},
                        .residues = {random_poly(partner, rng)}}));
                    break;
                  default:
                    batch.push_back(sess.submit(runtime::rns_rescale_job{
                        .prime = limb,
                        .drop_prime = partner,
                        .x = random_poly(limb, rng),
                        .dropped = random_poly(partner, rng),
                        .congruence = 2}));
                }
                break;
              case 3: {  // crypto: end-to-end R-LWE encryptions
                std::vector<u64> msg(kOrder);
                for (auto& m : msg) m = rng() & 1;
                batch.push_back(sess.submit(runtime::rlwe_encrypt_job{
                    .message = std::move(msg), .eta = 2, .seed = rng()}));
                break;
              }
              default:  // latency: transforms both ways
                batch.push_back(sess.submit(runtime::ntt_job{
                    .dir = (rng() & 1) ? core::transform_dir::forward
                                       : core::transform_dir::inverse,
                    .coeffs = random_poly(q, rng)}));
            }
            ++book.admitted;
          } catch (const service::admission_error&) {
            // Backpressure is the contract, not an error: note it, ease off.
            ++book.rejected;
            std::this_thread::sleep_for(std::chrono::microseconds(200));
          }
        }
        for (auto& tk : batch) {
          const auto r = tk.get();
          ++book.received;
          if (r.status == runtime::job_status::ok) {
            ++book.ok;
          } else {
            ++book.failed;
          }
        }
      }
    });
  }
  for (auto& c : clients) c.join();
  for (auto& s : sessions) s.close();
  svc.drain();
  if (!trace_path.empty()) {
    // Quiescent after drain(): export the whole run's virtual timeline.
    svc.export_trace(trace_path);
    const auto probe = svc.trace_stats();
    std::printf("trace: %llu events (%llu dropped) -> %s\n",
                static_cast<unsigned long long>(probe.events_recorded),
                static_cast<unsigned long long>(probe.events_dropped), trace_path.c_str());
  }

  soak_result out;
  out.threads = threads;
  out.wall_s = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  for (const auto& b : books) {
    out.totals.admitted += b.admitted;
    out.totals.rejected += b.rejected;
    out.totals.received += b.received;
    out.totals.ok += b.ok;
    out.totals.failed += b.failed;
  }
  out.stats = svc.stats();
  out.rt = svc.runtime_stats();
  out.metrics_json = svc.metrics().to_json();
  for (unsigned t = 0; t < threads; ++t) {
    out.per_session.emplace_back(
        std::string(classes[t % kClasses].name) + "#" + std::to_string(t),
        sessions[t].stats());
  }
  // The gate: every admitted job produced exactly one delivered result,
  // on both sides of the ledger.
  const u64 delivered = out.stats.completed + out.stats.failed;
  out.lost = out.totals.admitted > out.totals.received
                 ? out.totals.admitted - out.totals.received
                 : (out.totals.admitted > delivered ? out.totals.admitted - delivered : 0);
  out.duplicated = out.totals.received > out.totals.admitted
                       ? out.totals.received - out.totals.admitted
                       : (delivered > out.totals.admitted ? delivered - out.totals.admitted : 0);
  if (out.stats.admitted != out.totals.admitted) {
    // A books/counters disagreement is a lost-or-duplicated accounting bug
    // even when the two deltas above happen to cancel.
    out.lost += 1;
  }
  out.throughput = out.wall_s > 0 ? static_cast<double>(out.totals.received) / out.wall_s : 0.0;
  return out;
}

// ---- EDF vs FIFO on one deterministic contended trace ----------------------

// Fixed-cost backend: every dispatch costs exactly kGroupCost on the
// virtual timeline (or, with a per-job cost, kGroupCost per job — the
// shape the preemption trace needs), and the first dispatch blocks until
// released so the whole trace piles into the ready queue before anything
// is ordered.
constexpr u64 kGroupCost = 1000;

class fixed_cost_backend final : public runtime::backend {
 public:
  explicit fixed_cost_backend(u64 cost_per_job = 0) : cost_per_job_(cost_per_job) {}
  [[nodiscard]] std::string_view name() const noexcept override { return "fixed-cost"; }
  [[nodiscard]] runtime::backend_caps capabilities() const override {
    runtime::backend_caps caps;
    caps.polymul = true;
    return caps;
  }
  runtime::batch_result run_ntt(const std::vector<std::vector<u64>>& polys,
                                core::transform_dir,
                                const runtime::dispatch_hints&) override {
    maybe_block();
    runtime::batch_result r;
    r.outputs = polys;
    r.waves = 1;
    r.wall_cycles = dispatch_cost(polys.size());
    return r;
  }
  runtime::batch_result run_polymul(const std::vector<core::polymul_pair>& pairs,
                                    const runtime::dispatch_hints&) override {
    maybe_block();
    runtime::batch_result r;
    for (const auto& pr : pairs) r.outputs.push_back(pr.a);
    r.waves = 1;
    r.wall_cycles = dispatch_cost(pairs.size());
    return r;
  }
  void release() {
    std::lock_guard<std::mutex> lk(mu_);
    released_ = true;
    cv_.notify_all();
  }

 private:
  [[nodiscard]] u64 dispatch_cost(std::size_t jobs) const {
    return cost_per_job_ == 0 ? kGroupCost : cost_per_job_ * jobs;
  }
  void maybe_block() {
    std::unique_lock<std::mutex> lk(mu_);
    if (blocked_once_) return;
    blocked_once_ = true;
    cv_.wait(lk, [&] { return released_; });
  }
  const u64 cost_per_job_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool blocked_once_ = false;
  bool released_ = false;
};

// T deadline tenants behind a blocker, flushed loosest-first.  Tenant of
// tightness rank k (k = 1 tightest) gets budget (k + 1) * kGroupCost:
// feasible under EDF (rank k ends exactly on budget), while FIFO — which
// dispatches in flush order — overruns every rank in the latter half.
u64 trace_misses_under(runtime::schedule_policy policy, unsigned tenants) {
  auto owned = std::make_unique<fixed_cost_backend>();
  auto* gate = owned.get();
  runtime::context ctx(runtime::runtime_options()
                           .with_ring(kOrder, kRingQ, kRingBits)
                           .with_array(64, 39)
                           .with_subarrays(4)
                           .with_schedule(policy)
                           .with_threads(2),
                       std::move(owned));
  common::xoshiro256ss rng(7);

  (void)ctx.submit(runtime::ntt_job{.coeffs = random_poly(kRingQ, rng)});
  ctx.flush();  // the blocker: holds the pseudo-resource until released

  std::vector<runtime::stream> streams;
  streams.reserve(tenants);
  for (unsigned rank = tenants; rank >= 1; --rank) {  // loosest-first flush
    streams.push_back(ctx.stream({.deadline_cycles = (rank + 1) * kGroupCost}));
    (void)streams.back().submit(
        runtime::ntt_job{.coeffs = random_poly(kRingQ, rng)});
    streams.back().flush();
  }
  gate->release();
  ctx.sync();
  return ctx.stats().deadline_misses;
}

// ---- merged vs unmerged on one mixed tenant trace --------------------------

struct merge_trace_result {
  u64 makespan = 0;       // virtual-timeline makespan of the whole trace
  u64 groups_merged = 0;  // ready groups absorbed into a merged dispatch
  std::vector<std::vector<u64>> outputs;  // all job outputs, submission order
};

// T tenants — transforms and ring products alternating — pile up behind a
// blocked group, so the whole trace is in the ready queue when the
// scheduler first orders it.  With cross-stream batching off the groups
// serialize on the pseudo-resource, one fixed-cost dispatch each; with it
// on, the first runnable group absorbs every compatible peer and the
// trace collapses to one merged dispatch per job kind.
merge_trace_result trace_merge_under(bool merge_on, unsigned tenants) {
  auto owned = std::make_unique<fixed_cost_backend>();
  auto* gate = owned.get();
  auto opts = runtime::runtime_options()
                  .with_ring(kOrder, kRingQ, kRingBits)
                  .with_array(64, 39)
                  .with_subarrays(4)
                  .with_threads(2);
  if (merge_on) opts.with_cross_stream_batching();
  runtime::context ctx(std::move(opts), std::move(owned));
  common::xoshiro256ss rng(11);

  (void)ctx.submit(runtime::ntt_job{.coeffs = random_poly(kRingQ, rng)});
  ctx.flush();  // the blocker: holds the pseudo-resource until released

  std::vector<runtime::stream> streams;
  std::vector<runtime::job_id> ids;
  streams.reserve(tenants);
  for (unsigned t = 0; t < tenants; ++t) {
    streams.push_back(ctx.stream({}));
    if ((t & 1) != 0) {
      ids.push_back(streams.back().submit(runtime::polymul_job{
          .a = random_poly(kRingQ, rng), .b = random_poly(kRingQ, rng)}));
    } else {
      ids.push_back(
          streams.back().submit(runtime::ntt_job{.coeffs = random_poly(kRingQ, rng)}));
    }
    streams.back().flush();
  }
  gate->release();
  ctx.sync();

  merge_trace_result out;
  for (const runtime::job_id id : ids) {
    auto r = ctx.wait(id);
    for (auto& o : r.outputs) out.outputs.push_back(std::move(o));
  }
  const auto st = ctx.stats();
  out.makespan = st.wall_cycles;
  out.groups_merged = st.groups_merged;
  return out;
}

// ---- preemptive vs non-preemptive EDF --------------------------------------

struct preempt_trace_result {
  u64 misses = 0;
  u64 yields = 0;
};

// A bulk stream's 8-job group holds the pseudo-resource (per-job cost, so
// running it whole takes 8 * kGroupCost) while a deadline tenant with a
// 4 * kGroupCost budget queues behind it.  Without a chunk budget the
// tenant waits out the whole bulk group and misses; with one, the bulk
// group yields at its first chunk boundary and the tenant makes it.
preempt_trace_result trace_preempt_under(u64 bulk_chunk_budget) {
  auto owned = std::make_unique<fixed_cost_backend>(/*cost_per_job=*/kGroupCost);
  auto* gate = owned.get();
  runtime::context ctx(runtime::runtime_options()
                           .with_ring(kOrder, kRingQ, kRingBits)
                           .with_array(64, 39)
                           .with_subarrays(4)
                           .with_schedule(runtime::schedule_policy::edf)
                           .with_threads(2),
                       std::move(owned));
  common::xoshiro256ss rng(13);

  auto bulk = ctx.stream({.chunk_budget = bulk_chunk_budget});
  for (unsigned i = 0; i < 8; ++i) {
    (void)bulk.submit(runtime::ntt_job{.coeffs = random_poly(kRingQ, rng)});
  }
  bulk.flush();  // claims the pseudo-resource; first dispatch blocks

  auto urgent = ctx.stream({.deadline_cycles = 4 * kGroupCost});
  (void)urgent.submit(runtime::ntt_job{.coeffs = random_poly(kRingQ, rng)});
  urgent.flush();

  gate->release();
  ctx.sync();
  const auto st = ctx.stats();
  return {st.deadline_misses, st.preemption_yields};
}

// ---- reporting --------------------------------------------------------------

// Deterministic scheduler traces, bundled for reporting and gating.
struct trace_results {
  unsigned tenants = 0;
  u64 fifo_misses = 0;
  u64 edf_misses = 0;
  merge_trace_result unmerged;
  merge_trace_result merged;
  preempt_trace_result nonpreemptive;
  preempt_trace_result preemptive;
};

void write_json(const std::string& path, const soak_result& soak,
                const trace_results& tr) {
  std::string out = "{\n  \"bench\": \"soak\",\n";
  char buf[512];
  std::snprintf(buf, sizeof buf,
                "  \"threads\": %u,\n  \"wall_s\": %.3f,\n  \"policy\": \"edf\",\n",
                soak.threads, soak.wall_s);
  out += buf;
  std::snprintf(
      buf, sizeof buf,
      "  \"totals\": {\"submitted\": %llu, \"admitted\": %llu, \"rejected\": %llu, "
      "\"completed\": %llu, \"failed\": %llu, \"lost\": %llu, \"duplicated\": %llu, "
      "\"throughput_jobs_per_s\": %.1f, \"deadline_misses\": %llu, "
      "\"deadline_miss_rate\": %.4f, \"p50_ns\": %llu, \"p95_ns\": %llu, "
      "\"p99_ns\": %llu, \"max_ns\": %llu},\n",
      static_cast<unsigned long long>(soak.stats.submitted),
      static_cast<unsigned long long>(soak.stats.admitted),
      static_cast<unsigned long long>(soak.stats.rejected),
      static_cast<unsigned long long>(soak.stats.completed),
      static_cast<unsigned long long>(soak.stats.failed),
      static_cast<unsigned long long>(soak.lost),
      static_cast<unsigned long long>(soak.duplicated), soak.throughput,
      static_cast<unsigned long long>(soak.stats.deadline_misses),
      soak.stats.deadline_miss_rate(),
      static_cast<unsigned long long>(soak.stats.p50_ns),
      static_cast<unsigned long long>(soak.stats.p95_ns),
      static_cast<unsigned long long>(soak.stats.p99_ns),
      static_cast<unsigned long long>(soak.stats.max_ns));
  out += buf;
  out += "  \"sessions\": [\n";
  for (std::size_t i = 0; i < soak.per_session.size(); ++i) {
    const auto& [name, s] = soak.per_session[i];
    std::snprintf(buf, sizeof buf,
                  "    {\"name\": \"%s\", \"admitted\": %llu, \"rejected\": %llu, "
                  "\"completed\": %llu, \"failed\": %llu, \"deadline_miss_rate\": %.4f, "
                  "\"p50_ns\": %llu, \"p95_ns\": %llu, \"p99_ns\": %llu}%s\n",
                  name.c_str(), static_cast<unsigned long long>(s.admitted),
                  static_cast<unsigned long long>(s.rejected),
                  static_cast<unsigned long long>(s.completed),
                  static_cast<unsigned long long>(s.failed), s.deadline_miss_rate(),
                  static_cast<unsigned long long>(s.p50_ns),
                  static_cast<unsigned long long>(s.p95_ns),
                  static_cast<unsigned long long>(s.p99_ns),
                  i + 1 < soak.per_session.size() ? "," : "");
    out += buf;
  }
  out += "  ],\n";
  // Service-wide scheduler counters from the soak itself (merging is on
  // for the soak service, so groups_merged reflects live contention).
  std::snprintf(buf, sizeof buf,
                "  \"scheduler\": {\"groups_merged\": %llu, \"preemption_yields\": %llu},\n",
                static_cast<unsigned long long>(soak.rt.groups_merged),
                static_cast<unsigned long long>(soak.rt.preemption_yields));
  out += buf;
  // The unified registry, verbatim: every instrument the stack published —
  // the trend checker reads service.queue_wait_ns quantiles from here.
  out += "  \"metrics\": " + soak.metrics_json + ",\n";
  std::snprintf(buf, sizeof buf,
                "  \"edf_vs_fifo\": {\"trace_tenants\": %u, \"fifo_deadline_misses\": "
                "%llu, \"edf_deadline_misses\": %llu},\n",
                tr.tenants, static_cast<unsigned long long>(tr.fifo_misses),
                static_cast<unsigned long long>(tr.edf_misses));
  out += buf;
  std::snprintf(buf, sizeof buf,
                "  \"merge_trace\": {\"trace_tenants\": %u, \"unmerged_makespan_cycles\": "
                "%llu, \"merged_makespan_cycles\": %llu, \"groups_merged\": %llu},\n",
                tr.tenants, static_cast<unsigned long long>(tr.unmerged.makespan),
                static_cast<unsigned long long>(tr.merged.makespan),
                static_cast<unsigned long long>(tr.merged.groups_merged));
  out += buf;
  std::snprintf(buf, sizeof buf,
                "  \"preempt_trace\": {\"nonpreemptive_misses\": %llu, "
                "\"preemptive_misses\": %llu, \"preemption_yields\": %llu}\n}\n",
                static_cast<unsigned long long>(tr.nonpreemptive.misses),
                static_cast<unsigned long long>(tr.preemptive.misses),
                static_cast<unsigned long long>(tr.preemptive.yields));
  out += buf;

  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) throw std::runtime_error("soak: cannot open --json path " + path);
  std::fwrite(out.data(), 1, out.size(), f);
  std::fclose(f);
  std::printf("\nwrote %zu JSON bytes to %s\n", out.size(), path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  std::string trace_path;
  unsigned threads = 4;
  unsigned millis = 1000;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      threads = static_cast<unsigned>(std::strtoul(argv[++i], nullptr, 10));
      if (threads < 4 || threads > 64) {
        std::fprintf(stderr, "soak: --threads must be in [4, 64]\n");
        return 2;
      }
    } else if (std::strcmp(argv[i], "--millis") == 0 && i + 1 < argc) {
      millis = static_cast<unsigned>(std::strtoul(argv[++i], nullptr, 10));
      if (millis < 100 || millis > 60'000) {
        std::fprintf(stderr, "soak: --millis must be in [100, 60000]\n");
        return 2;
      }
    } else {
      std::fprintf(stderr,
                   "usage: %s [--json <path>] [--threads <N>] [--millis <M>] "
                   "[--trace <path>]\n",
                   argv[0]);
      return 2;
    }
  }

  std::printf("=== service-layer soak: %u client threads, %u ms wall budget, edf%s ===\n\n",
              threads, millis, trace_path.empty() ? "" : ", traced");
  const auto soak = run_soak(threads, millis, trace_path);

  bpntt::common::text_table table(
      {"Session", "Admitted", "Rejected", "Completed", "Failed", "Miss rate", "p50(us)",
       "p95(us)", "p99(us)"});
  for (const auto& [name, s] : soak.per_session) {
    char miss[32];
    std::snprintf(miss, sizeof miss, "%.2f%%", 100.0 * s.deadline_miss_rate());
    table.add_row({name, std::to_string(s.admitted), std::to_string(s.rejected),
                   std::to_string(s.completed), std::to_string(s.failed), miss,
                   std::to_string(s.p50_ns / 1000), std::to_string(s.p95_ns / 1000),
                   std::to_string(s.p99_ns / 1000)});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("totals: %llu admitted, %llu rejected (backpressure), %llu completed, "
              "%llu failed, %.0f jobs/s\n",
              static_cast<unsigned long long>(soak.totals.admitted),
              static_cast<unsigned long long>(soak.totals.rejected),
              static_cast<unsigned long long>(soak.stats.completed),
              static_cast<unsigned long long>(soak.stats.failed), soak.throughput);
  std::printf("latency: p50 %llu us, p95 %llu us, p99 %llu us, max %llu us; "
              "deadline miss rate %.2f%%\n",
              static_cast<unsigned long long>(soak.stats.p50_ns / 1000),
              static_cast<unsigned long long>(soak.stats.p95_ns / 1000),
              static_cast<unsigned long long>(soak.stats.p99_ns / 1000),
              static_cast<unsigned long long>(soak.stats.max_ns / 1000),
              100.0 * soak.stats.deadline_miss_rate());
  std::printf("ledger: lost %llu, duplicated %llu\n",
              static_cast<unsigned long long>(soak.lost),
              static_cast<unsigned long long>(soak.duplicated));

  trace_results tr;
  tr.tenants = 8;
  tr.fifo_misses = trace_misses_under(runtime::schedule_policy::priority, tr.tenants);
  tr.edf_misses = trace_misses_under(runtime::schedule_policy::edf, tr.tenants);
  std::printf("\nedf vs fifo on one contended %u-tenant trace (fixed-cost backend): "
              "fifo %llu misses, edf %llu misses\n",
              tr.tenants, static_cast<unsigned long long>(tr.fifo_misses),
              static_cast<unsigned long long>(tr.edf_misses));

  tr.unmerged = trace_merge_under(false, tr.tenants);
  tr.merged = trace_merge_under(true, tr.tenants);
  std::printf("cross-stream batching on the mixed %u-tenant trace: makespan %llu -> "
              "%llu cycles, %llu groups merged\n",
              tr.tenants, static_cast<unsigned long long>(tr.unmerged.makespan),
              static_cast<unsigned long long>(tr.merged.makespan),
              static_cast<unsigned long long>(tr.merged.groups_merged));

  tr.nonpreemptive = trace_preempt_under(0);
  tr.preemptive = trace_preempt_under(2);
  std::printf("preemptive vs non-preemptive edf on the chunked bulk trace: misses "
              "%llu -> %llu, %llu yields\n",
              static_cast<unsigned long long>(tr.nonpreemptive.misses),
              static_cast<unsigned long long>(tr.preemptive.misses),
              static_cast<unsigned long long>(tr.preemptive.yields));
  std::printf("soak service scheduler counters: %llu groups merged, %llu preemption "
              "yields\n",
              static_cast<unsigned long long>(soak.rt.groups_merged),
              static_cast<unsigned long long>(soak.rt.preemption_yields));

  if (!json_path.empty()) write_json(json_path, soak, tr);

  // The gates that make the soak a test: a lost or double-delivered result
  // is a service-layer bug; EDF failing to beat FIFO on the trap trace
  // means deadline ordering stopped working; and the batching/preemption
  // inequalities pin the new scheduler capabilities end to end.
  bool ok = true;
  if (soak.lost != 0 || soak.duplicated != 0) {
    std::fprintf(stderr, "soak: FAILED — results lost (%llu) or duplicated (%llu)\n",
                 static_cast<unsigned long long>(soak.lost),
                 static_cast<unsigned long long>(soak.duplicated));
    ok = false;
  }
  if (tr.edf_misses >= tr.fifo_misses) {
    std::fprintf(stderr, "soak: FAILED — edf (%llu misses) must strictly beat fifo (%llu)\n",
                 static_cast<unsigned long long>(tr.edf_misses),
                 static_cast<unsigned long long>(tr.fifo_misses));
    ok = false;
  }
  if (tr.merged.groups_merged == 0) {
    std::fprintf(stderr, "soak: FAILED — the mixed %u-tenant trace must merge groups\n",
                 tr.tenants);
    ok = false;
  }
  if (tr.merged.makespan >= tr.unmerged.makespan) {
    std::fprintf(stderr,
                 "soak: FAILED — merged makespan (%llu) must strictly beat unmerged "
                 "(%llu)\n",
                 static_cast<unsigned long long>(tr.merged.makespan),
                 static_cast<unsigned long long>(tr.unmerged.makespan));
    ok = false;
  }
  if (tr.merged.outputs != tr.unmerged.outputs) {
    std::fprintf(stderr, "soak: FAILED — merged outputs diverge from unmerged outputs\n");
    ok = false;
  }
  if (tr.preemptive.misses >= tr.nonpreemptive.misses || tr.preemptive.yields == 0) {
    std::fprintf(stderr,
                 "soak: FAILED — preemptive edf (%llu misses, %llu yields) must "
                 "strictly beat non-preemptive (%llu misses)\n",
                 static_cast<unsigned long long>(tr.preemptive.misses),
                 static_cast<unsigned long long>(tr.preemptive.yields),
                 static_cast<unsigned long long>(tr.nonpreemptive.misses));
    ok = false;
  }
  return ok ? 0 : 1;
}
