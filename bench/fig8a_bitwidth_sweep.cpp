// Fig. 8(a) reproduction: clock count and energy of a 256-point NTT on the
// 256x256 (+6 rows) BP-NTT array as the coefficient bitwidth sweeps 2..64.
//
// Cycle counts come from the cycle-level simulator.  Widths that can host a
// real NTT modulus (2q < 2^k with 2n | q-1) run with that modulus and are
// verified against the golden model elsewhere; narrower widths run in
// synthetic mode (random twiddle bit patterns of the same density), exactly
// because no 256-point modulus exists there — the paper sweeps them for
// performance only.
#include <cstdio>

#include "bpntt/perf_model.h"
#include "common/table.h"
#include "nttmath/primes.h"

namespace {

// Largest NTT-friendly prime with the headroom bit for tile width k, or 0.
std::uint64_t modulus_for(unsigned k, std::uint64_t n) {
  if (k < 4 || k > 63) return 0;
  for (unsigned bits = k - 1; bits >= 3; --bits) {
    try {
      const auto q = bpntt::math::ntt_friendly_prime(bits, n, true);
      if (2 * q < (1ULL << k)) return q;
    } catch (const std::exception&) {
    }
  }
  return 0;
}

}  // namespace

int main() {
  constexpr std::uint64_t n = 256;
  std::printf("=== Fig. 8(a): 256-point NTT vs coefficient bitwidth (256x256 array) ===\n\n");

  bpntt::common::text_table t({"Bitwidth", "Lanes", "Modulus", "Cycles", "Latency(us)",
                               "E/batch(nJ)", "E/NTT(nJ)", "Cycles vs 16b", "E/NTT vs 16b"});

  bpntt::core::engine_config cfg;  // 256x256 @ 45nm
  double cycles16 = 0, entt16 = 0;
  struct row_data {
    unsigned k;
    bpntt::core::ntt_metrics m;
    std::uint64_t q;
  };
  std::vector<row_data> rows;
  for (unsigned k : {2u, 4u, 8u, 12u, 16u, 24u, 32u, 48u, 64u}) {
    bpntt::core::ntt_params p;
    p.n = n;
    p.k = k;
    p.q = modulus_for(k, n);  // 0 -> synthetic performance mode
    const auto m = bpntt::core::measure_forward(cfg, p);
    rows.push_back({k, m, p.q});
    if (k == 16) {
      cycles16 = static_cast<double>(m.cycles);
      entt16 = m.energy_nj / m.lanes;
    }
  }
  for (const auto& r : rows) {
    const double entt = r.m.energy_nj / r.m.lanes;
    t.add_row({std::to_string(r.k), std::to_string(r.m.lanes),
               r.q ? std::to_string(r.q) : "synthetic", std::to_string(r.m.cycles),
               bpntt::common::format_double(r.m.latency_us, 1),
               bpntt::common::format_double(r.m.energy_nj, 1),
               bpntt::common::format_double(entt, 2),
               bpntt::common::format_double(r.m.cycles / cycles16, 2) + "x",
               bpntt::common::format_double(entt / entt16, 2) + "x"});
  }
  std::printf("%s\n", t.to_string(2).c_str());

  std::printf("Expected shape (paper): clock count grows ~linearly with bitwidth (the\n"
              "Montgomery loop runs k iterations); energy *per NTT* grows steeper\n"
              "(~quadratically) because wider tiles also shrink the number of NTTs\n"
              "computed in parallel in the fixed-size subarray.\n");
  return 0;
}
