// Table I reproduction: BP-NTT (measured on the cycle-level simulator)
// against the published 45 nm-projected baselines, on a 256-point
// polynomial.  Prints the full table, the paper's anchor row for BP-NTT,
// and the headline TA/TP ratios ("up to 29x throughput-per-area, 10-138x
// throughput-per-power").
//
// Both measured rows — the in-SRAM design and the Montgomery software
// baseline — run through bpntt::runtime with identical forward-NTT job
// batches, so the comparison the table makes is apples-to-apples by
// construction: same job model, same scheduler, different backend.
//
// Usage: bench_table1_comparison [--json <path>] [--cpu-iters <n>]
//   --json       also emit every row and the headline ratios as JSON (the
//                CI perf-trajectory artifact, conventionally
//                BENCH_table1.json)
//   --cpu-iters  iterations for the measured-CPU row (default 2000; CI
//                smoke runs use fewer)
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

#include "baselines/cpu_baseline.h"
#include "baselines/design_model.h"
#include "baselines/published.h"
#include "bpntt/perf_model.h"
#include "common/table.h"
#include "common/xoshiro.h"
#include "runtime/context.h"

namespace {

using bpntt::common::format_double;
using bpntt::common::format_si;

// Submit one wave-filling batch of random forward NTTs to the context.
std::vector<bpntt::runtime::job_result> run_forward_batch(bpntt::runtime::context& ctx,
                                                          unsigned jobs, std::uint64_t seed) {
  const auto& p = ctx.options().params;
  bpntt::common::xoshiro256ss rng(seed);
  for (unsigned i = 0; i < jobs; ++i) {
    std::vector<bpntt::core::u64> poly(p.n);
    for (auto& c : poly) c = rng.below(p.q);
    (void)ctx.submit(bpntt::runtime::ntt_job{.coeffs = std::move(poly)});
  }
  return ctx.wait_all();
}

bpntt::baselines::design_point measure_bpntt_row(unsigned coef_bits, std::uint64_t q) {
  using namespace bpntt;
  // One compute subarray (plus CTRL/CMD): the paper's single-array
  // measurement, whose area model metrics_from_run anchors to.
  const auto opts = runtime::runtime_options()
                        .with_ring(256, q, coef_bits)
                        .with_backend(runtime::backend_kind::sram)
                        .with_subarrays(2);
  runtime::context ctx(opts);
  const auto results = run_forward_batch(ctx, ctx.wave_width(), /*seed=*/42);
  const auto& batch = results.front();
  if (batch.op_stats.lossless_shift_violations != 0) {
    throw std::runtime_error("BP-NTT run violated the lossless-shift envelope");
  }
  const auto m = core::metrics_from_run(opts.array, opts.params.n, coef_bits, ctx.wave_width(),
                                        batch.wall_cycles, batch.op_stats.energy_pj * 1e-3);
  baselines::design_point d;
  d.name = "BP-NTT (ours, k=" + std::to_string(coef_bits) + ")";
  d.technology = "In-SRAM";
  d.coef_bits = coef_bits;
  d.max_f_mhz = opts.array.tech.freq_ghz * 1e3;
  d.latency_us = m.latency_us;
  d.throughput_kntt_s = m.throughput_kntt_s;
  d.energy_nj = m.energy_nj;
  d.ntts_per_batch = m.lanes;
  d.area_mm2 = m.area_mm2;
  return d;
}

// The Montgomery software baseline through the same runtime interface.
// A single executor worker keeps the row single-core, matching the
// methodology of the published per-core CPU baselines (the runtime's
// multi-thread chunking would otherwise fold host parallelism into it).
bpntt::baselines::design_point measure_cpu_row(unsigned iterations) {
  using namespace bpntt;
  const auto opts = runtime::runtime_options()
                        .with_ring(256, 12289, 16)
                        .with_backend(runtime::backend_kind::cpu)
                        .with_threads(1);
  runtime::context ctx(opts);
  const auto results = run_forward_batch(ctx, iterations, /*seed=*/43);
  const auto& batch = results.front();
  const double seconds = batch.wall_cycles / (opts.cpu_freq_ghz * 1e9);
  baselines::cpu_measurement m;
  m.latency_us = seconds * 1e6 / iterations;
  m.throughput_kntt_s = iterations / seconds / 1e3;
  m.energy_nj = batch.op_stats.energy_pj * 1e-3 / iterations;
  m.assumed_power_w = opts.cpu_power_w;
  auto row = baselines::cpu_design_point(m, 16);
  row.name = "CPU (measured, Montgomery)";
  return row;
}

// Minimal JSON emitter for the perf-trajectory artifact — no dependency,
// just rows and headline ratios with stable keys.
void append_row_json(std::string& out, const bpntt::baselines::design_point& d,
                     bool measured) {
  char buf[512];
  std::snprintf(buf, sizeof buf,
                "    {\"name\": \"%s\", \"technology\": \"%s\", \"coef_bits\": %u, "
                "\"measured\": %s, \"latency_us\": %.6g, \"throughput_kntt_s\": %.6g, "
                "\"energy_nj\": %.6g, \"area_mm2\": %.6g, \"tput_per_mj\": %.6g}",
                d.name.c_str(), d.technology.c_str(), d.coef_bits,
                measured ? "true" : "false", d.latency_us, d.throughput_kntt_s, d.energy_nj,
                d.area_mm2, d.tput_per_mj());
  out += buf;
}

void write_json(const std::string& path,
                const std::vector<std::pair<bpntt::baselines::design_point, bool>>& rows,
                const bpntt::baselines::headline_ratios& ours,
                const bpntt::baselines::headline_ratios& paper) {
  std::string out = "{\n  \"bench\": \"table1_comparison\",\n  \"n\": 256,\n  \"rows\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    append_row_json(out, rows[i].first, rows[i].second);
    out += i + 1 < rows.size() ? ",\n" : "\n";
  }
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "  ],\n  \"headlines\": {\n"
                "    \"ours\":  {\"max_ta\": %.6g, \"min_tp\": %.6g, \"max_tp\": %.6g},\n"
                "    \"paper\": {\"max_ta\": %.6g, \"min_tp\": %.6g, \"max_tp\": %.6g}\n"
                "  }\n}\n",
                ours.max_ta, ours.min_tp, ours.max_tp, paper.max_ta, paper.min_tp,
                paper.max_tp);
  out += buf;
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    throw std::runtime_error("table1_comparison: cannot open --json path " + path);
  }
  std::fwrite(out.data(), 1, out.size(), f);
  std::fclose(f);
  std::printf("\nwrote %zu JSON bytes to %s\n", out.size(), path.c_str());
}

std::vector<std::string> row_cells(const bpntt::baselines::design_point& d) {
  return {d.name,
          d.technology,
          std::to_string(d.coef_bits),
          d.max_f_mhz > 0 ? format_si(d.max_f_mhz * 1e6, 1) + "Hz" : "-",
          format_double(d.latency_us, 2),
          format_double(d.throughput_kntt_s, 1),
          format_double(d.energy_nj, 1),
          d.area_mm2 > 0 ? format_double(d.area_mm2, 3) : "-",
          d.area_mm2 > 0 ? format_double(d.tput_per_area(), 1) : "-",
          format_double(d.tput_per_mj(), 2)};
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  unsigned cpu_iters = 2000;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--cpu-iters") == 0 && i + 1 < argc) {
      cpu_iters = static_cast<unsigned>(std::strtoul(argv[++i], nullptr, 10));
      if (cpu_iters == 0) cpu_iters = 1;
    } else {
      std::fprintf(stderr, "usage: %s [--json <path>] [--cpu-iters <n>]\n", argv[0]);
      return 2;
    }
  }

  std::printf("=== Table I: comparing BP-NTT with state-of-the-art on a 256-point "
              "polynomial (45 nm) ===\n\n");

  // Measured BP-NTT rows at the paper's two parameter points.  16-bit uses
  // the Falcon prime; "14-bit class" uses the round-1 Kyber prime on 14-bit
  // tiles (2q < 2^14), matching the paper's coefficient-bitwidth pairing.
  const auto bp16 = measure_bpntt_row(16, 12289);
  const auto bp14 = measure_bpntt_row(14, 7681);
  const auto paper = bpntt::baselines::published_bpntt();
  const auto baselines = bpntt::baselines::all_published_baselines();

  bpntt::common::text_table table({"Design", "Tech", "Bits", "Max f", "Lat(us)",
                                   "Tput(KNTT/s)", "E(nJ)", "Area(mm2)", "TA", "TP(KNTT/mJ)"});
  table.add_row(row_cells(bp16));
  table.add_row(row_cells(bp14));
  table.add_row(row_cells(paper));
  table.add_separator();
  for (const auto& d : baselines) table.add_row(row_cells(d));

  // Measured CPU baselines on this host (methodology note printed below):
  // the portable 128-bit-division NTT and, through the same runtime job
  // interface as the BP-NTT rows, the Montgomery-reduction one.
  const bpntt::math::ntt_tables tables(256, 12289, true);
  const auto cpu = bpntt::baselines::measure_cpu_ntt(tables);
  auto cpu_row = bpntt::baselines::cpu_design_point(cpu, 16);
  cpu_row.name = "CPU (measured, portable)";
  const auto cpu_fast_row = measure_cpu_row(cpu_iters);
  table.add_separator();
  table.add_row(row_cells(cpu_row));
  table.add_row(row_cells(cpu_fast_row));

  std::printf("%s\n", table.to_string(2).c_str());

  const auto ours = bpntt::baselines::compute_headlines(bp16, baselines);
  const auto papers = bpntt::baselines::compute_headlines(paper, baselines);
  std::printf("Headline ratios vs published baselines (paper claims: up to 29x TA, "
              "10-138x TP):\n");
  std::printf("  ours  : TA up to %.1fx | TP %.1fx - %.1fx\n", ours.max_ta, ours.min_tp,
              ours.max_tp);
  std::printf("  paper : TA up to %.1fx | TP %.1fx - %.1fx\n", papers.max_ta, papers.min_tp,
              papers.max_tp);

  std::printf("\nAnchor check (BP-NTT 16-bit, paper -> ours):\n");
  std::printf("  latency  %.1f -> %.1f us   (%.2fx)\n", paper.latency_us, bp16.latency_us,
              bp16.latency_us / paper.latency_us);
  std::printf("  tput     %.1f -> %.1f KNTT/s\n", paper.throughput_kntt_s,
              bp16.throughput_kntt_s);
  std::printf("  energy   %.1f -> %.1f nJ/batch\n", paper.energy_nj, bp16.energy_nj);
  std::printf("  area     %.3f -> %.3f mm2\n", paper.area_mm2, bp16.area_mm2);
  std::printf("  TP       %.1f -> %.1f KNTT/mJ\n", paper.tput_per_mj(), bp16.tput_per_mj());

  std::printf("\nNotes: baseline rows are the paper's published 45nm-projected numbers\n"
              "(Table I footnote *); the measured CPU rows use this host and an assumed\n"
              "%.0f W core power, so only their order of magnitude is meaningful.\n",
              cpu.assumed_power_w);

  if (!json_path.empty()) {
    std::vector<std::pair<bpntt::baselines::design_point, bool>> rows;
    rows.emplace_back(bp16, true);
    rows.emplace_back(bp14, true);
    rows.emplace_back(paper, false);
    for (const auto& d : baselines) rows.emplace_back(d, false);
    rows.emplace_back(cpu_row, true);
    rows.emplace_back(cpu_fast_row, true);
    write_json(json_path, rows, ours, papers);
  }
  return 0;
}
