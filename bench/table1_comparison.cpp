// Table I reproduction: BP-NTT (measured on the cycle-level simulator)
// against the published 45 nm-projected baselines, on a 256-point
// polynomial.  Prints the full table, the paper's anchor row for BP-NTT,
// and the headline TA/TP ratios ("up to 29x throughput-per-area, 10-138x
// throughput-per-power").
#include <cstdio>
#include <string>

#include "baselines/cpu_baseline.h"
#include "baselines/design_model.h"
#include "baselines/published.h"
#include "bpntt/perf_model.h"
#include "common/table.h"

namespace {

using bpntt::common::format_double;
using bpntt::common::format_si;

bpntt::baselines::design_point measure_bpntt_row(unsigned coef_bits, std::uint64_t q) {
  bpntt::core::engine_config cfg;  // 256x256 @ 45 nm (paper's headline array)
  bpntt::core::ntt_params p;
  p.n = 256;
  p.q = q;
  p.k = coef_bits;
  const auto m = bpntt::core::measure_forward(cfg, p);
  bpntt::baselines::design_point d;
  d.name = "BP-NTT (ours, k=" + std::to_string(coef_bits) + ")";
  d.technology = "In-SRAM";
  d.coef_bits = coef_bits;
  d.max_f_mhz = cfg.tech.freq_ghz * 1e3;
  d.latency_us = m.latency_us;
  d.throughput_kntt_s = m.throughput_kntt_s;
  d.energy_nj = m.energy_nj;
  d.ntts_per_batch = m.lanes;
  d.area_mm2 = m.area_mm2;
  return d;
}

std::vector<std::string> row_cells(const bpntt::baselines::design_point& d) {
  return {d.name,
          d.technology,
          std::to_string(d.coef_bits),
          d.max_f_mhz > 0 ? format_si(d.max_f_mhz * 1e6, 1) + "Hz" : "-",
          format_double(d.latency_us, 2),
          format_double(d.throughput_kntt_s, 1),
          format_double(d.energy_nj, 1),
          d.area_mm2 > 0 ? format_double(d.area_mm2, 3) : "-",
          d.area_mm2 > 0 ? format_double(d.tput_per_area(), 1) : "-",
          format_double(d.tput_per_mj(), 2)};
}

}  // namespace

int main() {
  std::printf("=== Table I: comparing BP-NTT with state-of-the-art on a 256-point "
              "polynomial (45 nm) ===\n\n");

  // Measured BP-NTT rows at the paper's two parameter points.  16-bit uses
  // the Falcon prime; "14-bit class" uses the round-1 Kyber prime on 14-bit
  // tiles (2q < 2^14), matching the paper's coefficient-bitwidth pairing.
  const auto bp16 = measure_bpntt_row(16, 12289);
  const auto bp14 = measure_bpntt_row(14, 7681);
  const auto paper = bpntt::baselines::published_bpntt();
  const auto baselines = bpntt::baselines::all_published_baselines();

  bpntt::common::text_table table({"Design", "Tech", "Bits", "Max f", "Lat(us)",
                                   "Tput(KNTT/s)", "E(nJ)", "Area(mm2)", "TA", "TP(KNTT/mJ)"});
  table.add_row(row_cells(bp16));
  table.add_row(row_cells(bp14));
  table.add_row(row_cells(paper));
  table.add_separator();
  for (const auto& d : baselines) table.add_row(row_cells(d));

  // Measured CPU baselines on this host (methodology note printed below):
  // the portable 128-bit-division NTT and the Montgomery-reduction one.
  const bpntt::math::ntt_tables tables(256, 12289, true);
  const auto cpu = bpntt::baselines::measure_cpu_ntt(tables);
  auto cpu_row = bpntt::baselines::cpu_design_point(cpu, 16);
  cpu_row.name = "CPU (measured, portable)";
  const auto cpu_fast = bpntt::baselines::measure_cpu_ntt_fast(tables);
  auto cpu_fast_row = bpntt::baselines::cpu_design_point(cpu_fast, 16);
  cpu_fast_row.name = "CPU (measured, Montgomery)";
  table.add_separator();
  table.add_row(row_cells(cpu_row));
  table.add_row(row_cells(cpu_fast_row));

  std::printf("%s\n", table.to_string(2).c_str());

  const auto ours = bpntt::baselines::compute_headlines(bp16, baselines);
  const auto papers = bpntt::baselines::compute_headlines(paper, baselines);
  std::printf("Headline ratios vs published baselines (paper claims: up to 29x TA, "
              "10-138x TP):\n");
  std::printf("  ours  : TA up to %.1fx | TP %.1fx - %.1fx\n", ours.max_ta, ours.min_tp,
              ours.max_tp);
  std::printf("  paper : TA up to %.1fx | TP %.1fx - %.1fx\n", papers.max_ta, papers.min_tp,
              papers.max_tp);

  std::printf("\nAnchor check (BP-NTT 16-bit, paper -> ours):\n");
  std::printf("  latency  %.1f -> %.1f us   (%.2fx)\n", paper.latency_us, bp16.latency_us,
              bp16.latency_us / paper.latency_us);
  std::printf("  tput     %.1f -> %.1f KNTT/s\n", paper.throughput_kntt_s,
              bp16.throughput_kntt_s);
  std::printf("  energy   %.1f -> %.1f nJ/batch\n", paper.energy_nj, bp16.energy_nj);
  std::printf("  area     %.3f -> %.3f mm2\n", paper.area_mm2, bp16.area_mm2);
  std::printf("  TP       %.1f -> %.1f KNTT/mJ\n", paper.tput_per_mj(), bp16.tput_per_mj());

  std::printf("\nNotes: baseline rows are the paper's published 45nm-projected numbers\n"
              "(Table I footnote *); the measured CPU row uses this host and an assumed\n"
              "%.0f W core power, so only its order of magnitude is meaningful.\n",
              cpu.assumed_power_w);
  return 0;
}
