// RNS big-modulus polynomial multiplication: limb-count sweep.
//
// One big-coefficient negacyclic product mod M = q_0 * ... * q_{k-1} runs
// as k word-sized products, one per limb prime, fanned out by the runtime
// as one dispatch group per limb on a multi-channel topology (one channel
// per limb stream).  The sweep reports, per limb count: the modulus the
// chain reaches, the per-limb serial sum of dispatch cycles, the measured
// makespan (virtual-timeline wall_cycles), and the overlap saving — the
// scheduler's overlap machinery exercised by a real multi-limb workload.
//
// Every run is verified against the wide_uint schoolbook oracle before its
// row is printed, so a scheduling or CRT bug cannot emit a plausible row.
//
// Usage: bench_rns_bigmul [--json <path>] [--limbs <max>]
//   --json   also emit the sweep as JSON (CI perf artifact, conventionally
//            BENCH_rns_bigmul.json)
//   --limbs  largest chain length to sweep (default 4)
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/table.h"
#include "common/xoshiro.h"
#include "rns/rns_engine.h"
#include "runtime/context.h"

namespace {

using bpntt::math::wide_uint;

// The sweep's ring: n = 128 keeps the in-array product pipeline inside the
// default 256-row subarray (2n rows per lane), 14-bit limbs match the
// paper's PQC tile class.
constexpr unsigned kOrder = 128;
constexpr unsigned kLimbBits = 14;
constexpr unsigned kTileBits = 15;

std::vector<wide_uint> random_big_poly(const bpntt::rns::rns_basis& basis,
                                       bpntt::common::xoshiro256ss& rng) {
  std::vector<wide_uint> poly;
  poly.reserve(kOrder);
  for (unsigned i = 0; i < kOrder; ++i) {
    wide_uint c(basis.wide_bits());
    for (unsigned bit = 0; bit < basis.modulus_bits(); bit += 64) {
      const bpntt::core::u64 word = rng();
      for (unsigned b = 0; b < 64 && bit + b < basis.modulus_bits(); ++b) {
        c.set_bit(bit + b, (word >> b) & 1ULL);
      }
    }
    poly.push_back(c.divmod(basis.modulus()).rem);  // canonicalize < M
  }
  return poly;
}

struct sweep_row {
  unsigned limbs = 0;
  unsigned modulus_bits = 0;
  bpntt::core::u64 serial_cycles = 0;
  bpntt::core::u64 makespan_cycles = 0;
  double overlap_saving = 0.0;  // 1 - makespan / serial
};

sweep_row run_one(unsigned limbs) {
  using namespace bpntt;
  const auto basis = rns::rns_basis::with_limb_bits(kOrder, kLimbBits, limbs);

  // One channel per limb: the placement the limb streams want.  A single
  // limb still runs through the same machinery (no overlap to claim).
  const auto opts = runtime::runtime_options()
                        .with_ring(kOrder, basis.prime(0), kTileBits)
                        .with_backend(runtime::backend_kind::sram)
                        .with_topology(/*channels=*/limbs, /*banks_per_channel=*/1,
                                       /*subarrays=*/4)
                        .with_threads(limbs);
  runtime::context ctx(opts);
  rns::rns_engine eng(ctx, basis);

  common::xoshiro256ss rng(2024 + limbs);
  const auto a = random_big_poly(eng.basis(), rng);
  const auto b = random_big_poly(eng.basis(), rng);

  const auto before = ctx.stats();
  const auto c = eng.polymul(a, b);
  const auto after = ctx.stats();

  const auto expect = rns::schoolbook_negacyclic_wide(a, b, eng.basis().modulus());
  for (unsigned i = 0; i < kOrder; ++i) {
    if (!(c[i] == expect[i])) {
      throw std::runtime_error("rns_bigmul: limb sweep k=" + std::to_string(limbs) +
                               " disagrees with the schoolbook oracle at coefficient " +
                               std::to_string(i));
    }
  }

  sweep_row row;
  row.limbs = limbs;
  row.modulus_bits = eng.basis().modulus_bits();
  row.serial_cycles = eng.last_fanout().serial_cycles;
  row.makespan_cycles = after.wall_cycles - before.wall_cycles;
  row.overlap_saving =
      row.serial_cycles == 0
          ? 0.0
          : 1.0 - static_cast<double>(row.makespan_cycles) / static_cast<double>(row.serial_cycles);
  return row;
}

void write_json(const std::string& path, const std::vector<sweep_row>& rows) {
  std::string out = "{\n  \"bench\": \"rns_bigmul\",\n  \"n\": " + std::to_string(kOrder) +
                    ",\n  \"limb_bits\": " + std::to_string(kLimbBits) + ",\n  \"rows\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    char buf[256];
    std::snprintf(buf, sizeof buf,
                  "    {\"limbs\": %u, \"modulus_bits\": %u, \"serial_cycles\": %llu, "
                  "\"makespan_cycles\": %llu, \"overlap_saving\": %.4f}",
                  rows[i].limbs, rows[i].modulus_bits,
                  static_cast<unsigned long long>(rows[i].serial_cycles),
                  static_cast<unsigned long long>(rows[i].makespan_cycles),
                  rows[i].overlap_saving);
    out += buf;
    out += i + 1 < rows.size() ? ",\n" : "\n";
  }
  out += "  ]\n}\n";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    throw std::runtime_error("rns_bigmul: cannot open --json path " + path);
  }
  std::fwrite(out.data(), 1, out.size(), f);
  std::fclose(f);
  std::printf("\nwrote %zu JSON bytes to %s\n", out.size(), path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  unsigned max_limbs = 4;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--limbs") == 0 && i + 1 < argc) {
      max_limbs = static_cast<unsigned>(std::strtoul(argv[++i], nullptr, 10));
      if (max_limbs == 0 || max_limbs > 16) {
        std::fprintf(stderr, "rns_bigmul: --limbs must be in [1, 16]\n");
        return 2;
      }
    } else {
      std::fprintf(stderr, "usage: %s [--json <path>] [--limbs <max>]\n", argv[0]);
      return 2;
    }
  }

  std::printf("=== RNS big-modulus negacyclic polymul, %u-point ring, %u-bit limbs "
              "(one channel per limb) ===\n\n",
              kOrder, kLimbBits);

  std::vector<sweep_row> rows;
  for (unsigned limbs = 1; limbs <= max_limbs; ++limbs) {
    rows.push_back(run_one(limbs));
  }

  bpntt::common::text_table table(
      {"Limbs", "Modulus", "Serial(cyc)", "Makespan(cyc)", "Overlap saved"});
  for (const auto& r : rows) {
    char saved[32];
    std::snprintf(saved, sizeof saved, "%.1f%%", 100.0 * r.overlap_saving);
    table.add_row({std::to_string(r.limbs), std::to_string(r.modulus_bits) + "b",
                   std::to_string(r.serial_cycles), std::to_string(r.makespan_cycles), saved});
  }
  std::printf("%s", table.to_string().c_str());
  std::printf("\nevery row verified against the wide_uint schoolbook oracle\n");

  if (!json_path.empty()) write_json(json_path, rows);

  // A multi-limb run that fails to overlap at all is a scheduling
  // regression; keep the bench honest in CI smoke runs.
  return rows.back().limbs == 1 || rows.back().makespan_cycles < rows.back().serial_cycles
             ? 0
             : 1;
}
