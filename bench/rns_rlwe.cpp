// Leveled RNS-RLWE: homomorphic-multiply sweep down the level chain.
//
// One row per chain length: a fresh scheme (keygen included) encrypts a
// random bit-polynomial and multiplies at the top level twice — once with
// a cold NTT-domain operand cache, once warm.  The warm repeat is the
// fixed-evaluation-key case every leveled workload hits: the relin
// products' key operands are already transformed, so the makespan drops.
// The walk then squares down to the one-limb floor, checking every level's
// decryption against the plain GF(2) negacyclic square — a wrong
// relinearization or rescale cannot emit a plausible row.
//
// Usage: bench_rns_rlwe [--json <path>] [--limbs <max>] [--trace <path>]
//   --json   also emit the sweep as JSON (CI perf artifact, conventionally
//            BENCH_rns_rlwe.json)
//   --limbs  largest ciphertext chain length to sweep (default 4, min 2)
//   --trace  run the deepest sweep (--limbs) with virtual-timeline tracing
//            on and export its Chrome trace-event JSON here — the full
//            multiply/relinearize/rescale walk, one span per dispatch on
//            its bank row (open in Perfetto / chrome://tracing)
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/table.h"
#include "common/xoshiro.h"
#include "crypto/rns_rlwe/rns_rlwe.h"
#include "runtime/context.h"

namespace {

using bpntt::core::u64;

// 20-bit limbs leave each level a comfortable noise budget at n = 128
// (fresh ~2^10, tensor ~2^27 against a 2^20 rescale divisor).
constexpr unsigned kOrder = 128;
constexpr unsigned kLimbBits = 20;

std::vector<u64> negacyclic_mod2(const std::vector<u64>& a, const std::vector<u64>& b) {
  std::vector<u64> out(a.size(), 0);
  for (std::size_t i = 0; i < a.size(); ++i) {
    for (std::size_t j = 0; j < b.size(); ++j) out[(i + j) % a.size()] ^= a[i] & b[j];
  }
  return out;
}

struct sweep_row {
  unsigned limbs = 0;
  unsigned modulus_bits = 0;   // ciphertext chain ΠQ at the top level
  unsigned ks_bits = 0;        // key-switching extension ΠP
  u64 cold_cycles = 0;         // first top-level multiply, cache cold
  u64 warm_cycles = 0;         // repeat with cached key transforms
  u64 cache_hits = 0;          // operand-cache hits the repeat produced
  double warm_saving = 0.0;    // 1 - warm / cold
  int floor_noise_bits = 0;    // budget left after walking to the floor
  // On-array residency: device-row high-water mark (the pinned evaluation
  // key plus transient ciphertext operands) and residency-affinity claims.
  u64 resident_rows_peak = 0;
  u64 affinity_hits = 0;
};

sweep_row run_one(unsigned limbs, const std::string& trace_path) {
  using namespace bpntt;
  const auto params = crypto::he_rns_rlwe_level(kLimbBits, limbs, kOrder);
  const unsigned channels =
      static_cast<unsigned>(params.primes.size() + params.ks_primes.size());
  auto opts = runtime::runtime_options::for_rns_param_set(params.level_set())
                  .with_backend(runtime::backend_kind::sram)
                  .with_topology(channels, /*banks_per_channel=*/1, /*subarrays=*/4)
                  .with_threads(channels);
  if (!trace_path.empty()) opts.with_tracing();
  runtime::context ctx(opts);
  crypto::rns_rlwe::scheme sch(ctx, params, /*seed=*/6060 + limbs);

  common::xoshiro256ss rng(17 + limbs);
  std::vector<u64> plain(kOrder);
  for (auto& b : plain) b = rng() & 1ULL;
  const auto ct = sch.encrypt(plain);

  const auto cold_start = ctx.stats();
  const auto first = sch.multiply(ct, ct);
  const auto cold_end = ctx.stats();

  auto expect = negacyclic_mod2(plain, plain);
  if (sch.decrypt(first) != expect) {
    throw std::runtime_error("rns_rlwe: k=" + std::to_string(limbs) +
                             " cold multiply disagrees with the GF(2) oracle");
  }

  // The repeat: identical ciphertext, same evaluation key, warm cache.
  const auto warm_start = ctx.stats();
  const auto second = sch.multiply(ct, ct);
  const auto warm_end = ctx.stats();
  if (second.c0.residues != first.c0.residues || second.c1.residues != first.c1.residues) {
    throw std::runtime_error("rns_rlwe: k=" + std::to_string(limbs) +
                             " warm repeat changed the ciphertext");
  }

  // Walk the rest of the chain to the floor, verifying every level.
  auto walking = first;
  while (walking.level + 1 < sch.levels()) {
    walking = sch.square(walking);
    expect = negacyclic_mod2(expect, expect);
    if (sch.decrypt(walking) != expect) {
      throw std::runtime_error("rns_rlwe: k=" + std::to_string(limbs) +
                               " walk disagrees with the GF(2) oracle at level " +
                               std::to_string(walking.level));
    }
  }

  if (!trace_path.empty()) {
    // Quiescent: the walk's wait()s drained every dispatch before this.
    ctx.sync();
    ctx.export_trace(trace_path);
    const auto probe = ctx.trace_stats();
    std::printf("trace (k=%u): %llu events (%llu dropped) -> %s\n", limbs,
                static_cast<unsigned long long>(probe.events_recorded),
                static_cast<unsigned long long>(probe.events_dropped), trace_path.c_str());
  }

  sweep_row row;
  row.limbs = limbs;
  row.modulus_bits = params.modulus_bits();
  row.ks_bits = params.ks_modulus_bits();
  row.cold_cycles = cold_end.wall_cycles - cold_start.wall_cycles;
  row.warm_cycles = warm_end.wall_cycles - warm_start.wall_cycles;
  row.cache_hits = warm_end.operand_cache_hits - warm_start.operand_cache_hits;
  row.warm_saving = row.cold_cycles == 0
                        ? 0.0
                        : 1.0 - static_cast<double>(row.warm_cycles) /
                                    static_cast<double>(row.cold_cycles);
  row.floor_noise_bits = sch.noise_budget_bits(walking);
  const auto final_stats = ctx.stats();
  row.resident_rows_peak = final_stats.resident_rows_peak;
  row.affinity_hits = final_stats.residency_affinity_hits;
  return row;
}

void write_json(const std::string& path, const std::vector<sweep_row>& rows) {
  std::string out = "{\n  \"bench\": \"rns_rlwe\",\n  \"n\": " + std::to_string(kOrder) +
                    ",\n  \"limb_bits\": " + std::to_string(kLimbBits) + ",\n  \"rows\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    char buf[448];
    std::snprintf(buf, sizeof buf,
                  "    {\"limbs\": %u, \"modulus_bits\": %u, \"ks_bits\": %u, "
                  "\"cold_cycles\": %llu, \"warm_cycles\": %llu, \"cache_hits\": %llu, "
                  "\"warm_saving\": %.4f, \"floor_noise_bits\": %d, "
                  "\"resident_rows_peak\": %llu, \"affinity_hits\": %llu}",
                  rows[i].limbs, rows[i].modulus_bits, rows[i].ks_bits,
                  static_cast<unsigned long long>(rows[i].cold_cycles),
                  static_cast<unsigned long long>(rows[i].warm_cycles),
                  static_cast<unsigned long long>(rows[i].cache_hits),
                  rows[i].warm_saving, rows[i].floor_noise_bits,
                  static_cast<unsigned long long>(rows[i].resident_rows_peak),
                  static_cast<unsigned long long>(rows[i].affinity_hits));
    out += buf;
    out += i + 1 < rows.size() ? ",\n" : "\n";
  }
  out += "  ]\n}\n";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    throw std::runtime_error("rns_rlwe: cannot open --json path " + path);
  }
  std::fwrite(out.data(), 1, out.size(), f);
  std::fclose(f);
  std::printf("\nwrote %zu JSON bytes to %s\n", out.size(), path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  std::string trace_path;
  unsigned max_limbs = 4;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (std::strcmp(argv[i], "--limbs") == 0 && i + 1 < argc) {
      max_limbs = static_cast<unsigned>(std::strtoul(argv[++i], nullptr, 10));
      if (max_limbs < 2 || max_limbs > 8) {
        std::fprintf(stderr, "rns_rlwe: --limbs must be in [2, 8]\n");
        return 2;
      }
    } else {
      std::fprintf(stderr, "usage: %s [--json <path>] [--limbs <max>] [--trace <path>]\n",
                   argv[0]);
      return 2;
    }
  }

  std::printf("=== Leveled RNS-RLWE homomorphic multiply, %u-point ring, %u-bit limbs ===\n\n",
              kOrder, kLimbBits);

  std::vector<sweep_row> rows;
  for (unsigned limbs = 2; limbs <= max_limbs; ++limbs) {
    // Only the deepest sweep is traced — one trace file, the richest walk.
    rows.push_back(run_one(limbs, limbs == max_limbs ? trace_path : std::string()));
  }

  bpntt::common::text_table table({"Limbs", "ΠQ", "ΠP", "Cold(cyc)", "Warm(cyc)",
                                   "Cache hits", "Warm saved", "Floor noise", "Rows peak",
                                   "Affinity"});
  for (const auto& r : rows) {
    char saved[32];
    std::snprintf(saved, sizeof saved, "%.1f%%", 100.0 * r.warm_saving);
    table.add_row({std::to_string(r.limbs), std::to_string(r.modulus_bits) + "b",
                   std::to_string(r.ks_bits) + "b", std::to_string(r.cold_cycles),
                   std::to_string(r.warm_cycles), std::to_string(r.cache_hits), saved,
                   std::to_string(r.floor_noise_bits) + "b",
                   std::to_string(r.resident_rows_peak), std::to_string(r.affinity_hits)});
  }
  std::printf("%s", table.to_string().c_str());
  std::printf("\nevery level of every walk verified against the GF(2) negacyclic oracle\n");

  if (!json_path.empty()) write_json(json_path, rows);

  // The acceptance gate: a fixed evaluation key must make repeat
  // multiplies measurably cheaper than the cold-key path.
  bool cache_won = true;
  for (const auto& r : rows) {
    cache_won = cache_won && r.cache_hits > 0 && r.warm_cycles < r.cold_cycles;
  }
  return cache_won ? 0 : 1;
}
