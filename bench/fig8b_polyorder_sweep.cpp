// Fig. 8(b) reproduction: clock count and energy of the NTT at 16-bit
// coefficients as the polynomial order sweeps 16..4096 on one 256x256
// array.
//
// Orders up to 256 are measured on the cycle-level simulator.  Larger
// orders follow the paper's multi-tile scheme ("excess coefficients stored
// in adjacent tiles and merged using the 1-bit shift operation"): those
// points are produced by the calibrated analytical extension and tagged
// [model]; they include the cross-tile alignment shifts and the loss of
// SIMD lanes that drive the curve's steep growth.
#include <cstdio>

#include "bpntt/perf_model.h"
#include "common/table.h"
#include "nttmath/primes.h"

int main() {
  constexpr unsigned k = 16;
  std::printf("=== Fig. 8(b): NTT vs polynomial order (bitwidth = 16, 256x256 array) ===\n\n");

  bpntt::common::text_table t({"Order", "Lanes", "Cycles", "Latency(us)", "E/batch(nJ)",
                               "E/NTT(nJ)", "Remote BF", "Source"});

  bpntt::core::engine_config cfg;
  for (std::uint64_t n : {16ULL, 32ULL, 64ULL, 128ULL, 256ULL, 512ULL, 1024ULL, 2048ULL,
                          4096ULL}) {
    bpntt::core::ntt_metrics m;
    std::uint64_t remote = 0;
    if (n <= cfg.data_rows) {
      bpntt::core::ntt_params p;
      p.n = n;
      p.k = k;
      // Largest 14-bit-class NTT-friendly prime fitting the headroom; fall
      // back to synthetic when the window has none.
      p.q = 0;
      for (unsigned bits = 15; bits >= 4 && p.q == 0; --bits) {
        try {
          const auto q = bpntt::math::ntt_friendly_prime(bits, n, true);
          if (2 * q < (1ULL << k)) p.q = q;
        } catch (const std::exception&) {
        }
      }
      m = bpntt::core::measure_forward(cfg, p);
    } else {
      m = bpntt::core::extrapolate_forward(cfg, n, k);
      remote = bpntt::core::count_remote_butterflies(n, cfg.data_rows);
    }
    t.add_row({std::to_string(n), std::to_string(m.lanes), std::to_string(m.cycles),
               bpntt::common::format_double(m.latency_us, 1),
               bpntt::common::format_double(m.energy_nj, 1),
               bpntt::common::format_double(m.energy_nj / m.lanes, 2),
               std::to_string(remote), m.extrapolated ? "[model]" : "[measured]"});
  }
  std::printf("%s\n", t.to_string(2).c_str());

  std::printf("Expected shape (paper): the per-NTT curve rises steeper than in Fig. 8(a)\n"
              "because growing the order both shrinks the number of parallel NTTs and —\n"
              "beyond the 256-row tile capacity — adds cross-tile 1-bit-shift overhead\n"
              "for butterflies whose operands live in different tiles.  The paper notes\n"
              "larger subarrays or subarray interconnects avoid these overheads.\n");
  return 0;
}
