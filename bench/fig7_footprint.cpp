// Fig. 7 reproduction: memory footprint of in-memory NTT designs for a
// 32-bit, 128-point polynomial.
//
// BP-NTT's bit-parallel row-major layout needs n+6 rows x k columns
// (4288 cells); MeNTT's bit-serial layout needs ~(n+2) rows x n columns of
// per-column word storage; RM-NTT's vector-matrix formulation materialises
// an n x n twiddle matrix of k-bit entries.  The cell counts below follow
// each paper's own accounting as cited in Fig. 7.
#include <cstdio>

#include "bpntt/layout.h"
#include "common/table.h"

namespace {

struct footprint {
  const char* design;
  const char* layout;
  std::uint64_t rows;
  std::uint64_t cols;
  std::uint64_t cells() const { return rows * cols; }
};

}  // namespace

int main() {
  constexpr std::uint64_t n = 128;
  constexpr unsigned k = 32;

  std::printf("=== Fig. 7: in-memory data layout for NTT on a 32-bit, 128-point "
              "polynomial ===\n\n");

  const footprint designs[] = {
      // BP-NTT: coefficients down the rows of one k-bit tile + 6
      // intermediate rows (the paper's accounting).
      {"BP-NTT", "bit-parallel rows (SRAM)", n + bpntt::core::row_layout::scratch_rows, k},
      // MeNTT: bit-serial columns; 128 coefficient columns of 128 rows plus
      // two transposed scratch rows of words -> 130 x 128 (paper: 16,640).
      {"MeNTT", "bit-serial columns (SRAM)", 130, 128},
      // RM-NTT: vector-matrix product needs an n x n matrix of 32-bit
      // entries -> 128 x 4096 (paper: 524,288).
      {"RM-NTT", "vector-matrix (ReRAM)", 128, 4096},
  };

  bpntt::common::text_table t({"Design", "Layout", "Rows", "Cols", "Cells", "vs BP-NTT"});
  const double base = static_cast<double>(designs[0].cells());
  for (const auto& d : designs) {
    t.add_row({d.design, d.layout, std::to_string(d.rows), std::to_string(d.cols),
               std::to_string(d.cells()),
               bpntt::common::format_double(d.cells() / base, 1) + "x"});
  }
  std::printf("%s\n", t.to_string(2).c_str());

  std::printf("Paper reports: BP-NTT 4288 cells (134 x 32), MeNTT 16,640, RM-NTT 524,288.\n");
  std::printf("Ours (paper accounting): %llu cells.\n",
              static_cast<unsigned long long>(
                  bpntt::core::row_layout::footprint_cells_paper(n, k)));
  std::printf("Ours (incl. our 3 constant rows M, 2^k-M, 1): %llu cells — see DESIGN.md §6.\n",
              static_cast<unsigned long long>(
                  bpntt::core::row_layout::footprint_cells_actual(n, k)));

  // Capacity claims from §I: one 256x256 subarray.
  std::printf("\nCapacity of one 256x256 subarray (+6 intermediate rows):\n");
  struct cap {
    unsigned k;
    std::uint64_t points;
  } caps[] = {{256, 250}, {14, 4500}, {16, 4000}, {32, 2000}};
  for (const auto& c : caps) {
    const unsigned tiles = 256 / c.k;
    const std::uint64_t pts = static_cast<std::uint64_t>(tiles) * 250;
    std::printf("  %3u-bit coefficients: %2u tiles x 250 rows = %llu-point capacity%s\n", c.k,
                tiles, static_cast<unsigned long long>(pts),
                pts >= c.points ? "" : "  (!)");
  }
  std::printf("(paper: up to a 250-point polynomial with 256-bit coefficients, or a\n"
              " 4500-point polynomial with 14-bit coefficients)\n");
  return 0;
}
