// google-benchmark micro-benchmarks for the building blocks: golden NTT
// (the measured-CPU baseline of Table I), modular-multiplication variants,
// subarray micro-ops, and microcode compilation/execution.
#include <benchmark/benchmark.h>

#include "bpntt/engine.h"
#include "common/xoshiro.h"
#include "nttmath/barrett.h"
#include "nttmath/bp_modmul_ref.h"
#include "nttmath/montgomery.h"
#include "nttmath/ntt.h"
#include "nttmath/poly.h"

namespace {

using bpntt::math::u64;

void BM_GoldenNttForward(benchmark::State& state) {
  const u64 n = static_cast<u64>(state.range(0));
  const u64 q = 12289;
  const bpntt::math::ntt_tables tables(n, q, true);
  bpntt::common::xoshiro256ss rng(1);
  std::vector<u64> a(n);
  for (auto& x : a) x = rng.below(q);
  for (auto _ : state) {
    bpntt::math::ntt_forward(a, tables);
    benchmark::DoNotOptimize(a.data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GoldenNttForward)->Arg(256)->Arg(1024);

void BM_GoldenPolymul(benchmark::State& state) {
  const u64 n = static_cast<u64>(state.range(0));
  const bpntt::math::ntt_tables tables(n, 12289, true);
  bpntt::common::xoshiro256ss rng(2);
  std::vector<u64> a(n), b(n);
  for (auto& x : a) x = rng.below(12289);
  for (auto& x : b) x = rng.below(12289);
  for (auto _ : state) {
    auto c = bpntt::math::polymul_ntt(a, b, tables);
    benchmark::DoNotOptimize(c.data());
  }
}
BENCHMARK(BM_GoldenPolymul)->Arg(256);

void BM_ModmulMontgomery64(benchmark::State& state) {
  const bpntt::math::montgomery64 mont(12289);
  u64 x = 1234;
  for (auto _ : state) {
    x = mont.mul(x, 4321) | 1;
    benchmark::DoNotOptimize(x);
  }
}
BENCHMARK(BM_ModmulMontgomery64);

void BM_ModmulBarrett(benchmark::State& state) {
  const bpntt::math::barrett bar(12289);
  u64 x = 1234;
  for (auto _ : state) {
    x = bar.mul(x, 4321) | 1;
    benchmark::DoNotOptimize(x);
  }
}
BENCHMARK(BM_ModmulBarrett);

void BM_ModmulBitParallelModel(benchmark::State& state) {
  // Software model of Algorithm 2 (per-bit loop) — the algorithmic cost the
  // SRAM hides behind massive parallelism.
  u64 x = 1234;
  for (auto _ : state) {
    x = bpntt::math::bp_modmul(x % 12289, 4321, 12289, 16).value | 1;
    benchmark::DoNotOptimize(x);
  }
}
BENCHMARK(BM_ModmulBitParallelModel);

void BM_SubarrayPairOp(benchmark::State& state) {
  bpntt::sram::subarray array(32, bpntt::sram::tile_geometry{256, 16},
                              bpntt::sram::tech_45nm());
  array.host_write_word(0, 0, 0xABCD);
  array.host_write_word(0, 1, 0x1234);
  for (auto _ : state) {
    array.op_pair(2, 3, 0, 1);
    benchmark::DoNotOptimize(array.stats().cycles);
  }
}
BENCHMARK(BM_SubarrayPairOp);

void BM_CompileForward256(benchmark::State& state) {
  bpntt::core::ntt_params p;
  p.n = 256;
  p.q = 12289;
  p.k = 16;
  const bpntt::math::ntt_tables tables(p.n, p.q, true);
  const auto plan = bpntt::core::make_twiddle_plan(p, tables);
  const bpntt::core::microcode_compiler comp(p, bpntt::core::row_layout{256});
  for (auto _ : state) {
    auto prog = comp.compile_forward(plan);
    benchmark::DoNotOptimize(prog.ops.data());
  }
}
BENCHMARK(BM_CompileForward256);

void BM_SimulateForward64(benchmark::State& state) {
  // Full cycle-level simulation of a 64-point in-SRAM NTT batch.
  bpntt::core::engine_config cfg;
  cfg.data_rows = 64;
  cfg.cols = 256;
  bpntt::core::ntt_params p;
  p.n = 64;
  p.q = 257;
  p.k = 10;
  bpntt::core::bp_ntt_engine eng(cfg, p);
  bpntt::common::xoshiro256ss rng(3);
  std::vector<u64> poly(64);
  for (auto& x : poly) x = rng.below(257);
  for (unsigned lane = 0; lane < eng.lanes(); ++lane) eng.load_polynomial(lane, poly);
  for (auto _ : state) {
    auto stats = eng.run_forward();
    benchmark::DoNotOptimize(stats.cycles);
  }
}
BENCHMARK(BM_SimulateForward64);

}  // namespace
