// Cycle/energy breakdown of the headline NTT by micro-op class, plus the
// kernel-phase split (butterfly multiply vs. modular add/sub) measured by
// compiling the phases separately.  Quantifies where the paper's ~230-cycle
// butterfly budget goes and how the shift count compares with the
// bit-serial baseline ("#shifts is half of the prior bit-serial
// solutions", §I).
#include <cstdio>

#include "baselines/mentt_model.h"
#include "bpntt/engine.h"
#include "common/table.h"
#include "common/xoshiro.h"

int main() {
  using namespace bpntt;
  core::engine_config cfg;
  core::ntt_params p;
  p.n = 256;
  p.q = 12289;
  p.k = 16;
  core::bp_ntt_engine eng(cfg, p);
  common::xoshiro256ss rng(1);
  std::vector<core::u64> poly(p.n);
  for (unsigned lane = 0; lane < eng.lanes(); ++lane) {
    for (auto& x : poly) x = rng.below(p.q);
    eng.load_polynomial(lane, poly);
  }
  const auto s = eng.run_forward();

  std::printf("=== Micro-op breakdown: 256-point forward NTT, 16-bit tiles ===\n\n");
  common::text_table t({"Op class", "Count", "Share"});
  const double total = static_cast<double>(s.total_array_ops());
  auto row = [&](const char* name, std::uint64_t c) {
    t.add_row({name, std::to_string(c),
               common::format_double(100.0 * static_cast<double>(c) / total, 1) + "%"});
  };
  row("fused pair (AND+XOR)", s.pair_ops);
  row("binary (OR / clear)", s.binary_ops);
  row("copy (incl. masked)", s.copy_ops);
  row("shift (1-bit)", s.shift_ops);
  row("check (pred / zero)", s.check_ops);
  std::printf("%s\n", t.to_string(2).c_str());

  std::printf("total: %llu array cycles for %u lanes (%.1f cycles/butterfly)\n",
              static_cast<unsigned long long>(s.cycles), eng.lanes(),
              static_cast<double>(s.cycles) / (128 * 8));
  std::printf("energy: %.1f nJ/batch at %.3f pJ/cycle average\n", s.energy_pj * 1e-3,
              s.energy_pj / static_cast<double>(s.cycles));

  // Shift-count comparison with the bit-serial layout (paper contribution 2).
  const auto serial = baselines::mentt_ntt_estimate(p.n, 14);
  const auto parallel_model = baselines::bit_parallel_shift_count(p.n, 14);
  std::printf("\nShift accounting (n=256, k=14 class):\n");
  std::printf("  bit-serial layout (model):   %llu shifts (incl. operand alignment)\n",
              static_cast<unsigned long long>(serial.shift_ops));
  std::printf("  bit-parallel layout (model): %llu shifts (%.0f%% of bit-serial)\n",
              static_cast<unsigned long long>(parallel_model),
              100.0 * static_cast<double>(parallel_model) / serial.shift_ops);
  std::printf("  bit-parallel (measured @k=16): %llu shifts in %llu cycles (%.1f%%)\n",
              static_cast<unsigned long long>(s.shift_ops),
              static_cast<unsigned long long>(s.cycles),
              100.0 * static_cast<double>(s.shift_ops) / static_cast<double>(s.cycles));
  std::printf("\nPaper's claim reproduced: operand alignment costs no shifts (row\n"
              "selection is free); only Algorithm 2's internal Carry<<1 / s1>>1 remain,\n"
              "about half the bit-serial total.\n");
  return 0;
}
