// Microcode ablation study: quantifies the design choices DESIGN.md §3
// reconstructs, at the paper's headline configuration (256-point, 16-bit
// tiles).  Not a paper figure — it bounds how much of the Table I anchor
// gap is attributable to each reconstruction choice.
//
//   fused pairs      dual-write SAs commit both half-adder outputs per
//                    activation (our default, implied by the paper's cycle
//                    budget) vs conventional single-result SAs;
//   check period     wired-OR zero-test frequency in the carry ripples;
//   reduced iters    Algorithm 2 runs ceil(log2 2q) iterations instead of
//                    the tile width (twiddles pre-scaled with matching R).
#include <cstdio>

#include "bpntt/perf_model.h"
#include "common/table.h"

int main() {
  using namespace bpntt;
  std::printf("=== Microcode ablation (256-point NTT, q=12289, 16-bit tiles, "
              "256x256 array) ===\n\n");

  struct variant {
    const char* name;
    core::compile_options opts;
  };
  const variant variants[] = {
      {"fused, check=1 (default)", {true, 1, false}},
      {"fused, check=2", {true, 2, false}},
      {"fused, check=4", {true, 4, false}},
      {"fused, check=1, reduced iters", {true, 1, true}},
      {"fused, check=2, reduced iters", {true, 2, true}},
      {"unfused (single-result SA)", {false, 1, false}},
      {"unfused, reduced iters", {false, 1, true}},
  };

  core::ntt_params p;
  p.n = 256;
  p.q = 12289;
  p.k = 16;

  common::text_table t({"Variant", "Cycles", "Latency(us)", "E/batch(nJ)", "vs default",
                        "vs paper 61.9us"});
  double base_cycles = 0;
  for (const auto& v : variants) {
    core::engine_config cfg;
    cfg.microcode = v.opts;
    const auto m = core::measure_forward(cfg, p);
    if (base_cycles == 0) base_cycles = static_cast<double>(m.cycles);
    t.add_row({v.name, std::to_string(m.cycles), common::format_double(m.latency_us, 1),
               common::format_double(m.energy_nj, 1),
               common::format_double(m.cycles / base_cycles, 2) + "x",
               common::format_double(m.latency_us / 61.9, 2) + "x"});
  }
  std::printf("%s\n", t.to_string(2).c_str());

  std::printf("Reading: the dual-write pair fusion is load-bearing — without it the\n"
              "design misses the paper's cycle budget by ~2x, which is why DESIGN.md\n"
              "adopts it as the faithful reading of Fig. 5(b).  Reduced iterations\n"
              "(a classical Montgomery optimisation the paper does not describe)\n"
              "closes part of the remaining anchor gap; all variants are bit-exact\n"
              "(tests/bpntt/ablation_test.cpp).\n");
  return 0;
}
