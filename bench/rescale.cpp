// RNS modulus switching (rescale): limb-count sweep.
//
// One leveled-multiply step — big-modulus negacyclic product, then the
// exact divide-and-round by the dropped limb prime — runs per limb count.
// The sweep reports, per chain length: the modulus before and after the
// switch, the measured makespan of the fused modswitch_polymul (virtual-
// timeline wall_cycles), and the operand-cache effect of repeating the
// product with a warm cache (a fixed multiplicand's forward transforms are
// served from the NTT-domain cache, so the warm makespan drops).
//
// Every run is verified against the wide_uint divide-and-round oracle
// before its row is printed, so a rounding or scheduling bug cannot emit a
// plausible row.
//
// Usage: bench_rescale [--json <path>] [--limbs <max>]
//   --json   also emit the sweep as JSON (CI perf artifact, conventionally
//            BENCH_rescale.json)
//   --limbs  largest chain length to sweep (default 4, min 2)
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/table.h"
#include "common/xoshiro.h"
#include "rns/rns_engine.h"
#include "runtime/context.h"

namespace {

using bpntt::math::wide_uint;

// The sweep's ring: n = 128 keeps the in-array product pipeline inside the
// default 256-row subarray (2n rows per lane), 14-bit limbs match the
// paper's PQC tile class.
constexpr unsigned kOrder = 128;
constexpr unsigned kLimbBits = 14;
constexpr unsigned kTileBits = 15;

std::vector<wide_uint> random_big_poly(const bpntt::rns::rns_basis& basis,
                                       bpntt::common::xoshiro256ss& rng) {
  std::vector<wide_uint> poly;
  poly.reserve(kOrder);
  for (unsigned i = 0; i < kOrder; ++i) {
    wide_uint c(basis.wide_bits());
    for (unsigned b = 0; b < basis.modulus_bits(); ++b) c.set_bit(b, rng() & 1ULL);
    poly.push_back(c.divmod(basis.modulus()).rem);  // canonicalize < M
  }
  return poly;
}

struct sweep_row {
  unsigned limbs = 0;
  unsigned modulus_bits = 0;
  unsigned rescaled_bits = 0;
  bpntt::core::u64 cold_cycles = 0;  // first modswitch_polymul (cache cold)
  bpntt::core::u64 warm_cycles = 0;  // repeat with cached operand transforms
  bpntt::core::u64 cache_hits = 0;   // operand-cache hits the repeat produced
  double warm_saving = 0.0;          // 1 - warm / cold
  // On-array residency: high-water mark of device rows held by resident
  // operands, and scheduler claims that landed on a bank already holding
  // the stream's limb operands.
  bpntt::core::u64 resident_rows_peak = 0;
  bpntt::core::u64 affinity_hits = 0;
};

sweep_row run_one(unsigned limbs) {
  using namespace bpntt;
  const auto basis = rns::rns_basis::with_limb_bits(kOrder, kLimbBits, limbs);

  const auto opts = runtime::runtime_options()
                        .with_ring(kOrder, basis.prime(0), kTileBits)
                        .with_backend(runtime::backend_kind::sram)
                        .with_topology(/*channels=*/limbs, /*banks_per_channel=*/1,
                                       /*subarrays=*/4)
                        .with_threads(limbs);
  runtime::context ctx(opts);
  rns::rns_engine eng(ctx, basis);

  common::xoshiro256ss rng(4242 + limbs);
  const auto a = random_big_poly(eng.basis(), rng);
  const auto b = random_big_poly(eng.basis(), rng);

  const auto cold_start = ctx.stats();
  const auto c = eng.modswitch_polymul(a, b);
  const auto cold_end = ctx.stats();

  // The oracle: schoolbook product, wide divround by the dropped prime,
  // reduce into the smaller modulus.
  const auto product = rns::schoolbook_negacyclic_wide(a, b, basis.modulus());
  const auto& dropped = eng.dropped_basis();
  const wide_uint q_drop(64, basis.prime(basis.limbs() - 1));
  for (unsigned i = 0; i < kOrder; ++i) {
    const wide_uint expect =
        product[i].divround(q_drop).divmod(dropped.modulus()).rem.resized(
            dropped.wide_bits());
    if (!(c[i] == expect)) {
      throw std::runtime_error("rescale: limb sweep k=" + std::to_string(limbs) +
                               " disagrees with the divround oracle at coefficient " +
                               std::to_string(i));
    }
  }

  // The repeat: identical operands, warm NTT-domain cache.
  const auto warm_start = ctx.stats();
  const auto c2 = eng.modswitch_polymul(a, b);
  const auto warm_end = ctx.stats();
  for (unsigned i = 0; i < kOrder; ++i) {
    if (!(c2[i] == c[i])) {
      throw std::runtime_error("rescale: warm repeat k=" + std::to_string(limbs) +
                               " changed the result at coefficient " + std::to_string(i));
    }
  }

  sweep_row row;
  row.limbs = limbs;
  row.modulus_bits = basis.modulus_bits();
  row.rescaled_bits = dropped.modulus_bits();
  row.cold_cycles = cold_end.wall_cycles - cold_start.wall_cycles;
  row.warm_cycles = warm_end.wall_cycles - warm_start.wall_cycles;
  row.cache_hits = warm_end.operand_cache_hits - warm_start.operand_cache_hits;
  row.warm_saving = row.cold_cycles == 0
                        ? 0.0
                        : 1.0 - static_cast<double>(row.warm_cycles) /
                                    static_cast<double>(row.cold_cycles);
  row.resident_rows_peak = warm_end.resident_rows_peak;
  row.affinity_hits = warm_end.residency_affinity_hits;
  return row;
}

void write_json(const std::string& path, const std::vector<sweep_row>& rows) {
  std::string out = "{\n  \"bench\": \"rescale\",\n  \"n\": " + std::to_string(kOrder) +
                    ",\n  \"limb_bits\": " + std::to_string(kLimbBits) + ",\n  \"rows\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    char buf[448];
    std::snprintf(buf, sizeof buf,
                  "    {\"limbs\": %u, \"modulus_bits\": %u, \"rescaled_bits\": %u, "
                  "\"cold_cycles\": %llu, \"warm_cycles\": %llu, \"cache_hits\": %llu, "
                  "\"warm_saving\": %.4f, \"resident_rows_peak\": %llu, "
                  "\"affinity_hits\": %llu}",
                  rows[i].limbs, rows[i].modulus_bits, rows[i].rescaled_bits,
                  static_cast<unsigned long long>(rows[i].cold_cycles),
                  static_cast<unsigned long long>(rows[i].warm_cycles),
                  static_cast<unsigned long long>(rows[i].cache_hits), rows[i].warm_saving,
                  static_cast<unsigned long long>(rows[i].resident_rows_peak),
                  static_cast<unsigned long long>(rows[i].affinity_hits));
    out += buf;
    out += i + 1 < rows.size() ? ",\n" : "\n";
  }
  out += "  ]\n}\n";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    throw std::runtime_error("rescale: cannot open --json path " + path);
  }
  std::fwrite(out.data(), 1, out.size(), f);
  std::fclose(f);
  std::printf("\nwrote %zu JSON bytes to %s\n", out.size(), path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  unsigned max_limbs = 4;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--limbs") == 0 && i + 1 < argc) {
      max_limbs = static_cast<unsigned>(std::strtoul(argv[++i], nullptr, 10));
      if (max_limbs < 2 || max_limbs > 16) {
        std::fprintf(stderr, "rescale: --limbs must be in [2, 16]\n");
        return 2;
      }
    } else {
      std::fprintf(stderr, "usage: %s [--json <path>] [--limbs <max>]\n", argv[0]);
      return 2;
    }
  }

  std::printf("=== RNS modulus switching (multiply + rescale), %u-point ring, %u-bit limbs "
              "===\n\n",
              kOrder, kLimbBits);

  std::vector<sweep_row> rows;
  for (unsigned limbs = 2; limbs <= max_limbs; ++limbs) {
    rows.push_back(run_one(limbs));
  }

  bpntt::common::text_table table({"Limbs", "Modulus", "Rescaled", "Cold(cyc)", "Warm(cyc)",
                                   "Cache hits", "Warm saved", "Rows peak", "Affinity"});
  for (const auto& r : rows) {
    char saved[32];
    std::snprintf(saved, sizeof saved, "%.1f%%", 100.0 * r.warm_saving);
    table.add_row({std::to_string(r.limbs), std::to_string(r.modulus_bits) + "b",
                   std::to_string(r.rescaled_bits) + "b", std::to_string(r.cold_cycles),
                   std::to_string(r.warm_cycles), std::to_string(r.cache_hits), saved,
                   std::to_string(r.resident_rows_peak), std::to_string(r.affinity_hits)});
  }
  std::printf("%s", table.to_string().c_str());
  std::printf("\nevery row verified against the wide_uint divide-and-round oracle\n");

  if (!json_path.empty()) write_json(json_path, rows);

  // A warm repeat that fails to beat the cold run means the operand cache
  // stopped shortcutting transforms; keep the bench honest in CI smoke runs.
  bool cache_won = true;
  for (const auto& r : rows) {
    cache_won = cache_won && r.cache_hits > 0 && r.warm_cycles < r.cold_cycles;
  }
  return cache_won ? 0 : 1;
}
