#include "baselines/design_model.h"

#include <algorithm>

namespace bpntt::baselines {

double advantage(double bp_value, double baseline_value) noexcept {
  if (bp_value <= 0 || baseline_value <= 0) return 0.0;
  return bp_value / baseline_value;
}

headline_ratios compute_headlines(const design_point& bp,
                                  const std::vector<design_point>& baselines) {
  headline_ratios h;
  bool first_tp = true;
  for (const auto& d : baselines) {
    if (d.area_mm2 <= 0) continue;  // reference rows (CPU/FPGA) excluded
    const double tp = advantage(bp.tput_per_mj(), d.tput_per_mj());
    if (tp > 0) {
      if (first_tp) {
        h.min_tp = h.max_tp = tp;
        first_tp = false;
      } else {
        h.min_tp = std::min(h.min_tp, tp);
        h.max_tp = std::max(h.max_tp, tp);
      }
    }
    const double ta = advantage(bp.tput_per_area(), d.tput_per_area());
    h.max_ta = std::max(h.max_ta, ta);
  }
  return h;
}

}  // namespace bpntt::baselines
