#include "baselines/mentt_model.h"

#include "common/bitutil.h"

namespace bpntt::baselines {

mentt_estimate mentt_ntt_estimate(std::uint64_t n, unsigned k, double f_mhz) {
  const unsigned stages = common::log2_exact(n);
  // Per stage: one bit-serial modular multiply (~2 k-bit additions per
  // multiplier bit -> ~2k^2) plus butterfly add/sub and alignment
  // (~3 passes of k cycles).  Calibrated to MeNTT's published point.
  const double per_stage = 2.0 * k * k + 2.9 * k;
  mentt_estimate e;
  e.cycles = static_cast<std::uint64_t>(stages * per_stage);
  // Per butterfly, a word-aligned in-SRAM design shifts for (a) the k + k/2
  // shift steps inside the interleaved modular multiply and (b) operand
  // alignment between butterfly partners across the stage interconnect,
  // which costs about as much again (~3k/2 per butterfly).  BP-NTT's
  // row-shared tiles eliminate (b) entirely — the paper's "costless shift
  // for ~50% of the shift operations".
  const std::uint64_t butterflies = (n / 2) * stages;
  e.shift_ops = butterflies * 3 * k;
  e.latency_us = static_cast<double>(e.cycles) / f_mhz;
  return e;
}

std::uint64_t bit_parallel_shift_count(std::uint64_t n, unsigned k) {
  const unsigned stages = common::log2_exact(n);
  // Shifts remain only inside Algorithm 2: one Carry<<1 per set multiplier
  // bit (~k/2 expected) and one s1>>1 per iteration (k), per butterfly.
  const std::uint64_t butterflies = (n / 2) * stages;
  return butterflies * (k + k / 2);
}

}  // namespace bpntt::baselines
