// Design-point abstraction for the Table I comparison.
//
// A design point carries the metrics the paper tabulates for one NTT
// accelerator at one parameter setting.  The related-work rows come from
// the published table (the paper itself projects them to 45 nm; footnote *)
// while the BP-NTT row is produced by our simulator, so ratios are computed
// with the same methodology as the paper.
#pragma once

#include <string>
#include <vector>

namespace bpntt::baselines {

struct design_point {
  std::string name;
  std::string technology;  // "In-SRAM", "ReRAM", "ASIC", "FPGA", "x86"
  unsigned coef_bits = 0;
  double max_f_mhz = 0.0;
  double latency_us = 0.0;
  double throughput_kntt_s = 0.0;
  double energy_nj = 0.0;       // per batch as reported
  unsigned ntts_per_batch = 1;  // parallel/pipelined NTTs sharing that energy
  double area_mm2 = 0.0;        // 0 = not reported

  // Table I derived columns.
  [[nodiscard]] double tput_per_area() const noexcept {
    return area_mm2 > 0 ? throughput_kntt_s / area_mm2 : 0.0;
  }
  [[nodiscard]] double tput_per_mj() const noexcept {  // KNTT per mJ
    return energy_nj > 0 ? 1e3 * ntts_per_batch / energy_nj : 0.0;
  }
};

// Ratio of BP-NTT to a baseline on a derived metric (0 when undefined).
[[nodiscard]] double advantage(double bp_value, double baseline_value) noexcept;

// Best/worst-case headline ratios across a set of baselines.  Only
// accelerator rows with a reported area participate (the paper's
// "up to 29x TA, 10-138x TP" spans the in-memory and ASIC designs;
// the FPGA and CPU reference rows lack area and would inflate TP by
// 700-130000x).
struct headline_ratios {
  double min_tp = 0.0, max_tp = 0.0;  // throughput-per-power advantages
  double max_ta = 0.0;                // best throughput-per-area advantage
};
[[nodiscard]] headline_ratios compute_headlines(const design_point& bp,
                                                const std::vector<design_point>& baselines);

}  // namespace bpntt::baselines
