#include "baselines/published.h"

namespace bpntt::baselines {

design_point published_mentt() {
  return {"MeNTT", "In-SRAM", 14, 218.0, 15.9, 62.8, 47.8, 1, 0.173};
}

design_point published_cryptopim() {
  // 38 in-flight NTTs reproduce the published 14.7 KNTT/mJ from 2.6 uJ.
  return {"CryptoPIM", "ReRAM", 16, 909.0, 68.7, 553.3, 2600.0, 38, 0.152};
}

design_point published_rmntt() {
  return {"RM-NTT", "ReRAM", 14, 249.0, 0.45, 2200.0, 602.0, 1, 0.289};
}

design_point published_leia() {
  return {"LEIA", "ASIC", 14, 267.0, 0.6, 1700.0, 44.1, 1, 1.77};
}

design_point published_sapphire() {
  return {"Sapphire", "ASIC", 14, 64.0, 20.1, 49.7, 236.3, 1, 0.354};
}

design_point published_fpga() {
  return {"FPGA", "FPGA", 16, 164.0, 24.3, 41.2, 3061.0, 1, 0.0};
}

design_point published_cpu() {
  return {"CPU", "x86", 16, 2000.0, 85.0, 11.8, 570000.0, 1, 0.0};
}

design_point published_bpntt() {
  return {"BP-NTT (paper)", "In-SRAM", 16, 3800.0, 61.9, 258.6, 69.4, 16, 0.063};
}

std::vector<design_point> all_published_baselines() {
  return {published_mentt(), published_cryptopim(), published_rmntt(),  published_leia(),
          published_sapphire(), published_fpga(), published_cpu()};
}

}  // namespace bpntt::baselines
