// Published Table I rows for the related-work designs (256-point NTT,
// technology projected to 45 nm by the paper; footnote *).
//
// These are inputs to the comparison, not our measurements: the authors of
// BP-NTT took them from MeNTT [8], CryptoPIM [10], RM-NTT [9], LEIA [25],
// Sapphire [3], an FPGA design [26] and a CPU reference [10].  CryptoPIM's
// batch factor is inferred from its published throughput-per-power (its
// pipeline keeps ~38 NTTs in flight per reported energy figure); every
// other design reports per-NTT energy.
#pragma once

#include <vector>

#include "baselines/design_model.h"

namespace bpntt::baselines {

[[nodiscard]] design_point published_mentt();
[[nodiscard]] design_point published_cryptopim();
[[nodiscard]] design_point published_rmntt();
[[nodiscard]] design_point published_leia();
[[nodiscard]] design_point published_sapphire();
[[nodiscard]] design_point published_fpga();
[[nodiscard]] design_point published_cpu();

// The paper's own BP-NTT row (used to sanity-check our simulator against
// the published anchor, not as a result).
[[nodiscard]] design_point published_bpntt();

[[nodiscard]] std::vector<design_point> all_published_baselines();

}  // namespace bpntt::baselines
