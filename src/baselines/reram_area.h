// First-order ReRAM array area model — our stand-in for the Destiny
// simulator the paper uses to estimate the CryptoPIM and RM-NTT subarray
// areas (§V-A: "we utilize the Destiny simulator to optimistically estimate
// only the subarray areas, and we do not account for their complex
// peripheral circuitry").
//
// 1T1R ReRAM cells are ~3x denser than 6T SRAM (≈12F² vs ≈150F² effective),
// but compute-capable ReRAM arrays spend most of their footprint on
// DAC/ADC/sense peripherals; following the paper we model cells plus a thin
// mat-level overhead only.
#pragma once

#include <cstdint>

namespace bpntt::baselines {

struct reram_params {
  double feature_nm = 45.0;
  double cell_area_f2 = 12.0;      // 1T1R cell in F^2
  double array_efficiency = 0.55;  // cells / (cells + drivers + mux), mat level
};

[[nodiscard]] double reram_array_area_mm2(const reram_params& p, std::uint64_t cells);

// The two designs' Table I configurations (cells from their papers'
// layouts for the 256-point evaluation).
[[nodiscard]] double cryptopim_area_estimate_mm2();  // ≈ 0.152 mm^2 published
[[nodiscard]] double rmntt_area_estimate_mm2();      // ≈ 0.289 mm^2 published

}  // namespace bpntt::baselines
