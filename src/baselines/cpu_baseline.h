// Measured CPU baseline: times the golden NTT on the host machine for the
// Table I "CPU" row.  The paper cites a 2 GHz x86 reference at 85 us /
// 256-point; a modern core with our table-driven implementation is much
// faster, so the bench prints both the published reference and the local
// measurement (the comparison methodology is unchanged — see DESIGN.md §4).
#pragma once

#include "baselines/design_model.h"
#include "nttmath/ntt.h"

namespace bpntt::baselines {

struct cpu_measurement {
  double latency_us = 0.0;       // per forward NTT
  double throughput_kntt_s = 0.0;
  double energy_nj = 0.0;        // latency x assumed core power
  double assumed_power_w = 0.0;
};

// Runs `iterations` forward transforms over random inputs and reports the
// mean.  `core_power_w` converts time to energy (one active core).
[[nodiscard]] cpu_measurement measure_cpu_ntt(const math::ntt_tables& tables,
                                              unsigned iterations = 2000,
                                              double core_power_w = 15.0);

// Same measurement with the Montgomery-reduction NTT (the competitive
// software baseline; see nttmath/fast_ntt.h).
[[nodiscard]] cpu_measurement measure_cpu_ntt_fast(const math::ntt_tables& tables,
                                                   unsigned iterations = 2000,
                                                   double core_power_w = 15.0);

[[nodiscard]] design_point cpu_design_point(const cpu_measurement& m, unsigned coef_bits);

}  // namespace bpntt::baselines
