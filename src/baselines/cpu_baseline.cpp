#include "baselines/cpu_baseline.h"

#include <chrono>
#include <vector>

#include "common/xoshiro.h"
#include "nttmath/fast_ntt.h"

namespace bpntt::baselines {

cpu_measurement measure_cpu_ntt(const math::ntt_tables& tables, unsigned iterations,
                                double core_power_w) {
  common::xoshiro256ss rng(7);
  std::vector<std::uint64_t> a(tables.n());
  for (auto& x : a) x = rng.below(tables.q());

  // Warm up caches and branch predictors.
  for (int w = 0; w < 16; ++w) math::ntt_forward(a, tables);

  const auto t0 = std::chrono::steady_clock::now();
  for (unsigned i = 0; i < iterations; ++i) {
    math::ntt_forward(a, tables);
    // Keep values canonical across iterations (forward output already is).
  }
  const auto t1 = std::chrono::steady_clock::now();
  const double total_us =
      std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count() / 1e3;

  cpu_measurement m;
  m.latency_us = total_us / iterations;
  m.throughput_kntt_s = m.latency_us > 0 ? 1e3 / m.latency_us : 0.0;
  m.assumed_power_w = core_power_w;
  m.energy_nj = m.latency_us * core_power_w * 1e3;  // us * W = uJ -> nJ
  return m;
}

cpu_measurement measure_cpu_ntt_fast(const math::ntt_tables& tables, unsigned iterations,
                                     double core_power_w) {
  const math::fast_ntt fast(tables);
  common::xoshiro256ss rng(7);
  std::vector<std::uint64_t> a(tables.n());
  for (auto& x : a) x = rng.below(tables.q());
  for (int w = 0; w < 16; ++w) fast.forward(a);

  const auto t0 = std::chrono::steady_clock::now();
  for (unsigned i = 0; i < iterations; ++i) fast.forward(a);
  const auto t1 = std::chrono::steady_clock::now();
  const double total_us =
      std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count() / 1e3;

  cpu_measurement m;
  m.latency_us = total_us / iterations;
  m.throughput_kntt_s = m.latency_us > 0 ? 1e3 / m.latency_us : 0.0;
  m.assumed_power_w = core_power_w;
  m.energy_nj = m.latency_us * core_power_w * 1e3;
  return m;
}

design_point cpu_design_point(const cpu_measurement& m, unsigned coef_bits) {
  design_point d;
  d.name = "CPU (measured)";
  d.technology = "x86";
  d.coef_bits = coef_bits;
  d.max_f_mhz = 0.0;  // host-dependent
  d.latency_us = m.latency_us;
  d.throughput_kntt_s = m.throughput_kntt_s;
  d.energy_nj = m.energy_nj;
  d.ntts_per_batch = 1;
  d.area_mm2 = 0.0;
  return d;
}

}  // namespace bpntt::baselines
