#include "baselines/reram_area.h"

namespace bpntt::baselines {

double reram_array_area_mm2(const reram_params& p, std::uint64_t cells) {
  const double f_um = p.feature_nm * 1e-3;
  const double cell_um2 = p.cell_area_f2 * f_um * f_um;
  return cells * cell_um2 / p.array_efficiency * 1e-6;
}

double cryptopim_area_estimate_mm2() {
  // CryptoPIM pipelines the 256-point NTT across one crossbar mat per
  // stage: 8 stages of 256x512-cell mats, tripled for the ping-pong
  // buffering + pre-stored twiddle planes of its fixed interconnect, plus
  // shift-add reduction LUTs.
  const reram_params p;
  const std::uint64_t stage_cells = 8ULL * 256 * 512;
  const std::uint64_t cells = 3 * stage_cells + 256ULL * 1024;
  return reram_array_area_mm2(p, cells);
}

double rmntt_area_estimate_mm2() {
  // RM-NTT materialises the n x n transform matrix with 16-bit bit-sliced
  // entries on differential (positive/negative) crossbar pairs, for both
  // the forward and inverse directions, plus DAC-side vector staging.
  const reram_params p;
  const std::uint64_t matrix_cells = 256ULL * 256 * 16;
  const std::uint64_t cells = 4 * matrix_cells + 2ULL * 256 * 16 * 64;
  return reram_array_area_mm2(p, cells);
}

}  // namespace bpntt::baselines
