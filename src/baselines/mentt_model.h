// First-order cycle model of a MeNTT-style *bit-serial* in-SRAM NTT.
//
// MeNTT lays each coefficient down a column (bit-serial): every butterfly
// in a stage executes concurrently across columns, but each arithmetic step
// streams one bit per cycle, so a k-bit interleaved modular multiply costs
// O(k^2) cycles and the stage count multiplies that.  This model exists for
// the ablation the paper argues qualitatively: bit-parallel (row-major)
// trades per-word parallelism for SIMD width, and its shift count is about
// half of the bit-serial layout's (§I contribution 2).  Constants are
// calibrated against MeNTT's published 256-point/14-bit latency
// (15.9 us at 218 MHz = ~3466 cycles).
#pragma once

#include <cstdint>

namespace bpntt::baselines {

struct mentt_estimate {
  std::uint64_t cycles = 0;
  std::uint64_t shift_ops = 0;  // inter-stage alignment shifts
  double latency_us = 0.0;
};

// n-point NTT with k-bit coefficients at frequency f_mhz.
[[nodiscard]] mentt_estimate mentt_ntt_estimate(std::uint64_t n, unsigned k,
                                                double f_mhz = 218.0);

// Alignment-shift count of a bit-parallel (BP-NTT style) layout for the
// same kernel, for the "half the shifts" comparison: only the k shift
// cycles inside each modular multiply remain; all operand alignment is row
// selection.
[[nodiscard]] std::uint64_t bit_parallel_shift_count(std::uint64_t n, unsigned k);

}  // namespace bpntt::baselines
