#include "isa/executor.h"

#include <stdexcept>

namespace bpntt::isa {

run_result executor::run(const program& p, sram::subarray& array) const {
  run_result r;
  std::size_t pc = 0;
  std::uint64_t budget = max_ops_;
  while (pc < p.ops.size()) {
    if (budget-- == 0) throw std::runtime_error("executor: op budget exhausted (runaway loop?)");
    const micro_op& op = p.ops[pc];
    std::size_t next = pc + 1;
    switch (op.type) {
      case op_type::check:
        switch (op.mode) {
          case check_mode::predicate:
            array.op_check_pred(op.src0, op.bit_index);
            ++r.executed_ops;
            break;
          case check_mode::zero_test:
            array.op_check_zero(op.src0);
            ++r.executed_ops;
            break;
          case check_mode::ctrl:
            ++r.executed_ctrl;
            switch (op.ctrl) {
              case ctrl_kind::halt:
                r.halted = true;
                return r;
              case ctrl_kind::jump:
                next = pc + 1 + op.offset;
                break;
              case ctrl_kind::branch_nonzero:
                if (!array.zero_flag()) next = pc + 1 + op.offset;
                break;
              case ctrl_kind::branch_zero:
                if (array.zero_flag()) next = pc + 1 + op.offset;
                break;
            }
            break;
        }
        break;
      case op_type::unary:
        array.op_copy(op.dst, op.src0, op.invert, op.mask);
        ++r.executed_ops;
        break;
      case op_type::shift:
        array.op_shift(op.dst, op.src0, op.dir, op.segmented, op.expect_lossless);
        ++r.executed_ops;
        break;
      case op_type::binary:
        if (op.pair) {
          array.op_pair(op.dst, static_cast<std::uint16_t>(op.dst + op.s_dst_delta), op.src0,
                        op.src1);
        } else {
          array.op_binary(op.dst, op.src0, op.src1, op.fn);
        }
        ++r.executed_ops;
        break;
    }
    if (next > p.ops.size()) throw std::runtime_error("executor: branch out of range");
    pc = next;
  }
  return r;
}

}  // namespace bpntt::isa
