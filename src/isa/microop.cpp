#include "isa/microop.h"

#include <stdexcept>

namespace bpntt::isa {
namespace {

void check_row(std::uint16_t row) {
  if (row >= 512) throw std::invalid_argument("micro_op: row address exceeds 9 bits");
}

}  // namespace

micro_op make_check_pred(std::uint16_t src, std::uint8_t bit) {
  check_row(src);
  micro_op op;
  op.type = op_type::check;
  op.mode = check_mode::predicate;
  op.src0 = src;
  op.bit_index = bit;
  return op;
}

micro_op make_check_zero(std::uint16_t src) {
  check_row(src);
  micro_op op;
  op.type = op_type::check;
  op.mode = check_mode::zero_test;
  op.src0 = src;
  return op;
}

namespace {
micro_op make_ctrl(ctrl_kind kind, std::int16_t offset) {
  if (offset < -512 || offset > 511) throw std::invalid_argument("micro_op: ctrl offset range");
  micro_op op;
  op.type = op_type::check;
  op.mode = check_mode::ctrl;
  op.ctrl = kind;
  op.offset = offset;
  return op;
}
}  // namespace

micro_op make_halt() { return make_ctrl(ctrl_kind::halt, 0); }
micro_op make_jump(std::int16_t offset) { return make_ctrl(ctrl_kind::jump, offset); }
micro_op make_branch_nonzero(std::int16_t offset) {
  return make_ctrl(ctrl_kind::branch_nonzero, offset);
}
micro_op make_branch_zero(std::int16_t offset) {
  return make_ctrl(ctrl_kind::branch_zero, offset);
}

micro_op make_copy(std::uint16_t dst, std::uint16_t src, bool invert, sram::write_mask mask) {
  check_row(dst);
  check_row(src);
  micro_op op;
  op.type = op_type::unary;
  op.dst = dst;
  op.src0 = src;
  op.invert = invert;
  op.mask = mask;
  return op;
}

micro_op make_shift(std::uint16_t dst, std::uint16_t src, sram::shift_dir dir,
                    bool expect_lossless) {
  check_row(dst);
  check_row(src);
  micro_op op;
  op.type = op_type::shift;
  op.dst = dst;
  op.src0 = src;
  op.dir = dir;
  op.segmented = true;
  op.expect_lossless = expect_lossless;
  return op;
}

micro_op make_binary(std::uint16_t dst, std::uint16_t src0, std::uint16_t src1,
                     sram::logic_fn fn) {
  check_row(dst);
  check_row(src0);
  check_row(src1);
  micro_op op;
  op.type = op_type::binary;
  op.dst = dst;
  op.src0 = src0;
  op.src1 = src1;
  op.fn = fn;
  return op;
}

micro_op make_pair(std::uint16_t c_dst, std::uint16_t s_dst, std::uint16_t src0,
                   std::uint16_t src1) {
  check_row(c_dst);
  check_row(s_dst);
  check_row(src0);
  check_row(src1);
  const int delta = static_cast<int>(s_dst) - static_cast<int>(c_dst);
  if (delta < -4 || delta > 3 || delta == 0) {
    throw std::invalid_argument("micro_op: pair s_dst must be within [-4,3] of c_dst");
  }
  micro_op op;
  op.type = op_type::binary;
  op.dst = c_dst;
  op.src0 = src0;
  op.src1 = src1;
  op.pair = true;
  op.s_dst_delta = static_cast<std::int8_t>(delta);
  return op;
}

std::uint64_t encode(const micro_op& op) {
  std::uint64_t w = static_cast<std::uint64_t>(op.type) & 0x3U;
  switch (op.type) {
    case op_type::check:
      w |= static_cast<std::uint64_t>(op.src0 & 0x1FFU) << 2;
      w |= static_cast<std::uint64_t>(op.bit_index) << 11;
      w |= (static_cast<std::uint64_t>(op.mode) & 0x3U) << 19;
      if (op.mode == check_mode::ctrl) {
        w |= (static_cast<std::uint64_t>(op.ctrl) & 0x3U) << 21;
        w |= (static_cast<std::uint64_t>(op.offset) & 0x3FFU) << 23;
      }
      break;
    case op_type::unary:
      w |= static_cast<std::uint64_t>(op.dst & 0x1FFU) << 2;
      w |= static_cast<std::uint64_t>(op.src0 & 0x1FFU) << 11;
      w |= static_cast<std::uint64_t>(op.invert ? 1 : 0) << 20;
      w |= (static_cast<std::uint64_t>(op.mask) & 0x3U) << 21;
      break;
    case op_type::shift:
      w |= static_cast<std::uint64_t>(op.dst & 0x1FFU) << 2;
      w |= static_cast<std::uint64_t>(op.src0 & 0x1FFU) << 11;
      w |= static_cast<std::uint64_t>(op.dir == sram::shift_dir::right ? 1 : 0) << 20;
      w |= static_cast<std::uint64_t>(op.segmented ? 1 : 0) << 21;
      w |= static_cast<std::uint64_t>(op.expect_lossless ? 1 : 0) << 22;
      break;
    case op_type::binary:
      w |= static_cast<std::uint64_t>(op.dst & 0x1FFU) << 2;
      w |= static_cast<std::uint64_t>(op.src0 & 0x1FFU) << 11;
      w |= static_cast<std::uint64_t>(op.src1 & 0x1FFU) << 20;
      w |= (static_cast<std::uint64_t>(op.fn) & 0x3U) << 29;
      w |= static_cast<std::uint64_t>(op.pair ? 1 : 0) << 31;
      w |= (static_cast<std::uint64_t>(op.s_dst_delta) & 0x7U) << 32;
      break;
  }
  return w;
}

micro_op decode(std::uint64_t w) {
  micro_op op;
  op.type = static_cast<op_type>(w & 0x3U);
  switch (op.type) {
    case op_type::check:
      op.src0 = static_cast<std::uint16_t>((w >> 2) & 0x1FFU);
      op.bit_index = static_cast<std::uint8_t>((w >> 11) & 0xFFU);
      op.mode = static_cast<check_mode>((w >> 19) & 0x3U);
      if (op.mode == check_mode::ctrl) {
        op.ctrl = static_cast<ctrl_kind>((w >> 21) & 0x3U);
        const std::uint32_t raw = static_cast<std::uint32_t>((w >> 23) & 0x3FFU);
        op.offset = static_cast<std::int16_t>(raw >= 512 ? static_cast<int>(raw) - 1024
                                                         : static_cast<int>(raw));
      }
      break;
    case op_type::unary:
      op.dst = static_cast<std::uint16_t>((w >> 2) & 0x1FFU);
      op.src0 = static_cast<std::uint16_t>((w >> 11) & 0x1FFU);
      op.invert = ((w >> 20) & 1U) != 0;
      op.mask = static_cast<sram::write_mask>((w >> 21) & 0x3U);
      break;
    case op_type::shift:
      op.dst = static_cast<std::uint16_t>((w >> 2) & 0x1FFU);
      op.src0 = static_cast<std::uint16_t>((w >> 11) & 0x1FFU);
      op.dir = ((w >> 20) & 1U) != 0 ? sram::shift_dir::right : sram::shift_dir::left;
      op.segmented = ((w >> 21) & 1U) != 0;
      op.expect_lossless = ((w >> 22) & 1U) != 0;
      break;
    case op_type::binary:
      op.dst = static_cast<std::uint16_t>((w >> 2) & 0x1FFU);
      op.src0 = static_cast<std::uint16_t>((w >> 11) & 0x1FFU);
      op.src1 = static_cast<std::uint16_t>((w >> 20) & 0x1FFU);
      op.fn = static_cast<sram::logic_fn>((w >> 29) & 0x3U);
      op.pair = ((w >> 31) & 1U) != 0;
      {
        const std::uint32_t raw = static_cast<std::uint32_t>((w >> 32) & 0x7U);
        op.s_dst_delta = static_cast<std::int8_t>(raw >= 4 ? static_cast<int>(raw) - 8
                                                           : static_cast<int>(raw));
      }
      break;
  }
  return op;
}

std::string disassemble(const micro_op& op) {
  auto row = [](std::uint16_t r) { return "r" + std::to_string(r); };
  switch (op.type) {
    case op_type::check:
      switch (op.mode) {
        case check_mode::predicate:
          return "check.pred " + row(op.src0) + ", bit " + std::to_string(op.bit_index);
        case check_mode::zero_test:
          return "check.zero " + row(op.src0);
        case check_mode::ctrl:
          switch (op.ctrl) {
            case ctrl_kind::halt: return "halt";
            case ctrl_kind::jump: return "jump " + std::to_string(op.offset);
            case ctrl_kind::branch_nonzero: return "bnz " + std::to_string(op.offset);
            case ctrl_kind::branch_zero: return "bz " + std::to_string(op.offset);
          }
      }
      return "check.?";
    case op_type::unary: {
      std::string s = "copy " + row(op.dst) + " <- " + (op.invert ? "~" : "") + row(op.src0);
      if (op.mask == sram::write_mask::pred) s += " if.pred";
      if (op.mask == sram::write_mask::pred_inv) s += " if.npred";
      return s;
    }
    case op_type::shift:
      return std::string("shift.") + (op.dir == sram::shift_dir::left ? "l " : "r ") +
             row(op.dst) + " <- " + row(op.src0) + (op.expect_lossless ? " !lossless" : "");
    case op_type::binary: {
      static const char* fns[] = {"and", "or", "xor", "nor"};
      if (op.pair) {
        return "pair {" + row(op.dst) + "," +
               row(static_cast<std::uint16_t>(op.dst + op.s_dst_delta)) + "} <- " +
               row(op.src0) + ", " + row(op.src1);
      }
      return std::string(fns[static_cast<int>(op.fn)]) + " " + row(op.dst) + " <- " +
             row(op.src0) + ", " + row(op.src1);
    }
  }
  return "?";
}

}  // namespace bpntt::isa
