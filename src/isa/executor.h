// Controller model: fetches micro-ops from a program image and issues them
// to one subarray, handling the ctrl pseudo-ops (halt / jump / branches on
// the wired-OR zero flag).  Array ops cost one array cycle each (counted by
// the subarray); ctrl ops execute in the controller concurrently with the
// array and cost no array cycles.
#pragma once

#include <cstdint>

#include "isa/program.h"
#include "sram/subarray.h"

namespace bpntt::isa {

struct run_result {
  std::uint64_t executed_ops = 0;   // array ops issued
  std::uint64_t executed_ctrl = 0;  // controller-only ops
  bool halted = false;              // reached a halt (vs. fell off the end)
};

class executor {
 public:
  // `max_ops` guards against runaway loops in malformed programs.
  explicit executor(std::uint64_t max_ops = 1ULL << 32) : max_ops_(max_ops) {}

  run_result run(const program& p, sram::subarray& array) const;

 private:
  std::uint64_t max_ops_;
};

}  // namespace bpntt::isa
