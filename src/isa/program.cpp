#include "isa/program.h"

#include <stdexcept>

namespace bpntt::isa {

std::vector<std::uint64_t> program::encode_image() const {
  std::vector<std::uint64_t> image;
  image.reserve(ops.size());
  for (const auto& op : ops) image.push_back(encode(op));
  return image;
}

program program::decode_image(const std::vector<std::uint64_t>& image) {
  program p;
  p.ops.reserve(image.size());
  for (auto w : image) p.ops.push_back(decode(w));
  return p;
}

std::string program::disassemble() const {
  std::string out;
  for (std::size_t i = 0; i < ops.size(); ++i) {
    out += std::to_string(i) + ": " + bpntt::isa::disassemble(ops[i]) + "\n";
  }
  return out;
}

std::int16_t program_builder::rel(std::size_t target) const {
  // Offset is applied after the implicit pc increment: pc' = pc + 1 + offset.
  const std::ptrdiff_t delta =
      static_cast<std::ptrdiff_t>(target) - static_cast<std::ptrdiff_t>(ops_.size()) - 1;
  if (delta < -512 || delta > 511) throw std::out_of_range("program_builder: branch too far");
  return static_cast<std::int16_t>(delta);
}

void program_builder::jump_to(std::size_t target) { emit(make_jump(rel(target))); }
void program_builder::branch_nonzero_to(std::size_t target) {
  emit(make_branch_nonzero(rel(target)));
}
void program_builder::branch_zero_to(std::size_t target) { emit(make_branch_zero(rel(target))); }

program_builder::label program_builder::reserve_branch_zero() {
  emit(make_branch_zero(0));
  return ops_.size() - 1;
}

program_builder::label program_builder::reserve_branch_nonzero() {
  emit(make_branch_nonzero(0));
  return ops_.size() - 1;
}

program_builder::label program_builder::reserve_jump() {
  emit(make_jump(0));
  return ops_.size() - 1;
}

void program_builder::patch_to_here(label l) {
  if (l >= ops_.size()) throw std::out_of_range("program_builder: bad label");
  micro_op& op = ops_[l];
  if (op.type != op_type::check || op.mode != check_mode::ctrl) {
    throw std::logic_error("program_builder: label is not a branch");
  }
  const std::ptrdiff_t delta =
      static_cast<std::ptrdiff_t>(ops_.size()) - static_cast<std::ptrdiff_t>(l) - 1;
  if (delta < -512 || delta > 511) throw std::out_of_range("program_builder: branch too far");
  op.offset = static_cast<std::int16_t>(delta);
}

program program_builder::take() {
  program p;
  p.ops = std::move(ops_);
  ops_.clear();
  return p;
}

}  // namespace bpntt::isa
