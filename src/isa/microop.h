// BP-NTT micro-instruction set (Fig. 4d of the paper).
//
// Four array-instruction types — Check / Unary / Shift / Binary — are
// stored in the repurposed CTRL/CMD subarray.  The paper's figure shows
// 8-bit row-address fields, which cover its 250-coefficient layout
// (250 + 6 intermediate rows = 256 wordlines); the headline 256-point
// evaluation uses the "256x256 plus 6 rows" variant (§V-E), whose >256
// wordlines require 9-bit addresses.  We therefore encode 9-bit row fields
// and pack control words into 64 bits (35 bits used); this is the only
// deviation from the figure and is recorded in DESIGN.md §6.
//
// The controller additionally executes three program-flow pseudo-ops (halt
// and short relative jumps/branches on the wired-OR zero flag); these never
// touch the array and live in a reserved Check sub-mode.
//
// Encoding layout (LSB first):
//   all types    [1:0]   type (0 check, 1 unary, 2 shift, 3 binary)
//   check        [10:2]  src row     [18:11] bit index
//                [20:19] mode (0 latch-predicate, 1 zero-test, 2 ctrl)
//                ctrl:   [22:21] kind (0 halt, 1 jump, 2 bnz, 3 bz)
//                        [32:23] signed 10-bit relative offset
//   unary        [10:2]  dst         [19:11] src
//                [20] invert         [22:21] write mask mode
//   shift        [10:2]  dst         [19:11] src
//                [20] dir (0 left)   [21] segmented   [22] expect_lossless
//   binary       [10:2]  dst         [19:11] src0     [28:20] src1
//                [30:29] fn (and/or/xor/nor)
//                [31] pair           [34:32] signed s_dst - dst (pair only)
#pragma once

#include <cstdint>
#include <string>

#include "sram/subarray.h"

namespace bpntt::isa {

enum class op_type : std::uint8_t { check = 0, unary = 1, shift = 2, binary = 3 };
enum class check_mode : std::uint8_t { predicate = 0, zero_test = 1, ctrl = 2 };
enum class ctrl_kind : std::uint8_t { halt = 0, jump = 1, branch_nonzero = 2, branch_zero = 3 };

struct micro_op {
  op_type type = op_type::unary;

  // Shared row fields (9-bit range enforced at encode time).
  std::uint16_t dst = 0;
  std::uint16_t src0 = 0;
  std::uint16_t src1 = 0;

  // check
  check_mode mode = check_mode::predicate;
  std::uint8_t bit_index = 0;
  ctrl_kind ctrl = ctrl_kind::halt;
  std::int16_t offset = 0;  // relative, in instructions; [-512, 511]

  // unary
  bool invert = false;
  sram::write_mask mask = sram::write_mask::none;

  // shift
  sram::shift_dir dir = sram::shift_dir::left;
  bool segmented = true;
  bool expect_lossless = false;

  // binary
  sram::logic_fn fn = sram::logic_fn::op_and;
  bool pair = false;
  std::int8_t s_dst_delta = 0;  // s_dst = dst + delta; [-4, 3], nonzero

  bool operator==(const micro_op&) const = default;
};

// --- Factories (the assembler vocabulary). ---
[[nodiscard]] micro_op make_check_pred(std::uint16_t src, std::uint8_t bit);
[[nodiscard]] micro_op make_check_zero(std::uint16_t src);
[[nodiscard]] micro_op make_halt();
[[nodiscard]] micro_op make_jump(std::int16_t offset);
[[nodiscard]] micro_op make_branch_nonzero(std::int16_t offset);
[[nodiscard]] micro_op make_branch_zero(std::int16_t offset);
[[nodiscard]] micro_op make_copy(std::uint16_t dst, std::uint16_t src, bool invert = false,
                                 sram::write_mask mask = sram::write_mask::none);
[[nodiscard]] micro_op make_shift(std::uint16_t dst, std::uint16_t src, sram::shift_dir dir,
                                  bool expect_lossless = false);
[[nodiscard]] micro_op make_binary(std::uint16_t dst, std::uint16_t src0, std::uint16_t src1,
                                   sram::logic_fn fn);
// Fused half-adder: {AND -> c_dst, XOR -> s_dst}; s_dst - c_dst in [-4, 3].
[[nodiscard]] micro_op make_pair(std::uint16_t c_dst, std::uint16_t s_dst, std::uint16_t src0,
                                 std::uint16_t src1);

// Control-word round trip (64-bit words, 35 bits used).
[[nodiscard]] std::uint64_t encode(const micro_op& op);
[[nodiscard]] micro_op decode(std::uint64_t word);

[[nodiscard]] std::string disassemble(const micro_op& op);

}  // namespace bpntt::isa
