// Micro-op program container and a small assembler with label patching.
//
// Programs compiled for the array are mostly straight-line (twiddle bits
// are baked in at compile time — the paper's "implicit compare"), with
// short backward do-while loops for data-dependent carry-ripple early exit.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "isa/microop.h"

namespace bpntt::isa {

struct program {
  std::vector<micro_op> ops;

  [[nodiscard]] std::size_t size() const noexcept { return ops.size(); }
  // Encoded image as stored in the CTRL/CMD subarray.
  [[nodiscard]] std::vector<std::uint64_t> encode_image() const;
  [[nodiscard]] static program decode_image(const std::vector<std::uint64_t>& image);
  [[nodiscard]] std::string disassemble() const;
};

class program_builder {
 public:
  using label = std::size_t;

  [[nodiscard]] std::size_t here() const noexcept { return ops_.size(); }

  void emit(micro_op op) { ops_.push_back(op); }
  void check_pred(std::uint16_t src, std::uint8_t bit) { emit(make_check_pred(src, bit)); }
  void check_zero(std::uint16_t src) { emit(make_check_zero(src)); }
  void copy(std::uint16_t dst, std::uint16_t src, bool invert = false,
            sram::write_mask mask = sram::write_mask::none) {
    emit(make_copy(dst, src, invert, mask));
  }
  void shift(std::uint16_t dst, std::uint16_t src, sram::shift_dir dir,
             bool expect_lossless = false) {
    emit(make_shift(dst, src, dir, expect_lossless));
  }
  void binary(std::uint16_t dst, std::uint16_t src0, std::uint16_t src1, sram::logic_fn fn) {
    emit(make_binary(dst, src0, src1, fn));
  }
  void pair(std::uint16_t c_dst, std::uint16_t s_dst, std::uint16_t src0, std::uint16_t src1) {
    emit(make_pair(c_dst, s_dst, src0, src1));
  }
  // Clear a row without a constant-zero source: x XOR x = 0.
  void clear(std::uint16_t row) { binary(row, row, row, sram::logic_fn::op_xor); }
  void halt() { emit(make_halt()); }

  // Backward control flow to a previously recorded position.
  void jump_to(std::size_t target);
  void branch_nonzero_to(std::size_t target);
  void branch_zero_to(std::size_t target);

  // Forward branch: reserve now, patch when the target is known.
  [[nodiscard]] label reserve_branch_zero();
  [[nodiscard]] label reserve_branch_nonzero();
  [[nodiscard]] label reserve_jump();
  void patch_to_here(label l);

  [[nodiscard]] program take();

 private:
  std::int16_t rel(std::size_t target) const;

  std::vector<micro_op> ops_;
};

}  // namespace bpntt::isa
