// Memory-trace generators for the roofline study.
//
// Each generator walks the exact access pattern of a kernel (Algorithm 1
// for NTT, its Gentleman-Sande inverse, and schoolbook polynomial
// multiplication as a no-NTT contrast), replaying loads/stores through a
// cache hierarchy and counting arithmetic operations.  Coefficients are
// 16-bit (the common PQC storage width); twiddles live in a separate table.
#pragma once

#include <cstdint>
#include <string>

#include "roofline/cache_model.h"

namespace bpntt::roofline {

struct kernel_trace_result {
  std::string kernel;
  std::uint64_t n = 0;
  std::uint64_t ops = 0;     // modular mul/add/sub operations executed
  std::uint64_t loads = 0;   // element accesses
  std::uint64_t stores = 0;
};

// Replays `repeats` transforms over hier; returns op/access counts.
kernel_trace_result trace_ntt_forward(hierarchy& hier, std::uint64_t n, unsigned repeats = 1,
                                      unsigned elem_bytes = 2);
kernel_trace_result trace_ntt_inverse(hierarchy& hier, std::uint64_t n, unsigned repeats = 1,
                                      unsigned elem_bytes = 2);
kernel_trace_result trace_schoolbook(hierarchy& hier, std::uint64_t n, unsigned repeats = 1,
                                     unsigned elem_bytes = 2);

}  // namespace bpntt::roofline
