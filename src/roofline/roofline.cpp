#include "roofline/roofline.h"

#include <algorithm>

namespace bpntt::roofline {

std::string roofline_report::binding_level() const {
  for (const auto& lv : levels) {
    if (lv.bandwidth_bound) return lv.level;
  }
  return {};
}

roofline_report make_report(const kernel_trace_result& trace, const hierarchy& hier,
                            double peak_gops) {
  roofline_report rep;
  rep.kernel = trace.kernel;
  rep.n = trace.n;
  rep.ops = trace.ops;
  rep.peak_gops = peak_gops;

  const struct {
    const char* name;
    std::uint64_t bytes;
    double bw;
  } raw[] = {
      {"L1", hier.bytes_core_l1(), hier.l1().config().bandwidth_gbs},
      {"L2", hier.bytes_l1_l2(), hier.l2().config().bandwidth_gbs},
      {"LLC", hier.bytes_l2_llc(), hier.llc().config().bandwidth_gbs},
      {"DRAM", hier.bytes_llc_dram(), hier.dram_bw_gbs()},
  };
  for (const auto& lv : raw) {
    level_point p;
    p.level = lv.name;
    p.bytes = lv.bytes;
    p.bandwidth_gbs = lv.bw;
    p.intensity = lv.bytes > 0 ? static_cast<double>(trace.ops) / lv.bytes : 1e9;
    p.attainable_gops = std::min(peak_gops, p.intensity * lv.bw);
    p.bandwidth_bound = p.attainable_gops < peak_gops;
    rep.levels.push_back(p);
  }
  return rep;
}

}  // namespace bpntt::roofline
