#include "roofline/cache_model.h"

#include <stdexcept>

#include "common/bitutil.h"

namespace bpntt::roofline {

cache_level::cache_level(cache_config cfg) : cfg_(std::move(cfg)) {
  if (cfg_.line_bytes == 0 || !common::is_power_of_two(cfg_.line_bytes)) {
    throw std::invalid_argument("cache_level: line size must be a power of two");
  }
  if (cfg_.associativity == 0) throw std::invalid_argument("cache_level: associativity");
  const std::uint64_t lines = cfg_.size_bytes / cfg_.line_bytes;
  if (lines == 0 || lines % cfg_.associativity != 0) {
    throw std::invalid_argument("cache_level: size/assoc/line mismatch");
  }
  num_sets_ = static_cast<unsigned>(lines / cfg_.associativity);
  ways_.assign(static_cast<std::size_t>(num_sets_) * cfg_.associativity, way{});
}

bool cache_level::access(std::uint64_t addr, bool write, bool* evicted_dirty) {
  if (evicted_dirty != nullptr) *evicted_dirty = false;
  const std::uint64_t line = addr / cfg_.line_bytes;
  const unsigned set = static_cast<unsigned>(line % num_sets_);
  const std::uint64_t tag = line / num_sets_;
  way* base = &ways_[static_cast<std::size_t>(set) * cfg_.associativity];

  ++ctr_.accesses;
  ++tick_;
  for (unsigned w = 0; w < cfg_.associativity; ++w) {
    if (base[w].valid && base[w].tag == tag) {
      base[w].lru = tick_;
      if (write) base[w].dirty = true;
      ++ctr_.hits;
      return true;
    }
  }

  // Miss: choose LRU victim.
  ++ctr_.misses;
  way* victim = base;
  for (unsigned w = 1; w < cfg_.associativity; ++w) {
    if (!base[w].valid) {
      victim = &base[w];
      break;
    }
    if (base[w].lru < victim->lru) victim = &base[w];
  }
  if (victim->valid && victim->dirty) {
    ++ctr_.writebacks;
    if (evicted_dirty != nullptr) *evicted_dirty = true;
  }
  victim->valid = true;
  victim->dirty = write;
  victim->tag = tag;
  victim->lru = tick_;
  return false;
}

hierarchy::hierarchy(cache_config l1, cache_config l2, cache_config llc, double dram_bw_gbs)
    : l1_(std::move(l1)), l2_(std::move(l2)), llc_(std::move(llc)), dram_bw_gbs_(dram_bw_gbs) {}

void hierarchy::access(std::uint64_t addr, unsigned bytes, bool write) {
  core_bytes_ += bytes;
  // A straddling access touches each line once.
  const unsigned line = l1_.config().line_bytes;
  const std::uint64_t first = addr / line;
  const std::uint64_t last = (addr + (bytes ? bytes - 1 : 0)) / line;
  for (std::uint64_t ln = first; ln <= last; ++ln) {
    const std::uint64_t a = ln * line;
    bool dirty_evict = false;
    if (l1_.access(a, write, &dirty_evict)) continue;
    // L1 miss traffic (and any writeback) goes to L2.
    bool l2_dirty = false;
    const bool l2_hit = l2_.access(a, false, &l2_dirty);
    if (dirty_evict) l2_.access(a, true, nullptr);  // writeback updates L2
    if (l2_hit) continue;
    bool llc_dirty = false;
    const bool llc_hit = llc_.access(a, false, &llc_dirty);
    if (l2_dirty) llc_.access(a, true, nullptr);
    (void)llc_dirty;
    if (llc_hit) continue;
    // else: DRAM fill, counted through llc misses.
  }
}

std::uint64_t hierarchy::bytes_l1_l2() const noexcept {
  return (l1_.counters().misses + l1_.counters().writebacks) * l1_.config().line_bytes;
}

std::uint64_t hierarchy::bytes_l2_llc() const noexcept {
  return (l2_.counters().misses + l2_.counters().writebacks) * l2_.config().line_bytes;
}

std::uint64_t hierarchy::bytes_llc_dram() const noexcept {
  return (llc_.counters().misses + llc_.counters().writebacks) * llc_.config().line_bytes;
}

hierarchy make_default_hierarchy() {
  // Single load/store-port edge-class core: one 128-bit L1 access per cycle
  // at 3 GHz (48 GB/s), halving per level below — the regime where the
  // paper's Fig. 1 places the lattice kernels.
  cache_config l1{"L1", 32 * 1024, 8, 64, 48.0};
  cache_config l2{"L2", 256 * 1024, 8, 64, 24.0};
  cache_config llc{"LLC", 2 * 1024 * 1024, 16, 64, 16.0};
  return hierarchy(l1, l2, llc, 8.0);
}

}  // namespace bpntt::roofline
