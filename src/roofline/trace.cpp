#include "roofline/trace.h"

namespace bpntt::roofline {
namespace {

constexpr std::uint64_t kPolyBase = 0x100000;
constexpr std::uint64_t kZetaBase = 0x200000;
constexpr std::uint64_t kOutBase = 0x300000;

}  // namespace

kernel_trace_result trace_ntt_forward(hierarchy& hier, std::uint64_t n, unsigned repeats,
                                      unsigned elem_bytes) {
  kernel_trace_result r{"NTT", n, 0, 0, 0};
  for (unsigned rep = 0; rep < repeats; ++rep) {
    std::uint64_t k = 1;
    for (std::uint64_t len = n / 2; len >= 1; len >>= 1) {
      for (std::uint64_t start = 0; start < n; start += 2 * len) {
        hier.access(kZetaBase + k * elem_bytes, elem_bytes, false);  // zeta load
        ++r.loads;
        ++k;
        for (std::uint64_t j = start; j < start + len; ++j) {
          // t = zeta * a[j+len]; a[j+len] = a[j] - t; a[j] = a[j] + t
          hier.access(kPolyBase + (j + len) * elem_bytes, elem_bytes, false);
          hier.access(kPolyBase + j * elem_bytes, elem_bytes, false);
          hier.access(kPolyBase + (j + len) * elem_bytes, elem_bytes, true);
          hier.access(kPolyBase + j * elem_bytes, elem_bytes, true);
          r.loads += 2;
          r.stores += 2;
          // mul + reduction, add + correction, sub + correction.
          r.ops += 6;
        }
      }
    }
  }
  return r;
}

kernel_trace_result trace_ntt_inverse(hierarchy& hier, std::uint64_t n, unsigned repeats,
                                      unsigned elem_bytes) {
  kernel_trace_result r{"INTT", n, 0, 0, 0};
  for (unsigned rep = 0; rep < repeats; ++rep) {
    for (std::uint64_t len = 1; len <= n / 2; len <<= 1) {
      for (std::uint64_t start = 0; start < n; start += 2 * len) {
        hier.access(kZetaBase + (n + start / (2 * len)) * elem_bytes, elem_bytes, false);
        ++r.loads;
        for (std::uint64_t j = start; j < start + len; ++j) {
          hier.access(kPolyBase + j * elem_bytes, elem_bytes, false);
          hier.access(kPolyBase + (j + len) * elem_bytes, elem_bytes, false);
          hier.access(kPolyBase + j * elem_bytes, elem_bytes, true);
          hier.access(kPolyBase + (j + len) * elem_bytes, elem_bytes, true);
          r.loads += 2;
          r.stores += 2;
          r.ops += 6;
        }
      }
    }
    // Final n^-1 scaling pass.
    for (std::uint64_t j = 0; j < n; ++j) {
      hier.access(kPolyBase + j * elem_bytes, elem_bytes, false);
      hier.access(kPolyBase + j * elem_bytes, elem_bytes, true);
      ++r.loads;
      ++r.stores;
      r.ops += 2;
    }
  }
  return r;
}

kernel_trace_result trace_schoolbook(hierarchy& hier, std::uint64_t n, unsigned repeats,
                                     unsigned elem_bytes) {
  kernel_trace_result r{"Schoolbook", n, 0, 0, 0};
  for (unsigned rep = 0; rep < repeats; ++rep) {
    for (std::uint64_t i = 0; i < n; ++i) {
      hier.access(kPolyBase + i * elem_bytes, elem_bytes, false);
      ++r.loads;
      for (std::uint64_t j = 0; j < n; ++j) {
        hier.access(kZetaBase + j * elem_bytes, elem_bytes, false);  // b[j]
        const std::uint64_t kidx = (i + j) % n;
        hier.access(kOutBase + kidx * elem_bytes, elem_bytes, false);
        hier.access(kOutBase + kidx * elem_bytes, elem_bytes, true);
        r.loads += 2;
        r.stores += 1;
        r.ops += 3;  // mul + accumulate + reduction
      }
    }
  }
  return r;
}

}  // namespace bpntt::roofline
