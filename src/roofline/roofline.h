// Roofline computation (Fig. 1): arithmetic intensity of a kernel against
// the bandwidth roofs of each memory level, and the classification the
// paper draws from it (NTT kernels are L1/L2-bandwidth bound, not
// DRAM-bandwidth bound, which motivates computing *in* the SRAM arrays).
#pragma once

#include <string>
#include <vector>

#include "roofline/cache_model.h"
#include "roofline/trace.h"

namespace bpntt::roofline {

struct level_point {
  std::string level;            // "L1", "L2", "LLC", "DRAM"
  std::uint64_t bytes = 0;      // traffic at this level
  double intensity = 0.0;       // ops / byte at this level
  double bandwidth_gbs = 0.0;   // roof
  double attainable_gops = 0.0; // min(peak, intensity * bw)
  bool bandwidth_bound = false; // attainable limited by this level's bw
};

struct roofline_report {
  std::string kernel;
  std::uint64_t n = 0;
  std::uint64_t ops = 0;
  double peak_gops = 0.0;
  std::vector<level_point> levels;

  // The innermost level whose bandwidth bounds the kernel (empty if
  // compute bound everywhere).
  [[nodiscard]] std::string binding_level() const;
};

// Build the report from a finished trace over `hier`.
[[nodiscard]] roofline_report make_report(const kernel_trace_result& trace,
                                          const hierarchy& hier, double peak_gops);

}  // namespace bpntt::roofline
