// Set-associative LRU cache hierarchy used to regenerate the paper's
// roofline study (Fig. 1).
//
// The paper profiles CRYSTALS kernels with Intel Advisor on real hardware;
// we reproduce the figure's substance — per-level traffic and arithmetic
// intensity of the NTT kernels — from first principles by running the
// kernel's exact address trace through this model (write-allocate,
// write-back, inclusive fills).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace bpntt::roofline {

struct cache_config {
  std::string name = "L1";
  std::uint64_t size_bytes = 32 * 1024;
  unsigned associativity = 8;
  unsigned line_bytes = 64;
  double bandwidth_gbs = 0.0;  // roof for this level
};

struct cache_counters {
  std::uint64_t accesses = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t writebacks = 0;

  [[nodiscard]] double miss_rate() const noexcept {
    return accesses ? static_cast<double>(misses) / accesses : 0.0;
  }
};

class cache_level {
 public:
  explicit cache_level(cache_config cfg);

  [[nodiscard]] const cache_config& config() const noexcept { return cfg_; }
  [[nodiscard]] const cache_counters& counters() const noexcept { return ctr_; }

  // Returns true on hit.  On miss the line is filled; *evicted_dirty
  // receives whether a dirty victim was written back (for traffic
  // accounting at the next level).
  bool access(std::uint64_t addr, bool write, bool* evicted_dirty = nullptr);

 private:
  struct way {
    std::uint64_t tag = 0;
    bool valid = false;
    bool dirty = false;
    std::uint64_t lru = 0;  // larger = more recently used
  };

  cache_config cfg_;
  cache_counters ctr_;
  unsigned num_sets_ = 0;
  std::uint64_t tick_ = 0;
  std::vector<way> ways_;  // num_sets * associativity
};

// Three-level hierarchy + DRAM traffic accounting.
class hierarchy {
 public:
  hierarchy(cache_config l1, cache_config l2, cache_config llc, double dram_bw_gbs);

  void access(std::uint64_t addr, unsigned bytes, bool write);

  [[nodiscard]] const cache_level& l1() const noexcept { return l1_; }
  [[nodiscard]] const cache_level& l2() const noexcept { return l2_; }
  [[nodiscard]] const cache_level& llc() const noexcept { return llc_; }
  [[nodiscard]] double dram_bw_gbs() const noexcept { return dram_bw_gbs_; }

  // Bytes each level delivered to the level above it (line fills +
  // writebacks).  bytes_from(0) = bytes the core moved to/from L1.
  [[nodiscard]] std::uint64_t bytes_core_l1() const noexcept { return core_bytes_; }
  [[nodiscard]] std::uint64_t bytes_l1_l2() const noexcept;
  [[nodiscard]] std::uint64_t bytes_l2_llc() const noexcept;
  [[nodiscard]] std::uint64_t bytes_llc_dram() const noexcept;

 private:
  cache_level l1_;
  cache_level l2_;
  cache_level llc_;
  double dram_bw_gbs_;
  std::uint64_t core_bytes_ = 0;
};

// Typical laptop-class core (sizes used by the bench and tests).
[[nodiscard]] hierarchy make_default_hierarchy();

}  // namespace bpntt::roofline
