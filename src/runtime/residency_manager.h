// On-array operand residency: the NTT-domain operand cache rebuilt as a
// device-resident memory model.
//
// BP-NTT's operands live *in* the SRAM subarrays — a "warm" operand is not
// an entry in a host-side table, it is n physical rows of a particular
// bank's subarray that stayed allocated between dispatches.  The residency
// manager owns that story for the whole runtime: every cached transform is
// keyed by (operand digest, limb prime, direction) and mapped to a
// *placement* — a bank/subarray row span reserved against the real
// per-subarray row budget (sram::row_budget).  Capacity pressure is
// resolved by LRU eviction within the unpinned pressure class (pinned
// entries — evaluation keys, long-lived constants — are exempt); an insert
// that cannot place even after eviction is dropped, never misfiled.
//
// Placement policy is limb-aware: distinct limb primes are assigned home
// banks round-robin across channels in first-seen order, so when an RNS
// operand's limbs outnumber the channels the limbs spread instead of
// piling onto one bank, and a fixed evaluation key's per-limb images stay
// warm on the bank their limb stream dispatches to.  The sram backend
// overrides the home with the executing dispatch's bank (the rows are
// written where the transform ran); host backends (cpu/reference) model a
// single one-subarray pseudo-bank and keep exact semantic parity through
// the same transformed_or() seam.
//
// Correctness contract is unchanged from the operand cache it replaces:
// a 64-bit FNV-1a digest qualified by modulus and direction, exact-match
// coefficients guard against collisions (a collision reads as a miss,
// never wrong data), and residency may only ever change cycles, never
// outputs.
//
// Pin-vs-invalidate contract: pin() protects an operand's entries from
// *capacity eviction* only.  Explicit invalidation always wins — both
// invalidate() and clear() drop pinned entries too (and invalidate()
// additionally forgets the pin registration, since the operand itself is
// being retired).  A pin registered before the operand was ever inserted
// applies to future inserts of the same coefficients; clear() keeps
// registrations (the operands still exist, only their images were
// dropped).  Both return the number of entries dropped.
//
// Thread-safe throughout: limb dispatch groups on disjoint banks genuinely
// run concurrently, and observer threads probe size()/resident_rows() on
// live contexts.
#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <map>
#include <mutex>
#include <optional>
#include <vector>

#include "bpntt/bank.h"
#include "sram/row_budget.h"
#include "telemetry/metrics.h"

namespace bpntt::telemetry {
class trace_recorder;
}

namespace bpntt::runtime {

class residency_manager {
 public:
  struct config {
    unsigned banks = 1;             // placement domains (sram banks, or 1 host region)
    unsigned channels = 1;          // limb spreading domains (home banks round-robin)
    unsigned data_subarrays = 1;    // reservable subarrays per bank (CTRL/CMD excluded)
    unsigned rows_per_subarray = 0; // row budget per subarray; 0 disables residency
    unsigned rows_per_operand = 1;  // rows one resident operand occupies (= ring order n)
  };

  // A warm lookup: the cached NTT image plus where it resides — the
  // backend compares home_bank against its executing bank set to price the
  // serve (same-bank zero, cross-bank an on-chip row move).
  struct hit {
    std::vector<core::u64> transformed;
    unsigned home_bank = 0;
  };

  explicit residency_manager(const config& cfg);

  residency_manager(const residency_manager&) = delete;
  residency_manager& operator=(const residency_manager&) = delete;

  // The resident image of `coeffs` under (ring_q, dir) and its placement,
  // bumping the entry to most-recently-used — or std::nullopt (a miss).
  [[nodiscard]] std::optional<hit> lookup(core::u64 ring_q, core::transform_dir dir,
                                          const std::vector<core::u64>& coeffs);

  // Make transformed = NTT_{ring_q,dir}(coeffs) resident.  Placement
  // prefers bank_hint (the bank the transform executed on) and falls back
  // to the limb's home bank; capacity pressure evicts LRU unpinned entries
  // (hint bank first, then anywhere).  When nothing can be evicted — the
  // budget is exhausted by pinned entries, or an operand outsizes every
  // subarray — the insert is dropped.  Re-inserting a resident key
  // refreshes recency (and, on a digest collision, the payload) in place.
  void insert(core::u64 ring_q, core::transform_dir dir, const std::vector<core::u64>& coeffs,
              std::vector<core::u64> transformed,
              std::optional<unsigned> bank_hint = std::nullopt);

  // The lookup-or-compute-and-insert step host backends share: the
  // resident image of `coeffs` under (ring_q, dir), or `compute(coeffs)`
  // made resident and returned.  One definition keeps miss counting and
  // insert ordering identical across every consult site.
  template <typename Compute>
  [[nodiscard]] std::vector<core::u64> transformed_or(core::u64 ring_q,
                                                      core::transform_dir dir,
                                                      const std::vector<core::u64>& coeffs,
                                                      Compute&& compute) {
    if (auto cached = lookup(ring_q, dir, coeffs)) return std::move(cached->transformed);
    std::vector<core::u64> t = compute(coeffs);
    insert(ring_q, dir, coeffs, t);
    return t;
  }

  // Drop every entry derived from `coeffs` (all rings and directions),
  // releasing their rows, pinned entries included, and forget any pin
  // registration for the operand — the retire hook for mutated or freed
  // polynomials (a rotated key, a dropped ciphertext).  Returns the number
  // of entries dropped.
  std::size_t invalidate(const std::vector<core::u64>& coeffs);
  // Drop everything (pinned entries included; pin registrations and the
  // cumulative counters survive).  Returns the number of entries dropped.
  std::size_t clear();

  // Pin/unpin an operand by value: pinned entries are exempt from capacity
  // eviction (see the pin-vs-invalidate contract above).  Pinning applies
  // to the operand's current entries and to future inserts of the same
  // coefficients.  Idempotent.
  void pin(const std::vector<core::u64>& coeffs);
  void unpin(const std::vector<core::u64>& coeffs);

  // Banks currently holding any entry of this limb prime, ascending — the
  // scheduler's residency-affinity hint for bank claiming.
  [[nodiscard]] std::vector<unsigned> banks_holding(core::u64 ring_q) const;

  // A cross-bank warm serve happened: count it and stamp a resident_move
  // instant (the backend, which knows its executing bank set, calls this
  // once per remotely served operand).
  void note_move(core::u64 ring_q, unsigned from_bank);

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] core::u64 resident_rows() const;
  [[nodiscard]] core::u64 capacity_rows() const noexcept { return budget_.capacity_rows(); }
  [[nodiscard]] const config& configuration() const noexcept { return cfg_; }
  [[nodiscard]] core::u64 hits() const noexcept { return hits_->value(); }
  [[nodiscard]] core::u64 misses() const noexcept { return misses_->value(); }
  [[nodiscard]] core::u64 evictions() const noexcept { return evictions_->value(); }
  [[nodiscard]] core::u64 moves() const noexcept { return moves_->value(); }

  // Publish the residency instruments into registry-owned objects and
  // (optionally) stamp lookup/evict/pin/move instants plus resident-row
  // counter samples into a trace recorder.  Null counter/gauge arguments
  // keep the owned fallbacks; a null recorder records nothing.  Call
  // before the manager is shared across threads (the context does this at
  // construction).
  void attach_metrics(telemetry::counter* hits, telemetry::counter* misses,
                      telemetry::counter* evictions, telemetry::counter* moves,
                      telemetry::gauge* resident_rows, telemetry::gauge* resident_rows_peak,
                      telemetry::trace_recorder* rec) noexcept {
    hits_ = hits ? hits : &owned_hits_;
    misses_ = misses ? misses : &owned_misses_;
    evictions_ = evictions ? evictions : &owned_evictions_;
    moves_ = moves ? moves : &owned_moves_;
    resident_rows_ = resident_rows;
    resident_rows_peak_ = resident_rows_peak;
    rec_ = rec;
  }

 private:
  struct key {
    core::u64 ring_q = 0;
    int dir = 0;
    core::u64 digest = 0;
    auto operator<=>(const key&) const = default;
  };
  struct entry {
    std::vector<core::u64> coeffs;       // exact-match guard against digest collisions
    std::vector<core::u64> transformed;  // the resident NTT image
    sram::row_span span;                 // where it lives on the device
    bool pinned = false;                 // exempt from capacity eviction
    std::list<key>::iterator lru;        // position in order_ (front = most recent)
  };

  [[nodiscard]] static core::u64 digest_of(const std::vector<core::u64>& coeffs) noexcept;
  void touch_locked(entry& e, const key& k);
  // The limb's home bank: round-robin over channels in first-seen order.
  [[nodiscard]] unsigned home_bank_locked(core::u64 ring_q);
  [[nodiscard]] bool pinned_registered_locked(core::u64 digest,
                                              const std::vector<core::u64>& coeffs) const;
  // Evict the least recently used unpinned entry (confined to `bank` when
  // set); returns whether anything was evicted.
  bool evict_one_locked(std::optional<unsigned> bank);
  // Reserve rows for a new entry near `want_bank`, evicting under
  // pressure.  std::nullopt when no placement exists.
  [[nodiscard]] std::optional<sram::row_span> place_locked(unsigned want_bank, unsigned rows);
  void erase_locked(std::map<key, entry>::iterator it);
  void publish_rows_locked();

  const config cfg_;
  mutable std::mutex mu_;
  sram::row_budget budget_;
  std::map<key, entry> entries_;
  std::list<key> order_;  // most recently used first
  // Limb prime -> home bank, assigned round-robin across channels at first
  // sight; survives eviction so a limb's operands keep returning home.
  std::map<core::u64, unsigned> home_;
  unsigned next_home_ = 0;
  // Pin registrations by operand digest (exact coefficients kept per
  // registration — same collision discipline as the entries).
  std::map<core::u64, std::vector<std::vector<core::u64>>> pins_;
  // Instruments: owned fallbacks unless attach_metrics() pointed them at a
  // registry — then the registry's view and the probes are one object.
  telemetry::counter owned_hits_, owned_misses_, owned_evictions_, owned_moves_;
  telemetry::counter* hits_ = &owned_hits_;
  telemetry::counter* misses_ = &owned_misses_;
  telemetry::counter* evictions_ = &owned_evictions_;
  telemetry::counter* moves_ = &owned_moves_;
  telemetry::gauge* resident_rows_ = nullptr;
  telemetry::gauge* resident_rows_peak_ = nullptr;
  telemetry::trace_recorder* rec_ = nullptr;
};

}  // namespace bpntt::runtime
