// NTT-domain operand cache: memoized transforms of repeated operands.
//
// RNS workloads re-transform the same polynomials constantly — a fixed
// RLWE key multiplies every ciphertext, a reused multiplicand rides every
// level of a leveled walk — and the forward NTT is the bulk of a product's
// cost.  This cache remembers the transformed image of an operand per
// (operand digest, limb prime, direction) so a repeated operand skips the
// transform entirely: backends consult it on every ring-overridden (RNS
// limb) dispatch, serve hits from host memory at zero modelled array cost,
// and insert fresh transforms on misses.
//
// Keying: a 64-bit FNV-1a digest of the coefficient words, qualified by
// the ring modulus and transform direction (forward entries double as the
// operand transforms inside a polymul — the in-array, Montgomery-software
// and golden pipelines all produce the standard bit-reversed image an
// explicit forward ntt_job would).  Digest collisions are handled, not
// assumed away: every entry keeps the originating coefficients and a hit
// requires an exact match, so a collision reads as a miss, never as wrong
// data.
//
// The cache is LRU-bounded (entries, not bytes) and thread-safe — limb
// dispatch groups on disjoint banks genuinely run concurrently.
#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <map>
#include <mutex>
#include <optional>
#include <vector>

#include "bpntt/bank.h"
#include "telemetry/metrics.h"

namespace bpntt::telemetry {
class trace_recorder;
}

namespace bpntt::runtime {

class operand_cache {
 public:
  // Capacity in entries; 0 disables (every lookup misses, nothing stored).
  explicit operand_cache(std::size_t capacity) : capacity_(capacity) {}

  operand_cache(const operand_cache&) = delete;
  operand_cache& operator=(const operand_cache&) = delete;

  // The transformed image of `coeffs` under (ring_q, dir), bumping the
  // entry to most-recently-used — or std::nullopt (counted as a miss).
  [[nodiscard]] std::optional<std::vector<core::u64>> lookup(
      core::u64 ring_q, core::transform_dir dir, const std::vector<core::u64>& coeffs);

  // Remember transformed = NTT_{ring_q,dir}(coeffs), evicting the least
  // recently used entry past capacity.  Inserting an already-present key
  // refreshes its recency and (on a digest collision) its payload.
  void insert(core::u64 ring_q, core::transform_dir dir, const std::vector<core::u64>& coeffs,
              std::vector<core::u64> transformed);

  // The lookup-or-compute-and-insert step every backend shares: the cached
  // image of `coeffs` under (ring_q, dir), or `compute(coeffs)` inserted
  // and returned.  One definition keeps miss counting and insert ordering
  // identical across every consult site.
  template <typename Compute>
  [[nodiscard]] std::vector<core::u64> transformed_or(core::u64 ring_q,
                                                      core::transform_dir dir,
                                                      const std::vector<core::u64>& coeffs,
                                                      Compute&& compute) {
    if (auto cached = lookup(ring_q, dir, coeffs)) return std::move(*cached);
    std::vector<core::u64> t = compute(coeffs);
    insert(ring_q, dir, coeffs, t);
    return t;
  }

  // Drop every entry derived from `coeffs`, across all rings and
  // directions — the invalidation hook for callers that mutate or retire
  // an operand (a rotated key, a freed ciphertext).
  void invalidate(const std::vector<core::u64>& coeffs);
  // Drop everything (counters survive; they are cumulative).
  void clear();

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] core::u64 hits() const noexcept { return hits_->value(); }
  [[nodiscard]] core::u64 misses() const noexcept { return misses_->value(); }

  // Publish hit/miss counting into registry-owned counters and (optionally)
  // stamp per-lookup hit/miss instants into a trace recorder.  Null counter
  // arguments keep the owned fallbacks; a null recorder records nothing.
  // Call before the cache is shared across threads (the context does this
  // at construction).
  void attach_metrics(telemetry::counter* hits, telemetry::counter* misses,
                      telemetry::trace_recorder* rec) noexcept {
    hits_ = hits ? hits : &owned_hits_;
    misses_ = misses ? misses : &owned_misses_;
    rec_ = rec;
  }

 private:
  struct key {
    core::u64 ring_q = 0;
    int dir = 0;
    core::u64 digest = 0;
    auto operator<=>(const key&) const = default;
  };
  struct entry {
    std::vector<core::u64> coeffs;       // exact-match guard against digest collisions
    std::vector<core::u64> transformed;  // the cached NTT image
    std::list<key>::iterator lru;        // position in order_ (front = most recent)
  };

  [[nodiscard]] static core::u64 digest_of(const std::vector<core::u64>& coeffs) noexcept;
  void touch_locked(entry& e, const key& k);

  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::map<key, entry> entries_;
  std::list<key> order_;  // most recently used first
  // Hit/miss tallies are telemetry counters (atomic), owned here unless
  // attach_metrics() pointed them at a registry — then the registry's view
  // and hits()/misses() are the same object by construction.
  telemetry::counter owned_hits_, owned_misses_;
  telemetry::counter* hits_ = &owned_hits_;
  telemetry::counter* misses_ = &owned_misses_;
  telemetry::trace_recorder* rec_ = nullptr;
};

}  // namespace bpntt::runtime
