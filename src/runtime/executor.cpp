#include "runtime/executor.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <memory>
#include <utility>

namespace bpntt::runtime {

namespace {

unsigned resolve_threads(unsigned requested) {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 4u : std::min(hw, 16u);
}

// Shared state of one parallel_for: an atomic work-list cursor plus a
// completion count.  Helpers that start late — or never, on a saturated
// pool — are harmless: every index is claimed exactly once, and whoever
// claims it (helper or the caller) runs it.  A helper that finds the
// cursor exhausted exits without touching `fn`, so the state outliving the
// caller's stack frame (via the shared_ptr in the queued closures) is safe.
struct for_state {
  std::size_t n = 0;
  const std::function<void(std::size_t)>* fn = nullptr;
  std::atomic<std::size_t> next{0};
  std::size_t finished = 0;  // guarded by mu
  std::exception_ptr error;  // first failure, guarded by mu
  std::mutex mu;
  std::condition_variable done;

  void run() {
    std::size_t ran = 0;
    std::exception_ptr first;
    for (std::size_t i; (i = next.fetch_add(1, std::memory_order_relaxed)) < n;) {
      try {
        (*fn)(i);
      } catch (...) {
        if (!first) first = std::current_exception();
      }
      ++ran;
    }
    if (ran == 0) return;
    std::lock_guard<std::mutex> lk(mu);
    if (first && !error) error = first;
    finished += ran;
    if (finished == n) done.notify_all();
  }
};

}  // namespace

executor::executor(unsigned threads) {
  const unsigned n = resolve_threads(threads);
  workers_.reserve(n);
  try {
    for (unsigned i = 0; i < n; ++i) {
      workers_.emplace_back([this] { worker_loop(); });
    }
  } catch (...) {
    // A thread-limited host can fail a spawn mid-loop; stop and join the
    // workers that did start so the exception propagates instead of
    // ~thread() on a joinable worker calling std::terminate.
    {
      std::lock_guard<std::mutex> lk(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    for (auto& w : workers_) w.join();
    throw;
  }
}

executor::~executor() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  // Workers drain the queue before exiting, so every enqueued task (and
  // with it every in-flight job of an owning context) still completes.
  for (auto& w : workers_) w.join();
}

void executor::enqueue(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void executor::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_.wait(lk, [&] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to drain
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void executor::parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (n == 1) {
    fn(0);
    return;
  }
  auto st = std::make_shared<for_state>();
  st->n = n;
  st->fn = &fn;
  const std::size_t helpers = std::min<std::size_t>(workers_.size(), n - 1);
  for (std::size_t h = 0; h < helpers; ++h) {
    enqueue([st] { st->run(); });
  }
  st->run();  // the caller claims indices too — no idle-worker dependency
  std::unique_lock<std::mutex> lk(st->mu);
  st->done.wait(lk, [&] { return st->finished == st->n; });
  if (st->error) std::rethrow_exception(st->error);
}

void parallel_for(executor* pool, std::size_t n, const std::function<void(std::size_t)>& fn) {
  if (pool != nullptr) {
    pool->parallel_for(n, fn);
    return;
  }
  for (std::size_t i = 0; i < n; ++i) fn(i);
}

}  // namespace bpntt::runtime
