// Bounded LRU for per-modulus retarget state.
//
// Ring-overridden (RNS limb) dispatches make a backend rebuild its
// execution state for the limb prime — the sram backend a whole retargeted
// bank array, the cpu backend a Montgomery fast-path, the reference
// backend golden tables.  Those rebuilds were cached forever, so a
// long-lived context cycling through many limb primes (per-request bases,
// key rotation) leaked one retarget entry per modulus it ever saw.  This
// cache bounds them: least-recently-dispatched moduli are evicted past the
// capacity and rebuilt on their next use.
//
// Entries are handed out as shared_ptr so eviction is lifetime-safe: a
// dispatch group still executing on an evicted entry keeps it alive until
// the dispatch returns — the map only drops its own reference.  Thread-safe
// (concurrent dispatch groups fault in different moduli at once).
#pragma once

#include <cstddef>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <utility>

#include "bpntt/config.h"

namespace bpntt::runtime {

template <typename T>
class retarget_lru {
 public:
  // Capacity in moduli; at least 1 (a zero-capacity retarget cache would
  // rebuild on every dispatch — runtime_options::validate rejects it).
  explicit retarget_lru(std::size_t capacity) : capacity_(capacity < 1 ? 1 : capacity) {}

  // The entry for `key`, building it via `make()` on a miss and bumping it
  // to most-recently-used either way; evicts past capacity.
  template <typename Factory>
  [[nodiscard]] std::shared_ptr<T> get(core::u64 key, Factory&& make) {
    std::unique_lock<std::mutex> lk(mu_);
    auto it = entries_.find(key);
    if (it != entries_.end()) {
      order_.erase(it->second.second);
      order_.push_front(key);
      it->second.second = order_.begin();
      return it->second.first;
    }
    // Build outside the lock: retargeting is expensive (twiddle tables, a
    // whole bank array) and concurrent dispatches faulting in *different*
    // moduli should not serialize on it.  Re-check after reacquiring — a
    // racing dispatch may have installed the same modulus meanwhile.
    lk.unlock();
    auto built = std::make_shared<T>(make());
    lk.lock();
    it = entries_.find(key);
    if (it != entries_.end()) {
      order_.erase(it->second.second);
      order_.push_front(key);
      it->second.second = order_.begin();
      return it->second.first;
    }
    while (entries_.size() >= capacity_) {
      entries_.erase(order_.back());
      order_.pop_back();
    }
    order_.push_front(key);
    entries_.emplace(key, std::make_pair(built, order_.begin()));
    return built;
  }

  [[nodiscard]] std::size_t size() const {
    std::lock_guard<std::mutex> lk(mu_);
    return entries_.size();
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::map<core::u64, std::pair<std::shared_ptr<T>, std::list<core::u64>::iterator>> entries_;
  std::list<core::u64> order_;  // most recently used first
};

}  // namespace bpntt::runtime
