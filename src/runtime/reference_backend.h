// Golden backend: the exact table-driven transforms with no performance
// model attached.  wall_cycles and op_stats are zero by construction — this
// backend exists as the correctness oracle the other backends are
// differentially tested against, and as a drop-in for callers that only
// need answers.
#pragma once

#include <memory>

#include "nttmath/incomplete_ntt.h"
#include "nttmath/ntt.h"
#include "runtime/backend.h"
#include "runtime/options.h"
#include "runtime/retarget_cache.h"

namespace bpntt::runtime {

class reference_backend final : public backend {
 public:
  explicit reference_backend(const runtime_options& opts);

  [[nodiscard]] std::string_view name() const noexcept override { return "reference"; }
  // Unbounded batches, no banked structure, zero-cost execution.
  [[nodiscard]] backend_caps capabilities() const override {
    backend_caps caps;
    caps.polymul = true;
    return caps;
  }

  batch_result run_ntt(const std::vector<std::vector<u64>>& polys, transform_dir dir,
                       const dispatch_hints& hints) override;
  batch_result run_polymul(const std::vector<core::polymul_pair>& pairs,
                           const dispatch_hints& hints) override;

  [[nodiscard]] std::size_t retarget_cache_size() const override { return retarget_.size(); }

 private:
  // The full-negacyclic tables for one ring-override modulus (RNS limb
  // dispatches), built lazily and LRU-bounded per runtime_options; a
  // dispatch holds its shared_ptr, so eviction mid-flight is safe.
  [[nodiscard]] std::shared_ptr<const math::ntt_tables> tables_for(u64 ring_q);

  core::ntt_params params_;
  std::unique_ptr<math::ntt_tables> tables_;
  std::unique_ptr<math::incomplete_ntt_tables> itables_;
  retarget_lru<math::ntt_tables> retarget_;
};

}  // namespace bpntt::runtime
