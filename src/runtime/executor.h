// Fixed-size thread pool of the bpntt runtime.
//
// Two primitives cover everything the scheduler needs:
//   - enqueue(task): fire-and-forget FIFO submission.  Completion is the
//     task's own business — the context tracks per-job completion states,
//     so the pool never hands out futures.
//   - parallel_for(n, fn): run fn(0..n) across the pool with the *caller
//     participating*.  The caller claims indices from the same atomic
//     cursor as the helpers, so progress never depends on a free worker —
//     calling parallel_for from inside a pool task (the context's drain
//     task fanning a batch over banks) cannot deadlock even on a pool of
//     one thread.
//
// Determinism note: parallel_for only decides *which thread* runs fn(i);
// callers that write disjoint output slots per index produce bit-identical
// results regardless of pool size.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace bpntt::runtime {

class executor {
 public:
  // threads == 0 picks a size from the host's hardware concurrency.
  explicit executor(unsigned threads = 0);
  ~executor();

  executor(const executor&) = delete;
  executor& operator=(const executor&) = delete;

  [[nodiscard]] unsigned thread_count() const noexcept {
    return static_cast<unsigned>(workers_.size());
  }

  // Fire-and-forget; tasks run FIFO across the workers.
  void enqueue(std::function<void()> task);

  // Execute fn(i) exactly once for every i in [0, n), returning when all n
  // calls have finished.  The first exception thrown by any fn(i) is
  // rethrown here (the remaining indices still run — batch items are
  // independent and a caller distributing per-job results needs all slots
  // settled).
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
};

// Serial fallback shared by the backends: run on the pool when one is
// attached, inline otherwise (stub backends in tests run without a pool).
void parallel_for(executor* pool, std::size_t n, const std::function<void(std::size_t)>& fn);

}  // namespace bpntt::runtime
