#include "runtime/scheduler.h"

#include <algorithm>

#include "telemetry/trace.h"

namespace bpntt::runtime {

scheduler::scheduler(policy_config cfg, unsigned resources) : cfg_(cfg) {
  bank_busy_.assign(std::max(1u, resources), 0);
  bank_free_at_.assign(std::max(1u, resources), 0);
}

bool scheduler::group_before(const dispatch_group& a, const dispatch_group& b) const {
  // Aged groups jump every non-aged group and order among themselves in
  // flush order — the starvation escape hatch of both policies.
  if (a.aged != b.aged) return a.aged;
  if (a.aged) return a.seq < b.seq;
  if (cfg_.sched == schedule_policy::edf && a.deadline_abs != b.deadline_abs) {
    return a.deadline_abs < b.deadline_abs;  // no_deadline sorts after all finite
  }
  if (a.hints.priority != b.hints.priority) return a.hints.priority > b.hints.priority;
  return a.seq < b.seq;
}

void scheduler::enqueue(std::shared_ptr<dispatch_group> g) {
  g->seq = next_group_seq_++;
  for (const unsigned r : g->resources) {
    g->ref_vtime = std::max(g->ref_vtime, bank_free_at_[r]);
  }
  g->deadline_abs = absolute_deadline(g->ref_vtime, g->hints.deadline_cycles);
  const auto before = [this](const std::shared_ptr<dispatch_group>& a,
                             const std::shared_ptr<dispatch_group>& b) {
    return group_before(*a, *b);
  };
  ready_.insert(std::upper_bound(ready_.begin(), ready_.end(), g, before), std::move(g));
}

void scheduler::requeue_preempted(std::shared_ptr<dispatch_group> g) {
  // The remainder keeps its identity: same seq (flush-order ties resume
  // where they were), same ref_vtime and deadline_abs (the deadline is a
  // property of the flush, not of the resume).  Banks are released by the
  // caller via release() — the urgent group claims them on the next pass.
  yields_->add();
  if (recorder_ != nullptr) {
    recorder_->record({.ts = g->ref_vtime,
                       .dur = 0,
                       .a = g->resources.size(),
                       .track = telemetry::kTrackScheduler,
                       .arg = static_cast<telemetry::u32>(g->seq),
                       .op = telemetry::trace_op::preempt_yield});
  }
  const auto before = [this](const std::shared_ptr<dispatch_group>& a,
                             const std::shared_ptr<dispatch_group>& b) {
    return group_before(*a, *b);
  };
  ready_.insert(std::upper_bound(ready_.begin(), ready_.end(), g, before), std::move(g));
}

void scheduler::absorb_compatible(const std::shared_ptr<dispatch_group>& host,
                                  std::vector<char>& claimed) {
  if (!cfg_.merge_streams || !host->mergeable) return;
  for (auto it = ready_.begin(); it != ready_.end();) {
    auto& h = *it;
    // Merge eligibility: both sides opted in (mergeable excludes rlwe
    // groups and opted-out streams), same ring modulus (native or the same
    // RNS limb prime), and every bank of the candidate either already in
    // the host's claim or currently unclaimed — disjoint-or-shareable.
    bool compatible = h->mergeable && h->hints.ring_q == host->hints.ring_q;
    if (compatible) {
      for (const unsigned r : h->resources) {
        const bool in_host = std::find(host->resources.begin(), host->resources.end(), r) !=
                             host->resources.end();
        compatible = compatible && (in_host || !claimed[r]);
      }
    }
    if (!compatible) {
      ++it;
      continue;
    }
    // Claim the union: the merged dispatch runs over every member's banks.
    for (const unsigned r : h->resources) {
      if (std::find(host->resources.begin(), host->resources.end(), r) ==
          host->resources.end()) {
        host->resources.push_back(r);
      }
      bank_busy_[r] = claimed[r] = 1;
    }
    merged_->add();
    if (recorder_ != nullptr) {
      // arg = the absorbed group's seq, a = the host's — the edge Perfetto
      // shows as "who got pulled into whose dispatch".
      recorder_->record({.ts = host->ref_vtime,
                         .dur = 0,
                         .a = host->seq,
                         .track = telemetry::kTrackScheduler,
                         .arg = static_cast<telemetry::u32>(h->seq),
                         .op = telemetry::trace_op::merge_absorb});
    }
    host->absorbed.push_back(std::move(h));
    it = ready_.erase(it);
  }
}

std::vector<std::shared_ptr<dispatch_group>> scheduler::take_runnable() {
  // Walk the ready queue in policy order.  A group starts when every one of
  // its banks is free *and unclaimed*: a blocked earlier-ordered group
  // claims its banks so later groups cannot slip onto banks it is waiting
  // for, while groups on disjoint banks still start — that is the overlap.
  std::vector<std::shared_ptr<dispatch_group>> picked;
  std::vector<char> claimed = bank_busy_;
  for (auto it = ready_.begin(); it != ready_.end();) {
    auto& g = **it;
    bool runnable = true;
    for (const unsigned r : g.resources) runnable = runnable && !claimed[r];
    if (runnable) {
      for (const unsigned r : g.resources) bank_busy_[r] = claimed[r] = 1;
      note_affinity(g);
      auto gp = *it;
      it = ready_.erase(it);
      absorb_compatible(gp, claimed);
      // The absorb scan erases arbitrary queue positions; restart the walk
      // so the iterator stays valid.  The pass stays deterministic — claim
      // state only ever grows within a pass.
      picked.push_back(std::move(gp));
      if (!picked.back()->absorbed.empty()) it = ready_.begin();
    } else {
      for (const unsigned r : g.resources) claimed[r] = 1;
      ++it;
    }
  }
  age_passed_over();
  return picked;
}

void scheduler::age_passed_over() {
  // Priority aging: every group still in the queue was passed over this
  // round; one that has waited aging_limit rounds is promoted ahead of all
  // non-aged groups (group_before orders aged groups first, in flush
  // order), so persistent contention cannot starve a late-deadline or
  // low-priority tenant forever.
  if (cfg_.aging_limit == 0 || ready_.empty()) return;
  bool promoted = false;
  for (auto& gp : ready_) {
    if (!gp->aged && ++gp->waits >= cfg_.aging_limit) {
      gp->aged = true;
      promoted = true;
    }
  }
  if (promoted) {
    std::stable_sort(ready_.begin(), ready_.end(),
                     [this](const std::shared_ptr<dispatch_group>& a,
                            const std::shared_ptr<dispatch_group>& b) {
                       return group_before(*a, *b);
                     });
  }
}

void scheduler::note_affinity(const dispatch_group& g) {
  // One hit per claimed group whose banks intersect the residency hint:
  // the group will find (some of) its limb operands already resident on
  // banks it holds — the zero-cost warm path, not a cross-bank move.
  if (g.affinity_banks.empty()) return;
  bool intersects = false;
  for (const unsigned r : g.resources) {
    intersects = intersects || std::find(g.affinity_banks.begin(), g.affinity_banks.end(),
                                         r) != g.affinity_banks.end();
  }
  if (!intersects) return;
  affinity_->add();
  if (recorder_ != nullptr) {
    recorder_->record({.ts = g.ref_vtime,
                       .dur = 0,
                       .a = g.seq,
                       .track = telemetry::kTrackScheduler,
                       .arg = static_cast<telemetry::u32>(g.hints.stream),
                       .op = telemetry::trace_op::affinity_hit});
  }
}

void scheduler::release(const dispatch_group& g) {
  for (const unsigned r : g.resources) bank_busy_[r] = 0;
}

bool scheduler::should_yield(const dispatch_group& g) const {
  for (const auto& h : ready_) {
    if (!group_before(*h, g)) continue;
    for (const unsigned r : h->resources) {
      if (std::find(g.resources.begin(), g.resources.end(), r) != g.resources.end()) {
        return true;
      }
    }
  }
  return false;
}

u64 scheduler::account(const dispatch_group& g, u64 wall_cycles) {
  // Virtual timeline: the batch starts at its bank subset's frontier and
  // advances it.  Disjoint subsets advance independently — overlap; the
  // default stream owns every bank, so its batches run back-to-back
  // exactly as the legacy accounting did.
  u64 start = 0;
  for (const unsigned res : g.resources) start = std::max(start, bank_free_at_[res]);
  const u64 end = start + wall_cycles;
  for (const unsigned res : g.resources) bank_free_at_[res] = end;
  return end;
}

}  // namespace bpntt::runtime
