// In-SRAM backend: a chip topology (channels -> banks) of BP-NTT compute
// subarrays behind the uniform backend interface.
//
// A batch is sharded across its dispatch's bank subset in wave-width blocks
// (block b goes to the b mod |subset|'th subset bank), so small batches
// fill whole waves on one bank before touching the next and large batches
// load-balance evenly.  Banks execute concurrently: batch wall-clock is the
// slowest bank's, energy and op counts sum.
//
// Banks are independent cycle-level models, so dispatches confined to
// disjoint bank subsets (dispatch_hints::bank_set) are safe to run
// concurrently — that is how the context overlaps independent streams.
//
// Ring-overridden (RNS limb) dispatches additionally consult the runtime's
// residency manager: a warm operand resident on one of the dispatch's own
// banks is served in place (zero array cycles — the modelled win of operand
// reuse), a warm operand resident on a foreign bank pays an on-chip
// bank-to-bank row move (tech_model::row_move_cycles — strictly between
// free and a cold re-transform), and a miss transforms on the array and
// takes up residence on the bank that ran it.  A limb product splits into
// "forward-transform the missing operands" + "pointwise and inverse on
// transformed operands" so repeated multiplicands pay the forward NTT
// exactly once.
#pragma once

#include <memory>
#include <vector>

#include "runtime/backend.h"
#include "runtime/options.h"
#include "runtime/retarget_cache.h"

namespace bpntt::runtime {

class sram_backend final : public backend {
 public:
  explicit sram_backend(const runtime_options& opts);

  [[nodiscard]] std::string_view name() const noexcept override { return "sram"; }
  [[nodiscard]] backend_caps capabilities() const override;

  batch_result run_ntt(const std::vector<std::vector<u64>>& polys, transform_dir dir,
                       const dispatch_hints& hints) override;
  batch_result run_polymul(const std::vector<core::polymul_pair>& pairs,
                           const dispatch_hints& hints) override;

  [[nodiscard]] unsigned banks() const noexcept { return static_cast<unsigned>(banks_.size()); }
  [[nodiscard]] const core::bp_ntt_bank& bank(unsigned i) const { return banks_.at(i); }
  [[nodiscard]] std::size_t retarget_cache_size() const override { return retarget_.size(); }

 private:
  // Shard `njobs` into wave-width blocks round-robin over the dispatch's
  // bank subset; `run_slice(bank, job_indices)` executes one bank's slice
  // and the per-job outputs are stitched back into submission order.
  template <typename RunSlice>
  batch_result shard(std::vector<core::bp_ntt_bank>& banks, std::size_t njobs,
                     const dispatch_hints& hints, RunSlice&& run_slice);

  // The dispatch's bank subset: hints.bank_set when non-empty (validated),
  // every bank otherwise.
  [[nodiscard]] std::vector<unsigned> resolve_bank_set(const dispatch_hints& hints) const;

  // The bank array a dispatch executes on: the primary banks, or — for a
  // ring-overridden (RNS limb) dispatch — the retargeted bank array for
  // that modulus.  Retargeting models reloading the CTRL/CMD subarray's
  // twiddle words for a different prime: same geometry, same tile width,
  // different microcode constants.  Built lazily per modulus, LRU-bounded
  // per runtime_options (the shared_ptr keeps an array alive across a
  // concurrent eviction); the scheduler's disjoint bank-id reservations
  // keep a bank id exclusive across every array, so retargeted banks never
  // run concurrently with their primary twin.
  [[nodiscard]] std::shared_ptr<std::vector<core::bp_ntt_bank>> banks_for(u64 ring_q);

  // The residency-aware limb paths (hints.ring_q != 0, manager attached).
  batch_result run_ntt_cached(const std::vector<std::vector<u64>>& polys, transform_dir dir,
                              const dispatch_hints& hints,
                              std::vector<core::bp_ntt_bank>& banks);
  batch_result run_polymul_cached(const std::vector<core::polymul_pair>& pairs,
                                  const dispatch_hints& hints,
                                  std::vector<core::bp_ntt_bank>& banks);

  // Price one warm serve against the executing bank subset: zero when the
  // operand is resident on a dispatch bank, an on-chip row move otherwise
  // (cycles returned, move energy charged into `stats`, the move counted
  // with the residency manager).
  u64 warm_serve_cycles(const std::vector<unsigned>& set, unsigned home_bank,
                        std::size_t rows, u64 ring_q, sram::op_stats& stats);

  // The bank a missed operand is written back to: the shard assignment of
  // miss block `k` over the dispatch subset (mirrors shard()'s round-robin,
  // so residency lands where the transform actually ran).
  [[nodiscard]] unsigned insert_bank(const std::vector<unsigned>& set,
                                     const std::vector<core::bp_ntt_bank>& banks,
                                     std::size_t k) const;

  unsigned channels_ = 1;
  core::bank_config bank_cfg_;
  core::ntt_params params_;
  std::vector<core::bp_ntt_bank> banks_;
  retarget_lru<std::vector<core::bp_ntt_bank>> retarget_;
};

}  // namespace bpntt::runtime
