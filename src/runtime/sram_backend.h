// In-SRAM backend: N cache banks of BP-NTT compute subarrays behind the
// uniform backend interface.
//
// A batch is sharded across banks in wave-width blocks (block b goes to
// bank b mod N), so small batches fill whole waves on one bank before
// touching the next and large batches load-balance evenly.  Banks execute
// concurrently: batch wall-clock is the slowest bank's, energy and op
// counts sum.
#pragma once

#include <vector>

#include "runtime/backend.h"
#include "runtime/options.h"

namespace bpntt::runtime {

class sram_backend final : public backend {
 public:
  explicit sram_backend(const runtime_options& opts);

  [[nodiscard]] std::string_view name() const noexcept override { return "sram"; }
  [[nodiscard]] unsigned wave_width() const noexcept override;
  [[nodiscard]] bool supports_polymul() const noexcept override;

  batch_result run_ntt(const std::vector<std::vector<u64>>& polys, transform_dir dir) override;
  batch_result run_polymul(const std::vector<core::polymul_pair>& pairs) override;

  [[nodiscard]] unsigned banks() const noexcept { return static_cast<unsigned>(banks_.size()); }
  [[nodiscard]] const core::bp_ntt_bank& bank(unsigned i) const { return banks_.at(i); }

 private:
  // Shard `njobs` into wave-width blocks round-robin over banks;
  // `run_slice(bank, job_indices)` executes one bank's slice and the
  // per-job outputs are stitched back into submission order.
  template <typename RunSlice>
  batch_result shard(std::size_t njobs, RunSlice&& run_slice);

  std::vector<core::bp_ntt_bank> banks_;
};

}  // namespace bpntt::runtime
