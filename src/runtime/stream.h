// Stream handles: independent in-order submission lanes of one
// runtime::context.
//
//   context ctx(opts);                                   // >= 2 banks
//   auto fast = ctx.stream({.priority = 10});
//   auto bulk = ctx.stream({.deadline_cycles = 100000});
//   auto a = fast.submit(ntt_job{...});
//   auto b = bulk.submit(ntt_job{...});
//   fast.flush();  bulk.flush();   // two dispatch groups, disjoint banks
//   ctx.wait(a);   ctx.wait(b);
//
// Each stream is its own FIFO: jobs submitted to one stream flush and
// execute in submission order.  Different streams are independent — the
// scheduler places them on disjoint bank subsets of a banked backend so
// their dispatch groups genuinely overlap, and orders contended dispatches
// by priority (or earliest deadline first under schedule_policy::edf).  A
// stream handle is a lightweight view; copying it does not copy the queue.
// Thread contract matches the context: one client thread drives every
// handle — multi-threaded tenants go through the service layer
// (src/service/), whose drainer is that one client.
#pragma once

#include <cstddef>
#include <vector>

#include "runtime/job.h"

namespace bpntt::runtime {

class context;

// Per-stream scheduling policy, fixed at creation.
struct stream_options {
  // Higher-priority streams dispatch first when competing for the same
  // banks (ties break in flush order).
  int priority = 0;
  // Completion budget on the virtual timeline, measured from the stream's
  // flush; 0 = none.  Jobs finishing later carry job_result::deadline_missed
  // and count into scheduler_stats::deadline_misses — accounting, not
  // preemption.
  u64 deadline_cycles = 0;
  // Explicit bank placement (ids into the backend's bank map).  Empty =
  // topology-aware auto placement: on a multi-channel device the stream
  // gets one channel's banks, on a flat multi-bank device one bank,
  // round-robin by stream id.
  std::vector<unsigned> bank_set;
  // Ring override: every job on this stream runs at this word-sized
  // modulus instead of the context ring's (0 = context ring).  The order n
  // and tile width stay as configured.  This is how an RNS limb stream
  // carries its residue channel: context::stream() validates the modulus
  // (odd prime, full negacyclic support at n, inside the backend's
  // envelope) and submissions validate coefficients against it.  R-LWE
  // jobs are ring-specific and are rejected on overridden streams.
  u64 ring_q = 0;
  // Opt this stream out of cross-stream batching
  // (runtime_options::merge_streams): its groups are never absorbed into
  // another stream's dispatch and never absorb others.  For tenants whose
  // latency accounting must not share a dispatch (or whose bank residency
  // must stay exclusive).
  bool no_merge = false;
  // Preemptive-yield budget: dispatch this stream's groups in chunks of at
  // most this many jobs, offering the banks to any earlier-ordered group
  // (under the configured policy) between chunks.  0 = unbounded — whole
  // per-kind dispatches, the legacy behaviour.  R-LWE stages always
  // dispatch whole.
  u64 chunk_budget = 0;
};

class stream {
 public:
  // An unbound handle (for declare-then-assign); every operation on it
  // throws std::logic_error until a handle from context::stream() is
  // assigned over it.
  stream() = default;

  // Validate and enqueue on this stream's FIFO; same contract as
  // context::submit.  An rns_rescale_job must name this stream's ring
  // modulus as its `prime` — the rescale correction of limb i rides limb
  // i's stream; an rns_base_extend_job likewise names this stream's ring
  // as its target `prime` — the new limb's extension rides the new limb's
  // stream.
  job_id submit(ntt_job j);
  job_id submit(polymul_job j);
  job_id submit(rlwe_encrypt_job j);
  job_id submit(rns_rescale_job j);
  job_id submit(rns_base_extend_job j);

  // Hand this stream's pending jobs to the scheduler as one dispatch group
  // (partitioned by job kind, executed in order); returns without blocking.
  void flush();

  // Flush any pending jobs, then release the stream's slot in the context
  // (already-submitted jobs stay waitable by id).  A service opening one
  // stream per request must close them — stream state is otherwise kept
  // for the context's lifetime.  Operations on a closed stream throw
  // std::logic_error.
  void close();

  [[nodiscard]] unsigned id() const noexcept { return id_; }
  // Jobs enqueued on this stream and not yet flushed.
  [[nodiscard]] std::size_t pending() const;
  // The bank subset the scheduler reserved for this stream (empty on
  // non-banked backends, where streams share the single resource).
  [[nodiscard]] std::vector<unsigned> bank_set() const;

 private:
  friend class context;
  stream(context* ctx, unsigned id) noexcept : ctx_(ctx), id_(id) {}

  // The owning context, or a precise throw for unbound handles.
  [[nodiscard]] context& bound() const;

  context* ctx_ = nullptr;
  unsigned id_ = 0;
};

}  // namespace bpntt::runtime
