#include "runtime/options.h"

#include <stdexcept>
#include <string>

namespace bpntt::runtime {

const char* to_string(backend_kind k) noexcept {
  switch (k) {
    case backend_kind::sram:
      return "sram";
    case backend_kind::cpu:
      return "cpu";
    case backend_kind::reference:
      return "reference";
  }
  return "?";
}

runtime_options runtime_options::for_param_set(const crypto::param_set& set) {
  runtime_options opts;
  opts.params.n = set.n;
  opts.params.q = set.q;
  opts.params.k = std::max(set.min_tile_bits, crypto::required_tile_bits(set.q));
  opts.params.negacyclic = set.negacyclic;
  opts.params.incomplete = set.negacyclic && !set.supports_full_ntt();
  return opts;
}

void runtime_options::validate_threads(unsigned threads) {
  if (threads > 256) {
    throw std::invalid_argument("runtime_options: threads must be in [0, 256] (0 = auto)");
  }
}

void runtime_options::validate() const {
  params.validate();
  if (params.synthetic()) {
    throw std::invalid_argument(
        "runtime_options: synthetic params (q == 0) have no job semantics; use the perf_model "
        "sweeps for performance-only runs");
  }
  validate_threads(threads);
  switch (backend) {
    case backend_kind::sram:
      if (banks < 1 || banks > 64) {
        throw std::invalid_argument("runtime_options: banks must be in [1, 64]");
      }
      bank().validate();
      if (params.n > array.data_rows) {
        throw std::invalid_argument(
            "runtime_options: polynomial order n = " + std::to_string(params.n) +
            " exceeds the subarray's " + std::to_string(array.data_rows) + " data rows");
      }
      break;
    case backend_kind::cpu:
      if (cpu_freq_ghz <= 0 || cpu_power_w <= 0) {
        throw std::invalid_argument("runtime_options: cpu model needs positive freq and power");
      }
      break;
    case backend_kind::reference:
      break;
  }
}

}  // namespace bpntt::runtime
