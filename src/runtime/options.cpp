#include "runtime/options.h"

#include <stdexcept>
#include <string>

namespace bpntt::runtime {

const char* to_string(backend_kind k) noexcept {
  switch (k) {
    case backend_kind::sram:
      return "sram";
    case backend_kind::cpu:
      return "cpu";
    case backend_kind::reference:
      return "reference";
  }
  return "?";
}

const char* to_string(schedule_policy p) noexcept {
  switch (p) {
    case schedule_policy::priority:
      return "priority";
    case schedule_policy::edf:
      return "edf";
  }
  return "?";
}

void device_topology::validate() const {
  if (channels < 1 || channels > 16) {
    throw std::invalid_argument("device_topology: channels must be in [1, 16]");
  }
  if (banks_per_channel < 1) {
    throw std::invalid_argument("device_topology: banks_per_channel must be >= 1");
  }
  if (total_banks() > 64) {
    throw std::invalid_argument("device_topology: channels * banks_per_channel must be <= 64");
  }
}

runtime_options runtime_options::for_param_set(const crypto::param_set& set) {
  runtime_options opts;
  opts.params.n = set.n;
  opts.params.q = set.q;
  opts.params.k = std::max(set.min_tile_bits, crypto::required_tile_bits(set.q));
  opts.params.negacyclic = set.negacyclic;
  opts.params.incomplete = set.negacyclic && !set.supports_full_ntt();
  return opts;
}

runtime_options runtime_options::for_rns_param_set(const crypto::rns_param_set& set) {
  if (set.primes.empty()) {
    throw std::invalid_argument("runtime_options: rns_param_set carries no limb primes");
  }
  runtime_options opts;
  opts.params.n = set.n;
  opts.params.q = set.primes.front();
  opts.params.k = set.min_tile_bits;
  opts.params.negacyclic = true;
  opts.params.incomplete = false;
  return opts;
}

void runtime_options::validate_threads(unsigned threads) {
  if (threads > 256) {
    throw std::invalid_argument("runtime_options: threads must be in [0, 256] (0 = auto)");
  }
}

void runtime_options::validate() const {
  params.validate();
  if (params.synthetic()) {
    throw std::invalid_argument(
        "runtime_options: synthetic params (q == 0) have no job semantics; use the perf_model "
        "sweeps for performance-only runs");
  }
  validate_threads(threads);
  if (retarget_cache_limit < 1) {
    throw std::invalid_argument(
        "runtime_options: retarget_cache_limit must be >= 1 — a zero-capacity cache would "
        "rebuild the per-modulus retarget state on every ring-overridden dispatch");
  }
  if (tracing && trace_capacity == 0) {
    throw std::invalid_argument(
        "runtime_options: trace_capacity must be >= 1 when tracing is enabled — a "
        "zero-capacity recorder would drop every event it accepts");
  }
  // The cpu model constants feed cycle/energy accounting; a non-positive
  // value would silently produce nonsense (infinite cycles, negative
  // energy), so they are rejected for every backend, not just cpu.
  if (cpu_freq_ghz <= 0.0) {
    throw std::invalid_argument("runtime_options: cpu_freq_ghz must be > 0 (got " +
                                std::to_string(cpu_freq_ghz) + ")");
  }
  if (cpu_power_w <= 0.0) {
    throw std::invalid_argument("runtime_options: cpu_power_w must be > 0 (got " +
                                std::to_string(cpu_power_w) + ")");
  }
  switch (backend) {
    case backend_kind::sram:
      topo.validate();
      bank().validate();
      if (params.n > array.data_rows) {
        throw std::invalid_argument(
            "runtime_options: polynomial order n = " + std::to_string(params.n) +
            " exceeds the subarray's " + std::to_string(array.data_rows) + " data rows");
      }
      break;
    case backend_kind::cpu:
    case backend_kind::reference:
      break;
  }
}

}  // namespace bpntt::runtime
