#include "runtime/context.h"

#include <stdexcept>
#include <string>
#include <utility>

#include "common/xoshiro.h"
#include "crypto/rlwe.h"

namespace bpntt::runtime {

namespace {

// The pool is a member initializer, so its size must be vetted before
// runtime_options::validate() gets a chance to run in the constructor body
// — otherwise an absurd with_threads() value would spawn the threads first
// and reject them after.
unsigned checked_pool_size(const runtime_options& opts) {
  runtime_options::validate_threads(opts.threads);
  return opts.threads;
}

}  // namespace

context::context(runtime_options opts)
    : opts_(std::move(opts)), pool_(checked_pool_size(opts_)) {
  opts_.validate();
  backend_ = make_backend(opts_);
  backend_->attach_executor(&pool_);
}

context::context(runtime_options opts, std::unique_ptr<backend> custom_backend)
    : opts_(std::move(opts)),
      backend_(std::move(custom_backend)),
      pool_(checked_pool_size(opts_)) {
  if (!backend_) {
    throw std::invalid_argument("runtime: context needs a non-null custom backend");
  }
  opts_.params.validate();
  backend_->attach_executor(&pool_);
}

// pool_ is the last member, so the defaulted destructor joins the workers
// (running any still-queued drain task to completion) before the state
// those tasks reference is torn down.
context::~context() = default;

namespace {

void require_ring_poly(const std::vector<u64>& coeffs, const core::ntt_params& p,
                       const char* what) {
  if (coeffs.size() != p.n) {
    throw std::invalid_argument(std::string("runtime: ") + what + " must have exactly n = " +
                                std::to_string(p.n) + " coefficients");
  }
  for (const u64 c : coeffs) {
    if (c >= p.q) {
      throw std::invalid_argument(std::string("runtime: ") + what +
                                  " coefficients must be canonical (< q)");
    }
  }
}

}  // namespace

job_id context::enqueue(job j) {
  const job_id id = next_id_++;
  queue_.emplace_back(id, std::move(j));
  std::lock_guard<std::mutex> lk(mu_);
  ++stats_.jobs_submitted;
  return id;
}

job_id context::submit(ntt_job j) {
  require_ring_poly(j.coeffs, opts_.params, "ntt_job");
  return enqueue(std::move(j));
}

job_id context::submit(polymul_job j) {
  require_ring_poly(j.a, opts_.params, "polymul_job.a");
  require_ring_poly(j.b, opts_.params, "polymul_job.b");
  if (!backend_->supports_polymul()) {
    throw std::invalid_argument(
        "runtime: this backend cannot run ring products at these parameters (the in-SRAM "
        "pipeline needs two n-row operand regions per lane: 2n <= data_rows)");
  }
  return enqueue(std::move(j));
}

job_id context::submit(rlwe_encrypt_job j) {
  const auto& p = opts_.params;
  if (j.message.size() != p.n) {
    throw std::invalid_argument("runtime: rlwe message must have exactly n bits");
  }
  if (!p.negacyclic || p.incomplete || (p.q - 1) % (2 * p.n) != 0) {
    throw std::invalid_argument(
        "runtime: rlwe_encrypt_job needs a ring with a full negacyclic NTT (2n | q-1)");
  }
  if (!backend_->supports_polymul()) {
    throw std::invalid_argument(
        "runtime: rlwe_encrypt_job needs in-array ring products (2n <= data_rows)");
  }
  return enqueue(std::move(j));
}

scheduler_stats context::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  scheduler_stats s = stats_;
  s.jobs_in_flight = in_flight_.size();
  return s;
}

void context::account_locked(const batch_result& r) {
  ++stats_.batches;
  stats_.waves += r.waves;
  stats_.wall_cycles += r.wall_cycles;
  stats_.energy_nj += r.stats.energy_pj * 1e-3;
}

void context::account(const batch_result& r) {
  std::lock_guard<std::mutex> lk(mu_);
  account_locked(r);
}

namespace {

// A backend returning the wrong number of outputs would misroute results;
// refuse loudly (the drain task converts this into per-job failures).
void require_output_count(std::size_t got, std::size_t want, const char* what) {
  if (got != want) {
    throw std::logic_error("runtime: backend returned " + std::to_string(got) +
                           " outputs for " + what + " of " + std::to_string(want) + " jobs");
  }
}

}  // namespace

void context::distribute(const std::vector<job_id>& ids, batch_result&& r) {
  require_output_count(r.outputs.size(), ids.size(), "a dispatch");
  std::lock_guard<std::mutex> lk(mu_);
  account_locked(r);
  for (std::size_t i = 0; i < ids.size(); ++i) {
    job_result res;
    res.outputs.push_back(std::move(r.outputs[i]));
    res.op_stats = r.stats;
    res.wall_cycles = r.wall_cycles;
    res.jobs_in_batch = ids.size();
    done_.emplace(ids[i], std::move(res));
    in_flight_.erase(ids[i]);
  }
  stats_.jobs_completed += ids.size();
  cv_.notify_all();
}

void context::fail_group(const std::vector<job_id>& ids, const std::string& what) {
  std::lock_guard<std::mutex> lk(mu_);
  for (const job_id id : ids) {
    job_result res;
    res.status = job_status::failed;
    res.error = what;
    res.jobs_in_batch = ids.size();
    done_.emplace(id, std::move(res));
    in_flight_.erase(id);
  }
  stats_.jobs_failed += ids.size();
  cv_.notify_all();
}

void context::dispatch_ntt_group(const std::vector<job_id>& ids, std::vector<ntt_job>&& jobs,
                                 transform_dir dir) {
  std::vector<std::vector<u64>> polys;
  polys.reserve(jobs.size());
  for (auto& j : jobs) polys.push_back(std::move(j.coeffs));
  distribute(ids, backend_->run_ntt(polys, dir));
}

void context::dispatch_polymul_group(const std::vector<job_id>& ids,
                                     std::vector<polymul_job>&& jobs) {
  std::vector<core::polymul_pair> pairs;
  pairs.reserve(jobs.size());
  for (auto& j : jobs) pairs.push_back({std::move(j.a), std::move(j.b)});
  distribute(ids, backend_->run_polymul(pairs));
}

void context::run_rlwe_group(const std::vector<job_id>& ids,
                             std::vector<rlwe_encrypt_job>&& jobs) {
  crypto::param_set ring;
  ring.name = "runtime";
  ring.n = opts_.params.n;
  ring.q = opts_.params.q;
  ring.min_tile_bits = opts_.params.k;
  const std::size_t m = jobs.size();

  // Each job's randomness comes from its own seeded stream in exactly the
  // order the serial scheme draws it (keygen's a/s/e, then encrypt's
  // r/e1/e2 — the ring products never touch the stream), so the staged
  // flow below is bit-identical to running the scheme per job.
  std::vector<crypto::rlwe_keygen_randomness> kg(m);
  std::vector<crypto::rlwe_encrypt_randomness> en(m);
  for (std::size_t i = 0; i < m; ++i) {
    common::xoshiro256ss rng(jobs[i].seed);
    kg[i] = crypto::rlwe_sample_keygen(ring, jobs[i].eta, rng);
    en[i] = crypto::rlwe_sample_encrypt(ring, jobs[i].eta, rng);
  }

  sram::op_stats stats;
  u64 cycles = 0;
  auto batch_mul = [&](std::vector<core::polymul_pair>&& pairs) {
    batch_result r = backend_->run_polymul(pairs);
    require_output_count(r.outputs.size(), pairs.size(), "an rlwe product stage");
    account(r);
    stats += r.stats;
    cycles += r.wall_cycles;
    return std::move(r.outputs);
  };

  // Stage 1 — keygen products a*s, one wide dispatch across all jobs.
  std::vector<core::polymul_pair> pairs(m);
  for (std::size_t i = 0; i < m; ++i) pairs[i] = {kg[i].a, kg[i].s};
  auto as = batch_mul(std::move(pairs));
  std::vector<crypto::rlwe_scheme::keypair> keys(m);
  for (std::size_t i = 0; i < m; ++i) {
    keys[i] = crypto::rlwe_finish_keygen(ring, std::move(kg[i]), std::move(as[i]));
  }

  // Stage 2 — both encryption products a*r and b*r, batched pairwise.
  pairs.assign(2 * m, core::polymul_pair{});
  for (std::size_t i = 0; i < m; ++i) {
    pairs[2 * i] = {keys[i].pk.a, en[i].r};
    pairs[2 * i + 1] = {keys[i].pk.b, en[i].r};
  }
  auto prods = batch_mul(std::move(pairs));
  std::vector<crypto::ciphertext> cts(m);
  for (std::size_t i = 0; i < m; ++i) {
    cts[i] = crypto::rlwe_finish_encrypt(ring, en[i], jobs[i].message,
                                         std::move(prods[2 * i]), std::move(prods[2 * i + 1]));
  }

  // Stage 3 — decryption round-trip products u*s.
  pairs.assign(m, core::polymul_pair{});
  for (std::size_t i = 0; i < m; ++i) pairs[i] = {cts[i].u, keys[i].sk.s};
  auto us = batch_mul(std::move(pairs));

  std::lock_guard<std::mutex> lk(mu_);
  for (std::size_t i = 0; i < m; ++i) {
    auto decrypted = crypto::rlwe_decrypt_from_product(ring, cts[i], us[i]);
    job_result res;
    res.outputs.reserve(3);
    res.outputs.push_back(std::move(cts[i].u));
    res.outputs.push_back(std::move(cts[i].v));
    res.outputs.push_back(std::move(decrypted));
    res.op_stats = stats;
    res.op_stats.cycles = cycles;  // the three product stages run back-to-back
    res.wall_cycles = cycles;
    res.jobs_in_batch = m;
    done_.emplace(ids[i], std::move(res));
    in_flight_.erase(ids[i]);
  }
  stats_.jobs_completed += m;
  cv_.notify_all();
}

void context::flush() {
  if (queue_.empty()) return;
  // Jobs are independent, so the whole pending set is partitioned by kind
  // (and direction) into one backend dispatch each — the widest batches the
  // backend can shard over banks, lanes and waves.  Results are keyed by
  // job_id, so regrouping never misroutes an output.
  auto plan = std::make_shared<flush_plan>();
  for (auto& [id, j] : queue_) {
    if (auto* ntt = std::get_if<ntt_job>(&j)) {
      auto& ids = ntt->dir == transform_dir::forward ? plan->fwd_ids : plan->inv_ids;
      auto& group = ntt->dir == transform_dir::forward ? plan->fwd : plan->inv;
      ids.push_back(id);
      group.push_back(std::move(*ntt));
    } else if (auto* mul = std::get_if<polymul_job>(&j)) {
      plan->mul_ids.push_back(id);
      plan->muls.push_back(std::move(*mul));
    } else {
      plan->rlwe_ids.push_back(id);
      plan->rlwes.push_back(std::move(std::get<rlwe_encrypt_job>(j)));
    }
  }
  queue_.clear();
  {
    // Jobs become in-flight before the drain task exists, so a wait() racing
    // the pool can never mistake a dispatched job for a claimed one.
    std::lock_guard<std::mutex> lk(mu_);
    for (const auto* ids :
         {&plan->fwd_ids, &plan->inv_ids, &plan->mul_ids, &plan->rlwe_ids}) {
      in_flight_.insert(ids->begin(), ids->end());
    }
  }
  pool_.enqueue([this, plan] { drain(*plan); });
}

void context::drain(flush_plan& plan) {
  // Dispatches of overlapping flushes serialize here — backends batch onto
  // shared bank state.  Parallelism lives inside each dispatch (bank
  // slices, cpu job chunks) and between flush() and the waiting client.
  std::lock_guard<std::mutex> serialize(dispatch_mu_);
  const auto guarded = [&](const std::vector<job_id>& ids, auto&& fn) {
    if (ids.empty()) return;
    try {
      fn();
    } catch (const std::exception& e) {
      // The exception fails exactly this dispatch: per-job error recorded,
      // sibling groups of the same flush still run.
      fail_group(ids, e.what());
    } catch (...) {
      fail_group(ids, "unknown backend error");
    }
  };
  guarded(plan.fwd_ids, [&] {
    dispatch_ntt_group(plan.fwd_ids, std::move(plan.fwd), transform_dir::forward);
  });
  guarded(plan.inv_ids, [&] {
    dispatch_ntt_group(plan.inv_ids, std::move(plan.inv), transform_dir::inverse);
  });
  guarded(plan.mul_ids,
          [&] { dispatch_polymul_group(plan.mul_ids, std::move(plan.muls)); });
  guarded(plan.rlwe_ids, [&] { run_rlwe_group(plan.rlwe_ids, std::move(plan.rlwes)); });
}

bool context::is_queued(job_id id) const noexcept {
  for (const auto& [qid, j] : queue_) {
    if (qid == id) return true;
  }
  return false;
}

job_result context::wait(job_id id) {
  if (id == 0 || id >= next_id_) throw std::out_of_range("runtime: unknown job id");
  if (is_queued(id)) flush();
  std::unique_lock<std::mutex> lk(mu_);
  cv_.wait(lk, [&] { return done_.count(id) != 0 || in_flight_.count(id) == 0; });
  auto it = done_.find(id);
  if (it == done_.end()) {
    throw std::out_of_range("runtime: job result already claimed");
  }
  job_result res = std::move(it->second);
  done_.erase(it);
  if (res.status == job_status::failed) {
    throw job_failed_error(id, res.error);
  }
  return res;
}

std::optional<job_result> context::try_wait(job_id id) {
  if (id == 0 || id >= next_id_) throw std::out_of_range("runtime: unknown job id");
  const bool queued = is_queued(id);
  std::lock_guard<std::mutex> lk(mu_);
  auto it = done_.find(id);
  if (it != done_.end()) {
    job_result res = std::move(it->second);
    done_.erase(it);
    return res;
  }
  if (queued || in_flight_.count(id) != 0) return std::nullopt;
  throw std::out_of_range("runtime: job result already claimed");
}

void context::sync() {
  flush();
  std::unique_lock<std::mutex> lk(mu_);
  cv_.wait(lk, [&] { return in_flight_.empty(); });
}

std::vector<job_result> context::wait_all() {
  flush();
  std::unique_lock<std::mutex> lk(mu_);
  cv_.wait(lk, [&] { return in_flight_.empty(); });
  std::vector<job_result> all;
  all.reserve(done_.size());
  for (auto& [id, res] : done_) all.push_back(std::move(res));
  done_.clear();
  return all;
}

}  // namespace bpntt::runtime
