#include "runtime/context.h"

#include <stdexcept>
#include <utility>

#include "common/xoshiro.h"
#include "crypto/rlwe.h"

namespace bpntt::runtime {

context::context(runtime_options opts) : opts_(std::move(opts)) {
  opts_.validate();
  backend_ = make_backend(opts_);
}

namespace {

void require_ring_poly(const std::vector<u64>& coeffs, const core::ntt_params& p,
                       const char* what) {
  if (coeffs.size() != p.n) {
    throw std::invalid_argument(std::string("runtime: ") + what + " must have exactly n = " +
                                std::to_string(p.n) + " coefficients");
  }
  for (const u64 c : coeffs) {
    if (c >= p.q) {
      throw std::invalid_argument(std::string("runtime: ") + what +
                                  " coefficients must be canonical (< q)");
    }
  }
}

}  // namespace

job_id context::enqueue(job j) {
  const job_id id = next_id_++;
  queue_.emplace_back(id, std::move(j));
  ++stats_.jobs_submitted;
  return id;
}

job_id context::submit(ntt_job j) {
  require_ring_poly(j.coeffs, opts_.params, "ntt_job");
  return enqueue(std::move(j));
}

job_id context::submit(polymul_job j) {
  require_ring_poly(j.a, opts_.params, "polymul_job.a");
  require_ring_poly(j.b, opts_.params, "polymul_job.b");
  if (!backend_->supports_polymul()) {
    throw std::invalid_argument(
        "runtime: this backend cannot run ring products at these parameters (the in-SRAM "
        "pipeline needs two n-row operand regions per lane: 2n <= data_rows)");
  }
  return enqueue(std::move(j));
}

job_id context::submit(rlwe_encrypt_job j) {
  const auto& p = opts_.params;
  if (j.message.size() != p.n) {
    throw std::invalid_argument("runtime: rlwe message must have exactly n bits");
  }
  if (!p.negacyclic || p.incomplete || (p.q - 1) % (2 * p.n) != 0) {
    throw std::invalid_argument(
        "runtime: rlwe_encrypt_job needs a ring with a full negacyclic NTT (2n | q-1)");
  }
  if (!backend_->supports_polymul()) {
    throw std::invalid_argument(
        "runtime: rlwe_encrypt_job needs in-array ring products (2n <= data_rows)");
  }
  return enqueue(std::move(j));
}

void context::account(const batch_result& r) {
  ++stats_.batches;
  stats_.waves += r.waves;
  stats_.wall_cycles += r.wall_cycles;
  stats_.energy_nj += r.stats.energy_pj * 1e-3;
}

void context::distribute(const std::vector<job_id>& ids, batch_result&& r) {
  account(r);
  for (std::size_t i = 0; i < ids.size(); ++i) {
    job_result res;
    res.outputs.push_back(std::move(r.outputs[i]));
    res.op_stats = r.stats;
    res.wall_cycles = r.wall_cycles;
    res.jobs_in_batch = ids.size();
    done_.emplace(ids[i], std::move(res));
  }
  stats_.jobs_completed += ids.size();
}

void context::dispatch_ntt_group(const std::vector<job_id>& ids, std::vector<ntt_job>&& jobs,
                                 transform_dir dir) {
  std::vector<std::vector<u64>> polys;
  polys.reserve(jobs.size());
  for (auto& j : jobs) polys.push_back(std::move(j.coeffs));
  distribute(ids, backend_->run_ntt(polys, dir));
}

void context::dispatch_polymul_group(const std::vector<job_id>& ids,
                                     std::vector<polymul_job>&& jobs) {
  std::vector<core::polymul_pair> pairs;
  pairs.reserve(jobs.size());
  for (auto& j : jobs) pairs.push_back({std::move(j.a), std::move(j.b)});
  distribute(ids, backend_->run_polymul(pairs));
}

void context::run_rlwe(job_id id, const rlwe_encrypt_job& j) {
  crypto::param_set ring;
  ring.name = "runtime";
  ring.n = opts_.params.n;
  ring.q = opts_.params.q;
  ring.min_tile_bits = opts_.params.k;

  sram::op_stats stats;
  u64 cycles = 0;
  crypto::polymul_fn mul = [&](std::span<const std::uint64_t> a,
                               std::span<const std::uint64_t> b) {
    std::vector<core::polymul_pair> one(1);
    one[0].a.assign(a.begin(), a.end());
    one[0].b.assign(b.begin(), b.end());
    batch_result r = backend_->run_polymul(one);
    account(r);
    stats += r.stats;
    cycles += r.wall_cycles;
    return std::move(r.outputs[0]);
  };

  crypto::rlwe_scheme scheme(ring, j.eta, mul);
  common::xoshiro256ss rng(j.seed);
  const auto keys = scheme.keygen(rng);
  const auto ct = scheme.encrypt(keys.pk, j.message, rng);
  const auto decrypted = scheme.decrypt(keys.sk, ct);

  job_result res;
  res.outputs = {ct.u, ct.v, decrypted};
  res.op_stats = stats;
  res.op_stats.cycles = cycles;  // the four ring products run back-to-back
  res.wall_cycles = cycles;
  done_.emplace(id, std::move(res));
  ++stats_.jobs_completed;
}

void context::flush() {
  if (queue_.empty()) return;
  // Jobs are independent, so the whole pending set is partitioned by kind
  // (and direction) into one backend dispatch each — the widest batches the
  // backend can shard over banks, lanes and waves.  Results are keyed by
  // job_id, so regrouping never misroutes an output.
  std::vector<job_id> fwd_ids, inv_ids, mul_ids;
  std::vector<ntt_job> fwd, inv;
  std::vector<polymul_job> muls;
  std::vector<std::pair<job_id, rlwe_encrypt_job>> rlwes;
  for (auto& [id, j] : queue_) {
    if (auto* ntt = std::get_if<ntt_job>(&j)) {
      auto& ids = ntt->dir == transform_dir::forward ? fwd_ids : inv_ids;
      auto& group = ntt->dir == transform_dir::forward ? fwd : inv;
      ids.push_back(id);
      group.push_back(std::move(*ntt));
    } else if (auto* mul = std::get_if<polymul_job>(&j)) {
      mul_ids.push_back(id);
      muls.push_back(std::move(*mul));
    } else {
      rlwes.emplace_back(id, std::move(std::get<rlwe_encrypt_job>(j)));
    }
  }
  queue_.clear();

  if (!fwd.empty()) dispatch_ntt_group(fwd_ids, std::move(fwd), transform_dir::forward);
  if (!inv.empty()) dispatch_ntt_group(inv_ids, std::move(inv), transform_dir::inverse);
  if (!muls.empty()) dispatch_polymul_group(mul_ids, std::move(muls));
  for (const auto& [id, j] : rlwes) run_rlwe(id, j);
}

job_result context::wait(job_id id) {
  if (id == 0 || id >= next_id_) throw std::out_of_range("runtime: unknown job id");
  auto it = done_.find(id);
  if (it == done_.end()) {
    flush();
    it = done_.find(id);
  }
  if (it == done_.end()) {
    throw std::out_of_range("runtime: job result already claimed");
  }
  job_result res = std::move(it->second);
  done_.erase(it);
  return res;
}

std::vector<job_result> context::wait_all() {
  flush();
  std::vector<job_result> all;
  all.reserve(done_.size());
  for (auto& [id, res] : done_) all.push_back(std::move(res));
  done_.clear();
  return all;
}

}  // namespace bpntt::runtime
