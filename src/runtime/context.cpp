#include "runtime/context.h"

#include <algorithm>
#include <bit>
#include <fstream>
#include <ostream>
#include <stdexcept>
#include <string>
#include <utility>

#include "common/xoshiro.h"
#include "crypto/rlwe.h"
#include "nttmath/primes.h"
#include "telemetry/trace_export.h"

namespace bpntt::runtime {

namespace {

// The pool is a member initializer, so its size must be vetted before
// runtime_options::validate() gets a chance to run in the constructor body
// — otherwise an absurd with_threads() value would spawn the threads first
// and reject them after.
unsigned checked_pool_size(const runtime_options& opts) {
  runtime_options::validate_threads(opts.threads);
  return opts.threads;
}

}  // namespace

context::context(runtime_options opts)
    : opts_(std::move(opts)), pool_(checked_pool_size(opts_)) {
  opts_.validate();
  backend_ = make_backend(opts_);
  finish_construction();
}

context::context(runtime_options opts, std::unique_ptr<backend> custom_backend)
    : opts_(std::move(opts)),
      backend_(std::move(custom_backend)),
      pool_(checked_pool_size(opts_)) {
  if (!backend_) {
    throw std::invalid_argument("runtime: context needs a non-null custom backend");
  }
  opts_.params.validate();
  finish_construction();
}

void context::finish_construction() {
  backend_->attach_executor(&pool_);
  caps_ = backend_->capabilities();

  // On-array residency: the manager's placement domains come from the
  // backend's capabilities (banks and channels), its per-bank subarray
  // count from the configured topology (minus the CTRL/CMD subarray), and
  // its row budget either directly (residency_rows) or via the legacy
  // entries knob — entries x n rows spread evenly over the device's data
  // subarrays, so "room for k operands" means the same thing it used to.
  // Host backends (no banks) collapse to one single-subarray pseudo-bank,
  // which makes the entries shim exact: entries x n rows = entries slots.
  if (opts_.operand_cache_entries != 0 || opts_.residency_rows != 0) {
    residency_manager::config rc;
    rc.banks = std::max(1u, caps_.banks());
    rc.channels = std::min(rc.banks, std::max(1u, caps_.channels));
    rc.data_subarrays = caps_.banks() != 0 ? std::max(1u, opts_.topo.subarrays - 1) : 1;
    rc.rows_per_operand = static_cast<unsigned>(opts_.params.n);
    if (opts_.residency_rows != 0) {
      rc.rows_per_subarray = opts_.residency_rows;
    } else {
      const u64 total_rows = static_cast<u64>(opts_.operand_cache_entries) * opts_.params.n;
      const u64 regions = static_cast<u64>(rc.banks) * rc.data_subarrays;
      rc.rows_per_subarray = static_cast<unsigned>((total_rows + regions - 1) / regions);
    }
    resman_ = std::make_unique<residency_manager>(rc);
    backend_->attach_residency(resman_.get());
  }

  // The configured ring must fit the backend's envelope — a narrower
  // backend (or a stub advertising one) is rejected here, not at dispatch.
  if (caps_.max_poly_order != 0 && opts_.params.n > caps_.max_poly_order) {
    throw std::invalid_argument(
        "runtime: ring order n = " + std::to_string(opts_.params.n) +
        " exceeds the backend's max polynomial order " + std::to_string(caps_.max_poly_order));
  }
  const unsigned q_bits = static_cast<unsigned>(std::bit_width(opts_.params.q));
  if (q_bits > caps_.max_modulus_bits) {
    throw std::invalid_argument("runtime: modulus q needs " + std::to_string(q_bits) +
                                " bits but the backend's envelope is " +
                                std::to_string(caps_.max_modulus_bits) + " bits");
  }

  // Scheduler resources: the backend's banks, or one pseudo-resource for
  // non-banked backends (whose dispatches therefore serialize).
  const unsigned resources = std::max(1u, caps_.banks());
  sched_ = std::make_unique<scheduler>(
      scheduler::policy_config{opts_.sched, opts_.aging_limit, opts_.merge_streams}, resources);

  // Register every runtime instrument once; the hot paths bump these
  // pointers directly, and stats()/metrics().to_json() read the same
  // objects — there is no mirrored copy to fall out of sync.
  m_.jobs_submitted = &registry_.make_counter("runtime.jobs_submitted");
  m_.jobs_completed = &registry_.make_counter("runtime.jobs_completed");
  m_.jobs_failed = &registry_.make_counter("runtime.jobs_failed");
  m_.groups = &registry_.make_counter("runtime.groups");
  m_.batches = &registry_.make_counter("runtime.batches");
  m_.waves = &registry_.make_counter("runtime.waves");
  m_.wall_cycles = &registry_.make_gauge("runtime.wall_cycles");
  m_.deadline_misses = &registry_.make_counter("runtime.deadline_misses");
  m_.energy_nj = &registry_.make_real("runtime.energy_nj");
  m_.cache_hits = &registry_.make_counter("cache.hits");
  m_.cache_misses = &registry_.make_counter("cache.misses");
  m_.groups_merged = &registry_.make_counter("sched.groups_merged");
  m_.preemption_yields = &registry_.make_counter("sched.preemption_yields");
  m_.residency_affinity_hits = &registry_.make_counter("sched.residency_affinity_hits");
  m_.residency_evictions = &registry_.make_counter("residency.evictions");
  m_.residency_moves = &registry_.make_counter("residency.moves");
  m_.resident_rows = &registry_.make_gauge("residency.resident_rows");
  m_.resident_rows_peak = &registry_.make_gauge("residency.resident_rows_peak");

  // Tracing is opt-in: without it no recorder exists and every
  // instrumentation site below degenerates to one null test.
  if (opts_.tracing) {
    recorder_ = std::make_unique<telemetry::trace_recorder>(opts_.trace_capacity);
  }
  sched_->attach_metrics(m_.groups_merged, m_.preemption_yields, m_.residency_affinity_hits);
  sched_->attach_recorder(recorder_.get());
  backend_->attach_recorder(recorder_.get());
  if (resman_) {
    resman_->attach_metrics(m_.cache_hits, m_.cache_misses, m_.residency_evictions,
                            m_.residency_moves, m_.resident_rows, m_.resident_rows_peak,
                            recorder_.get());
  }

  // The default stream (id 0) owns every bank — the legacy single-queue
  // behaviour.
  stream_state def;
  def.resources = auto_bank_set(0);
  streams_.emplace(0u, std::move(def));
}

// pool_ is the last member, so the defaulted destructor joins the workers
// (running any still-queued dispatch group to completion) before the state
// those tasks reference is torn down.
context::~context() = default;

// ---- streams ---------------------------------------------------------------

std::vector<unsigned> context::auto_bank_set(unsigned sid) const {
  const unsigned resources = std::max(1u, caps_.banks());
  const unsigned banks = caps_.banks();
  if (sid == 0 || !caps_.overlapping_streams()) {
    std::vector<unsigned> all(resources);
    for (unsigned r = 0; r < resources; ++r) all[r] = r;
    return all;
  }
  // Topology-aware placement: a multi-channel device hands each stream one
  // whole channel's banks; a flat multi-bank device hands it one bank.
  // Round-robin by stream id, so placement is static and deterministic.
  const unsigned channels =
      (caps_.channels > 1 && banks % caps_.channels == 0) ? caps_.channels : 1;
  if (channels > 1) {
    const unsigned per = banks / channels;
    const unsigned ch = (sid - 1) % channels;
    std::vector<unsigned> set(per);
    for (unsigned i = 0; i < per; ++i) set[i] = ch * per + i;
    return set;
  }
  return {(sid - 1) % banks};
}

namespace {

// A ring-overridden (RNS limb) stream must name a modulus every backend
// can retarget to: an odd prime supporting the full negacyclic transform
// at the configured order, inside the modulus envelope the backend
// advertised.  Checked at stream creation so a bad limb fails with a
// precise message instead of a backend throw at dispatch time.
void validate_ring_override(u64 q, const core::ntt_params& params, const backend_caps& caps) {
  if ((q & 1ULL) == 0 || !math::is_prime(q)) {
    throw std::invalid_argument("runtime: stream ring_q = " + std::to_string(q) +
                                " must be an odd prime");
  }
  if ((q - 1) % (2 * params.n) != 0) {
    throw std::invalid_argument("runtime: stream ring_q = " + std::to_string(q) +
                                " does not support negacyclic NTTs of size n = " +
                                std::to_string(params.n) + " (needs q == 1 mod 2n)");
  }
  const unsigned q_bits = static_cast<unsigned>(std::bit_width(q));
  if (q_bits > caps.max_modulus_bits) {
    throw std::invalid_argument("runtime: stream ring_q needs " + std::to_string(q_bits) +
                                " bits but the backend's envelope is " +
                                std::to_string(caps.max_modulus_bits) + " bits");
  }
}

}  // namespace

stream context::stream(stream_options sopts) {
  const unsigned resources = std::max(1u, caps_.banks());
  if (sopts.ring_q != 0) validate_ring_override(sopts.ring_q, opts_.params, caps_);
  // Skip ids still held by live streams (and the default stream's 0): a
  // per-request service that opens and closes streams for long enough
  // wraps the counter, and colliding with a live slot would hand two
  // handles the same queue — the reopened handle must always be a fresh
  // slot, never a resurrected one.
  while (next_stream_id_ == 0 || streams_.count(next_stream_id_) != 0) ++next_stream_id_;
  const unsigned sid = next_stream_id_++;
  stream_state ss;
  if (!sopts.bank_set.empty()) {
    std::vector<unsigned> set = sopts.bank_set;
    std::sort(set.begin(), set.end());
    set.erase(std::unique(set.begin(), set.end()), set.end());
    for (const unsigned b : set) {
      if (b >= resources) {
        throw std::invalid_argument("runtime: stream bank_set names bank " + std::to_string(b) +
                                    " but the backend has " + std::to_string(resources) +
                                    " schedulable banks");
      }
    }
    ss.resources = std::move(set);
  } else {
    ss.resources = auto_bank_set(sid);
  }
  ss.sopts = std::move(sopts);
  {
    std::lock_guard<std::mutex> lk(smu_);
    streams_.emplace(sid, std::move(ss));
  }
  return runtime::stream(this, sid);
}

context::stream_state& context::state_of(unsigned sid) {
  const auto it = streams_.find(sid);
  if (it == streams_.end()) {
    throw std::logic_error("runtime: stream handle is closed or foreign to this context");
  }
  return it->second;
}

const context::stream_state& context::state_of(unsigned sid) const {
  const auto it = streams_.find(sid);
  if (it == streams_.end()) {
    throw std::logic_error("runtime: stream handle is closed or foreign to this context");
  }
  return it->second;
}

void context::close_stream(unsigned sid) {
  if (sid == 0) {
    throw std::logic_error("runtime: the default stream cannot be closed");
  }
  (void)state_of(sid);  // precise throw for foreign/already-closed handles
  flush_stream(sid);    // nothing of the stream's may stay stuck in a queue
  {
    std::lock_guard<std::mutex> lk(smu_);
    streams_.erase(sid);  // in-flight groups carry their own hints; ids stay waitable
  }
  // If this was a dedicated limb stream, forget it so rns_stream() opens a
  // fresh one instead of handing out a dangling id.
  for (auto it = rns_streams_.begin(); it != rns_streams_.end(); ++it) {
    if (it->second == sid) {
      rns_streams_.erase(it);
      break;
    }
  }
}

std::size_t context::stream_pending(unsigned sid) const { return state_of(sid).queue.size(); }

std::vector<unsigned> context::stream_bank_set(unsigned sid) const {
  const auto& ss = state_of(sid);
  return caps_.banks() == 0 ? std::vector<unsigned>{} : ss.resources;
}

context& stream::bound() const {
  if (ctx_ == nullptr) {
    throw std::logic_error("runtime: stream handle is not bound to a context");
  }
  return *ctx_;
}

job_id stream::submit(ntt_job j) { return bound().submit_ntt(id_, std::move(j)); }
job_id stream::submit(polymul_job j) { return bound().submit_polymul(id_, std::move(j)); }
job_id stream::submit(rlwe_encrypt_job j) { return bound().submit_rlwe(id_, std::move(j)); }
job_id stream::submit(rns_rescale_job j) { return bound().submit_rescale(id_, std::move(j)); }
job_id stream::submit(rns_base_extend_job j) {
  return bound().submit_base_extend(id_, std::move(j));
}
void stream::flush() { bound().flush_stream(id_); }
void stream::close() { bound().close_stream(id_); }
std::size_t stream::pending() const { return bound().stream_pending(id_); }
std::vector<unsigned> stream::bank_set() const { return bound().stream_bank_set(id_); }

// ---- submission ------------------------------------------------------------

namespace {

void require_ring_poly(const std::vector<u64>& coeffs, u64 n, u64 q, const char* what) {
  if (coeffs.size() != n) {
    throw std::invalid_argument(std::string("runtime: ") + what + " must have exactly n = " +
                                std::to_string(n) + " coefficients");
  }
  for (const u64 c : coeffs) {
    if (c >= q) {
      throw std::invalid_argument(std::string("runtime: ") + what +
                                  " coefficients must be canonical (< q)");
    }
  }
}

}  // namespace

job_id context::enqueue(unsigned sid, job j) {
  const job_id id = next_id_++;
  // Count the submission before the job becomes visible in any queue, so a
  // concurrent stats() reading jobs_submitted *last* can never observe an
  // outcome the submission counter has not covered yet.
  m_.jobs_submitted->add();
  std::lock_guard<std::mutex> lk(smu_);
  state_of(sid).queue.emplace_back(id, std::move(j));
  return id;
}

job_id context::submit_ntt(unsigned sid, ntt_job j) {
  const stream_state& ss = state_of(sid);
  const u64 q = ss.sopts.ring_q != 0 ? ss.sopts.ring_q : opts_.params.q;
  require_ring_poly(j.coeffs, opts_.params.n, q, "ntt_job");
  return enqueue(sid, std::move(j));
}

job_id context::submit_polymul(unsigned sid, polymul_job j) {
  const stream_state& ss = state_of(sid);
  const u64 q = ss.sopts.ring_q != 0 ? ss.sopts.ring_q : opts_.params.q;
  require_ring_poly(j.a, opts_.params.n, q, "polymul_job.a");
  require_ring_poly(j.b, opts_.params.n, q, "polymul_job.b");
  if (!caps_.polymul) {
    throw std::invalid_argument(
        "runtime: this backend's capabilities exclude ring products at these parameters (the "
        "in-SRAM pipeline needs two n-row operand regions per lane: 2n <= data_rows)");
  }
  return enqueue(sid, std::move(j));
}

job_id context::submit_rlwe(unsigned sid, rlwe_encrypt_job j) {
  const auto& p = opts_.params;
  if (state_of(sid).sopts.ring_q != 0) {
    throw std::invalid_argument(
        "runtime: rlwe_encrypt_job is ring-specific and cannot run on a ring-overridden "
        "(RNS limb) stream");
  }
  if (j.message.size() != p.n) {
    throw std::invalid_argument("runtime: rlwe message must have exactly n bits");
  }
  if (!p.negacyclic || p.incomplete || (p.q - 1) % (2 * p.n) != 0) {
    throw std::invalid_argument(
        "runtime: rlwe_encrypt_job needs a ring with a full negacyclic NTT (2n | q-1)");
  }
  if (!caps_.polymul) {
    throw std::invalid_argument(
        "runtime: rlwe_encrypt_job needs in-array ring products (2n <= data_rows)");
  }
  return enqueue(sid, std::move(j));
}

job_id context::submit_rescale(unsigned sid, rns_rescale_job j) {
  const stream_state& ss = state_of(sid);
  const u64 q = ss.sopts.ring_q != 0 ? ss.sopts.ring_q : opts_.params.q;
  if (j.prime != q) {
    throw std::invalid_argument(
        "runtime: rns_rescale_job names limb prime " + std::to_string(j.prime) +
        " but this stream's ring modulus is " + std::to_string(q) +
        " (the rescale correction of a limb rides that limb's stream)");
  }
  if (j.drop_prime == 0 || (j.drop_prime & 1ULL) == 0 || !math::is_prime(j.drop_prime)) {
    throw std::invalid_argument("runtime: rns_rescale_job drop prime " +
                                std::to_string(j.drop_prime) + " must be an odd prime");
  }
  if (j.drop_prime == j.prime) {
    throw std::invalid_argument(
        "runtime: rns_rescale_job drops its own limb prime " + std::to_string(j.prime) +
        " (the dropped limb is excluded from the rescale fan-out)");
  }
  if (j.congruence >= 2 && j.congruence % j.drop_prime == 0) {
    throw std::invalid_argument(
        "runtime: rns_rescale_job congruence " + std::to_string(j.congruence) +
        " is a multiple of drop prime " + std::to_string(j.drop_prime) +
        " (the plaintext modulus must be coprime to the dropped limb)");
  }
  require_ring_poly(j.x, opts_.params.n, j.prime, "rns_rescale_job.x");
  require_ring_poly(j.dropped, opts_.params.n, j.drop_prime, "rns_rescale_job.dropped");
  return enqueue(sid, std::move(j));
}

job_id context::submit_base_extend(unsigned sid, rns_base_extend_job j) {
  const stream_state& ss = state_of(sid);
  const u64 q = ss.sopts.ring_q != 0 ? ss.sopts.ring_q : opts_.params.q;
  if (j.prime != q) {
    throw std::invalid_argument(
        "runtime: rns_base_extend_job names target prime " + std::to_string(j.prime) +
        " but this stream's ring modulus is " + std::to_string(q) +
        " (a new limb's extension rides that limb's stream)");
  }
  if (j.source_primes.empty()) {
    throw std::invalid_argument(
        "runtime: rns_base_extend_job needs at least one source limb prime");
  }
  if (j.residues.size() != j.source_primes.size()) {
    throw std::invalid_argument(
        "runtime: rns_base_extend_job carries " + std::to_string(j.residues.size()) +
        " residue polynomials for a source chain of " +
        std::to_string(j.source_primes.size()) + " primes");
  }
  for (std::size_t i = 0; i < j.source_primes.size(); ++i) {
    const u64 p = j.source_primes[i];
    if (p == 0 || (p & 1ULL) == 0 || !math::is_prime(p)) {
      throw std::invalid_argument("runtime: rns_base_extend_job source prime " +
                                  std::to_string(p) + " must be an odd prime");
    }
    if (p == j.prime) {
      throw std::invalid_argument(
          "runtime: rns_base_extend_job extends to source prime " + std::to_string(p) +
          " (the target limb must be new — it already carries those residues)");
    }
    for (std::size_t k = i + 1; k < j.source_primes.size(); ++k) {
      if (j.source_primes[k] == p) {
        throw std::invalid_argument("runtime: rns_base_extend_job repeats source prime " +
                                    std::to_string(p) +
                                    " (an RNS basis needs pairwise-coprime moduli)");
      }
    }
    const std::string what = "rns_base_extend_job limb " + std::to_string(i);
    require_ring_poly(j.residues[i], opts_.params.n, p, what.c_str());
  }
  return enqueue(sid, std::move(j));
}

job_id context::submit(ntt_job j) { return submit_ntt(0, std::move(j)); }
job_id context::submit(polymul_job j) { return submit_polymul(0, std::move(j)); }
job_id context::submit(rlwe_encrypt_job j) { return submit_rlwe(0, std::move(j)); }

// ---- RNS fan-out ------------------------------------------------------------

stream context::rns_stream(u64 prime) {
  if (prime == 0) {
    throw std::invalid_argument("runtime: rns_stream needs a non-zero limb prime");
  }
  const auto it = rns_streams_.find(prime);
  if (it != rns_streams_.end()) return runtime::stream(this, it->second);
  stream_options sopts;
  sopts.ring_q = prime;
  runtime::stream s = stream(std::move(sopts));
  rns_streams_.emplace(prime, s.id());
  return s;
}

rns_submission context::submit_rns(rns_polymul_job j) {
  const std::size_t limbs = j.primes.size();
  if (limbs == 0) {
    throw std::invalid_argument("runtime: rns_polymul_job needs at least one limb prime");
  }
  if (j.a.size() != limbs || j.b.size() != limbs) {
    throw std::invalid_argument(
        "runtime: rns_polymul_job carries " + std::to_string(j.a.size()) + "/" +
        std::to_string(j.b.size()) + " residue polynomials for a chain of " +
        std::to_string(limbs) + " primes");
  }
  for (std::size_t i = 0; i < limbs; ++i) {
    for (std::size_t k = i + 1; k < limbs; ++k) {
      if (j.primes[i] == j.primes[k]) {
        throw std::invalid_argument("runtime: rns_polymul_job repeats limb prime " +
                                    std::to_string(j.primes[i]) +
                                    " (an RNS basis needs pairwise-coprime moduli)");
      }
    }
  }
  // Open (or reuse) every limb stream and validate every residue
  // polynomial before enqueueing anything, so an invalid limb rejects the
  // whole job instead of half of it.
  std::vector<unsigned> sids(limbs);
  for (std::size_t i = 0; i < limbs; ++i) {
    sids[i] = rns_stream(j.primes[i]).id();
    const std::string what = "rns_polymul_job limb " + std::to_string(i);
    require_ring_poly(j.a[i], opts_.params.n, j.primes[i], (what + ".a").c_str());
    require_ring_poly(j.b[i], opts_.params.n, j.primes[i], (what + ".b").c_str());
  }

  rns_submission sub;
  sub.primes = std::move(j.primes);
  sub.limb_ids.reserve(limbs);
  for (std::size_t i = 0; i < limbs; ++i) {
    sub.limb_ids.push_back(
        submit_polymul(sids[i], polymul_job{std::move(j.a[i]), std::move(j.b[i])}));
  }
  return sub;
}

std::size_t context::pending() const noexcept {
  std::lock_guard<std::mutex> lk(smu_);
  std::size_t n = 0;
  for (const auto& [sid, ss] : streams_) n += ss.queue.size();
  return n;
}

std::size_t context::open_streams() const noexcept {
  std::lock_guard<std::mutex> lk(smu_);
  return streams_.size();
}

scheduler_stats context::stats() const {
  // Assembled straight from the registry instruments — the scheduler's and
  // operand cache's counters are attached to the same objects, so nothing
  // here is a mirrored copy that could go stale.  Read-order discipline
  // replaces the old all-under-one-lock copy: outcome counters first, the
  // in-flight gauge second, jobs_submitted *last*.  A job leaves in_flight_
  // before its outcome counter bumps (both under mu_) and is counted
  // submitted before it is queued anywhere, so a snapshot can never show
  // completed + failed + in_flight > submitted.
  scheduler_stats s;
  s.jobs_completed = m_.jobs_completed->value();
  s.jobs_failed = m_.jobs_failed->value();
  {
    std::lock_guard<std::mutex> lk(mu_);
    s.jobs_in_flight = in_flight_.size();
  }
  s.groups = m_.groups->value();
  s.batches = m_.batches->value();
  s.waves = m_.waves->value();
  s.wall_cycles = m_.wall_cycles->value();
  s.deadline_misses = m_.deadline_misses->value();
  s.energy_nj = m_.energy_nj->value();
  s.operand_cache_hits = m_.cache_hits->value();
  s.operand_cache_misses = m_.cache_misses->value();
  s.groups_merged = m_.groups_merged->value();
  s.preemption_yields = m_.preemption_yields->value();
  s.residency_evictions = m_.residency_evictions->value();
  s.residency_moves = m_.residency_moves->value();
  s.residency_affinity_hits = m_.residency_affinity_hits->value();
  s.resident_rows = m_.resident_rows->value();
  s.resident_rows_peak = m_.resident_rows_peak->value();
  s.jobs_submitted = m_.jobs_submitted->value();
  return s;
}

void context::export_trace(std::ostream& os) const {
  if (!recorder_) {
    throw std::logic_error(
        "runtime: tracing is disabled — construct the context with "
        "runtime_options::with_tracing() to record a timeline");
  }
  telemetry::trace_export_layout layout;
  layout.banks = std::max(1u, caps_.banks());
  layout.banks_per_channel = (caps_.channels > 1 && layout.banks % caps_.channels == 0)
                                 ? layout.banks / caps_.channels
                                 : layout.banks;
  telemetry::write_chrome_trace(os, recorder_->snapshot_events(), layout);
}

void context::export_trace(const std::string& path) const {
  std::ofstream os(path);
  if (!os) {
    throw std::runtime_error("runtime: cannot open trace output file " + path);
  }
  export_trace(os);
}

std::size_t context::operand_cache_size() const noexcept {
  return resman_ ? resman_->size() : 0;
}

u64 context::resident_rows() const noexcept {
  return resman_ ? resman_->resident_rows() : 0;
}

u64 context::resident_row_capacity() const noexcept {
  return resman_ ? resman_->capacity_rows() : 0;
}

std::size_t context::invalidate_operand(const std::vector<u64>& coeffs) noexcept {
  return resman_ ? resman_->invalidate(coeffs) : 0;
}

std::size_t context::invalidate_operand_cache() noexcept {
  return resman_ ? resman_->clear() : 0;
}

void context::pin_operand(const std::vector<u64>& coeffs) noexcept {
  if (resman_) resman_->pin(coeffs);
}

void context::unpin_operand(const std::vector<u64>& coeffs) noexcept {
  if (resman_) resman_->unpin(coeffs);
}

// ---- group building and admission ------------------------------------------

std::shared_ptr<dispatch_group> context::build_group(unsigned sid) {
  std::lock_guard<std::mutex> lk(smu_);
  stream_state& ss = state_of(sid);
  if (ss.queue.empty()) return nullptr;
  // Jobs of one stream are independent, so its pending set is partitioned
  // by kind (and direction) into one backend dispatch each — the widest
  // batches the backend can shard over banks, lanes and waves.  Results
  // are keyed by job_id, so regrouping never misroutes an output.
  auto g = std::make_shared<dispatch_group>();
  for (auto& [id, j] : ss.queue) {
    if (auto* ntt = std::get_if<ntt_job>(&j)) {
      auto& ids = ntt->dir == transform_dir::forward ? g->plan.fwd_ids : g->plan.inv_ids;
      auto& group = ntt->dir == transform_dir::forward ? g->plan.fwd : g->plan.inv;
      ids.push_back(id);
      group.push_back(std::move(*ntt));
    } else if (auto* mul = std::get_if<polymul_job>(&j)) {
      g->plan.mul_ids.push_back(id);
      g->plan.muls.push_back(std::move(*mul));
    } else if (auto* rescale = std::get_if<rns_rescale_job>(&j)) {
      g->plan.rescale_ids.push_back(id);
      g->plan.rescales.push_back(std::move(*rescale));
    } else if (auto* bext = std::get_if<rns_base_extend_job>(&j)) {
      g->plan.bext_ids.push_back(id);
      g->plan.bexts.push_back(std::move(*bext));
    } else {
      g->plan.rlwe_ids.push_back(id);
      g->plan.rlwes.push_back(std::move(std::get<rlwe_encrypt_job>(j)));
    }
  }
  ss.queue.clear();

  g->hints.stream = sid;
  g->hints.priority = ss.sopts.priority;
  g->hints.deadline_cycles = ss.sopts.deadline_cycles;
  g->hints.ring_q = ss.sopts.ring_q;
  g->hints.chunk_budget = ss.sopts.chunk_budget;
  // Non-banked backends get no bank subset (the pseudo-resource is a
  // scheduler fiction); banked backends are confined to the stream's banks.
  if (caps_.banks() != 0) g->hints.bank_set = ss.resources;
  g->resources = ss.resources;
  // Residency affinity hint: the banks currently holding images for this
  // stream's ring — the scheduler counts a hit when the claim lands on one.
  if (resman_ && ss.sopts.ring_q != 0 && caps_.banks() != 0) {
    g->affinity_banks = resman_->banks_holding(ss.sopts.ring_q);
  }
  // Merge eligibility: R-LWE groups run a staged multi-dispatch flow that
  // cannot share a dispatch, and a stream may opt out wholesale.
  g->mergeable = !ss.sopts.no_merge && g->plan.rlwe_ids.empty();
  return g;
}

void context::admit_group_locked(std::shared_ptr<dispatch_group> g) {
  // Jobs become in-flight before the group can run, so a wait() racing the
  // pool can never mistake a dispatched job for a claimed one.
  for (const auto* ids : {&g->plan.fwd_ids, &g->plan.inv_ids, &g->plan.mul_ids,
                          &g->plan.rlwe_ids, &g->plan.rescale_ids, &g->plan.bext_ids}) {
    in_flight_.insert(ids->begin(), ids->end());
  }
  m_.groups->add();
  const dispatch_group* gp = g.get();
  sched_->enqueue(std::move(g));
  if (recorder_) {
    // The group's lifecycle starts here: seq/ref_vtime were just assigned
    // by the scheduler.  A queue-depth sample rides along so the counter
    // track shows the backlog the group joined.
    recorder_->record({.ts = gp->ref_vtime,
                       .dur = 0,
                       .a = 0,
                       .track = telemetry::kTrackScheduler,
                       .arg = static_cast<telemetry::u32>(gp->seq),
                       .op = telemetry::trace_op::group_enqueue});
    recorder_->record({.ts = gp->ref_vtime,
                       .dur = 0,
                       .a = sched_->ready_groups(),
                       .track = telemetry::kTrackScheduler,
                       .arg = 0,
                       .op = telemetry::trace_op::queue_depth});
  }
}

void context::kick_locked() {
  for (auto& gp : sched_->take_runnable()) {
    if (recorder_) {
      recorder_->record({.ts = gp->ref_vtime,
                         .dur = 0,
                         .a = gp->resources.size(),
                         .track = telemetry::kTrackScheduler,
                         .arg = static_cast<telemetry::u32>(gp->seq),
                         .op = telemetry::trace_op::bank_claim});
    }
    pool_.enqueue([this, gp] { run_group(gp); });
  }
}

void context::flush_stream(unsigned sid) {
  auto g = build_group(sid);
  if (!g) return;
  std::lock_guard<std::mutex> lk(mu_);
  admit_group_locked(std::move(g));
  kick_locked();
}

void context::flush() {
  // Every stream's group enters the ready queue before any scheduling
  // decision, so priority order holds across streams flushed together —
  // a lower-id bulk stream cannot seize contended banks ahead of a
  // higher-priority stream in the same flush.
  std::vector<std::shared_ptr<dispatch_group>> groups;
  for (auto& [sid, ss] : streams_) {
    if (auto g = build_group(sid)) groups.push_back(std::move(g));
  }
  if (groups.empty()) return;
  std::lock_guard<std::mutex> lk(mu_);
  for (auto& g : groups) admit_group_locked(std::move(g));
  kick_locked();
}

// ---- group execution --------------------------------------------------------

void context::run_group(const std::shared_ptr<dispatch_group>& g) {
  bool yielded = false;
  if (!g->absorbed.empty()) {
    run_merged_group(g);
  } else {
    yielded = run_solo_group(g);
  }
  // A yielded group released its banks and re-entered the ready queue
  // inside the yield decision; everything else releases here and lets the
  // next contender in.
  if (yielded) return;
  std::lock_guard<std::mutex> lk(mu_);
  sched_->release(*g);
  kick_locked();
}

bool context::run_solo_group(const std::shared_ptr<dispatch_group>& g) {
  // Dispatches within a group run in submission order; a backend exception
  // fails exactly its own dispatch (or chunk) — sibling dispatches of the
  // same group, and other streams' groups, still run.
  const auto guarded = [&](const std::vector<job_id>& ids, auto&& fn) {
    try {
      fn();
    } catch (const std::exception& e) {
      fail_group(*g, ids, e.what());
    } catch (...) {
      fail_group(*g, ids, "unknown backend error");
    }
  };

  // Chunked per-kind dispatch: a stream with a chunk_budget hands its jobs
  // to the backend at most budget at a time and offers its banks to any
  // earlier-ordered ready group between chunks (scheduler::should_yield).
  // Budget 0 dispatches each kind whole with no yield points — the legacy
  // path, bit-identical in outputs, dispatch counts and accounting.
  const u64 budget = g->hints.chunk_budget;
  const auto chunked = [&](std::vector<job_id>& ids, auto& jobs, auto&& dispatch_chunk) {
    while (!ids.empty()) {
      const std::size_t take =
          budget == 0 ? ids.size() : std::min<std::size_t>(ids.size(), budget);
      std::vector<job_id> cids(ids.begin(), ids.begin() + take);
      std::decay_t<decltype(jobs)> cjobs(std::make_move_iterator(jobs.begin()),
                                         std::make_move_iterator(jobs.begin() + take));
      ids.erase(ids.begin(), ids.begin() + take);
      jobs.erase(jobs.begin(), jobs.begin() + take);
      guarded(cids, [&] { dispatch_chunk(cids, std::move(cjobs)); });
      if (budget != 0 && !g->plan.empty()) {
        std::lock_guard<std::mutex> lk(mu_);
        if (sched_->should_yield(*g)) {
          // Give the banks to the earlier-ordered group: release the claim,
          // re-enqueue the remainder at its original policy position, and
          // schedule — the urgent group claims the banks on this pass.
          sched_->release(*g);
          sched_->requeue_preempted(g);
          kick_locked();
          return true;
        }
      }
    }
    return false;
  };

  flush_plan& plan = g->plan;
  if (chunked(plan.fwd_ids, plan.fwd, [&](const std::vector<job_id>& ids, auto&& js) {
        dispatch_ntt_group(*g, ids, std::move(js), transform_dir::forward);
      })) {
    return true;
  }
  if (chunked(plan.inv_ids, plan.inv, [&](const std::vector<job_id>& ids, auto&& js) {
        dispatch_ntt_group(*g, ids, std::move(js), transform_dir::inverse);
      })) {
    return true;
  }
  if (chunked(plan.mul_ids, plan.muls, [&](const std::vector<job_id>& ids, auto&& js) {
        dispatch_polymul_group(*g, ids, std::move(js));
      })) {
    return true;
  }
  if (chunked(plan.rescale_ids, plan.rescales, [&](const std::vector<job_id>& ids, auto&& js) {
        dispatch_rescale_group(*g, ids, std::move(js));
      })) {
    return true;
  }
  if (chunked(plan.bext_ids, plan.bexts, [&](const std::vector<job_id>& ids, auto&& js) {
        dispatch_base_extend_group(*g, ids, std::move(js));
      })) {
    return true;
  }
  // R-LWE runs a staged three-dispatch flow over shared intermediates;
  // it always dispatches whole (and is never merge-eligible).
  if (!plan.rlwe_ids.empty()) {
    std::vector<job_id> ids = std::move(plan.rlwe_ids);
    plan.rlwe_ids.clear();
    guarded(ids, [&] { run_rlwe_group(*g, ids, std::move(plan.rlwes)); });
  }
  return false;
}

void context::run_merged_group(const std::shared_ptr<dispatch_group>& g) {
  // One dispatch per job kind over every member's jobs (host first, then
  // absorbed groups in absorption order), sharded over the claimed bank
  // union.  Per-job math is independent, so the concatenated dispatch is
  // bit-identical to running the members separately — only the makespan
  // and per-dispatch amortization change.
  std::vector<dispatch_group*> members;
  members.reserve(1 + g->absorbed.size());
  members.push_back(g.get());
  for (const auto& m : g->absorbed) members.push_back(m.get());

  dispatch_hints hints = g->hints;
  hints.chunk_budget = 0;  // merged dispatches run whole
  if (caps_.banks() != 0) hints.bank_set = g->resources;

  const auto guarded = [&](const std::vector<member_slice>& slices, auto&& fn) {
    try {
      fn();
    } catch (const std::exception& e) {
      for (const auto& s : slices) fail_group(*s.g, *s.ids, e.what());
    } catch (...) {
      for (const auto& s : slices) fail_group(*s.g, *s.ids, "unknown backend error");
    }
  };

  // Forward and inverse transforms.
  for (const transform_dir dir : {transform_dir::forward, transform_dir::inverse}) {
    std::vector<member_slice> slices;
    std::vector<std::vector<u64>> polys;
    std::size_t total = 0;
    for (auto* m : members) {
      auto& ids = dir == transform_dir::forward ? m->plan.fwd_ids : m->plan.inv_ids;
      auto& jobs = dir == transform_dir::forward ? m->plan.fwd : m->plan.inv;
      if (ids.empty()) continue;
      slices.push_back({m, &ids, total});
      total += ids.size();
      for (auto& j : jobs) polys.push_back(std::move(j.coeffs));
    }
    if (slices.empty()) continue;
    guarded(slices, [&] {
      distribute_merged(*g, slices, total, backend_->run_ntt(polys, dir, hints),
                        dir == transform_dir::forward ? telemetry::trace_op::ntt_forward
                                                      : telemetry::trace_op::ntt_inverse);
    });
  }

  // Ring products.
  {
    std::vector<member_slice> slices;
    std::vector<core::polymul_pair> pairs;
    std::size_t total = 0;
    for (auto* m : members) {
      if (m->plan.mul_ids.empty()) continue;
      slices.push_back({m, &m->plan.mul_ids, total});
      total += m->plan.mul_ids.size();
      for (auto& j : m->plan.muls) pairs.push_back({std::move(j.a), std::move(j.b)});
    }
    if (!slices.empty()) {
      guarded(slices, [&] {
        distribute_merged(*g, slices, total, backend_->run_polymul(pairs, hints),
                          telemetry::trace_op::polymul);
      });
    }
  }

  // Rescale corrections.  Members may sit on different limb streams only
  // when their ring modulus matches (merge eligibility), so one dispatch
  // covers them all; each job still names its own limb prime.
  {
    std::vector<member_slice> slices;
    std::vector<rns_rescale_job> jobs;
    std::size_t total = 0;
    for (auto* m : members) {
      if (m->plan.rescale_ids.empty()) continue;
      slices.push_back({m, &m->plan.rescale_ids, total});
      total += m->plan.rescale_ids.size();
      for (auto& j : m->plan.rescales) jobs.push_back(std::move(j));
    }
    if (!slices.empty()) {
      guarded(slices, [&] {
        distribute_merged(*g, slices, total, backend_->run_rescale(jobs, hints),
                          telemetry::trace_op::rescale);
      });
    }
  }

  // Base extensions — same shape as the rescale section: one dispatch over
  // every member's jobs, each job naming its own target limb prime.
  {
    std::vector<member_slice> slices;
    std::vector<rns_base_extend_job> jobs;
    std::size_t total = 0;
    for (auto* m : members) {
      if (m->plan.bext_ids.empty()) continue;
      slices.push_back({m, &m->plan.bext_ids, total});
      total += m->plan.bext_ids.size();
      for (auto& j : m->plan.bexts) jobs.push_back(std::move(j));
    }
    if (!slices.empty()) {
      guarded(slices, [&] {
        distribute_merged(*g, slices, total, backend_->run_base_extend(jobs, hints),
                          telemetry::trace_op::base_extend);
      });
    }
  }
  // Merge eligibility excludes R-LWE plans, so nothing else remains.
}

// ---- accounting and completion ---------------------------------------------

u64 context::account_locked(const dispatch_group& g, const batch_result& r,
                            telemetry::trace_op op, std::size_t jobs) {
  const u64 end = sched_->account(g, r.wall_cycles);
  m_.batches->add();
  m_.waves->add(r.waves);
  m_.wall_cycles->set_max(end);
  m_.energy_nj->add(r.stats.energy_pj * 1e-3);
  if (recorder_) {
    recorder_->set_watermark(end);
    // One span per claimed bank over exactly [end - wall, end) — the
    // interval scheduler::account just advanced the frontiers by.  The max
    // span end across bank rows therefore *equals* stats().wall_cycles; the
    // trace_export_test asserts that reconstruction exactly.
    for (const unsigned b : g.resources) {
      recorder_->record({.ts = end - r.wall_cycles,
                         .dur = r.wall_cycles,
                         .a = jobs,
                         .track = b,
                         .arg = static_cast<telemetry::u32>(g.seq),
                         .op = op});
    }
  }
  return end;
}

namespace {

// A backend returning the wrong number of outputs would misroute results;
// refuse loudly (the dispatch guard converts this into per-job failures).
void require_output_count(std::size_t got, std::size_t want, const char* what) {
  if (got != want) {
    throw std::logic_error("runtime: backend returned " + std::to_string(got) +
                           " outputs for " + what + " of " + std::to_string(want) + " jobs");
  }
}

// The one deadline check every dispatch path shares.  A stream deadline is
// a completion budget measured from the stream's flush (the group's
// reference virtual time); finishing *exactly at* the deadline is a meet,
// not a miss — the boundary both dispatch paths must agree on.
bool past_deadline(const dispatch_hints& hints, u64 ref_vtime, u64 end) noexcept {
  return hints.deadline_cycles != 0 && end - ref_vtime > hints.deadline_cycles;
}

}  // namespace

void context::distribute(const dispatch_group& g, const std::vector<job_id>& ids,
                         batch_result&& r, telemetry::trace_op op) {
  require_output_count(r.outputs.size(), ids.size(), "a dispatch");
  std::lock_guard<std::mutex> lk(mu_);
  const u64 end = account_locked(g, r, op, ids.size());
  const bool missed = past_deadline(g.hints, g.ref_vtime, end);
  if (missed) {
    m_.deadline_misses->add(ids.size());
    if (recorder_) {
      recorder_->record({.ts = end,
                         .dur = 0,
                         .a = ids.size(),
                         .track = telemetry::kTrackScheduler,
                         .arg = static_cast<telemetry::u32>(g.seq),
                         .op = telemetry::trace_op::deadline_miss});
    }
  }
  for (std::size_t i = 0; i < ids.size(); ++i) {
    job_result res;
    res.outputs.push_back(std::move(r.outputs[i]));
    res.op_stats = r.stats;
    res.wall_cycles = r.wall_cycles;
    res.jobs_in_batch = ids.size();
    res.stream = g.hints.stream;
    res.finish_cycles = end;
    res.deadline_missed = missed;
    done_.emplace(ids[i], std::move(res));
    in_flight_.erase(ids[i]);
  }
  m_.jobs_completed->add(ids.size());
  cv_.notify_all();
}

void context::distribute_merged(const dispatch_group& host,
                                const std::vector<member_slice>& slices, std::size_t total_jobs,
                                batch_result&& r, telemetry::trace_op op) {
  require_output_count(r.outputs.size(), total_jobs, "a merged dispatch");
  std::lock_guard<std::mutex> lk(mu_);
  // One accounting event on the claimed union: every member's jobs finish
  // at the merged batch's end, but each member's deadline is judged from
  // its *own* flush frontier — per-tenant accounting survives the merge.
  const u64 end = account_locked(host, r, op, total_jobs);
  for (const auto& s : slices) {
    const bool missed = past_deadline(s.g->hints, s.g->ref_vtime, end);
    if (missed) {
      m_.deadline_misses->add(s.ids->size());
      if (recorder_) {
        recorder_->record({.ts = end,
                           .dur = 0,
                           .a = s.ids->size(),
                           .track = telemetry::kTrackScheduler,
                           .arg = static_cast<telemetry::u32>(s.g->seq),
                           .op = telemetry::trace_op::deadline_miss});
      }
    }
    for (std::size_t i = 0; i < s.ids->size(); ++i) {
      job_result res;
      res.outputs.push_back(std::move(r.outputs[s.offset + i]));
      res.op_stats = r.stats;
      res.wall_cycles = r.wall_cycles;
      res.jobs_in_batch = total_jobs;
      res.stream = s.g->hints.stream;
      res.finish_cycles = end;
      res.deadline_missed = missed;
      done_.emplace((*s.ids)[i], std::move(res));
      in_flight_.erase((*s.ids)[i]);
    }
    m_.jobs_completed->add(s.ids->size());
  }
  cv_.notify_all();
}

void context::fail_group(const dispatch_group& g, const std::vector<job_id>& ids,
                         const std::string& what) {
  std::lock_guard<std::mutex> lk(mu_);
  for (const job_id id : ids) {
    job_result res;
    res.status = job_status::failed;
    res.error = what;
    res.jobs_in_batch = ids.size();
    res.stream = g.hints.stream;
    done_.emplace(id, std::move(res));
    in_flight_.erase(id);
  }
  m_.jobs_failed->add(ids.size());
  cv_.notify_all();
}

void context::dispatch_ntt_group(const dispatch_group& g, const std::vector<job_id>& ids,
                                 std::vector<ntt_job>&& jobs, transform_dir dir) {
  std::vector<std::vector<u64>> polys;
  polys.reserve(jobs.size());
  for (auto& j : jobs) polys.push_back(std::move(j.coeffs));
  distribute(g, ids, backend_->run_ntt(polys, dir, g.hints),
             dir == transform_dir::forward ? telemetry::trace_op::ntt_forward
                                           : telemetry::trace_op::ntt_inverse);
}

void context::dispatch_polymul_group(const dispatch_group& g, const std::vector<job_id>& ids,
                                     std::vector<polymul_job>&& jobs) {
  std::vector<core::polymul_pair> pairs;
  pairs.reserve(jobs.size());
  for (auto& j : jobs) pairs.push_back({std::move(j.a), std::move(j.b)});
  distribute(g, ids, backend_->run_polymul(pairs, g.hints), telemetry::trace_op::polymul);
}

void context::dispatch_rescale_group(const dispatch_group& g, const std::vector<job_id>& ids,
                                     std::vector<rns_rescale_job>&& jobs) {
  distribute(g, ids, backend_->run_rescale(jobs, g.hints), telemetry::trace_op::rescale);
}

void context::dispatch_base_extend_group(const dispatch_group& g,
                                         const std::vector<job_id>& ids,
                                         std::vector<rns_base_extend_job>&& jobs) {
  distribute(g, ids, backend_->run_base_extend(jobs, g.hints),
             telemetry::trace_op::base_extend);
}

void context::run_rlwe_group(const dispatch_group& g, const std::vector<job_id>& ids,
                             std::vector<rlwe_encrypt_job>&& jobs) {
  crypto::param_set ring;
  ring.name = "runtime";
  ring.n = opts_.params.n;
  ring.q = opts_.params.q;
  ring.min_tile_bits = opts_.params.k;
  const std::size_t m = jobs.size();

  // Each job's randomness comes from its own seeded stream in exactly the
  // order the serial scheme draws it (keygen's a/s/e, then encrypt's
  // r/e1/e2 — the ring products never touch the stream), so the staged
  // flow below is bit-identical to running the scheme per job.
  std::vector<crypto::rlwe_keygen_randomness> kg(m);
  std::vector<crypto::rlwe_encrypt_randomness> en(m);
  for (std::size_t i = 0; i < m; ++i) {
    common::xoshiro256ss rng(jobs[i].seed);
    kg[i] = crypto::rlwe_sample_keygen(ring, jobs[i].eta, rng);
    en[i] = crypto::rlwe_sample_encrypt(ring, jobs[i].eta, rng);
  }

  sram::op_stats stats;
  u64 cycles = 0;
  u64 last_end = 0;
  auto batch_mul = [&](std::vector<core::polymul_pair>&& pairs) {
    const std::size_t stage_jobs = pairs.size();
    batch_result r = backend_->run_polymul(pairs, g.hints);
    require_output_count(r.outputs.size(), stage_jobs, "an rlwe product stage");
    {
      std::lock_guard<std::mutex> lk(mu_);
      last_end = account_locked(g, r, telemetry::trace_op::rlwe_stage, stage_jobs);
    }
    stats += r.stats;
    cycles += r.wall_cycles;
    return std::move(r.outputs);
  };

  // Stage 1 — keygen products a*s, one wide dispatch across all jobs.
  std::vector<core::polymul_pair> pairs(m);
  for (std::size_t i = 0; i < m; ++i) pairs[i] = {kg[i].a, kg[i].s};
  auto as = batch_mul(std::move(pairs));
  std::vector<crypto::rlwe_scheme::keypair> keys(m);
  for (std::size_t i = 0; i < m; ++i) {
    keys[i] = crypto::rlwe_finish_keygen(ring, std::move(kg[i]), std::move(as[i]));
  }

  // Stage 2 — both encryption products a*r and b*r, batched pairwise.
  pairs.assign(2 * m, core::polymul_pair{});
  for (std::size_t i = 0; i < m; ++i) {
    pairs[2 * i] = {keys[i].pk.a, en[i].r};
    pairs[2 * i + 1] = {keys[i].pk.b, en[i].r};
  }
  auto prods = batch_mul(std::move(pairs));
  std::vector<crypto::ciphertext> cts(m);
  for (std::size_t i = 0; i < m; ++i) {
    cts[i] = crypto::rlwe_finish_encrypt(ring, en[i], jobs[i].message,
                                         std::move(prods[2 * i]), std::move(prods[2 * i + 1]));
  }

  // Stage 3 — decryption round-trip products u*s.
  pairs.assign(m, core::polymul_pair{});
  for (std::size_t i = 0; i < m; ++i) pairs[i] = {cts[i].u, keys[i].sk.s};
  auto us = batch_mul(std::move(pairs));

  std::lock_guard<std::mutex> lk(mu_);
  const bool missed = past_deadline(g.hints, g.ref_vtime, last_end);
  if (missed) {
    m_.deadline_misses->add(m);
    if (recorder_) {
      recorder_->record({.ts = last_end,
                         .dur = 0,
                         .a = m,
                         .track = telemetry::kTrackScheduler,
                         .arg = static_cast<telemetry::u32>(g.seq),
                         .op = telemetry::trace_op::deadline_miss});
    }
  }
  for (std::size_t i = 0; i < m; ++i) {
    auto decrypted = crypto::rlwe_decrypt_from_product(ring, cts[i], us[i]);
    job_result res;
    res.outputs.reserve(3);
    res.outputs.push_back(std::move(cts[i].u));
    res.outputs.push_back(std::move(cts[i].v));
    res.outputs.push_back(std::move(decrypted));
    res.op_stats = stats;
    res.op_stats.cycles = cycles;  // the three product stages run back-to-back
    res.wall_cycles = cycles;
    res.jobs_in_batch = m;
    res.stream = g.hints.stream;
    res.finish_cycles = last_end;
    res.deadline_missed = missed;
    done_.emplace(ids[i], std::move(res));
    in_flight_.erase(ids[i]);
  }
  m_.jobs_completed->add(m);
  cv_.notify_all();
}

// ---- retrieval -------------------------------------------------------------

std::optional<unsigned> context::queued_on(job_id id) const noexcept {
  std::lock_guard<std::mutex> lk(smu_);
  for (const auto& [sid, ss] : streams_) {
    for (const auto& [qid, j] : ss.queue) {
      if (qid == id) return sid;
    }
  }
  return std::nullopt;
}

job_result context::wait(job_id id) {
  if (id == 0 || id >= next_id_) throw std::out_of_range("runtime: unknown job id");
  if (const auto sid = queued_on(id)) flush_stream(*sid);
  std::unique_lock<std::mutex> lk(mu_);
  cv_.wait(lk, [&] { return done_.count(id) != 0 || in_flight_.count(id) == 0; });
  auto it = done_.find(id);
  if (it == done_.end()) {
    throw std::out_of_range("runtime: job result already claimed");
  }
  job_result res = std::move(it->second);
  done_.erase(it);
  if (res.status == job_status::failed) {
    throw job_failed_error(id, res.error);
  }
  return res;
}

std::optional<job_result> context::try_wait(job_id id) {
  if (id == 0 || id >= next_id_) throw std::out_of_range("runtime: unknown job id");
  const bool queued = queued_on(id).has_value();
  std::lock_guard<std::mutex> lk(mu_);
  auto it = done_.find(id);
  if (it != done_.end()) {
    job_result res = std::move(it->second);
    done_.erase(it);
    return res;
  }
  if (queued || in_flight_.count(id) != 0) return std::nullopt;
  throw std::out_of_range("runtime: job result already claimed");
}

void context::sync() {
  flush();
  std::unique_lock<std::mutex> lk(mu_);
  cv_.wait(lk, [&] { return in_flight_.empty(); });
}

std::vector<job_result> context::wait_all() {
  flush();
  std::unique_lock<std::mutex> lk(mu_);
  cv_.wait(lk, [&] { return in_flight_.empty(); });
  std::vector<job_result> all;
  all.reserve(done_.size());
  for (auto& [id, res] : done_) all.push_back(std::move(res));
  done_.clear();
  return all;
}

}  // namespace bpntt::runtime
