#include "runtime/reference_backend.h"

#include "nttmath/poly.h"
#include "runtime/executor.h"

namespace bpntt::runtime {

reference_backend::reference_backend(const runtime_options& opts) : params_(opts.params) {
  if (params_.incomplete) {
    itables_ = std::make_unique<math::incomplete_ntt_tables>(params_.n, params_.q);
  } else {
    tables_ = std::make_unique<math::ntt_tables>(params_.n, params_.q, params_.negacyclic);
  }
}

batch_result reference_backend::run_ntt(const std::vector<std::vector<u64>>& polys,
                                        transform_dir dir, const dispatch_hints&) {
  batch_result out;
  out.outputs = polys;
  out.waves = polys.empty() ? 0 : 1;
  // The golden tables are read-only; jobs chunk freely across the pool.
  parallel_for(pool_, out.outputs.size(), [&](std::size_t i) {
    auto& a = out.outputs[i];
    if (itables_) {
      dir == transform_dir::forward ? math::incomplete_ntt_forward(a, *itables_)
                                    : math::incomplete_ntt_inverse(a, *itables_);
    } else if (params_.negacyclic) {
      dir == transform_dir::forward ? math::ntt_forward(a, *tables_)
                                    : math::ntt_inverse(a, *tables_);
    } else {
      dir == transform_dir::forward ? math::cyclic_ntt_forward(a, *tables_)
                                    : math::cyclic_ntt_inverse(a, *tables_);
    }
  });
  return out;
}

batch_result reference_backend::run_polymul(const std::vector<core::polymul_pair>& pairs,
                                            const dispatch_hints&) {
  batch_result out;
  out.outputs.resize(pairs.size());
  out.waves = pairs.empty() ? 0 : 1;
  parallel_for(pool_, pairs.size(), [&](std::size_t i) {
    out.outputs[i] = itables_ ? math::polymul_incomplete(pairs[i].a, pairs[i].b, *itables_)
                              : math::polymul_ntt(pairs[i].a, pairs[i].b, *tables_);
  });
  return out;
}

}  // namespace bpntt::runtime
