#include "runtime/reference_backend.h"

#include "nttmath/poly.h"
#include "runtime/executor.h"

namespace bpntt::runtime {

reference_backend::reference_backend(const runtime_options& opts) : params_(opts.params) {
  if (params_.incomplete) {
    itables_ = std::make_unique<math::incomplete_ntt_tables>(params_.n, params_.q);
  } else {
    tables_ = std::make_unique<math::ntt_tables>(params_.n, params_.q, params_.negacyclic);
  }
}

const math::ntt_tables& reference_backend::tables_for(u64 ring_q) {
  std::lock_guard<std::mutex> lk(retarget_mu_);
  auto it = retarget_.find(ring_q);
  if (it == retarget_.end()) {
    it = retarget_
             .emplace(ring_q, std::make_unique<math::ntt_tables>(params_.n, ring_q,
                                                                 /*negacyclic=*/true))
             .first;
  }
  return *it->second;
}

batch_result reference_backend::run_ntt(const std::vector<std::vector<u64>>& polys,
                                        transform_dir dir, const dispatch_hints& hints) {
  batch_result out;
  out.outputs = polys;
  out.waves = polys.empty() ? 0 : 1;
  // Ring-overridden (RNS limb) dispatches always run the full negacyclic
  // transform at the limb modulus; resolve the tables before the parallel
  // region so pool tasks only ever read them.
  const math::ntt_tables* limb = hints.ring_q != 0 ? &tables_for(hints.ring_q) : nullptr;
  // The golden tables are read-only; jobs chunk freely across the pool.
  parallel_for(pool_, out.outputs.size(), [&](std::size_t i) {
    auto& a = out.outputs[i];
    if (limb != nullptr) {
      dir == transform_dir::forward ? math::ntt_forward(a, *limb)
                                    : math::ntt_inverse(a, *limb);
    } else if (itables_) {
      dir == transform_dir::forward ? math::incomplete_ntt_forward(a, *itables_)
                                    : math::incomplete_ntt_inverse(a, *itables_);
    } else if (params_.negacyclic) {
      dir == transform_dir::forward ? math::ntt_forward(a, *tables_)
                                    : math::ntt_inverse(a, *tables_);
    } else {
      dir == transform_dir::forward ? math::cyclic_ntt_forward(a, *tables_)
                                    : math::cyclic_ntt_inverse(a, *tables_);
    }
  });
  return out;
}

batch_result reference_backend::run_polymul(const std::vector<core::polymul_pair>& pairs,
                                            const dispatch_hints& hints) {
  batch_result out;
  out.outputs.resize(pairs.size());
  out.waves = pairs.empty() ? 0 : 1;
  const math::ntt_tables* limb = hints.ring_q != 0 ? &tables_for(hints.ring_q) : nullptr;
  parallel_for(pool_, pairs.size(), [&](std::size_t i) {
    if (limb != nullptr) {
      out.outputs[i] = math::polymul_ntt(pairs[i].a, pairs[i].b, *limb);
    } else {
      out.outputs[i] = itables_ ? math::polymul_incomplete(pairs[i].a, pairs[i].b, *itables_)
                                : math::polymul_ntt(pairs[i].a, pairs[i].b, *tables_);
    }
  });
  return out;
}

}  // namespace bpntt::runtime
