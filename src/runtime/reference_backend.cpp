#include "runtime/reference_backend.h"

#include "nttmath/poly.h"
#include "runtime/executor.h"
#include "runtime/residency_manager.h"

namespace bpntt::runtime {

reference_backend::reference_backend(const runtime_options& opts)
    : params_(opts.params), retarget_(opts.retarget_cache_limit) {
  if (params_.incomplete) {
    itables_ = std::make_unique<math::incomplete_ntt_tables>(params_.n, params_.q);
  } else {
    tables_ = std::make_unique<math::ntt_tables>(params_.n, params_.q, params_.negacyclic);
  }
}

std::shared_ptr<const math::ntt_tables> reference_backend::tables_for(u64 ring_q) {
  return retarget_.get(
      ring_q, [&] { return math::ntt_tables(params_.n, ring_q, /*negacyclic=*/true); });
}

batch_result reference_backend::run_ntt(const std::vector<std::vector<u64>>& polys,
                                        transform_dir dir, const dispatch_hints& hints) {
  if (hints.chunk_budget != 0 && polys.size() > hints.chunk_budget) {
    return run_ntt_chunked(polys, dir, hints);
  }
  batch_result out;
  out.outputs = polys;
  out.waves = polys.empty() ? 0 : 1;
  // Ring-overridden (RNS limb) dispatches always run the full negacyclic
  // transform at the limb modulus; resolve the tables before the parallel
  // region so pool tasks only ever read them (the shared_ptr keeps the
  // entry alive across a concurrent eviction).
  const std::shared_ptr<const math::ntt_tables> limb =
      hints.ring_q != 0 ? tables_for(hints.ring_q) : nullptr;
  // The golden tables are read-only; jobs chunk freely across the pool.
  parallel_for(pool_, out.outputs.size(), [&](std::size_t i) {
    auto& a = out.outputs[i];
    if (limb != nullptr) {
      // Limb transforms are where operands repeat (fixed keys, reused
      // multiplicands); serve them from the NTT-domain cache when possible.
      const auto fresh = [&](const std::vector<u64>& p) {
        std::vector<u64> t = p;
        dir == transform_dir::forward ? math::ntt_forward(t, *limb)
                                      : math::ntt_inverse(t, *limb);
        return t;
      };
      a = resman_ != nullptr ? resman_->transformed_or(hints.ring_q, dir, a, fresh)
                             : fresh(a);
    } else if (itables_) {
      dir == transform_dir::forward ? math::incomplete_ntt_forward(a, *itables_)
                                    : math::incomplete_ntt_inverse(a, *itables_);
    } else if (params_.negacyclic) {
      dir == transform_dir::forward ? math::ntt_forward(a, *tables_)
                                    : math::ntt_inverse(a, *tables_);
    } else {
      dir == transform_dir::forward ? math::cyclic_ntt_forward(a, *tables_)
                                    : math::cyclic_ntt_inverse(a, *tables_);
    }
  });
  note_batch(polys.size(), out.wall_cycles);
  return out;
}

batch_result reference_backend::run_polymul(const std::vector<core::polymul_pair>& pairs,
                                            const dispatch_hints& hints) {
  if (hints.chunk_budget != 0 && pairs.size() > hints.chunk_budget) {
    return run_polymul_chunked(pairs, hints);
  }
  batch_result out;
  out.outputs.resize(pairs.size());
  out.waves = pairs.empty() ? 0 : 1;
  const std::shared_ptr<const math::ntt_tables> limb =
      hints.ring_q != 0 ? tables_for(hints.ring_q) : nullptr;
  parallel_for(pool_, pairs.size(), [&](std::size_t i) {
    if (limb != nullptr) {
      // The cached-operand decomposition of polymul_ntt's negacyclic path:
      // forward images of a and b come from (or feed) the operand cache —
      // bit-identical to transforming in place, only the work moves.
      const auto fresh = [&](const std::vector<u64>& p) {
        std::vector<u64> f = p;
        math::ntt_forward(f, *limb);
        return f;
      };
      const auto forward_of = [&](const std::vector<u64>& p) {
        return resman_ != nullptr
                   ? resman_->transformed_or(hints.ring_q, transform_dir::forward, p, fresh)
                   : fresh(p);
      };
      const std::vector<u64> fa = forward_of(pairs[i].a);
      const std::vector<u64> fb = forward_of(pairs[i].b);
      std::vector<u64> c(fa.size());
      math::ntt_pointwise(fa, fb, c, limb->q());
      math::ntt_inverse(c, *limb);
      out.outputs[i] = std::move(c);
    } else {
      out.outputs[i] = itables_ ? math::polymul_incomplete(pairs[i].a, pairs[i].b, *itables_)
                                : math::polymul_ntt(pairs[i].a, pairs[i].b, *tables_);
    }
  });
  note_batch(pairs.size(), out.wall_cycles);
  return out;
}

}  // namespace bpntt::runtime
