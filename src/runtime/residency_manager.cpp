#include "runtime/residency_manager.h"

#include <algorithm>
#include <set>
#include <stdexcept>

#include "telemetry/trace.h"

namespace bpntt::runtime {

namespace {

// A per-lookup instant on the cache track, stamped at the recorder's
// virtual-time watermark (the residency manager never sees frontier values
// itself); a = the limb prime so merged-limb traces separate per modulus.
void note_lookup(telemetry::trace_recorder* rec, bool hit, core::u64 ring_q) {
  if (rec == nullptr) return;
  rec->record({.ts = rec->watermark(),
               .dur = 0,
               .a = ring_q,
               .track = telemetry::kTrackCache,
               .arg = 0,
               .op = hit ? telemetry::trace_op::cache_hit : telemetry::trace_op::cache_miss});
}

// A residency lifecycle instant (evict / pin / unpin / move) on the cache
// track; a = the limb prime (or digest for pins, which are ring-agnostic),
// arg = the bank involved.
void note_instant(telemetry::trace_recorder* rec, telemetry::trace_op op, core::u64 a,
                  std::uint32_t arg) {
  if (rec == nullptr) return;
  rec->record({.ts = rec->watermark(), .dur = 0, .a = a, .track = telemetry::kTrackCache,
               .arg = arg, .op = op});
}

}  // namespace

residency_manager::residency_manager(const config& cfg)
    : cfg_(cfg),
      budget_(cfg.banks == 0 ? 1 : cfg.banks,
              cfg.data_subarrays == 0 ? 1 : cfg.data_subarrays, cfg.rows_per_subarray) {
  if (cfg_.banks == 0 || cfg_.channels == 0 || cfg_.data_subarrays == 0) {
    throw std::invalid_argument("residency_manager: banks/channels/subarrays must be >= 1");
  }
  if (cfg_.channels > cfg_.banks) {
    throw std::invalid_argument("residency_manager: more channels than banks");
  }
}

core::u64 residency_manager::digest_of(const std::vector<core::u64>& coeffs) noexcept {
  // FNV-1a over the coefficient words plus the length, 64-bit.
  core::u64 h = 1469598103934665603ULL;
  const auto mix = [&h](core::u64 word) {
    for (unsigned byte = 0; byte < 8; ++byte) {
      h ^= (word >> (8 * byte)) & 0xFFULL;
      h *= 1099511628211ULL;
    }
  };
  mix(static_cast<core::u64>(coeffs.size()));
  for (const core::u64 c : coeffs) mix(c);
  return h;
}

void residency_manager::touch_locked(entry& e, const key& k) {
  order_.erase(e.lru);
  order_.push_front(k);
  e.lru = order_.begin();
}

unsigned residency_manager::home_bank_locked(core::u64 ring_q) {
  const auto it = home_.find(ring_q);
  if (it != home_.end()) return it->second;
  const unsigned idx = next_home_++;
  // Channel-first spreading: consecutive first-seen limbs land on distinct
  // channels (each channel's first bank) before wrapping, so limbs that
  // outnumber the channels tile round-robin instead of stacking.  When the
  // bank count does not divide evenly into channels, plain round-robin over
  // banks is the best the hardware offers.
  unsigned home = 0;
  if (cfg_.banks % cfg_.channels == 0) {
    home = (idx % cfg_.channels) * (cfg_.banks / cfg_.channels);
  } else {
    home = idx % cfg_.banks;
  }
  home_.emplace(ring_q, home);
  return home;
}

bool residency_manager::pinned_registered_locked(core::u64 digest,
                                                 const std::vector<core::u64>& coeffs) const {
  const auto it = pins_.find(digest);
  if (it == pins_.end()) return false;
  return std::any_of(it->second.begin(), it->second.end(),
                     [&coeffs](const std::vector<core::u64>& c) { return c == coeffs; });
}

void residency_manager::publish_rows_locked() {
  const core::u64 rows = budget_.reserved_rows();
  if (resident_rows_ != nullptr) resident_rows_->set(rows);
  if (resident_rows_peak_ != nullptr) resident_rows_peak_->set_max(rows);
  if (rec_ != nullptr) {
    rec_->record({.ts = rec_->watermark(), .dur = 0, .a = rows,
                  .track = telemetry::kTrackCache, .arg = 0,
                  .op = telemetry::trace_op::resident_rows});
  }
}

bool residency_manager::evict_one_locked(std::optional<unsigned> bank) {
  // order_ front = most recent; evict from the back, skipping pinned
  // entries (and, when the caller is relieving pressure on one bank,
  // entries resident elsewhere).
  for (auto it = order_.rbegin(); it != order_.rend(); ++it) {
    const auto ent = entries_.find(*it);
    if (ent == entries_.end()) continue;  // unreachable; defensive
    if (ent->second.pinned) continue;
    if (bank && ent->second.span.bank != *bank) continue;
    const core::u64 ring_q = ent->first.ring_q;
    const unsigned freed_bank = ent->second.span.bank;
    erase_locked(ent);
    evictions_->add();
    note_instant(rec_, telemetry::trace_op::resident_evict, ring_q, freed_bank);
    publish_rows_locked();
    return true;
  }
  return false;
}

std::optional<sram::row_span> residency_manager::place_locked(unsigned want_bank,
                                                              unsigned rows) {
  if (rows == 0) return std::nullopt;
  // The preferred bank first; then spill to any bank with free rows —
  // a resident on a foreign bank serves warm as a cheap on-chip row move,
  // which always beats evicting a still-useful entry and recomputing it.
  if (auto s = budget_.reserve(want_bank, rows)) return s;
  for (unsigned b = 0; b < cfg_.banks; ++b) {
    if (b == want_bank) continue;
    if (auto s = budget_.reserve(b, rows)) return s;
  }
  // Capacity pressure: evict the preferred bank's own LRU unpinned entries
  // — a same-sized working set means a freed span always fits.
  while (evict_one_locked(want_bank)) {
    if (auto s = budget_.reserve(want_bank, rows)) return s;
  }
  // Global pressure: evict the coldest unpinned entry anywhere, retry.
  while (evict_one_locked(std::nullopt)) {
    for (unsigned b = 0; b < cfg_.banks; ++b) {
      if (auto s = budget_.reserve(b, rows)) return s;
    }
  }
  return std::nullopt;  // budget exhausted by pinned residents (or oversized operand)
}

std::optional<residency_manager::hit> residency_manager::lookup(
    core::u64 ring_q, core::transform_dir dir, const std::vector<core::u64>& coeffs) {
  const key k{ring_q, static_cast<int>(dir), digest_of(coeffs)};
  std::lock_guard<std::mutex> lk(mu_);
  const auto it = entries_.find(k);
  if (it == entries_.end() || it->second.coeffs != coeffs) {
    misses_->add();
    note_lookup(rec_, /*hit=*/false, ring_q);
    return std::nullopt;
  }
  touch_locked(it->second, k);
  hits_->add();
  note_lookup(rec_, /*hit=*/true, ring_q);
  return hit{it->second.transformed, it->second.span.bank};
}

void residency_manager::insert(core::u64 ring_q, core::transform_dir dir,
                               const std::vector<core::u64>& coeffs,
                               std::vector<core::u64> transformed,
                               std::optional<unsigned> bank_hint) {
  const key k{ring_q, static_cast<int>(dir), digest_of(coeffs)};
  std::lock_guard<std::mutex> lk(mu_);
  const auto it = entries_.find(k);
  if (it != entries_.end()) {
    it->second.coeffs = coeffs;
    it->second.transformed = std::move(transformed);
    it->second.pinned = pinned_registered_locked(k.digest, coeffs);
    touch_locked(it->second, k);
    return;
  }
  const auto rows = static_cast<unsigned>(coeffs.size());
  const unsigned want_bank = (bank_hint && *bank_hint < cfg_.banks)
                                 ? *bank_hint
                                 : home_bank_locked(ring_q);
  auto span = place_locked(want_bank, rows);
  if (!span) return;  // no placement even after eviction: drop, never misfile
  order_.push_front(k);
  entries_.emplace(k, entry{coeffs, std::move(transformed), *span,
                            pinned_registered_locked(k.digest, coeffs), order_.begin()});
  publish_rows_locked();
}

std::size_t residency_manager::invalidate(const std::vector<core::u64>& coeffs) {
  const core::u64 digest = digest_of(coeffs);
  std::lock_guard<std::mutex> lk(mu_);
  std::size_t dropped = 0;
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->first.digest == digest && it->second.coeffs == coeffs) {
      const auto next = std::next(it);
      erase_locked(it);
      it = next;
      ++dropped;
    } else {
      ++it;
    }
  }
  // Retiring the operand retires its pin registration too: a later
  // insertion of the same value is a fresh operand on probation, not a
  // resurrection of the old pinned resident.
  const auto pit = pins_.find(digest);
  if (pit != pins_.end()) {
    auto& regs = pit->second;
    regs.erase(std::remove(regs.begin(), regs.end(), coeffs), regs.end());
    if (regs.empty()) pins_.erase(pit);
  }
  if (dropped != 0) publish_rows_locked();
  return dropped;
}

std::size_t residency_manager::clear() {
  std::lock_guard<std::mutex> lk(mu_);
  const std::size_t dropped = entries_.size();
  for (auto& [k, e] : entries_) budget_.release(e.span);
  entries_.clear();
  order_.clear();
  if (dropped != 0) publish_rows_locked();
  return dropped;
}

void residency_manager::erase_locked(std::map<key, entry>::iterator it) {
  budget_.release(it->second.span);
  order_.erase(it->second.lru);
  entries_.erase(it);
}

void residency_manager::pin(const std::vector<core::u64>& coeffs) {
  const core::u64 digest = digest_of(coeffs);
  std::lock_guard<std::mutex> lk(mu_);
  if (!pinned_registered_locked(digest, coeffs)) pins_[digest].push_back(coeffs);
  for (auto& [k, e] : entries_) {
    if (k.digest == digest && e.coeffs == coeffs) e.pinned = true;
  }
  note_instant(rec_, telemetry::trace_op::resident_pin, digest, 0);
}

void residency_manager::unpin(const std::vector<core::u64>& coeffs) {
  const core::u64 digest = digest_of(coeffs);
  std::lock_guard<std::mutex> lk(mu_);
  const auto pit = pins_.find(digest);
  if (pit != pins_.end()) {
    auto& regs = pit->second;
    regs.erase(std::remove(regs.begin(), regs.end(), coeffs), regs.end());
    if (regs.empty()) pins_.erase(pit);
  }
  for (auto& [k, e] : entries_) {
    if (k.digest == digest && e.coeffs == coeffs) e.pinned = false;
  }
  note_instant(rec_, telemetry::trace_op::resident_unpin, digest, 0);
}

std::vector<unsigned> residency_manager::banks_holding(core::u64 ring_q) const {
  std::lock_guard<std::mutex> lk(mu_);
  std::set<unsigned> banks;
  for (const auto& [k, e] : entries_) {
    if (k.ring_q == ring_q) banks.insert(e.span.bank);
  }
  return {banks.begin(), banks.end()};
}

void residency_manager::note_move(core::u64 ring_q, unsigned from_bank) {
  std::lock_guard<std::mutex> lk(mu_);
  moves_->add();
  note_instant(rec_, telemetry::trace_op::resident_move, ring_q, from_bank);
}

std::size_t residency_manager::size() const {
  std::lock_guard<std::mutex> lk(mu_);
  return entries_.size();
}

core::u64 residency_manager::resident_rows() const {
  std::lock_guard<std::mutex> lk(mu_);
  return budget_.reserved_rows();
}

}  // namespace bpntt::runtime
