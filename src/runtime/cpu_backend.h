// Software backend: the measured CPU baseline of Table I behind the uniform
// interface.
//
// Math runs on the Montgomery-reduction fast_ntt (the competitive software
// path, not the 128-bit-division golden model); incomplete and cyclic
// parameter sets fall back to the exact table-driven transforms.  Wall time
// is measured with a monotonic clock and converted into the unified cycle /
// energy accounting via the configured core frequency and power — the same
// methodology baselines::measure_cpu_ntt uses for the Table I row.
#pragma once

#include <memory>

#include "nttmath/fast_ntt.h"
#include "nttmath/incomplete_ntt.h"
#include "runtime/backend.h"
#include "runtime/options.h"
#include "runtime/retarget_cache.h"

namespace bpntt::runtime {

class cpu_backend final : public backend {
 public:
  explicit cpu_backend(const runtime_options& opts);

  [[nodiscard]] std::string_view name() const noexcept override { return "cpu"; }
  // Unbounded batches, no banked structure: one resource, dispatches
  // serialize.  The software path hosts any power-of-two order and any
  // modulus the 63-bit golden arithmetic can reduce.
  [[nodiscard]] backend_caps capabilities() const override {
    backend_caps caps;
    caps.polymul = true;
    return caps;
  }

  batch_result run_ntt(const std::vector<std::vector<u64>>& polys, transform_dir dir,
                       const dispatch_hints& hints) override;
  batch_result run_polymul(const std::vector<core::polymul_pair>& pairs,
                           const dispatch_hints& hints) override;

  [[nodiscard]] std::size_t retarget_cache_size() const override { return retarget_.size(); }

 private:
  // Montgomery fast path for one ring-override modulus (RNS limb
  // dispatches) — the same competitive software path the primary ring
  // uses, built lazily and LRU-bounded per runtime_options; a dispatch
  // holds its shared_ptr, so eviction mid-flight is safe.
  struct limb_ring {
    std::unique_ptr<math::ntt_tables> tables;
    std::unique_ptr<math::fast_ntt> fast;
  };
  [[nodiscard]] std::shared_ptr<const limb_ring> ring_for(u64 ring_q);

  // `limb` selects a retargeted ring; nullptr = the primary configured ring.
  void transform(std::vector<u64>& a, transform_dir dir, const limb_ring* limb) const;
  [[nodiscard]] std::vector<u64> multiply(const core::polymul_pair& pair, u64 ring_q,
                                          const limb_ring* limb) const;
  [[nodiscard]] batch_result finish(std::vector<std::vector<u64>> outputs,
                                    double seconds) const;

  core::ntt_params params_;
  double freq_ghz_ = 0.0;
  double power_w_ = 0.0;
  std::unique_ptr<math::ntt_tables> tables_;
  std::unique_ptr<math::incomplete_ntt_tables> itables_;
  std::unique_ptr<math::fast_ntt> fast_;
  retarget_lru<limb_ring> retarget_;
};

}  // namespace bpntt::runtime
