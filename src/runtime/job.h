// Typed job model of the bpntt runtime — the unit of work a client submits
// to a runtime::context.
//
// Three job kinds cover the workloads the paper measures: raw transforms
// (the Table I microkernel), full negacyclic ring products (the polynomial
// multiplication every lattice scheme spends its time in), and end-to-end
// R-LWE encryption (the edge-device motivation of §I).  Each submit()
// returns a job_id; wait() returns the matching job_result regardless of
// which backend executed it.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "bpntt/bank.h"
#include "sram/stats.h"

namespace bpntt::runtime {

using u64 = core::u64;
using core::transform_dir;

using job_id = std::uint64_t;

// One n-point transform of `coeffs` (canonical residues).  Forward consumes
// standard order and produces bit-reversed order; inverse is the converse —
// the same ordering contract as the golden transform.
struct ntt_job {
  transform_dir dir = transform_dir::forward;
  std::vector<u64> coeffs;
};

// One negacyclic ring product a * b mod (x^n + 1, q).  In incomplete
// (standardized-Kyber) parameter sets the product is finished with degree-1
// base multiplications, exactly as the in-array pipeline does.
struct polymul_job {
  std::vector<u64> a;
  std::vector<u64> b;
};

// One big-modulus negacyclic ring product, already decomposed into residue
// polynomials over a chain of pairwise-coprime NTT-friendly limb primes
// (an RNS basis; see src/rns/).  Limb i is an independent word-sized
// product a[i] * b[i] mod (x^n + 1, primes[i]): submit_rns() fans the
// limbs out one stream per limb, so on a multi-channel topology the limb
// dispatch groups genuinely overlap.  CRT recombination of the per-limb
// results into big coefficients is the caller's (rns_engine's) job.
struct rns_polymul_job {
  std::vector<u64> primes;            // the limb moduli, ascending, distinct
  std::vector<std::vector<u64>> a;    // a[i]: n residues, canonical mod primes[i]
  std::vector<std::vector<u64>> b;    // b[i]: likewise
};

// Receipt of one submit_rns(): the per-limb polymul job ids, in the same
// order as the job's prime chain.  Wait on each id (its result is that
// limb's residue product) and recombine via CRT.
struct rns_submission {
  std::vector<u64> primes;
  std::vector<job_id> limb_ids;
};

// One limb's share of an RNS modulus switch (rescale): given this limb's
// residues x_i of a big coefficient vector x and the dropped limb's
// residues r = x mod q_drop, produce the residues of round(x / q_drop) in
// this limb's channel:
//
//   out[j] = ((x[j] - r[j]) * q_drop^{-1} + round_up(r[j])) mod prime,
//
// where round_up is 1 when 2*r[j] > q_drop (ties cannot occur — q_drop is
// odd).  x - r is divisible by q_drop, so the per-limb correction is exact:
// the k-1 outputs of a rescale are precisely round(x / q_drop) mod each
// kept prime.  The job rides the limb's dedicated stream (`prime` must
// match the stream's ring modulus), so a multi-limb rescale fans out and
// overlaps exactly like a multi-limb product.
struct rns_rescale_job {
  u64 prime = 0;              // this limb's modulus q_i (= the stream's ring)
  u64 drop_prime = 0;         // the chain's dropped last limb q_drop
  std::vector<u64> x;         // n residues, canonical mod prime
  std::vector<u64> dropped;   // n residues of the dropped limb, canonical mod drop_prime
  // Congruence-preserving variant (BGV-style modulus switching): with
  // congruence = t >= 2, the correction delta subtracted from x before the
  // exact division is chosen congruent to x mod q_drop AND to 0 mod t with
  // minimal |delta|, so the output satisfies out == x * q_drop^{-1} (mod t)
  // — the plaintext residue survives the switch.  t must be coprime to
  // q_drop.  0 or 1 keeps the legacy plain round-to-nearest behaviour.
  u64 congruence = 0;
};

// One target limb's share of an RNS base extension: given the residues of a
// big coefficient vector x over the source chain q_0..q_{k-1}, produce the
// residues of the *exact canonical lift* [x]_M (0 <= x < M = q_0...q_{k-1})
// modulo `prime`, a new limb coprime to the chain.  This is the dual of a
// rescale — the chain grows instead of shrinking — and the primitive key
// switching needs for multiply-accumulate headroom.  One job per new limb
// rides that limb's dedicated stream (`prime` must match the stream's ring
// modulus), so a multi-limb extension fans out and overlaps exactly like a
// multi-limb product.
struct rns_base_extend_job {
  u64 prime = 0;                          // the new limb's modulus (= the stream's ring)
  std::vector<u64> source_primes;         // the source chain, ascending, distinct
  std::vector<std::vector<u64>> residues; // residues[i]: n residues mod source_primes[i]
};

// End-to-end R-LWE public-key encryption of a {0,1} message polynomial.
// Key generation, encryption and a decryption round-trip all run with ring
// products routed through the executing backend.  Randomness is derived
// deterministically from `seed`, so two backends given the same job produce
// bit-identical ciphertexts — the property the differential tests pin down.
struct rlwe_encrypt_job {
  std::vector<u64> message;
  unsigned eta = 2;
  u64 seed = 1;
};

// Terminal state of a job.  A backend exception fails exactly the jobs of
// the dispatch it occurred in; sibling dispatches of the same flush still
// complete with `ok` results.
enum class job_status { ok, failed };

// Unified result: `outputs` holds the job's polynomials (one for ntt_job and
// polymul_job; ciphertext u, v and the decrypted round-trip for
// rlwe_encrypt_job).  op_stats and wall_cycles describe the scheduled batch
// the job rode in — divide by jobs_in_batch for an amortized per-job view.
// When status == failed, `error` carries the backend's message and
// `outputs` is empty.
//
// Stream accounting: `stream` is the submission stream the job rode in (0 =
// the default stream), `finish_cycles` is the job's completion time on the
// context's virtual timeline (per-bank frontiers; overlapping streams on
// disjoint banks advance concurrently), and `deadline_missed` is set when
// the stream carries a deadline and completion overran it, measured from
// the stream's flush.
struct job_result {
  job_status status = job_status::ok;
  std::string error;
  std::vector<std::vector<u64>> outputs;
  sram::op_stats op_stats;
  u64 wall_cycles = 0;
  std::size_t jobs_in_batch = 1;
  unsigned stream = 0;
  u64 finish_cycles = 0;
  bool deadline_missed = false;
};

// Thrown by context::wait() when the waited job's dispatch failed in the
// backend.  Carries the same per-job error that try_wait() / wait_all()
// report through job_result::error for callers that prefer not to catch.
class job_failed_error : public std::runtime_error {
 public:
  job_failed_error(job_id id, const std::string& why)
      : std::runtime_error("runtime: job " + std::to_string(id) + " failed: " + why),
        id_(id) {}
  [[nodiscard]] job_id id() const noexcept { return id_; }

 private:
  job_id id_;
};

}  // namespace bpntt::runtime
