#include "runtime/operand_cache.h"

#include "telemetry/trace.h"

namespace bpntt::runtime {

namespace {

// A per-lookup instant on the cache track, stamped at the recorder's
// virtual-time watermark (the cache never sees frontier values itself);
// a = the limb prime so merged-limb traces separate per modulus.
void note_lookup(telemetry::trace_recorder* rec, bool hit, core::u64 ring_q) {
  if (rec == nullptr) return;
  rec->record({.ts = rec->watermark(),
               .dur = 0,
               .a = ring_q,
               .track = telemetry::kTrackCache,
               .arg = 0,
               .op = hit ? telemetry::trace_op::cache_hit : telemetry::trace_op::cache_miss});
}

}  // namespace

core::u64 operand_cache::digest_of(const std::vector<core::u64>& coeffs) noexcept {
  // FNV-1a over the coefficient words plus the length, 64-bit.
  core::u64 h = 1469598103934665603ULL;
  const auto mix = [&h](core::u64 word) {
    for (unsigned byte = 0; byte < 8; ++byte) {
      h ^= (word >> (8 * byte)) & 0xFFULL;
      h *= 1099511628211ULL;
    }
  };
  mix(static_cast<core::u64>(coeffs.size()));
  for (const core::u64 c : coeffs) mix(c);
  return h;
}

void operand_cache::touch_locked(entry& e, const key& k) {
  order_.erase(e.lru);
  order_.push_front(k);
  e.lru = order_.begin();
}

std::optional<std::vector<core::u64>> operand_cache::lookup(
    core::u64 ring_q, core::transform_dir dir, const std::vector<core::u64>& coeffs) {
  const key k{ring_q, static_cast<int>(dir), digest_of(coeffs)};
  std::lock_guard<std::mutex> lk(mu_);
  const auto it = entries_.find(k);
  if (it == entries_.end() || it->second.coeffs != coeffs) {
    misses_->add();
    note_lookup(rec_, /*hit=*/false, ring_q);
    return std::nullopt;
  }
  touch_locked(it->second, k);
  hits_->add();
  note_lookup(rec_, /*hit=*/true, ring_q);
  return it->second.transformed;
}

void operand_cache::insert(core::u64 ring_q, core::transform_dir dir,
                           const std::vector<core::u64>& coeffs,
                           std::vector<core::u64> transformed) {
  if (capacity_ == 0) return;
  const key k{ring_q, static_cast<int>(dir), digest_of(coeffs)};
  std::lock_guard<std::mutex> lk(mu_);
  const auto it = entries_.find(k);
  if (it != entries_.end()) {
    it->second.coeffs = coeffs;
    it->second.transformed = std::move(transformed);
    touch_locked(it->second, k);
    return;
  }
  while (entries_.size() >= capacity_) {
    entries_.erase(order_.back());
    order_.pop_back();
  }
  order_.push_front(k);
  entries_.emplace(k, entry{coeffs, std::move(transformed), order_.begin()});
}

void operand_cache::invalidate(const std::vector<core::u64>& coeffs) {
  const core::u64 digest = digest_of(coeffs);
  std::lock_guard<std::mutex> lk(mu_);
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->first.digest == digest && it->second.coeffs == coeffs) {
      order_.erase(it->second.lru);
      it = entries_.erase(it);
    } else {
      ++it;
    }
  }
}

void operand_cache::clear() {
  std::lock_guard<std::mutex> lk(mu_);
  entries_.clear();
  order_.clear();
}

std::size_t operand_cache::size() const {
  std::lock_guard<std::mutex> lk(mu_);
  return entries_.size();
}

}  // namespace bpntt::runtime
