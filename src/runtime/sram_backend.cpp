#include "runtime/sram_backend.h"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "runtime/executor.h"

namespace bpntt::runtime {

sram_backend::sram_backend(const runtime_options& opts)
    : channels_(opts.topo.channels), bank_cfg_(opts.bank()), params_(opts.params) {
  const unsigned total = opts.topo.total_banks();
  banks_.reserve(total);
  for (unsigned b = 0; b < total; ++b) {
    banks_.emplace_back(bank_cfg_, params_);
  }
}

std::vector<core::bp_ntt_bank>& sram_backend::banks_for(u64 ring_q) {
  if (ring_q == 0) return banks_;
  // The primary banks satisfy a same-modulus override only when they
  // already run the full negacyclic transform — an incomplete or cyclic
  // primary ring must still retarget, or a ring-overridden dispatch would
  // execute a different transform here than on the cpu/reference backends.
  if (ring_q == params_.q && params_.negacyclic && !params_.incomplete) return banks_;
  std::lock_guard<std::mutex> lk(retarget_mu_);
  auto it = retarget_.find(ring_q);
  if (it == retarget_.end()) {
    // Retarget: same chip, same tile width, twiddles/constants recompiled
    // for the limb prime.  The limb ring is always a full negacyclic ring
    // (the context validated 2n | q-1 at stream creation).
    core::ntt_params limb = params_;
    limb.q = ring_q;
    limb.negacyclic = true;
    limb.incomplete = false;
    std::vector<core::bp_ntt_bank> retargeted;
    retargeted.reserve(banks_.size());
    for (std::size_t b = 0; b < banks_.size(); ++b) retargeted.emplace_back(bank_cfg_, limb);
    it = retarget_.emplace(ring_q, std::move(retargeted)).first;
  }
  return it->second;
}

backend_caps sram_backend::capabilities() const {
  backend_caps caps;
  caps.bank_lanes.reserve(banks_.size());
  for (const auto& b : banks_) {
    caps.bank_lanes.push_back(b.lanes_per_wave());
    caps.wave_width += b.lanes_per_wave();
  }
  caps.channels = channels_;
  caps.polymul = !banks_.empty() && banks_.front().supports_polymul();
  if (!banks_.empty()) {
    const auto& p = banks_.front().params();
    caps.max_poly_order = p.n;       // banks are built for exactly this ring
    caps.max_modulus_bits = p.k - 1; // carry-save headroom: 2q < 2^k
  }
  return caps;
}

std::vector<unsigned> sram_backend::resolve_bank_set(const dispatch_hints& hints) const {
  if (hints.bank_set.empty()) {
    std::vector<unsigned> all(banks_.size());
    for (unsigned b = 0; b < banks_.size(); ++b) all[b] = b;
    return all;
  }
  for (const unsigned b : hints.bank_set) {
    if (b >= banks_.size()) {
      throw std::invalid_argument("sram backend: dispatch names bank " + std::to_string(b) +
                                  " but the topology has " + std::to_string(banks_.size()) +
                                  " banks");
    }
  }
  return hints.bank_set;
}

template <typename RunSlice>
batch_result sram_backend::shard(std::size_t njobs, const dispatch_hints& hints,
                                 RunSlice&& run_slice) {
  batch_result out;
  out.outputs.resize(njobs);
  if (njobs == 0 || banks_.empty()) return out;

  // Wave-width blocks round-robin over the subset: block b -> subset bank
  // b mod |subset|.  The assignment depends only on the subset, so a given
  // (jobs, bank_set) dispatch is deterministic at any pool size.
  std::vector<core::bp_ntt_bank>& banks = banks_for(hints.ring_q);
  const std::vector<unsigned> set = resolve_bank_set(hints);
  const unsigned block_width = std::max(1u, banks[set.front()].lanes_per_wave());
  std::vector<std::vector<std::size_t>> assigned(set.size());
  std::size_t block = 0;
  for (std::size_t i = 0; i < njobs; i += block_width, ++block) {
    auto& dst = assigned[block % set.size()];
    for (std::size_t j = i; j < std::min<std::size_t>(njobs, i + block_width); ++j) {
      dst.push_back(j);
    }
  }

  // Banks are independent models executing a broadcast command stream
  // (§IV-A), so their slices really do run concurrently: one pool task per
  // subset bank.  Results are merged serially in bank order afterwards,
  // keeping the floating-point energy sum (and therefore every reported
  // stat) deterministic regardless of pool size.
  std::vector<core::bank_run_result> per_bank(set.size());
  parallel_for(pool_, set.size(), [&](std::size_t s) {
    if (!assigned[s].empty()) per_bank[s] = run_slice(banks[set[s]], assigned[s]);
  });

  for (std::size_t s = 0; s < set.size(); ++s) {
    if (assigned[s].empty()) continue;
    core::bank_run_result& r = per_bank[s];
    for (std::size_t k = 0; k < assigned[s].size(); ++k) {
      out.outputs[assigned[s][k]] = std::move(r.outputs[k]);
    }
    // Wall clock is the slowest bank; waves, energy and op counts accumulate.
    out.wall_cycles = std::max(out.wall_cycles, r.cycles);
    out.waves += r.waves;
    out.stats += r.stats;
  }
  out.stats.cycles = out.wall_cycles;
  return out;
}

batch_result sram_backend::run_ntt(const std::vector<std::vector<u64>>& polys,
                                   transform_dir dir, const dispatch_hints& hints) {
  return shard(polys.size(), hints,
               [&](core::bp_ntt_bank& bank, const std::vector<std::size_t>& idx) {
                 std::vector<std::vector<u64>> slice;
                 slice.reserve(idx.size());
                 for (const auto i : idx) slice.push_back(polys[i]);
                 return bank.run_ntt_batch(slice, dir);
               });
}

batch_result sram_backend::run_polymul(const std::vector<core::polymul_pair>& pairs,
                                       const dispatch_hints& hints) {
  return shard(pairs.size(), hints,
               [&](core::bp_ntt_bank& bank, const std::vector<std::size_t>& idx) {
                 std::vector<core::polymul_pair> slice;
                 slice.reserve(idx.size());
                 for (const auto i : idx) slice.push_back(pairs[i]);
                 return bank.run_polymul_batch(slice);
               });
}

}  // namespace bpntt::runtime
