#include "runtime/sram_backend.h"

#include <algorithm>
#include <map>
#include <stdexcept>
#include <string>
#include <utility>

#include "runtime/executor.h"
#include "runtime/residency_manager.h"
#include "sram/tech_model.h"

namespace bpntt::runtime {

sram_backend::sram_backend(const runtime_options& opts)
    : channels_(opts.topo.channels),
      bank_cfg_(opts.bank()),
      params_(opts.params),
      retarget_(opts.retarget_cache_limit) {
  const unsigned total = opts.topo.total_banks();
  banks_.reserve(total);
  for (unsigned b = 0; b < total; ++b) {
    banks_.emplace_back(bank_cfg_, params_);
  }
}

std::shared_ptr<std::vector<core::bp_ntt_bank>> sram_backend::banks_for(u64 ring_q) {
  // The primary array is a member, not a cache entry: alias it into a
  // non-owning shared_ptr so both paths hand dispatches the same handle
  // type (the member outlives every dispatch by construction).
  const auto primary = std::shared_ptr<std::vector<core::bp_ntt_bank>>(
      std::shared_ptr<void>(), &banks_);
  if (ring_q == 0) return primary;
  // The primary banks satisfy a same-modulus override only when they
  // already run the full negacyclic transform — an incomplete or cyclic
  // primary ring must still retarget, or a ring-overridden dispatch would
  // execute a different transform here than on the cpu/reference backends.
  if (ring_q == params_.q && params_.negacyclic && !params_.incomplete) return primary;
  return retarget_.get(ring_q, [&] {
    // Retarget: same chip, same tile width, twiddles/constants recompiled
    // for the limb prime.  The limb ring is always a full negacyclic ring
    // (the context validated 2n | q-1 at stream creation).
    core::ntt_params limb = params_;
    limb.q = ring_q;
    limb.negacyclic = true;
    limb.incomplete = false;
    std::vector<core::bp_ntt_bank> retargeted;
    retargeted.reserve(banks_.size());
    for (std::size_t b = 0; b < banks_.size(); ++b) retargeted.emplace_back(bank_cfg_, limb);
    return retargeted;
  });
}

backend_caps sram_backend::capabilities() const {
  backend_caps caps;
  caps.bank_lanes.reserve(banks_.size());
  for (const auto& b : banks_) {
    caps.bank_lanes.push_back(b.lanes_per_wave());
    caps.wave_width += b.lanes_per_wave();
  }
  caps.channels = channels_;
  caps.polymul = !banks_.empty() && banks_.front().supports_polymul();
  if (!banks_.empty()) {
    const auto& p = banks_.front().params();
    caps.max_poly_order = p.n;       // banks are built for exactly this ring
    caps.max_modulus_bits = p.k - 1; // carry-save headroom: 2q < 2^k
  }
  return caps;
}

std::vector<unsigned> sram_backend::resolve_bank_set(const dispatch_hints& hints) const {
  if (hints.bank_set.empty()) {
    std::vector<unsigned> all(banks_.size());
    for (unsigned b = 0; b < banks_.size(); ++b) all[b] = b;
    return all;
  }
  for (const unsigned b : hints.bank_set) {
    if (b >= banks_.size()) {
      throw std::invalid_argument("sram backend: dispatch names bank " + std::to_string(b) +
                                  " but the topology has " + std::to_string(banks_.size()) +
                                  " banks");
    }
  }
  return hints.bank_set;
}

template <typename RunSlice>
batch_result sram_backend::shard(std::vector<core::bp_ntt_bank>& banks, std::size_t njobs,
                                 const dispatch_hints& hints, RunSlice&& run_slice) {
  batch_result out;
  out.outputs.resize(njobs);
  if (njobs == 0 || banks.empty()) return out;

  // Wave-width blocks round-robin over the subset: block b -> subset bank
  // b mod |subset|.  The assignment depends only on the subset, so a given
  // (jobs, bank_set) dispatch is deterministic at any pool size.
  const std::vector<unsigned> set = resolve_bank_set(hints);
  const unsigned block_width = std::max(1u, banks[set.front()].lanes_per_wave());
  std::vector<std::vector<std::size_t>> assigned(set.size());
  std::size_t block = 0;
  for (std::size_t i = 0; i < njobs; i += block_width, ++block) {
    auto& dst = assigned[block % set.size()];
    for (std::size_t j = i; j < std::min<std::size_t>(njobs, i + block_width); ++j) {
      dst.push_back(j);
    }
  }

  // Banks are independent models executing a broadcast command stream
  // (§IV-A), so their slices really do run concurrently: one pool task per
  // subset bank.  Results are merged serially in bank order afterwards,
  // keeping the floating-point energy sum (and therefore every reported
  // stat) deterministic regardless of pool size.
  std::vector<core::bank_run_result> per_bank(set.size());
  parallel_for(pool_, set.size(), [&](std::size_t s) {
    if (!assigned[s].empty()) per_bank[s] = run_slice(banks[set[s]], assigned[s]);
  });

  for (std::size_t s = 0; s < set.size(); ++s) {
    if (assigned[s].empty()) continue;
    core::bank_run_result& r = per_bank[s];
    for (std::size_t k = 0; k < assigned[s].size(); ++k) {
      out.outputs[assigned[s][k]] = std::move(r.outputs[k]);
    }
    // Wall clock is the slowest bank; waves, energy and op counts accumulate.
    out.wall_cycles = std::max(out.wall_cycles, r.cycles);
    out.waves += r.waves;
    out.stats += r.stats;
  }
  out.stats.cycles = out.wall_cycles;
  return out;
}

batch_result sram_backend::run_ntt(const std::vector<std::vector<u64>>& polys,
                                   transform_dir dir, const dispatch_hints& hints) {
  if (hints.chunk_budget != 0 && polys.size() > hints.chunk_budget) {
    return run_ntt_chunked(polys, dir, hints);
  }
  const auto banks = banks_for(hints.ring_q);
  batch_result out =
      hints.ring_q != 0 && resman_ != nullptr
          ? run_ntt_cached(polys, dir, hints, *banks)
          : shard(*banks, polys.size(), hints,
                  [&](core::bp_ntt_bank& bank, const std::vector<std::size_t>& idx) {
                    std::vector<std::vector<u64>> slice;
                    slice.reserve(idx.size());
                    for (const auto i : idx) slice.push_back(polys[i]);
                    return bank.run_ntt_batch(slice, dir);
                  });
  note_batch(polys.size(), out.wall_cycles);
  return out;
}

u64 sram_backend::warm_serve_cycles(const std::vector<unsigned>& set, unsigned home_bank,
                                    std::size_t rows, u64 ring_q, sram::op_stats& stats) {
  if (std::find(set.begin(), set.end(), home_bank) != set.end()) return 0;
  // Resident, but on a bank this dispatch does not hold: serve it over the
  // shared data bus — one on-chip row move per operand row, serialized
  // (the bus is one resource), still far below a cold re-transform.
  const auto r = static_cast<unsigned>(rows);
  stats.energy_pj += sram::energy_row_move_pj(bank_cfg_.array.tech, bank_cfg_.array.cols, r);
  resman_->note_move(ring_q, home_bank);
  return sram::row_move_cycles(bank_cfg_.array.tech, r);
}

unsigned sram_backend::insert_bank(const std::vector<unsigned>& set,
                                   const std::vector<core::bp_ntt_bank>& banks,
                                   std::size_t k) const {
  const unsigned block_width = std::max(1u, banks[set.front()].lanes_per_wave());
  return set[(k / block_width) % set.size()];
}

batch_result sram_backend::run_ntt_cached(const std::vector<std::vector<u64>>& polys,
                                          transform_dir dir, const dispatch_hints& hints,
                                          std::vector<core::bp_ntt_bank>& banks) {
  // Resident transforms skip the array: same-bank serves are free,
  // foreign-bank serves pay a row move; only the misses ride a bank batch,
  // so a fully-warm same-bank dispatch costs zero array cycles.
  batch_result out;
  out.outputs.resize(polys.size());
  const std::vector<unsigned> set = resolve_bank_set(hints);
  std::vector<std::size_t> miss;
  for (std::size_t i = 0; i < polys.size(); ++i) {
    if (auto cached = resman_->lookup(hints.ring_q, dir, polys[i])) {
      out.wall_cycles +=
          warm_serve_cycles(set, cached->home_bank, polys[i].size(), hints.ring_q, out.stats);
      out.outputs[i] = std::move(cached->transformed);
    } else {
      miss.push_back(i);
    }
  }
  if (miss.empty()) {
    out.stats.cycles = out.wall_cycles;
    return out;
  }
  std::vector<std::vector<u64>> pending;
  pending.reserve(miss.size());
  for (const auto i : miss) pending.push_back(polys[i]);
  batch_result fresh = shard(banks, pending.size(), hints,
                             [&](core::bp_ntt_bank& bank, const std::vector<std::size_t>& idx) {
                               std::vector<std::vector<u64>> slice;
                               slice.reserve(idx.size());
                               for (const auto i : idx) slice.push_back(pending[i]);
                               return bank.run_ntt_batch(slice, dir);
                             });
  for (std::size_t k = 0; k < miss.size(); ++k) {
    // Residency lands on the bank whose wave actually computed the image
    // (mirrors shard()'s block round-robin), so the next same-stream
    // dispatch finds its operands on banks it already holds.
    resman_->insert(hints.ring_q, dir, pending[k], fresh.outputs[k],
                    insert_bank(set, banks, k));
    out.outputs[miss[k]] = std::move(fresh.outputs[k]);
  }
  out.wall_cycles += fresh.wall_cycles;
  out.waves = fresh.waves;
  out.stats += fresh.stats;
  out.stats.cycles = out.wall_cycles;
  return out;
}

batch_result sram_backend::run_polymul(const std::vector<core::polymul_pair>& pairs,
                                       const dispatch_hints& hints) {
  if (hints.chunk_budget != 0 && pairs.size() > hints.chunk_budget) {
    return run_polymul_chunked(pairs, hints);
  }
  const auto banks = banks_for(hints.ring_q);
  batch_result out =
      hints.ring_q != 0 && resman_ != nullptr
          ? run_polymul_cached(pairs, hints, *banks)
          : shard(*banks, pairs.size(), hints,
                  [&](core::bp_ntt_bank& bank, const std::vector<std::size_t>& idx) {
                    std::vector<core::polymul_pair> slice;
                    slice.reserve(idx.size());
                    for (const auto i : idx) slice.push_back(pairs[i]);
                    return bank.run_polymul_batch(slice);
                  });
  note_batch(pairs.size(), out.wall_cycles);
  return out;
}

batch_result sram_backend::run_polymul_cached(const std::vector<core::polymul_pair>& pairs,
                                              const dispatch_hints& hints,
                                              std::vector<core::bp_ntt_bank>& banks) {
  // Split the in-array pipeline at its natural seam: (1) forward-transform
  // exactly the distinct operands the cache does not hold, (2) run
  // pointwise + inverse on transformed operands.  Identical kernels to the
  // fused run_polymul_batch — only where the forward images come from
  // changes — so outputs stay bit-identical whether the cache is cold,
  // warm, or disabled.
  // Dedup by operand *value* without copying operands into map keys: keys
  // are pointers into `pairs` (stable for this call), ordered by the
  // pointed-to coefficients, so equal-valued operands share one entry.
  const auto by_value = [](const std::vector<u64>* a, const std::vector<u64>* b) {
    return *a < *b;
  };
  std::map<const std::vector<u64>*, std::vector<u64>, decltype(by_value)> transformed(
      by_value);  // operand -> forward image
  const std::vector<unsigned> set = resolve_bank_set(hints);
  u64 move_cycles = 0;
  sram::op_stats move_stats;
  std::vector<const std::vector<u64>*> miss;
  for (const auto& pr : pairs) {
    for (const auto* op : {&pr.a, &pr.b}) {
      if (transformed.count(op) != 0) continue;
      if (auto cached = resman_->lookup(hints.ring_q, transform_dir::forward, *op)) {
        move_cycles +=
            warm_serve_cycles(set, cached->home_bank, op->size(), hints.ring_q, move_stats);
        transformed.emplace(op, std::move(cached->transformed));
      } else {
        transformed.emplace(op, std::vector<u64>{});  // placeholder, filled below
        miss.push_back(op);
      }
    }
  }

  batch_result fwd;
  if (!miss.empty()) {
    std::vector<std::vector<u64>> pending;
    pending.reserve(miss.size());
    for (const auto* op : miss) pending.push_back(*op);
    fwd = shard(banks, pending.size(), hints,
                [&](core::bp_ntt_bank& bank, const std::vector<std::size_t>& idx) {
                  std::vector<std::vector<u64>> slice;
                  slice.reserve(idx.size());
                  for (const auto i : idx) slice.push_back(pending[i]);
                  return bank.run_ntt_batch(slice, transform_dir::forward);
                });
    for (std::size_t k = 0; k < miss.size(); ++k) {
      resman_->insert(hints.ring_q, transform_dir::forward, pending[k], fwd.outputs[k],
                      insert_bank(set, banks, k));
      transformed[miss[k]] = std::move(fwd.outputs[k]);
    }
  }

  std::vector<core::polymul_pair> staged(pairs.size());
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    staged[i] = {transformed.at(&pairs[i].a), transformed.at(&pairs[i].b)};
  }
  batch_result out = shard(banks, staged.size(), hints,
                           [&](core::bp_ntt_bank& bank, const std::vector<std::size_t>& idx) {
                             std::vector<core::polymul_pair> slice;
                             slice.reserve(idx.size());
                             for (const auto i : idx) slice.push_back(staged[i]);
                             return bank.run_transformed_polymul_batch(slice);
                           });
  // The two phases (plus any cross-bank serves) run back-to-back on the
  // same bank subset: cycles add, waves and op counts accumulate.
  out.wall_cycles += fwd.wall_cycles + move_cycles;
  out.waves += fwd.waves;
  out.stats += fwd.stats;
  out.stats += move_stats;
  out.stats.cycles = out.wall_cycles;
  return out;
}

}  // namespace bpntt::runtime
