#include "runtime/sram_backend.h"

#include <algorithm>

#include "runtime/executor.h"

namespace bpntt::runtime {

sram_backend::sram_backend(const runtime_options& opts) {
  banks_.reserve(opts.banks);
  for (unsigned b = 0; b < opts.banks; ++b) {
    banks_.emplace_back(opts.bank(), opts.params);
  }
}

unsigned sram_backend::wave_width() const noexcept {
  unsigned w = 0;
  for (const auto& b : banks_) w += b.lanes_per_wave();
  return w;
}

bool sram_backend::supports_polymul() const noexcept {
  return !banks_.empty() && banks_.front().supports_polymul();
}

template <typename RunSlice>
batch_result sram_backend::shard(std::size_t njobs, RunSlice&& run_slice) {
  batch_result out;
  out.outputs.resize(njobs);
  if (njobs == 0 || banks_.empty()) return out;

  // Wave-width blocks round-robin over banks: block b -> bank b mod N.
  const unsigned block_width = std::max(1u, banks_.front().lanes_per_wave());
  std::vector<std::vector<std::size_t>> assigned(banks_.size());
  std::size_t block = 0;
  for (std::size_t i = 0; i < njobs; i += block_width, ++block) {
    auto& dst = assigned[block % banks_.size()];
    for (std::size_t j = i; j < std::min<std::size_t>(njobs, i + block_width); ++j) {
      dst.push_back(j);
    }
  }

  // Banks are independent models executing a broadcast command stream
  // (§IV-A), so their slices really do run concurrently: one pool task per
  // bank.  Results are merged serially in bank order afterwards, keeping
  // the floating-point energy sum (and therefore every reported stat)
  // deterministic regardless of pool size.
  std::vector<core::bank_run_result> per_bank(banks_.size());
  parallel_for(pool_, banks_.size(), [&](std::size_t b) {
    if (!assigned[b].empty()) per_bank[b] = run_slice(banks_[b], assigned[b]);
  });

  for (std::size_t b = 0; b < banks_.size(); ++b) {
    if (assigned[b].empty()) continue;
    core::bank_run_result& r = per_bank[b];
    for (std::size_t k = 0; k < assigned[b].size(); ++k) {
      out.outputs[assigned[b][k]] = std::move(r.outputs[k]);
    }
    // Wall clock is the slowest bank; waves, energy and op counts accumulate.
    out.wall_cycles = std::max(out.wall_cycles, r.cycles);
    out.waves += r.waves;
    out.stats += r.stats;
  }
  out.stats.cycles = out.wall_cycles;
  return out;
}

batch_result sram_backend::run_ntt(const std::vector<std::vector<u64>>& polys,
                                   transform_dir dir) {
  return shard(polys.size(),
               [&](core::bp_ntt_bank& bank, const std::vector<std::size_t>& idx) {
                 std::vector<std::vector<u64>> slice;
                 slice.reserve(idx.size());
                 for (const auto i : idx) slice.push_back(polys[i]);
                 return bank.run_ntt_batch(slice, dir);
               });
}

batch_result sram_backend::run_polymul(const std::vector<core::polymul_pair>& pairs) {
  return shard(pairs.size(),
               [&](core::bp_ntt_bank& bank, const std::vector<std::size_t>& idx) {
                 std::vector<core::polymul_pair> slice;
                 slice.reserve(idx.size());
                 for (const auto i : idx) slice.push_back(pairs[i]);
                 return bank.run_polymul_batch(slice);
               });
}

}  // namespace bpntt::runtime
