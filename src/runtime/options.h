// One knob surface for the whole runtime: backend choice plus every engine,
// bank and microcode option, collapsed into a single builder with a
// validate() that fails fast with a precise message.
//
//   auto opts = runtime_options()
//                   .with_ring(256, 7681, 14)
//                   .with_backend(backend_kind::sram)
//                   .with_topology(2, 2, 4);   // channels, banks/channel, subarrays
//   context ctx(opts);
//
// with_banks(n) remains the one-channel shorthand the earlier API exposed.
#pragma once

#include "bpntt/bank.h"
#include "crypto/params.h"

namespace bpntt::runtime {

using u64 = core::u64;

enum class backend_kind {
  sram,       // cycle-level in-SRAM model (bp_ntt_bank / bp_ntt_engine)
  cpu,        // measured software baseline (Montgomery fast_ntt)
  reference,  // golden transform, used for cross-checking
};

[[nodiscard]] const char* to_string(backend_kind k) noexcept;

// Ordering policy of the scheduler's ready queue — which dispatch group a
// contended bank goes to next:
//   priority  — priority descending, flush order breaking ties (the
//               original policy; deadlines are accounting only).
//   edf       — earliest deadline first on the absolute virtual-timeline
//               deadline (the stream's flush frontier + deadline_cycles).
//               deadline_cycles == 0 means "no deadline" and sorts after
//               every finite deadline; equal deadlines fall back to
//               priority descending, then flush order.
// Both policies compose with aging (runtime_options::aging_limit): a group
// passed over `aging_limit` scheduling rounds is promoted ahead of every
// non-aged group (aged groups order among themselves in flush order), so a
// starved low-priority / late-deadline tenant eventually dispatches.
enum class schedule_policy { priority, edf };

[[nodiscard]] const char* to_string(schedule_policy p) noexcept;

// Chip-shaped view of the sram backend's compute resources (Fig. 4):
// channels -> banks -> subarrays.  Channels are the placement domains the
// scheduler prefers when spreading independent streams; banks are the unit
// of concurrent execution; subarrays (one repurposed as CTRL/CMD per bank)
// set a bank's SIMD width.  The cpu/reference backends ignore it.
struct device_topology {
  unsigned channels = 1;
  unsigned banks_per_channel = 1;
  unsigned subarrays = 4;  // per bank, including the CTRL/CMD subarray

  [[nodiscard]] unsigned total_banks() const noexcept { return channels * banks_per_channel; }
  // Bank ids of one channel: [first, first + banks_per_channel).
  [[nodiscard]] unsigned first_bank(unsigned channel) const noexcept {
    return channel * banks_per_channel;
  }

  void validate() const;
};

struct runtime_options {
  backend_kind backend = backend_kind::sram;
  core::ntt_params params;

  // sram backend: the chip topology and the subarray geometry itself.
  device_topology topo;
  core::engine_config array;

  // cpu backend: constants that convert measured wall time into the cycle /
  // energy accounting the unified job_result reports.
  double cpu_freq_ghz = 3.0;
  double cpu_power_w = 15.0;

  // Executor pool size for async flush and batch-internal fan-out (bank
  // slices, cpu job chunks).  0 derives a size from the host's hardware
  // concurrency; 1 gives a single worker (serial dispatch, still async
  // with respect to the submitting thread).
  unsigned threads = 0;

  // Bound (in moduli) on each backend's lazy per-modulus retarget cache —
  // the ring-overridden dispatch state (sram: retargeted bank arrays, cpu:
  // Montgomery fast paths, reference: golden tables).  Least-recently-
  // dispatched moduli are evicted and rebuilt on next use; must be >= 1.
  unsigned retarget_cache_limit = 16;

  // Compat shim over the on-array residency budget: the historical "cache
  // capacity in entries" knob, now translated into a per-subarray row
  // budget at context construction (entries x ring order n rows, spread
  // over the device's data subarrays — see context::finish_construction).
  // 0 disables residency entirely.  Prefer with_residency_rows() for new
  // code: it states the budget in the device's own currency.
  unsigned operand_cache_entries = 64;

  // Direct residency budget: reservable rows per data subarray for
  // device-resident operands.  0 = derive from operand_cache_entries (the
  // compat path); nonzero overrides the shim.  An operand occupies n rows,
  // so a subarray holds floor(rows / n) resident operands.
  unsigned residency_rows = 0;

  // Ready-queue ordering under bank contention (see schedule_policy).
  schedule_policy sched = schedule_policy::priority;

  // Starvation bound: a ready group passed over this many scheduling
  // rounds is promoted ahead of all non-aged groups.  0 disables aging
  // (byte-identical to the pre-aging scheduler).
  unsigned aging_limit = 0;

  // Cross-stream batching: when the scheduler picks a runnable group it
  // absorbs merge-compatible ready groups (same ring modulus, no rlwe
  // jobs, streams that did not opt out, disjoint-or-shareable banks) into
  // one dispatch, distributing results back per stream.  Outputs are
  // bit-identical either way; off by default so dispatch counts and
  // ordering match the pre-batching scheduler exactly.
  bool merge_streams = false;

  // Virtual-timeline tracing (src/telemetry/): per-dispatch spans on the
  // scheduler's bank frontiers, scheduler lifecycle events, cache hit/miss
  // marks — exportable as Chrome trace-event JSON via
  // context::export_trace().  Off by default: a context without tracing
  // allocates no recorder and records nothing (every instrumentation site
  // is one null-pointer test).
  bool tracing = false;
  // Events retained per recording thread when tracing is on (rounded up to
  // a power of two; a full ring drops its oldest event and counts it).
  unsigned trace_capacity = 1u << 16;

  runtime_options& with_backend(backend_kind k) {
    backend = k;
    return *this;
  }
  runtime_options& with_params(const core::ntt_params& p) {
    params = p;
    return *this;
  }
  runtime_options& with_ring(u64 n, u64 q, unsigned k, bool incomplete = false) {
    params.n = n;
    params.q = q;
    params.k = k;
    params.incomplete = incomplete;
    return *this;
  }
  // Full chip shape: channels x banks_per_channel banks of `subarrays`
  // subarrays each.
  runtime_options& with_topology(unsigned channels, unsigned banks_per_channel,
                                 unsigned subarrays) {
    topo.channels = channels;
    topo.banks_per_channel = banks_per_channel;
    topo.subarrays = subarrays;
    return *this;
  }
  // One-channel shorthand: n independent banks on a single channel.
  runtime_options& with_banks(unsigned b) {
    topo.channels = 1;
    topo.banks_per_channel = b;
    return *this;
  }
  runtime_options& with_subarrays(unsigned s) {
    topo.subarrays = s;
    return *this;
  }
  runtime_options& with_array(unsigned data_rows, unsigned cols) {
    array.data_rows = data_rows;
    array.cols = cols;
    return *this;
  }
  runtime_options& with_tech(const sram::tech_params& t) {
    array.tech = t;
    return *this;
  }
  runtime_options& with_microcode(const core::compile_options& m) {
    array.microcode = m;
    return *this;
  }
  runtime_options& with_cpu_model(double freq_ghz, double power_w) {
    cpu_freq_ghz = freq_ghz;
    cpu_power_w = power_w;
    return *this;
  }
  runtime_options& with_threads(unsigned t) {
    threads = t;
    return *this;
  }
  runtime_options& with_retarget_cache(unsigned moduli) {
    retarget_cache_limit = moduli;
    return *this;
  }
  // Compat shim (see operand_cache_entries); with_residency_rows() is the
  // native spelling of the same budget.
  runtime_options& with_operand_cache(unsigned entries) {
    operand_cache_entries = entries;
    return *this;
  }
  runtime_options& with_residency_rows(unsigned rows_per_subarray) {
    residency_rows = rows_per_subarray;
    return *this;
  }
  runtime_options& with_schedule(schedule_policy p, unsigned aging = 0) {
    sched = p;
    aging_limit = aging;
    return *this;
  }
  runtime_options& with_cross_stream_batching(bool on = true) {
    merge_streams = on;
    return *this;
  }
  runtime_options& with_tracing(unsigned capacity = 1u << 16) {
    tracing = true;
    trace_capacity = capacity;
    return *this;
  }

  // Ring selection from a named lattice parameter set: picks the minimal
  // tile width and falls back to the incomplete transform when the set has
  // no full negacyclic NTT (standardized Kyber).
  [[nodiscard]] static runtime_options for_param_set(const crypto::param_set& set);

  // Ring selection from a big-modulus (RNS) parameter set: the context
  // ring hosts the chain's first limb and the tile width fits the widest
  // limb, so every limb prime is admissible as a stream ring override.
  // The caller still picks the topology — one channel per limb is what
  // lets the limb dispatch groups overlap.
  [[nodiscard]] static runtime_options for_rns_param_set(const crypto::rns_param_set& set);

  // Shared bound check for the executor pool size — called by validate()
  // and by the context constructors before the pool member is built.
  static void validate_threads(unsigned threads);

  // The sram backend's per-bank configuration, derived.
  [[nodiscard]] core::bank_config bank() const {
    core::bank_config cfg;
    cfg.subarrays = topo.subarrays;
    cfg.array = array;
    return cfg;
  }

  void validate() const;
};

}  // namespace bpntt::runtime
