// Backend interface of the bpntt runtime: the uniform dispatch layer the
// context schedules onto.
//
// A backend executes *typed batches* — the context has already grouped
// compatible jobs — and reports results in the same op_stats / wall-cycle
// currency regardless of what is underneath: the cycle-level in-SRAM model,
// the measured Montgomery software path, or the golden transform.  This is
// the comparison surface the paper's Table I needs (BP-NTT vs CPU under one
// methodology), with the golden backend as the correctness oracle.
#pragma once

#include <memory>
#include <string_view>
#include <vector>

#include "runtime/job.h"

namespace bpntt::runtime {

class executor;
struct runtime_options;

// Result of one scheduled batch.  wall_cycles is the batch's wall-clock in
// the backend's own cycle domain (array cycles for sram, core cycles for
// cpu, 0 for the free reference oracle); stats aggregates whatever the
// backend meters.
struct batch_result {
  std::vector<std::vector<u64>> outputs;
  sram::op_stats stats;
  u64 wall_cycles = 0;
  u64 waves = 0;  // scheduling waves executed (sram); 1 per non-empty batch otherwise
};

class backend {
 public:
  virtual ~backend() = default;

  [[nodiscard]] virtual std::string_view name() const noexcept = 0;
  // Jobs one scheduling round absorbs at full utilisation (sram: lanes per
  // wave summed over banks); 0 = unbounded.
  [[nodiscard]] virtual unsigned wave_width() const noexcept = 0;
  // Whether run_polymul can execute at the configured parameters (the sram
  // pipeline needs two n-row operand regions per lane).
  [[nodiscard]] virtual bool supports_polymul() const noexcept = 0;

  // Transform every polynomial; outputs in input order.
  virtual batch_result run_ntt(const std::vector<std::vector<u64>>& polys, transform_dir dir) = 0;
  // Negacyclic ring product per pair; outputs in input order.
  virtual batch_result run_polymul(const std::vector<core::polymul_pair>& pairs) = 0;

  // Installed once by the owning context.  Backends may fan batch-internal
  // work (bank slices, job chunks) across the pool; with none attached they
  // run serially.  Outputs must be bit-identical either way.
  void attach_executor(executor* pool) noexcept { pool_ = pool; }

 protected:
  executor* pool_ = nullptr;
};

// Instantiate the backend selected by opts (opts must be validated).
[[nodiscard]] std::unique_ptr<backend> make_backend(const runtime_options& opts);

}  // namespace bpntt::runtime
