// Backend interface of the bpntt runtime: the uniform dispatch layer the
// context schedules onto.
//
// A backend executes *typed batches* — the context has already grouped
// compatible jobs — and reports results in the same op_stats / wall-cycle
// currency regardless of what is underneath: the cycle-level in-SRAM model,
// the measured Montgomery software path, or the golden transform.  This is
// the comparison surface the paper's Table I needs (BP-NTT vs CPU under one
// methodology), with the golden backend as the correctness oracle.
//
// A backend advertises what it can run through one capabilities()
// descriptor (wave width, polymul support, modulus/ring envelope, bank
// map); the context validates jobs against it instead of probing ad-hoc
// virtuals.  Each dispatch carries dispatch_hints — the submitting stream,
// its priority/deadline, and the bank subset the scheduler reserved — so a
// banked backend can confine concurrent streams to disjoint banks and let
// them genuinely overlap.
#pragma once

#include <memory>
#include <string_view>
#include <vector>

#include "runtime/job.h"

namespace bpntt::telemetry {
class trace_recorder;
}

namespace bpntt::runtime {

class executor;
class residency_manager;
struct runtime_options;

// Static description of a backend's execution envelope.  The context
// validates the configured ring against it at construction and every
// submit() against the per-op capability bits.
struct backend_caps {
  // Jobs one scheduling round absorbs at full utilisation (sram: lanes per
  // wave summed over banks); 0 = unbounded.
  unsigned wave_width = 0;
  // Whether run_polymul can execute at the configured parameters (the sram
  // pipeline needs two n-row operand regions per lane).
  bool polymul = false;
  // Ring envelope: largest polynomial order the backend can host (0 =
  // unbounded) and widest modulus in bits it can reduce.
  u64 max_poly_order = 0;
  unsigned max_modulus_bits = 63;
  // Bank map: lanes per wave of each independently schedulable bank, in
  // bank-id order.  Empty = no banked structure (the backend is one
  // resource; dispatches serialize).  A backend publishing >= 2 banks
  // promises that dispatches confined to disjoint bank subsets (via
  // dispatch_hints::bank_set) are safe to run concurrently.
  std::vector<unsigned> bank_lanes;
  // Channels the banks are grouped into (topology-aware stream placement
  // prefers whole channels); 1 when the backend has no channel structure.
  unsigned channels = 1;

  [[nodiscard]] unsigned banks() const noexcept {
    return static_cast<unsigned>(bank_lanes.size());
  }
  [[nodiscard]] bool overlapping_streams() const noexcept { return bank_lanes.size() >= 2; }
};

// Scheduling metadata that rides with every dispatch: which stream the
// batch came from, how urgent it is, and — for banked backends — the bank
// subset the context reserved for it.  An empty bank_set means "use every
// bank" (the legacy single-queue path).
struct dispatch_hints {
  unsigned stream = 0;
  int priority = 0;
  u64 deadline_cycles = 0;  // 0 = no deadline
  std::vector<unsigned> bank_set;
  // Ring override: run this batch at modulus ring_q instead of the
  // configured ring modulus (0 = configured ring).  The polynomial order
  // and tile width stay as configured; the context has already validated
  // that ring_q is an NTT-friendly prime inside the backend's modulus
  // envelope.  This is the RNS limb mechanism: each residue channel of a
  // big-modulus workload dispatches at its own word-sized prime, and
  // backends retarget (sram: per-modulus bank engines, cpu/reference:
  // per-modulus twiddle tables) lazily and cache the result.
  u64 ring_q = 0;
  // Preemption chunk budget: the largest batch one backend dispatch may
  // execute at once (0 = unbounded).  The scheduler already splits chunked
  // groups at yield points; every backend additionally honors the budget
  // defensively by splitting an oversized batch into sub-dispatches of at
  // most this many jobs (outputs bit-identical, wall-cycles summed), so a
  // budgeted batch can never monopolize the array in one indivisible run.
  u64 chunk_budget = 0;
};

// Result of one scheduled batch.  wall_cycles is the batch's wall-clock in
// the backend's own cycle domain (array cycles for sram, core cycles for
// cpu, 0 for the free reference oracle); stats aggregates whatever the
// backend meters.
struct batch_result {
  std::vector<std::vector<u64>> outputs;
  sram::op_stats stats;
  u64 wall_cycles = 0;
  u64 waves = 0;  // scheduling waves executed (sram); 1 per non-empty batch otherwise
};

class backend {
 public:
  virtual ~backend() = default;

  [[nodiscard]] virtual std::string_view name() const noexcept = 0;
  // The execution envelope; must be stable for the backend's lifetime.
  [[nodiscard]] virtual backend_caps capabilities() const = 0;

  // Transform every polynomial; outputs in input order.
  virtual batch_result run_ntt(const std::vector<std::vector<u64>>& polys, transform_dir dir,
                               const dispatch_hints& hints) = 0;
  // Negacyclic ring product per pair; outputs in input order.
  virtual batch_result run_polymul(const std::vector<core::polymul_pair>& pairs,
                                   const dispatch_hints& hints) = 0;
  // One limb's share of an RNS modulus switch per job; outputs in input
  // order.  The base implementation computes the exact word-sized
  // correction ((x - r) * q_drop^{-1} + round_up) mod prime at zero
  // modelled cost — the correction is scalar per-coefficient work the
  // controller interleaves between limb dispatches, not an in-array
  // transform — so every backend (including injected stubs) supports
  // rescale out of the box; backends may override to attach a cost model.
  virtual batch_result run_rescale(const std::vector<rns_rescale_job>& jobs,
                                   const dispatch_hints& hints);
  // One target limb's share of an RNS base extension per job; outputs in
  // input order.  The base implementation computes the exact canonical CRT
  // lift of each coefficient over the source chain and reduces it by the
  // new limb prime, at zero modelled cost — like the rescale correction,
  // this is scalar per-coefficient work the controller interleaves between
  // limb dispatches — so every backend supports base extension out of the
  // box; backends may override to attach a cost model.
  virtual batch_result run_base_extend(const std::vector<rns_base_extend_job>& jobs,
                                       const dispatch_hints& hints);
  // Entries currently held by the backend's lazy per-modulus retarget cache
  // (ring-overridden dispatch state); 0 for backends that never retarget.
  [[nodiscard]] virtual std::size_t retarget_cache_size() const { return 0; }

  // Installed once by the owning context.  Backends may fan batch-internal
  // work (bank slices, job chunks) across the pool; with none attached they
  // run serially.  Outputs must be bit-identical either way.
  void attach_executor(executor* pool) noexcept { pool_ = pool; }

  // Installed once by the owning context (nullptr = residency disabled).
  // Backends consult it on ring-overridden dispatches to serve resident
  // operands instead of re-transforming: a warm operand on an executing
  // bank costs zero array cycles, a warm operand on a foreign bank costs an
  // on-chip row move, a miss transforms and takes up residence.  Residency
  // may only change cycles, never outputs.
  void attach_residency(residency_manager* resman) noexcept { resman_ = resman; }

  // Installed once by the owning context when tracing is enabled (nullptr =
  // no tracing, the default).  Backends stamp one backend_batch instant per
  // executed batch via note_batch(); tracing never changes outputs or
  // accounting.
  void attach_recorder(telemetry::trace_recorder* rec) noexcept { recorder_ = rec; }

 protected:
  // One backend_batch instant on the backend track — jobs executed and the
  // batch's wall cycles, stamped at the recorder's virtual-time watermark
  // (backends do not see frontier positions).  No-op without a recorder.
  void note_batch(std::size_t jobs, u64 wall_cycles) noexcept;

  // Shared chunk-budget enforcement: run the batch as ceil(n / budget)
  // sub-dispatches through the virtual entry points (each sub-batch is at
  // or under the budget, so the callee's own guard passes it straight
  // through), concatenating outputs and summing cycle/wave/energy
  // accounting.  Backends call these from their run_* guards when
  // hints.chunk_budget != 0 and the batch exceeds it.
  batch_result run_ntt_chunked(const std::vector<std::vector<u64>>& polys, transform_dir dir,
                               const dispatch_hints& hints);
  batch_result run_polymul_chunked(const std::vector<core::polymul_pair>& pairs,
                                   const dispatch_hints& hints);

  executor* pool_ = nullptr;
  residency_manager* resman_ = nullptr;
  telemetry::trace_recorder* recorder_ = nullptr;
};

// Instantiate the backend selected by opts (opts must be validated).
[[nodiscard]] std::unique_ptr<backend> make_backend(const runtime_options& opts);

}  // namespace bpntt::runtime
