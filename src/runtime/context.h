// bpntt::runtime::context — the library's public job-submission API.
//
//   runtime::context ctx(runtime_options()
//                            .with_ring(256, 7681, 14)
//                            .with_backend(backend_kind::sram)
//                            .with_topology(2, 2, 4)    // channels, banks/ch, subarrays
//                            .with_threads(4));
//   auto fast = ctx.stream({.priority = 10});           // independent in-order lanes
//   auto bulk = ctx.stream({.deadline_cycles = 50000});
//   auto a = fast.submit(runtime::ntt_job{.coeffs = p1});
//   auto b = bulk.submit(runtime::ntt_job{.coeffs = p2});
//   fast.flush();  bulk.flush();                        // overlapping dispatch groups
//   auto ra = ctx.wait(a);  auto rb = ctx.wait(b);      // per-job completion
//
// The legacy single-queue surface is a thin wrapper over the default stream
// (id 0): ctx.submit() enqueues there, ctx.flush() flushes every stream, so
// existing callers keep compiling and behave exactly as before.
//
// submit() validates against the backend's capabilities() descriptor and
// enqueues; nothing executes until a flush (or a wait).  The deferral is
// the batching opportunity: at flush time a stream's pending set is
// partitioned by job kind — forward transforms with forward transforms,
// ring products with ring products, R-LWE flows staged together — and the
// partitions become one *dispatch group* carrying the stream's
// dispatch_hints (stream id, priority, deadline, bank subset, chunk
// budget).
//
// Scheduling is the scheduler module's job (src/runtime/scheduler.h):
// group ordering (priority / EDF + aging behind one comparator), bank
// claiming and placement, cross-stream merging of compatible groups, and
// the yield decision of chunked dispatch all live there.  The context is
// job bookkeeping and result distribution: it builds groups at flush,
// executes the backend dispatches the scheduler hands back, accounts them
// on the scheduler's virtual timeline, and routes per-job results —
// including each merged member's slice — to completion state.
//
// Accounting runs on a virtual timeline of per-bank frontiers: a batch on
// subset S starts at S's frontier and advances it by the batch's
// wall_cycles, so scheduler_stats::wall_cycles is the makespan — identical
// to the old back-to-back sum when nothing overlaps, strictly smaller when
// streams overlap.  A stream deadline is checked against completion minus
// the frontier at flush; misses mark job_result::deadline_missed and count
// into deadline_misses.
//
// Failure model: a backend exception fails exactly the jobs of the
// dispatch it occurred in (job_status::failed + the backend's message);
// sibling dispatches of the same group, and sibling streams' groups, still
// complete.  wait() throws job_failed_error for a failed job;
// try_wait()/wait_all() return the failed job_result instead.
//
// Cross-stream batching (runtime_options::merge_streams, default off):
// when the scheduler picks a runnable group it absorbs merge-compatible
// ready groups — same ring modulus, no rlwe jobs, streams that did not opt
// out (stream_options::no_merge), banks disjoint-or-shareable — and the
// context runs one dispatch per job kind over every member's jobs,
// distributing each member's outputs back to its own stream with that
// member's deadline accounting.  Outputs are bit-identical to unmerged
// execution; only the makespan and the per-dispatch amortization change.
//
// Preemptive yielding (stream_options::chunk_budget, default unbounded):
// a group dispatches in chunks of at most chunk_budget jobs; between
// chunks the scheduler may order an arriving finite-deadline group ahead,
// in which case the running group releases its banks and re-enters the
// ready queue with its original flush position — budget-based preemption
// without killing in-flight work.
//
// Threading contract: one client thread submits/flushes/waits; the pool
// threads are internal.  A context is not a multi-producer queue — the
// multi-tenant front door over it is service::service (src/service/),
// whose single drainer thread is the one client of the context while any
// number of application threads submit through lock-free session handles.
// Exception: stats(), pending() and the cache/stream observability probes
// are safe to call from any thread (a stats or monitoring thread can watch
// a live context).
#pragma once

#include <condition_variable>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <variant>
#include <vector>

#include "runtime/backend.h"
#include "runtime/executor.h"
#include "runtime/job.h"
#include "runtime/options.h"
#include "runtime/residency_manager.h"
#include "runtime/scheduler.h"
#include "runtime/stream.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace bpntt::runtime {

using job = std::variant<ntt_job, polymul_job, rlwe_encrypt_job, rns_rescale_job,
                         rns_base_extend_job>;

// Cumulative scheduling counters across the context's lifetime.  A plain
// value snapshot — the live instruments behind every field are registry
// entries (context::metrics()); stats() assembles this struct from them,
// so the snapshot and the registry can never disagree.
struct scheduler_stats {
  u64 jobs_submitted = 0;
  u64 jobs_completed = 0;  // finished ok
  u64 jobs_failed = 0;     // dispatch raised; per-job error recorded
  u64 jobs_in_flight = 0;  // snapshot: dispatched, not yet completed/failed
  u64 groups = 0;          // dispatch groups executed (one per stream flush)
  u64 batches = 0;         // backend dispatches
  u64 waves = 0;           // scheduling waves executed by the backend
  // Virtual-timeline makespan: equals the back-to-back sum of batch
  // wall-clocks when nothing overlaps, strictly smaller when streams do.
  u64 wall_cycles = 0;
  u64 deadline_misses = 0;  // jobs that completed past their stream's deadline
  double energy_nj = 0.0;
  // On-array residency counters (cumulative): transforms served resident
  // vs computed fresh on ring-overridden (RNS limb) dispatches.  All stay
  // 0 when residency is disabled (operand_cache_entries == 0 and
  // residency_rows == 0).
  u64 operand_cache_hits = 0;
  u64 operand_cache_misses = 0;
  // Residents dropped under capacity pressure (LRU within the unpinned
  // class, charged against the subarray row budget).
  u64 residency_evictions = 0;
  // Warm serves paid as on-chip cross-bank row moves (operand resident,
  // but not on a bank the dispatch held).
  u64 residency_moves = 0;
  // Scheduler claims that landed a group on a bank already holding its
  // limb operands.
  u64 residency_affinity_hits = 0;
  // Device rows currently reserved by residents / lifetime high-water mark.
  u64 resident_rows = 0;
  u64 resident_rows_peak = 0;
  // Cross-stream batching: ready groups absorbed into another group's
  // merged dispatch (0 unless runtime_options::merge_streams is on).
  u64 groups_merged = 0;
  // Chunked groups that yielded their banks to an earlier-ordered group
  // mid-plan (0 unless a stream sets a chunk_budget).
  u64 preemption_yields = 0;
};

class context {
 public:
  explicit context(runtime_options opts);
  // Injects a caller-provided backend (stub backends in tests, custom
  // models).  opts still selects ring parameters and pool size.
  context(runtime_options opts, std::unique_ptr<backend> custom_backend);
  ~context();

  context(const context&) = delete;
  context& operator=(const context&) = delete;

  [[nodiscard]] const runtime_options& options() const noexcept { return opts_; }
  [[nodiscard]] backend& active_backend() noexcept { return *backend_; }
  // The backend's execution envelope, captured at construction.
  [[nodiscard]] const backend_caps& capabilities() const noexcept { return caps_; }
  // Jobs one scheduling round absorbs at full utilisation (0 = unbounded).
  [[nodiscard]] unsigned wave_width() const noexcept { return caps_.wave_width; }
  [[nodiscard]] unsigned executor_threads() const noexcept { return pool_.thread_count(); }
  // Counter snapshot (jobs_in_flight is the instantaneous gauge).  Safe
  // from any thread.
  [[nodiscard]] scheduler_stats stats() const;

  // The unified metrics registry behind stats(): every runtime counter
  // ("runtime.jobs_submitted", "runtime.wall_cycles", ...), the operand
  // cache's ("cache.hits"/"cache.misses") and the scheduler's
  // ("sched.groups_merged"/"sched.preemption_yields") live here, and the
  // service layer registers its instruments into the same registry.
  // metrics().to_json() is the one serialization bench artifacts embed.
  // Instrument updates and value reads are safe from any thread.
  [[nodiscard]] telemetry::metrics_registry& metrics() noexcept { return registry_; }
  [[nodiscard]] const telemetry::metrics_registry& metrics() const noexcept {
    return registry_;
  }

  // Tracing probes (safe from any thread).  enabled mirrors
  // runtime_options::tracing; the counters are cumulative across the
  // context's lifetime and stay 0 when tracing is off — the zero-overhead
  // guarantee a test can assert.
  struct trace_probe {
    bool enabled = false;
    u64 events_recorded = 0;
    u64 events_dropped = 0;
  };
  [[nodiscard]] trace_probe trace_stats() const noexcept {
    if (!recorder_) return {};
    return {true, recorder_->events_recorded(), recorder_->events_dropped()};
  }

  // Export the recorded virtual-timeline trace as Chrome trace-event JSON
  // (Perfetto / chrome://tracing open it directly).  Throws
  // std::logic_error when the context was built without with_tracing().
  // *Quiescent-only*: call after sync()/wait_all() — the recorder's rings
  // are drained without synchronization against in-flight dispatches (the
  // same contract as trace_recorder::snapshot_events()).
  void export_trace(const std::string& path) const;
  void export_trace(std::ostream& os) const;

  // The raw recorder (nullptr when tracing is off) — the low-level hook the
  // service layer uses to stamp ticket events onto the same timeline.
  [[nodiscard]] telemetry::trace_recorder* tracer() const noexcept { return recorder_.get(); }
  // Jobs enqueued on any stream and not yet handed to the scheduler.  Safe
  // from any thread.
  [[nodiscard]] std::size_t pending() const noexcept;
  // Streams currently open (the default stream included).  Safe from any
  // thread — the probe a stream pool sizes itself against.
  [[nodiscard]] std::size_t open_streams() const noexcept;

  // On-array residency surface.  Operands currently resident (0 when
  // residency is disabled).
  [[nodiscard]] std::size_t operand_cache_size() const noexcept;
  // Device rows currently reserved by resident operands, and the total row
  // budget (banks x data subarrays x rows per subarray).  Safe from any
  // thread.
  [[nodiscard]] u64 resident_rows() const noexcept;
  [[nodiscard]] u64 resident_row_capacity() const noexcept;
  // Drop the resident images of one operand (across every limb prime and
  // direction) — for callers that mutate or retire a polynomial the device
  // may hold (a rotated key, a freed ciphertext).  Pinned entries are
  // dropped too, and the operand's pin registration is forgotten: pinning
  // protects against *capacity eviction* only, explicit invalidation
  // always wins.  Returns the number of entries dropped.
  std::size_t invalidate_operand(const std::vector<u64>& coeffs) noexcept;
  // Drop every resident image, pinned included (counters are cumulative
  // and survive; pin registrations persist — the operands still exist).
  // Returns the number of entries dropped.
  std::size_t invalidate_operand_cache() noexcept;
  // Pin/unpin an operand's residency: pinned entries (current and future
  // inserts of the same coefficients) are exempt from capacity eviction —
  // for long-lived operands like evaluation keys that every multiply
  // touches.  No-ops when residency is disabled.
  void pin_operand(const std::vector<u64>& coeffs) noexcept;
  void unpin_operand(const std::vector<u64>& coeffs) noexcept;
  // The backend's lazy per-modulus retarget cache occupancy (LRU-bounded
  // by runtime_options::retarget_cache_limit).
  [[nodiscard]] std::size_t retarget_cache_size() const noexcept {
    return backend_->retarget_cache_size();
  }

  // Open an independent in-order submission lane.  Bank placement is
  // topology-aware unless sopts.bank_set pins it explicitly; the handle
  // stays valid for the context's lifetime.  A non-zero sopts.ring_q opens
  // a ring-overridden (RNS limb) stream; it is validated here: odd prime,
  // full negacyclic support at the configured n, inside the backend's
  // modulus envelope.
  [[nodiscard]] runtime::stream stream(stream_options sopts = {});

  // The context-owned limb stream dedicated to one RNS limb prime
  // (created with {.ring_q = prime} on first use, then reused — so every
  // product of a multi-limb workload lands its limb i on the same lane and
  // topology-aware placement spreads limbs across channels).  Same
  // validation as stream() with an explicit ring_q.
  [[nodiscard]] runtime::stream rns_stream(u64 prime);

  // Fan one decomposed big-modulus ring product out as one polymul job per
  // limb, each on its limb's dedicated stream (rns_stream).  Validates the
  // chain (>= 1 distinct odd primes, per-limb residues canonical) and
  // returns the per-limb job ids in chain order.  Like submit(), nothing
  // executes until a flush; flushing the limb streams together is what
  // lets a multi-channel topology overlap the limb dispatch groups.
  rns_submission submit_rns(rns_polymul_job j);

  // Legacy single-queue surface: validate and enqueue on the default
  // stream; throws std::invalid_argument on jobs the configured ring or
  // backend capabilities cannot execute.
  job_id submit(ntt_job j);
  job_id submit(polymul_job j);
  job_id submit(rlwe_encrypt_job j);

  // Flush every stream: each non-empty queue becomes one dispatch group
  // handed to the scheduler; returns without blocking.
  void flush();
  // flush() + block until nothing is in flight.  Unclaimed results stay
  // retrievable afterwards.
  void sync();

  // Blocking retrieval; flushes the owning stream first if the job is
  // still queued.  wait() consumes the result.  Throws
  // std::out_of_range("... unknown job id") for ids never returned by
  // submit, std::out_of_range("... already claimed") for results retrieved
  // before, and job_failed_error (with the backend's message) when the
  // job's dispatch failed.
  [[nodiscard]] job_result wait(job_id id);
  // Non-blocking probe: the result if the job has completed or failed
  // (consuming it — inspect job_result::status), std::nullopt while it is
  // queued or in flight.  Does not flush.  Throws like wait() for unknown
  // or already-claimed ids.
  [[nodiscard]] std::optional<job_result> try_wait(job_id id);
  // Flush, drain, and return all unclaimed results in submission order
  // (failed jobs included, carrying status/error).
  [[nodiscard]] std::vector<job_result> wait_all();

 private:
  friend class runtime::stream;

  // Per-stream client state: policy, placement, and the pre-flush FIFO.
  struct stream_state {
    stream_options sopts;
    std::vector<unsigned> resources;
    std::vector<std::pair<job_id, job>> queue;
  };

  // One merged member's share of a concatenated dispatch: the member group
  // (hints + ref_vtime for distribution) and its contiguous output range.
  struct member_slice {
    const dispatch_group* g = nullptr;
    const std::vector<job_id>* ids = nullptr;
    std::size_t offset = 0;
  };

  void finish_construction();

  // Stream plumbing (called by the handle).
  job_id submit_ntt(unsigned sid, ntt_job j);
  job_id submit_polymul(unsigned sid, polymul_job j);
  job_id submit_rlwe(unsigned sid, rlwe_encrypt_job j);
  job_id submit_rescale(unsigned sid, rns_rescale_job j);
  job_id submit_base_extend(unsigned sid, rns_base_extend_job j);
  void flush_stream(unsigned sid);
  void close_stream(unsigned sid);
  [[nodiscard]] std::size_t stream_pending(unsigned sid) const;
  [[nodiscard]] std::vector<unsigned> stream_bank_set(unsigned sid) const;
  [[nodiscard]] stream_state& state_of(unsigned sid);
  [[nodiscard]] const stream_state& state_of(unsigned sid) const;
  [[nodiscard]] std::vector<unsigned> auto_bank_set(unsigned sid) const;
  // Partition one stream's queue into a dispatch group (nullptr if empty).
  [[nodiscard]] std::shared_ptr<dispatch_group> build_group(unsigned sid);
  // Job bookkeeping around scheduler::enqueue: jobs become in-flight before
  // the group can run, the flush counts into stats_.groups.  Requires mu_.
  void admit_group_locked(std::shared_ptr<dispatch_group> g);
  // Pull every runnable group off the scheduler and hand it to the pool.
  // Requires mu_.
  void kick_locked();

  job_id enqueue(unsigned sid, job j);
  // The stream a still-queued job sits on, if any.
  [[nodiscard]] std::optional<unsigned> queued_on(job_id id) const noexcept;

  void run_group(const std::shared_ptr<dispatch_group>& g);
  // Solo path: chunked per-kind dispatch with yield points between chunks.
  // Returns true when the group yielded (banks released, remainder
  // re-enqueued) — the caller must not release again.
  bool run_solo_group(const std::shared_ptr<dispatch_group>& g);
  // Merged path: one dispatch per job kind over every member's jobs,
  // outputs distributed back per member.
  void run_merged_group(const std::shared_ptr<dispatch_group>& g);

  // Advance the group's bank frontiers by one batch (scheduler::account)
  // and fold the batch into the cumulative counters; returns the batch's
  // completion time on the virtual timeline.  When tracing, stamps one
  // `op` span per claimed bank over exactly [end - wall, end) — the trace's
  // reconstructed makespan (max span end) equals stats().wall_cycles by
  // construction.  Requires mu_.
  u64 account_locked(const dispatch_group& g, const batch_result& r, telemetry::trace_op op,
                     std::size_t jobs);
  void distribute(const dispatch_group& g, const std::vector<job_id>& ids, batch_result&& r,
                  telemetry::trace_op op);
  // Merged distribution: account once on the claimed union, then route each
  // member's slice of the outputs with that member's deadline accounting.
  void distribute_merged(const dispatch_group& host, const std::vector<member_slice>& slices,
                         std::size_t total_jobs, batch_result&& r, telemetry::trace_op op);
  void fail_group(const dispatch_group& g, const std::vector<job_id>& ids,
                  const std::string& what);
  void dispatch_ntt_group(const dispatch_group& g, const std::vector<job_id>& ids,
                          std::vector<ntt_job>&& jobs, transform_dir dir);
  void dispatch_polymul_group(const dispatch_group& g, const std::vector<job_id>& ids,
                              std::vector<polymul_job>&& jobs);
  void dispatch_rescale_group(const dispatch_group& g, const std::vector<job_id>& ids,
                              std::vector<rns_rescale_job>&& jobs);
  void dispatch_base_extend_group(const dispatch_group& g, const std::vector<job_id>& ids,
                                  std::vector<rns_base_extend_job>&& jobs);
  void run_rlwe_group(const dispatch_group& g, const std::vector<job_id>& ids,
                      std::vector<rlwe_encrypt_job>&& jobs);

  runtime_options opts_;
  std::unique_ptr<backend> backend_;
  backend_caps caps_;
  // The on-array residency manager backends consult on ring-overridden
  // dispatches; null when disabled (operand_cache_entries == 0 and
  // residency_rows == 0).  Built after caps_ — its bank/channel/subarray
  // shape comes from the backend's capabilities.
  std::unique_ptr<residency_manager> resman_;
  // Client-thread state: per-stream queues and the id counters.  Only the
  // client thread mutates streams_ (always under smu_); smu_ exists so a
  // non-client observer (stats thread) reading pending()/open_streams()
  // sees a consistent map.  Never held while acquiring mu_.
  mutable std::mutex smu_;
  std::map<unsigned, stream_state> streams_;
  // Dedicated RNS limb streams, keyed by limb prime (lazily created).
  std::map<u64, unsigned> rns_streams_;
  unsigned next_stream_id_ = 1;
  job_id next_id_ = 1;
  // The unified instrument store (and the recorder when tracing is on).
  // Every cumulative counter the old scheduler_stats member mirrored now
  // lives in the registry; m_ caches the instrument pointers the hot paths
  // bump (registered once in finish_construction, stable for the
  // registry's lifetime).
  telemetry::metrics_registry registry_;
  std::unique_ptr<telemetry::trace_recorder> recorder_;
  struct metric_refs {
    telemetry::counter* jobs_submitted = nullptr;
    telemetry::counter* jobs_completed = nullptr;
    telemetry::counter* jobs_failed = nullptr;
    telemetry::counter* groups = nullptr;
    telemetry::counter* batches = nullptr;
    telemetry::counter* waves = nullptr;
    telemetry::gauge* wall_cycles = nullptr;  // makespan high-water mark
    telemetry::counter* deadline_misses = nullptr;
    telemetry::real_accum* energy_nj = nullptr;
    telemetry::counter* cache_hits = nullptr;    // shared with the residency
    telemetry::counter* cache_misses = nullptr;  //   manager (attach_metrics)
    telemetry::counter* residency_evictions = nullptr;
    telemetry::counter* residency_moves = nullptr;
    telemetry::gauge* resident_rows = nullptr;
    telemetry::gauge* resident_rows_peak = nullptr;
    telemetry::counter* groups_merged = nullptr;      // shared with the scheduler
    telemetry::counter* preemption_yields = nullptr;  //   (attach_metrics)
    telemetry::counter* residency_affinity_hits = nullptr;
  };
  metric_refs m_;
  // Shared state, guarded by mu_: completion map, in-flight set, and the
  // scheduler module (ready groups, bank claims, bank frontiers).
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::map<job_id, job_result> done_;
  std::set<job_id> in_flight_;
  // The extracted scheduling engine (src/runtime/scheduler.h); constructed
  // once the backend's bank map is known.  Every access is under mu_.
  std::unique_ptr<scheduler> sched_;
  // Declared last: destroyed first, joining the workers (and finishing any
  // queued dispatch group) before the members those tasks reference go away.
  executor pool_;
};

}  // namespace bpntt::runtime
