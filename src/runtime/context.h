// bpntt::runtime::context — the library's public job-submission API.
//
//   runtime::context ctx(runtime_options()
//                            .with_ring(256, 7681, 14)
//                            .with_backend(backend_kind::sram)
//                            .with_banks(2));
//   std::vector<runtime::job_id> ids;
//   for (auto& poly : batch) ids.push_back(ctx.submit(runtime::ntt_job{.coeffs = poly}));
//   for (auto id : ids) auto r = ctx.wait(id);   // r.outputs[0] = NTT(poly)
//
// submit() validates and enqueues; nothing executes until a wait (or an
// explicit flush).  The deferral is the batching opportunity: at flush time
// the pending set is partitioned by job kind — forward transforms with
// forward transforms, ring products with ring products — and each partition
// goes to the backend as one batch, so the in-SRAM scheduler can shard it
// across banks and lanes and fill whole waves.  Jobs are independent and
// results are keyed by job_id, so the regrouping is unobservable except in
// the scheduler counters.
#pragma once

#include <map>
#include <memory>
#include <variant>
#include <vector>

#include "runtime/backend.h"
#include "runtime/job.h"
#include "runtime/options.h"

namespace bpntt::runtime {

using job = std::variant<ntt_job, polymul_job, rlwe_encrypt_job>;

// Cumulative scheduling counters across the context's lifetime.
struct scheduler_stats {
  u64 jobs_submitted = 0;
  u64 jobs_completed = 0;
  u64 batches = 0;      // backend dispatches
  u64 waves = 0;        // scheduling waves executed by the backend
  u64 wall_cycles = 0;  // sum of batch wall-clocks (batches run back-to-back)
  double energy_nj = 0.0;
};

class context {
 public:
  explicit context(runtime_options opts);

  context(const context&) = delete;
  context& operator=(const context&) = delete;

  [[nodiscard]] const runtime_options& options() const noexcept { return opts_; }
  [[nodiscard]] backend& active_backend() noexcept { return *backend_; }
  // Jobs one scheduling round absorbs at full utilisation (0 = unbounded).
  [[nodiscard]] unsigned wave_width() const noexcept { return backend_->wave_width(); }
  [[nodiscard]] const scheduler_stats& stats() const noexcept { return stats_; }
  [[nodiscard]] std::size_t pending() const noexcept { return queue_.size(); }

  // Validate and enqueue; throws std::invalid_argument on jobs the
  // configured ring or backend cannot execute.
  job_id submit(ntt_job j);
  job_id submit(polymul_job j);
  job_id submit(rlwe_encrypt_job j);

  // Execute everything pending: the queue is partitioned by job kind (and
  // transform direction) into one backend dispatch each.  Jobs are
  // independent, so the regrouping is unobservable outside stats().
  void flush();

  // Result retrieval (flushes first if the job is still queued).  wait()
  // consumes the result; waiting twice on the same id throws.
  [[nodiscard]] job_result wait(job_id id);
  // All unclaimed results in submission order.
  [[nodiscard]] std::vector<job_result> wait_all();

 private:
  job_id enqueue(job j);
  void distribute(const std::vector<job_id>& ids, batch_result&& r);
  void dispatch_ntt_group(const std::vector<job_id>& ids, std::vector<ntt_job>&& jobs,
                          transform_dir dir);
  void dispatch_polymul_group(const std::vector<job_id>& ids, std::vector<polymul_job>&& jobs);
  void run_rlwe(job_id id, const rlwe_encrypt_job& j);
  void account(const batch_result& r);

  runtime_options opts_;
  std::unique_ptr<backend> backend_;
  std::vector<std::pair<job_id, job>> queue_;
  std::map<job_id, job_result> done_;
  job_id next_id_ = 1;
  scheduler_stats stats_;
};

}  // namespace bpntt::runtime
