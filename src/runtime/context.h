// bpntt::runtime::context — the library's public job-submission API.
//
//   runtime::context ctx(runtime_options()
//                            .with_ring(256, 7681, 14)
//                            .with_backend(backend_kind::sram)
//                            .with_banks(2)
//                            .with_threads(4));
//   std::vector<runtime::job_id> ids;
//   for (auto& poly : batch) ids.push_back(ctx.submit(runtime::ntt_job{.coeffs = poly}));
//   ctx.flush();                                  // async: schedules and returns
//   for (auto id : ids) auto r = ctx.wait(id);    // blocks on per-job completion
//
// submit() validates and enqueues; nothing executes until a wait (or an
// explicit flush).  The deferral is the batching opportunity: at flush time
// the pending set is partitioned by job kind — forward transforms with
// forward transforms, ring products with ring products, R-LWE flows staged
// together — and each partition goes to the backend as one batch, so the
// in-SRAM scheduler can shard it across banks and lanes and fill whole
// waves.  flush() hands the partitions to a fixed-size thread pool and
// returns immediately; inside a dispatch the backend fans bank slices (or
// cpu job chunks) across the same pool.  Jobs are independent and results
// are keyed by job_id, so the regrouping is unobservable except in the
// scheduler counters — outputs are bit-identical to a serial run.
//
// Failure model: a backend exception fails exactly the jobs of the
// dispatch it occurred in (job_status::failed + the backend's message);
// sibling dispatches of the same flush still complete.  wait() throws
// job_failed_error for a failed job; try_wait()/wait_all() return the
// failed job_result instead.
//
// Threading contract: one client thread submits/waits; the pool threads
// are internal.  A context is not a multi-producer queue.
#pragma once

#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <variant>
#include <vector>

#include "runtime/backend.h"
#include "runtime/executor.h"
#include "runtime/job.h"
#include "runtime/options.h"

namespace bpntt::runtime {

using job = std::variant<ntt_job, polymul_job, rlwe_encrypt_job>;

// Cumulative scheduling counters across the context's lifetime.
struct scheduler_stats {
  u64 jobs_submitted = 0;
  u64 jobs_completed = 0;  // finished ok
  u64 jobs_failed = 0;     // dispatch raised; per-job error recorded
  u64 jobs_in_flight = 0;  // snapshot: dispatched, not yet completed/failed
  u64 batches = 0;         // backend dispatches
  u64 waves = 0;           // scheduling waves executed by the backend
  u64 wall_cycles = 0;     // sum of batch wall-clocks (batches run back-to-back)
  double energy_nj = 0.0;
};

class context {
 public:
  explicit context(runtime_options opts);
  // Injects a caller-provided backend (stub backends in tests, custom
  // models).  opts still selects ring parameters and pool size.
  context(runtime_options opts, std::unique_ptr<backend> custom_backend);
  ~context();

  context(const context&) = delete;
  context& operator=(const context&) = delete;

  [[nodiscard]] const runtime_options& options() const noexcept { return opts_; }
  [[nodiscard]] backend& active_backend() noexcept { return *backend_; }
  // Jobs one scheduling round absorbs at full utilisation (0 = unbounded).
  [[nodiscard]] unsigned wave_width() const noexcept { return backend_->wave_width(); }
  [[nodiscard]] unsigned executor_threads() const noexcept { return pool_.thread_count(); }
  // Counter snapshot (jobs_in_flight is the instantaneous gauge).
  [[nodiscard]] scheduler_stats stats() const;
  // Jobs enqueued but not yet handed to the executor by a flush.
  [[nodiscard]] std::size_t pending() const noexcept { return queue_.size(); }

  // Validate and enqueue; throws std::invalid_argument on jobs the
  // configured ring or backend cannot execute.
  job_id submit(ntt_job j);
  job_id submit(polymul_job j);
  job_id submit(rlwe_encrypt_job j);

  // Partition everything pending by job kind (and transform direction) and
  // hand the partitions to the executor; returns without blocking.
  void flush();
  // flush() + block until nothing is in flight.  Unclaimed results stay
  // retrievable afterwards.
  void sync();

  // Blocking retrieval; flushes first if the job is still queued.  wait()
  // consumes the result.  Throws std::out_of_range("... unknown job id")
  // for ids never returned by submit, std::out_of_range("... already
  // claimed") for results retrieved before, and job_failed_error (with the
  // backend's message) when the job's dispatch failed.
  [[nodiscard]] job_result wait(job_id id);
  // Non-blocking probe: the result if the job has completed or failed
  // (consuming it — inspect job_result::status), std::nullopt while it is
  // queued or in flight.  Does not flush.  Throws like wait() for unknown
  // or already-claimed ids.
  [[nodiscard]] std::optional<job_result> try_wait(job_id id);
  // Flush, drain, and return all unclaimed results in submission order
  // (failed jobs included, carrying status/error).
  [[nodiscard]] std::vector<job_result> wait_all();

 private:
  // One flush's partitioned queue, handed to the executor as a unit.
  struct flush_plan {
    std::vector<job_id> fwd_ids, inv_ids, mul_ids, rlwe_ids;
    std::vector<ntt_job> fwd, inv;
    std::vector<polymul_job> muls;
    std::vector<rlwe_encrypt_job> rlwes;
  };

  job_id enqueue(job j);
  [[nodiscard]] bool is_queued(job_id id) const noexcept;
  void drain(flush_plan& plan);
  void distribute(const std::vector<job_id>& ids, batch_result&& r);
  void fail_group(const std::vector<job_id>& ids, const std::string& what);
  void dispatch_ntt_group(const std::vector<job_id>& ids, std::vector<ntt_job>&& jobs,
                          transform_dir dir);
  void dispatch_polymul_group(const std::vector<job_id>& ids, std::vector<polymul_job>&& jobs);
  void run_rlwe_group(const std::vector<job_id>& ids, std::vector<rlwe_encrypt_job>&& jobs);
  void account(const batch_result& r);
  void account_locked(const batch_result& r);

  runtime_options opts_;
  std::unique_ptr<backend> backend_;
  // Client-thread state: the pre-flush queue and the id counter.
  std::vector<std::pair<job_id, job>> queue_;
  job_id next_id_ = 1;
  // Shared state, guarded by mu_: completion map, in-flight set, counters.
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::map<job_id, job_result> done_;
  std::set<job_id> in_flight_;
  scheduler_stats stats_;
  // Dispatches serialize here: backends batch onto shared bank state, so
  // two drain tasks must not interleave backend calls.
  std::mutex dispatch_mu_;
  // Declared last: destroyed first, joining the workers (and finishing any
  // queued drain task) before the members those tasks reference go away.
  executor pool_;
};

}  // namespace bpntt::runtime
