#include "runtime/cpu_backend.h"

#include <chrono>
#include <cmath>
#include <utility>

#include "nttmath/poly.h"

namespace bpntt::runtime {

cpu_backend::cpu_backend(const runtime_options& opts)
    : params_(opts.params), freq_ghz_(opts.cpu_freq_ghz), power_w_(opts.cpu_power_w) {
  if (params_.incomplete) {
    itables_ = std::make_unique<math::incomplete_ntt_tables>(params_.n, params_.q);
  } else {
    tables_ = std::make_unique<math::ntt_tables>(params_.n, params_.q, params_.negacyclic);
    // The Montgomery fast path implements the negacyclic CT/GS pair; cyclic
    // rings use the exact table-driven transform instead.
    if (params_.negacyclic) fast_ = std::make_unique<math::fast_ntt>(*tables_);
  }
}

void cpu_backend::transform(std::vector<u64>& a, transform_dir dir) const {
  if (itables_) {
    dir == transform_dir::forward ? math::incomplete_ntt_forward(a, *itables_)
                                  : math::incomplete_ntt_inverse(a, *itables_);
  } else if (fast_) {
    dir == transform_dir::forward ? fast_->forward(a) : fast_->inverse(a);
  } else {
    dir == transform_dir::forward ? math::cyclic_ntt_forward(a, *tables_)
                                  : math::cyclic_ntt_inverse(a, *tables_);
  }
}

batch_result cpu_backend::finish(std::vector<std::vector<u64>> outputs, double seconds) const {
  batch_result out;
  out.waves = outputs.empty() ? 0 : 1;
  out.outputs = std::move(outputs);
  out.wall_cycles = static_cast<u64>(std::llround(seconds * freq_ghz_ * 1e9));
  out.stats.cycles = out.wall_cycles;
  out.stats.energy_pj = seconds * power_w_ * 1e12;
  return out;
}

batch_result cpu_backend::run_ntt(const std::vector<std::vector<u64>>& polys,
                                  transform_dir dir) {
  std::vector<std::vector<u64>> outputs = polys;
  const auto start = std::chrono::steady_clock::now();
  for (auto& a : outputs) transform(a, dir);
  const std::chrono::duration<double> elapsed = std::chrono::steady_clock::now() - start;
  return finish(std::move(outputs), elapsed.count());
}

batch_result cpu_backend::run_polymul(const std::vector<core::polymul_pair>& pairs) {
  std::vector<std::vector<u64>> outputs(pairs.size());
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    if (itables_) {
      std::vector<u64> a = pairs[i].a;
      std::vector<u64> b = pairs[i].b;
      math::incomplete_ntt_forward(a, *itables_);
      math::incomplete_ntt_forward(b, *itables_);
      std::vector<u64> c(a.size());
      math::incomplete_basemul(a, b, c, *itables_);
      math::incomplete_ntt_inverse(c, *itables_);
      outputs[i] = std::move(c);
    } else if (fast_) {
      std::vector<u64> a = pairs[i].a;
      std::vector<u64> b = pairs[i].b;
      fast_->forward(a);
      fast_->forward(b);
      std::vector<u64> c(a.size());
      math::ntt_pointwise(a, b, c, params_.q);
      fast_->inverse(c);
      outputs[i] = std::move(c);
    } else {
      outputs[i] = math::polymul_ntt(pairs[i].a, pairs[i].b, *tables_);
    }
  }
  const std::chrono::duration<double> elapsed = std::chrono::steady_clock::now() - start;
  return finish(std::move(outputs), elapsed.count());
}

}  // namespace bpntt::runtime
