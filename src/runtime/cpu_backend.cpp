#include "runtime/cpu_backend.h"

#include <chrono>
#include <cmath>
#include <utility>

#include "nttmath/poly.h"
#include "runtime/executor.h"
#include "runtime/residency_manager.h"

namespace bpntt::runtime {

cpu_backend::cpu_backend(const runtime_options& opts)
    : params_(opts.params),
      freq_ghz_(opts.cpu_freq_ghz),
      power_w_(opts.cpu_power_w),
      retarget_(opts.retarget_cache_limit) {
  if (params_.incomplete) {
    itables_ = std::make_unique<math::incomplete_ntt_tables>(params_.n, params_.q);
  } else {
    tables_ = std::make_unique<math::ntt_tables>(params_.n, params_.q, params_.negacyclic);
    // The Montgomery fast path implements the negacyclic CT/GS pair; cyclic
    // rings use the exact table-driven transform instead.
    if (params_.negacyclic) fast_ = std::make_unique<math::fast_ntt>(*tables_);
  }
}

std::shared_ptr<const cpu_backend::limb_ring> cpu_backend::ring_for(u64 ring_q) {
  return retarget_.get(ring_q, [&] {
    limb_ring ring;
    ring.tables = std::make_unique<math::ntt_tables>(params_.n, ring_q, /*negacyclic=*/true);
    ring.fast = std::make_unique<math::fast_ntt>(*ring.tables);
    return ring;
  });
}

void cpu_backend::transform(std::vector<u64>& a, transform_dir dir,
                            const limb_ring* limb) const {
  if (limb != nullptr) {
    dir == transform_dir::forward ? limb->fast->forward(a) : limb->fast->inverse(a);
  } else if (itables_) {
    dir == transform_dir::forward ? math::incomplete_ntt_forward(a, *itables_)
                                  : math::incomplete_ntt_inverse(a, *itables_);
  } else if (fast_) {
    dir == transform_dir::forward ? fast_->forward(a) : fast_->inverse(a);
  } else {
    dir == transform_dir::forward ? math::cyclic_ntt_forward(a, *tables_)
                                  : math::cyclic_ntt_inverse(a, *tables_);
  }
}

std::vector<u64> cpu_backend::multiply(const core::polymul_pair& pair, u64 ring_q,
                                       const limb_ring* limb) const {
  if (limb != nullptr) {
    // Operand transforms come from (or feed) the NTT-domain cache: a
    // repeated multiplicand skips its forward Montgomery NTT entirely.
    const auto fresh = [&](const std::vector<u64>& p) {
      std::vector<u64> f = p;
      limb->fast->forward(f);
      return f;
    };
    const auto forward_of = [&](const std::vector<u64>& p) {
      return resman_ != nullptr
                 ? resman_->transformed_or(ring_q, transform_dir::forward, p, fresh)
                 : fresh(p);
    };
    const std::vector<u64> a = forward_of(pair.a);
    const std::vector<u64> b = forward_of(pair.b);
    std::vector<u64> c(a.size());
    math::ntt_pointwise(a, b, c, limb->tables->q());
    limb->fast->inverse(c);
    return c;
  }
  if (itables_) {
    std::vector<u64> a = pair.a;
    std::vector<u64> b = pair.b;
    math::incomplete_ntt_forward(a, *itables_);
    math::incomplete_ntt_forward(b, *itables_);
    std::vector<u64> c(a.size());
    math::incomplete_basemul(a, b, c, *itables_);
    math::incomplete_ntt_inverse(c, *itables_);
    return c;
  }
  if (fast_) {
    std::vector<u64> a = pair.a;
    std::vector<u64> b = pair.b;
    fast_->forward(a);
    fast_->forward(b);
    std::vector<u64> c(a.size());
    math::ntt_pointwise(a, b, c, params_.q);
    fast_->inverse(c);
    return c;
  }
  return math::polymul_ntt(pair.a, pair.b, *tables_);
}

batch_result cpu_backend::finish(std::vector<std::vector<u64>> outputs, double seconds) const {
  batch_result out;
  out.waves = outputs.empty() ? 0 : 1;
  out.outputs = std::move(outputs);
  if (!out.outputs.empty()) {
    // A small batch can finish inside one clock tick and measure 0 seconds;
    // clamp to one core cycle so a non-empty batch never reports zero work
    // (downstream throughput/energy division relies on that).
    seconds = std::max(seconds, 1.0 / (freq_ghz_ * 1e9));
  }
  out.wall_cycles = static_cast<u64>(std::llround(seconds * freq_ghz_ * 1e9));
  out.stats.cycles = out.wall_cycles;
  out.stats.energy_pj = seconds * power_w_ * 1e12;
  return out;
}

batch_result cpu_backend::run_ntt(const std::vector<std::vector<u64>>& polys,
                                  transform_dir dir, const dispatch_hints& hints) {
  if (hints.chunk_budget != 0 && polys.size() > hints.chunk_budget) {
    return run_ntt_chunked(polys, dir, hints);
  }
  // Resolve a ring override before the clock starts: retarget table
  // construction is setup, not per-batch work.
  const std::shared_ptr<const limb_ring> limb =
      hints.ring_q != 0 ? ring_for(hints.ring_q) : nullptr;
  std::vector<std::vector<u64>> outputs = polys;
  const auto start = std::chrono::steady_clock::now();
  // Tables are immutable after construction, so jobs chunk freely across
  // the pool; each task owns its output slot.
  parallel_for(pool_, outputs.size(), [&](std::size_t i) {
    auto& a = outputs[i];
    if (limb != nullptr && resman_ != nullptr) {
      a = resman_->transformed_or(hints.ring_q, dir, a, [&](const std::vector<u64>& p) {
        std::vector<u64> t = p;
        transform(t, dir, limb.get());
        return t;
      });
      return;
    }
    transform(a, dir, limb.get());
  });
  const std::chrono::duration<double> elapsed = std::chrono::steady_clock::now() - start;
  batch_result out = finish(std::move(outputs), elapsed.count());
  note_batch(polys.size(), out.wall_cycles);
  return out;
}

batch_result cpu_backend::run_polymul(const std::vector<core::polymul_pair>& pairs,
                                      const dispatch_hints& hints) {
  if (hints.chunk_budget != 0 && pairs.size() > hints.chunk_budget) {
    return run_polymul_chunked(pairs, hints);
  }
  const std::shared_ptr<const limb_ring> limb =
      hints.ring_q != 0 ? ring_for(hints.ring_q) : nullptr;
  std::vector<std::vector<u64>> outputs(pairs.size());
  const auto start = std::chrono::steady_clock::now();
  parallel_for(pool_, pairs.size(),
               [&](std::size_t i) { outputs[i] = multiply(pairs[i], hints.ring_q, limb.get()); });
  const std::chrono::duration<double> elapsed = std::chrono::steady_clock::now() - start;
  batch_result out = finish(std::move(outputs), elapsed.count());
  note_batch(pairs.size(), out.wall_cycles);
  return out;
}

}  // namespace bpntt::runtime
