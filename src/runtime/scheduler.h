// bpntt::runtime::scheduler — group ordering, bank claiming, cross-stream
// merging, and chunked dispatch, extracted from the context into a
// first-class module.
//
// The scheduler is the policy half of the runtime's execution engine: the
// context builds dispatch groups (one per stream flush) and executes
// backend dispatches; the scheduler decides *which group runs next on which
// banks*.  The split is deliberate — every scheduling capability (EDF,
// aging, cross-stream batching, preemptive yielding) lives behind this one
// seam, and the context is reduced to job bookkeeping and result
// distribution.
//
// Ownership and interface:
//
//   scheduler sched(policy_config{...}, /*resources=*/banks);
//   sched.enqueue(group);                 // seq, frontier ref, deadline clamp
//   for (auto& g : sched.take_runnable()) // claim banks; merge compatible
//     pool.enqueue([g] { run(g); });      //   ready groups into g->absorbed
//   ...
//   u64 end = sched.account(*g, wall);    // advance the bank frontiers
//   if (sched.should_yield(*g))           // a finite-deadline group arrived
//     sched.requeue_preempted(g);         //   give the banks up mid-group
//   sched.release(*g);                    // free the claim, schedule again
//
// Ready-queue ordering is one comparator (group_before) for every policy:
// aged groups first (among themselves, flush order), then EDF's absolute
// deadline when configured, then priority descending, then flush order.
//
// Cross-stream batching: when take_runnable() picks a runnable group and
// merging is enabled, it scans the remaining ready queue for *merge-
// compatible* groups — same ring modulus (native or the same RNS limb
// prime), both merge-eligible (no rlwe jobs, neither stream opted out),
// and a bank set that is disjoint-or-shareable (every bank either already
// in the host's claim or currently unclaimed).  Compatible groups are
// absorbed into the host's `absorbed` list and the host claims the union:
// one backend dispatch per job kind executes every member's jobs, and the
// context distributes each member's slice of the outputs back to its
// original stream with that member's own deadline accounting.  Outputs are
// bit-identical to unmerged execution — batching moves work, never results.
//
// Preemptive yielding: a group whose stream set a chunk_budget dispatches
// in chunks of at most that many jobs.  Between chunks the context asks
// should_yield(): true when a ready group that orders *before* the running
// group (under the configured policy) wants any of its banks — the running
// group's remainder is re-enqueued with its original seq/frontier/deadline
// (requeue_preempted), the banks are released, and the urgent group claims
// them.  A bulk group therefore cannot hold the chip against an arriving
// finite-deadline tenant.
//
// Threading: the scheduler is NOT internally synchronized.  It is owned by
// a context and every call is made under the context's scheduler mutex —
// the same contract the extracted code had when it was private machinery.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "runtime/backend.h"
#include "runtime/job.h"
#include "runtime/options.h"
#include "telemetry/metrics.h"

namespace bpntt::telemetry {
class trace_recorder;
}

namespace bpntt::runtime {

// One stream flush, partitioned by job kind.  Jobs of one stream are
// independent, so the pending set splits into one backend dispatch per kind
// (and direction) — the widest batches the backend can shard over banks,
// lanes and waves.  Results are keyed by job_id, so regrouping never
// misroutes an output.
struct flush_plan {
  std::vector<job_id> fwd_ids, inv_ids, mul_ids, rlwe_ids, rescale_ids, bext_ids;
  std::vector<ntt_job> fwd, inv;
  std::vector<polymul_job> muls;
  std::vector<rlwe_encrypt_job> rlwes;
  std::vector<rns_rescale_job> rescales;
  std::vector<rns_base_extend_job> bexts;

  [[nodiscard]] bool empty() const noexcept {
    return fwd_ids.empty() && inv_ids.empty() && mul_ids.empty() && rlwe_ids.empty() &&
           rescale_ids.empty() && bext_ids.empty();
  }
};

// The scheduling unit: a flushed stream queue waiting for (or holding) its
// bank reservation.  Public since the scheduler extraction — tests and
// tooling can build and order groups directly.
struct dispatch_group {
  u64 seq = 0;                      // flush order; priority tiebreak
  dispatch_hints hints;             // stream id, priority, deadline, bank subset
  std::vector<unsigned> resources;  // scheduler resource ids (= bank ids, or {0})
  u64 ref_vtime = 0;                // bank frontier at flush; deadline reference
  // Absolute virtual-timeline deadline (ref_vtime + deadline_cycles).
  // no_deadline sorts after every finite deadline under edf.
  static constexpr u64 no_deadline = ~0ULL;
  u64 deadline_abs = no_deadline;
  unsigned waits = 0;    // scheduling rounds this group was passed over
  bool aged = false;     // waits hit aging_limit: promoted ahead of non-aged
  bool mergeable = true; // stream did not opt out and the plan carries no rlwe jobs
  // Residency affinity hint: banks currently holding this group's limb
  // operands (residency_manager::banks_holding at build time).  Purely
  // advisory — claiming is unchanged; the scheduler counts a
  // residency_affinity_hit when a claim lands on a hinted bank, the
  // telemetry the operand-placement story is judged by.
  std::vector<unsigned> affinity_banks;
  flush_plan plan;
  // Cross-stream batching: ready groups absorbed into this group's
  // dispatch.  Empty for a plain single-stream group.  The host's
  // `resources` is the claimed union; members keep their own hints and
  // ref_vtime for per-tenant result distribution and deadline accounting.
  std::vector<std::shared_ptr<dispatch_group>> absorbed;
};

// The one absolute-deadline clamp every enqueue path shares: a stream's
// completion budget measured from its flush frontier, saturated so an
// astronomic budget stays a *finite* deadline (only deadline_cycles == 0
// means "none", which sorts after every finite deadline under EDF).
[[nodiscard]] constexpr u64 absolute_deadline(u64 ref_vtime, u64 deadline_cycles) noexcept {
  if (deadline_cycles == 0) return dispatch_group::no_deadline;
  const u64 abs = ref_vtime + deadline_cycles;
  if (abs < ref_vtime) return dispatch_group::no_deadline - 1;  // overflow: saturate finite
  return abs < dispatch_group::no_deadline - 1 ? abs : dispatch_group::no_deadline - 1;
}

// Snapshot of the scheduler's cumulative counters (the context folds them
// into its scheduler_stats snapshot).  Backed by telemetry::counter
// instruments — attach_metrics() points them at registry-owned counters so
// the registry and this snapshot can never disagree.
struct scheduler_counters {
  u64 groups_merged = 0;      // ready groups absorbed into another group's dispatch
  u64 preemption_yields = 0;  // chunked groups that gave their banks up mid-plan
  // Claims that landed a group on a bank already holding its limb operands
  // (one per group whose claim intersects its affinity_banks hint).
  u64 residency_affinity_hits = 0;
};

class scheduler {
 public:
  struct policy_config {
    schedule_policy sched = schedule_policy::priority;
    // Starvation bound: a ready group passed over this many scheduling
    // rounds is promoted ahead of all non-aged groups.  0 disables aging.
    unsigned aging_limit = 0;
    // Cross-stream batching master switch (runtime_options::merge_streams).
    bool merge_streams = false;
  };

  scheduler(policy_config cfg, unsigned resources);

  // Admit a freshly built group: assigns the flush sequence number, reads
  // the group's bank-frontier reference time, clamps the absolute deadline
  // (absolute_deadline), and inserts in ready order.
  void enqueue(std::shared_ptr<dispatch_group> g);

  // Re-admit a preempted group's remainder.  Keeps seq, ref_vtime and
  // deadline_abs — the group resumes exactly where its policy position was,
  // it does not jump the queue by re-flushing.  Counts a preemption yield.
  void requeue_preempted(std::shared_ptr<dispatch_group> g);

  // The scheduling pass: claim banks for (and return) every ready group
  // whose banks are free and not claimed by a blocked earlier-ordered
  // group; when merging is enabled, absorb merge-compatible ready groups
  // into the picked group before returning it.  Also runs priority aging
  // over the groups left behind.  The caller dispatches the returned
  // groups and must eventually release() each one.
  [[nodiscard]] std::vector<std::shared_ptr<dispatch_group>> take_runnable();

  // Free a dispatched group's bank claim (the claimed union for a merge
  // host).  The caller runs take_runnable() again afterwards.
  void release(const dispatch_group& g);

  // True when a ready group that orders before `g` under the configured
  // policy is waiting for any of g's banks — the chunked-dispatch yield
  // test.  Const: yielding is the caller's decision.
  [[nodiscard]] bool should_yield(const dispatch_group& g) const;

  // Advance the group's bank frontiers by one batch; returns the batch's
  // completion time on the virtual timeline.
  u64 account(const dispatch_group& g, u64 wall_cycles);

  // The ready-queue ordering relation of the configured policy ("a
  // dispatches before b"): aged groups first (among themselves, flush
  // order), then edf/priority as configured.
  [[nodiscard]] bool group_before(const dispatch_group& a, const dispatch_group& b) const;

  [[nodiscard]] scheduler_counters counters() const noexcept {
    return {merged_->value(), yields_->value(), affinity_->value()};
  }
  [[nodiscard]] std::size_t ready_groups() const noexcept { return ready_.size(); }

  // Publish the merge/yield/affinity counters into registry-owned
  // instruments: the scheduler increments *those* counters from here on, so
  // the registry and counters() are literally the same numbers.  Null
  // leaves the owned fallback in place.
  void attach_metrics(telemetry::counter* groups_merged,
                      telemetry::counter* preemption_yields,
                      telemetry::counter* residency_affinity_hits = nullptr) noexcept {
    merged_ = groups_merged ? groups_merged : &owned_merged_;
    yields_ = preemption_yields ? preemption_yields : &owned_yields_;
    affinity_ = residency_affinity_hits ? residency_affinity_hits : &owned_affinity_;
  }

  // Lifecycle tracing: merge-absorption and preemption-yield edges become
  // explicit trace events.  Null (the default) records nothing.
  void attach_recorder(telemetry::trace_recorder* rec) noexcept { recorder_ = rec; }

 private:
  // Merge scan for one freshly claimed host: absorb every compatible ready
  // group whose banks are shareable with the claim state.
  void absorb_compatible(const std::shared_ptr<dispatch_group>& host, std::vector<char>& claimed);
  void age_passed_over();

  policy_config cfg_;
  std::vector<std::shared_ptr<dispatch_group>> ready_;  // group_before order
  std::vector<char> bank_busy_;
  std::vector<u64> bank_free_at_;
  u64 next_group_seq_ = 0;
  // Note a freshly claimed group whose claim intersects its residency
  // affinity hint (counter + affinity_hit trace instant).
  void note_affinity(const dispatch_group& g);

  // Owned fallbacks keep a bare scheduler (tests, tools) counting without a
  // registry; attach_metrics() swaps the pointers to registry instruments.
  telemetry::counter owned_merged_, owned_yields_, owned_affinity_;
  telemetry::counter* merged_ = &owned_merged_;
  telemetry::counter* yields_ = &owned_yields_;
  telemetry::counter* affinity_ = &owned_affinity_;
  telemetry::trace_recorder* recorder_ = nullptr;
};

}  // namespace bpntt::runtime
