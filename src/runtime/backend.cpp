#include "runtime/backend.h"

#include <stdexcept>
#include <string>

#include "nttmath/modarith.h"
#include "runtime/cpu_backend.h"
#include "runtime/reference_backend.h"
#include "runtime/sram_backend.h"

namespace bpntt::runtime {

namespace {

// Fold one sub-dispatch into the accumulated result: outputs concatenate in
// order, cycle/wave/energy accounting sums (the sub-batches run back to
// back on the banks the hints name).
void fold_chunk(batch_result& acc, batch_result&& part) {
  for (auto& o : part.outputs) acc.outputs.push_back(std::move(o));
  acc.stats += part.stats;
  acc.wall_cycles += part.wall_cycles;
  acc.waves += part.waves;
}

}  // namespace

batch_result backend::run_ntt_chunked(const std::vector<std::vector<u64>>& polys,
                                      transform_dir dir, const dispatch_hints& hints) {
  const std::size_t budget = static_cast<std::size_t>(hints.chunk_budget);
  batch_result acc;
  acc.outputs.reserve(polys.size());
  for (std::size_t at = 0; at < polys.size(); at += budget) {
    const std::size_t take = std::min(budget, polys.size() - at);
    const std::vector<std::vector<u64>> chunk(polys.begin() + at, polys.begin() + at + take);
    fold_chunk(acc, run_ntt(chunk, dir, hints));
  }
  acc.stats.cycles = acc.wall_cycles;
  return acc;
}

batch_result backend::run_polymul_chunked(const std::vector<core::polymul_pair>& pairs,
                                          const dispatch_hints& hints) {
  const std::size_t budget = static_cast<std::size_t>(hints.chunk_budget);
  batch_result acc;
  acc.outputs.reserve(pairs.size());
  for (std::size_t at = 0; at < pairs.size(); at += budget) {
    const std::size_t take = std::min(budget, pairs.size() - at);
    const std::vector<core::polymul_pair> chunk(pairs.begin() + at, pairs.begin() + at + take);
    fold_chunk(acc, run_polymul(chunk, hints));
  }
  acc.stats.cycles = acc.wall_cycles;
  return acc;
}

batch_result backend::run_rescale(const std::vector<rns_rescale_job>& jobs,
                                  const dispatch_hints&) {
  batch_result out;
  out.outputs.reserve(jobs.size());
  out.waves = jobs.empty() ? 0 : 1;
  for (const rns_rescale_job& j : jobs) {
    // Like the inverse guard below, a length mismatch here means the
    // caller bypassed submit-side validation; refuse loudly instead of
    // reading past the dropped-residue vector.
    if (j.dropped.size() != j.x.size()) {
      throw std::logic_error("runtime: rescale job carries " + std::to_string(j.x.size()) +
                             " limb residues but " + std::to_string(j.dropped.size()) +
                             " dropped residues");
    }
    // q_drop is coprime to every kept limb (the chain is pairwise-coprime
    // primes), so the inverse exists; a zero inverse here means the caller
    // bypassed submit-side validation.
    const u64 inv = math::inv_mod(j.drop_prime % j.prime, j.prime);
    if (inv == 0) {
      throw std::logic_error("runtime: rescale drop prime " + std::to_string(j.drop_prime) +
                             " is not invertible mod limb prime " + std::to_string(j.prime));
    }
    std::vector<u64> limb(j.x.size());
    for (std::size_t i = 0; i < j.x.size(); ++i) {
      const u64 r = j.dropped[i];
      // floor((x - r) / q_drop) mod q_i, then +1 when the dropped residue
      // rounds the quotient up (2r > q_drop; q_drop is odd, so never ==).
      const u64 floor_term =
          math::mul_mod(math::sub_mod(j.x[i], r % j.prime, j.prime), inv, j.prime);
      limb[i] = r > j.drop_prime / 2 ? math::add_mod(floor_term, 1 % j.prime, j.prime)
                                     : floor_term;
    }
    out.outputs.push_back(std::move(limb));
  }
  return out;
}

std::unique_ptr<backend> make_backend(const runtime_options& opts) {
  switch (opts.backend) {
    case backend_kind::sram:
      return std::make_unique<sram_backend>(opts);
    case backend_kind::cpu:
      return std::make_unique<cpu_backend>(opts);
    case backend_kind::reference:
      return std::make_unique<reference_backend>(opts);
  }
  throw std::logic_error("make_backend: unknown backend kind");
}

}  // namespace bpntt::runtime
