#include "runtime/backend.h"

#include <stdexcept>
#include <string>

#include "common/bitutil.h"
#include "nttmath/modarith.h"
#include "nttmath/wide_uint.h"
#include "runtime/cpu_backend.h"
#include "runtime/reference_backend.h"
#include "runtime/sram_backend.h"
#include "telemetry/trace.h"

namespace bpntt::runtime {

void backend::note_batch(std::size_t jobs, u64 wall_cycles) noexcept {
  if (recorder_ == nullptr || jobs == 0) return;
  recorder_->record({.ts = recorder_->watermark(),
                     .dur = 0,
                     .a = wall_cycles,
                     .track = telemetry::kTrackBackend,
                     .arg = static_cast<telemetry::u32>(jobs),
                     .op = telemetry::trace_op::backend_batch});
}

namespace {

// Fold one sub-dispatch into the accumulated result: outputs concatenate in
// order, cycle/wave/energy accounting sums (the sub-batches run back to
// back on the banks the hints name).
void fold_chunk(batch_result& acc, batch_result&& part) {
  for (auto& o : part.outputs) acc.outputs.push_back(std::move(o));
  acc.stats += part.stats;
  acc.wall_cycles += part.wall_cycles;
  acc.waves += part.waves;
}

}  // namespace

batch_result backend::run_ntt_chunked(const std::vector<std::vector<u64>>& polys,
                                      transform_dir dir, const dispatch_hints& hints) {
  const std::size_t budget = static_cast<std::size_t>(hints.chunk_budget);
  batch_result acc;
  acc.outputs.reserve(polys.size());
  for (std::size_t at = 0; at < polys.size(); at += budget) {
    const std::size_t take = std::min(budget, polys.size() - at);
    const std::vector<std::vector<u64>> chunk(polys.begin() + at, polys.begin() + at + take);
    fold_chunk(acc, run_ntt(chunk, dir, hints));
  }
  acc.stats.cycles = acc.wall_cycles;
  return acc;
}

batch_result backend::run_polymul_chunked(const std::vector<core::polymul_pair>& pairs,
                                          const dispatch_hints& hints) {
  const std::size_t budget = static_cast<std::size_t>(hints.chunk_budget);
  batch_result acc;
  acc.outputs.reserve(pairs.size());
  for (std::size_t at = 0; at < pairs.size(); at += budget) {
    const std::size_t take = std::min(budget, pairs.size() - at);
    const std::vector<core::polymul_pair> chunk(pairs.begin() + at, pairs.begin() + at + take);
    fold_chunk(acc, run_polymul(chunk, hints));
  }
  acc.stats.cycles = acc.wall_cycles;
  return acc;
}

batch_result backend::run_rescale(const std::vector<rns_rescale_job>& jobs,
                                  const dispatch_hints&) {
  batch_result out;
  out.outputs.reserve(jobs.size());
  out.waves = jobs.empty() ? 0 : 1;
  for (const rns_rescale_job& j : jobs) {
    // Like the inverse guard below, a length mismatch here means the
    // caller bypassed submit-side validation; refuse loudly instead of
    // reading past the dropped-residue vector.
    if (j.dropped.size() != j.x.size()) {
      throw std::logic_error("runtime: rescale job carries " + std::to_string(j.x.size()) +
                             " limb residues but " + std::to_string(j.dropped.size()) +
                             " dropped residues");
    }
    // q_drop is coprime to every kept limb (the chain is pairwise-coprime
    // primes), so the inverse exists; a zero inverse here means the caller
    // bypassed submit-side validation.
    const u64 inv = math::inv_mod(j.drop_prime % j.prime, j.prime);
    if (inv == 0) {
      throw std::logic_error("runtime: rescale drop prime " + std::to_string(j.drop_prime) +
                             " is not invertible mod limb prime " + std::to_string(j.prime));
    }
    // Congruence-preserving switch: the correction delta = r~ + jj*q_drop
    // must be divisible by t, so jj == -r~ * q_drop^{-1} (mod t); of the
    // two candidates jj0 and jj0 - t the one with minimal |delta| wins.
    const u64 t = j.congruence;
    u64 inv_q_mod_t = 0;
    if (t >= 2) {
      inv_q_mod_t = math::inv_mod(j.drop_prime % t, t);
      if (inv_q_mod_t == 0) {
        throw std::logic_error("runtime: rescale congruence " + std::to_string(t) +
                               " shares a factor with drop prime " +
                               std::to_string(j.drop_prime));
      }
    }
    std::vector<u64> limb(j.x.size());
    for (std::size_t i = 0; i < j.x.size(); ++i) {
      const u64 r = j.dropped[i];
      // floor((x - r) / q_drop) mod q_i, then +1 when the dropped residue
      // rounds the quotient up (2r > q_drop; q_drop is odd, so never ==).
      const u64 floor_term =
          math::mul_mod(math::sub_mod(j.x[i], r % j.prime, j.prime), inv, j.prime);
      u64 v = r > j.drop_prime / 2 ? math::add_mod(floor_term, 1 % j.prime, j.prime)
                                   : floor_term;
      if (t >= 2) {
        // Centered remainder r~ matching the round-to-nearest above, then
        // the minimal-|delta| multiple-of-t correction on top of it.
        const __int128 rt = r > j.drop_prime / 2
                                ? static_cast<__int128>(r) - static_cast<__int128>(j.drop_prime)
                                : static_cast<__int128>(r);
        u64 rt_mod_t = r % t;
        if (r > j.drop_prime / 2) rt_mod_t = (rt_mod_t + t - j.drop_prime % t) % t;
        const u64 jj0 = math::mul_mod((t - rt_mod_t) % t, inv_q_mod_t, t);
        const __int128 d0 = rt + static_cast<__int128>(jj0) * j.drop_prime;
        const __int128 d1 = d0 - static_cast<__int128>(t) * j.drop_prime;
        const bool take_low = (d1 < 0 ? -d1 : d1) < (d0 < 0 ? -d0 : d0);
        // out = (x - delta)/q_drop = round(x/q_drop) - jj  (mod q_i).
        if (take_low) {
          v = math::add_mod(v, (t - jj0) % j.prime, j.prime);
        } else {
          v = math::sub_mod(v, jj0 % j.prime, j.prime);
        }
      }
      limb[i] = v;
    }
    out.outputs.push_back(std::move(limb));
  }
  return out;
}

batch_result backend::run_base_extend(const std::vector<rns_base_extend_job>& jobs,
                                      const dispatch_hints&) {
  batch_result out;
  out.outputs.reserve(jobs.size());
  out.waves = jobs.empty() ? 0 : 1;
  for (const rns_base_extend_job& j : jobs) {
    if (j.residues.size() != j.source_primes.size()) {
      throw std::logic_error("runtime: base-extend job carries " +
                             std::to_string(j.residues.size()) + " residue vectors for " +
                             std::to_string(j.source_primes.size()) + " source primes");
    }
    const std::size_t n = j.residues.empty() ? 0 : j.residues.front().size();
    // Source-chain CRT precompute: M = prod q_i at a width that holds the
    // lazy accumulator (sum of k terms each below M), M_i = M / q_i, and
    // the weights y_i = M_i^{-1} mod q_i.
    unsigned sum_bits = 0;
    for (const u64 q : j.source_primes) sum_bits += common::bit_length(q);
    unsigned lazy_bits = 0;
    while ((1ULL << lazy_bits) < j.source_primes.size()) ++lazy_bits;
    const unsigned wide_bits = sum_bits + lazy_bits + 1;
    math::wide_uint m(wide_bits, 1);
    for (const u64 q : j.source_primes) m = m.mul_u64(q);
    std::vector<math::wide_uint> terms;
    std::vector<u64> weights;
    terms.reserve(j.source_primes.size());
    weights.reserve(j.source_primes.size());
    for (const u64 q : j.source_primes) {
      const math::wide_divmod dm = m.divmod(math::wide_uint(64, q));
      const u64 w = math::inv_mod(dm.quot.mod_u64(q), q);
      if (!dm.rem.is_zero() || w == 0) {
        throw std::logic_error("runtime: base-extend source chain is not pairwise coprime at "
                               "prime " + std::to_string(q));
      }
      terms.push_back(dm.quot);
      weights.push_back(w);
    }
    std::vector<u64> limb(n);
    for (std::size_t c = 0; c < n; ++c) {
      // Exact canonical lift [x]_M via lazily-reduced CRT, then one word
      // reduction into the new limb.
      math::wide_uint acc(wide_bits);
      for (std::size_t i = 0; i < j.source_primes.size(); ++i) {
        const u64 ti = math::mul_mod(j.residues[i][c], weights[i], j.source_primes[i]);
        acc = acc.add(terms[i].mul_u64(ti));
      }
      while (acc >= m) acc = acc.sub(m);
      limb[c] = acc.mod_u64(j.prime);
    }
    out.outputs.push_back(std::move(limb));
  }
  return out;
}

std::unique_ptr<backend> make_backend(const runtime_options& opts) {
  switch (opts.backend) {
    case backend_kind::sram:
      return std::make_unique<sram_backend>(opts);
    case backend_kind::cpu:
      return std::make_unique<cpu_backend>(opts);
    case backend_kind::reference:
      return std::make_unique<reference_backend>(opts);
  }
  throw std::logic_error("make_backend: unknown backend kind");
}

}  // namespace bpntt::runtime
