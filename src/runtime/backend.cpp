#include "runtime/backend.h"

#include <stdexcept>
#include <string>

#include "nttmath/modarith.h"
#include "runtime/cpu_backend.h"
#include "runtime/reference_backend.h"
#include "runtime/sram_backend.h"

namespace bpntt::runtime {

batch_result backend::run_rescale(const std::vector<rns_rescale_job>& jobs,
                                  const dispatch_hints&) {
  batch_result out;
  out.outputs.reserve(jobs.size());
  out.waves = jobs.empty() ? 0 : 1;
  for (const rns_rescale_job& j : jobs) {
    // Like the inverse guard below, a length mismatch here means the
    // caller bypassed submit-side validation; refuse loudly instead of
    // reading past the dropped-residue vector.
    if (j.dropped.size() != j.x.size()) {
      throw std::logic_error("runtime: rescale job carries " + std::to_string(j.x.size()) +
                             " limb residues but " + std::to_string(j.dropped.size()) +
                             " dropped residues");
    }
    // q_drop is coprime to every kept limb (the chain is pairwise-coprime
    // primes), so the inverse exists; a zero inverse here means the caller
    // bypassed submit-side validation.
    const u64 inv = math::inv_mod(j.drop_prime % j.prime, j.prime);
    if (inv == 0) {
      throw std::logic_error("runtime: rescale drop prime " + std::to_string(j.drop_prime) +
                             " is not invertible mod limb prime " + std::to_string(j.prime));
    }
    std::vector<u64> limb(j.x.size());
    for (std::size_t i = 0; i < j.x.size(); ++i) {
      const u64 r = j.dropped[i];
      // floor((x - r) / q_drop) mod q_i, then +1 when the dropped residue
      // rounds the quotient up (2r > q_drop; q_drop is odd, so never ==).
      const u64 floor_term =
          math::mul_mod(math::sub_mod(j.x[i], r % j.prime, j.prime), inv, j.prime);
      limb[i] = r > j.drop_prime / 2 ? math::add_mod(floor_term, 1 % j.prime, j.prime)
                                     : floor_term;
    }
    out.outputs.push_back(std::move(limb));
  }
  return out;
}

std::unique_ptr<backend> make_backend(const runtime_options& opts) {
  switch (opts.backend) {
    case backend_kind::sram:
      return std::make_unique<sram_backend>(opts);
    case backend_kind::cpu:
      return std::make_unique<cpu_backend>(opts);
    case backend_kind::reference:
      return std::make_unique<reference_backend>(opts);
  }
  throw std::logic_error("make_backend: unknown backend kind");
}

}  // namespace bpntt::runtime
