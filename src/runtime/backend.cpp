#include "runtime/backend.h"

#include <stdexcept>

#include "runtime/cpu_backend.h"
#include "runtime/reference_backend.h"
#include "runtime/sram_backend.h"

namespace bpntt::runtime {

std::unique_ptr<backend> make_backend(const runtime_options& opts) {
  switch (opts.backend) {
    case backend_kind::sram:
      return std::make_unique<sram_backend>(opts);
    case backend_kind::cpu:
      return std::make_unique<cpu_backend>(opts);
    case backend_kind::reference:
      return std::make_unique<reference_backend>(opts);
  }
  throw std::logic_error("make_backend: unknown backend kind");
}

}  // namespace bpntt::runtime
