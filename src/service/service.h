// bpntt::service — the multi-tenant front door over the runtime.
//
//   service::service svc(runtime::runtime_options()
//                            .with_ring(256, 7681, 14)
//                            .with_topology(4, 1, 4)
//                            .with_schedule(runtime::schedule_policy::edf,
//                                           /*aging_limit=*/8));
//   auto fast = svc.open_session({.priority = 10, .deadline_cycles = 50'000});
//   auto bulk = svc.open_session({.max_queued = 128});
//   // ...any number of application threads, concurrently:
//   auto t = fast.submit(runtime::ntt_job{.coeffs = p});  // lock-free admission
//   auto r = t.get();                                     // blocks for the result
//
// A runtime::context is a single-client API: one thread submits, flushes
// and waits.  The service wraps one context and makes it a service: any
// number of client threads submit typed jobs through session handles; a
// bounded lock-free MPSC ring (mpsc_queue.h) carries the submissions to
// one dedicated *drainer* thread, which is the context's single client —
// it maps sessions onto pooled context streams, batches each session's
// jobs into dispatch groups, flushes, harvests completions and fulfills
// tickets.  Client threads never touch the context's scheduler lock.
//
// Sessions are tenants: each carries a priority, an optional deadline
// budget (per dispatch group, on the virtual timeline), an optional RNS
// limb ring override, and admission caps.  Admission control is enforced
// at submit(): a session past its queued or in-flight cap — or a full
// submission ring, or a closed session/service — rejects with a typed
// admission_error instead of queueing unboundedly.  Rejection is the
// backpressure signal; nothing blocks.
//
// Ready-queue ordering among contending tenants is the wrapped context's
// schedule_policy: priority (default) or EDF with priority aging — pass
// the policy in the runtime_options.  Completion latency (submit() to
// harvest, wall clock) lands in fixed-bucket histograms (histogram.h),
// per session and service-wide; stats() is safe from any thread.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <variant>
#include <vector>

#include "runtime/context.h"
#include "service/mpsc_queue.h"
#include "telemetry/histogram.h"
#include "telemetry/metrics.h"

namespace bpntt::service {

using runtime::u64;
// The latency histogram lives in telemetry/ (shared with the metrics
// registry); the service layer keeps its historical unqualified spelling.
using latency_histogram = telemetry::latency_histogram;

class service;

// Why an admission was refused.  queue_full is global backpressure (the
// MPSC ring is at capacity); session_backlog and session_in_flight are the
// per-tenant caps; closed covers submitting on a closed session or a
// stopping service.
enum class admission_reason { queue_full, session_backlog, session_in_flight, closed };

[[nodiscard]] const char* to_string(admission_reason r) noexcept;

class admission_error : public std::runtime_error {
 public:
  admission_error(admission_reason r, const std::string& what)
      : std::runtime_error("service: " + what), reason_(r) {}
  [[nodiscard]] admission_reason reason() const noexcept { return reason_; }

 private:
  admission_reason reason_;
};

// Per-tenant policy, fixed at open_session().
struct session_options {
  // Scheduling policy of the tenant's stream (see stream_options).
  int priority = 0;
  // Completion budget per dispatch group on the virtual timeline; 0 =
  // none.  Under schedule_policy::edf this is also the ordering key.
  u64 deadline_cycles = 0;
  // Non-zero: an RNS limb tenant — every job runs at this ring modulus
  // (validated when the drainer opens the tenant's stream).
  u64 ring_q = 0;
  // Opt this tenant out of cross-stream batching (see
  // stream_options::no_merge): its dispatch groups never share a backend
  // dispatch with another tenant's.  Irrelevant unless the wrapped context
  // was built with runtime_options::merge_streams.
  bool no_merge = false;
  // Preemptive-yield budget (see stream_options::chunk_budget): this
  // tenant's groups dispatch at most this many jobs per chunk and offer
  // their banks to earlier-ordered tenants between chunks.  0 = unbounded.
  u64 chunk_budget = 0;
  // Admission caps: jobs admitted but not yet dispatched to the backend
  // (backlog), and dispatched but not completed (in flight).  Submissions
  // past either cap reject with admission_error.  Both must be >= 1.
  std::size_t max_queued = 256;
  std::size_t max_in_flight = 256;
};

struct service_options {
  // Slots in the lock-free submission ring (rounded up to a power of two).
  // A full ring rejects with admission_reason::queue_full.
  std::size_t queue_capacity = 1024;
  // Parked-stream cap of the stream pool: streams released by closed
  // sessions are kept for reuse by policy-compatible future sessions;
  // parked streams beyond this limit are closed instead.
  std::size_t stream_pool_limit = 8;
};

// Counter snapshot of one tenant (or, for service::stats(), the whole
// service).  Latency quantiles are bucket upper bounds of the fixed-bucket
// histogram — "p99 <= p99_ns" at ~25% bucket resolution; miss rate is
// deadline misses over completions.
struct service_stats {
  u64 submitted = 0;  // admission attempts
  u64 admitted = 0;   // accepted into the ring
  u64 rejected = 0;   // sum of the reject reasons below
  u64 rejected_queue_full = 0;
  u64 rejected_backlog = 0;
  u64 rejected_in_flight = 0;
  u64 rejected_closed = 0;
  u64 completed = 0;  // results delivered ok
  u64 failed = 0;     // results delivered with job_status::failed
  u64 deadline_misses = 0;
  // Point-in-time gauges (admitted-not-dispatched / dispatched-incomplete).
  u64 queued = 0;
  u64 in_flight = 0;
  u64 latency_samples = 0;
  u64 p50_ns = 0;
  u64 p95_ns = 0;
  u64 p99_ns = 0;
  u64 max_ns = 0;
  // Scheduler probes of the wrapped context (service-wide only — the
  // scheduler does not attribute merges or yields to tenants): dispatch
  // groups absorbed into another group's merged dispatch, and chunked
  // groups that yielded their banks mid-plan.  Both stay 0 per session.
  u64 groups_merged = 0;
  u64 preemption_yields = 0;

  [[nodiscard]] double deadline_miss_rate() const noexcept {
    const u64 done = completed + failed;
    return done == 0 ? 0.0 : static_cast<double>(deadline_misses) / static_cast<double>(done);
  }
};

// One job's completion handle.  get() blocks until the drainer delivers
// the result (inspect job_result::status — a backend failure is a result,
// not an exception) and consumes it; a second get() throws
// std::logic_error, as does get() on a default-constructed ticket.
class ticket {
 public:
  ticket() = default;

  [[nodiscard]] runtime::job_result get();
  // True once the result is delivered (get() will not block).
  [[nodiscard]] bool ready() const noexcept;
  [[nodiscard]] bool valid() const noexcept { return st_ != nullptr; }

 private:
  friend class service;
  struct state {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    bool claimed = false;
    runtime::job_result res;
  };
  explicit ticket(std::shared_ptr<state> st) noexcept : st_(std::move(st)) {}
  std::shared_ptr<state> st_;
};

// A tenant handle.  Lightweight view (copying shares the tenant), safe to
// use from any thread — submit() is the lock-free front door.
class session {
 public:
  session() = default;

  // Validate-light admission: enforce the caps, stamp the submission time,
  // push into the ring.  Throws admission_error on rejection; deep job
  // validation happens on the drainer (an invalid job comes back as a
  // failed result carrying the runtime's message).
  ticket submit(runtime::ntt_job j);
  ticket submit(runtime::polymul_job j);
  ticket submit(runtime::rlwe_encrypt_job j);
  // The RNS limb-tenant jobs (ring_q sessions): a modulus-switch
  // correction and a base-extension lift on the tenant's limb stream —
  // what a leveled RNS-RLWE client's relinearization traffic looks like.
  ticket submit(runtime::rns_rescale_job j);
  ticket submit(runtime::rns_base_extend_job j);

  // Stop admitting (idempotent).  Outstanding jobs still complete and
  // their tickets stay valid; the tenant's stream returns to the pool once
  // it drains.
  void close();

  [[nodiscard]] unsigned id() const noexcept { return id_; }
  [[nodiscard]] service_stats stats() const;

 private:
  friend class service;
  session(service* svc, unsigned id) noexcept : svc_(svc), id_(id) {}
  service* svc_ = nullptr;
  unsigned id_ = 0;
};

class service {
 public:
  explicit service(runtime::runtime_options ropts, service_options sopts = {});
  // Custom-backend constructor (stub backends in tests).
  service(runtime::runtime_options ropts, std::unique_ptr<runtime::backend> custom_backend,
          service_options sopts = {});
  // Closes the front door, drains everything admitted, joins the drainer.
  ~service();

  service(const service&) = delete;
  service& operator=(const service&) = delete;

  // Open a tenant.  Safe from any thread.
  [[nodiscard]] session open_session(session_options o = {});

  // Service-wide counters + latency histogram snapshot.  Safe from any
  // thread (the monitoring-thread surface, along with runtime_stats()).
  [[nodiscard]] service_stats stats() const;
  // The wrapped context's scheduler counters (thread-safe by contract).
  [[nodiscard]] runtime::scheduler_stats runtime_stats() const { return ctx_.stats(); }
  // The unified metrics registry of the wrapped context: the runtime's
  // "runtime."/"cache."/"sched." instruments plus this service's
  // "service." counters and latency/queue-wait/exec histograms.  Value
  // reads and to_json() are safe from any thread.
  [[nodiscard]] telemetry::metrics_registry& metrics() noexcept { return ctx_.metrics(); }
  [[nodiscard]] const telemetry::metrics_registry& metrics() const noexcept {
    return ctx_.metrics();
  }
  // Chrome-trace export of the wrapped context's recorder; throws
  // std::logic_error unless the runtime_options carried with_tracing().
  // Quiescent-only: call after drain().
  void export_trace(const std::string& path) const { ctx_.export_trace(path); }
  [[nodiscard]] runtime::context::trace_probe trace_stats() const noexcept {
    return ctx_.trace_stats();
  }
  // Open context streams (default stream + live tenants + parked pool).
  [[nodiscard]] std::size_t open_streams() const noexcept { return ctx_.open_streams(); }
  // Streams currently parked in the reuse pool.
  [[nodiscard]] std::size_t pooled_streams() const noexcept {
    return pooled_.load(std::memory_order_acquire);
  }

  // Block until every job admitted so far has completed.
  void drain();

 private:
  friend class session;

  using service_job =
      std::variant<runtime::ntt_job, runtime::polymul_job, runtime::rlwe_encrypt_job,
                   runtime::rns_rescale_job, runtime::rns_base_extend_job>;

  struct session_state;

  struct submission {
    std::shared_ptr<session_state> sess;
    std::shared_ptr<ticket::state> st;
    service_job job;
    std::chrono::steady_clock::time_point t_submit;
  };

  // Shared tenant state.  Client threads touch the atomics and counters;
  // the drainer owns the stream fields.
  struct session_state {
    session_options opts;
    std::atomic<bool> closed{false};
    std::atomic<std::size_t> queued{0};     // admitted, not yet dispatched
    std::atomic<std::size_t> in_flight{0};  // dispatched, not completed
    // Submit-side counters (atomic: any client thread).
    std::atomic<u64> submitted{0}, admitted{0};
    std::atomic<u64> rej_queue_full{0}, rej_backlog{0}, rej_in_flight{0}, rej_closed{0};
    // Completion-side state, guarded by the service's stats_mu_.
    u64 completed = 0, failed = 0, deadline_misses = 0;
    latency_histogram latency;
    // Drainer-only: the tenant's context stream, opened on first dispatch.
    runtime::stream stream;
    bool has_stream = false;
  };

  struct inflight_rec {
    std::shared_ptr<session_state> sess;
    std::shared_ptr<ticket::state> st;
    std::chrono::steady_clock::time_point t_submit;
  };

  // A parked stream a future policy-compatible session can reuse.  The
  // compatibility key is every option that shapes the stream's scheduling
  // behaviour — a stream opened for a no-merge or chunk-budgeted tenant
  // must not leak those semantics to a tenant that did not ask for them.
  struct pooled_stream {
    int priority;
    u64 deadline_cycles;
    u64 ring_q;
    bool no_merge;
    u64 chunk_budget;
    runtime::stream stream;
  };

  ticket admit(unsigned sid, service_job j);
  void register_metrics();
  [[nodiscard]] std::shared_ptr<session_state> session_of(unsigned sid) const;
  void close_session(unsigned sid);
  [[nodiscard]] service_stats session_stats(unsigned sid) const;

  void drain_loop();
  // Dispatch one popped submission onto its tenant's stream (drainer).
  // Returns true if a job reached a stream (a flush is owed).
  bool dispatch(submission&& s, std::map<runtime::job_id, inflight_rec>& inflight);
  // Deliver one result: record stats and latency, fulfill the ticket.
  void deliver(session_state& ss, const std::shared_ptr<ticket::state>& st,
               std::chrono::steady_clock::time_point t_submit, runtime::job_result&& r);
  void ensure_stream(const std::shared_ptr<session_state>& sess);
  void retire_idle_streams();

  service_options sopts_;
  runtime::context ctx_;  // the drainer is this context's single client
  mpsc_queue<submission> queue_;

  // Tenant registry (any thread opens/looks up sessions).
  mutable std::mutex sessions_mu_;
  std::map<unsigned, std::shared_ptr<session_state>> sessions_;
  unsigned next_session_ = 1;

  // Service-wide instruments, registered under "service." in the wrapped
  // context's metrics registry (register_metrics(), called by both ctors
  // before the drainer starts).  Counter updates are lock-free from any
  // client thread; histogram records take the cell's own mutex.  The
  // registry owns the cells — these are stable references, so stats() and
  // metrics().to_json() read the very counters the hot path bumps.
  struct metric_refs {
    telemetry::counter* submitted = nullptr;
    telemetry::counter* admitted = nullptr;
    telemetry::counter* rej_queue_full = nullptr;
    telemetry::counter* rej_backlog = nullptr;
    telemetry::counter* rej_in_flight = nullptr;
    telemetry::counter* rej_closed = nullptr;
    telemetry::counter* completed = nullptr;
    telemetry::counter* failed = nullptr;
    telemetry::counter* deadline_misses = nullptr;
    telemetry::histogram_cell* latency_ns = nullptr;     // submit -> harvest, wall clock
    telemetry::histogram_cell* queue_wait_ns = nullptr;  // submit -> stream dispatch
    telemetry::histogram_cell* exec_cycles = nullptr;    // backend wall_cycles per job
  };
  metric_refs m_;

  // Per-session completion-side state (session_state histograms and
  // misses) stays under stats_mu_; the service-wide equivalents moved
  // into the registry above.
  mutable std::mutex stats_mu_;
  std::condition_variable drained_cv_;
  std::atomic<u64> outstanding_{0};  // admitted - delivered

  // Drainer wakeup: producers notify only when the drainer declared
  // itself idle, so the submit hot path stays lock-free.
  std::mutex wake_mu_;
  std::condition_variable wake_cv_;
  std::atomic<bool> drainer_idle_{false};

  std::atomic<bool> closed_{false};    // front door
  std::atomic<bool> stopping_{false};  // drainer exit once drained
  // Drainer-only: sessions currently holding a stream, and the parked pool.
  std::vector<std::shared_ptr<session_state>> streamed_sessions_;
  std::vector<pooled_stream> stream_pool_;
  std::atomic<std::size_t> pooled_{0};  // stream_pool_.size() gauge for observers
  std::thread drainer_;  // last member: joined by ~service before ctx_ dies
};

}  // namespace bpntt::service
