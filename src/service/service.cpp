#include "service/service.h"

#include <algorithm>
#include <utility>

#include "telemetry/trace.h"

namespace bpntt::service {

using std::chrono::steady_clock;

const char* to_string(admission_reason r) noexcept {
  switch (r) {
    case admission_reason::queue_full:
      return "queue_full";
    case admission_reason::session_backlog:
      return "session_backlog";
    case admission_reason::session_in_flight:
      return "session_in_flight";
    case admission_reason::closed:
      return "closed";
  }
  return "?";
}

// ---- ticket ----------------------------------------------------------------

runtime::job_result ticket::get() {
  if (!st_) {
    throw std::logic_error("service: ticket is empty (default-constructed)");
  }
  std::unique_lock<std::mutex> lk(st_->mu);
  st_->cv.wait(lk, [&] { return st_->done; });
  if (st_->claimed) {
    throw std::logic_error("service: ticket result already claimed");
  }
  st_->claimed = true;
  return std::move(st_->res);
}

bool ticket::ready() const noexcept {
  if (!st_) return false;
  std::lock_guard<std::mutex> lk(st_->mu);
  return st_->done;
}

// ---- session handle --------------------------------------------------------

ticket session::submit(runtime::ntt_job j) {
  if (svc_ == nullptr) throw std::logic_error("service: session handle is not bound");
  return svc_->admit(id_, service::service_job(std::move(j)));
}
ticket session::submit(runtime::polymul_job j) {
  if (svc_ == nullptr) throw std::logic_error("service: session handle is not bound");
  return svc_->admit(id_, service::service_job(std::move(j)));
}
ticket session::submit(runtime::rlwe_encrypt_job j) {
  if (svc_ == nullptr) throw std::logic_error("service: session handle is not bound");
  return svc_->admit(id_, service::service_job(std::move(j)));
}
ticket session::submit(runtime::rns_rescale_job j) {
  if (svc_ == nullptr) throw std::logic_error("service: session handle is not bound");
  return svc_->admit(id_, service::service_job(std::move(j)));
}
ticket session::submit(runtime::rns_base_extend_job j) {
  if (svc_ == nullptr) throw std::logic_error("service: session handle is not bound");
  return svc_->admit(id_, service::service_job(std::move(j)));
}
void session::close() {
  if (svc_ == nullptr) throw std::logic_error("service: session handle is not bound");
  svc_->close_session(id_);
}
service_stats session::stats() const {
  if (svc_ == nullptr) throw std::logic_error("service: session handle is not bound");
  return svc_->session_stats(id_);
}

// ---- service lifecycle -----------------------------------------------------

namespace {

std::size_t checked_queue_capacity(const service_options& sopts) {
  if (sopts.queue_capacity == 0) {
    throw std::invalid_argument("service: queue_capacity must be >= 1");
  }
  return sopts.queue_capacity;
}

}  // namespace

service::service(runtime::runtime_options ropts, service_options sopts)
    : sopts_(sopts), ctx_(std::move(ropts)), queue_(checked_queue_capacity(sopts)) {
  register_metrics();
  drainer_ = std::thread([this] { drain_loop(); });
}

service::service(runtime::runtime_options ropts,
                 std::unique_ptr<runtime::backend> custom_backend, service_options sopts)
    : sopts_(sopts),
      ctx_(std::move(ropts), std::move(custom_backend)),
      queue_(checked_queue_capacity(sopts)) {
  register_metrics();
  drainer_ = std::thread([this] { drain_loop(); });
}

void service::register_metrics() {
  auto& reg = ctx_.metrics();
  m_.submitted = &reg.make_counter("service.submitted");
  m_.admitted = &reg.make_counter("service.admitted");
  m_.rej_queue_full = &reg.make_counter("service.rejected_queue_full");
  m_.rej_backlog = &reg.make_counter("service.rejected_backlog");
  m_.rej_in_flight = &reg.make_counter("service.rejected_in_flight");
  m_.rej_closed = &reg.make_counter("service.rejected_closed");
  m_.completed = &reg.make_counter("service.completed");
  m_.failed = &reg.make_counter("service.failed");
  m_.deadline_misses = &reg.make_counter("service.deadline_misses");
  m_.latency_ns = &reg.make_histogram("service.latency_ns");
  m_.queue_wait_ns = &reg.make_histogram("service.queue_wait_ns");
  m_.exec_cycles = &reg.make_histogram("service.exec_cycles");
}

service::~service() {
  closed_.store(true, std::memory_order_release);
  stopping_.store(true, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lk(wake_mu_);
    wake_cv_.notify_all();
  }
  if (drainer_.joinable()) drainer_.join();
}

session service::open_session(session_options o) {
  if (o.max_queued == 0 || o.max_in_flight == 0) {
    throw std::invalid_argument(
        "service: session caps max_queued and max_in_flight must be >= 1");
  }
  if (closed_.load(std::memory_order_acquire)) {
    throw admission_error(admission_reason::closed, "service is shutting down");
  }
  auto ss = std::make_shared<session_state>();
  ss->opts = o;
  std::lock_guard<std::mutex> lk(sessions_mu_);
  const unsigned sid = next_session_++;
  sessions_.emplace(sid, std::move(ss));
  return session(this, sid);
}

std::shared_ptr<service::session_state> service::session_of(unsigned sid) const {
  std::lock_guard<std::mutex> lk(sessions_mu_);
  const auto it = sessions_.find(sid);
  if (it == sessions_.end()) {
    throw std::logic_error("service: session handle is foreign to this service");
  }
  return it->second;
}

void service::close_session(unsigned sid) {
  session_of(sid)->closed.store(true, std::memory_order_release);
  // Nudge the drainer so the tenant's stream retires promptly even when
  // the service is otherwise idle.
  std::lock_guard<std::mutex> lk(wake_mu_);
  wake_cv_.notify_all();
}

// ---- admission (client threads, lock-free) ---------------------------------

ticket service::admit(unsigned sid, service_job j) {
  auto sess = session_of(sid);
  sess->submitted.fetch_add(1, std::memory_order_relaxed);
  m_.submitted->add();

  const auto reject = [&](admission_reason r, std::atomic<u64>& session_ctr,
                          telemetry::counter& global_ctr, const std::string& what) -> ticket {
    session_ctr.fetch_add(1, std::memory_order_relaxed);
    global_ctr.add();
    throw admission_error(r, what);
  };

  if (closed_.load(std::memory_order_acquire) || sess->closed.load(std::memory_order_acquire)) {
    return reject(admission_reason::closed, sess->rej_closed, *m_.rej_closed,
                  "session " + std::to_string(sid) + " is closed");
  }
  // In-flight cap: checked before claiming a backlog slot so a tenant
  // saturating the backend is pushed back immediately.  Both caps are
  // enforced with atomics — concurrent submitters may transiently observe
  // the cap a few entries late, never unboundedly.
  if (sess->in_flight.load(std::memory_order_acquire) >= sess->opts.max_in_flight) {
    return reject(admission_reason::session_in_flight, sess->rej_in_flight, *m_.rej_in_flight,
                  "session " + std::to_string(sid) + " is at its in-flight cap (" +
                      std::to_string(sess->opts.max_in_flight) + ")");
  }
  if (sess->queued.fetch_add(1, std::memory_order_acq_rel) + 1 > sess->opts.max_queued) {
    sess->queued.fetch_sub(1, std::memory_order_acq_rel);
    return reject(admission_reason::session_backlog, sess->rej_backlog, *m_.rej_backlog,
                  "session " + std::to_string(sid) + " is at its backlog cap (" +
                      std::to_string(sess->opts.max_queued) + ")");
  }

  auto st = std::make_shared<ticket::state>();
  submission sub;
  sub.sess = sess;
  sub.st = st;
  sub.job = std::move(j);
  sub.t_submit = steady_clock::now();

  outstanding_.fetch_add(1, std::memory_order_acq_rel);
  if (!queue_.try_push(std::move(sub))) {
    outstanding_.fetch_sub(1, std::memory_order_acq_rel);
    sess->queued.fetch_sub(1, std::memory_order_acq_rel);
    return reject(admission_reason::queue_full, sess->rej_queue_full, *m_.rej_queue_full,
                  "submission ring is full (" + std::to_string(queue_.capacity()) + " slots)");
  }
  sess->admitted.fetch_add(1, std::memory_order_relaxed);
  m_.admitted->add();

  // Wake the drainer only when it declared itself idle — the common-case
  // submit never touches a mutex.
  if (drainer_idle_.load(std::memory_order_acquire)) {
    std::lock_guard<std::mutex> lk(wake_mu_);
    wake_cv_.notify_one();
  }
  return ticket(st);
}

// ---- drainer ---------------------------------------------------------------

void service::ensure_stream(const std::shared_ptr<session_state>& sess) {
  if (sess->has_stream) return;
  const auto& o = sess->opts;
  // Reuse a parked policy-compatible stream before opening a fresh one.
  const auto it = std::find_if(stream_pool_.begin(), stream_pool_.end(),
                               [&](const pooled_stream& p) {
                                 return p.priority == o.priority &&
                                        p.deadline_cycles == o.deadline_cycles &&
                                        p.ring_q == o.ring_q && p.no_merge == o.no_merge &&
                                        p.chunk_budget == o.chunk_budget;
                               });
  if (it != stream_pool_.end()) {
    sess->stream = it->stream;
    stream_pool_.erase(it);
    pooled_.store(stream_pool_.size(), std::memory_order_release);
  } else {
    runtime::stream_options so;
    so.priority = o.priority;
    so.deadline_cycles = o.deadline_cycles;
    so.ring_q = o.ring_q;
    so.no_merge = o.no_merge;
    so.chunk_budget = o.chunk_budget;
    sess->stream = ctx_.stream(std::move(so));
  }
  sess->has_stream = true;
  streamed_sessions_.push_back(sess);
}

void service::retire_idle_streams() {
  for (auto it = streamed_sessions_.begin(); it != streamed_sessions_.end();) {
    session_state& ss = **it;
    const bool idle = ss.closed.load(std::memory_order_acquire) &&
                      ss.queued.load(std::memory_order_acquire) == 0 &&
                      ss.in_flight.load(std::memory_order_acquire) == 0;
    if (!idle) {
      ++it;
      continue;
    }
    if (stream_pool_.size() < sopts_.stream_pool_limit) {
      stream_pool_.push_back({ss.opts.priority, ss.opts.deadline_cycles, ss.opts.ring_q,
                              ss.opts.no_merge, ss.opts.chunk_budget, ss.stream});
      pooled_.store(stream_pool_.size(), std::memory_order_release);
    } else {
      ss.stream.close();
    }
    ss.has_stream = false;
    it = streamed_sessions_.erase(it);
  }
}

bool service::dispatch(submission&& s, std::map<runtime::job_id, inflight_rec>& inflight) {
  auto sess = std::move(s.sess);
  runtime::job_id id = 0;
  try {
    ensure_stream(sess);
    id = std::visit([&](auto&& j) { return sess->stream.submit(std::move(j)); },
                    std::move(s.job));
  } catch (const std::exception& e) {
    // Deep validation failed (bad coefficients, capability mismatch, an
    // R-LWE job on a limb ring...): the admission already happened, so the
    // rejection is delivered as a failed result, not an exception on the
    // submitting thread.
    sess->queued.fetch_sub(1, std::memory_order_acq_rel);
    runtime::job_result r;
    r.status = runtime::job_status::failed;
    r.error = e.what();
    deliver(*sess, s.st, s.t_submit, std::move(r));
    return false;
  }
  sess->queued.fetch_sub(1, std::memory_order_acq_rel);
  sess->in_flight.fetch_add(1, std::memory_order_acq_rel);
  // Queue wait: admission to stream dispatch — the ring + drainer share of
  // end-to-end latency, the number a saturated service inflates first.
  const auto wait_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                           steady_clock::now() - s.t_submit)
                           .count();
  m_.queue_wait_ns->record(static_cast<u64>(wait_ns));
  if (auto* rec = ctx_.tracer()) {
    rec->record({.ts = rec->watermark(),
                 .dur = 0,
                 .a = static_cast<u64>(wait_ns),
                 .track = telemetry::kTrackService,
                 .arg = 0,
                 .op = telemetry::trace_op::ticket_admit});
  }
  inflight.emplace(id, inflight_rec{std::move(sess), std::move(s.st), s.t_submit});
  return true;
}

void service::deliver(session_state& ss, const std::shared_ptr<ticket::state>& st,
                      steady_clock::time_point t_submit, runtime::job_result&& r) {
  const auto lat = std::chrono::duration_cast<std::chrono::nanoseconds>(
                       steady_clock::now() - t_submit)
                       .count();
  const bool ok = r.status == runtime::job_status::ok;
  const bool missed = r.deadline_missed;
  // Service-wide outcome counters and distributions live in the registry;
  // only the per-session mirrors still ride stats_mu_.
  m_.latency_ns->record(static_cast<u64>(lat));
  m_.exec_cycles->record(r.wall_cycles);
  (ok ? m_.completed : m_.failed)->add();
  if (missed) m_.deadline_misses->add();
  if (auto* rec = ctx_.tracer()) {
    rec->record({.ts = rec->watermark(),
                 .dur = 0,
                 .a = static_cast<u64>(lat),
                 .track = telemetry::kTrackService,
                 .arg = ok ? 0u : 1u,
                 .op = telemetry::trace_op::ticket_complete});
  }
  {
    std::lock_guard<std::mutex> lk(stats_mu_);
    ss.latency.record_ns(static_cast<u64>(lat));
    if (ok) {
      ++ss.completed;
    } else {
      ++ss.failed;
    }
    if (missed) ++ss.deadline_misses;
    outstanding_.fetch_sub(1, std::memory_order_acq_rel);
    drained_cv_.notify_all();
  }
  {
    std::lock_guard<std::mutex> lk(st->mu);
    st->res = std::move(r);
    st->done = true;
  }
  st->cv.notify_all();
}

void service::drain_loop() {
  std::map<runtime::job_id, inflight_rec> inflight;
  for (;;) {
    bool progress = false;
    bool flush_needed = false;
    submission s;
    // Drain the ring: every popped submission lands on its tenant's
    // stream, so one flush below turns this round's submissions into one
    // dispatch group per tenant — the batching the scheduler feeds on.
    while (queue_.try_pop(s)) {
      progress = true;
      flush_needed = dispatch(std::move(s), inflight) || flush_needed;
    }
    if (flush_needed) ctx_.flush();

    // Harvest completions and fulfill tickets.
    for (auto it = inflight.begin(); it != inflight.end();) {
      if (auto r = ctx_.try_wait(it->first)) {
        inflight_rec rec = std::move(it->second);
        it = inflight.erase(it);
        // Drop the gauge before the ticket resolves, so a client that saw
        // get() return never observes itself still counted in flight.
        rec.sess->in_flight.fetch_sub(1, std::memory_order_acq_rel);
        deliver(*rec.sess, rec.st, rec.t_submit, std::move(*r));
        progress = true;
      } else {
        ++it;
      }
    }

    retire_idle_streams();
    if (progress) continue;
    if (stopping_.load(std::memory_order_acquire) && queue_.size_approx() == 0 &&
        inflight.empty()) {
      break;
    }
    // Idle: sleep until a producer wakes us or the poll interval lapses
    // (in-flight work completes on pool threads without a notification, so
    // the timeout doubles as the completion poll).
    std::unique_lock<std::mutex> lk(wake_mu_);
    drainer_idle_.store(true, std::memory_order_release);
    wake_cv_.wait_for(lk, inflight.empty() ? std::chrono::microseconds(500)
                                           : std::chrono::microseconds(50));
    drainer_idle_.store(false, std::memory_order_release);
  }
}

// ---- stats -----------------------------------------------------------------

namespace {

void fill_quantiles(service_stats& s, const latency_histogram& h) {
  s.latency_samples = h.count();
  s.p50_ns = h.quantile_ns(0.50);
  s.p95_ns = h.quantile_ns(0.95);
  s.p99_ns = h.quantile_ns(0.99);
  s.max_ns = h.max_ns();
}

}  // namespace

service_stats service::stats() const {
  service_stats s;
  // Outcome counters first, `submitted` last: each admission bumps
  // submitted before any outcome, so a concurrent snapshot never shows
  // more outcomes than submissions.  All reads come straight from the
  // registry instruments the hot paths update — nothing is mirrored.
  s.admitted = m_.admitted->value();
  s.rejected_queue_full = m_.rej_queue_full->value();
  s.rejected_backlog = m_.rej_backlog->value();
  s.rejected_in_flight = m_.rej_in_flight->value();
  s.rejected_closed = m_.rej_closed->value();
  s.completed = m_.completed->value();
  s.failed = m_.failed->value();
  s.deadline_misses = m_.deadline_misses->value();
  s.submitted = m_.submitted->value();
  s.rejected = s.rejected_queue_full + s.rejected_backlog + s.rejected_in_flight +
               s.rejected_closed;
  {
    std::lock_guard<std::mutex> lk(sessions_mu_);
    for (const auto& [sid, sess] : sessions_) {
      s.queued += sess->queued.load(std::memory_order_acquire);
      s.in_flight += sess->in_flight.load(std::memory_order_acquire);
    }
  }
  {
    const runtime::scheduler_stats rs = ctx_.stats();
    s.groups_merged = rs.groups_merged;
    s.preemption_yields = rs.preemption_yields;
  }
  fill_quantiles(s, m_.latency_ns->snapshot());
  return s;
}

service_stats service::session_stats(unsigned sid) const {
  const auto sess = session_of(sid);
  service_stats s;
  s.admitted = sess->admitted.load(std::memory_order_relaxed);
  s.rejected_queue_full = sess->rej_queue_full.load(std::memory_order_relaxed);
  s.rejected_backlog = sess->rej_backlog.load(std::memory_order_relaxed);
  s.rejected_in_flight = sess->rej_in_flight.load(std::memory_order_relaxed);
  s.rejected_closed = sess->rej_closed.load(std::memory_order_relaxed);
  s.submitted = sess->submitted.load(std::memory_order_acquire);
  s.rejected = s.rejected_queue_full + s.rejected_backlog + s.rejected_in_flight +
               s.rejected_closed;
  s.queued = sess->queued.load(std::memory_order_acquire);
  s.in_flight = sess->in_flight.load(std::memory_order_acquire);
  std::lock_guard<std::mutex> lk(stats_mu_);
  s.completed = sess->completed;
  s.failed = sess->failed;
  s.deadline_misses = sess->deadline_misses;
  fill_quantiles(s, sess->latency);
  return s;
}

void service::drain() {
  std::unique_lock<std::mutex> lk(stats_mu_);
  drained_cv_.wait(lk, [&] { return outstanding_.load(std::memory_order_acquire) == 0; });
}

}  // namespace bpntt::service
