// Bounded lock-free multi-producer / single-consumer queue — the service
// layer's submission ring.
//
// Any number of client threads push typed submissions concurrently with a
// CAS on the tail cursor; exactly one consumer (the service's drainer
// thread) pops from the head with plain loads and stores.  No mutex is
// taken on either path, so a tenant submitting a job never contends on the
// runtime context's scheduler lock — admission is an atomic increment and
// a ring slot, nothing more.
//
// The design is the classic bounded ring of cells with per-cell sequence
// counters (Vyukov): cell i carries seq = i when empty and seq = i + 1
// when full, both advancing by capacity per lap.  A producer claims slot
// `pos` by CAS-ing tail from pos to pos + 1 once it has observed
// seq == pos, then moves its payload in and publishes with a release store
// of seq = pos + 1.  The consumer reads head (it is the only writer of
// head, so no CAS), waits for seq == head + 1, moves the payload out and
// recycles the cell with seq = head + capacity.  Capacity is rounded up to
// a power of two so the lap arithmetic is a mask.
//
// try_push fails (returns false) when the ring is full — the service turns
// that into a typed admission_error instead of blocking a client thread or
// growing without bound.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <stdexcept>
#include <utility>
#include <vector>

namespace bpntt::service {

template <typename T>
class mpsc_queue {
 public:
  // Capacity is rounded up to the next power of two, with a floor of two
  // cells: a one-cell ring is degenerate — the "full" marker seq = pos + 1
  // and the next lap's "empty" marker seq = pos + capacity coincide, so a
  // producer could claim (and overwrite) the occupied slot.
  explicit mpsc_queue(std::size_t capacity) {
    if (capacity == 0) {
      throw std::invalid_argument("mpsc_queue: capacity must be >= 1");
    }
    std::size_t cap = 2;
    while (cap < capacity) cap <<= 1;
    mask_ = cap - 1;
    cells_ = std::make_unique<cell[]>(cap);
    for (std::size_t i = 0; i < cap; ++i) {
      cells_[i].seq.store(i, std::memory_order_relaxed);
    }
  }

  mpsc_queue(const mpsc_queue&) = delete;
  mpsc_queue& operator=(const mpsc_queue&) = delete;

  [[nodiscard]] std::size_t capacity() const noexcept { return mask_ + 1; }

  // Multi-producer enqueue: true on success, false when the ring is full.
  // Lock-free: a producer either claims a slot with one successful CAS or
  // observes a full ring and returns.
  bool try_push(T&& v) {
    std::size_t pos = tail_.load(std::memory_order_relaxed);
    for (;;) {
      cell& c = cells_[pos & mask_];
      const std::size_t seq = c.seq.load(std::memory_order_acquire);
      if (seq == pos) {
        // Slot is empty for this lap; try to claim it.
        if (tail_.compare_exchange_weak(pos, pos + 1, std::memory_order_relaxed)) {
          c.value = std::move(v);
          c.seq.store(pos + 1, std::memory_order_release);
          return true;
        }
        // CAS failure reloaded pos; retry with the fresh tail.
      } else if (seq < pos) {
        // The cell still holds last lap's value: the ring is full.  Re-read
        // the tail once — if it moved we raced a producer, not a full ring.
        const std::size_t cur = tail_.load(std::memory_order_relaxed);
        if (cur == pos) return false;
        pos = cur;
      } else {
        // Another producer claimed this slot first; chase the tail.
        pos = tail_.load(std::memory_order_relaxed);
      }
    }
  }

  // Single-consumer dequeue: true with the popped value, false when empty.
  // Must only ever be called from one thread at a time.
  bool try_pop(T& out) {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    cell& c = cells_[head & mask_];
    const std::size_t seq = c.seq.load(std::memory_order_acquire);
    if (seq != head + 1) return false;  // slot not yet published
    out = std::move(c.value);
    c.value = T{};  // drop payload-owned memory now, not a lap later
    c.seq.store(head + capacity(), std::memory_order_release);
    head_.store(head + 1, std::memory_order_relaxed);
    return true;
  }

  // Approximate occupancy (producers race it; exact only when quiescent).
  [[nodiscard]] std::size_t size_approx() const noexcept {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    const std::size_t head = head_.load(std::memory_order_relaxed);
    return tail >= head ? tail - head : 0;
  }

 private:
  // A fixed 64 sidesteps gcc's ABI warning on
  // std::hardware_destructive_interference_size; every target this builds
  // on has 64-byte destructive interference.
  static constexpr std::size_t kCacheLine = 64;

  struct cell {
    std::atomic<std::size_t> seq{0};
    T value{};
  };

  std::size_t mask_ = 0;
  std::unique_ptr<cell[]> cells_;
  // Producers CAS the tail; only the consumer touches the head.  Separate
  // cache lines keep producer traffic off the consumer's line.
  alignas(kCacheLine) std::atomic<std::size_t> tail_{0};
  alignas(kCacheLine) std::atomic<std::size_t> head_{0};
};

}  // namespace bpntt::service
