// Compatibility alias: the latency histogram moved to src/telemetry/ so
// the service layer and the telemetry registry share one implementation.
// Existing service call sites (and tests/service/histogram_test.cpp) keep
// compiling against bpntt::service::latency_histogram.
#pragma once

#include "telemetry/histogram.h"

namespace bpntt::service {

using latency_histogram = telemetry::latency_histogram;

}  // namespace bpntt::service
