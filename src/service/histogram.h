// DEPRECATED compatibility alias: the latency histogram lives in
// src/telemetry/histogram.h so the service layer and the telemetry registry
// share one implementation.  Include "telemetry/histogram.h" and spell the
// type telemetry::latency_histogram (or alias it locally, as service.h
// does).  This forwarding header will be removed once no call site names
// it; no in-tree code includes it anymore.
#pragma once

#pragma message( \
    "service/histogram.h is deprecated - include telemetry/histogram.h " \
    "and use bpntt::telemetry::latency_histogram")

#include "telemetry/histogram.h"

namespace bpntt::service {

using latency_histogram = telemetry::latency_histogram;

}  // namespace bpntt::service
