// Microcode compiler: lowers NTT kernels onto the BP-NTT micro-ISA.
//
// Twiddle-factor bits are baked into the command stream at compile time —
// the paper's "implicit compare" (line 5 of Algorithm 2): an iteration of
// the Montgomery loop whose multiplier bit is 0 simply emits no P += B
// step.  Data-dependent decisions (the m = M-or-0 selection, conditional
// corrections, carry-ripple termination) are handled with the Check
// instruction's per-tile predicate latch and zero flag at run time.
//
// Building blocks and their scratch-row contracts (rows from row_layout):
//
//   modmul_const   B=row, A baked      -> (SUM, CARRY) carry-save product
//   modmul_data    A=row, B=row        -> (SUM, CARRY); uses T for B&pred
//   resolve(dst)   (SUM,CARRY) -> dst  binary value  P = Sum + 2*Carry
//   cond_sub(x)    x in [0,2M) -> canonical; clobbers C1, C2 (+SUM unfused)
//   mod_add(d,a,b) canonical add;      clobbers C1, S1, C2 (+SUM unfused)
//   mod_sub(d,a,b) canonical subtract; clobbers C1, S1, C2 (+SUM unfused)
//   ct_butterfly   CT butterfly (Algorithm 1 lines 6-8)
//   gs_butterfly   Gentleman-Sande inverse butterfly
//
// All carry-ripple loops are compiled as do-while loops with a wired-OR
// zero test and a backward branch, so executed cycle counts are
// data-dependent (the paper's latency numbers are for fixed workloads; our
// benches use fixed seeds).  compile_options selects the ablation variants
// (dual-write pair fusion, ripple check period, reduced iteration count).
#pragma once

#include "bpntt/config.h"
#include "bpntt/layout.h"
#include "bpntt/options.h"
#include "bpntt/twiddle.h"
#include "isa/program.h"

namespace bpntt::core {

class microcode_compiler {
 public:
  microcode_compiler(ntt_params params, row_layout layout, compile_options options = {});

  [[nodiscard]] const ntt_params& params() const noexcept { return params_; }
  [[nodiscard]] const row_layout& layout() const noexcept { return layout_; }
  [[nodiscard]] const compile_options& options() const noexcept { return options_; }
  // Montgomery iteration count (== r_bits of a compatible twiddle plan).
  [[nodiscard]] unsigned iterations() const noexcept { return iters_; }

  // Full kernels (coefficients at rows [base, base+n)).  In incomplete mode
  // (params().incomplete) the butterfly recursion stops at len = 2 and
  // products are finished with compile_basemul.
  [[nodiscard]] isa::program compile_forward(const twiddle_plan& plan, unsigned base = 0) const;
  [[nodiscard]] isa::program compile_inverse(const twiddle_plan& plan, unsigned base = 0) const;
  // Degree-1 base multiplications of the incomplete transform:
  //   (a[2i], a[2i+1]) *= (b[2i], b[2i+1]) mod (x^2 - gamma_i)
  // for i in [0, n/2); results land in the a region.  If scale_b, the b
  // region is lifted to the Montgomery domain in-array first.
  [[nodiscard]] isa::program compile_basemul(const twiddle_plan& plan, unsigned a_base,
                                             unsigned b_base, bool scale_b) const;
  // dst[i] = a[i] * b[i] mod q for i in [0, count); if scale_b, b is first
  // lifted to the Montgomery domain in-array (b *= R via A = R^2), so the
  // result is the plain product.
  [[nodiscard]] isa::program compile_pointwise(const twiddle_plan& plan, unsigned a_base,
                                               unsigned b_base, unsigned dst_base, u64 count,
                                               bool scale_b) const;
  // rows[base+i] = rows[base+i] * factor for a Montgomery-domain factor
  // (factor = f * R mod q computes *f).
  [[nodiscard]] isa::program compile_scale(const twiddle_plan& plan, unsigned base, u64 count,
                                           u64 factor_mont) const;

  // Single-operation programs (unit tests and microbenchmarks).
  [[nodiscard]] isa::program compile_modmul_const(const twiddle_plan& plan, unsigned b_row,
                                                  u64 a_mont, unsigned dst_row) const;
  [[nodiscard]] isa::program compile_modmul_data(unsigned a_row, unsigned b_row,
                                                 unsigned dst_row) const;
  [[nodiscard]] isa::program compile_mod_add(unsigned dst, unsigned a, unsigned b) const;
  [[nodiscard]] isa::program compile_mod_sub(unsigned dst, unsigned a, unsigned b) const;

 private:
  // One half-adder layer {AND -> c_dst, XOR -> s_dst}.  Fused: one
  // dual-write activation; unfused: two activations (c_dst must not alias
  // a source; s_dst may).
  void emit_half_add(isa::program_builder& b, std::uint16_t c_dst, std::uint16_t s_dst,
                     std::uint16_t src0, std::uint16_t src1) const;
  void emit_ripple(isa::program_builder& b, std::uint16_t sum_row, std::uint16_t carry_row,
                   bool lossless, std::uint16_t tmp_row) const;
  void emit_modmul_const_body(isa::program_builder& b, std::uint16_t b_row, u64 a_bits) const;
  void emit_modmul_data_body(isa::program_builder& b, std::uint16_t a_row,
                             std::uint16_t b_row) const;
  void emit_montgomery_halving(isa::program_builder& b) const;
  void emit_resolve(isa::program_builder& b, std::uint16_t dst) const;
  void emit_cond_sub(isa::program_builder& b, std::uint16_t x_row) const;
  void emit_mod_add(isa::program_builder& b, std::uint16_t dst, std::uint16_t a,
                    std::uint16_t src_b) const;
  void emit_mod_sub(isa::program_builder& b, std::uint16_t dst, std::uint16_t a,
                    std::uint16_t src_b) const;
  void emit_ct_butterfly(isa::program_builder& b, std::uint16_t j_row, std::uint16_t jl_row,
                         u64 zeta_mont) const;
  void emit_gs_butterfly(isa::program_builder& b, std::uint16_t j_row, std::uint16_t jl_row,
                         u64 zeta_inv_mont) const;
  void emit_scale_row(isa::program_builder& b, std::uint16_t row, u64 factor_mont) const;
  void require_compatible(const twiddle_plan& plan) const;

  ntt_params params_;
  row_layout layout_;
  compile_options options_;
  unsigned iters_ = 0;
};

}  // namespace bpntt::core
