#include "bpntt/engine.h"

#include <stdexcept>

#include "common/bitutil.h"

namespace bpntt::core {
namespace {
enum kernel_kind : int {
  k_forward = 0,
  k_inverse = 1,
  k_pointwise = 2,
  k_basemul = 3,
  k_modmul_rows = 4,
};
}

bp_ntt_engine::bp_ntt_engine(const engine_config& cfg, const ntt_params& params,
                             u64 synthetic_seed)
    : params_(params),
      layout_{cfg.data_rows},
      compiler_(params, row_layout{cfg.data_rows}, cfg.microcode) {
  cfg.validate();
  params_.validate();
  if (params_.n > cfg.data_rows) {
    throw std::invalid_argument(
        "bp_ntt_engine: polynomial exceeds data rows; use the performance model's "
        "multi-tile extrapolation for larger orders");
  }
  if (params_.k > 64) throw std::invalid_argument("bp_ntt_engine: k > 64 needs wide loads");

  sram::tile_geometry geom;
  geom.cols = cfg.cols;
  geom.tile_bits = params_.k;
  geom.validate();
  array_ = std::make_unique<sram::subarray>(layout_.total_rows(), geom, cfg.tech);

  if (params_.synthetic()) {
    plan_ = make_synthetic_plan(params_, synthetic_seed);
  } else if (params_.incomplete) {
    itables_ = std::make_unique<math::incomplete_ntt_tables>(params_.n, params_.q);
    plan_ = make_incomplete_twiddle_plan(params_, *itables_, compiler_.iterations());
  } else {
    tables_ = std::make_unique<math::ntt_tables>(params_.n, params_.q, params_.negacyclic);
    plan_ = make_twiddle_plan(params_, *tables_, compiler_.iterations());
  }
  write_constants();
}

void bp_ntt_engine::write_constants() {
  // Broadcast M, 2^k - M and the constant 1 into every tile's constant rows.
  sram::bitrow m(array_->cols());
  sram::bitrow mneg(array_->cols());
  sram::bitrow one(array_->cols());
  const auto& geom = array_->geometry();
  for (unsigned t = 0; t < geom.num_tiles(); ++t) {
    m.deposit(geom.tile_base(t), geom.tile_bits, plan_.m);
    mneg.deposit(geom.tile_base(t), geom.tile_bits, plan_.mneg);
    one.deposit(geom.tile_base(t), geom.tile_bits, 1);
  }
  array_->host_write_row(layout_.m_row(), m);
  array_->host_write_row(layout_.mneg_row(), mneg);
  array_->host_write_row(layout_.one_row(), one);
}

void bp_ntt_engine::load_polynomial(unsigned lane, std::span<const u64> coeffs) {
  if (coeffs.size() > layout_.data_rows) {
    throw std::out_of_range("bp_ntt_engine: coefficients exceed data rows");
  }
  load_polynomial(lane, coeffs, layout_.make_region(0, coeffs.size()));
}

void bp_ntt_engine::load_polynomial(unsigned lane, std::span<const u64> coeffs,
                                    const region& dst) {
  if (lane >= lanes()) throw std::out_of_range("bp_ntt_engine: lane");
  if (coeffs.size() != dst.rows()) {
    throw std::invalid_argument("bp_ntt_engine: coefficient count does not match region");
  }
  for (std::size_t i = 0; i < coeffs.size(); ++i) {
    if (!params_.synthetic() && coeffs[i] >= params_.q) {
      throw std::invalid_argument("bp_ntt_engine: coefficient not canonical");
    }
    array_->host_write_word(lane, dst.base() + static_cast<unsigned>(i), coeffs[i]);
  }
}

std::vector<u64> bp_ntt_engine::read_polynomial(unsigned lane, u64 count) {
  return read_polynomial(lane, layout_.make_region(0, count));
}

std::vector<u64> bp_ntt_engine::read_polynomial(unsigned lane, const region& src) {
  if (lane >= lanes()) throw std::out_of_range("bp_ntt_engine: lane");
  std::vector<u64> out(src.rows());
  for (u64 i = 0; i < src.rows(); ++i) {
    out[i] = array_->host_read_word(lane, src.base() + static_cast<unsigned>(i));
  }
  return out;
}

std::vector<u64> bp_ntt_engine::peek_polynomial(unsigned lane, u64 count) const {
  return peek_polynomial(lane, layout_.make_region(0, count));
}

std::vector<u64> bp_ntt_engine::peek_polynomial(unsigned lane, const region& src) const {
  if (lane >= lanes()) throw std::out_of_range("bp_ntt_engine: lane");
  std::vector<u64> out(src.rows());
  for (u64 i = 0; i < src.rows(); ++i) {
    out[i] = array_->peek_word(lane, src.base() + static_cast<unsigned>(i));
  }
  return out;
}

sram::op_stats bp_ntt_engine::execute(const isa::program& p) {
  const sram::op_stats before = array_->stats();
  exec_.run(p, *array_);
  sram::op_stats after = array_->stats();
  sram::op_stats delta;
  delta.cycles = after.cycles - before.cycles;
  delta.binary_ops = after.binary_ops - before.binary_ops;
  delta.pair_ops = after.pair_ops - before.pair_ops;
  delta.copy_ops = after.copy_ops - before.copy_ops;
  delta.shift_ops = after.shift_ops - before.shift_ops;
  delta.check_ops = after.check_ops - before.check_ops;
  delta.host_reads = after.host_reads - before.host_reads;
  delta.host_writes = after.host_writes - before.host_writes;
  delta.energy_pj = after.energy_pj - before.energy_pj;
  delta.lossless_shift_violations =
      after.lossless_shift_violations - before.lossless_shift_violations;
  return delta;
}

void bp_ntt_engine::require_poly_region(const region& r) const {
  if (r.rows() != params_.n) {
    throw std::invalid_argument("bp_ntt_engine: transform kernels need an n-row region");
  }
}

sram::op_stats bp_ntt_engine::run_forward(const region& r) {
  require_poly_region(r);
  return execute(cached({.kind = k_forward, .a = r.base()},
                        [&] { return compiler_.compile_forward(plan_, r.base()); }));
}

sram::op_stats bp_ntt_engine::run_inverse(const region& r) {
  require_poly_region(r);
  return execute(cached({.kind = k_inverse, .a = r.base()},
                        [&] { return compiler_.compile_inverse(plan_, r.base()); }));
}

sram::op_stats bp_ntt_engine::run_pointwise(const region& a, const region& b, const region& dst,
                                            bool scale_b) {
  if (a.rows() != b.rows() || a.rows() != dst.rows()) {
    throw std::invalid_argument("bp_ntt_engine: pointwise regions must be equal-sized");
  }
  return execute(cached({.kind = k_pointwise,
                         .a = a.base(),
                         .b = b.base(),
                         .dst = dst.base(),
                         .rows = a.rows(),
                         .scale_b = scale_b},
                        [&] {
                          return compiler_.compile_pointwise(plan_, a.base(), b.base(),
                                                             dst.base(), a.rows(), scale_b);
                        }));
}

sram::op_stats bp_ntt_engine::run_basemul(const region& a, const region& b, bool scale_b) {
  require_poly_region(a);
  require_poly_region(b);
  return execute(
      cached({.kind = k_basemul, .a = a.base(), .b = b.base(), .scale_b = scale_b},
             [&] { return compiler_.compile_basemul(plan_, a.base(), b.base(), scale_b); }));
}

sram::op_stats bp_ntt_engine::run_modmul_rows(const region& a, const region& b,
                                              const region& dst) {
  if (a.rows() != 1 || b.rows() != 1 || dst.rows() != 1) {
    throw std::invalid_argument("bp_ntt_engine: run_modmul_rows needs single-row regions");
  }
  return execute(
      cached({.kind = k_modmul_rows, .a = a.base(), .b = b.base(), .dst = dst.base()},
             [&] { return compiler_.compile_modmul_data(a.base(), b.base(), dst.base()); }));
}

}  // namespace bpntt::core
