// Twiddle-factor plan for the in-SRAM NTT.
//
// Algorithm 2 computes A*B*R^-1 mod M, so every constant multiplier the
// microcode bakes into the command stream is pre-scaled by R = 2^k
// ("the twiddle factors can be pre-computed by multiplying them to R in
// advance", §IV-D).  Coefficients themselves stay in the plain domain.
//
// In synthetic mode (performance sweeps on tile widths that host no real
// modulus) the plan carries pseudo-random bit patterns with the same ~0.5
// set-bit density, so cycle counts remain representative.
#pragma once

#include <vector>

#include "bpntt/config.h"
#include "nttmath/incomplete_ntt.h"
#include "nttmath/ntt.h"

namespace bpntt::core {

struct twiddle_plan {
  // Indexed like math::ntt_tables::zetas() (1..n-1): zeta * R mod q.
  std::vector<u64> zetas_mont;
  std::vector<u64> zetas_inv_mont;
  u64 n_inv_mont = 0;  // n^-1 * R mod q (inverse-NTT scaling multiplier)
  u64 r2 = 0;          // R^2 mod q (to-Montgomery multiplier for pointwise)
  u64 m = 0;           // modulus as written to the constant row
  u64 mneg = 0;        // (2^k - m) mod 2^k
  unsigned r_bits = 0; // R = 2^r_bits (== Montgomery iteration count)
  // Incomplete mode only: gamma_i * R mod q for the base multiplications.
  std::vector<u64> gammas_mont;
};

// Build the plan from golden tables (params must be non-synthetic and match
// the tables' n/q).  r_bits selects R = 2^r_bits; 0 means the tile width
// (the compile_options::reduced_iterations path passes ceil(log2 2q)).
[[nodiscard]] twiddle_plan make_twiddle_plan(const ntt_params& p, const math::ntt_tables& t,
                                             unsigned r_bits = 0);

// Incomplete-transform plan (standardized Kyber): the n/2-entry twiddle
// vectors, (n/2)^-1 in the scale slot, and Montgomery-domain gammas.
[[nodiscard]] twiddle_plan make_incomplete_twiddle_plan(const ntt_params& p,
                                                        const math::incomplete_ntt_tables& t,
                                                        unsigned r_bits = 0);

// Synthetic plan for performance-only runs; `seed` fixes the bit patterns.
[[nodiscard]] twiddle_plan make_synthetic_plan(const ntt_params& p, u64 seed);

}  // namespace bpntt::core
