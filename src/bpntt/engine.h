// Public API of the BP-NTT in-SRAM accelerator model.
//
// One engine owns one compute subarray configured with k-bit tiles; each
// tile ("lane") holds an independent polynomial and all lanes execute the
// same compiled command stream in SIMD lockstep — the source of the
// paper's throughput (16 parallel 16-bit NTTs per 256-column array).
//
// Typical use:
//   bp_ntt_engine eng(engine_config{}, ntt_params{.n=256, .q=7681, .k=16});
//   eng.load_polynomial(lane, coeffs);
//   auto stats = eng.run_forward();          // cycles + energy of the batch
//   auto out   = eng.peek_polynomial(lane);  // bit-reversed NTT(coeffs)
//
// For full negacyclic polynomial products entirely in-array, allocate two
// regions from the row layout (n <= data_rows/2) and chain
// run_forward / run_pointwise / run_inverse on them:
//   auto ra = eng.poly_region(0), rb = eng.poly_region(n);
//   eng.run_forward(ra); eng.run_forward(rb);
//   eng.run_pointwise(ra, rb, ra, /*scale_b=*/true);
//   eng.run_inverse(ra);
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "bpntt/compiler.h"
#include "bpntt/config.h"
#include "isa/executor.h"
#include "nttmath/incomplete_ntt.h"
#include "nttmath/ntt.h"
#include "sram/subarray.h"

namespace bpntt::core {

class bp_ntt_engine {
 public:
  // Non-synthetic params build golden twiddle tables internally; synthetic
  // params (q == 0) produce a performance-only engine.
  bp_ntt_engine(const engine_config& cfg, const ntt_params& params, u64 synthetic_seed = 1);

  [[nodiscard]] const ntt_params& params() const noexcept { return params_; }
  [[nodiscard]] const row_layout& layout() const noexcept { return layout_; }
  [[nodiscard]] unsigned lanes() const noexcept { return array_->geometry().num_tiles(); }
  [[nodiscard]] const sram::subarray& array() const noexcept { return *array_; }
  // Mutable access for fault-injection tests.
  [[nodiscard]] sram::subarray& mutable_array() noexcept { return *array_; }
  [[nodiscard]] const twiddle_plan& plan() const noexcept { return plan_; }
  // Golden tables (absent in synthetic mode; one of the two is set
  // depending on params().incomplete).
  [[nodiscard]] const math::ntt_tables* tables() const noexcept { return tables_.get(); }
  [[nodiscard]] const math::incomplete_ntt_tables* incomplete_tables() const noexcept {
    return itables_.get();
  }

  // Region handles over this engine's data rows.  poly_region(base) is the
  // n-row window a transform kernel operates on; arbitrary windows come from
  // layout().make_region(base, rows).
  [[nodiscard]] region poly_region(unsigned base = 0) const {
    return layout_.make_region(base, params_.n);
  }

  // Host data movement.  Coefficients must be canonical (< q).  The
  // region-less overloads address rows [0, len) — the common single-residency
  // case.
  void load_polynomial(unsigned lane, std::span<const u64> coeffs);
  void load_polynomial(unsigned lane, std::span<const u64> coeffs, const region& dst);
  // Counted host readout.
  [[nodiscard]] std::vector<u64> read_polynomial(unsigned lane, u64 count);
  [[nodiscard]] std::vector<u64> read_polynomial(unsigned lane, const region& src);
  // Free debug readout (no cycles/energy).
  [[nodiscard]] std::vector<u64> peek_polynomial(unsigned lane, u64 count) const;
  [[nodiscard]] std::vector<u64> peek_polynomial(unsigned lane, const region& src) const;

  // Kernels; each returns the stats delta for the run (batch of all lanes).
  // Transform kernels require an n-row region (poly_region); run_pointwise
  // multiplies equal-sized windows element-by-element; run_modmul_rows takes
  // three single-row windows.
  sram::op_stats run_forward() { return run_forward(poly_region()); }
  sram::op_stats run_forward(const region& r);
  sram::op_stats run_inverse() { return run_inverse(poly_region()); }
  sram::op_stats run_inverse(const region& r);
  sram::op_stats run_pointwise(const region& a, const region& b, const region& dst,
                               bool scale_b);
  // Incomplete-mode base multiplications (results land in the a region).
  sram::op_stats run_basemul(const region& a, const region& b, bool scale_b);
  // Single modular product: dst = a * b mod q with per-lane operands.
  sram::op_stats run_modmul_rows(const region& a, const region& b, const region& dst);

  [[nodiscard]] const sram::op_stats& cumulative_stats() const noexcept {
    return array_->stats();
  }

  // Number of distinct compiled kernel programs held by the cache — a
  // recompilation regression probe: repeating the same kernel sequence must
  // leave this unchanged.
  [[nodiscard]] std::size_t cached_programs() const noexcept { return cache_.size(); }

 private:
  // Everything a compiled kernel program depends on besides the engine's
  // fixed plan: which kernel, its operand row bases, the element count and
  // the scale_b flag.  Unused fields stay 0/false for narrower kernels.
  struct program_key {
    int kind = 0;
    unsigned a = 0;
    unsigned b = 0;
    unsigned dst = 0;
    u64 rows = 0;
    bool scale_b = false;
    auto operator<=>(const program_key&) const = default;
  };

  sram::op_stats execute(const isa::program& p);
  // Compile-once lookup; `compile` is only invoked on a miss (no type
  // erasure, so cache hits cost a map find and nothing else).
  template <typename F>
  const isa::program& cached(const program_key& key, F&& compile) {
    auto it = cache_.find(key);
    if (it == cache_.end()) it = cache_.emplace(key, compile()).first;
    return it->second;
  }
  void write_constants();
  void require_poly_region(const region& r) const;

  ntt_params params_;
  row_layout layout_;
  std::unique_ptr<math::ntt_tables> tables_;
  std::unique_ptr<math::incomplete_ntt_tables> itables_;
  twiddle_plan plan_;
  std::unique_ptr<sram::subarray> array_;
  microcode_compiler compiler_;
  isa::executor exec_;
  // Compiled-program cache covering every kernel (forward, inverse,
  // pointwise, basemul, modmul_rows) so repeated batches never recompile.
  std::map<program_key, isa::program> cache_;
};

}  // namespace bpntt::core
