// Public API of the BP-NTT in-SRAM accelerator model.
//
// One engine owns one compute subarray configured with k-bit tiles; each
// tile ("lane") holds an independent polynomial and all lanes execute the
// same compiled command stream in SIMD lockstep — the source of the
// paper's throughput (16 parallel 16-bit NTTs per 256-column array).
//
// Typical use:
//   bp_ntt_engine eng(engine_config{}, ntt_params{.n=256, .q=7681, .k=16});
//   eng.load_polynomial(lane, coeffs);
//   auto stats = eng.run_forward();          // cycles + energy of the batch
//   auto out   = eng.peek_polynomial(lane);  // bit-reversed NTT(coeffs)
//
// For full negacyclic polynomial products entirely in-array, place the two
// operands at different row bases (n <= data_rows/2) and chain
// run_forward_at / run_pointwise / run_inverse_at.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "bpntt/compiler.h"
#include "bpntt/config.h"
#include "isa/executor.h"
#include "nttmath/incomplete_ntt.h"
#include "nttmath/ntt.h"
#include "sram/subarray.h"

namespace bpntt::core {

class bp_ntt_engine {
 public:
  // Non-synthetic params build golden twiddle tables internally; synthetic
  // params (q == 0) produce a performance-only engine.
  bp_ntt_engine(const engine_config& cfg, const ntt_params& params, u64 synthetic_seed = 1);

  [[nodiscard]] const ntt_params& params() const noexcept { return params_; }
  [[nodiscard]] const row_layout& layout() const noexcept { return layout_; }
  [[nodiscard]] unsigned lanes() const noexcept { return array_->geometry().num_tiles(); }
  [[nodiscard]] const sram::subarray& array() const noexcept { return *array_; }
  // Mutable access for fault-injection tests.
  [[nodiscard]] sram::subarray& mutable_array() noexcept { return *array_; }
  [[nodiscard]] const twiddle_plan& plan() const noexcept { return plan_; }
  // Golden tables (absent in synthetic mode; one of the two is set
  // depending on params().incomplete).
  [[nodiscard]] const math::ntt_tables* tables() const noexcept { return tables_.get(); }
  [[nodiscard]] const math::incomplete_ntt_tables* incomplete_tables() const noexcept {
    return itables_.get();
  }

  // Host data movement.  Coefficients must be canonical (< q).
  void load_polynomial(unsigned lane, std::span<const u64> coeffs, unsigned row_base = 0);
  // Counted host readout.
  [[nodiscard]] std::vector<u64> read_polynomial(unsigned lane, u64 count,
                                                 unsigned row_base = 0);
  // Free debug readout (no cycles/energy).
  [[nodiscard]] std::vector<u64> peek_polynomial(unsigned lane, u64 count,
                                                 unsigned row_base = 0) const;

  // Kernels; each returns the stats delta for the run (batch of all lanes).
  sram::op_stats run_forward(unsigned row_base = 0);
  sram::op_stats run_inverse(unsigned row_base = 0);
  sram::op_stats run_pointwise(unsigned a_base, unsigned b_base, unsigned dst_base, u64 count,
                               bool scale_b);
  // Incomplete-mode base multiplications (results land in the a region).
  sram::op_stats run_basemul(unsigned a_base, unsigned b_base, bool scale_b);
  // Single modular product: dst = a * b mod q with per-lane operands.
  sram::op_stats run_modmul_rows(unsigned a_row, unsigned b_row, unsigned dst_row);

  [[nodiscard]] const sram::op_stats& cumulative_stats() const noexcept {
    return array_->stats();
  }

 private:
  sram::op_stats execute(const isa::program& p);
  void write_constants();

  ntt_params params_;
  row_layout layout_;
  std::unique_ptr<math::ntt_tables> tables_;
  std::unique_ptr<math::incomplete_ntt_tables> itables_;
  twiddle_plan plan_;
  std::unique_ptr<sram::subarray> array_;
  microcode_compiler compiler_;
  isa::executor exec_;
  // Compiled-program cache keyed by (kind, base).
  mutable std::map<std::pair<int, unsigned>, isa::program> cache_;
};

}  // namespace bpntt::core
