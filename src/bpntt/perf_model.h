// Performance metrics for BP-NTT runs — the quantities reported in Table I
// and Fig. 8 of the paper.
//
// Configurations that fit one subarray (n <= data_rows) are *measured* on
// the cycle-level simulator.  Larger polynomial orders follow the paper's
// multi-tile scheme (§IV-B: "excess coefficients stored in adjacent tiles
// and merged during computation using the 1-bit shift operation"), which we
// model analytically on top of a measured per-butterfly baseline: lanes
// drop by the tile-span factor, and every butterfly whose two operand rows
// live in different tile segments pays the k-cycle word-alignment shift
// both ways.  These points are tagged `extrapolated`.
#pragma once

#include "bpntt/config.h"
#include "bpntt/engine.h"

namespace bpntt::core {

struct ntt_metrics {
  u64 n = 0;
  unsigned k = 0;
  unsigned lanes = 0;        // NTTs computed per batch
  u64 cycles = 0;            // batch cycles
  double energy_nj = 0.0;    // batch energy
  double latency_us = 0.0;   // batch latency at tech.freq_ghz
  double throughput_kntt_s = 0.0;
  double area_mm2 = 0.0;
  double power_mw = 0.0;
  double tput_per_area = 0.0;  // KNTT/s/mm^2  (Table I "Tput./Area")
  double tput_per_mj = 0.0;    // KNTT/mJ      (Table I "Tput./Power")
  bool extrapolated = false;
};

// Derive all rate/efficiency metrics from raw cycles + energy.
[[nodiscard]] ntt_metrics metrics_from_run(const engine_config& cfg, u64 n, unsigned k,
                                           unsigned lanes, u64 cycles, double energy_nj,
                                           bool extrapolated = false);

// Run one forward-NTT batch (random canonical inputs, fixed seed) and
// report metrics.  Non-synthetic params also verify lossless-shift
// invariants held (throws on violation).
[[nodiscard]] ntt_metrics measure_forward(const engine_config& cfg, const ntt_params& params,
                                          u64 seed = 42);

// Analytical extension for n > cfg.data_rows (see header comment).
[[nodiscard]] ntt_metrics extrapolate_forward(const engine_config& cfg, u64 n, unsigned k,
                                              u64 seed = 42);

// Butterflies whose operand rows fall in different `segment_rows`-row
// vertical segments (these pay cross-tile alignment shifts).  Exposed for
// tests and the Fig. 8b bench.
[[nodiscard]] u64 count_remote_butterflies(u64 n, unsigned segment_rows);

}  // namespace bpntt::core
