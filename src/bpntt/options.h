// Microcode generation options — the ablation knobs for the design choices
// the paper makes implicitly (see DESIGN.md §3 and bench/ablation_microcode):
//
// * fuse_pairs: one dual-row activation writes both half-adder outputs
//   {AND, XOR} in a single cycle (dual write drivers).  Off = conventional
//   single-result sense amplifiers: every half-add costs two activations
//   (plus a staging copy inside ripple loops).
// * ripple_check_period: how many ripple iterations run between wired-OR
//   zero tests.  1 = check every iteration (lowest latency per exit);
//   larger values trade wasted iterations for fewer check cycles.
// * reduced_iterations: run Algorithm 2 for ceil(log2(2q)) iterations
//   (R = 2^that) instead of the full tile width k.  Twiddles are
//   pre-scaled with the matching R, so results are identical; narrower
//   moduli on wide tiles skip the dead top iterations.
#pragma once

namespace bpntt::core {

struct compile_options {
  bool fuse_pairs = true;
  unsigned ripple_check_period = 1;
  bool reduced_iterations = false;

  void validate() const;
};

}  // namespace bpntt::core
