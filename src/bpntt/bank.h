// Bank-level model (Fig. 4b): one cache bank holds several subarrays; one
// is repurposed as the CTRL/CMD store and the rest become BP-NTT compute
// arrays executing the same broadcast command stream ("different banks
// performing the same operations can share the CTRL/CMD subarray", §IV-A).
//
// The CTRL subarray does not hold the unrolled command stream (a 256-point
// kernel is ~3e5 control words — orders of magnitude beyond one subarray);
// it holds what the stream is *generated from*: the Montgomery-domain
// twiddle words plus the loop parameters, which the controller FSM expands
// per butterfly.  ctrl_rows_used() models that storage.
//
// The scheduler runs an arbitrary batch of independent polynomials: each
// wave fills every lane of every compute subarray, all subarrays execute in
// lockstep (wave latency = slowest subarray, since ripple cycle counts are
// data-dependent), and waves repeat until the batch drains.
#pragma once

#include <atomic>
#include <memory>
#include <span>
#include <vector>

#include "bpntt/engine.h"

namespace bpntt::core {

// Direction of a batched transform.
enum class transform_dir { forward, inverse };

struct bank_config {
  unsigned subarrays = 4;  // including the CTRL/CMD subarray
  engine_config array;

  void validate() const;
};

struct bank_run_result {
  std::uint64_t waves = 0;
  std::uint64_t cycles = 0;      // sum over waves of the slowest subarray
  double energy_nj = 0.0;        // all compute subarrays
  sram::op_stats stats;          // summed over all touched subarrays
  std::vector<std::vector<u64>> outputs;  // one per input polynomial
};

// One negacyclic ring product a * b mod (x^n + 1, q).
struct polymul_pair {
  std::vector<u64> a;
  std::vector<u64> b;
};

class bp_ntt_bank {
 public:
  bp_ntt_bank(const bank_config& cfg, const ntt_params& params);

  [[nodiscard]] const ntt_params& params() const noexcept { return params_; }
  [[nodiscard]] unsigned compute_subarrays() const noexcept {
    return static_cast<unsigned>(engines_.size());
  }
  [[nodiscard]] unsigned lanes_per_wave() const noexcept {
    return engines_.empty() ? 0u : compute_subarrays() * engines_.front()->lanes();
  }
  // Whether the polymul pipeline fits: two n-row operand regions per lane.
  [[nodiscard]] bool supports_polymul() const noexcept {
    return 2 * params_.n <= cfg_.array.data_rows;
  }
  // Rows of the CTRL/CMD subarray occupied by twiddles + constants.
  [[nodiscard]] unsigned ctrl_rows_used() const noexcept;
  // Whole-bank area: compute subarrays + the CTRL/CMD subarray.
  [[nodiscard]] double area_mm2() const;

  // Forward-NTT every polynomial in `jobs` (each of size n, canonical).
  [[nodiscard]] bank_run_result run_forward_batch(
      const std::vector<std::vector<u64>>& jobs);
  // Transform every polynomial in `jobs` in the given direction.  Inverse
  // consumes bit-reversed transformed coefficients, as run_inverse does.
  [[nodiscard]] bank_run_result run_ntt_batch(const std::vector<std::vector<u64>>& jobs,
                                              transform_dir dir);
  // Full in-array negacyclic products: NTT(a), NTT(b), pointwise (or Kyber
  // basemul in incomplete mode), INTT — one pair per lane per wave.  Needs
  // supports_polymul().
  [[nodiscard]] bank_run_result run_polymul_batch(const std::vector<polymul_pair>& jobs);
  // Products of operands already in the NTT domain (both a and b carry the
  // bit-reversed forward image run_forward would leave in the array):
  // pointwise (or basemul) + INTT only — the tail of run_polymul_batch's
  // pipeline, used when the runtime's operand cache already holds the
  // transforms.  Needs supports_polymul().
  [[nodiscard]] bank_run_result run_transformed_polymul_batch(
      const std::vector<polymul_pair>& jobs);

 private:
  // Wave scheduler shared by the batch runners: fills every lane of every
  // compute subarray, executes touched subarrays concurrently (wave latency
  // = slowest), repeats until the batch drains.
  template <typename LoadFn, typename RunFn, typename ReadFn>
  bank_run_result schedule(std::size_t njobs, LoadFn&& load, RunFn&& run, ReadFn&& read);

  // A bank's subarray state is exclusive to one batch at a time.  The
  // runtime scheduler guarantees that by reserving disjoint bank subsets
  // per dispatch group; this RAII guard turns a reservation bug (two groups
  // entering the same bank concurrently) into a loud logic_error instead of
  // silent state corruption.
  class exclusive_guard {
   public:
    explicit exclusive_guard(std::atomic_flag& flag);
    ~exclusive_guard();

   private:
    std::atomic_flag& flag_;
  };

  bank_config cfg_;
  ntt_params params_;
  std::vector<std::unique_ptr<bp_ntt_engine>> engines_;
  // Behind a pointer so the bank stays movable (vector storage).
  std::unique_ptr<std::atomic_flag> busy_ = std::make_unique<std::atomic_flag>();
};

}  // namespace bpntt::core
