#include "bpntt/perf_model.h"

#include <cmath>
#include <stdexcept>

#include "common/bitutil.h"
#include "common/xoshiro.h"

namespace bpntt::core {

ntt_metrics metrics_from_run(const engine_config& cfg, u64 n, unsigned k, unsigned lanes,
                             u64 cycles, double energy_nj, bool extrapolated) {
  ntt_metrics m;
  m.n = n;
  m.k = k;
  m.lanes = lanes;
  m.cycles = cycles;
  m.energy_nj = energy_nj;
  m.latency_us = static_cast<double>(cycles) / (cfg.tech.freq_ghz * 1e3);
  m.throughput_kntt_s = m.latency_us > 0 ? lanes / m.latency_us * 1e3 : 0.0;
  const row_layout layout{cfg.data_rows};
  m.area_mm2 = sram::subarray_area_mm2(cfg.tech, layout.total_rows(), cfg.cols);
  m.power_mw = m.latency_us > 0 ? energy_nj / m.latency_us : 0.0;  // nJ/us == mW
  m.tput_per_area = m.area_mm2 > 0 ? m.throughput_kntt_s / m.area_mm2 : 0.0;
  m.tput_per_mj = energy_nj > 0 ? 1e3 * lanes / energy_nj : 0.0;
  m.extrapolated = extrapolated;
  return m;
}

ntt_metrics measure_forward(const engine_config& cfg, const ntt_params& params, u64 seed) {
  bp_ntt_engine eng(cfg, params, seed);
  common::xoshiro256ss rng(seed);
  const u64 bound = params.synthetic() ? eng.plan().m : params.q;
  std::vector<u64> coeffs(params.n);
  for (unsigned lane = 0; lane < eng.lanes(); ++lane) {
    for (auto& c : coeffs) c = rng.below(bound);
    eng.load_polynomial(lane, coeffs);
  }
  const auto stats = eng.run_forward();
  if (!params.synthetic() && stats.lossless_shift_violations != 0) {
    throw std::runtime_error("measure_forward: lossless-shift invariant violated");
  }
  return metrics_from_run(cfg, params.n, params.k, eng.lanes(), stats.cycles,
                          stats.energy_pj * 1e-3);
}

u64 count_remote_butterflies(u64 n, unsigned segment_rows) {
  if (segment_rows == 0) throw std::invalid_argument("count_remote_butterflies: zero segment");
  u64 remote = 0;
  for (u64 len = n / 2; len >= 1; len >>= 1) {
    for (u64 start = 0; start < n; start += 2 * len) {
      for (u64 j = start; j < start + len; ++j) {
        if (j / segment_rows != (j + len) / segment_rows) ++remote;
      }
    }
  }
  return remote;
}

ntt_metrics extrapolate_forward(const engine_config& cfg, u64 n, unsigned k, u64 seed) {
  if (n <= cfg.data_rows) {
    throw std::invalid_argument("extrapolate_forward: configuration fits; measure it instead");
  }
  // Measured per-butterfly baseline at the largest fitting power of two.
  u64 base_n = cfg.data_rows;
  while (!common::is_power_of_two(base_n)) --base_n;
  ntt_params base_params;
  base_params.n = base_n;
  base_params.q = 0;  // synthetic: only cycles/energy are needed
  base_params.k = k;
  const ntt_metrics base = measure_forward(cfg, base_params, seed);
  const u64 base_butterflies = (base_n / 2) * common::log2_exact(base_n);
  const double cycles_per_bf = static_cast<double>(base.cycles) / base_butterflies;
  const double energy_per_cycle_nj = base.energy_nj / static_cast<double>(base.cycles);

  const sram::tile_geometry geom{cfg.cols, k};
  const unsigned tiles = geom.num_tiles();
  const u64 span = (n + cfg.data_rows - 1) / cfg.data_rows;  // tiles per polynomial
  if (span > tiles) {
    throw std::invalid_argument("extrapolate_forward: polynomial exceeds the whole array");
  }
  const unsigned lanes = static_cast<unsigned>(tiles / span);

  const u64 butterflies = (n / 2) * common::log2_exact(n);
  // A remote butterfly fetches the far operand into the local tile and
  // writes it back: two k-column word moves of 1-bit shifts, plus a staging
  // copy each way.
  const u64 remote = count_remote_butterflies(n, cfg.data_rows);
  const double remote_overhead = 2.0 * (k + 2.0);
  const double cycles =
      static_cast<double>(butterflies) * cycles_per_bf + remote * remote_overhead;
  const double energy_nj = cycles * energy_per_cycle_nj;

  return metrics_from_run(cfg, n, k, lanes, static_cast<u64>(cycles), energy_nj,
                          /*extrapolated=*/true);
}

}  // namespace bpntt::core
