// Configuration types for the BP-NTT engine.
#pragma once

#include <cstdint>
#include <stdexcept>

#include "bpntt/options.h"
#include "common/bitutil.h"
#include "sram/tech_model.h"

namespace bpntt::core {

using u64 = std::uint64_t;

// Transform parameters: an n-point NTT over Z_q mapped onto k-bit tiles.
//
// The carry-save Montgomery datapath needs one spare bit of headroom
// (2q < 2^k): intermediate values reach 2q-1 and the MSB-based sign test of
// the conditional corrections relies on it.  This matches the paper's
// parameter pairings (e.g. 14-bit PQC moduli on 16-bit tiles) and is what
// makes Observations 1 and 2 hold (validated by the envelope tests).
//
// q == 0 selects *synthetic mode*: no modular semantics, random twiddle bit
// patterns of the same density.  Used only by the performance sweeps
// (Fig. 8a includes tile widths too narrow to host any real modulus).
struct ntt_params {
  u64 n = 256;        // polynomial order (power of two)
  u64 q = 0;          // odd prime modulus, 2q < 2^k; 0 = synthetic
  unsigned k = 16;    // tile width in bits = Montgomery R = 2^k
  bool negacyclic = true;
  // One-layer-short transform (standardized Kyber): needs only n | q-1 and
  // finishes products with degree-1 base multiplications.
  bool incomplete = false;

  [[nodiscard]] bool synthetic() const noexcept { return q == 0; }

  void validate() const {
    if (!common::is_power_of_two(n) || n < 2) {
      throw std::invalid_argument("ntt_params: n must be a power of two >= 2");
    }
    if (incomplete && (!negacyclic || n < 4)) {
      throw std::invalid_argument("ntt_params: incomplete mode needs negacyclic n >= 4");
    }
    // Synthetic mode supports the paper's full 2..256-bit tile range (the
    // 250-point/256-bit capacity claim); real-modulus golden checks use
    // native words and stop at 63.
    if (k < 2 || k > 256) throw std::invalid_argument("ntt_params: k out of range [2,256]");
    if (!synthetic()) {
      if (k > 63) throw std::invalid_argument("ntt_params: real moduli limited to k <= 63");
      if ((q & 1ULL) == 0) throw std::invalid_argument("ntt_params: q must be odd");
      if (2 * q >= (1ULL << k)) {
        throw std::invalid_argument("ntt_params: need 2q < 2^k (one spare bit of headroom)");
      }
      const u64 order = negacyclic ? (incomplete ? n : 2 * n) : n;
      if ((q - 1) % order != 0) {
        throw std::invalid_argument("ntt_params: q does not support this transform size");
      }
    }
  }
};

// Physical array configuration.  Default mirrors the paper's headline
// design: a 256x256 cache subarray plus dedicated intermediate rows (§V-E
// "256x256 BP-NTT design plus 6 rows for intermediate data").
struct engine_config {
  unsigned data_rows = 256;  // coefficient rows
  unsigned cols = 256;
  sram::tech_params tech = sram::tech_45nm();
  compile_options microcode;  // ablation knobs; defaults match the paper

  void validate() const {
    microcode.validate();
    if (data_rows == 0 || data_rows > 502) {
      // 9-bit row addresses minus scratch/constant/staging rows.
      throw std::invalid_argument("engine_config: data_rows out of range");
    }
    if (cols == 0 || cols > 4096) throw std::invalid_argument("engine_config: cols out of range");
  }
};

}  // namespace bpntt::core
