#include "bpntt/twiddle.h"

#include <stdexcept>

#include "common/bitutil.h"
#include "common/xoshiro.h"
#include "nttmath/modarith.h"
#include "nttmath/montgomery.h"

namespace bpntt::core {

twiddle_plan make_twiddle_plan(const ntt_params& p, const math::ntt_tables& t,
                               unsigned r_bits) {
  p.validate();
  if (p.synthetic()) throw std::invalid_argument("make_twiddle_plan: synthetic params");
  if (t.n() != p.n || t.q() != p.q) throw std::invalid_argument("make_twiddle_plan: table mismatch");
  if (r_bits == 0) r_bits = p.k;
  if (r_bits > p.k || 2 * p.q >= (1ULL << r_bits)) {
    throw std::invalid_argument("make_twiddle_plan: r_bits must satisfy 2q < 2^r_bits <= 2^k");
  }

  const u64 r = math::mont_r(p.q, r_bits);
  twiddle_plan plan;
  plan.r_bits = r_bits;
  plan.m = p.q;
  plan.mneg = (common::low_mask(p.k) - p.q + 1) & common::low_mask(p.k);  // 2^k - q
  plan.r2 = math::mont_r2(p.q, r_bits);
  plan.n_inv_mont = math::mul_mod(t.n_inv(), r, p.q);
  plan.zetas_mont.resize(t.zetas().size());
  plan.zetas_inv_mont.resize(t.zetas_inv().size());
  for (std::size_t i = 1; i < t.zetas().size(); ++i) {
    plan.zetas_mont[i] = math::mul_mod(t.zetas()[i], r, p.q);
    plan.zetas_inv_mont[i] = math::mul_mod(t.zetas_inv()[i], r, p.q);
  }
  return plan;
}

twiddle_plan make_incomplete_twiddle_plan(const ntt_params& p,
                                          const math::incomplete_ntt_tables& t,
                                          unsigned r_bits) {
  p.validate();
  if (p.synthetic() || !p.incomplete) {
    throw std::invalid_argument("make_incomplete_twiddle_plan: params not incomplete-mode");
  }
  if (t.n() != p.n || t.q() != p.q) {
    throw std::invalid_argument("make_incomplete_twiddle_plan: table mismatch");
  }
  if (r_bits == 0) r_bits = p.k;
  if (r_bits > p.k || 2 * p.q >= (1ULL << r_bits)) {
    throw std::invalid_argument("make_incomplete_twiddle_plan: bad r_bits");
  }

  const u64 r = math::mont_r(p.q, r_bits);
  twiddle_plan plan;
  plan.r_bits = r_bits;
  plan.m = p.q;
  plan.mneg = (common::low_mask(p.k) - p.q + 1) & common::low_mask(p.k);
  plan.r2 = math::mont_r2(p.q, r_bits);
  plan.n_inv_mont = math::mul_mod(t.half_n_inv(), r, p.q);  // (n/2)^-1 scale
  plan.zetas_mont.resize(t.zetas().size());
  plan.zetas_inv_mont.resize(t.zetas_inv().size());
  for (std::size_t i = 1; i < t.zetas().size(); ++i) {
    plan.zetas_mont[i] = math::mul_mod(t.zetas()[i], r, p.q);
    plan.zetas_inv_mont[i] = math::mul_mod(t.zetas_inv()[i], r, p.q);
  }
  plan.gammas_mont.resize(t.gammas().size());
  for (std::size_t i = 0; i < t.gammas().size(); ++i) {
    plan.gammas_mont[i] = math::mul_mod(t.gammas()[i], r, p.q);
  }
  return plan;
}

twiddle_plan make_synthetic_plan(const ntt_params& p, u64 seed) {
  common::xoshiro256ss rng(seed);
  const u64 mask = common::low_mask(p.k);
  // Largest odd value with the required headroom bit clear.
  const u64 m = p.k >= 2 ? ((1ULL << (p.k - 1)) - 1) | 1ULL : 1ULL;

  twiddle_plan plan;
  plan.r_bits = p.k;
  plan.m = m;
  plan.mneg = (mask - m + 1) & mask;
  plan.r2 = rng.below(m);
  plan.n_inv_mont = rng.below(m);
  plan.zetas_mont.resize(p.n);
  plan.zetas_inv_mont.resize(p.n);
  for (std::size_t i = 1; i < p.n; ++i) {
    plan.zetas_mont[i] = rng() & mask;
    plan.zetas_inv_mont[i] = rng() & mask;
  }
  return plan;
}

}  // namespace bpntt::core
