#include "bpntt/compiler.h"

#include <stdexcept>

#include "common/bitutil.h"

namespace bpntt::core {

using sram::logic_fn;
using sram::shift_dir;
using sram::write_mask;

void compile_options::validate() const {
  if (ripple_check_period < 1 || ripple_check_period > 8) {
    throw std::invalid_argument("compile_options: ripple_check_period out of [1,8]");
  }
}

microcode_compiler::microcode_compiler(ntt_params params, row_layout layout,
                                       compile_options options)
    : params_(params), layout_(layout), options_(options) {
  params_.validate();
  options_.validate();
  iters_ = params_.k;
  if (options_.reduced_iterations && !params_.synthetic()) {
    iters_ = common::bit_length(2 * params_.q);  // smallest r with 2q < 2^r
  }
}

void microcode_compiler::require_compatible(const twiddle_plan& plan) const {
  if (plan.r_bits == 0) return;  // hand-built plans: caller vouches for R
  if (plan.r_bits != iters_) {
    throw std::invalid_argument(
        "microcode_compiler: twiddle plan R does not match the iteration count "
        "(rebuild the plan with r_bits = iterations())");
  }
}

void microcode_compiler::emit_half_add(isa::program_builder& b, std::uint16_t c_dst,
                                       std::uint16_t s_dst, std::uint16_t src0,
                                       std::uint16_t src1) const {
  if (options_.fuse_pairs) {
    b.pair(c_dst, s_dst, src0, src1);
    return;
  }
  // Conventional single-result SAs: AND first (c_dst aliases no source by
  // scratch-map construction), then XOR still reads the original operands.
  if (c_dst == src0 || c_dst == src1) {
    throw std::logic_error("emit_half_add: unfused c_dst aliases a source");
  }
  b.binary(c_dst, src0, src1, logic_fn::op_and);
  b.binary(s_dst, src0, src1, logic_fn::op_xor);
}

// Resolve `carry_row` into `sum_row` by repeated half-adds:
//   do { carry <<= 1; {carry, sum} = {sum & carry, sum ^ carry}; }
//   while (carry != 0)
// When the represented value fits in k bits the shifted-out bit is provably
// zero (lossless); callers pass lossless=false when a dropped carry-out is
// the intended mod-2^k wraparound.  `tmp_row` stages the AND result in
// unfused mode (the in-place {carry, sum} write needs the dual-write SA).
void microcode_compiler::emit_ripple(isa::program_builder& b, std::uint16_t sum_row,
                                     std::uint16_t carry_row, bool lossless,
                                     std::uint16_t tmp_row) const {
  const std::size_t start = b.here();
  for (unsigned i = 0; i < options_.ripple_check_period; ++i) {
    b.shift(carry_row, carry_row, shift_dir::left, lossless);
    if (options_.fuse_pairs) {
      b.pair(carry_row, sum_row, sum_row, carry_row);
    } else {
      b.binary(tmp_row, sum_row, carry_row, logic_fn::op_and);
      b.binary(sum_row, sum_row, carry_row, logic_fn::op_xor);
      b.copy(carry_row, tmp_row);
    }
  }
  b.check_zero(carry_row);
  b.branch_nonzero_to(start);
}

// One Montgomery halving step (Algorithm 2 lines 11-16):
//   m  = LSB(Sum) ? M : 0                      (Check + masked copy)
//   c1,s1 = {Sum & m, Sum ^ m}
//   s1 >>= 1                                   (Observation 2: LSB is 0)
//   c2,s2 = {s1 & c1, s1 ^ c1}
//   c3,Sum = {Carry & s2, Carry ^ s2}
//   Carry = c2 | c3
void microcode_compiler::emit_montgomery_halving(isa::program_builder& b) const {
  const auto& L = layout_;
  b.check_pred(L.sum(), 0);
  b.clear(L.t());
  b.copy(L.t(), L.m_row(), false, write_mask::pred);
  emit_half_add(b, L.c1(), L.s1(), L.sum(), L.t());
  b.shift(L.s1(), L.s1(), shift_dir::right, /*expect_lossless=*/true);
  emit_half_add(b, L.c2(), L.s1(), L.s1(), L.c1());
  emit_half_add(b, L.c1(), L.sum(), L.carry(), L.s1());
  b.binary(L.carry(), L.c2(), L.c1(), logic_fn::op_or);
}

// Algorithm 2 with the multiplier bits of `a_bits` baked in.
void microcode_compiler::emit_modmul_const_body(isa::program_builder& b, std::uint16_t b_row,
                                                u64 a_bits) const {
  const auto& L = layout_;
  b.clear(L.sum());
  b.clear(L.carry());
  for (unsigned i = 0; i < iters_; ++i) {
    if ((a_bits >> i) & 1ULL) {
      // P += B (lines 6-9); Observation 1 makes the Carry shift lossless.
      emit_half_add(b, L.c1(), L.s1(), L.sum(), b_row);
      b.shift(L.carry(), L.carry(), shift_dir::left, /*expect_lossless=*/true);
      emit_half_add(b, L.c2(), L.sum(), L.carry(), L.s1());
      b.binary(L.carry(), L.c1(), L.c2(), logic_fn::op_or);
    }
    emit_montgomery_halving(b);
  }
}

// Data-driven variant: multiplier bits come from a_row via the per-tile
// predicate latch, enabling pointwise products where every lane has its own
// multiplier (beyond the twiddle-driven case the paper details).
void microcode_compiler::emit_modmul_data_body(isa::program_builder& b, std::uint16_t a_row,
                                               std::uint16_t b_row) const {
  const auto& L = layout_;
  b.clear(L.sum());
  b.clear(L.carry());
  for (unsigned i = 0; i < iters_; ++i) {
    // T = a_i ? B : 0, then unconditionally P += T.
    b.check_pred(a_row, static_cast<std::uint8_t>(i));
    b.clear(L.t());
    b.copy(L.t(), b_row, false, write_mask::pred);
    emit_half_add(b, L.c1(), L.s1(), L.sum(), L.t());
    b.shift(L.carry(), L.carry(), shift_dir::left, /*expect_lossless=*/true);
    emit_half_add(b, L.c2(), L.sum(), L.carry(), L.s1());
    b.binary(L.carry(), L.c1(), L.c2(), logic_fn::op_or);
    emit_montgomery_halving(b);
  }
}

// dst = Sum + (Carry << 1), plain binary (carry-save resolution).  The
// ripple loop's leading shift performs the <<1 weight alignment itself.
void microcode_compiler::emit_resolve(isa::program_builder& b, std::uint16_t dst) const {
  const auto& L = layout_;
  emit_ripple(b, L.sum(), L.carry(), /*lossless=*/true, /*tmp=*/L.c1());
  if (dst != L.sum()) b.copy(dst, L.sum());
}

// Canonicalize x in [0, 2M): y = x + (2^k - M) mod 2^k; keep x when the
// sign bit of y says x < M, else take y = x - M.  Clobbers C1, C2 (and SUM
// as unfused ripple staging — SUM is dead at every call site).
void microcode_compiler::emit_cond_sub(isa::program_builder& b, std::uint16_t x_row) const {
  const auto& L = layout_;
  emit_half_add(b, L.c1(), L.c2(), x_row, L.mneg_row());
  emit_ripple(b, L.c2(), L.c1(), /*lossless=*/false, /*tmp=*/L.sum());
  b.check_pred(L.c2(), static_cast<std::uint8_t>(params_.k - 1));
  b.copy(x_row, L.c2(), false, write_mask::pred_inv);
}

// dst = (a + b) mod M; clobbers C1, S1, C2 (and SUM unfused).
void microcode_compiler::emit_mod_add(isa::program_builder& b, std::uint16_t dst,
                                      std::uint16_t a, std::uint16_t src_b) const {
  const auto& L = layout_;
  emit_half_add(b, L.c1(), L.s1(), a, src_b);
  emit_ripple(b, L.s1(), L.c1(), /*lossless=*/true, /*tmp=*/L.c2());
  emit_cond_sub(b, L.s1());
  if (dst != L.s1()) b.copy(dst, L.s1());
}

// dst = (a - b) mod M via a + ~b + 1; an expected carry-out drop encodes
// a >= b, and a masked +M correction fixes the wrapped case.
void microcode_compiler::emit_mod_sub(isa::program_builder& b, std::uint16_t dst,
                                      std::uint16_t a, std::uint16_t src_b) const {
  const auto& L = layout_;
  b.copy(L.s1(), src_b, /*invert=*/true);
  emit_half_add(b, L.c1(), L.c2(), a, L.s1());
  emit_half_add(b, L.s1(), L.c2(), L.c2(), L.one_row());
  b.binary(L.c1(), L.c1(), L.s1(), logic_fn::op_or);
  emit_ripple(b, L.c2(), L.c1(), /*lossless=*/false, /*tmp=*/L.sum());
  b.check_pred(L.c2(), static_cast<std::uint8_t>(params_.k - 1));
  b.clear(L.s1());
  b.copy(L.s1(), L.m_row(), false, write_mask::pred);
  emit_half_add(b, L.c1(), L.c2(), L.c2(), L.s1());
  emit_ripple(b, L.c2(), L.c1(), /*lossless=*/false, /*tmp=*/L.sum());
  if (dst != L.c2()) b.copy(dst, L.c2());
}

// Cooley-Tukey butterfly (Algorithm 1 lines 6-8):
//   t = zeta * a[j+len];  a[j+len] = a[j] - t;  a[j] = a[j] + t.
void microcode_compiler::emit_ct_butterfly(isa::program_builder& b, std::uint16_t j_row,
                                           std::uint16_t jl_row, u64 zeta_mont) const {
  const auto& L = layout_;
  emit_modmul_const_body(b, jl_row, zeta_mont);
  emit_resolve(b, L.t());
  emit_cond_sub(b, L.t());
  emit_mod_sub(b, jl_row, j_row, L.t());
  emit_mod_add(b, j_row, j_row, L.t());
}

// Gentleman-Sande inverse butterfly:
//   t = a[j] - a[j+len];  a[j] = a[j] + a[j+len];  a[j+len] = t * zeta^-1.
// The difference is staged through T, then parked in the consumed a[j+len]
// row before the multiply: Algorithm 2's m-selection reuses T as scratch,
// so T cannot be the multiplicand.
void microcode_compiler::emit_gs_butterfly(isa::program_builder& b, std::uint16_t j_row,
                                           std::uint16_t jl_row, u64 zeta_inv_mont) const {
  const auto& L = layout_;
  emit_mod_sub(b, L.t(), j_row, jl_row);
  emit_mod_add(b, j_row, j_row, jl_row);
  b.copy(jl_row, L.t());
  emit_modmul_const_body(b, jl_row, zeta_inv_mont);
  emit_resolve(b, jl_row);
  emit_cond_sub(b, jl_row);
}

void microcode_compiler::emit_scale_row(isa::program_builder& b, std::uint16_t row,
                                        u64 factor_mont) const {
  emit_modmul_const_body(b, row, factor_mont);
  emit_resolve(b, row);
  emit_cond_sub(b, row);
}

isa::program microcode_compiler::compile_forward(const twiddle_plan& plan, unsigned base) const {
  require_compatible(plan);
  const u64 n = params_.n;
  const u64 min_len = params_.incomplete ? 2 : 1;
  isa::program_builder b;
  std::size_t k = 1;
  for (u64 len = n / 2; len >= min_len; len >>= 1) {
    for (u64 start = 0; start < n; start += 2 * len) {
      const u64 zeta = plan.zetas_mont.at(k++);
      for (u64 j = start; j < start + len; ++j) {
        emit_ct_butterfly(b, layout_.coeff_row(base, j), layout_.coeff_row(base, j + len), zeta);
      }
    }
  }
  b.halt();
  return b.take();
}

isa::program microcode_compiler::compile_inverse(const twiddle_plan& plan, unsigned base) const {
  require_compatible(plan);
  const u64 n = params_.n;
  const u64 min_len = params_.incomplete ? 2 : 1;
  isa::program_builder b;
  for (u64 len = min_len; len <= n / 2; len <<= 1) {
    const u64 k_base = n / (2 * len);
    for (u64 start = 0; start < n; start += 2 * len) {
      const u64 zeta_inv = plan.zetas_inv_mont.at(k_base + start / (2 * len));
      for (u64 j = start; j < start + len; ++j) {
        emit_gs_butterfly(b, layout_.coeff_row(base, j), layout_.coeff_row(base, j + len),
                          zeta_inv);
      }
    }
  }
  // Scale: n^-1 for the complete transform, (n/2)^-1 for the incomplete one
  // (the plan carries the right factor either way).
  for (u64 i = 0; i < n; ++i) emit_scale_row(b, layout_.coeff_row(base, i), plan.n_inv_mont);
  b.halt();
  return b.take();
}

isa::program microcode_compiler::compile_basemul(const twiddle_plan& plan, unsigned a_base,
                                                 unsigned b_base, bool scale_b) const {
  require_compatible(plan);
  if (!params_.incomplete) {
    throw std::logic_error("compile_basemul: params are not incomplete-mode");
  }
  if (plan.gammas_mont.size() != params_.n / 2) {
    throw std::invalid_argument("compile_basemul: plan lacks gammas");
  }
  const auto& L = layout_;
  isa::program_builder b;
  if (scale_b) {
    for (u64 i = 0; i < params_.n; ++i) {
      emit_scale_row(b, L.coeff_row(b_base, i), plan.r2);
    }
  }
  for (u64 i = 0; i < params_.n / 2; ++i) {
    const auto a0 = L.coeff_row(a_base, 2 * i);
    const auto a1 = L.coeff_row(a_base, 2 * i + 1);
    const auto b0 = L.coeff_row(b_base, 2 * i);
    const auto b1 = L.coeff_row(b_base, 2 * i + 1);
    // c0 = a0*b0 + a1*b1*gamma;  c1 = a0*b1 + a1*b0 — scheduled so every
    // row is overwritten only at its last use (U stages the gamma term).
    emit_modmul_data_body(b, a1, b1);
    emit_resolve(b, L.u());
    emit_cond_sub(b, L.u());
    emit_modmul_const_body(b, L.u(), plan.gammas_mont[i]);
    emit_resolve(b, L.u());
    emit_cond_sub(b, L.u());
    emit_modmul_data_body(b, a0, b1);
    emit_resolve(b, b1);
    emit_cond_sub(b, b1);
    emit_modmul_data_body(b, a1, b0);
    emit_resolve(b, a1);
    emit_cond_sub(b, a1);
    emit_modmul_data_body(b, a0, b0);
    emit_resolve(b, a0);
    emit_cond_sub(b, a0);
    emit_mod_add(b, a0, a0, L.u());
    emit_mod_add(b, a1, b1, a1);
  }
  b.halt();
  return b.take();
}

isa::program microcode_compiler::compile_pointwise(const twiddle_plan& plan, unsigned a_base,
                                                   unsigned b_base, unsigned dst_base, u64 count,
                                                   bool scale_b) const {
  require_compatible(plan);
  isa::program_builder b;
  if (scale_b) {
    for (u64 i = 0; i < count; ++i) {
      emit_scale_row(b, layout_.coeff_row(b_base, i), plan.r2);
    }
  }
  for (u64 i = 0; i < count; ++i) {
    emit_modmul_data_body(b, layout_.coeff_row(a_base, i), layout_.coeff_row(b_base, i));
    emit_resolve(b, layout_.coeff_row(dst_base, i));
    emit_cond_sub(b, layout_.coeff_row(dst_base, i));
  }
  b.halt();
  return b.take();
}

isa::program microcode_compiler::compile_scale(const twiddle_plan& plan, unsigned base,
                                               u64 count, u64 factor_mont) const {
  require_compatible(plan);
  isa::program_builder b;
  for (u64 i = 0; i < count; ++i) emit_scale_row(b, layout_.coeff_row(base, i), factor_mont);
  b.halt();
  return b.take();
}

isa::program microcode_compiler::compile_modmul_const(const twiddle_plan& plan, unsigned b_row,
                                                      u64 a_mont, unsigned dst_row) const {
  require_compatible(plan);
  isa::program_builder b;
  emit_modmul_const_body(b, static_cast<std::uint16_t>(b_row), a_mont);
  emit_resolve(b, static_cast<std::uint16_t>(dst_row));
  emit_cond_sub(b, static_cast<std::uint16_t>(dst_row));
  b.halt();
  return b.take();
}

isa::program microcode_compiler::compile_modmul_data(unsigned a_row, unsigned b_row,
                                                     unsigned dst_row) const {
  isa::program_builder b;
  emit_modmul_data_body(b, static_cast<std::uint16_t>(a_row), static_cast<std::uint16_t>(b_row));
  emit_resolve(b, static_cast<std::uint16_t>(dst_row));
  emit_cond_sub(b, static_cast<std::uint16_t>(dst_row));
  b.halt();
  return b.take();
}

isa::program microcode_compiler::compile_mod_add(unsigned dst, unsigned a, unsigned b_row) const {
  isa::program_builder b;
  emit_mod_add(b, static_cast<std::uint16_t>(dst), static_cast<std::uint16_t>(a),
               static_cast<std::uint16_t>(b_row));
  b.halt();
  return b.take();
}

isa::program microcode_compiler::compile_mod_sub(unsigned dst, unsigned a, unsigned b_row) const {
  isa::program_builder b;
  emit_mod_sub(b, static_cast<std::uint16_t>(dst), static_cast<std::uint16_t>(a),
               static_cast<std::uint16_t>(b_row));
  b.halt();
  return b.take();
}

}  // namespace bpntt::core
