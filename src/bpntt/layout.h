// Row map of one BP-NTT data subarray (Fig. 5a).
//
// Coefficient i of every lane lives in row `i` (all lanes share wordlines —
// that sharing is the paper's "costless shift": butterfly operand alignment
// is pure row selection).  Above the data rows sit six mutable intermediate
// rows (SUM/CARRY and four temporaries — the paper's "6 rows for
// intermediate variables") and three constant rows our microcode needs:
// M, 2^k - M (for the two's-complement conditional subtract) and the
// all-ones-LSB row used to finish two's-complement negation.  The paper's
// cell accounting counts only the 6 intermediates; footprint helpers below
// report both accountings (used by the Fig. 7 bench).
#pragma once

#include <cstdint>
#include <stdexcept>

namespace bpntt::core {

struct row_layout;

// A validated window of coefficient rows [base, base+rows).  Regions are the
// only way to address data rows through the engine's kernel surface: they can
// be obtained solely from a row_layout (or the engine conveniences built on
// it), so a region in hand is proof the window fits the subarray — no bare
// row arithmetic at call sites, no per-kernel bounds rechecks.
class region {
 public:
  region() = default;

  [[nodiscard]] unsigned base() const noexcept { return base_; }
  [[nodiscard]] std::uint64_t rows() const noexcept { return rows_; }
  [[nodiscard]] bool empty() const noexcept { return rows_ == 0; }

  friend bool operator==(const region&, const region&) = default;

 private:
  friend struct row_layout;
  region(unsigned base, std::uint64_t rows) : base_(base), rows_(rows) {}

  unsigned base_ = 0;
  std::uint64_t rows_ = 0;
};

struct row_layout {
  unsigned data_rows = 256;

  static constexpr unsigned scratch_rows = 6;
  static constexpr unsigned const_rows = 3;
  static constexpr unsigned stage_rows = 1;  // Kyber-mode basemul staging

  // Mutable intermediates.
  [[nodiscard]] std::uint16_t sum() const noexcept { return u16(data_rows + 0); }
  [[nodiscard]] std::uint16_t carry() const noexcept { return u16(data_rows + 1); }
  [[nodiscard]] std::uint16_t c1() const noexcept { return u16(data_rows + 2); }
  [[nodiscard]] std::uint16_t s1() const noexcept { return u16(data_rows + 3); }
  [[nodiscard]] std::uint16_t c2() const noexcept { return u16(data_rows + 4); }
  [[nodiscard]] std::uint16_t t() const noexcept { return u16(data_rows + 5); }

  // Constants (written once at engine initialisation).
  [[nodiscard]] std::uint16_t m_row() const noexcept { return u16(data_rows + 6); }
  [[nodiscard]] std::uint16_t mneg_row() const noexcept { return u16(data_rows + 7); }
  [[nodiscard]] std::uint16_t one_row() const noexcept { return u16(data_rows + 8); }

  // Staging row for the incomplete-NTT base multiplication (holds the
  // a1*b1*gamma partial while the modmul scratch block cycles).
  [[nodiscard]] std::uint16_t u() const noexcept { return u16(data_rows + 9); }

  [[nodiscard]] unsigned total_rows() const noexcept {
    return data_rows + scratch_rows + const_rows + stage_rows;
  }

  [[nodiscard]] std::uint16_t coeff_row(std::uint64_t base, std::uint64_t i) const {
    if (base + i >= data_rows) throw std::out_of_range("row_layout: coefficient row");
    return u16(base + i);
  }

  // Allocate a region handle over data rows [base, base+rows); the only
  // constructor of `region`, so every handle is bounds-checked at birth.
  [[nodiscard]] region make_region(unsigned base, std::uint64_t rows) const {
    if (rows == 0) throw std::invalid_argument("row_layout: empty region");
    // Overflow-safe form of base + rows > data_rows.
    if (rows > data_rows || base > data_rows - rows) {
      throw std::out_of_range("row_layout: region exceeds data rows");
    }
    return region(base, rows);
  }

  // SRAM cells one n-point, k-bit polynomial occupies — the paper's Fig. 7
  // accounting (n + 6 rows) and our actual accounting (n + 9 rows).
  [[nodiscard]] static std::uint64_t footprint_cells_paper(std::uint64_t n, unsigned k) noexcept {
    return (n + scratch_rows) * k;
  }
  [[nodiscard]] static std::uint64_t footprint_cells_actual(std::uint64_t n, unsigned k) noexcept {
    return (n + scratch_rows + const_rows) * k;
  }

 private:
  [[nodiscard]] static std::uint16_t u16(std::uint64_t v) noexcept {
    return static_cast<std::uint16_t>(v);
  }
};

}  // namespace bpntt::core
