#include "bpntt/bank.h"

#include <algorithm>
#include <stdexcept>

namespace bpntt::core {

void bank_config::validate() const {
  if (subarrays < 2 || subarrays > 64) {
    throw std::invalid_argument(
        "bank_config: subarrays must be in [2, 64] — one subarray is always repurposed as the "
        "CTRL/CMD store, so at least one more is needed for compute");
  }
  array.validate();
}

bp_ntt_bank::bp_ntt_bank(const bank_config& cfg, const ntt_params& params)
    : cfg_(cfg), params_(params) {
  cfg_.validate();
  params_.validate();
  for (unsigned s = 0; s + 1 < cfg_.subarrays; ++s) {
    engines_.push_back(std::make_unique<bp_ntt_engine>(cfg_.array, params_, /*seed=*/s + 1));
  }
}

bp_ntt_bank::exclusive_guard::exclusive_guard(std::atomic_flag& flag) : flag_(flag) {
  if (flag_.test_and_set(std::memory_order_acquire)) {
    throw std::logic_error(
        "bp_ntt_bank: concurrent batch entry — two dispatch groups were scheduled onto the "
        "same bank (scheduler bank-reservation bug)");
  }
}

bp_ntt_bank::exclusive_guard::~exclusive_guard() {
  flag_.clear(std::memory_order_release);
}

unsigned bp_ntt_bank::ctrl_rows_used() const noexcept {
  // Twiddles (n-1), inverse twiddles (n-1), n^-1, R^2 and the three row
  // constants, each k bits, packed into cols-wide control rows.
  const std::uint64_t words = 2 * (params_.n - 1) + 5;
  const std::uint64_t bits = words * params_.k;
  return static_cast<unsigned>((bits + cfg_.array.cols - 1) / cfg_.array.cols);
}

double bp_ntt_bank::area_mm2() const {
  const row_layout layout{cfg_.array.data_rows};
  return cfg_.subarrays *
         sram::subarray_area_mm2(cfg_.array.tech, layout.total_rows(), cfg_.array.cols);
}

template <typename LoadFn, typename RunFn, typename ReadFn>
bank_run_result bp_ntt_bank::schedule(std::size_t njobs, LoadFn&& load, RunFn&& run,
                                      ReadFn&& read) {
  const exclusive_guard exclusive(*busy_);
  bank_run_result result;
  result.outputs.resize(njobs);
  const unsigned per_engine = engines_.empty() ? 0u : engines_.front()->lanes();
  if (per_engine == 0) {
    if (njobs != 0) throw std::logic_error("bp_ntt_bank: no compute subarrays to schedule on");
    return result;
  }

  std::size_t next = 0;
  while (next < njobs) {
    // Fill one wave: engine e, lane l <- job next++.
    struct placement {
      std::size_t job;
      unsigned engine;
      unsigned lane;
    };
    std::vector<placement> wave;
    for (unsigned e = 0; e < engines_.size() && next < njobs; ++e) {
      for (unsigned lane = 0; lane < per_engine && next < njobs; ++lane, ++next) {
        load(*engines_[e], lane, next);
        wave.push_back({next, e, lane});
      }
    }
    // Execute every touched subarray; they run concurrently, so the wave
    // costs the slowest one.
    std::uint64_t wave_cycles = 0;
    std::vector<bool> ran(engines_.size(), false);
    for (const auto& p : wave) ran[p.engine] = true;
    for (unsigned e = 0; e < engines_.size(); ++e) {
      if (!ran[e]) continue;
      const sram::op_stats stats = run(*engines_[e]);
      wave_cycles = std::max(wave_cycles, stats.cycles);
      result.energy_nj += stats.energy_pj * 1e-3;
      result.stats += stats;
    }
    for (const auto& p : wave) {
      result.outputs[p.job] = read(*engines_[p.engine], p.lane, p.job);
    }
    result.cycles += wave_cycles;
    ++result.waves;
  }
  // The per-wave max is the bank's wall clock; surface it on the summed
  // stats too so callers get one coherent op_stats.
  result.stats.cycles = result.cycles;
  return result;
}

bank_run_result bp_ntt_bank::run_forward_batch(const std::vector<std::vector<u64>>& jobs) {
  return run_ntt_batch(jobs, transform_dir::forward);
}

bank_run_result bp_ntt_bank::run_ntt_batch(const std::vector<std::vector<u64>>& jobs,
                                           transform_dir dir) {
  for (const auto& j : jobs) {
    if (j.size() != params_.n) throw std::invalid_argument("bp_ntt_bank: job size mismatch");
  }
  return schedule(
      jobs.size(),
      [&](bp_ntt_engine& eng, unsigned lane, std::size_t job) {
        eng.load_polynomial(lane, jobs[job]);
      },
      [&](bp_ntt_engine& eng) {
        return dir == transform_dir::forward ? eng.run_forward() : eng.run_inverse();
      },
      [&](bp_ntt_engine& eng, unsigned lane, std::size_t) {
        return eng.peek_polynomial(lane, params_.n);
      });
}

bank_run_result bp_ntt_bank::run_polymul_batch(const std::vector<polymul_pair>& jobs) {
  if (!supports_polymul()) {
    throw std::invalid_argument(
        "bp_ntt_bank: polymul needs two n-row regions per lane (2n <= data_rows)");
  }
  for (const auto& j : jobs) {
    if (j.a.size() != params_.n || j.b.size() != params_.n) {
      throw std::invalid_argument("bp_ntt_bank: job size mismatch");
    }
  }
  const unsigned n = static_cast<unsigned>(params_.n);
  return schedule(
      jobs.size(),
      [&](bp_ntt_engine& eng, unsigned lane, std::size_t job) {
        eng.load_polynomial(lane, jobs[job].a, eng.poly_region(0));
        eng.load_polynomial(lane, jobs[job].b, eng.poly_region(n));
      },
      [&](bp_ntt_engine& eng) {
        const auto ra = eng.poly_region(0);
        const auto rb = eng.poly_region(n);
        sram::op_stats stats = eng.run_forward(ra);
        stats += eng.run_forward(rb);
        stats += params_.incomplete ? eng.run_basemul(ra, rb, /*scale_b=*/true)
                                    : eng.run_pointwise(ra, rb, ra, /*scale_b=*/true);
        stats += eng.run_inverse(ra);
        return stats;
      },
      [&](bp_ntt_engine& eng, unsigned lane, std::size_t) {
        return eng.peek_polynomial(lane, eng.poly_region(0));
      });
}

bank_run_result bp_ntt_bank::run_transformed_polymul_batch(
    const std::vector<polymul_pair>& jobs) {
  if (!supports_polymul()) {
    throw std::invalid_argument(
        "bp_ntt_bank: polymul needs two n-row regions per lane (2n <= data_rows)");
  }
  for (const auto& j : jobs) {
    if (j.a.size() != params_.n || j.b.size() != params_.n) {
      throw std::invalid_argument("bp_ntt_bank: job size mismatch");
    }
  }
  const unsigned n = static_cast<unsigned>(params_.n);
  return schedule(
      jobs.size(),
      [&](bp_ntt_engine& eng, unsigned lane, std::size_t job) {
        eng.load_polynomial(lane, jobs[job].a, eng.poly_region(0));
        eng.load_polynomial(lane, jobs[job].b, eng.poly_region(n));
      },
      [&](bp_ntt_engine& eng) {
        const auto ra = eng.poly_region(0);
        const auto rb = eng.poly_region(n);
        sram::op_stats stats = params_.incomplete
                                   ? eng.run_basemul(ra, rb, /*scale_b=*/true)
                                   : eng.run_pointwise(ra, rb, ra, /*scale_b=*/true);
        stats += eng.run_inverse(ra);
        return stats;
      },
      [&](bp_ntt_engine& eng, unsigned lane, std::size_t) {
        return eng.peek_polynomial(lane, eng.poly_region(0));
      });
}

}  // namespace bpntt::core
