#include "bpntt/bank.h"

#include <algorithm>
#include <stdexcept>

namespace bpntt::core {

void bank_config::validate() const {
  if (subarrays < 2 || subarrays > 64) {
    throw std::invalid_argument("bank_config: need 2..64 subarrays (one is CTRL/CMD)");
  }
  array.validate();
}

bp_ntt_bank::bp_ntt_bank(const bank_config& cfg, const ntt_params& params)
    : cfg_(cfg), params_(params) {
  cfg_.validate();
  params_.validate();
  for (unsigned s = 0; s + 1 < cfg_.subarrays; ++s) {
    engines_.push_back(std::make_unique<bp_ntt_engine>(cfg_.array, params_, /*seed=*/s + 1));
  }
}

unsigned bp_ntt_bank::ctrl_rows_used() const noexcept {
  // Twiddles (n-1), inverse twiddles (n-1), n^-1, R^2 and the three row
  // constants, each k bits, packed into cols-wide control rows.
  const std::uint64_t words = 2 * (params_.n - 1) + 5;
  const std::uint64_t bits = words * params_.k;
  return static_cast<unsigned>((bits + cfg_.array.cols - 1) / cfg_.array.cols);
}

double bp_ntt_bank::area_mm2() const {
  const row_layout layout{cfg_.array.data_rows};
  return cfg_.subarrays *
         sram::subarray_area_mm2(cfg_.array.tech, layout.total_rows(), cfg_.array.cols);
}

bank_run_result bp_ntt_bank::run_forward_batch(const std::vector<std::vector<u64>>& jobs) {
  bank_run_result result;
  result.outputs.resize(jobs.size());
  const unsigned per_engine = engines_.front()->lanes();

  std::size_t next = 0;
  while (next < jobs.size()) {
    // Fill one wave: engine e, lane l <- job next++.
    struct placement {
      std::size_t job;
      unsigned engine;
      unsigned lane;
    };
    std::vector<placement> wave;
    for (unsigned e = 0; e < engines_.size() && next < jobs.size(); ++e) {
      for (unsigned lane = 0; lane < per_engine && next < jobs.size(); ++lane, ++next) {
        if (jobs[next].size() != params_.n) {
          throw std::invalid_argument("bp_ntt_bank: job size mismatch");
        }
        engines_[e]->load_polynomial(lane, jobs[next]);
        wave.push_back({next, e, lane});
      }
    }
    // Execute every touched subarray; they run concurrently, so the wave
    // costs the slowest one.
    std::uint64_t wave_cycles = 0;
    std::vector<bool> ran(engines_.size(), false);
    for (const auto& p : wave) ran[p.engine] = true;
    for (unsigned e = 0; e < engines_.size(); ++e) {
      if (!ran[e]) continue;
      const auto stats = engines_[e]->run_forward();
      wave_cycles = std::max(wave_cycles, stats.cycles);
      result.energy_nj += stats.energy_pj * 1e-3;
    }
    for (const auto& p : wave) {
      result.outputs[p.job] = engines_[p.engine]->peek_polynomial(p.lane, params_.n);
    }
    result.cycles += wave_cycles;
    ++result.waves;
  }
  return result;
}

}  // namespace bpntt::core
