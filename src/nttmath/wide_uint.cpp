#include "nttmath/wide_uint.h"

#include <stdexcept>

namespace bpntt::math {
namespace {
constexpr unsigned kLimbBits = 64;
}

wide_uint::wide_uint(unsigned bits) : bits_(bits) {
  if (bits == 0 || bits > 4096) throw std::invalid_argument("wide_uint: bad width");
  limbs_.assign((bits + kLimbBits - 1) / kLimbBits, 0);
}

wide_uint wide_uint::internal_width(unsigned bits) {
  // Bypasses the public 4096-bit cap: division needs one carry bit of
  // working width even at the maximum client width.
  wide_uint r;
  r.bits_ = bits;
  r.limbs_.assign((bits + kLimbBits - 1) / kLimbBits, 0);
  return r;
}

wide_uint::wide_uint(unsigned bits, std::uint64_t value) : wide_uint(bits) {
  limbs_[0] = value;
  trim();
}

void wide_uint::trim() noexcept {
  const unsigned top = bits_ % kLimbBits;
  if (top != 0) limbs_.back() &= (top == 64 ? ~0ULL : ((1ULL << top) - 1));
}

bool wide_uint::is_zero() const noexcept {
  for (auto l : limbs_) {
    if (l != 0) return false;
  }
  return true;
}

bool wide_uint::bit(unsigned i) const noexcept {
  if (i >= bits_) return false;
  return (limbs_[i / kLimbBits] >> (i % kLimbBits)) & 1ULL;
}

void wide_uint::set_bit(unsigned i, bool v) noexcept {
  if (i >= bits_) return;
  const std::uint64_t mask = 1ULL << (i % kLimbBits);
  if (v) {
    limbs_[i / kLimbBits] |= mask;
  } else {
    limbs_[i / kLimbBits] &= ~mask;
  }
}

std::uint64_t wide_uint::low64() const noexcept { return limbs_.empty() ? 0 : limbs_[0]; }

std::string wide_uint::to_hex() const {
  static const char* digits = "0123456789abcdef";
  std::string out;
  bool leading = true;
  for (unsigned i = (bits_ + 3) / 4; i-- > 0;) {
    const unsigned nibble = static_cast<unsigned>((limbs_[i * 4 / kLimbBits] >> (i * 4 % kLimbBits)) & 0xF);
    if (nibble == 0 && leading && i != 0) continue;
    leading = false;
    out += digits[nibble];
  }
  return out;
}

wide_uint wide_uint::operator&(const wide_uint& o) const {
  if (bits_ != o.bits_) throw std::invalid_argument("wide_uint: width mismatch");
  wide_uint r(bits_);
  for (std::size_t i = 0; i < limbs_.size(); ++i) r.limbs_[i] = limbs_[i] & o.limbs_[i];
  return r;
}

wide_uint wide_uint::operator|(const wide_uint& o) const {
  if (bits_ != o.bits_) throw std::invalid_argument("wide_uint: width mismatch");
  wide_uint r(bits_);
  for (std::size_t i = 0; i < limbs_.size(); ++i) r.limbs_[i] = limbs_[i] | o.limbs_[i];
  return r;
}

wide_uint wide_uint::operator^(const wide_uint& o) const {
  if (bits_ != o.bits_) throw std::invalid_argument("wide_uint: width mismatch");
  wide_uint r(bits_);
  for (std::size_t i = 0; i < limbs_.size(); ++i) r.limbs_[i] = limbs_[i] ^ o.limbs_[i];
  return r;
}

wide_uint wide_uint::shl1() const {
  wide_uint r = internal_width(bits_);  // divmod shifts at carry-headroom width
  std::uint64_t carry = 0;
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    r.limbs_[i] = (limbs_[i] << 1) | carry;
    carry = limbs_[i] >> 63;
  }
  r.trim();
  return r;
}

wide_uint wide_uint::shr1() const {
  wide_uint r(bits_);
  std::uint64_t carry = 0;
  for (std::size_t i = limbs_.size(); i-- > 0;) {
    r.limbs_[i] = (limbs_[i] >> 1) | (carry << 63);
    carry = limbs_[i] & 1ULL;
  }
  return r;
}

wide_uint wide_uint::shl(unsigned k) const {
  wide_uint r = *this;
  for (unsigned i = 0; i < k; ++i) r = r.shl1();
  return r;
}

wide_uint wide_uint::add(const wide_uint& o) const {
  if (bits_ != o.bits_) throw std::invalid_argument("wide_uint: width mismatch");
  wide_uint r(bits_);
  unsigned __int128 carry = 0;
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    const unsigned __int128 s = carry + limbs_[i] + o.limbs_[i];
    r.limbs_[i] = static_cast<std::uint64_t>(s);
    carry = s >> 64;
  }
  r.trim();
  return r;
}

wide_uint wide_uint::sub(const wide_uint& o) const {
  if (bits_ != o.bits_) throw std::invalid_argument("wide_uint: width mismatch");
  wide_uint r = internal_width(bits_);  // divmod subtracts at carry-headroom width
  std::int64_t borrow = 0;
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    const unsigned __int128 lhs = limbs_[i];
    const unsigned __int128 rhs = static_cast<unsigned __int128>(o.limbs_[i]) +
                                  static_cast<unsigned __int128>(borrow);
    if (lhs >= rhs) {
      r.limbs_[i] = static_cast<std::uint64_t>(lhs - rhs);
      borrow = 0;
    } else {
      r.limbs_[i] = static_cast<std::uint64_t>((static_cast<unsigned __int128>(1) << 64) + lhs - rhs);
      borrow = 1;
    }
  }
  r.trim();
  return r;
}

wide_uint wide_uint::resized(unsigned new_bits) const {
  wide_uint r(new_bits);
  const std::size_t common = std::min(r.limbs_.size(), limbs_.size());
  for (std::size_t i = 0; i < common; ++i) r.limbs_[i] = limbs_[i];
  r.trim();
  return r;
}

wide_uint wide_uint::mul(const wide_uint& o) const {
  // Schoolbook limb products; partial sums above this width are dropped
  // (mod 2^bits), so only the limbs that can land inside it are computed.
  wide_uint r(bits_);
  const std::size_t n = r.limbs_.size();
  for (std::size_t i = 0; i < std::min(limbs_.size(), n); ++i) {
    if (limbs_[i] == 0) continue;
    unsigned __int128 carry = 0;
    for (std::size_t j = 0; i + j < n; ++j) {
      const std::uint64_t oj = j < o.limbs_.size() ? o.limbs_[j] : 0;
      const unsigned __int128 cur =
          static_cast<unsigned __int128>(limbs_[i]) * oj + r.limbs_[i + j] + carry;
      r.limbs_[i + j] = static_cast<std::uint64_t>(cur);
      carry = cur >> 64;
    }
  }
  r.trim();
  return r;
}

wide_uint wide_uint::mul_u64(std::uint64_t s) const {
  wide_uint r(bits_);
  unsigned __int128 carry = 0;
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    const unsigned __int128 cur = static_cast<unsigned __int128>(limbs_[i]) * s + carry;
    r.limbs_[i] = static_cast<std::uint64_t>(cur);
    carry = cur >> 64;
  }
  r.trim();
  return r;
}

wide_divmod wide_uint::divmod(const wide_uint& d) const {
  if (d.is_zero()) throw std::domain_error("wide_uint: division by zero");
  wide_divmod out{wide_uint(bits_), wide_uint(bits_)};
  if (d.bits() > bits_ && d.resized(bits_).compare(d) != 0) {
    // The divisor exceeds this width entirely: quotient 0, remainder = this.
    out.rem = *this;
    return out;
  }
  // Binary long division, MSB first.  The running remainder stays below
  // 2*divisor, which can exceed 2^bits when the divisor's top bit is set —
  // one spare bit of working width keeps the shift lossless.
  wide_uint divisor = internal_width(bits_ + 1);
  for (std::size_t i = 0; i < std::min(d.limbs_.size(), divisor.limbs_.size()); ++i) {
    divisor.limbs_[i] = d.limbs_[i];
  }
  divisor.trim();  // d's value fits bits_ (checked above), so nothing is lost
  wide_uint rem = internal_width(bits_ + 1);
  for (unsigned i = bits_; i-- > 0;) {
    rem = rem.shl1();
    if (bit(i)) rem.limbs_[0] |= 1ULL;
    if (rem >= divisor) {
      rem = rem.sub(divisor);
      out.quot.set_bit(i, true);
    }
  }
  out.rem = rem.resized(bits_);
  return out;
}

wide_uint wide_uint::divround(const wide_uint& d) const {
  wide_divmod dm = divmod(d);
  // Ties round up: the quotient bumps when 2*rem >= d, i.e. d - rem <= rem.
  // Compared at a width holding both operands, so a divisor wider than this
  // value (quotient 0, rem = *this) still rounds correctly.
  const unsigned w = std::max(bits_, d.bits());
  const wide_uint rem = dm.rem.resized(w);
  if (!rem.is_zero() && d.resized(w).sub(rem).compare(rem) <= 0) {
    dm.quot = dm.quot.add(wide_uint(bits_, 1));
  }
  return dm.quot;
}

std::uint64_t wide_uint::mod_u64(std::uint64_t m) const {
  if (m == 0) throw std::domain_error("wide_uint: division by zero");
  unsigned __int128 rem = 0;
  for (std::size_t i = limbs_.size(); i-- > 0;) {
    rem = ((rem << 64) | limbs_[i]) % m;
  }
  return static_cast<std::uint64_t>(rem);
}

int wide_uint::compare(const wide_uint& o) const noexcept {
  const std::size_t n = std::max(limbs_.size(), o.limbs_.size());
  for (std::size_t i = n; i-- > 0;) {
    const std::uint64_t a = i < limbs_.size() ? limbs_[i] : 0;
    const std::uint64_t b = i < o.limbs_.size() ? o.limbs_[i] : 0;
    if (a != b) return a < b ? -1 : 1;
  }
  return 0;
}

wide_uint wide_uint::add_mod(const wide_uint& a, const wide_uint& b, const wide_uint& m) {
  wide_uint s = a.add(b);
  if (s >= m) s = s.sub(m);
  return s;
}

wide_uint wide_uint::mul_mod(const wide_uint& a, const wide_uint& b, const wide_uint& m) {
  // Double-and-add from the top bit down; all intermediates stay < m so the
  // fixed width (>= bits(m)+1) never wraps.
  wide_uint acc(a.bits());
  for (unsigned i = a.bits(); i-- > 0;) {
    acc = add_mod(acc, acc, m);
    if (a.bit(i)) acc = add_mod(acc, b, m);
  }
  return acc;
}

wide_uint wide_uint::pow2_mod(unsigned k, const wide_uint& m) {
  wide_uint r(m.bits(), 1);
  for (unsigned i = 0; i < k; ++i) r = add_mod(r, r, m);
  return r;
}

}  // namespace bpntt::math
