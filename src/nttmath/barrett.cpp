#include "nttmath/barrett.h"

#include <stdexcept>

#include "common/bitutil.h"

namespace bpntt::math {

barrett::barrett(u64 q) : q_(q) {
  if (q < 2) throw std::invalid_argument("barrett: q must be >= 2");
  if (q >= (1ULL << 62)) throw std::invalid_argument("barrett: q must be < 2^62");
  shift_ = 2 * common::bit_length(q);
  // floor(2^shift / q) computed with 128-bit division.
  mu_ = (static_cast<u128>(1) << shift_) / q;
}

u64 barrett::reduce(u128 a) const noexcept {
  // Classic Barrett: estimate = floor(a * mu / 2^shift); remainder needs at
  // most two correction subtractions.
  // Compute high part of a * mu without a 256-bit type by splitting a.
  const u64 a_lo = static_cast<u64>(a);
  const u64 a_hi = static_cast<u64>(a >> 64);
  const u64 mu_lo = static_cast<u64>(mu_);
  const u64 mu_hi = static_cast<u64>(mu_ >> 64);

  // a * mu = (a_hi*mu_hi << 128) + (a_hi*mu_lo + a_lo*mu_hi << 64) + a_lo*mu_lo
  const u128 cross = static_cast<u128>(a_hi) * mu_lo + static_cast<u128>(a_lo) * mu_hi;
  const u128 low = static_cast<u128>(a_lo) * mu_lo;
  const u128 mid = cross + (low >> 64);
  // Bits [shift_, shift_+64) of the 256-bit product; shift_ <= 124 and the
  // estimate fits in 128 bits for a < q^2.
  u128 estimate;
  if (shift_ >= 64) {
    const u128 hi192 = (static_cast<u128>(a_hi) * mu_hi << 64) + mid;  // product >> 64
    estimate = hi192 >> (shift_ - 64);
  } else {
    estimate = (mid << (64 - shift_)) | (static_cast<u64>(low) >> shift_);
  }
  u128 r = a - estimate * q_;
  while (r >= q_) r -= q_;
  return static_cast<u64>(r);
}

}  // namespace bpntt::math
