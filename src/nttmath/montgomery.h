// Montgomery modular multiplication — two flavours.
//
// 1. montgomery64: the classic word-level REDC with R = 2^64, used by the
//    fast golden NTT on the CPU.
// 2. interleaved_montgomery: the textbook radix-2 interleaved algorithm with
//    R = 2^k.  This is the mathematical specification that the paper's
//    Algorithm 2 implements in carry-save form; the BP-NTT tests check the
//    bit-parallel model against this function bit-for-bit.
#pragma once

#include <cstdint>

#include "nttmath/modarith.h"

namespace bpntt::math {

// Word-level Montgomery context with R = 2^64.  Requires odd q < 2^62.
class montgomery64 {
 public:
  explicit montgomery64(u64 q);

  [[nodiscard]] u64 q() const noexcept { return q_; }
  [[nodiscard]] u64 to_mont(u64 a) const noexcept;    // a * R mod q
  [[nodiscard]] u64 from_mont(u64 a) const noexcept;  // a * R^-1 mod q
  // (a * b * R^-1) mod q for a, b < q.
  [[nodiscard]] u64 mul(u64 a, u64 b) const noexcept;
  // Plain modular product computed through the Montgomery domain.
  [[nodiscard]] u64 mul_plain(u64 a, u64 b) const noexcept {
    return mul(to_mont(a), b);
  }

 private:
  [[nodiscard]] u64 redc(u128 t) const noexcept;

  u64 q_ = 0;
  u64 q_inv_neg_ = 0;  // -q^-1 mod 2^64
  u64 r2_ = 0;         // R^2 mod q
};

// Radix-2 interleaved Montgomery multiplication with R = 2^k.
// Returns a * b * 2^-k mod q (canonical, < q).  Requires odd q, q < 2^k,
// a, b < q, and k <= 63.  This is the specification for Algorithm 2.
[[nodiscard]] u64 interleaved_montgomery(u64 a, u64 b, u64 q, unsigned k) noexcept;

// R mod q and R^2 mod q for R = 2^k (twiddle pre-scaling uses these).
[[nodiscard]] u64 mont_r(u64 q, unsigned k) noexcept;
[[nodiscard]] u64 mont_r2(u64 q, unsigned k) noexcept;

}  // namespace bpntt::math
