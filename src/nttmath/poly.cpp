#include "nttmath/poly.h"

#include <stdexcept>

namespace bpntt::math {
namespace {

std::vector<u64> schoolbook(std::span<const u64> a, std::span<const u64> b, u64 q,
                            bool negacyclic) {
  if (a.size() != b.size()) throw std::invalid_argument("schoolbook: size mismatch");
  const std::size_t n = a.size();
  std::vector<u64> c(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    if (a[i] == 0) continue;
    for (std::size_t j = 0; j < n; ++j) {
      const u64 prod = mul_mod(a[i], b[j], q);
      const std::size_t k = i + j;
      if (k < n) {
        c[k] = add_mod(c[k], prod, q);
      } else if (negacyclic) {
        c[k - n] = sub_mod(c[k - n], prod, q);  // x^n = -1
      } else {
        c[k - n] = add_mod(c[k - n], prod, q);  // x^n = 1
      }
    }
  }
  return c;
}

}  // namespace

std::vector<u64> schoolbook_negacyclic(std::span<const u64> a, std::span<const u64> b, u64 q) {
  return schoolbook(a, b, q, true);
}

std::vector<u64> schoolbook_cyclic(std::span<const u64> a, std::span<const u64> b, u64 q) {
  return schoolbook(a, b, q, false);
}

std::vector<u64> polymul_ntt(std::span<const u64> a, std::span<const u64> b,
                             const ntt_tables& t) {
  std::vector<u64> fa(a.begin(), a.end());
  std::vector<u64> fb(b.begin(), b.end());
  std::vector<u64> c(a.size());
  if (t.negacyclic()) {
    ntt_forward(fa, t);
    ntt_forward(fb, t);
    ntt_pointwise(fa, fb, c, t.q());
    ntt_inverse(c, t);
  } else {
    cyclic_ntt_forward(fa, t);
    cyclic_ntt_forward(fb, t);
    ntt_pointwise(fa, fb, c, t.q());
    cyclic_ntt_inverse(c, t);
  }
  return c;
}

std::vector<u64> poly_add(std::span<const u64> a, std::span<const u64> b, u64 q) {
  if (a.size() != b.size()) throw std::invalid_argument("poly_add: size mismatch");
  std::vector<u64> c(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) c[i] = add_mod(a[i], b[i], q);
  return c;
}

std::vector<u64> poly_sub(std::span<const u64> a, std::span<const u64> b, u64 q) {
  if (a.size() != b.size()) throw std::invalid_argument("poly_sub: size mismatch");
  std::vector<u64> c(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) c[i] = sub_mod(a[i], b[i], q);
  return c;
}

}  // namespace bpntt::math
