#include "nttmath/incomplete_ntt.h"

#include <stdexcept>

#include "common/bitutil.h"
#include "nttmath/roots.h"

namespace bpntt::math {

incomplete_ntt_tables::incomplete_ntt_tables(u64 n, u64 q) : n_(n), q_(q) {
  if (!common::is_power_of_two(n) || n < 4) {
    throw std::invalid_argument("incomplete_ntt_tables: n must be a power of two >= 4");
  }
  if ((q - 1) % n != 0) {
    throw std::invalid_argument("incomplete_ntt_tables: need n | q-1");
  }
  zeta_ = primitive_root_of_unity(n, q);
  half_n_inv_ = inv_mod((n / 2) % q, q);

  const unsigned logh = common::log2_exact(n / 2);
  zetas_.assign(n / 2, 0);
  zetas_inv_.assign(n / 2, 0);
  for (u64 k = 1; k < n / 2; ++k) {
    zetas_[k] = pow_mod(zeta_, common::reverse_bits(k, logh), q);
    zetas_inv_[k] = inv_mod(zetas_[k], q);
  }
  gammas_.assign(n / 2, 0);
  for (u64 i = 0; i < n / 2; ++i) {
    gammas_[i] = pow_mod(zeta_, 2 * common::reverse_bits(i, logh) + 1, q);
  }
}

void incomplete_ntt_forward(std::span<u64> a, const incomplete_ntt_tables& t) {
  const u64 q = t.q();
  const u64 n = t.n();
  if (a.size() != n) throw std::invalid_argument("incomplete_ntt_forward: size mismatch");
  std::size_t k = 1;
  for (u64 len = n / 2; len >= 2; len >>= 1) {
    for (u64 start = 0; start < n; start += 2 * len) {
      const u64 zeta = t.zetas()[k++];
      for (u64 j = start; j < start + len; ++j) {
        const u64 v = mul_mod(zeta, a[j + len], q);
        a[j + len] = sub_mod(a[j], v, q);
        a[j] = add_mod(a[j], v, q);
      }
    }
  }
}

void incomplete_ntt_inverse(std::span<u64> a, const incomplete_ntt_tables& t) {
  const u64 q = t.q();
  const u64 n = t.n();
  if (a.size() != n) throw std::invalid_argument("incomplete_ntt_inverse: size mismatch");
  for (u64 len = 2; len <= n / 2; len <<= 1) {
    const u64 k_base = n / (2 * len);
    for (u64 start = 0; start < n; start += 2 * len) {
      const u64 zeta_inv = t.zetas_inv()[k_base + start / (2 * len)];
      for (u64 j = start; j < start + len; ++j) {
        const u64 u = a[j];
        const u64 v = a[j + len];
        a[j] = add_mod(u, v, q);
        a[j + len] = mul_mod(sub_mod(u, v, q), zeta_inv, q);
      }
    }
  }
  for (auto& x : a) x = mul_mod(x, t.half_n_inv(), q);
}

void incomplete_basemul(std::span<const u64> a, std::span<const u64> b, std::span<u64> c,
                        const incomplete_ntt_tables& t) {
  const u64 q = t.q();
  if (a.size() != t.n() || b.size() != t.n() || c.size() != t.n()) {
    throw std::invalid_argument("incomplete_basemul: size mismatch");
  }
  for (u64 i = 0; i < t.n() / 2; ++i) {
    const u64 g = t.gammas()[i];
    const u64 a0 = a[2 * i], a1 = a[2 * i + 1];
    const u64 b0 = b[2 * i], b1 = b[2 * i + 1];
    c[2 * i] = add_mod(mul_mod(a0, b0, q), mul_mod(mul_mod(a1, b1, q), g, q), q);
    c[2 * i + 1] = add_mod(mul_mod(a0, b1, q), mul_mod(a1, b0, q), q);
  }
}

std::vector<u64> polymul_incomplete(std::span<const u64> a, std::span<const u64> b,
                                    const incomplete_ntt_tables& t) {
  std::vector<u64> fa(a.begin(), a.end());
  std::vector<u64> fb(b.begin(), b.end());
  std::vector<u64> c(a.size());
  incomplete_ntt_forward(fa, t);
  incomplete_ntt_forward(fb, t);
  incomplete_basemul(fa, fb, c, t);
  incomplete_ntt_inverse(c, t);
  return c;
}

}  // namespace bpntt::math
