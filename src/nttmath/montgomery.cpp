#include "nttmath/montgomery.h"

#include <cassert>
#include <stdexcept>

namespace bpntt::math {

montgomery64::montgomery64(u64 q) : q_(q) {
  if (q == 0 || (q & 1ULL) == 0) throw std::invalid_argument("montgomery64: q must be odd");
  if (q >= (1ULL << 62)) throw std::invalid_argument("montgomery64: q must be < 2^62");
  // Newton iteration for q^-1 mod 2^64: each step doubles correct bits.
  u64 inv = q;  // correct to 3 bits for odd q
  for (int i = 0; i < 5; ++i) inv *= 2 - q * inv;
  q_inv_neg_ = ~inv + 1;
  // R^2 = 2^128 mod q as the square of R mod q = ((2^64 - 1) mod q + 1).
  const u64 r_mod_q = (~0ULL % q + 1) % q;
  r2_ = mul_mod(r_mod_q, r_mod_q, q);
}

u64 montgomery64::redc(u128 t) const noexcept {
  const u64 m = static_cast<u64>(t) * q_inv_neg_;
  const u128 sum = t + static_cast<u128>(m) * q_;
  u64 r = static_cast<u64>(sum >> 64);
  if (r >= q_) r -= q_;
  return r;
}

u64 montgomery64::to_mont(u64 a) const noexcept {
  return redc(static_cast<u128>(a) * r2_);
}

u64 montgomery64::from_mont(u64 a) const noexcept { return redc(a); }

u64 montgomery64::mul(u64 a, u64 b) const noexcept {
  return redc(static_cast<u128>(a) * b);
}

u64 interleaved_montgomery(u64 a, u64 b, u64 q, unsigned k) noexcept {
  assert((q & 1ULL) != 0 && k >= 1 && k <= 63 && q < (1ULL << k));
  assert(a < q && b < q);
  // Invariant: p < 2q throughout (see DESIGN.md §3 and the property tests).
  u64 p = 0;
  for (unsigned i = 0; i < k; ++i) {
    if ((a >> i) & 1ULL) p += b;
    if (p & 1ULL) p += q;
    p >>= 1;
  }
  if (p >= q) p -= q;
  return p;
}

u64 mont_r(u64 q, unsigned k) noexcept {
  assert(k <= 63);
  return (1ULL << k) % q;
}

u64 mont_r2(u64 q, unsigned k) noexcept {
  const u64 r = mont_r(q, k);
  return mul_mod(r, r, q);
}

}  // namespace bpntt::math
