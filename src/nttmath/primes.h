// Primality testing, factorization and NTT-friendly prime search.
//
// The paper's flexibility claims ("easily adjust the bitwidth, polynomial
// order, and modulus") require generating working moduli for arbitrary
// (bitwidth, n) pairs: an NTT of size n over Z_q needs n | q-1 (cyclic) or
// 2n | q-1 (negacyclic).  This module provides a deterministic 64-bit
// Miller-Rabin test, Pollard-rho factorization (for primitive-root search)
// and a search routine for q of a given bit size with q ≡ 1 (mod m).
#pragma once

#include <cstdint>
#include <vector>

#include "nttmath/modarith.h"

namespace bpntt::math {

// Deterministic for all 64-bit inputs (fixed witness set).
[[nodiscard]] bool is_prime(u64 n) noexcept;

// Prime factorization (with multiplicity collapsed: distinct primes only).
[[nodiscard]] std::vector<u64> distinct_prime_factors(u64 n);

// Smallest prime q >= lo with q ≡ 1 (mod m).  Returns 0 if none exists
// below `hi`.
[[nodiscard]] u64 find_prime_congruent(u64 lo, u64 hi, u64 m) noexcept;

// An NTT-friendly prime of exactly `bits` bits supporting (nega)cyclic NTTs
// of size n, i.e. q ≡ 1 (mod 2n), q odd, 2^(bits-1) <= q < 2^bits.
// Throws std::runtime_error when no such prime exists.
[[nodiscard]] u64 ntt_friendly_prime(unsigned bits, u64 n, bool negacyclic = true);

// The first k NTT-friendly primes of exactly `bits` bits (ascending),
// each supporting (nega)cyclic NTTs of size n.  Distinct primes are
// pairwise coprime by construction, which is what makes the chain a valid
// RNS basis; the result is checked for uniqueness anyway so a search bug
// can never silently hand out a degenerate basis.  Throws
// std::runtime_error naming bits/n/k and how many primes were found when
// the bit range cannot supply k of them.
[[nodiscard]] std::vector<u64> first_k_ntt_primes(unsigned bits, u64 n, unsigned k,
                                                  bool negacyclic = true);

}  // namespace bpntt::math
