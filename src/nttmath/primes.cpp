#include "nttmath/primes.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace bpntt::math {
namespace {

bool miller_rabin_witness(u64 n, u64 a, u64 d, unsigned r) noexcept {
  u64 x = pow_mod(a % n, d, n);
  if (x == 1 || x == n - 1) return true;
  for (unsigned i = 1; i < r; ++i) {
    x = mul_mod(x, x, n);
    if (x == n - 1) return true;
  }
  return false;
}

u64 pollard_rho(u64 n, u64 c) noexcept {
  // Brent-style cycle detection with batched gcds.
  auto f = [n, c](u64 x) { return add_mod(mul_mod(x, x, n), c, n); };
  u64 x = 2, y = 2, d = 1;
  u64 prod = 1;
  int count = 0;
  while (d == 1) {
    x = f(x);
    y = f(f(y));
    const u64 diff = x > y ? x - y : y - x;
    if (diff != 0) prod = mul_mod(prod, diff, n);
    if (++count % 64 == 0) {
      d = std::gcd(prod, n);
      prod = 1;
    }
  }
  if (d == n) {
    // Fall back to per-step gcd with this polynomial.
    x = 2;
    y = 2;
    d = 1;
    while (d == 1) {
      x = f(x);
      y = f(f(y));
      d = std::gcd(x > y ? x - y : y - x, n);
    }
  }
  return d;
}

void factor_rec(u64 n, std::vector<u64>& out) {
  if (n == 1) return;
  if (is_prime(n)) {
    out.push_back(n);
    return;
  }
  for (u64 c = 1;; ++c) {
    const u64 d = pollard_rho(n, c);
    if (d != n && d != 1) {
      factor_rec(d, out);
      factor_rec(n / d, out);
      return;
    }
  }
}

}  // namespace

bool is_prime(u64 n) noexcept {
  if (n < 2) return false;
  for (u64 p : {2ULL, 3ULL, 5ULL, 7ULL, 11ULL, 13ULL, 17ULL, 19ULL, 23ULL, 29ULL, 31ULL, 37ULL}) {
    if (n % p == 0) return n == p;
  }
  u64 d = n - 1;
  unsigned r = 0;
  while ((d & 1ULL) == 0) {
    d >>= 1;
    ++r;
  }
  // This witness set is deterministic for all n < 2^64 (Sinclair 2011).
  for (u64 a : {2ULL, 325ULL, 9375ULL, 28178ULL, 450775ULL, 9780504ULL, 1795265022ULL}) {
    if (a % n == 0) continue;
    if (!miller_rabin_witness(n, a, d, r)) return false;
  }
  return true;
}

std::vector<u64> distinct_prime_factors(u64 n) {
  std::vector<u64> all;
  // Strip small factors first; keeps Pollard rho inputs odd and composite.
  for (u64 p : {2ULL, 3ULL, 5ULL, 7ULL, 11ULL, 13ULL}) {
    if (n % p == 0) {
      all.push_back(p);
      while (n % p == 0) n /= p;
    }
  }
  if (n > 1) factor_rec(n, all);
  std::sort(all.begin(), all.end());
  all.erase(std::unique(all.begin(), all.end()), all.end());
  return all;
}

u64 find_prime_congruent(u64 lo, u64 hi, u64 m) noexcept {
  if (m == 0) return 0;
  // Smallest q >= lo with q ≡ 1 (mod m).
  u64 q = lo + (1 % m + m - lo % m) % m;
  for (; q != 0 && q < hi; q += m) {
    if (is_prime(q)) return q;
  }
  return 0;
}

u64 ntt_friendly_prime(unsigned bits, u64 n, bool negacyclic) {
  if (bits < 2 || bits > 62) throw std::runtime_error("ntt_friendly_prime: bits out of range");
  const u64 m = negacyclic ? 2 * n : n;
  const u64 lo = 1ULL << (bits - 1);
  const u64 hi = bits >= 63 ? ~0ULL : (1ULL << bits);
  const u64 q = find_prime_congruent(lo, hi, m);
  if (q == 0) throw std::runtime_error("ntt_friendly_prime: no prime found");
  return q;
}

std::vector<u64> first_k_ntt_primes(unsigned bits, u64 n, unsigned k, bool negacyclic) {
  if (bits < 2 || bits > 62) {
    throw std::runtime_error("first_k_ntt_primes: bits = " + std::to_string(bits) +
                             " out of range [2, 62]");
  }
  if (k == 0) throw std::runtime_error("first_k_ntt_primes: k must be >= 1");
  const u64 m = negacyclic ? 2 * n : n;
  if (m == 0) throw std::runtime_error("first_k_ntt_primes: n must be >= 1");
  const u64 hi = 1ULL << bits;
  std::vector<u64> chain;
  chain.reserve(k);
  u64 lo = 1ULL << (bits - 1);
  while (chain.size() < k) {
    const u64 q = find_prime_congruent(lo, hi, m);
    if (q == 0) break;
    chain.push_back(q);
    lo = q + 1;
  }
  if (chain.size() < k) {
    throw std::runtime_error(
        "first_k_ntt_primes: only " + std::to_string(chain.size()) + " of " + std::to_string(k) +
        " primes of exactly " + std::to_string(bits) + " bits with q == 1 (mod " +
        std::to_string(m) + ") exist; widen the limbs or shrink the chain");
  }
  // Ascending search from disjoint starting points already guarantees
  // distinctness; re-check so a search regression cannot silently produce a
  // degenerate (non-coprime) RNS basis.
  for (std::size_t i = 1; i < chain.size(); ++i) {
    if (chain[i] <= chain[i - 1]) {
      throw std::runtime_error("first_k_ntt_primes: internal error, chain is not "
                               "strictly ascending at limb " +
                               std::to_string(i));
    }
  }
  return chain;
}

}  // namespace bpntt::math
