// Barrett reduction context — the division-free reduction used by the
// measured-CPU baseline (Table I "CPU" row) and as an independent oracle in
// the modular arithmetic tests.
#pragma once

#include <cstdint>

#include "nttmath/modarith.h"

namespace bpntt::math {

class barrett {
 public:
  explicit barrett(u64 q);

  [[nodiscard]] u64 q() const noexcept { return q_; }

  // a mod q for a < q^2 (the useful range for products of reduced values).
  [[nodiscard]] u64 reduce(u128 a) const noexcept;

  [[nodiscard]] u64 mul(u64 a, u64 b) const noexcept {
    return reduce(static_cast<u128>(a) * b);
  }

 private:
  u64 q_ = 0;
  unsigned shift_ = 0;  // 2 * bit_length(q)
  u128 mu_ = 0;         // floor(2^shift / q)
};

}  // namespace bpntt::math
