// Polynomial-ring helpers over Z_q[x]/(x^n ± 1).
//
// The schoolbook products are the O(n^2) oracles the NTT-based products are
// verified against (and the "no-NTT" baseline in the roofline study).
#pragma once

#include <span>
#include <vector>

#include "nttmath/modarith.h"
#include "nttmath/ntt.h"

namespace bpntt::math {

// c = a * b mod (x^n + 1, q).  O(n^2) reference.
[[nodiscard]] std::vector<u64> schoolbook_negacyclic(std::span<const u64> a,
                                                     std::span<const u64> b, u64 q);

// c = a * b mod (x^n - 1, q).  O(n^2) reference.
[[nodiscard]] std::vector<u64> schoolbook_cyclic(std::span<const u64> a,
                                                 std::span<const u64> b, u64 q);

// c = a * b in the ring selected by the tables (negacyclic or cyclic),
// computed through the transform: INTT(NTT(a) ∘ NTT(b)).
[[nodiscard]] std::vector<u64> polymul_ntt(std::span<const u64> a, std::span<const u64> b,
                                           const ntt_tables& t);

// Pointwise ring operations.
[[nodiscard]] std::vector<u64> poly_add(std::span<const u64> a, std::span<const u64> b, u64 q);
[[nodiscard]] std::vector<u64> poly_sub(std::span<const u64> a, std::span<const u64> b, u64 q);

}  // namespace bpntt::math
