// Montgomery-accelerated NTT for the measured-CPU baseline.
//
// The plain golden transform reduces with a 128-bit division per product;
// real software implementations keep twiddles in the Montgomery domain and
// use word-level REDC — the same pre-scaling trick BP-NTT bakes into its
// command stream.  This engine exists so the Table I "CPU (measured)" row
// reflects a competitive software baseline, not a strawman.
#pragma once

#include <span>
#include <vector>

#include "nttmath/montgomery.h"
#include "nttmath/ntt.h"

namespace bpntt::math {

class fast_ntt {
 public:
  explicit fast_ntt(const ntt_tables& tables);

  [[nodiscard]] u64 n() const noexcept { return n_; }
  [[nodiscard]] u64 q() const noexcept { return q_; }

  // Canonical residues in and out; same ordering semantics as
  // ntt_forward / ntt_inverse.
  void forward(std::span<u64> a) const;
  void inverse(std::span<u64> a) const;

 private:
  u64 n_ = 0;
  u64 q_ = 0;
  montgomery64 mont_;
  std::vector<u64> zetas_mont_;      // zeta * 2^64 mod q
  std::vector<u64> zetas_inv_mont_;
  u64 n_inv_mont_ = 0;
};

}  // namespace bpntt::math
