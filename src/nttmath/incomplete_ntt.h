// Incomplete (one-layer-short) negacyclic NTT — the transform standardized
// Kyber actually uses.
//
// Kyber's q = 3329 has q-1 = 2^8 * 13, so Z_q contains 256th roots of unity
// but no 512th ones: the full 256-point negacyclic NTT does not exist.
// Instead the CT recursion stops one layer early, decomposing
// Z_q[x]/(x^n + 1) into n/2 quadratic factors (x^2 - gamma_i); products are
// finished with degree-1 "base multiplications" in each factor.
//
// This matters for BP-NTT's coverage claim: with this transform the engine
// serves standardized Kyber at its native (n=256, q=3329) parameters.
#pragma once

#include <span>
#include <vector>

#include "nttmath/modarith.h"

namespace bpntt::math {

class incomplete_ntt_tables {
 public:
  // Requires n a power of two >= 4 and n | q-1 (note: *n*, not 2n).
  incomplete_ntt_tables(u64 n, u64 q);

  [[nodiscard]] u64 n() const noexcept { return n_; }
  [[nodiscard]] u64 q() const noexcept { return q_; }
  [[nodiscard]] u64 zeta() const noexcept { return zeta_; }  // primitive n-th root
  // Twiddles consumed by the forward loop, index 1..n/2-1 (bit-reversed).
  [[nodiscard]] const std::vector<u64>& zetas() const noexcept { return zetas_; }
  [[nodiscard]] const std::vector<u64>& zetas_inv() const noexcept { return zetas_inv_; }
  // gamma_i = zeta^(2*brv(i)+1): the quadratic-factor roots, i in [0, n/2).
  [[nodiscard]] const std::vector<u64>& gammas() const noexcept { return gammas_; }
  [[nodiscard]] u64 half_n_inv() const noexcept { return half_n_inv_; }  // (n/2)^-1

 private:
  u64 n_ = 0;
  u64 q_ = 0;
  u64 zeta_ = 0;
  u64 half_n_inv_ = 0;
  std::vector<u64> zetas_;
  std::vector<u64> zetas_inv_;
  std::vector<u64> gammas_;
};

// In-place forward transform: standard order in, n/2 degree-1 residues out
// (pair (a[2i], a[2i+1]) is the residue mod x^2 - gamma_i).
void incomplete_ntt_forward(std::span<u64> a, const incomplete_ntt_tables& t);

// Inverse of the above, including the (n/2)^-1 scaling.
void incomplete_ntt_inverse(std::span<u64> a, const incomplete_ntt_tables& t);

// Pairwise base multiplication: c_i(x) = a_i(x) * b_i(x) mod (x^2 - gamma_i):
//   c0 = a0*b0 + a1*b1*gamma;  c1 = a0*b1 + a1*b0.
void incomplete_basemul(std::span<const u64> a, std::span<const u64> b, std::span<u64> c,
                        const incomplete_ntt_tables& t);

// Full negacyclic product via the incomplete transform.
[[nodiscard]] std::vector<u64> polymul_incomplete(std::span<const u64> a,
                                                  std::span<const u64> b,
                                                  const incomplete_ntt_tables& t);

}  // namespace bpntt::math
