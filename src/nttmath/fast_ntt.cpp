#include "nttmath/fast_ntt.h"

#include <stdexcept>

namespace bpntt::math {

fast_ntt::fast_ntt(const ntt_tables& tables)
    : n_(tables.n()), q_(tables.q()), mont_(tables.q()) {
  if (!tables.negacyclic()) {
    throw std::invalid_argument("fast_ntt: negacyclic tables required");
  }
  zetas_mont_.resize(tables.zetas().size());
  zetas_inv_mont_.resize(tables.zetas_inv().size());
  for (std::size_t i = 1; i < zetas_mont_.size(); ++i) {
    zetas_mont_[i] = mont_.to_mont(tables.zetas()[i]);
    zetas_inv_mont_[i] = mont_.to_mont(tables.zetas_inv()[i]);
  }
  n_inv_mont_ = mont_.to_mont(tables.n_inv());
}

void fast_ntt::forward(std::span<u64> a) const {
  if (a.size() != n_) throw std::invalid_argument("fast_ntt: size mismatch");
  std::size_t k = 1;
  for (u64 len = n_ / 2; len >= 1; len >>= 1) {
    for (u64 start = 0; start < n_; start += 2 * len) {
      const u64 zeta = zetas_mont_[k++];
      for (u64 j = start; j < start + len; ++j) {
        // mul(zeta*R, x) = zeta*x: coefficients stay in the plain domain.
        const u64 v = mont_.mul(zeta, a[j + len]);
        a[j + len] = sub_mod(a[j], v, q_);
        a[j] = add_mod(a[j], v, q_);
      }
    }
  }
}

void fast_ntt::inverse(std::span<u64> a) const {
  if (a.size() != n_) throw std::invalid_argument("fast_ntt: size mismatch");
  for (u64 len = 1; len <= n_ / 2; len <<= 1) {
    const u64 k_base = n_ / (2 * len);
    for (u64 start = 0; start < n_; start += 2 * len) {
      const u64 zeta_inv = zetas_inv_mont_[k_base + start / (2 * len)];
      for (u64 j = start; j < start + len; ++j) {
        const u64 u = a[j];
        const u64 v = a[j + len];
        a[j] = add_mod(u, v, q_);
        a[j + len] = mont_.mul(zeta_inv, sub_mod(u, v, q_));
      }
    }
  }
  for (auto& x : a) x = mont_.mul(n_inv_mont_, x);
}

}  // namespace bpntt::math
