// Golden-model Number Theoretic Transform.
//
// Two transform families are provided:
//
// * Negacyclic (X^n + 1 rings, the PQC/HE case and the form of the paper's
//   Algorithm 1): in-place Cooley-Tukey forward with ψ-power twiddles stored
//   in bit-reversed order (input standard order, output bit-reversed) and
//   the matching Gentleman-Sande inverse.  Pointwise products in the
//   transformed domain realise negacyclic convolution with no explicit
//   permutation, which is why the in-SRAM engine uses exactly this form.
// * Cyclic (X^n - 1): textbook iterative radix-2 DIT with an explicit
//   bit-reversal permutation, provided for generality tests.
//
// All functions operate on canonical residues (< q) and return canonical
// residues.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "nttmath/modarith.h"

namespace bpntt::math {

// Precomputed twiddle tables for one (n, q) pair.
class ntt_tables {
 public:
  // n must be a power of two; q prime with 2n | q-1 (negacyclic) or
  // n | q-1 (cyclic).  Throws std::invalid_argument otherwise.
  ntt_tables(u64 n, u64 q, bool negacyclic);

  [[nodiscard]] u64 n() const noexcept { return n_; }
  [[nodiscard]] u64 q() const noexcept { return q_; }
  [[nodiscard]] bool negacyclic() const noexcept { return negacyclic_; }
  [[nodiscard]] u64 psi() const noexcept { return psi_; }
  [[nodiscard]] u64 omega() const noexcept { return omega_; }
  [[nodiscard]] u64 n_inv() const noexcept { return n_inv_; }

  // zetas consumed by the forward CT loop, index 1..n-1 (index 0 unused);
  // zetas_[k] = psi^bitrev(k).  Exposed so the BP-NTT microcode compiler can
  // bake twiddle bits into the command stream.
  [[nodiscard]] const std::vector<u64>& zetas() const noexcept { return zetas_; }
  [[nodiscard]] const std::vector<u64>& zetas_inv() const noexcept { return zetas_inv_; }

 private:
  u64 n_ = 0;
  u64 q_ = 0;
  bool negacyclic_ = true;
  u64 psi_ = 0;    // primitive 2n-th root (negacyclic) — 0 for cyclic tables
  u64 omega_ = 0;  // primitive n-th root
  u64 n_inv_ = 0;
  std::vector<u64> zetas_;
  std::vector<u64> zetas_inv_;
};

// In-place negacyclic forward NTT (Algorithm 1 of the paper).  Input in
// standard order, output in bit-reversed order.
void ntt_forward(std::span<u64> a, const ntt_tables& t);

// In-place negacyclic inverse (Gentleman-Sande); consumes bit-reversed
// order, produces standard order, includes the n^-1 scaling.
void ntt_inverse(std::span<u64> a, const ntt_tables& t);

// Pointwise product c[i] = a[i] * b[i] mod q.
void ntt_pointwise(std::span<const u64> a, std::span<const u64> b, std::span<u64> c, u64 q);

// Cyclic DFT over Z_q (forward / inverse), standard order in and out.
void cyclic_ntt_forward(std::span<u64> a, const ntt_tables& t);
void cyclic_ntt_inverse(std::span<u64> a, const ntt_tables& t);

// Bit-reversal permutation (involution), used by the cyclic transform and
// by tests that compare the negacyclic output ordering.
void bitrev_permute(std::span<u64> a);

}  // namespace bpntt::math
