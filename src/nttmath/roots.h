// Primitive roots and roots of unity in Z_q.
//
// The NTT needs a primitive n-th root of unity ω (cyclic) and additionally a
// primitive 2n-th root ψ with ψ² = ω (negacyclic, the X^n + 1 rings used by
// Kyber/Dilithium/HE).  We find a generator of Z_q* by factoring q-1 and
// testing candidates, then exponentiate down to the needed order.
#pragma once

#include "nttmath/modarith.h"

namespace bpntt::math {

// A generator of the multiplicative group Z_q* (q prime).
[[nodiscard]] u64 find_generator(u64 q);

// Primitive n-th root of unity mod q; requires n | q-1.  Throws otherwise.
[[nodiscard]] u64 primitive_root_of_unity(u64 n, u64 q);

// True iff w has exact multiplicative order n mod q.
[[nodiscard]] bool has_order(u64 w, u64 n, u64 q);

}  // namespace bpntt::math
