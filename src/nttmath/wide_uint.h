// Arbitrary-width unsigned integers for wide-coefficient experiments.
//
// The paper claims a single 256x256 subarray supports up to 256-bit
// coefficients; the SRAM model works at bit level and doesn't care, but the
// golden model needs arithmetic wider than __int128 to check those runs.
// wide_uint is a simple little-endian limb vector with a fixed bit width;
// every operation stays within that width (values are reduced mod 2^bits),
// mirroring the fixed tile width of the hardware.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace bpntt::math {

class wide_uint {
 public:
  wide_uint() = default;
  // Zero value of the given width (1..4096 bits).
  explicit wide_uint(unsigned bits);
  wide_uint(unsigned bits, std::uint64_t value);

  [[nodiscard]] unsigned bits() const noexcept { return bits_; }
  [[nodiscard]] bool is_zero() const noexcept;
  [[nodiscard]] bool bit(unsigned i) const noexcept;
  void set_bit(unsigned i, bool v) noexcept;
  [[nodiscard]] std::uint64_t low64() const noexcept;
  [[nodiscard]] std::string to_hex() const;

  // Bitwise ops (widths must match).
  [[nodiscard]] wide_uint operator&(const wide_uint& o) const;
  [[nodiscard]] wide_uint operator|(const wide_uint& o) const;
  [[nodiscard]] wide_uint operator^(const wide_uint& o) const;

  // Logical shifts by one bit within the fixed width (bits shifted out are
  // dropped, matching the hardware tile-segmented shifter).
  [[nodiscard]] wide_uint shl1() const;
  [[nodiscard]] wide_uint shr1() const;
  [[nodiscard]] wide_uint shl(unsigned k) const;

  // Arithmetic mod 2^bits.
  [[nodiscard]] wide_uint add(const wide_uint& o) const;
  [[nodiscard]] wide_uint sub(const wide_uint& o) const;  // wraps on underflow

  [[nodiscard]] int compare(const wide_uint& o) const noexcept;  // -1/0/+1
  bool operator==(const wide_uint& o) const noexcept { return compare(o) == 0; }
  bool operator<(const wide_uint& o) const noexcept { return compare(o) < 0; }
  bool operator>=(const wide_uint& o) const noexcept { return compare(o) >= 0; }

  // (a + b) mod m, assuming a, b < m < 2^(bits-1).
  [[nodiscard]] static wide_uint add_mod(const wide_uint& a, const wide_uint& b,
                                         const wide_uint& m);
  // (a * b) mod m via binary double-and-add; independent oracle for the
  // carry-save Montgomery model at wide widths.
  [[nodiscard]] static wide_uint mul_mod(const wide_uint& a, const wide_uint& b,
                                         const wide_uint& m);
  // 2^k mod m (for Montgomery-factor handling at wide widths).
  [[nodiscard]] static wide_uint pow2_mod(unsigned k, const wide_uint& m);

 private:
  void trim() noexcept;  // clear bits above bits_

  unsigned bits_ = 0;
  std::vector<std::uint64_t> limbs_;
};

}  // namespace bpntt::math
