// Arbitrary-width unsigned integers for wide-coefficient experiments.
//
// The paper claims a single 256x256 subarray supports up to 256-bit
// coefficients; the SRAM model works at bit level and doesn't care, but the
// golden model needs arithmetic wider than __int128 to check those runs.
// wide_uint is a simple little-endian limb vector with a fixed bit width;
// every operation stays within that width (values are reduced mod 2^bits),
// mirroring the fixed tile width of the hardware.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace bpntt::math {

struct wide_divmod;  // divmod()'s quotient/remainder pair, defined below

class wide_uint {
 public:
  wide_uint() = default;
  // Zero value of the given width (1..4096 bits).
  explicit wide_uint(unsigned bits);
  wide_uint(unsigned bits, std::uint64_t value);

  [[nodiscard]] unsigned bits() const noexcept { return bits_; }
  [[nodiscard]] bool is_zero() const noexcept;
  [[nodiscard]] bool bit(unsigned i) const noexcept;
  void set_bit(unsigned i, bool v) noexcept;
  [[nodiscard]] std::uint64_t low64() const noexcept;
  [[nodiscard]] std::string to_hex() const;

  // Bitwise ops (widths must match).
  [[nodiscard]] wide_uint operator&(const wide_uint& o) const;
  [[nodiscard]] wide_uint operator|(const wide_uint& o) const;
  [[nodiscard]] wide_uint operator^(const wide_uint& o) const;

  // Logical shifts by one bit within the fixed width (bits shifted out are
  // dropped, matching the hardware tile-segmented shifter).
  [[nodiscard]] wide_uint shl1() const;
  [[nodiscard]] wide_uint shr1() const;
  [[nodiscard]] wide_uint shl(unsigned k) const;

  // Width adjustment: zero-extends, or truncates mod 2^new_bits.  The
  // mixed-width entry point for CRT work, where per-limb words, CRT terms
  // and the lazily-reduced accumulator all live at different widths.
  [[nodiscard]] wide_uint resized(unsigned new_bits) const;

  // Arithmetic mod 2^bits.
  [[nodiscard]] wide_uint add(const wide_uint& o) const;
  [[nodiscard]] wide_uint sub(const wide_uint& o) const;  // wraps on underflow

  // Full schoolbook product reduced mod 2^bits (the result keeps this
  // operand's width).  `o` may have any width.
  [[nodiscard]] wide_uint mul(const wide_uint& o) const;
  // Product by a machine word, mod 2^bits.
  [[nodiscard]] wide_uint mul_u64(std::uint64_t s) const;

  // Long division: quotient and remainder at this operand's width.  `d` may
  // have any width; d == 0 throws std::domain_error.
  [[nodiscard]] wide_divmod divmod(const wide_uint& d) const;
  // Round-to-nearest division (ties round up): round(x / d) at this
  // operand's width.  The RNS rescale primitive — dividing a big
  // coefficient by the dropped limb prime with exact rounding.  `d` may
  // have any width (aliasing with *this is fine); d == 0 throws
  // std::domain_error.
  [[nodiscard]] wide_uint divround(const wide_uint& d) const;
  // Remainder by a machine word (m != 0; throws std::domain_error).
  [[nodiscard]] std::uint64_t mod_u64(std::uint64_t m) const;

  [[nodiscard]] int compare(const wide_uint& o) const noexcept;  // -1/0/+1
  bool operator==(const wide_uint& o) const noexcept { return compare(o) == 0; }
  bool operator<(const wide_uint& o) const noexcept { return compare(o) < 0; }
  bool operator>=(const wide_uint& o) const noexcept { return compare(o) >= 0; }

  // (a + b) mod m, assuming a, b < m < 2^(bits-1).
  [[nodiscard]] static wide_uint add_mod(const wide_uint& a, const wide_uint& b,
                                         const wide_uint& m);
  // (a * b) mod m via binary double-and-add; independent oracle for the
  // carry-save Montgomery model at wide widths.
  [[nodiscard]] static wide_uint mul_mod(const wide_uint& a, const wide_uint& b,
                                         const wide_uint& m);
  // 2^k mod m (for Montgomery-factor handling at wide widths).
  [[nodiscard]] static wide_uint pow2_mod(unsigned k, const wide_uint& m);

 private:
  void trim() noexcept;  // clear bits above bits_
  // Zero value at a width exempt from the public 4096-bit cap: division
  // needs one carry bit of working headroom even at the maximum width.
  [[nodiscard]] static wide_uint internal_width(unsigned bits);

  unsigned bits_ = 0;
  std::vector<std::uint64_t> limbs_;
};

struct wide_divmod {
  wide_uint quot;
  wide_uint rem;
};

}  // namespace bpntt::math
