#include "nttmath/roots.h"

#include <stdexcept>

#include "nttmath/primes.h"

namespace bpntt::math {

u64 find_generator(u64 q) {
  if (q < 3) throw std::invalid_argument("find_generator: q must be an odd prime");
  const u64 order = q - 1;
  const auto factors = distinct_prime_factors(order);
  for (u64 g = 2; g < q; ++g) {
    bool ok = true;
    for (u64 p : factors) {
      if (pow_mod(g, order / p, q) == 1) {
        ok = false;
        break;
      }
    }
    if (ok) return g;
  }
  throw std::runtime_error("find_generator: no generator found (q not prime?)");
}

u64 primitive_root_of_unity(u64 n, u64 q) {
  if (n == 0 || (q - 1) % n != 0) {
    throw std::invalid_argument("primitive_root_of_unity: n must divide q-1");
  }
  const u64 g = find_generator(q);
  const u64 w = pow_mod(g, (q - 1) / n, q);
  if (!has_order(w, n, q)) throw std::runtime_error("primitive_root_of_unity: order check failed");
  return w;
}

bool has_order(u64 w, u64 n, u64 q) {
  if (pow_mod(w, n, q) != 1) return false;
  for (u64 p : distinct_prime_factors(n)) {
    if (pow_mod(w, n / p, q) == 1) return false;
  }
  return true;
}

}  // namespace bpntt::math
