#include "nttmath/ntt.h"

#include <stdexcept>

#include "common/bitutil.h"
#include "nttmath/roots.h"

namespace bpntt::math {

ntt_tables::ntt_tables(u64 n, u64 q, bool negacyclic)
    : n_(n), q_(q), negacyclic_(negacyclic) {
  if (!common::is_power_of_two(n) || n < 2) {
    throw std::invalid_argument("ntt_tables: n must be a power of two >= 2");
  }
  const u64 order = negacyclic ? 2 * n : n;
  if ((q - 1) % order == 0) {
    if (negacyclic) {
      psi_ = primitive_root_of_unity(2 * n, q);
      omega_ = mul_mod(psi_, psi_, q);
    } else {
      omega_ = primitive_root_of_unity(n, q);
    }
  } else {
    throw std::invalid_argument("ntt_tables: q does not support this transform size");
  }
  n_inv_ = inv_mod(n % q, q);

  const unsigned logn = common::log2_exact(n);
  zetas_.assign(n, 0);
  zetas_inv_.assign(n, 0);
  const u64 base = negacyclic ? psi_ : omega_;
  for (u64 k = 1; k < n; ++k) {
    // For the cyclic case the CT recursion needs omega^(bitrev(k)/2 * ...)
    // only for the negacyclic form; the cyclic transform below uses its own
    // sequential twiddles, so tables are only fully populated when
    // negacyclic.  We still fill them (harmless) for symmetric tests.
    const u64 e = common::reverse_bits(k, logn);
    zetas_[k] = pow_mod(base, e, q);
    zetas_inv_[k] = inv_mod(zetas_[k], q);
  }
}

void ntt_forward(std::span<u64> a, const ntt_tables& t) {
  const u64 q = t.q();
  const u64 n = t.n();
  if (a.size() != n) throw std::invalid_argument("ntt_forward: size mismatch");
  std::size_t k = 1;
  for (u64 len = n / 2; len >= 1; len >>= 1) {
    for (u64 start = 0; start < n; start += 2 * len) {
      const u64 zeta = t.zetas()[k++];
      for (u64 j = start; j < start + len; ++j) {
        const u64 v = mul_mod(zeta, a[j + len], q);
        a[j + len] = sub_mod(a[j], v, q);
        a[j] = add_mod(a[j], v, q);
      }
    }
  }
}

void ntt_inverse(std::span<u64> a, const ntt_tables& t) {
  const u64 q = t.q();
  const u64 n = t.n();
  if (a.size() != n) throw std::invalid_argument("ntt_inverse: size mismatch");
  for (u64 len = 1; len <= n / 2; len <<= 1) {
    // Forward assigned k = n/(2*len) + start/(2*len) at this stage; undo the
    // butterflies with the inverse twiddles in the same block order.
    const u64 k_base = n / (2 * len);
    for (u64 start = 0; start < n; start += 2 * len) {
      const u64 zeta_inv = t.zetas_inv()[k_base + start / (2 * len)];
      for (u64 j = start; j < start + len; ++j) {
        const u64 u = a[j];
        const u64 v = a[j + len];
        a[j] = add_mod(u, v, q);
        a[j + len] = mul_mod(sub_mod(u, v, q), zeta_inv, q);
      }
    }
  }
  for (auto& x : a) x = mul_mod(x, t.n_inv(), q);
}

void ntt_pointwise(std::span<const u64> a, std::span<const u64> b, std::span<u64> c, u64 q) {
  if (a.size() != b.size() || a.size() != c.size()) {
    throw std::invalid_argument("ntt_pointwise: size mismatch");
  }
  for (std::size_t i = 0; i < a.size(); ++i) c[i] = mul_mod(a[i], b[i], q);
}

void bitrev_permute(std::span<u64> a) {
  const auto n = a.size();
  const unsigned logn = common::log2_exact(n);
  for (std::size_t i = 0; i < n; ++i) {
    const auto j = static_cast<std::size_t>(common::reverse_bits(i, logn));
    if (i < j) std::swap(a[i], a[j]);
  }
}

namespace {

void cyclic_transform(std::span<u64> a, u64 n, u64 q, u64 omega) {
  bitrev_permute(a);
  for (u64 len = 2; len <= n; len <<= 1) {
    const u64 wlen = pow_mod(omega, n / len, q);
    for (u64 start = 0; start < n; start += len) {
      u64 w = 1;
      for (u64 j = 0; j < len / 2; ++j) {
        const u64 u = a[start + j];
        const u64 v = mul_mod(a[start + j + len / 2], w, q);
        a[start + j] = add_mod(u, v, q);
        a[start + j + len / 2] = sub_mod(u, v, q);
        w = mul_mod(w, wlen, q);
      }
    }
  }
}

}  // namespace

void cyclic_ntt_forward(std::span<u64> a, const ntt_tables& t) {
  if (a.size() != t.n()) throw std::invalid_argument("cyclic_ntt_forward: size mismatch");
  cyclic_transform(a, t.n(), t.q(), t.omega());
}

void cyclic_ntt_inverse(std::span<u64> a, const ntt_tables& t) {
  if (a.size() != t.n()) throw std::invalid_argument("cyclic_ntt_inverse: size mismatch");
  cyclic_transform(a, t.n(), t.q(), inv_mod(t.omega(), t.q()));
  for (auto& x : a) x = mul_mod(x, t.n_inv(), t.q());
}

}  // namespace bpntt::math
