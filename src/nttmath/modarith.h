// Scalar modular arithmetic over Z_q for q < 2^63.
//
// These are the golden-model primitives everything else is checked against.
// Multiplication uses the compiler's 128-bit integer support; callers that
// need wider coefficients (the paper claims up to 256-bit) use wide_uint.
#pragma once

#include <cstdint>

namespace bpntt::math {

using u64 = std::uint64_t;
using u128 = unsigned __int128;

constexpr u64 add_mod(u64 a, u64 b, u64 q) noexcept {
  // a,b < q < 2^63 so the sum cannot wrap.
  const u64 s = a + b;
  return s >= q ? s - q : s;
}

constexpr u64 sub_mod(u64 a, u64 b, u64 q) noexcept {
  return a >= b ? a - b : a + q - b;
}

constexpr u64 neg_mod(u64 a, u64 q) noexcept { return a == 0 ? 0 : q - a; }

constexpr u64 mul_mod(u64 a, u64 b, u64 q) noexcept {
  return static_cast<u64>((static_cast<u128>(a) * b) % q);
}

constexpr u64 pow_mod(u64 base, u64 exp, u64 q) noexcept {
  u64 result = 1 % q;
  u64 acc = base % q;
  while (exp != 0) {
    if (exp & 1ULL) result = mul_mod(result, acc, q);
    acc = mul_mod(acc, acc, q);
    exp >>= 1;
  }
  return result;
}

// Modular inverse via extended Euclid.  Returns 0 when gcd(a, q) != 1.
constexpr u64 inv_mod(u64 a, u64 q) noexcept {
  std::int64_t t = 0;
  std::int64_t new_t = 1;
  std::int64_t r = static_cast<std::int64_t>(q);
  std::int64_t new_r = static_cast<std::int64_t>(a % q);
  while (new_r != 0) {
    const std::int64_t quot = r / new_r;
    const std::int64_t tmp_t = t - quot * new_t;
    t = new_t;
    new_t = tmp_t;
    const std::int64_t tmp_r = r - quot * new_r;
    r = new_r;
    new_r = tmp_r;
  }
  if (r != 1) return 0;
  if (t < 0) t += static_cast<std::int64_t>(q);
  return static_cast<u64>(t);
}

}  // namespace bpntt::math
