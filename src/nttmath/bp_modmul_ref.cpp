#include "nttmath/bp_modmul_ref.h"

#include <cassert>
#include <stdexcept>

#include "common/bitutil.h"

namespace bpntt::math {

bp_modmul_result bp_modmul(u64 a, u64 b, u64 m, unsigned k,
                           std::vector<bp_modmul_step>* trace) {
  if (k < 2 || k > 63) throw std::invalid_argument("bp_modmul: k out of range");
  if ((m & 1ULL) == 0 || m >= (1ULL << k)) throw std::invalid_argument("bp_modmul: bad modulus");
  if (a >= m || b >= m) throw std::invalid_argument("bp_modmul: operands must be < M");

  const u64 mask = common::low_mask(k);
  const u64 msb = 1ULL << (k - 1);

  bp_modmul_result r;
  u64 sum = 0;
  u64 carry = 0;

  for (unsigned i = 0; i < k; ++i) {
    bp_modmul_step step;
    step.iteration = i;
    step.a_bit = ((a >> i) & 1ULL) != 0;

    if (step.a_bit) {
      // P = P + B using one carry-save layer pair: {c1,s1} = half(Sum, B),
      // then fold the previous Carry (weight 2) back in after its shift.
      const u64 c1 = sum & b;
      const u64 s1 = sum ^ b;
      if ((carry & msb) != 0) r.observation1_held = false;  // Obs. 1 (line 7)
      const u64 carry_shifted = (carry << 1) & mask;
      const u64 c2 = carry_shifted & s1;
      sum = carry_shifted ^ s1;
      assert((c1 & c2) == 0);  // half-adder carries are disjoint by construction
      carry = c1 | c2;
    }
    step.sum_after_add = sum;
    step.carry_after_add = carry;

    // m-selection (line 11): LSB(P) == LSB(Sum) since Carry has weight 2.
    step.m_selected = (sum & 1ULL) != 0;
    const u64 mv = step.m_selected ? m : 0;
    const u64 c1 = sum & mv;
    u64 s1 = sum ^ mv;
    if ((s1 & 1ULL) != 0) r.observation2_held = false;  // Obs. 2 (line 13)
    s1 >>= 1;
    // (P + m)/2 = (s1 >> 1) + c1 + Carry; two more half-adder layers.
    const u64 c2 = s1 & c1;
    const u64 s2 = s1 ^ c1;
    const u64 c3 = carry & s2;
    sum = carry ^ s2;
    assert((c2 & c3) == 0);
    carry = c2 | c3;

    step.sum_end = sum;
    step.carry_end = carry;
    if (trace != nullptr) trace->push_back(step);
  }

  r.sum = sum;
  r.carry = carry;
  // Resolve the carry-save pair and apply the single conditional
  // subtraction (interleaved Montgomery guarantees P < 2M).
  const u128 p = static_cast<u128>(sum) + (static_cast<u128>(carry) << 1);
  r.fits_in_k_bits = p < (static_cast<u128>(1) << k);
  u128 v = p;
  if (v >= m) v -= m;
  assert(v < m);
  r.value = static_cast<u64>(v);
  return r;
}

bp_modmul_wide_result bp_modmul_wide(const wide_uint& a, const wide_uint& b,
                                     const wide_uint& m) {
  const unsigned k = m.bits();
  if (a.bits() != k || b.bits() != k) throw std::invalid_argument("bp_modmul_wide: width mismatch");
  if (!m.bit(0)) throw std::invalid_argument("bp_modmul_wide: M must be odd");

  bp_modmul_wide_result r;
  wide_uint sum(k);
  wide_uint carry(k);
  const wide_uint zero(k);

  for (unsigned i = 0; i < k; ++i) {
    if (a.bit(i)) {
      const wide_uint c1 = sum & b;
      const wide_uint s1 = sum ^ b;
      if (carry.bit(k - 1)) r.observation1_held = false;
      const wide_uint carry_shifted = carry.shl1();
      const wide_uint c2 = carry_shifted & s1;
      sum = carry_shifted ^ s1;
      carry = c1 | c2;
    }
    const wide_uint mv = sum.bit(0) ? m : zero;
    const wide_uint c1 = sum & mv;
    wide_uint s1 = sum ^ mv;
    if (s1.bit(0)) r.observation2_held = false;
    s1 = s1.shr1();
    const wide_uint c2 = s1 & c1;
    const wide_uint s2 = s1 ^ c1;
    const wide_uint c3 = carry & s2;
    sum = carry ^ s2;
    carry = c2 | c3;
  }

  r.sum = sum;
  r.carry = carry;
  wide_uint v = sum.add(carry.shl1());  // < 2M < 2^k when M < 2^(k-1)
  if (v >= m) v = v.sub(m);
  r.value = v;
  return r;
}

}  // namespace bpntt::math
